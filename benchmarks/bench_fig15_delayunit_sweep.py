"""Benchmark: regenerate Fig. 15 (DelayUnit size sweep, secAND2-PD).

Sweeps the paper's DelayUnit sizes; first-order leakage must decrease
with size — pronounced at 1 LUT, absent at 10 — and must track the
static arrival-order violation count (our mechanistic diagnosis).
"""

from repro.eval import fig15


def test_bench_fig15(once):
    res = once(
        fig15.run,
        sizes=(1, 3, 5, 10),
        n_traces=6_000,
        extended_traces=6_000,   # the 5M-trace panel is example-only
        extended_sizes=(),
        seed=5,
    )
    print()
    print(res.render())
    assert res.smallest_is_leaky
    assert res.largest_is_clean
    assert res.monotone_trend
    # static violations decrease monotonically with DelayUnit size
    viols = [p.static_violations["y1-not-last"] for p in res.points]
    assert all(b <= a for a, b in zip(viols, viols[1:]))
    assert viols[0] > 0 and viols[-1] == 0
