"""Benchmark: regenerate Table I (secAND2 input-sequence leakage).

Runs the fixed-vs-random TVLA test for a representative subset of the
24 arrival orders (the full sweep is ~6x this work; run
``examples/reproduce_paper.py table1`` for it) and checks every verdict
against the paper's rule: a sequence leaks iff an x share arrives last.
"""

from repro.eval import table1

#: Subset spanning both verdicts and both leaky share positions.
SEQUENCES = [
    ("y0", "y1", "x1", "x0"),  # x0 last  -> leaks
    ("y1", "y0", "x0", "x1"),  # x1 last  -> leaks
    ("y0", "x0", "y1", "x1"),  # x1 last  -> leaks
    ("x0", "x1", "y0", "y1"),  # y1 last  -> safe
    ("x1", "y1", "x0", "y0"),  # y0 last  -> safe
    ("y1", "x0", "x1", "y0"),  # y0 last  -> safe
]


def test_bench_table1(once):
    res = once(table1.run, n_traces=20_000, sequences=SEQUENCES, seed=1)
    print()
    print(res.render())
    assert res.all_match_paper
    assert res.n_leaky == 3
