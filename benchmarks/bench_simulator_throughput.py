"""Performance benchmarks of the simulation substrate itself.

Three kinds of benches live here:

* real pytest-benchmark timing loops over the campaign inner loops
  (gadget-bank settling, masked S-box, TVLA accumulator);
* head-to-head comparisons — compiled replay vs interpreted ``settle``
  and boolean vs bit-packed engine on the gadget bank, serial vs
  parallel and boolean vs packed campaigns — delegated to
  :mod:`repro.eval.bench` (the same code ``python -m repro bench``
  runs) so CI and the CLI publish identical numbers;
* a machine-readable summary: the module writes ``BENCH_simulator.json``
  at the repo root (schema ``bench_simulator/v5``, see
  ``repro.eval.bench``) with the comparison timings, speedups, the
  campaign's :class:`~repro.leakage.stats.CampaignStats`, the packed
  leg's counter-plane telemetry and the :mod:`repro.obs` span-tracing
  overhead ratio (the ``obs`` section, gated at <= 5%).
"""

import os

import numpy as np
import pytest

from repro.des.engines import DESTraceSource, MaskedDESNetlistEngine
from repro.des.masked_core import MaskedSboxModel
from repro.eval import bench
from repro.leakage.acquisition import CampaignConfig, OversubscriptionWarning
from repro.leakage.tvla import TTestAccumulator
from repro.core.gadgets import build_secand2
from repro.core.shares import share
from repro.sim.power import PowerRecorder
from repro.sim.vectorsim import VectorSimulator

#: Filled by the comparison benches, dumped to BENCH_simulator.json.
RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    yield
    if not RESULTS:
        return
    bench.write_json(bench.assemble_payload(**RESULTS))


# ----------------------------------------------------------------------
# compiled replay vs interpreted settle (the gadget-bank settle bench)
#
# The head-to-head comparisons run FIRST, before the pytest-benchmark
# loops: those loops churn tens of MB of allocations, which shifts the
# process into an allocator/page-cache regime where the boolean
# engine's large temporaries get ~2x cheaper — a regime `python -m
# repro bench` (a fresh process) never sees.  Running the comparisons
# first keeps the published JSON numbers identical to the CLI's.
# ----------------------------------------------------------------------
def test_bench_compiled_vs_interpreted_settle():
    """Schedule replay must beat the interpreted event loop >= 3x.

    Campaign-shaped workload: a 64-instance secAND2 bank settling a
    1024-trace batch with power recording — one ``acquire`` worth of
    simulation.  The bank is sized so the interpreted engine's
    per-gate Python loop (what replay eliminates) dominates the
    per-trace numpy work both engines share.  Both engines produce bitwise
    identical values and power (asserted inside the comparison); only
    the time differs.
    """
    settle = bench.settle_comparison(n_instances=64, n_traces=1024)
    RESULTS["settle"] = settle
    print(
        f"\nsettle: interpreted {settle['interpreted_ms']:.3f} ms  "
        f"compiled {settle['compiled_ms']:.3f} ms  "
        f"speedup {settle['speedup']:.2f}x"
    )
    assert settle["speedup"] >= 3.0


# ----------------------------------------------------------------------
# bit-packed vs boolean engine (the packed settle / campaign benches)
# ----------------------------------------------------------------------
def test_bench_packed_vs_boolean_settle():
    """The uint64-lane engine must beat the boolean engine >= 3x.

    Same secAND2-bank workload as the compiled-vs-interpreted bench,
    sized up (64 instances, 16384 traces) so byte traffic — the thing
    packing shrinks 64x — dominates per-call numpy overhead.  Both
    engines run the compiled path with power recording and must agree
    bitwise on every wire value and power sample (asserted inside the
    comparison).
    """
    packed = bench.settle_packed_comparison(n_instances=64, n_traces=16384)
    RESULTS["settle_packed"] = packed
    print(
        f"\nsettle_packed: boolean {packed['boolean_ms']:.3f} ms  "
        f"packed {packed['packed_ms']:.3f} ms  "
        f"speedup {packed['speedup']:.2f}x  "
        f"popcount={packed['popcount']}"
    )
    assert packed["speedup"] >= 3.0


def test_bench_campaign_packed_vs_boolean():
    """End-to-end packed campaign on the masked-DES engine: >= 1.2x.

    Serial campaign, ``pack_traces=False`` vs ``True``, bitwise-equal
    t-statistics required.  Since the packed-domain power accumulator
    (counter planes, no per-event unpacking) the speedup is *gated*,
    not just recorded: both legs run in this one process, so the
    comparison is valid even at ``cpu_count=1``.  End-to-end time still
    includes TVLA accumulation and noise generation, which packing does
    not touch — hence 1.2x here vs the ~5x recorder-free settle bench.
    The geometry is lane-aligned (one 512-trace batch, 8 uint64 lanes):
    ragged two-lane batches are exactly where packing cannot pay, which
    is what ``pack_traces="auto"``'s 64-trace floor is for.
    """
    engine = MaskedDESNetlistEngine("ff")
    source = DESTraceSource(
        engine, 0x0123456789ABCDEF, 0x133457799BBCDFF1, prng_enabled=True
    )
    cfg = CampaignConfig(
        n_traces=512, batch_size=512, noise_sigma=1.0, seed=0,
        label="bench.campaign_packed",
    )
    campaign = bench.campaign_packed_comparison(
        source,
        cfg,
        source_label="DESTraceSource (masked DES netlist, ff variant)",
    )
    RESULTS["campaign_packed"] = campaign
    planes = campaign["counter_planes"]
    print(
        f"\ncampaign_packed: boolean {campaign['boolean_s']:.2f} s  "
        f"packed {campaign['packed_s']:.2f} s  "
        f"speedup {campaign['speedup']:.2f}x  "
        f"bitwise={campaign['bitwise_equal']}  "
        f"max_planes={planes['max_planes']}  "
        f"overflow_bins={planes['overflow_bins']}"
    )
    assert campaign["bitwise_equal"]
    assert planes["accumulators"] > 0, (
        "packed campaign never reached the counter-plane accumulator — "
        "the replay loop fell back to the per-event unpack leg"
    )
    assert campaign["speedup"] >= 1.2, (
        f"packed campaign speedup {campaign['speedup']:.2f}x < 1.2x — "
        "the packed-domain accumulation regression this bench exists "
        "to catch (the pre-v4 per-event unpack leg measured 0.98x)"
    )


# ----------------------------------------------------------------------
# serial vs parallel campaign
# ----------------------------------------------------------------------
def test_bench_campaign_serial_vs_parallel():
    """Batch-sharded TVLA campaign on the masked-DES engine.

    This is the paper's Fig. 14 workload: each batch runs full 16-round
    masked-DES encryptions through the netlist simulator (seconds per
    batch), so the campaign is simulation-bound and the process pool
    amortises.  Four batches on four workers; the sharded accumulators
    must merge to the exact serial result.

    The hard requirement is bitwise equality (asserted inside the
    comparison).  The speedup is only asserted on hosts with >= 4 CPUs
    where four workers actually get four cores.  On a single-CPU host
    the whole comparison is skipped — both legs would simulate the
    same 1000 traces only to time pool overhead — and the JSON records
    ``"skipped_reason": "cpu_count<2"`` in its place.
    """
    n_workers = 4
    cpu = os.cpu_count() or 1
    if cpu < 2:
        RESULTS["campaign"] = {
            "source": "DESTraceSource (masked DES netlist, ff variant)",
            "skipped_reason": "cpu_count<2",
        }
        pytest.skip(
            "serial-vs-parallel comparison skipped: 1 CPU (recorded as "
            "skipped_reason=cpu_count<2 in BENCH_simulator.json)"
        )
    engine = MaskedDESNetlistEngine("ff")
    source = DESTraceSource(
        engine, 0x0123456789ABCDEF, 0x133457799BBCDFF1, prng_enabled=True
    )
    cfg = CampaignConfig(
        n_traces=500, batch_size=125, noise_sigma=1.0, seed=0,
        label="bench.campaign",
    )

    ctx = (
        pytest.warns(OversubscriptionWarning)
        if n_workers > cpu
        else _no_warning_context()
    )
    with ctx:
        campaign = bench.campaign_comparison(
            source,
            cfg,
            n_workers=n_workers,
            source_label="DESTraceSource (masked DES netlist, ff variant)",
        )
    RESULTS["campaign"] = campaign
    print(
        f"\ncampaign: serial {campaign['serial_s']:.2f} s  "
        f"parallel({n_workers}) {campaign['parallel_s']:.2f} s  "
        f"speedup {campaign['speedup']:.2f}x  "
        f"bitwise={campaign['bitwise_equal']}  cpu_count={cpu}"
    )
    assert campaign["bitwise_equal"]
    if cpu >= 4:
        assert campaign["speedup"] >= 1.5, (
            f"parallel campaign speedup {campaign['speedup']:.2f}x on a "
            f"{cpu}-CPU host — the regression this bench exists to catch"
        )
    else:
        pytest.skip(
            f"speedup assertion skipped: {cpu} CPU(s) < 4 (timings "
            "still recorded in BENCH_simulator.json)"
        )


def _no_warning_context():
    import contextlib

    return contextlib.nullcontext()


# ----------------------------------------------------------------------
# span-tracing overhead
# ----------------------------------------------------------------------
def test_bench_obs_overhead():
    """Tracing a packed campaign must cost <= 5% and change no bits.

    Same lane-aligned masked-DES workload as the packed bench, run
    twice per rep — :mod:`repro.obs` tracing disabled vs enabled —
    with alternating blocks so host-speed drift cancels.  Hard
    requirements: the traced leg's t-statistics are bitwise equal to
    the untraced leg's, the trace is non-empty, and the median
    overhead ratio stays under the 5% budget the observability layer
    promises for hot paths.
    """
    engine = MaskedDESNetlistEngine("ff")
    source = DESTraceSource(
        engine, 0x0123456789ABCDEF, 0x133457799BBCDFF1, prng_enabled=True
    )
    cfg = CampaignConfig(
        n_traces=512, batch_size=512, noise_sigma=1.0, seed=0,
        pack_traces=True, label="bench.obs",
    )
    obs = bench.obs_overhead_comparison(
        source,
        cfg,
        source_label="DESTraceSource (masked DES netlist, ff variant)",
    )
    RESULTS["obs"] = obs
    print(
        f"\nobs: untraced {obs['untraced_s']:.3f} s  "
        f"traced {obs['traced_s']:.3f} s  "
        f"overhead {obs['overhead'] * 100:+.1f}%  "
        f"bitwise={obs['bitwise_equal']}  "
        f"spans={obs['n_spans']}  coverage={obs['coverage']:.0%}"
    )
    assert obs["bitwise_equal"]
    assert obs["n_spans"] > 0
    assert obs["overhead"] <= 0.05, (
        f"span-tracing overhead {obs['overhead'] * 100:+.1f}% > 5% on the "
        "packed campaign path — the zero-cost-when-idle contract of "
        "repro.obs no longer holds in the hot loop"
    )


# ----------------------------------------------------------------------
# pytest-benchmark loops (after the comparisons — see note above)
# ----------------------------------------------------------------------
def test_bench_gadget_bank_settle(benchmark):
    """Event-driven settle of an 8-instance secAND2 bank, 4096 traces."""
    rng = np.random.default_rng(0)
    c = build_secand2(n_instances=8)
    n = 4096
    x0, x1 = share(rng.integers(0, 2, n).astype(bool), rng)
    y0, y1 = share(rng.integers(0, 2, n).astype(bool), rng)

    def run():
        sim = VectorSimulator(c, n)
        sim.evaluate_combinational(
            {c.wire(k): False for k in ("x0", "x1", "y0", "y1")}
        )
        rec = PowerRecorder(n, 5000, bin_ps=250, weights=sim.weights)
        sim.settle(
            [
                (0, c.wire("y0"), y0),
                (1000, c.wire("x0"), x0),
                (1000, c.wire("x1"), x1),
                (2000, c.wire("y1"), y1),
            ],
            recorder=rec,
        )
        return rec.power.sum()

    assert benchmark(run) > 0


def test_bench_masked_sbox_model(benchmark):
    """Share-level masked S-box, 8192 evaluations per call."""
    rng = np.random.default_rng(1)
    model = MaskedSboxModel(0)
    n = 8192
    x0 = rng.integers(0, 2, (6, n)).astype(bool)
    x1 = rng.integers(0, 2, (6, n)).astype(bool)
    r = rng.integers(0, 2, (14, n)).astype(bool)

    out = benchmark(model, x0, x1, r)
    assert out[0].shape == (4, n)


def test_bench_tvla_accumulator(benchmark):
    """Streaming t-test update: 4096 traces x 512 samples."""
    rng = np.random.default_rng(2)
    traces = rng.normal(0, 1, (4096, 512)).astype(np.float32)
    mask = rng.integers(0, 2, 4096).astype(bool)
    acc = TTestAccumulator(512)

    benchmark(acc.update, traces, mask)
    assert np.isfinite(acc.t_stats(1)).all()
