"""Performance benchmarks of the simulation substrate itself.

Three kinds of benches live here:

* real pytest-benchmark timing loops over the campaign inner loops
  (gadget-bank settling, masked S-box, TVLA accumulator);
* head-to-head comparisons — compiled replay vs interpreted ``settle``
  on the gadget bank, and serial vs ``n_workers=4`` campaign — timed
  manually (warmup + median over repetitions) because each side must
  run under identical conditions;
* a machine-readable summary: the module writes ``BENCH_simulator.json``
  at the repo root with the comparison timings and speedups.
"""

import json
import os
import platform
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.gadgets import build_secand2
from repro.core.shares import share
from repro.des.engines import DESTraceSource, MaskedDESNetlistEngine
from repro.des.masked_core import MaskedSboxModel
from repro.leakage.acquisition import CampaignConfig, run_campaign
from repro.leakage.tvla import TTestAccumulator
from repro.sim.power import PowerRecorder
from repro.sim.vectorsim import VectorSimulator

#: Filled by the comparison benches, dumped to BENCH_simulator.json.
RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    yield
    if not RESULTS:
        return
    payload = {
        "schema": "bench_simulator/v1",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "unix_time": time.time(),
        **RESULTS,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")


def _median_time(fn, reps=15, prep=None):
    """Median wall time of ``fn`` over ``reps``; ``prep`` runs untimed
    before each repetition (state reset so every ``fn`` does real work)."""
    if prep is not None:
        prep()
    fn()  # warmup (also compiles schedules where applicable)
    times = []
    for _ in range(reps):
        if prep is not None:
            prep()
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


# ----------------------------------------------------------------------
# pytest-benchmark loops
# ----------------------------------------------------------------------
def test_bench_gadget_bank_settle(benchmark):
    """Event-driven settle of an 8-instance secAND2 bank, 4096 traces."""
    rng = np.random.default_rng(0)
    c = build_secand2(n_instances=8)
    n = 4096
    x0, x1 = share(rng.integers(0, 2, n).astype(bool), rng)
    y0, y1 = share(rng.integers(0, 2, n).astype(bool), rng)

    def run():
        sim = VectorSimulator(c, n)
        sim.evaluate_combinational(
            {c.wire(k): False for k in ("x0", "x1", "y0", "y1")}
        )
        rec = PowerRecorder(n, 5000, bin_ps=250, weights=sim.weights)
        sim.settle(
            [
                (0, c.wire("y0"), y0),
                (1000, c.wire("x0"), x0),
                (1000, c.wire("x1"), x1),
                (2000, c.wire("y1"), y1),
            ],
            recorder=rec,
        )
        return rec.power.sum()

    assert benchmark(run) > 0


def test_bench_masked_sbox_model(benchmark):
    """Share-level masked S-box, 8192 evaluations per call."""
    rng = np.random.default_rng(1)
    model = MaskedSboxModel(0)
    n = 8192
    x0 = rng.integers(0, 2, (6, n)).astype(bool)
    x1 = rng.integers(0, 2, (6, n)).astype(bool)
    r = rng.integers(0, 2, (14, n)).astype(bool)

    out = benchmark(model, x0, x1, r)
    assert out[0].shape == (4, n)


def test_bench_tvla_accumulator(benchmark):
    """Streaming t-test update: 4096 traces x 512 samples."""
    rng = np.random.default_rng(2)
    traces = rng.normal(0, 1, (4096, 512)).astype(np.float32)
    mask = rng.integers(0, 2, 4096).astype(bool)
    acc = TTestAccumulator(512)

    benchmark(acc.update, traces, mask)
    assert np.isfinite(acc.t_stats(1)).all()


# ----------------------------------------------------------------------
# compiled replay vs interpreted settle (the gadget-bank settle bench)
# ----------------------------------------------------------------------
def test_bench_compiled_vs_interpreted_settle():
    """Schedule replay must beat the interpreted event loop >= 3x.

    Campaign-shaped workload: a 32-instance secAND2 bank (the paper's
    SNR replication) settling a 1024-trace batch with power recording —
    one ``acquire`` worth of simulation.  Both engines produce bitwise
    identical values and power; only the time differs.
    """
    rng = np.random.default_rng(0)
    c = build_secand2(n_instances=32)
    n = 1024
    x0, x1 = share(rng.integers(0, 2, n).astype(bool), rng)
    y0, y1 = share(rng.integers(0, 2, n).astype(bool), rng)
    events = [
        (0, c.wire("y0"), y0),
        (1000, c.wire("x0"), x0),
        (1000, c.wire("x1"), x1),
        (2000, c.wire("y1"), y1),
    ]
    inputs = {c.wire(k): False for k in ("x0", "x1", "y0", "y1")}

    def make(compiled):
        sim = VectorSimulator(c, n, compile_schedules=compiled)
        rec = PowerRecorder(n, 5000, bin_ps=250, weights=sim.weights)

        def prep():
            sim.reset_state(False)
            sim.evaluate_combinational(inputs)

        def run():
            sim.settle(events, recorder=rec)

        return sim, rec, prep, run

    sim_i, rec_i, prep_i, run_i = make(False)
    sim_c, rec_c, prep_c, run_c = make(True)
    t_interp = _median_time(run_i, prep=prep_i)
    t_compiled = _median_time(run_c, prep=prep_c)
    prep_i()
    run_i()
    prep_c()
    run_c()
    assert np.array_equal(sim_i.values, sim_c.values)
    assert np.array_equal(rec_i.power, rec_c.power)

    speedup = t_interp / t_compiled
    RESULTS["settle"] = {
        "circuit": "secAND2 bank",
        "n_instances": 32,
        "n_traces": n,
        "interpreted_ms": t_interp * 1e3,
        "compiled_ms": t_compiled * 1e3,
        "speedup": speedup,
    }
    print(
        f"\nsettle: interpreted {t_interp * 1e3:.3f} ms  "
        f"compiled {t_compiled * 1e3:.3f} ms  speedup {speedup:.2f}x"
    )
    assert speedup >= 3.0


# ----------------------------------------------------------------------
# serial vs parallel campaign
# ----------------------------------------------------------------------
def test_bench_campaign_serial_vs_parallel():
    """Batch-sharded TVLA campaign on the masked-DES engine.

    This is the paper's Fig. 14 workload: each batch runs full 16-round
    masked-DES encryptions through the netlist simulator (seconds per
    batch), so the campaign is simulation-bound and the process pool
    amortises.  Four batches on four workers; the sharded accumulators
    must merge to the exact serial result.

    The hard requirement is bitwise equality; the recorded speedup only
    exceeds 1 on multi-core hosts (``cpu_count`` is in the JSON — on a
    single CPU the parallel path just measures pool overhead).
    """
    n_workers = 4
    engine = MaskedDESNetlistEngine("ff")
    source = DESTraceSource(
        engine, 0x0123456789ABCDEF, 0x133457799BBCDFF1, prng_enabled=True
    )
    cfg = CampaignConfig(
        n_traces=500, batch_size=125, noise_sigma=1.0, seed=0
    )

    t0 = time.perf_counter()
    serial = run_campaign(source, cfg)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_campaign(source, cfg, n_workers=n_workers)
    t_parallel = time.perf_counter() - t0

    bitwise = bool(
        np.array_equal(serial.t1, parallel.t1)
        and np.array_equal(serial.t2, parallel.t2)
        and np.array_equal(serial.t3, parallel.t3)
    )
    RESULTS["campaign"] = {
        "source": "DESTraceSource (masked DES netlist, ff variant)",
        "n_traces": cfg.n_traces,
        "batch_size": cfg.batch_size,
        "n_workers": n_workers,
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "speedup": t_serial / t_parallel,
        "bitwise_equal": bitwise,
    }
    print(
        f"\ncampaign: serial {t_serial:.2f} s  "
        f"parallel({n_workers}) {t_parallel:.2f} s  "
        f"speedup {t_serial / t_parallel:.2f}x  bitwise={bitwise}"
    )
    assert bitwise
