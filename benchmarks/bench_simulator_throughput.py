"""Performance benchmarks of the simulation substrate itself.

These use real pytest-benchmark timing loops (unlike the table/figure
benches, which run once): gadget-bank settling, a masked S-box cycle,
and the TVLA accumulator — the three inner loops every campaign spends
its time in.
"""

import numpy as np
import pytest

from repro.core.gadgets import build_secand2
from repro.core.shares import share
from repro.des.masked_core import MaskedSboxModel
from repro.leakage.tvla import TTestAccumulator
from repro.sim.power import PowerRecorder
from repro.sim.vectorsim import VectorSimulator


def test_bench_gadget_bank_settle(benchmark):
    """Event-driven settle of an 8-instance secAND2 bank, 4096 traces."""
    rng = np.random.default_rng(0)
    c = build_secand2(n_instances=8)
    n = 4096
    x0, x1 = share(rng.integers(0, 2, n).astype(bool), rng)
    y0, y1 = share(rng.integers(0, 2, n).astype(bool), rng)

    def run():
        sim = VectorSimulator(c, n)
        sim.evaluate_combinational(
            {c.wire(k): False for k in ("x0", "x1", "y0", "y1")}
        )
        rec = PowerRecorder(n, 5000, bin_ps=250, weights=sim.weights)
        sim.settle(
            [
                (0, c.wire("y0"), y0),
                (1000, c.wire("x0"), x0),
                (1000, c.wire("x1"), x1),
                (2000, c.wire("y1"), y1),
            ],
            recorder=rec,
        )
        return rec.power.sum()

    assert benchmark(run) > 0


def test_bench_masked_sbox_model(benchmark):
    """Share-level masked S-box, 8192 evaluations per call."""
    rng = np.random.default_rng(1)
    model = MaskedSboxModel(0)
    n = 8192
    x0 = rng.integers(0, 2, (6, n)).astype(bool)
    x1 = rng.integers(0, 2, (6, n)).astype(bool)
    r = rng.integers(0, 2, (14, n)).astype(bool)

    out = benchmark(model, x0, x1, r)
    assert out[0].shape == (4, n)


def test_bench_tvla_accumulator(benchmark):
    """Streaming t-test update: 4096 traces x 512 samples."""
    rng = np.random.default_rng(2)
    traces = rng.normal(0, 1, (4096, 512)).astype(np.float32)
    mask = rng.integers(0, 2, 4096).astype(bool)
    acc = TTestAccumulator(512)

    benchmark(acc.update, traces, mask)
    assert np.isfinite(acc.t_stats(1)).all()
