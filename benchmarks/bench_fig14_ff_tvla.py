"""Benchmark: regenerate Fig. 14 (TVLA of the secAND2-FF DES engine).

Reduced budget (the paper uses 50 M traces; the simulator's noise floor
makes a few thousand sufficient for the same qualitative picture):

* PRNG off  -> first-order leakage detected quickly (panel a);
* PRNG on   -> no consistent first-order leakage across three fixed
  plaintexts, pronounced second-order leakage (panels b-d).
"""

from repro.eval import fig14


def test_bench_fig14(once):
    res = once(
        fig14.run,
        n_traces=8_000,
        n_traces_off=4_000,
        batch_size=2_000,
        seed=3,
    )
    print()
    print(res.render())
    assert res.sanity_ok
    assert res.prng_off_detected_at <= 4_000
    assert res.first_order_secure
    assert res.second_order_present
