"""Benchmark: regenerate Fig. 17 (TVLA of the secAND2-PD DES engine).

With the optimal 10-LUT DelayUnit the arrival order is statically safe,
yet the paper observes marginal first-order leakage and attributes it
to coupling between the long delay lines (Sec. VII-C).  The bench runs
with the coupling model enabled (higher coefficient than the scaled
default so detection fits the bench budget) and checks:

* PRNG off: leakage detected quickly (panel d);
* PRNG on: first-order threshold crossings appear — unlike the FF
  engine under the same budget.
"""

from repro.eval import fig17


def test_bench_fig17(once):
    res = once(
        fig17.run,
        n_traces=14_000,
        n_traces_off=4_000,
        batch_size=2_000,
        coupling_coefficient=5.0,
        seed=6,
    )
    print()
    print(res.render())
    assert res.sanity_ok
    assert res.first_order_leakage_observed
