"""Benchmark: regenerate the Fig. 13 / Fig. 16 power traces.

The paper's oscilloscope traces show sixteen round patterns covering
the whole DES operation; we check the simulated mean trace has exactly
that periodic structure for both engines.
"""

import pytest

from repro.eval import traces


@pytest.mark.parametrize("variant", ["ff", "pd"])
def test_bench_power_trace(once, variant):
    res = once(traces.run, variant=variant, n_traces=48, seed=4)
    print()
    print(res.render())
    assert res.n_rounds_detected == 16
    assert res.rounds_uniform
    assert res.mean_trace.sum() > 0
