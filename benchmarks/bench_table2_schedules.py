"""Benchmark: regenerate Table II (product delay schedules) and assess
the secAND2-PD 3-variable chain across consecutive computations."""

from repro.eval import table2


def test_bench_table2(once):
    res = once(table2.run, n_traces=25_000, seed=2)
    print()
    print(res.render())
    assert res.matches_paper
    assert res.chain_functional_ok
    assert res.chain_is_clean
