"""Ablation: selective refresh (the paper's Sec. IV-A future work).

The reference design spends 14 fresh bits per S-box (10 product + 4
select refreshes).  The paper conjectures some can be dropped "while
maintaining uniformity".  This bench runs the greedy minimal-refresh
search for every S-box and reports the randomness saved, plus the
negative control: dropping *all* refreshes breaks uniformity.
"""

from repro.des.selective_refresh import (
    greedy_minimal_refresh,
    refresh_bits_used,
    uniformity_defect,
)


def _search():
    return [
        greedy_minimal_refresh(sbox, n_per_input=1500, seed=11)
        for sbox in range(8)
    ]


def test_bench_selective_refresh(once):
    plans = once(_search)
    print()
    print("Selective refresh — minimal per-S-box plans "
          "(paper future work, Sec. IV-A):")
    for p in plans:
        print("  " + p.row())
    total = refresh_bits_used(plans)
    print(f"  total: {total} bits/round without recycling "
          f"(reference design: 112; with recycling: 14)")
    # every S-box admits a strictly smaller refresh set ...
    assert all(p.bits_used < 14 for p in plans)
    # ... that still meets the uniformity criterion
    assert all(p.defect < 3 * p.baseline_defect + 1e-3 for p in plans)
    # negative control: no refresh at all is badly non-uniform
    assert uniformity_defect(0, [False] * 14, n_per_input=1500) > 0.1
