"""Benchmark: CPA key recovery — the paper's security argument, executed.

Checks the three-way contrast (reduced budgets):

* the unprotected engine loses most round-1 subkeys to first-order CPA;
* the masked FF engine keeps the correct guesses at chance rank under
  the same attack;
* second-order (centered-square) CPA starts recovering subkeys from the
  masked engine — the attack the paper says the adversary is pushed to.
"""

from repro.attacks import attack_engine
from repro.des.engines import MaskedDESNetlistEngine

KEY = 0x133457799BBCDFF1
SBOXES = (1, 5)


def _full_contrast():
    unprot = attack_engine(
        "unprotected", KEY, n_traces=2000, order=1, seed=3
    )
    engine = MaskedDESNetlistEngine("ff")
    masked1 = attack_engine(
        "ff", KEY, n_traces=2000, sboxes=SBOXES, order=1, seed=3,
        engine=engine,
    )
    masked2 = attack_engine(
        "ff", KEY, n_traces=10_000, sboxes=SBOXES, order=2, seed=4,
        engine=engine,
    )
    return unprot, masked1, masked2


def test_bench_cpa_contrast(once):
    unprot, masked1, masked2 = once(_full_contrast)
    print()
    print(unprot.render())
    print(masked1.render())
    print(masked2.render())
    # unprotected: majority of subkeys recovered with 2k traces
    assert unprot.n_recovered >= 5
    # masked vs order-1: nothing recovered, ranks near chance
    assert masked1.n_recovered == 0
    assert masked1.mean_rank > 8
    # masked vs order-2: clear progress (better ranks than order-1);
    # with the full budgets of examples/cpa_key_recovery.py the
    # subkeys are recovered outright
    assert masked2.mean_rank < masked1.mean_rank
    assert masked2.n_recovered >= 1
