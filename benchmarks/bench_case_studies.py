"""Benchmarks: the gadget library on PRESENT-80 and AES-128.

Timed end-to-end correctness runs of the two extension case studies —
the throughput numbers double as a regression guard on the share-level
masked arithmetic.
"""

import numpy as np

from repro.aes import MaskedAES128, aes128_encrypt
from repro.leakage.prng import RandomnessSource
from repro.present import MaskedPresent, present_encrypt


def test_bench_masked_present(benchmark):
    rng = np.random.default_rng(0)
    core = MaskedPresent()
    pts = rng.integers(0, 2**63, 64, dtype=np.uint64)
    keys = [int(rng.integers(0, 2**63)) << 17 | 0xBEEF for _ in range(64)]

    def run():
        return core.encrypt(pts, keys, RandomnessSource(1))

    ct = benchmark(run)
    for i in range(0, 64, 16):
        assert int(ct[i]) == present_encrypt(int(pts[i]), keys[i])


def test_bench_masked_aes(benchmark):
    rng = np.random.default_rng(1)
    core = MaskedAES128()
    pts = rng.integers(0, 256, (32, 16)).astype(np.uint8)
    kys = rng.integers(0, 256, (32, 16)).astype(np.uint8)

    def run():
        return core.encrypt(pts, kys, RandomnessSource(2))

    ct = benchmark(run)
    for i in (0, 15, 31):
        assert bytes(ct[i]) == aes128_encrypt(bytes(pts[i]), bytes(kys[i]))


def test_bench_des_engine_throughput(benchmark):
    """Traced gate-level masked DES throughput (the campaign inner loop)."""
    from repro.des.bits import int_to_bitarray
    from repro.des.engines import MaskedDESNetlistEngine

    eng = MaskedDESNetlistEngine("ff")
    rng = np.random.default_rng(2)
    n = 256
    pt = int_to_bitarray(rng.integers(0, 2**63, n, dtype=np.uint64), 64)
    ky = int_to_bitarray(np.uint64(0x133457799BBCDFF1), 64, n)

    def run():
        ct, power = eng.run_batch(pt, ky, RandomnessSource(3))
        return power

    power = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert power.sum() > 0
