"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a
reduced trace budget (the full-budget campaign lives in
``examples/reproduce_paper.py``; EXPERIMENTS.md records its output).
Each bench runs its experiment exactly once (``pedantic`` mode) — the
interesting output is the regenerated table, stored in
``benchmark.extra_info`` and printed with ``-s``.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
