"""Ablation: removing the S-box output register (paper future work).

Sec. VI-A leaves open "whether the output S-box register can be removed
without affecting the security", which would cut the FF engine's round
latency from 7 to 6 cycles.  This bench builds the 6-cycle variant,
verifies functionality, and runs the same reduced TVLA protocol as the
Fig. 14 bench on it.
"""

import numpy as np

from repro.des.bits import int_to_bitarray
from repro.des.engines import DESTraceSource, MaskedDESNetlistEngine
from repro.des.reference import des_encrypt_bits
from repro.leakage.acquisition import CampaignConfig, run_campaign
from repro.leakage.prng import RandomnessSource

FIXED = 0x0123456789ABCDEF
KEY = 0x133457799BBCDFF1


def _assess():
    eng = MaskedDESNetlistEngine("ff", sbox_output_register=False)
    rng = np.random.default_rng(0)
    pt = int_to_bitarray(rng.integers(0, 2**63, 16, dtype=np.uint64), 64)
    ky = int_to_bitarray(np.uint64(KEY), 64, 16)
    ct, _ = eng.run_batch(pt, ky, RandomnessSource(1))
    functional = np.array_equal(ct, des_encrypt_bits(pt, ky))
    res = run_campaign(
        DESTraceSource(eng, FIXED, KEY),
        CampaignConfig(n_traces=8_000, batch_size=4_000, noise_sigma=2.0,
                       seed=21, label="FF 6-cycle"),
    )
    return eng, functional, res


def test_bench_output_register_removal(once):
    eng, functional, res = once(_assess)
    print()
    print("Ablation — S-box output register removed (6 cycles/round):")
    print(f"  cycles/round: {eng.cycles_per_round} (reference: 7)")
    print(f"  functional:   {functional}")
    print(f"  TVLA:         {res.summary()}")
    assert eng.cycles_per_round == 6
    assert functional
    # in our timing model the 6-cycle variant shows no first-order
    # evidence either — evidence for (not proof of) the paper's hoped
    # optimisation; second-order leakage remains, as for the 7-cycle one
    assert not res.leaks(1)
    assert res.leaks(2)
