"""Benchmark: regenerate Table III (utilisation of both DES engines).

Builds both gate-level engines (masked key schedule included), counts
GE / FF / LUT, runs static timing, and checks the paper's shape:
delay-dominated PD area, 14 random bits/round, 7-vs-2 cycles/round,
and an order-of-magnitude fmax gap.
"""

from repro.eval import table3


def test_bench_table3(once):
    res = once(table3.run)
    print()
    print(res.render())
    ff, pd = res.measured
    # randomness and latency columns are exact
    assert ff.rand_per_round == pd.rand_per_round == 14
    assert ff.cycles_per_round == 7
    assert pd.cycles_per_round == 2
    # area shape: PD total dominated by DelayUnits (paper: 52273 vs
    # 12592 GE), FF in the paper's GE ballpark
    assert pd.asic_ge_no_delay < 0.35 * pd.asic_ge
    assert 0.5 < ff.asic_ge / 15956 < 2.0
    assert 0.5 < pd.asic_ge / 52273 < 2.0
    # frequency shape: FF engine is much faster
    assert ff.max_freq_mhz > 5 * pd.max_freq_mhz
