"""Certification pipeline + compile CLI.

End-to-end certificates for the DES target (criterion c), the
arrival-class site argument, whole-netlist exact mode on a
single-gadget compile, JSON artifacts, and CLI exit codes.
"""

import json

import pytest

from repro.compile import (
    certify_netlist,
    compile_spec,
    des_sbox_spec,
    site_classes,
    site_spec_for_arrivals,
)
from repro.compile.cli import main as compile_main
from repro.verify.report import verify


@pytest.fixture(scope="module")
def des_cert():
    return compile_spec(des_sbox_spec(0), style="pd", refresh="full").certify()


# ----------------------------------------------------------------------
# certificates
# ----------------------------------------------------------------------
def test_des_pd_full_refresh_certifies(des_cert):
    assert des_cert.functional["ok"]
    assert des_cert.static["ok"]
    assert des_cert.exact_ok
    assert des_cert.ok
    assert des_cert.counterexample is None
    # every arrival class was actually verified
    assert des_cert.sites and all(s.secure for s in des_cert.sites)


def test_des_pd_selective_refresh_certifies():
    result = compile_spec(
        des_sbox_spec(0), style="pd", refresh="selective",
        refresh_n_per_input=400,
    )
    cert = result.certify()
    assert cert.ok
    assert result.netlist.fresh_bits < 14  # strictly fewer fresh bits


def test_des_ff_certifies_via_gadget_and_layering():
    cert = compile_spec(des_sbox_spec(0), style="ff").certify()
    assert cert.ok
    assert cert.gadget_ff and cert.gadget_ff["secure"]
    assert cert.layering["ok"]


def test_site_classes_cover_all_gadgets():
    net = compile_spec(des_sbox_spec(0), style="pd").netlist
    classes = site_classes(net)
    assert sum(len(s.tags) for s in classes) == net.n_secand2 == 30
    # grouping compresses: far fewer verifier runs than gadgets
    assert len(classes) < 30


def test_site_spec_ordering_decides_security():
    # y1 strictly last -> exactly secure
    ordered = site_spec_for_arrivals((0, 0, 0, 400), name="ok_site")
    assert verify(ordered).secure
    # y1 early -> the Eq. 2 recombination leaks
    leaky = site_spec_for_arrivals((400, 400, 400, 0), name="bad_site")
    assert not verify(leaky).secure


def test_whole_mode_passes_single_gadget_compile():
    # one product, one secand2: the entire netlist fits the exact
    # verifier and is secure even without the compositional argument
    cert = compile_spec([0, 0, 0, 1], style="pd").certify(exact="whole")
    assert cert.whole and cert.whole["secure"]
    assert cert.ok


def test_optional_checks_recorded_in_certificate():
    cert = compile_spec([0, 0, 0, 1], style="pd").certify(
        uniformity_n=300, tvla_traces=400
    )
    assert cert.uniformity["checked"] and cert.uniformity["ok"]
    assert cert.tvla["checked"] and not cert.tvla["detected"]


def test_certificate_json_schema(des_cert):
    d = des_cert.to_json_dict()
    assert d["schema"] == "compile_certificate/v1"
    for key in ("name", "style", "ok", "functional", "static", "cost"):
        assert key in d
    json.dumps(d)  # fully serialisable


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_smoke_json_report(tmp_path, capsys):
    out = tmp_path / "compile.json"
    status = compile_main(["--des-sbox", "0", "--json", str(out)])
    capsys.readouterr()
    assert status == 0
    report = json.loads(out.read_text())
    assert report["schema"] == "compile_cli/v1"
    assert report["ok"] is True
    assert report["n_targets"] == report["n_certified"] == 1
    assert report["results"][0]["certificate"]["ok"] is True


def test_cli_rejection_exit_code(tmp_path, capsys):
    status = compile_main(
        ["--des-sbox", "0", "--n-luts", "1", "--margin", "400",
         "--json", str(tmp_path / "reject.json")]
    )
    capsys.readouterr()
    assert status == 1
    report = json.loads((tmp_path / "reject.json").read_text())
    assert report["ok"] is False
    assert report["results"][0]["error"] == "schedule"


def test_cli_usage_error_exit_code(capsys):
    # no target selected -> usage error
    assert compile_main([]) == 2
    # argparse rejects bad choices with its conventional exit code
    with pytest.raises(SystemExit) as exc_info:
        compile_main(["--style", "nonsense"])
    assert exc_info.value.code == 2
    capsys.readouterr()


def test_main_module_dispatches_compile(tmp_path, capsys):
    from repro.__main__ import main as repro_main

    status = repro_main(
        ["compile", "--present-sbox", "--json", str(tmp_path / "p.json")]
    )
    capsys.readouterr()
    assert status == 0
    assert json.loads((tmp_path / "p.json").read_text())["ok"] is True
