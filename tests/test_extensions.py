"""Tests for the extension features: masked decrypt/3DES, selective
refresh (paper future work), the 6-cycle FF ablation, Verilog export."""

import numpy as np
import pytest

from repro.des.bits import bitarray_to_ints, int_to_bitarray
from repro.des.masked_core import MaskedDES, MaskedSboxModel
from repro.des.reference import des_encrypt_bits, tdes_encrypt
from repro.des.selective_refresh import (
    greedy_minimal_refresh,
    refresh_bits_used,
    uniformity_defect,
)
from repro.leakage.prng import RandomnessSource
from repro.netlist.verilog import sanitize_identifier, to_verilog


def blocks(n, seed=0):
    rng = np.random.default_rng(seed)
    pt = int_to_bitarray(rng.integers(0, 2**63, n, dtype=np.uint64), 64)
    ky = int_to_bitarray(rng.integers(0, 2**63, n, dtype=np.uint64), 64)
    return pt, ky


# ----------------------------------------------------------------------
# masked decrypt + TDES
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", ["ff", "pd"])
def test_masked_decrypt_inverts_encrypt(variant):
    pt, ky = blocks(64)
    core = MaskedDES(variant)
    prng = RandomnessSource(1)
    ct = core.encrypt(pt, ky, prng)
    back = core.decrypt(ct, ky, prng)
    assert np.array_equal(back, pt)


def test_masked_tdes_matches_reference():
    rng = np.random.default_rng(2)
    n = 16
    pt_ints = rng.integers(0, 2**63, n, dtype=np.uint64)
    k1, k2, k3 = 0x0123456789ABCDEF, 0xFEDCBA9876543210, 0x133457799BBCDFF1
    pt = int_to_bitarray(pt_ints, 64)
    core = MaskedDES("ff")
    ct = core.tdes_encrypt(
        pt,
        int_to_bitarray(np.uint64(k1), 64, n),
        int_to_bitarray(np.uint64(k2), 64, n),
        int_to_bitarray(np.uint64(k3), 64, n),
        prng=RandomnessSource(3),
    )
    got = bitarray_to_ints(ct)
    for i in range(n):
        assert int(got[i]) == tdes_encrypt(int(pt_ints[i]), k1, k2, k3)


def test_masked_tdes_roundtrip_two_key():
    pt, _ = blocks(16, seed=3)
    rng = np.random.default_rng(4)
    k1 = int_to_bitarray(rng.integers(0, 2**63, 16, dtype=np.uint64), 64)
    k2 = int_to_bitarray(rng.integers(0, 2**63, 16, dtype=np.uint64), 64)
    core = MaskedDES("pd")
    ct = core.tdes_encrypt(pt, k1, k2, prng=RandomnessSource(5))
    back = core.tdes_decrypt(ct, k1, k2, prng=RandomnessSource(6))
    assert np.array_equal(back, pt)


# ----------------------------------------------------------------------
# selective refresh (future work of Sec. IV-A)
# ----------------------------------------------------------------------
def test_refresh_mask_preserves_functionality():
    rng = np.random.default_rng(7)
    model = MaskedSboxModel(2)
    x0 = rng.integers(0, 2, (6, 500)).astype(bool)
    x1 = rng.integers(0, 2, (6, 500)).astype(bool)
    r = rng.integers(0, 2, (14, 500)).astype(bool)
    full = model(x0, x1, r)
    none = model(x0, x1, r, refresh_mask=[False] * 14)
    assert np.array_equal(full[0] ^ full[1], none[0] ^ none[1])


def test_no_refresh_breaks_uniformity():
    """Without any refresh the output-share distribution depends on the
    unshared input — the very defect the refresh layer fixes."""
    defect_none = uniformity_defect(0, [False] * 14, n_per_input=1500, seed=1)
    defect_full = uniformity_defect(0, [True] * 14, n_per_input=1500, seed=1)
    assert defect_none > 5 * defect_full
    assert defect_none > 0.1


def test_greedy_search_finds_smaller_plan():
    plan = greedy_minimal_refresh(0, n_per_input=1500, seed=2)
    assert plan.bits_used < 14
    assert plan.bits_used >= 1
    # the found plan keeps the defect near the full-refresh floor
    assert plan.defect < 3 * plan.baseline_defect + 1e-3


def test_refresh_bits_used_sums():
    plans = [greedy_minimal_refresh(s, n_per_input=1000, seed=3) for s in (0, 1)]
    assert refresh_bits_used(plans) == plans[0].bits_used + plans[1].bits_used


# ----------------------------------------------------------------------
# 6-cycle FF engine (output register removed)
# ----------------------------------------------------------------------
def test_six_cycle_ff_engine_functional():
    from repro.des.engines import MaskedDESNetlistEngine

    eng = MaskedDESNetlistEngine("ff", sbox_output_register=False)
    assert eng.cycles_per_round == 6
    pt, ky = blocks(24, seed=8)
    ct, power = eng.run_batch(pt, ky, RandomnessSource(9))
    assert np.array_equal(ct, des_encrypt_bits(pt, ky))
    assert power.sum() > 0
    # fewer FFs than the 7-cycle version (64 output-register FFs gone)
    full = MaskedDESNetlistEngine("ff")
    n_ff = lambda e: sum(1 for g in e.circuit.gates if g.is_ff)
    assert n_ff(full) - n_ff(eng) == 64


# ----------------------------------------------------------------------
# Verilog export
# ----------------------------------------------------------------------
def test_sanitize_identifier():
    assert sanitize_identifier("a.b-c") == "a_b_c"
    assert sanitize_identifier("0foo") == "n_0foo"
    assert sanitize_identifier("ok_name") == "ok_name"


def test_verilog_combinational_gadget():
    from repro.core.gadgets import build_secand2

    v = to_verilog(build_secand2())
    assert "module secAND2" in v
    assert "endmodule" in v
    assert v.count("(x0 & y0) ^ (x0 | ~y1)") == 1
    assert "always" not in v  # purely combinational


def test_verilog_ff_gadget_has_reset_and_enable():
    from repro.core.gadgets import build_secand2_ff

    v = to_verilog(build_secand2_ff(enable=True))
    assert "input clk;" in v
    assert "rst_gadget" in v
    assert "always @(posedge clk)" in v
    assert "if (rst_gadget)" in v
    assert "else if (en)" in v


def test_verilog_delay_lines_expanded():
    from repro.core.gadgets import build_secand2_pd

    v = to_verilog(build_secand2_pd(n_luts=3))
    # x0: 1 unit x 3 LUTs, x1: same, y1: 2 units x 3 LUTs => 12 LUTs
    assert v.count("// delay LUT") == 12
    assert '(* keep = "true" *)' in v


def test_verilog_full_engine_exports():
    from repro.des.engines import MaskedDESNetlistEngine

    eng = MaskedDESNetlistEngine("ff")
    v = to_verilog(eng.circuit, module_name="masked_des_ff")
    assert "module masked_des_ff" in v
    assert v.count("always @(posedge clk)") == sum(
        1 for g in eng.circuit.gates if g.is_ff
    )


def test_verilog_trichina_lut():
    from repro.core.baselines import build_trichina

    v = to_verilog(build_trichina(style="lut"))
    assert "(x0 & y0) ^ (x0 & y1) ^ (x1 & y1) ^ (x1 & y0)" in v


# ----------------------------------------------------------------------
# VCD export + CLI
# ----------------------------------------------------------------------
def test_vcd_export_glitch_waveform():
    from repro.core.gadgets import build_secand2
    from repro.sim.simulator import ScalarSimulator
    from repro.sim.vcd import to_vcd

    c = build_secand2()
    sim = ScalarSimulator(c)
    sim.evaluate_combinational({c.wire(n): False for n in ("x0", "x1", "y0", "y1")})
    sim.settle([(0, c.wire("y0"), True), (1000, c.wire("x0"), True)])
    vcd = to_vcd(sim)
    assert "$timescale 1ps $end" in vcd
    assert "$var wire 1" in vcd
    assert "#0" in vcd and "#1000" in vcd
    assert "$enddefinitions" in vcd


def test_vcd_selected_wires():
    from repro.core.gadgets import build_secand2
    from repro.sim.simulator import ScalarSimulator
    from repro.sim.vcd import to_vcd

    c = build_secand2()
    sim = ScalarSimulator(c)
    vcd = to_vcd(sim, wires=["x0", "y1"])
    assert vcd.count("$var wire 1") == 2


def test_cli_list(capsys):
    from repro.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "fig17" in out


def test_cli_unknown_experiment(capsys):
    from repro.__main__ import main

    assert main(["nope"]) == 2


def test_cli_runs_table3(capsys):
    from repro.__main__ import main

    assert main(["table3", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "secAND2-FF" in out
