"""Unit tests for area / utilisation accounting."""

import pytest

from repro.netlist.area import area_ge, fpga_utilization, report
from repro.netlist.cells import cell, delay_unit_area_ge
from repro.netlist.circuit import Circuit


def gadget_circuit():
    c = Circuit("g")
    a, b = c.add_inputs("a", "b")
    z = c.xor2(c.and2(a, b), c.or2(a, b))
    c.mark_output("z", z)
    return c


def test_area_ge_sums_cells():
    c = gadget_circuit()
    expected = (
        cell("AND2").area_ge + cell("OR2").area_ge + cell("XOR2").area_ge
    )
    assert area_ge(c) == pytest.approx(expected)


def test_area_excluding_delay():
    c = gadget_circuit()
    a = c.wire("a")
    c.delay_line(a, 2, 10)
    full = area_ge(c, include_delay=True)
    logic = area_ge(c, include_delay=False)
    assert full - logic == pytest.approx(2 * delay_unit_area_ge(10))


def test_fpga_utilization_counts_ffs():
    c = gadget_circuit()
    c.dff(c.wire("a"))
    util = fpga_utilization(c)
    assert util["ff"] == 1
    assert util["lut_logic"] >= 1


def test_fpga_delay_luts_counted_exactly():
    c = Circuit()
    a = c.add_input("a")
    c.delay_line(a, 3, 10)  # 3 units x 10 LUTs
    util = fpga_utilization(c)
    assert util["lut_delay"] == 30
    assert util["lut"] == util["lut_logic"] + 30


def test_report_fields_consistent():
    c = gadget_circuit()
    rep = report(c)
    assert rep.name == "g"
    assert rep.area_ge == pytest.approx(area_ge(c))
    assert rep.n_ff == 0
    assert rep.cell_counts == {"AND2": 1, "OR2": 1, "XOR2": 1}
    assert "GE" in rep.row()


def test_pd_engine_area_dominated_by_delays():
    """Table III shape: PD total ~52 kGE, only ~12.5 kGE excluding
    DelayUnits (i.e. delay lines are the bulk of the area)."""
    from repro.des.engines import MaskedDESNetlistEngine

    eng = MaskedDESNetlistEngine("pd", n_luts=10)
    rep = report(eng.circuit)
    assert rep.area_ge_no_delay < 0.35 * rep.area_ge
    # and in the same ballpark as the paper's 12592 GE logic estimate
    assert 5_000 < rep.area_ge_no_delay < 25_000
    assert 30_000 < rep.area_ge < 90_000


def test_ff_engine_area_in_paper_ballpark():
    from repro.des.engines import MaskedDESNetlistEngine

    eng = MaskedDESNetlistEngine("ff")
    rep = report(eng.circuit)
    # paper: 15956 GE incl. masked key schedule
    assert 7_000 < rep.area_ge < 30_000
    assert rep.area_ge == rep.area_ge_no_delay  # no delay lines in FF
