"""Tests for the reference DES/3DES against published vectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.bits import bitarray_to_ints, int_to_bitarray
from repro.des.reference import (
    des_decrypt,
    des_encrypt,
    des_encrypt_bits,
    feistel,
    sbox_lookup,
    tdes_decrypt,
    tdes_encrypt,
)

# Classic published test vectors.
VECTORS = [
    (0x133457799BBCDFF1, 0x0123456789ABCDEF, 0x85E813540F0AB405),
    (0x0E329232EA6D0D73, 0x8787878787878787, 0x0000000000000000),
    (0x0101010101010101, 0x0000000000000000, 0x8CA64DE9C1B123A7),
    (0x10316E028C8F3B4A, 0x0000000000000000, 0x82DCBAFBDEAB6602),
]


@pytest.mark.parametrize("key,pt,ct", VECTORS)
def test_known_vectors(key, pt, ct):
    assert des_encrypt(pt, key) == ct


@pytest.mark.parametrize("key,pt,ct", VECTORS)
def test_decrypt_inverts(key, pt, ct):
    assert des_decrypt(ct, key) == pt


@given(
    st.integers(min_value=0, max_value=2**64 - 1),
    st.integers(min_value=0, max_value=2**64 - 1),
)
@settings(max_examples=25, deadline=None)
def test_encrypt_decrypt_roundtrip_property(key, pt):
    assert des_decrypt(des_encrypt(pt, key), key) == pt


def test_sbox_lookup_row_column_mapping():
    # input 0b101010: row = 1,0 -> 0b10 = 2; col = 0b0101 = 5
    from repro.des.tables import SBOXES

    assert sbox_lookup(0, 0b101010) == SBOXES[0][2][5]
    assert sbox_lookup(3, 0b000001) == SBOXES[3][1][0]


def test_feistel_output_32_bits():
    out = feistel(0xFFFFFFFF, 0)
    assert 0 <= out < 1 << 32


def test_tdes_single_key_degenerates_to_des():
    k = 0x133457799BBCDFF1
    pt = 0x0123456789ABCDEF
    assert tdes_encrypt(pt, k, k, k) == des_encrypt(pt, k)


def test_tdes_roundtrip_two_key():
    k1, k2 = 0x0123456789ABCDEF, 0xFEDCBA9876543210
    pt = 0x1122334455667788
    ct = tdes_encrypt(pt, k1, k2)
    assert tdes_decrypt(ct, k1, k2) == pt


def test_tdes_differs_from_des():
    k1, k2 = 0x0123456789ABCDEF, 0xFEDCBA9876543210
    pt = 0x1122334455667788
    assert tdes_encrypt(pt, k1, k2) != des_encrypt(pt, k1)


def test_vectorised_matches_scalar():
    rng = np.random.default_rng(0)
    n = 64
    pts = rng.integers(0, 2**63, n, dtype=np.uint64)
    keys = rng.integers(0, 2**63, n, dtype=np.uint64)
    ct_bits = des_encrypt_bits(int_to_bitarray(pts, 64), int_to_bitarray(keys, 64))
    cts = bitarray_to_ints(ct_bits)
    for i in range(n):
        assert int(cts[i]) == des_encrypt(int(pts[i]), int(keys[i]))


def test_avalanche():
    """Flipping one plaintext bit flips ~half the ciphertext bits."""
    key = 0x133457799BBCDFF1
    pt = 0x0123456789ABCDEF
    base = des_encrypt(pt, key)
    flipped = des_encrypt(pt ^ (1 << 20), key)
    assert 20 <= bin(base ^ flipped).count("1") <= 44


def test_key_parity_bits_ignored():
    key = 0x133457799BBCDFF1
    pt = 0x0123456789ABCDEF
    # flipping a parity bit (LSB of each key byte) changes nothing
    assert des_encrypt(pt, key ^ 0x01) == des_encrypt(pt, key)


def test_complementation_property():
    """DES complementation: E_{~K}(~P) == ~E_K(P)."""
    key = 0x133457799BBCDFF1
    pt = 0x0123456789ABCDEF
    m64 = (1 << 64) - 1
    lhs = des_encrypt(pt ^ m64, key ^ m64)
    rhs = des_encrypt(pt, key) ^ m64
    assert lhs == rhs


def test_masked_core_complementation():
    """The masked engine inherits the complementation property."""
    import numpy as np
    from repro.des.masked_core import MaskedDES
    from repro.leakage.prng import RandomnessSource

    rng = np.random.default_rng(9)
    pt = int_to_bitarray(rng.integers(0, 2**63, 16, dtype=np.uint64), 64)
    ky = int_to_bitarray(rng.integers(0, 2**63, 16, dtype=np.uint64), 64)
    core = MaskedDES("ff")
    a = core.encrypt(~pt, ~ky, RandomnessSource(1))
    b = ~core.encrypt(pt, ky, RandomnessSource(2))
    assert np.array_equal(a, b)
