"""Tests for the static arrival-order safety checker."""

import pytest

from repro.core.gadgets import SharePair, secand2, secand2_pd
from repro.faults import build_pd_bank, delay_variation, shift_gate_delay, stuck_at
from repro.netlist.circuit import Circuit
from repro.netlist.safety import (
    OrderingViolation,
    check_secand2_ordering,
    count_violations,
    min_ordering_margin,
    ordering_margins,
)


def gadget_with_arrivals(dx0=0, dx1=0, dy0=0, dy1=0, n_luts=1):
    """secAND2 whose inputs arrive after configurable delay lines."""
    c = Circuit()
    x0, x1, y0, y1 = c.add_inputs("x0", "x1", "y0", "y1")
    x = SharePair(
        c.delay_line(x0, dx0, n_luts), c.delay_line(x1, dx1, n_luts)
    )
    y = SharePair(
        c.delay_line(y0, dy0, n_luts), c.delay_line(y1, dy1, n_luts)
    )
    z = secand2(c, x, y)
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    return c


def test_fig3_schedule_is_safe():
    c = gadget_with_arrivals(dx0=1, dx1=1, dy0=0, dy1=2)
    assert check_secand2_ordering(c) == []


def test_y1_not_last_detected():
    c = gadget_with_arrivals(dx0=3, dx1=1, dy0=0, dy1=2)  # x0 after y1
    v = check_secand2_ordering(c)
    assert any(x.kind == "y1-not-last" for x in v)


def test_y1_tie_is_a_violation():
    c = gadget_with_arrivals(dx0=2, dx1=1, dy0=0, dy1=2)  # x0 ties y1
    assert any(
        x.kind == "y1-not-last" for x in check_secand2_ordering(c)
    )


def test_y0_not_first_detected():
    c = gadget_with_arrivals(dx0=1, dx1=1, dy0=2, dy1=3)  # y0 after x
    v = check_secand2_ordering(c)
    assert any(x.kind == "y0-not-first" for x in v)


def test_y0_check_can_be_disabled():
    c = gadget_with_arrivals(dx0=1, dx1=1, dy0=2, dy1=3)
    assert check_secand2_ordering(c, check_y0_first=False) == []


def test_margin_requirement():
    # safe but with only one DelayUnit (250 ps) of margin
    c = gadget_with_arrivals(dx0=1, dx1=1, dy0=0, dy1=2)
    assert check_secand2_ordering(c, min_margin_ps=0) == []
    assert check_secand2_ordering(c, min_margin_ps=10_000) != []


def test_count_violations_summary():
    c = gadget_with_arrivals(dx0=3, dx1=3, dy0=4, dy1=2)
    counts = count_violations(c)
    assert counts["y1-not-last"] == 1
    assert counts["y0-not-first"] == 1


def test_violation_str_readable():
    c = gadget_with_arrivals(dx0=3, dx1=1, dy0=0, dy1=2)
    v = check_secand2_ordering(c)[0]
    assert "y1-not-last" in str(v)
    assert "margin" in str(v)


def test_circuit_without_annotations_is_trivially_safe():
    c = Circuit()
    a, b = c.add_inputs("a", "b")
    c.and2(a, b)
    assert check_secand2_ordering(c) == []


# ----------------------------------------------------------------------
# ordering margins and properties under randomized per-gate delays
# ----------------------------------------------------------------------
def test_ordering_margins_report_slack():
    bank = build_pd_bank(n_instances=3, n_luts=2)  # x@500, y1@1000 ps
    margins = ordering_margins(bank)
    assert len(margins) == 3
    for m in margins:
        assert m.y1_margin_ps == 500.0
        assert m.y0_margin_ps == 500.0
        assert m.worst_ps == 500.0
    worst = min_ordering_margin(bank)
    assert worst is not None and worst.worst_ps == 500.0
    assert "y1 margin" in str(worst)


def test_min_ordering_margin_none_without_annotations():
    c = Circuit()
    a, b = c.add_inputs("a", "b")
    c.and2(a, b)
    assert min_ordering_margin(c) is None


@pytest.mark.parametrize("seed", range(20))
def test_perturbation_below_margin_never_flags(seed):
    """Property: bounded delay variation strictly smaller than the
    margin can never produce an ordering violation.  Uniform draws move
    every arrival by at most sigma, so each margin shrinks by at most
    2*sigma = 400 < 500 ps."""
    bank = build_pd_bank(n_instances=4, n_luts=2)
    perturbed = delay_variation(
        bank, 200.0, seed=seed, distribution="uniform"
    )
    assert check_secand2_ordering(perturbed) == []


@pytest.mark.parametrize("seed", range(20))
def test_perturbation_past_margin_always_flags(seed):
    """Property: a targeted shift that eats the whole margin plus the
    worst-case variation is flagged for every randomization."""
    bank = build_pd_bank(n_instances=4, n_luts=2)
    jittered = delay_variation(
        bank, 100.0, seed=seed, distribution="uniform"
    )
    # y1 margin of i0 becomes <= 500 - 800 + 2*100 < 0
    broken = shift_gate_delay(jittered, "i0_dl_y1", -800.0)
    v = check_secand2_ordering(broken)
    assert any(x.gadget == "i0" and x.kind == "y1-not-last" for x in v)


@pytest.mark.parametrize("seed", range(10))
def test_checker_agrees_with_margins_under_random_delays(seed):
    """The boolean checker and the quantitative margins must agree on
    every gadget: y1 flags iff y1 margin < 1 ps, y0 flags iff y0 margin
    is negative."""
    bank = build_pd_bank(n_instances=6, n_luts=2)
    perturbed = delay_variation(bank, 300.0, seed=seed)
    margins = {m.gadget: m for m in ordering_margins(perturbed)}
    violations = check_secand2_ordering(perturbed)
    y1_flagged = {v.gadget for v in violations if v.kind == "y1-not-last"}
    y0_flagged = {v.gadget for v in violations if v.kind == "y0-not-first"}
    assert y1_flagged == {
        g for g, m in margins.items() if m.y1_margin_ps < 1
    }
    assert y0_flagged == {
        g for g, m in margins.items() if m.y0_margin_ps < 0
    }


def test_pd_gadget_with_enough_luts_safe_under_jitter():
    """The Fig. 15 mechanism in miniature: the same jittered circuit is
    unsafe with a 1-LUT DelayUnit and safe with a large one."""
    results = {}
    for n_luts in (1, 10):
        c = Circuit()
        c.enable_routing_jitter(123, gate_sigma_ps=0.0, delay_sigma_ps=700.0)
        x = SharePair(*c.add_inputs("x0", "x1"))
        y = SharePair(*c.add_inputs("y0", "y1"))
        # several gadget instances to give jitter a chance to violate
        for k in range(20):
            secand2_pd(c, x, y, n_luts=n_luts, tag=f"g{k}")
        results[n_luts] = len(check_secand2_ordering(c, check_y0_first=False))
    assert results[1] > 0
    assert results[10] == 0


# ----------------------------------------------------------------------
# degenerate circuits: no cores, constant operands, floating operands
# ----------------------------------------------------------------------
def test_no_secand2_cores_everything_empty():
    """A circuit without secAND2 annotations has nothing to check —
    every entry point returns its empty form, not an error."""
    c = Circuit()
    a, b = c.add_inputs("a", "b")
    c.add_gate("XOR2", [a, b], name="plain_xor")
    assert check_secand2_ordering(c) == []
    assert ordering_margins(c) == []
    assert min_ordering_margin(c) is None
    assert count_violations(c) == {"y1-not-last": 0, "y0-not-first": 0}


def test_stuck_operand_core_skipped():
    """A core whose y1 operand is pinned by a stuck-at fault has no
    arrival order to violate: it must be skipped, not reported as a
    y1-not-last violation via the constant's zero-ish arrival time."""
    bank = build_pd_bank(n_instances=2, n_luts=1)
    core = bank.annotations["secand2"][0]
    faulted = stuck_at(bank, core["y1"], True)

    assert check_secand2_ordering(faulted) == []
    tags = {m.gadget for m in ordering_margins(faulted)}
    assert core["tag"] not in tags
    # the un-faulted sibling core still reports normally
    assert len(tags) == 1
    worst = min_ordering_margin(faulted)
    assert worst is not None and worst.gadget in tags


def test_all_cores_stuck_min_margin_none():
    bank = build_pd_bank(n_instances=1, n_luts=1)
    core = bank.annotations["secand2"][0]
    faulted = stuck_at(bank, core["y1"], False)
    assert ordering_margins(faulted) == []
    assert min_ordering_margin(faulted) is None
    assert count_violations(faulted) == {"y1-not-last": 0, "y0-not-first": 0}


def test_floating_operand_core_skipped():
    """An undriven non-input operand never arrives; the old ``0 ps``
    fallback made it look like an early x share."""
    c = Circuit()
    x0, x1, y0 = c.add_inputs("x0", "x1", "y0")
    y1 = c.add_wire("y1_floating")
    secand2(c, SharePair(x0, x1), SharePair(y0, y1))
    assert check_secand2_ordering(c) == []
    assert ordering_margins(c) == []
    assert min_ordering_margin(c) is None
