"""Tests for the Table I input-sequence experiment."""

import numpy as np
import pytest

from repro.core.sequences import (
    ALL_SEQUENCES,
    INPUT_NAMES,
    SequenceSource,
    assess_sequence,
    run_table1,
    sequence_is_safe,
)


def test_all_sequences_enumerated():
    assert len(ALL_SEQUENCES) == 24
    assert len(set(ALL_SEQUENCES)) == 24
    for seq in ALL_SEQUENCES:
        assert sorted(seq) == sorted(INPUT_NAMES)


def test_table1_rule():
    """Exactly the 12 sequences ending in an x share are leaky."""
    leaky = [s for s in ALL_SEQUENCES if not sequence_is_safe(s)]
    assert len(leaky) == 12
    assert all(s[-1] in ("x0", "x1") for s in leaky)
    safe = [s for s in ALL_SEQUENCES if sequence_is_safe(s)]
    assert all(s[-1] in ("y0", "y1") for s in safe)


def test_source_rejects_bad_sequence():
    with pytest.raises(ValueError):
        SequenceSource(("x0", "x0", "y0", "y1"))


def test_source_trace_shape():
    src = SequenceSource(("x0", "x1", "y0", "y1"), n_instances=2)
    rng = np.random.default_rng(0)
    fixed = np.zeros(100, bool)
    fixed[:50] = True
    traces = src.acquire(fixed, rng)
    assert traces.shape == (100, src.n_samples)
    assert traces.sum() > 0


def test_source_fixed_class_uses_fixed_values():
    """With fixed (x, y) = (0, 0) nothing in the fixed class toggles
    after reset (all shares of 0 with mask 0 ... not necessarily;
    masks are random).  Instead check determinism: the fixed class has
    lower stimulus entropy -> per-bin variance differs."""
    src = SequenceSource(("y0", "y1", "x1", "x0"), fixed_xy=(1, 1))
    rng = np.random.default_rng(1)
    fixed = np.zeros(4000, bool)
    fixed[:2000] = True
    traces = src.acquire(fixed, rng)
    # the leak bin: fixed class (y=1) has strictly larger mean power
    diff = traces[fixed].mean(0) - traces[~fixed].mean(0)
    assert diff.max() > 0.1


@pytest.mark.parametrize(
    "seq,expect_leak",
    [
        (("y0", "y1", "x1", "x0"), True),
        (("y1", "y0", "x0", "x1"), True),
        (("x0", "x1", "y0", "y1"), False),
        (("x1", "x0", "y1", "y0"), False),
    ],
)
def test_assess_selected_sequences(seq, expect_leak):
    """The Table I result on a representative subset (full 24-sequence
    sweep lives in the benchmark harness)."""
    v = assess_sequence(seq, n_traces=20_000, n_instances=8, seed=5)
    assert v.leaks == expect_leak
    assert v.matches_paper


def test_verdict_row_rendering():
    v = assess_sequence(("x0", "x1", "y0", "y1"), n_traces=4000, seed=1)
    row = v.row()
    assert "x0 -> x1 -> y0 -> y1" in row
    assert "max|t1|" in row


def test_run_table1_subset():
    verdicts = run_table1(
        sequences=[("y0", "y1", "x1", "x0"), ("x0", "x1", "y0", "y1")],
        n_traces=15_000,
        seed=2,
    )
    assert len(verdicts) == 2
    assert verdicts[0].leaks and not verdicts[1].leaks


def test_second_order_leakage_present_in_safe_sequence():
    """Even safe sequences show higher-order leakage (2 shares only)."""
    v = assess_sequence(
        ("y0", "y1", "x0", "x1"), n_traces=20_000, noise_sigma=0.5, seed=3
    )
    assert v.leaks  # x1 last -> leaky sequence
    v2 = assess_sequence(
        ("x0", "x1", "y0", "y1"), n_traces=20_000, noise_sigma=0.5, seed=3
    )
    assert not v2.leaks
    assert v2.max_t2 > v2.max_t1  # second order dominates
