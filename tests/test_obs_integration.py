"""Integration tests: tracing/metrics across the campaign runners.

The observability contract, end to end:

* a traced campaign is **bitwise identical** to an untraced one —
  spans observe the clock, never the data path;
* worker spans propagate across process boundaries (``fork`` *and*
  ``spawn``) and root under the parent's ``campaign.run`` span;
* the metrics registry reconciles **exactly** with the
  ``CampaignStats`` counters (``reconcile()`` returns no mismatches);
* the merged trace explains the run: direct children cover >= 90% of
  the ``campaign.run`` wall-clock on the supervised packed workload;
* the ``python -m repro obs`` CLI records, summarises and converts.
"""

import json
import multiprocessing
import tempfile
import warnings

import numpy as np
import pytest

from repro.core.sequences import INPUT_NAMES, SequenceSource
from repro.leakage.acquisition import CampaignConfig, run_campaign
from repro.leakage.supervisor import run_campaign_supervised
from repro.obs import metrics as obs_metrics
from repro.obs.cli import main as obs_main
from repro.obs.export import from_chrome, read_jsonl
from repro.obs.summary import coverage, phase_stats
from repro.obs.trace import disable_tracing, enable_tracing


@pytest.fixture(autouse=True)
def _tracing_off():
    disable_tracing()
    yield
    disable_tracing()


def _bitwise_equal(a, b):
    return (
        np.array_equal(a.t1, b.t1)
        and np.array_equal(a.t2, b.t2)
        and np.array_equal(a.t3, b.t3)
    )


def _source():
    return SequenceSource(INPUT_NAMES, n_instances=8)


def _run_parallel_traced(start_method):
    """One traced 2-worker campaign; returns (result, spans)."""
    config = CampaignConfig(
        n_traces=256,
        batch_size=64,
        noise_sigma=1.0,
        seed=7,
        n_workers=2,
        start_method=start_method,
        label=f"obs.it.{start_method}",
    )
    tracer = enable_tracing()
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # 2 workers on small CI hosts
            result = run_campaign(_source(), config)
        spans = tracer.drain()
    finally:
        disable_tracing()
    return result, spans


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_cross_process_span_propagation(start_method):
    """Worker spans reach the parent and root under campaign.run.

    ``fork`` inherits the parent's enabled tracer (which the worker
    must replace, not append to); ``spawn`` starts cold and must be
    enabled purely from the shipped trace context.  Both must produce
    one coherent tree.
    """
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} start method unavailable")
    result, spans = _run_parallel_traced(start_method)

    untraced = run_campaign(
        _source(),
        CampaignConfig(
            n_traces=256, batch_size=64, noise_sigma=1.0, seed=7,
            label="obs.it.untraced",
        ),
    )
    assert _bitwise_equal(result, untraced)

    pids = {s["pid"] for s in spans}
    assert len(pids) >= 2, "no worker-process spans made it back"

    runs = [s for s in spans if s["name"] == "campaign.run"]
    assert len(runs) == 1
    run_span = runs[0]
    assert all(s["trace_id"] == run_span["trace_id"] for s in spans)

    batches = [s for s in spans if s["name"] == "campaign.batch"]
    assert len(batches) == 4
    assert {s["parent_id"] for s in batches} == {run_span["span_id"]}
    assert all(s["pid"] != run_span["pid"] for s in batches)

    phases = phase_stats(spans)
    assert {"simulate", "noise", "accumulate", "merge"} <= set(phases)
    assert phases["simulate"]["count"] == 4


def test_traced_campaign_metrics_reconcile_exactly():
    """One snapshot diff accounts for the whole serial campaign."""
    config = CampaignConfig(
        n_traces=512, batch_size=128, noise_sigma=1.0, seed=3,
        label="obs.it.reconcile",
    )
    before = obs_metrics.snapshot()
    result = run_campaign(_source(), config)
    diff = obs_metrics.snapshot().diff(before)
    assert result.stats.reconcile(diff) == {}


def test_supervised_packed_traced_run_contract():
    """The acceptance bar: supervised parallel packed campaign, traced.

    Bitwise-identical to the untraced run, metrics reconcile exactly,
    per-phase breakdown attached and rendered, and the span tree
    covers >= 90% of the campaign.run wall-clock.
    """
    from repro.eval.report import campaign_stats_panel

    def config(label):
        return CampaignConfig(
            n_traces=2048, batch_size=256, noise_sigma=1.0, seed=0,
            n_workers=2, pack_traces=True, label=label,
        )

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with tempfile.TemporaryDirectory() as workdir:
            untraced = run_campaign_supervised(
                _source(), config("obs.sup.untraced"),
                checkpoint_path=f"{workdir}/untraced.npz",
                handle_signals=False,
            )

        before = obs_metrics.snapshot()
        tracer = enable_tracing()
        try:
            with tempfile.TemporaryDirectory() as workdir:
                traced = run_campaign_supervised(
                    _source(), config("obs.sup.traced"),
                    checkpoint_path=f"{workdir}/traced.npz",
                    handle_signals=False,
                )
            spans = tracer.drain()
        finally:
            disable_tracing()
        diff = obs_metrics.snapshot().diff(before)

    assert _bitwise_equal(traced, untraced)
    assert traced.stats.reconcile(diff) == {}
    assert untraced.stats.phases == {}  # untraced runs stay clean

    assert coverage(spans) >= 0.90
    phases = traced.stats.phases
    assert {"simulate", "merge", "checkpoint"} <= set(phases)
    assert phases["simulate"]["count"] == 8
    assert all(p["total_s"] >= 0 for p in phases.values())

    panel = campaign_stats_panel(traced.stats)
    assert "phases:" in panel
    assert "simulate" in panel and "share" in panel

    pool_setups = [s for s in spans if s["name"] == "campaign.pool_setup"]
    checkpoints = [s for s in spans if s["name"] == "campaign.checkpoint"]
    assert pool_setups and checkpoints
    run_id = next(
        s["span_id"] for s in spans if s["name"] == "campaign.run"
    )
    assert all(s["parent_id"] == run_id for s in pool_setups)


def test_obs_cli_record_summary_convert(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    chrome = tmp_path / "trace.json"
    rc = obs_main([
        "record", "--n-traces", "128", "--batch-size", "32",
        "--out", str(out), "--chrome", str(chrome),
    ])
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "wrote" in stdout and "coverage" in stdout

    spans = read_jsonl(out)
    assert spans
    assert any(s["name"] == "campaign.run" for s in spans)
    payload = json.loads(chrome.read_text())
    assert payload["otherData"]["schema"] == "repro_obs_trace/v1"
    assert len(payload["traceEvents"]) == len(spans)
    # the Chrome file reconstructs the exact same spans
    assert {s["span_id"] for s in from_chrome(payload)} == {
        s["span_id"] for s in spans
    }

    assert obs_main(["summary", str(out)]) == 0
    assert "self ms" in capsys.readouterr().out

    chrome2 = tmp_path / "converted.json"
    assert obs_main(["convert", str(out), str(chrome2)]) == 0
    capsys.readouterr()
    assert json.loads(chrome2.read_text()) == payload

    # tracing is global state; the CLI must leave it off
    from repro.obs.trace import tracing_enabled

    assert not tracing_enabled()


def test_obs_cli_record_compile(tmp_path, capsys):
    out = tmp_path / "compile.jsonl"
    rc = obs_main(["record", "--what", "compile", "--out", str(out)])
    assert rc == 0
    capsys.readouterr()
    names = {s["name"] for s in read_jsonl(out)}
    assert {"compile.lower", "compile.emit", "certify.functional"} <= names
