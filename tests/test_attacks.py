"""Tests for the CPA attack subsystem."""

import numpy as np
import pytest

from repro.attacks.cpa import (
    AttackResult,
    correlation_matrix,
    first_order_cpa,
    second_order_cpa,
    true_subkey,
)
from repro.attacks.models import (
    hamming_weight4,
    register_hd_hypotheses,
    round1_state,
    sbox_output_hypotheses,
)

KEY = 0x133457799BBCDFF1


def test_hamming_weight4():
    assert list(hamming_weight4(np.array([0, 1, 3, 7, 15]))) == [0, 1, 2, 3, 4]


def test_correlation_matrix_perfect_correlation():
    rng = np.random.default_rng(0)
    h = rng.normal(0, 1, (3, 500))
    traces = np.zeros((500, 4))
    traces[:, 2] = 2.0 * h[1] + 5.0
    corr = correlation_matrix(traces, h)
    assert corr.shape == (3, 4)
    assert corr[1, 2] == pytest.approx(1.0)
    assert abs(corr[0, 2]) < 0.2


def test_correlation_matrix_constant_sample_is_zero():
    h = np.random.default_rng(1).normal(0, 1, (2, 100))
    traces = np.ones((100, 3))
    corr = correlation_matrix(traces, h)
    assert np.allclose(corr, 0.0)


def test_true_subkey_matches_key_schedule():
    from repro.des.keyschedule import round_keys

    k1 = round_keys(KEY)[0]
    for sbox in range(8):
        assert true_subkey(KEY, sbox) == (k1 >> (42 - 6 * sbox)) & 0x3F


def test_round1_state_shapes():
    pts = np.arange(10, dtype=np.uint64)
    l0, r0, er0 = round1_state(pts)
    assert l0.shape == (32, 10)
    assert r0.shape == (32, 10)
    assert er0.shape == (48, 10)


@pytest.mark.parametrize("model", [sbox_output_hypotheses, register_hd_hypotheses])
def test_hypotheses_shape_and_range(model):
    pts = np.random.default_rng(2).integers(0, 2**63, 200, dtype=np.uint64)
    hyps = model(pts, 3)
    assert hyps.shape == (64, 200)
    assert hyps.min() >= 0
    assert hyps.max() <= 4


def test_hypotheses_depend_on_guess():
    pts = np.random.default_rng(3).integers(0, 2**63, 500, dtype=np.uint64)
    hyps = sbox_output_hypotheses(pts, 0)
    assert not np.array_equal(hyps[0], hyps[1])


def test_sbox_output_hypothesis_matches_reference():
    """The guess equal to the true subkey must predict the real round-1
    S-box output HW."""
    from repro.des.reference import feistel, sbox_lookup
    from repro.des.bits import permute_int
    from repro.des.keyschedule import round_keys
    from repro.des.tables import E, IP

    rng = np.random.default_rng(4)
    pts = rng.integers(0, 2**63, 50, dtype=np.uint64)
    sbox = 2
    guess = true_subkey(KEY, sbox)
    hyps = sbox_output_hypotheses(pts, sbox)
    k1 = round_keys(KEY)[0]
    for i, pt in enumerate(pts):
        st = permute_int(int(pt), IP, 64)
        r0 = st & 0xFFFFFFFF
        x = permute_int(r0, E, 32) ^ k1
        chunk = (x >> (42 - 6 * sbox)) & 0x3F
        out = sbox_lookup(sbox, chunk)
        assert hyps[guess, i] == bin(out).count("1")


def test_attack_result_ranking():
    scores = np.zeros(64)
    scores[13] = 0.9
    scores[7] = 0.5
    res = AttackResult(sbox=0, scores=scores, correct_guess=7)
    assert res.best_guess == 13
    assert res.rank_of_correct == 1
    assert not res.success
    assert "resisted" in res.row()


def test_first_order_cpa_on_synthetic_leakage():
    """Traces built as HW(sbox out) + noise must be broken instantly."""
    rng = np.random.default_rng(5)
    pts = rng.integers(0, 2**63, 1500, dtype=np.uint64)
    sbox = 4
    guess = true_subkey(KEY, sbox)
    hyps = sbox_output_hypotheses(pts, sbox)
    traces = np.zeros((1500, 6), dtype=np.float64)
    traces[:, 3] = hyps[guess] + rng.normal(0, 1.0, 1500)
    traces += rng.normal(0, 0.5, traces.shape)
    res = first_order_cpa(traces, pts, KEY, sbox, sbox_output_hypotheses)
    assert res.success


def test_second_order_cpa_on_synthetic_masked_leakage():
    """Parallel-share leakage: power = HW(o^m) + HW(m); the mean is
    constant but the variance depends on HW(o) — the centered-square
    attack must recover the key."""
    rng = np.random.default_rng(6)
    n = 30000
    pts = rng.integers(0, 2**63, n, dtype=np.uint64)
    sbox = 1
    guess = true_subkey(KEY, sbox)
    hyps = sbox_output_hypotheses(pts, sbox)  # HW of unshared output
    # rebuild output values from HW is not possible; instead use the
    # model directly: simulate shares of a value with that HW profile
    from repro.attacks.models import _sbox_out_values, round1_state

    _, _, er0 = round1_state(pts)
    out = _sbox_out_values(er0, sbox, guess)
    mask = rng.integers(0, 16, n)
    hw = lambda v: np.array([bin(int(x)).count("1") for x in v])
    power = hw(out ^ mask) + hw(mask)
    traces = np.zeros((n, 4))
    traces[:, 2] = power + rng.normal(0, 0.5, n)
    res1 = first_order_cpa(traces, pts, KEY, sbox, sbox_output_hypotheses)
    res2 = second_order_cpa(traces, pts, KEY, sbox, sbox_output_hypotheses)
    assert not res1.success or res1.scores[res1.best_guess] < 0.05
    assert res2.success


def test_attack_window_restriction():
    rng = np.random.default_rng(7)
    pts = rng.integers(0, 2**63, 800, dtype=np.uint64)
    sbox = 0
    guess = true_subkey(KEY, sbox)
    hyps = sbox_output_hypotheses(pts, sbox)
    traces = np.zeros((800, 10))
    traces[:, 8] = hyps[guess]
    traces += rng.normal(0, 0.3, traces.shape)
    inside = first_order_cpa(
        traces, pts, KEY, sbox, sbox_output_hypotheses, window=(6, 10)
    )
    outside = first_order_cpa(
        traces, pts, KEY, sbox, sbox_output_hypotheses, window=(0, 5)
    )
    assert inside.success
    assert outside.scores[guess] < 0.2
