"""Unit and property tests for the bit-vector helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.bits import (
    bitarray_to_ints,
    bits_to_int,
    int_to_bitarray,
    int_to_bits,
    permute_int,
    permute_rows,
)
from repro.des.tables import IP, FP


def test_int_to_bits_msb_first():
    assert int_to_bits(0b1010, 4) == [1, 0, 1, 0]
    assert int_to_bits(1, 4) == [0, 0, 0, 1]


def test_bits_to_int_roundtrip_small():
    assert bits_to_int([1, 0, 1, 0]) == 0b1010


@given(st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=50, deadline=None)
def test_scalar_roundtrip_property(v):
    assert bits_to_int(int_to_bits(v, 64)) == v


@given(st.integers(min_value=0, max_value=2**63 - 1))
@settings(max_examples=50, deadline=None)
def test_bitarray_roundtrip_property(v):
    arr = int_to_bitarray(np.array([v], dtype=np.uint64), 64)
    assert int(bitarray_to_ints(arr)[0]) == v


def test_int_to_bitarray_scalar_broadcast():
    arr = int_to_bitarray(5, 4, n=3)
    assert arr.shape == (4, 3)
    assert np.array_equal(arr[:, 0], arr[:, 2])
    assert int(bitarray_to_ints(arr)[1]) == 5


def test_int_to_bitarray_scalar_requires_n():
    with pytest.raises(ValueError):
        int_to_bitarray(5, 4)


def test_bitarray_to_ints_width_limit():
    with pytest.raises(ValueError):
        bitarray_to_ints(np.zeros((65, 1), bool))


def test_permute_int_identity():
    ident = tuple(range(1, 9))
    assert permute_int(0xA5, ident, 8) == 0xA5


def test_permute_int_reverse():
    rev = tuple(range(8, 0, -1))
    assert permute_int(0b10000000, rev, 8) == 0b00000001


@given(st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=50, deadline=None)
def test_permute_ip_fp_inverse_property(v):
    assert permute_int(permute_int(v, IP, 64), FP, 64) == v


@given(st.integers(min_value=0, max_value=2**63 - 1))
@settings(max_examples=30, deadline=None)
def test_permute_rows_matches_permute_int(v):
    arr = int_to_bitarray(np.array([v], dtype=np.uint64), 64)
    via_rows = int(bitarray_to_ints(permute_rows(arr, IP))[0])
    assert via_rows == permute_int(v, IP, 64)


def test_permute_rows_shape():
    arr = np.zeros((32, 7), bool)
    from repro.des.tables import E

    assert permute_rows(arr, E).shape == (48, 7)
