"""Unit tests for static timing analysis."""

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.cells import cell
from repro.netlist.timing import (
    CLK_TO_Q_PS,
    SETUP_PS,
    analyze,
    arrival_times,
    critical_path,
)


def test_arrival_times_chain():
    c = Circuit()
    a = c.add_input("a")
    w1 = c.inv(a)
    w2 = c.inv(w1)
    at = arrival_times(c)
    assert at[a] == 0
    assert at[w1] == cell("INV").delay_ps
    assert at[w2] == 2 * cell("INV").delay_ps


def test_arrival_times_take_worst_input():
    c = Circuit()
    a, b = c.add_inputs("a", "b")
    slow = c.xor2(a, b)          # 30 ps
    fast = c.inv(a)              # 12 ps
    z = c.and2(slow, fast)
    at = arrival_times(c)
    assert at[z] == cell("XOR2").delay_ps + cell("AND2").delay_ps


def test_arrival_times_with_custom_input_arrivals():
    c = Circuit()
    a = c.add_input("a")
    z = c.inv(a)
    at = arrival_times(c, {a: 1000})
    assert at[z] == 1000 + cell("INV").delay_ps


def test_ff_outputs_arrive_at_clk_to_q():
    c = Circuit()
    a = c.add_input("a")
    q = c.dff(a)
    at = arrival_times(c)
    assert at[q] == CLK_TO_Q_PS


def test_critical_path_endpoints_prefers_ff_d_pins():
    c = Circuit()
    a = c.add_input("a")
    long = c.inv(c.inv(c.inv(a)))
    c.dff(long)
    delay, path, start, end = critical_path(c)
    assert delay == 3 * cell("INV").delay_ps
    assert start == a
    assert end == long
    assert len(path) == 3


def test_analyze_includes_setup_and_clk2q():
    c = Circuit()
    a = c.add_input("a")
    q = c.dff(a)
    w = c.inv(q)
    c.dff(w)
    rep = analyze(c)
    # FF -> INV -> FF: clk2q + inv + setup
    assert rep.critical_path_ps == CLK_TO_Q_PS + cell("INV").delay_ps + SETUP_PS
    assert rep.max_freq_mhz == pytest.approx(1e6 / rep.critical_path_ps)


def test_analyze_floor_for_direct_ff_to_ff():
    c = Circuit()
    a = c.add_input("a")
    q = c.dff(a)
    c.dff(q)
    rep = analyze(c)
    assert rep.critical_path_ps >= CLK_TO_Q_PS + SETUP_PS


def test_delay_lines_dominate_critical_path():
    c = Circuit()
    a = c.add_input("a")
    z = c.delay_line(a, 6, 10)
    c.mark_output("z", z)
    rep = analyze(c)
    assert rep.critical_path_ps >= 6 * 10 * 250


def test_report_str_mentions_path():
    c = Circuit()
    a = c.add_input("a")
    c.mark_output("z", c.inv(a, name="the_inv"))
    rep = analyze(c)
    assert "the_inv" in str(rep)


def test_pd_slower_than_ff_engine():
    """Table III shape: the PD engine's fmax is far below the FF one."""
    from repro.des.engines import MaskedDESNetlistEngine

    ff = MaskedDESNetlistEngine("ff")
    pd = MaskedDESNetlistEngine("pd", n_luts=10)
    assert ff.timing.max_freq_mhz > 5 * pd.timing.max_freq_mhz
