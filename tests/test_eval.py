"""Smoke tests of the experiment registry (reduced budgets).

Full-budget runs are recorded in EXPERIMENTS.md; these check that every
experiment module runs end to end, renders, and satisfies the *stable*
qualitative properties at small scale.
"""

import numpy as np
import pytest

from repro.eval import EXPERIMENTS, table1, table2, table3, traces
from repro.eval.report import render_table, rule, sparkline, tvla_panel


def test_registry_covers_every_table_and_figure():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "fig13", "fig14", "fig15", "fig16",
        "fig17", "fault_sweep", "bench", "compile_costs",
    }


def test_table1_subset_run_and_render():
    res = table1.run(
        n_traces=12_000,
        sequences=[("y0", "y1", "x1", "x0"), ("x0", "x1", "y0", "y1")],
    )
    assert res.all_match_paper
    out = res.render()
    assert "Table I" in out
    assert "LEAKS" in out and "clean" in out


def test_table2_run_and_render():
    res = table2.run(n_traces=12_000)
    assert res.matches_paper
    assert res.chain_functional_ok
    assert res.chain_is_clean
    out = res.render()
    assert "DelayUnits" in out


def test_table3_run_and_render():
    res = table3.run()
    out = res.render()
    assert "secAND2-FF" in out and "DOM-indep [17]" in out
    ff, pd = res.measured
    assert ff.cycles_per_round == 7
    assert pd.cycles_per_round == 2
    assert ff.rand_per_round == pd.rand_per_round == 14
    assert ff.max_freq_mhz > pd.max_freq_mhz
    assert pd.asic_ge > pd.asic_ge_no_delay


@pytest.mark.parametrize("variant", ["ff", "pd"])
def test_power_trace_experiment(variant):
    res = traces.run(variant=variant, n_traces=16)
    assert res.n_rounds_detected == 16
    assert res.rounds_uniform
    out = res.render()
    assert "power trace" in out


def test_render_table_alignment():
    out = render_table(["a", "bb"], [[1, 22], [333, 4]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")


def test_sparkline_shapes():
    assert sparkline(np.zeros(10)) == " " * 10
    s = sparkline(np.linspace(0, 1, 200), width=50)
    assert len(s) == 50
    assert s[-1] == "@"
    assert sparkline(np.array([])) == ""


def test_tvla_panel_marks_leaks():
    from repro.leakage.tvla import TvlaResult

    res = TvlaResult("x", 100, np.array([9.0]), np.array([0.1]), np.array([0.1]))
    panel = tvla_panel(res)
    assert "LEAK" in panel
    assert "t2" in panel


def test_rule_width():
    assert len(rule(10)) == 10


@pytest.mark.slow
def test_compile_costs_all_targets_certify_and_match_hand_built():
    from repro.eval import compile_costs

    res = compile_costs.run()
    assert len(res.rows) == 10
    assert res.all_certified
    assert res.des_within_25pct
    out = res.render()
    assert "des_sbox0" in out and "aes_sbox" in out and "within 25%: yes" in out
