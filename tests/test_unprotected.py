"""Tests for the unprotected DES baseline engine."""

import numpy as np
import pytest

from repro.des.bits import int_to_bitarray
from repro.des.reference import des_encrypt_bits
from repro.des.unprotected import UnprotectedDESEngine, build_unprotected_sbox
from repro.des.reference import sbox_lookup
from repro.netlist.area import report
from repro.netlist.circuit import Circuit
from repro.sim.vectorsim import VectorSimulator

_ENGINE = None


def engine():
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = UnprotectedDESEngine()
    return _ENGINE


@pytest.mark.parametrize("sbox", [0, 3, 7])
def test_unprotected_sbox_matches_table(sbox):
    c = Circuit("usb")
    ins = [c.add_input(f"x{i}") for i in range(6)]
    outs = build_unprotected_sbox(c, sbox, ins)
    for b, w in enumerate(outs):
        c.mark_output(f"y{b}", w)
    c.check()
    rng = np.random.default_rng(sbox)
    n = 500
    vals = rng.integers(0, 64, n, dtype=np.uint64)
    bits = int_to_bitarray(vals, 6)
    sim = VectorSimulator(c, n)
    sim.evaluate_combinational({ins[i]: bits[i] for i in range(6)})
    out = sim.output_values()
    got = np.zeros(n, dtype=int)
    for b in range(4):
        got = (got << 1) | out[f"y{b}"].astype(int)
    ref = np.array([sbox_lookup(sbox, int(v)) for v in vals])
    assert np.array_equal(got, ref)


def test_engine_matches_reference():
    rng = np.random.default_rng(0)
    pt = int_to_bitarray(rng.integers(0, 2**63, 32, dtype=np.uint64), 64)
    ky = int_to_bitarray(rng.integers(0, 2**63, 32, dtype=np.uint64), 64)
    ct, power = engine().run_batch(pt, ky)
    assert np.array_equal(ct, des_encrypt_bits(pt, ky))
    assert power.shape == (32, engine().n_samples)
    assert power.sum() > 0


def test_engine_one_cycle_per_round():
    assert engine().cycles_per_round == 1
    assert engine().total_cycles == 17


def test_unprotected_much_smaller_than_masked():
    """The cost of masking in GE (paper context: masked ~15.9k GE)."""
    from repro.des.engines import MaskedDESNetlistEngine

    unprot = report(engine().circuit).area_ge
    masked = report(MaskedDESNetlistEngine("ff").circuit).area_ge
    assert 2.0 < masked / unprot < 6.0


def test_no_record_mode():
    rng = np.random.default_rng(1)
    pt = int_to_bitarray(rng.integers(0, 2**63, 8, dtype=np.uint64), 64)
    ky = int_to_bitarray(rng.integers(0, 2**63, 8, dtype=np.uint64), 64)
    ct, power = engine().run_batch(pt, ky, record=False)
    assert power is None
    assert np.array_equal(ct, des_encrypt_bits(pt, ky))


def test_power_depends_on_data():
    pt1 = int_to_bitarray(np.uint64(0), 64, 4)
    pt2 = int_to_bitarray(np.uint64((1 << 64) - 1), 64, 4)
    ky = int_to_bitarray(np.uint64(0x133457799BBCDFF1), 64, 4)
    _, p1 = engine().run_batch(pt1, ky)
    _, p2 = engine().run_batch(pt2, ky)
    assert not np.array_equal(p1, p2)
