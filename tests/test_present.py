"""Tests for the PRESENT-80 case study."""

import numpy as np
import pytest

from repro.core.gadgets import SharePair
from repro.leakage.prng import RandomnessSource
from repro.netlist.circuit import Circuit
from repro.netlist.safety import check_secand2_ordering
from repro.present import (
    Masked4BitSbox,
    MaskedPresent,
    SBOX,
    SBOX_INV,
    build_present_sbox_ff,
    build_present_sbox_pd,
    present_decrypt,
    present_encrypt,
    round_keys80,
)
from repro.sim.clocking import ClockedHarness
from repro.sim.vectorsim import VectorSimulator

# Published PRESENT-80 test vectors.
VECTORS = [
    (0x00000000000000000000, 0x0000000000000000, 0x5579C1387B228445),
    (0xFFFFFFFFFFFFFFFFFFFF, 0x0000000000000000, 0xE72C46C0F5945049),
    (0x00000000000000000000, 0xFFFFFFFFFFFFFFFF, 0xA112FFC72F68417B),
    (0xFFFFFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0x3333DCD3213210D2),
]


@pytest.mark.parametrize("key,pt,ct", VECTORS)
def test_reference_vectors(key, pt, ct):
    assert present_encrypt(pt, key) == ct


@pytest.mark.parametrize("key,pt,ct", VECTORS)
def test_reference_decrypt(key, pt, ct):
    assert present_decrypt(ct, key) == pt


def test_sbox_is_permutation():
    assert sorted(SBOX) == list(range(16))
    assert all(SBOX_INV[SBOX[v]] == v for v in range(16))


def test_round_keys_count():
    keys = round_keys80(0)
    assert len(keys) == 32
    assert all(0 <= k < 1 << 64 for k in keys)
    assert keys[0] == 0  # first round key = top 64 bits of the key


def test_masked_sbox_anf_structure():
    m = Masked4BitSbox(SBOX)
    # PRESENT's S-box uses 8 of the 10 possible nonlinear monomials
    assert m.random_bits == 8
    assert all(bin(x).count("1") in (2, 3) for x in m.computed)


def test_masked_sbox_rejects_non_permutation():
    with pytest.raises(ValueError):
        Masked4BitSbox([0] * 16)


def test_masked_sbox_matches_table():
    rng = np.random.default_rng(0)
    m = Masked4BitSbox(SBOX)
    n = 2048
    vals = rng.integers(0, 16, n)
    bits = np.stack([(vals >> (3 - b)) & 1 for b in range(4)]).astype(bool)
    mask = rng.integers(0, 2, (4, n)).astype(bool)
    r = rng.integers(0, 2, (m.random_bits, n)).astype(bool)
    o0, o1 = m(bits ^ mask, mask, r)
    got = np.zeros(n, dtype=int)
    for b in range(4):
        got = (got << 1) | (o0[b] ^ o1[b]).astype(int)
    assert np.array_equal(got, np.array([SBOX[v] for v in vals]))


def test_masked_sbox_output_shares_balanced():
    rng = np.random.default_rng(1)
    m = Masked4BitSbox(SBOX)
    n = 40_000
    bits = np.zeros((4, n), dtype=bool)  # fixed input 0
    mask = rng.integers(0, 2, (4, n)).astype(bool)
    r = rng.integers(0, 2, (m.random_bits, n)).astype(bool)
    o0, _ = m(bits ^ mask, mask, r)
    for b in range(4):
        assert abs(o0[b].mean() - 0.5) < 0.02


def test_generic_sbox_works_for_des_rows():
    """The generic 4-bit machinery covers the DES mini S-boxes too."""
    from repro.des.tables import SBOXES

    rng = np.random.default_rng(2)
    table = SBOXES[3][1]
    m = Masked4BitSbox(table)
    n = 1024
    vals = rng.integers(0, 16, n)
    bits = np.stack([(vals >> (3 - b)) & 1 for b in range(4)]).astype(bool)
    mask = rng.integers(0, 2, (4, n)).astype(bool)
    r = rng.integers(0, 2, (max(m.random_bits, 1), n)).astype(bool)
    o0, o1 = m(bits ^ mask, mask, r)
    got = np.zeros(n, dtype=int)
    for b in range(4):
        got = (got << 1) | (o0[b] ^ o1[b]).astype(int)
    assert np.array_equal(got, np.array([table[v] for v in vals]))


def test_masked_present_matches_reference():
    rng = np.random.default_rng(3)
    core = MaskedPresent()
    pts = rng.integers(0, 2**63, 24, dtype=np.uint64)
    keys = [int(rng.integers(0, 2**63)) << 17 | 0x1ABCD for _ in range(24)]
    ct = core.encrypt(pts, keys, RandomnessSource(4))
    for i in range(24):
        assert int(ct[i]) == present_encrypt(int(pts[i]), keys[i])


def test_masked_present_prng_off_still_correct():
    rng = np.random.default_rng(5)
    core = MaskedPresent()
    pts = rng.integers(0, 2**63, 8, dtype=np.uint64)
    keys = [0x00000000000000000000] * 8
    ct = core.encrypt(pts, keys, RandomnessSource(0, enabled=False))
    for i in range(8):
        assert int(ct[i]) == present_encrypt(int(pts[i]), 0)


def test_masked_present_randomness_accounting():
    core = MaskedPresent()
    assert core.random_bits_per_round == 16  # 8 recycled + 8 key schedule
    no_recycle = MaskedPresent(recycle_randomness=False)
    assert no_recycle.random_bits_per_round == 16 * 8 + 8


# ----------------------------------------------------------------------
# netlist builders
# ----------------------------------------------------------------------
def _stimulus(n, seed):
    rng = np.random.default_rng(seed)
    vals = rng.integers(0, 16, n)
    bits = np.stack([(vals >> (3 - b)) & 1 for b in range(4)]).astype(bool)
    mask = rng.integers(0, 2, (4, n)).astype(bool)
    rand = rng.integers(0, 2, (8, n)).astype(bool)
    return vals, bits ^ mask, mask, rand


def test_present_sbox_ff_netlist():
    c = Circuit("present-ff")
    ins = [SharePair(c.add_input(f"x{i}s0"), c.add_input(f"x{i}s1"))
           for i in range(4)]
    rand = [c.add_input(f"r{k}") for k in range(8)]
    en2, en3 = c.add_inputs("en2", "en3")
    outs = build_present_sbox_ff(c, ins, rand, en2, en3)
    for b, p in enumerate(outs):
        c.mark_output(f"y{b}s0", p.s0)
        c.mark_output(f"y{b}s1", p.s1)
    c.check()
    n = 512
    vals, xs0, xs1, rv = _stimulus(n, 6)
    h = ClockedHarness(c, n, period_ps=1500)
    ev = [(0, c.wire(f"x{i}s{j}"), (xs0 if j == 0 else xs1)[i])
          for i in range(4) for j in range(2)]
    ev += [(0, c.wire(f"r{k}"), rv[k]) for k in range(8)]
    h.step(ev + [(10, c.wire("en2"), True)])
    h.step([(10, c.wire("en2"), False), (10, c.wire("en3"), True)])
    h.step([(10, c.wire("en3"), False)])
    out = h.output_values()
    got = np.zeros(n, dtype=int)
    for b in range(4):
        got = (got << 1) | (out[f"y{b}s0"] ^ out[f"y{b}s1"]).astype(int)
    assert np.array_equal(got, np.array([SBOX[v] for v in vals]))


def test_present_sbox_pd_netlist_and_safety():
    c = Circuit("present-pd")
    ins = [SharePair(c.add_input(f"x{i}s0"), c.add_input(f"x{i}s1"))
           for i in range(4)]
    rand = [c.add_input(f"r{k}") for k in range(8)]
    outs, _ = build_present_sbox_pd(c, ins, rand, n_luts=2)
    for b, p in enumerate(outs):
        c.mark_output(f"y{b}s0", p.s0)
        c.mark_output(f"y{b}s1", p.s1)
    c.check()
    assert check_secand2_ordering(c) == []
    n = 512
    vals, xs0, xs1, rv = _stimulus(n, 7)
    sim = VectorSimulator(c, n)
    ev = [(0, c.wire(f"x{i}s{j}"), (xs0 if j == 0 else xs1)[i])
          for i in range(4) for j in range(2)]
    ev += [(0, c.wire(f"r{k}"), rv[k]) for k in range(8)]
    sim.settle(ev)
    out = sim.output_values()
    got = np.zeros(n, dtype=int)
    for b in range(4):
        got = (got << 1) | (out[f"y{b}s0"] ^ out[f"y{b}s1"]).astype(int)
    assert np.array_equal(got, np.array([SBOX[v] for v in vals]))
