"""Tests for the share-level masked DES model."""

import numpy as np
import pytest

from repro.des.bits import int_to_bitarray
from repro.des.masked_core import SBOX_RANDOM_BITS, MaskedDES, MaskedSboxModel
from repro.des.reference import des_encrypt_bits, sbox_lookup
from repro.leakage.prng import RandomnessSource


def random_blocks(n, seed=0):
    rng = np.random.default_rng(seed)
    pt = int_to_bitarray(rng.integers(0, 2**63, n, dtype=np.uint64), 64)
    ky = int_to_bitarray(rng.integers(0, 2**63, n, dtype=np.uint64), 64)
    return pt, ky


@pytest.mark.parametrize("variant", ["ff", "pd"])
def test_masked_matches_reference(variant):
    pt, ky = random_blocks(128)
    core = MaskedDES(variant)
    ct = core.encrypt(pt, ky, RandomnessSource(1))
    assert np.array_equal(ct, des_encrypt_bits(pt, ky))


@pytest.mark.parametrize("variant", ["ff", "pd"])
def test_masked_correct_with_prng_off(variant):
    pt, ky = random_blocks(64, seed=1)
    core = MaskedDES(variant)
    ct = core.encrypt(pt, ky, RandomnessSource(1, enabled=False))
    assert np.array_equal(ct, des_encrypt_bits(pt, ky))


def test_masked_correct_without_recycling():
    pt, ky = random_blocks(64, seed=2)
    core = MaskedDES("ff", recycle_randomness=False)
    ct = core.encrypt(pt, ky, RandomnessSource(2))
    assert np.array_equal(ct, des_encrypt_bits(pt, ky))


def test_cycle_accounting_matches_paper():
    """Paper: FF engine takes 115 cycles total (vs DOM's 84); 7 vs 2
    cycles per round."""
    ff = MaskedDES("ff")
    pd = MaskedDES("pd")
    assert ff.cycles_per_round == 7
    assert pd.cycles_per_round == 2
    assert ff.total_cycles == 115
    assert pd.total_cycles == 35


def test_randomness_accounting():
    assert SBOX_RANDOM_BITS == 14
    ff = MaskedDES("ff")
    assert ff.random_bits_per_round == 14
    assert ff.random_bits_total == 14 * 16
    no_recycle = MaskedDES("ff", recycle_randomness=False)
    assert no_recycle.random_bits_per_round == 112


def test_invalid_variant_rejected():
    with pytest.raises(ValueError):
        MaskedDES("xyz")


def test_ciphertext_shares_recombine_only():
    """Neither ciphertext share alone equals the ciphertext."""
    pt, ky = random_blocks(256, seed=3)
    core = MaskedDES("ff")
    prng = RandomnessSource(4)
    pm = prng.bits(64, 256)
    km = prng.bits(64, 256)
    c0, c1 = core.encrypt_shares(pt ^ pm, pm, ky ^ km, km, prng)
    ref = des_encrypt_bits(pt, ky)
    assert np.array_equal(c0 ^ c1, ref)
    assert not np.array_equal(c0, ref)
    assert abs(c1.mean() - 0.5) < 0.02  # share is balanced


@pytest.mark.parametrize("sbox", [0, 3, 7])
def test_masked_sbox_model_matches_lookup(sbox):
    rng = np.random.default_rng(5)
    n = 2000
    model = MaskedSboxModel(sbox)
    vals = rng.integers(0, 64, n, dtype=np.uint64)
    bits = int_to_bitarray(vals, 6)
    mask = rng.integers(0, 2, (6, n)).astype(bool)
    r14 = rng.integers(0, 2, (14, n)).astype(bool)
    o0, o1 = model(bits ^ mask, mask, r14)
    got = np.zeros(n, dtype=int)
    for b in range(4):
        got = (got << 1) | (o0[b] ^ o1[b]).astype(int)
    ref = np.array([sbox_lookup(sbox, int(v)) for v in vals])
    assert np.array_equal(got, ref)


def test_masked_sbox_output_shares_balanced():
    """With fresh refresh bits, each output share is balanced even for
    a fixed S-box input (the refresh layer works)."""
    rng = np.random.default_rng(6)
    n = 50_000
    model = MaskedSboxModel(0)
    bits = int_to_bitarray(np.uint64(0b101010), 6, n)
    mask = rng.integers(0, 2, (6, n)).astype(bool)
    r14 = rng.integers(0, 2, (14, n)).astype(bool)
    o0, o1 = model(bits ^ mask, mask, r14)
    for b in range(4):
        assert abs(o0[b].mean() - 0.5) < 0.02
        assert abs(o1[b].mean() - 0.5) < 0.02


def test_recycled_randomness_same_bits_all_boxes():
    core = MaskedDES("ff", recycle_randomness=True)
    prng = RandomnessSource(7)
    rand = core._round_randomness(prng, 10)
    assert len(rand) == 8
    assert all(r is rand[0] for r in rand)
    core2 = MaskedDES("ff", recycle_randomness=False)
    rand2 = core2._round_randomness(RandomnessSource(7), 10)
    assert not np.array_equal(rand2[0], rand2[1])
