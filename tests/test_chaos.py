"""Tests for the deterministic chaos harness.

Fast modes (checkpoint damage, in-batch exception) run in tier-1 CI;
the process-level modes (kill, hang, dropped segment) need multi-second
watchdog waits and are ``slow``-marked — CI's resilience job runs the
full matrix via ``python -m repro chaos``.
"""

import json

import pytest

from repro.chaos import (
    CHECKPOINT_MODES,
    FAILURE_MODES,
    WORKER_MODES,
    ChaosPolicy,
    run_chaos_scenario,
)
from repro.chaos.cli import main as chaos_main
from repro.leakage.transport import scavenge_orphans


def _assert_contract(res):
    assert res.injected, f"injection never fired: {res.row()}"
    assert res.orphaned_segments == []
    assert res.ok, f"chaos contract violated: {res.row()}"


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------
def test_failure_modes_partition():
    assert set(FAILURE_MODES) == set(WORKER_MODES) | set(CHECKPOINT_MODES)
    assert not set(WORKER_MODES) & set(CHECKPOINT_MODES)


def test_policy_rejects_unknown_mode():
    with pytest.raises(ValueError, match="mode must be one of"):
        ChaosPolicy(mode="set_fire_to_rack")


def test_policy_schedule_is_seed_deterministic(tmp_path):
    for seed in range(6):
        a = ChaosPolicy(mode="kill_worker", seed=seed, workdir=str(tmp_path))
        b = ChaosPolicy(mode="kill_worker", seed=seed, workdir=str(tmp_path))
        assert a.trigger_call == b.trigger_call
        assert a.inject_at_batch == b.inject_at_batch
    # distinct seeds cover distinct injection points
    calls = {ChaosPolicy(mode="kill_worker", seed=s).trigger_call
             for s in range(3)}
    assert calls == {0, 1, 2}


def test_policy_injection_is_one_shot(tmp_path):
    policy = ChaosPolicy(
        mode="corrupt_checkpoint", seed=0, workdir=str(tmp_path)
    )
    ckpt = tmp_path / "c.npz"
    ckpt.write_bytes(b"x" * 256)
    assert not policy.injected
    policy.post_checkpoint(str(ckpt), policy.inject_at_batch)
    assert policy.injected
    damaged = ckpt.read_bytes()
    policy.post_checkpoint(str(ckpt), policy.inject_at_batch)
    assert ckpt.read_bytes() == damaged  # second trigger is a no-op


def test_parent_process_never_killed(tmp_path):
    """Worker-mode injections are inert outside pool workers."""
    policy = ChaosPolicy(mode="kill_worker", seed=0, workdir=str(tmp_path))
    policy.maybe_inject_in_acquire()  # in the test process: must not kill
    assert not policy.injected


# ----------------------------------------------------------------------
# scenarios: fast modes in tier-1
# ----------------------------------------------------------------------
def test_corrupt_checkpoint_recovers_bitwise():
    res = run_chaos_scenario("corrupt_checkpoint", seed=0)
    _assert_contract(res)
    assert res.recovered and res.bitwise
    assert res.stats.get("checkpoint_restores") == 1
    assert res.stats.get("checkpoints_quarantined") == 1
    assert scavenge_orphans() == []


def test_truncate_checkpoint_recovers_bitwise():
    res = run_chaos_scenario("truncate_checkpoint", seed=1)
    _assert_contract(res)
    assert res.recovered and res.bitwise
    assert res.stats.get("checkpoint_restores") == 1


def test_raise_in_batch_recovers_bitwise():
    res = run_chaos_scenario("raise_in_batch", seed=0)
    _assert_contract(res)
    assert res.recovered and res.bitwise
    assert scavenge_orphans() == []


# ----------------------------------------------------------------------
# scenarios: process-level modes (watchdog waits) are slow-marked
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("mode", ["kill_worker", "hang_worker", "drop_shm"])
def test_process_failure_recovers_bitwise(mode):
    res = run_chaos_scenario(mode, seed=0)
    _assert_contract(res)
    assert res.recovered and res.bitwise
    assert scavenge_orphans() == []


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 2])
def test_kill_worker_other_seeds(seed):
    _assert_contract(run_chaos_scenario("kill_worker", seed=seed))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_single_mode_json(tmp_path, capsys):
    out = tmp_path / "chaos.json"
    rc = chaos_main(["--mode", "corrupt_checkpoint", "--json", str(out)])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "1/1 scenarios ok" in printed
    payload = json.loads(out.read_text())
    assert payload["schema"] == "chaos_matrix/v1"
    assert payload["ok"] is True
    (scenario,) = payload["scenarios"]
    assert scenario["mode"] == "corrupt_checkpoint"
    assert scenario["injected"] and scenario["bitwise"]
    assert scenario["orphaned_segments"] == []


def test_cli_rejects_unknown_mode(capsys):
    with pytest.raises(SystemExit):
        chaos_main(["--mode", "nonsense"])
