"""Smoke tests: every example script must run to completion.

The examples are part of the public API surface; they are executed
with their real entry points (no reduced budgets — they are already
sized to run in seconds-to-a-minute).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "secAND2" in out
    assert "LEAKS" in out and "clean" in out
    assert "Table I" in out


def test_composition_refresh(capsys):
    out = run_example("composition_refresh.py", capsys)
    assert "z == a.b.c.d on" in out
    assert "True" in out
    assert "spread" in out


def test_gadget_leakage_comparison(capsys):
    out = run_example("gadget_leakage_comparison.py", capsys)
    assert "Trichina" in out
    assert out.count("LEAKS") >= 2
    assert "clean" in out


@pytest.mark.slow
def test_masked_des_encrypt(capsys):
    out = run_example("masked_des_encrypt.py", capsys)
    assert "matches reference: True" in out
    assert "correct: True" in out


def test_reproduce_paper_argparse():
    sys.path.insert(0, str(EXAMPLES))
    try:
        import importlib

        mod = importlib.import_module("reproduce_paper")
        assert set(mod.RUNNERS) == {
            "table1", "table2", "table3", "fig13", "fig16",
            "fig14", "fig15", "fig17",
        }
    finally:
        sys.path.pop(0)


@pytest.mark.slow
def test_fault_margin_sweep_example(capsys):
    out = run_example("fault_margin_sweep.py", capsys)
    assert "first violated constraint" in out
    assert "monotone erosion: True" in out
    assert "clean at sigma 0: True" in out
    assert "bitwise-identical to uninterrupted run: True" in out


@pytest.mark.slow
def test_masked_present_example(capsys):
    out = run_example("masked_present.py", capsys)
    assert "masked == reference on 16 random blocks: True" in out
    assert "static arrival-order violations: 0" in out
    assert "no 1st-order evidence" in out


@pytest.mark.slow
def test_masked_aes_example(capsys):
    out = run_example("masked_aes.py", capsys)
    assert "all 256 inputs match the table: True" in out
    assert "69c4e0d86a7b0430d8cdb78070b4c55a" in out
    assert "random blocks correct: True" in out
