"""Tests for the gate-level masked S-boxes (Figs. 8a / 9a)."""

import numpy as np
import pytest

from repro.des.masked_core import MaskedSboxModel
from repro.des.masked_netlist import (
    PD_MINI_SCHEDULE,
    PD_SELECT_SCHEDULE,
    SBOX_N_SECAND2,
    build_standalone_sbox,
)
from repro.netlist.safety import check_secand2_ordering
from repro.sim.clocking import ClockedHarness


def random_stimulus(n, seed):
    rng = np.random.default_rng(seed)
    xs0 = rng.integers(0, 2, (6, n)).astype(bool)
    xs1 = rng.integers(0, 2, (6, n)).astype(bool)
    r14 = rng.integers(0, 2, (14, n)).astype(bool)
    return xs0, xs1, r14


def drive_ff_sbox(c, xs0, xs1, r14):
    n = xs0.shape[1]
    h = ClockedHarness(c, n, period_ps=1500)
    w = c.wire
    base = [(0, w(f"x{i}s{j}"), (xs0 if j == 0 else xs1)[i])
            for i in range(6) for j in range(2)]
    base += [(0, w(f"r{k}"), r14[k]) for k in range(14)]
    hi = lambda nm: (10, w(nm), True)
    lo = lambda nm: (10, w(nm), False)
    h.step(base + [hi("en_inreg")])
    h.step([lo("en_inreg"), hi("en_deg2")])
    h.step([lo("en_deg2"), hi("en_deg3"), hi("en_muxreg")])
    h.step([lo("en_deg3"), lo("en_muxreg"), hi("en_mux2")])
    h.step([lo("en_mux2"), hi("en_outreg")])
    h.step([lo("en_outreg")])
    return h.output_values()


def drive_pd_sbox(c, xs0, xs1, r14, period=30000):
    n = xs0.shape[1]
    h = ClockedHarness(c, n, period_ps=period, check_timing=False)
    w = c.wire
    base = [(0, w(f"x{i}s{j}"), (xs0 if j == 0 else xs1)[i])
            for i in range(6) for j in range(2)]
    base += [(0, w(f"r{k}"), r14[k]) for k in range(14)]
    h.step(base + [(10, w("en_round"), True)])
    h.step([(10, w("en_round"), False), (10, w("en_mid"), True)])
    h.step([(10, w("en_mid"), False)])
    return h.output_values()


@pytest.mark.parametrize("sbox", [0, 2, 5, 7])
def test_ff_sbox_matches_share_model(sbox):
    xs0, xs1, r14 = random_stimulus(400, sbox)
    c, _, _ = build_standalone_sbox(sbox, "ff")
    out = drive_ff_sbox(c, xs0, xs1, r14)
    m0, m1 = MaskedSboxModel(sbox)(xs0, xs1, r14)
    for b in range(4):
        assert np.array_equal(out[f"y{b}s0"], m0[b])
        assert np.array_equal(out[f"y{b}s1"], m1[b])


@pytest.mark.parametrize("sbox", [0, 4, 6])
def test_pd_sbox_matches_share_model(sbox):
    xs0, xs1, r14 = random_stimulus(400, 10 + sbox)
    c, _, _ = build_standalone_sbox(sbox, "pd", n_luts=2)
    out = drive_pd_sbox(c, xs0, xs1, r14)
    m0, m1 = MaskedSboxModel(sbox)(xs0, xs1, r14)
    for b in range(4):
        assert np.array_equal(out[f"y{b}s0"], m0[b])
        assert np.array_equal(out[f"y{b}s1"], m1[b])


@pytest.mark.parametrize("variant", ["ff", "pd"])
def test_sbox_uses_30_secand2_cores(variant):
    """Sec. VI-A: 30 secAND2 gates per protected S-box."""
    c, _, _ = build_standalone_sbox(0, variant, n_luts=2)
    assert len(c.annotations["secand2"]) == SBOX_N_SECAND2


def test_ff_sbox_gadget_ffs_resettable():
    c, _, _ = build_standalone_sbox(0, "ff")
    gadget_ffs = [
        g for g in c.ff_gates() if g.params.get("reset_group") == "gadget"
    ]
    # 10 AND-stage + 1 shared MUX1 + 16 MUX2 internal FFs
    assert len(gadget_ffs) == 27


def test_pd_sbox_statically_safe_without_jitter():
    c, _, _ = build_standalone_sbox(0, "pd", n_luts=10)
    assert check_secand2_ordering(c) == []


def test_pd_mini_schedule_shape():
    """Generalised Table II: innermost variable's shares together,
    outermost first/last."""
    assert PD_MINI_SCHEDULE[0] == (3, 3)
    assert PD_MINI_SCHEDULE[3] == (0, 6)
    for v in range(4):
        u0, u1 = PD_MINI_SCHEDULE[v]
        assert u1 >= u0
    assert PD_SELECT_SCHEDULE["x5"] == (0, 2)
    assert PD_SELECT_SCHEDULE["x0"] == (1, 1)


def test_pd_sbox_coupling_pairs_are_delay_outputs():
    c, _, pairs = build_standalone_sbox(0, "pd", n_luts=10)
    assert len(pairs) == 6  # x1 pair + x0 pair + 4 stage-2 select pairs
    for a, b in pairs:
        ga, gb = c.driver_of(a), c.driver_of(b)
        assert ga.cell.name == "DELAY"
        assert gb.cell.name == "DELAY"


def test_pd_sbox_delay_unit_size_propagates():
    c, _, _ = build_standalone_sbox(0, "pd", n_luts=7)
    sizes = {
        g.params["n_luts"] for g in c.gates if g.cell.name == "DELAY"
    }
    assert sizes == {7}


def test_invalid_variant_rejected():
    with pytest.raises(ValueError):
        build_standalone_sbox(0, "nope")


def test_ff_sbox_unmasked_value_correct():
    from repro.des.reference import sbox_lookup

    xs0, xs1, r14 = random_stimulus(300, 42)
    c, _, _ = build_standalone_sbox(1, "ff")
    out = drive_ff_sbox(c, xs0, xs1, r14)
    xint = np.zeros(300, dtype=int)
    for i in range(6):
        xint = (xint << 1) | (xs0[i] ^ xs1[i]).astype(int)
    ref = np.array([sbox_lookup(1, int(v)) for v in xint])
    got = np.zeros(300, dtype=int)
    for b in range(4):
        got = (got << 1) | (out[f"y{b}s0"] ^ out[f"y{b}s1"]).astype(int)
    assert np.array_equal(got, ref)
