"""Property-based tests of the vertical-counter bitpack helpers.

The packed power engine's exactness claim rests on three properties of
:func:`repro.sim.bitpack.counter_add` / :func:`counter_unpack` /
:func:`lanes_to_int`:

* a counter built from arbitrary shifted mask adds unpacks to exactly
  the per-trace integer totals (ripple-carry correctness);
* ``lanes_to_int`` keeps trace ``i`` at bit position ``i`` (the numpy
  lane layout and the big-int layout agree);
* accumulation is exact at and below ``2**COUNTER_EXACT_BITS`` and the
  :class:`~repro.sim.power.PackedAccumulatorOverflowWarning` fires
  exactly when a flushed count *reaches* the bound — never one below.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.bitpack import (
    COUNTER_EXACT_BITS,
    LANE_BITS,
    counter_add,
    counter_unpack,
    lanes_to_int,
    n_lanes,
    pack_bool,
)
from repro.sim.power import PackedAccumulatorOverflowWarning, PowerRecorder


# ----------------------------------------------------------------------
# roundtrip properties
# ----------------------------------------------------------------------
@given(
    st.integers(1, 200).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, (1 << n) - 1),  # toggle mask
                    st.integers(0, 6),  # weight-bit shift
                ),
                min_size=0,
                max_size=24,
            ),
        )
    )
)
@settings(max_examples=80, deadline=None)
def test_counter_add_unpack_roundtrip(case):
    """Arbitrary shifted adds unpack to the per-trace integer totals."""
    n, adds = case
    planes: list = []
    expect = np.zeros(n, dtype=np.int64)
    for mask, shift in adds:
        counter_add(planes, mask, shift=shift)
        for i in range(n):
            expect[i] += ((mask >> i) & 1) << shift
    got = counter_unpack(planes, n_lanes(n), n)
    assert np.array_equal(got, expect)


@given(st.integers(1, 300))
@settings(max_examples=60, deadline=None)
def test_lanes_to_int_bit_layout(n):
    """Trace ``i``'s boolean lands at bit ``i`` of the big int."""
    rng = np.random.default_rng(n)
    bits = rng.integers(0, 2, n).astype(bool)
    lanes = pack_bool(bits)
    assert lanes.shape == (n_lanes(n),)
    as_int = lanes_to_int(lanes)
    for i in range(n):
        assert ((as_int >> i) & 1) == int(bits[i])
    # pad bits above n are zero
    assert as_int >> (n_lanes(n) * LANE_BITS) == 0


@given(st.integers(0, 40), st.integers(1, 65))
@settings(max_examples=60, deadline=None)
def test_counter_add_matches_big_int_arithmetic(seed, n):
    """Summing the planes as ``sum(plane_j << j)`` equals the sum of
    the shifted masks — the counter is literally column arithmetic."""
    rng = np.random.default_rng(seed)
    planes: list = []
    total = 0
    for _ in range(12):
        mask = int(rng.integers(0, 1 << min(n, 62)))
        shift = int(rng.integers(0, 5))
        counter_add(planes, mask, shift=shift)
        total += sum(((mask >> i) & 1) << shift << (70 * i) for i in range(n))
    recon = 0
    for i in range(n):
        c = sum(((plane >> i) & 1) << j for j, plane in enumerate(planes))
        recon += c << (70 * i)
    assert recon == total


# ----------------------------------------------------------------------
# overflow warning boundary
# ----------------------------------------------------------------------
def _drive_exact(count: int) -> PowerRecorder:
    """A recorder whose single trace accumulated exactly ``count``."""
    rec = PowerRecorder(1, 250, bin_ps=250)
    acc = rec.packed_accumulator(1, 1)
    assert acc is not None
    mask = lanes_to_int(np.ones(1, dtype=np.uint64))
    planes = acc._bins.setdefault(0, [])
    for j in range(count.bit_length()):
        if (count >> j) & 1:
            counter_add(planes, mask, shift=j)
    return rec


def test_no_warning_strictly_below_bound():
    """2^24 - 1 in a bin: exact, silent."""
    bound = 1 << COUNTER_EXACT_BITS
    rec = _drive_exact(bound - 1)
    with warnings.catch_warnings():
        warnings.simplefilter("error", PackedAccumulatorOverflowWarning)
        power = rec.power
    assert power[0, 0] == float(bound - 1)
    assert rec.stats["overflow_bins"] == 0


def test_warning_fires_exactly_at_bound():
    """2^24 in a bin: one PackedAccumulatorOverflowWarning, correctly
    rounded value either way."""
    bound = 1 << COUNTER_EXACT_BITS
    rec = _drive_exact(bound)
    with pytest.warns(PackedAccumulatorOverflowWarning):
        power = rec.power
    assert power[0, 0] == float(bound)
    assert rec.stats["overflow_bins"] == 1


@given(st.integers(1, 1 << 10))
@settings(max_examples=40, deadline=None)
def test_small_counts_never_warn(count):
    """No count below the bound ever trips the warning."""
    rec = _drive_exact(count)
    with warnings.catch_warnings():
        warnings.simplefilter("error", PackedAccumulatorOverflowWarning)
        power = rec.power
    assert power[0, 0] == float(count)
