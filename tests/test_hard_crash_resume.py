"""Hard-crash resume: SIGKILL an entire campaign process, resume bitwise.

The chaos harness kills *workers*; these tests kill the *supervisor
process itself* — the failure model of a scheduler preemption or OOM
kill — at three adversarial points:

* ``batch``      — mid-acquisition, between two checkpoints;
* ``checkpoint`` — inside ``save_checkpoint_supervised``, after the
  previous generation rotated to ``.prev`` but before the new file
  landed (the exact window double-buffering exists for);
* ``final``      — during the final checkpoint flush of a completed
  campaign.

Each subprocess dies with SIGKILL (no atexit, no finally blocks), then
the test resumes in-process and demands the resumed
:class:`TvlaResult` be bitwise-equal to an undisturbed run, with at
least one loadable checkpoint generation on disk in between and zero
orphaned shared-memory segments after.
"""

import os
import signal
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.leakage.acquisition import CampaignConfig, run_campaign
from repro.leakage.supervisor import (
    load_checkpoint_supervised,
    run_campaign_supervised,
)
from repro.leakage.transport import scavenge_orphans

CFG = dict(n_traces=800, batch_size=100, noise_sigma=0.5, seed=23)
N_BATCHES = CFG["n_traces"] // CFG["batch_size"]

_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

# Batches completed before the kill, per kill point.  ``batch`` dies on
# acquire call 3 (3 batches checkpointed); ``checkpoint`` dies inside
# save #4 (the save of next_batch=4, leaving next_batch=3 in ``.prev``);
# ``final`` dies inside the post-loop flush (save #N_BATCHES + 1).
_EXPECTED_NEXT = {"batch": 3, "checkpoint": 3, "final": N_BATCHES}

SCRIPT = r"""
import os, signal, sys

kill_point, ckpt = sys.argv[1], sys.argv[2]

from repro.leakage.acquisition import CampaignConfig
from repro.leakage import supervisor


class Synth:
    def __init__(self, n_samples=16):
        self.n_samples = n_samples

    def acquire(self, fixed_mask, rng):
        tr = rng.normal(0.0, 1.0, (fixed_mask.shape[0], self.n_samples))
        tr[fixed_mask] += 0.05
        return tr


class KillInBatch(Synth):
    def __init__(self, kill_call):
        super().__init__()
        self.kill_call = kill_call
        self.calls = 0

    def acquire(self, fixed_mask, rng):
        if self.calls == self.kill_call:
            os.kill(os.getpid(), signal.SIGKILL)
        self.calls += 1
        return super().acquire(fixed_mask, rng)


source = Synth()
if kill_point == "batch":
    source = KillInBatch(3)
else:
    kill_at_save = {"checkpoint": 4, "final": 800 // 100 + 1}[kill_point]
    real_replace = os.replace
    state = {"saves": 0}

    def killing_replace(src, dst):
        if dst == ckpt:
            state["saves"] += 1
            if state["saves"] == kill_at_save:
                # The previous generation has already rotated to
                # ckpt + ".prev"; die before the new file lands.
                os.kill(os.getpid(), signal.SIGKILL)
        real_replace(src, dst)

    os.replace = killing_replace

config = CampaignConfig(
    n_traces=800, batch_size=100, noise_sigma=0.5, seed=23,
    label="hard-crash",
)
supervisor.run_campaign_supervised(
    source, config, ckpt, n_workers=1, checkpoint_every=1,
    handle_signals=False, cleanup=False,
)
raise SystemExit("campaign survived a kill point that should be fatal")
"""


class Synth:
    def __init__(self, n_samples=16):
        self.n_samples = n_samples

    def acquire(self, fixed_mask, rng):
        tr = rng.normal(0.0, 1.0, (fixed_mask.shape[0], self.n_samples))
        tr[fixed_mask] += 0.05
        return tr


@pytest.mark.parametrize("kill_point", ["batch", "checkpoint", "final"])
def test_sigkilled_campaign_resumes_bitwise(tmp_path, kill_point):
    ckpt = str(tmp_path / "campaign.npz")
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", SCRIPT, kill_point, ckpt],
        env=env, capture_output=True, timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"expected SIGKILL, got {proc.returncode}: {proc.stderr.decode()}"
    )

    cfg = CampaignConfig(**CFG, label="hard-crash")
    loaded = load_checkpoint_supervised(ckpt, cfg, 16)
    assert loaded is not None, "no loadable generation survived the kill"
    assert loaded.next_batch == _EXPECTED_NEXT[kill_point]
    if kill_point in ("checkpoint", "final"):
        # path itself never landed: the survivor is the .prev generation
        assert loaded.used_fallback

    res = run_campaign_supervised(
        Synth(), cfg, ckpt, n_workers=1, handle_signals=False
    )
    ref = run_campaign(Synth(), cfg)
    assert res.stats.restarts == 1
    if kill_point in ("checkpoint", "final"):
        assert res.stats.checkpoint_restores == 1
    assert res.n_traces == ref.n_traces
    assert np.array_equal(res.t1, ref.t1)
    assert np.array_equal(res.t2, ref.t2)
    assert np.array_equal(res.t3, ref.t3)
    # success cleaned every sidecar file and left no shm segments
    for suffix in ("", ".prev", ".tmp", ".interrupted", ".corrupt"):
        assert not os.path.exists(ckpt + suffix)
    assert scavenge_orphans() == []
