"""Compiled replay vs interpreted settle: transition-for-transition
equality on random circuits and on the secAND2 gadgets, with and
without routing jitter."""

import numpy as np
import pytest

from repro.core.gadgets import (
    SharePair,
    build_secand2,
    build_secand2_ff,
    build_secand2_pd,
    secand2_pd,
)
from repro.core.shares import share
from repro.netlist.circuit import Circuit
from repro.sim.clocking import ClockedHarness
from repro.sim.compiled import schedule_cache_info
from repro.sim.power import PowerRecorder
from repro.sim.vectorsim import SimulationError, VectorSimulator


class LoggingRecorder:
    """Records every transition verbatim.

    ``_partners`` is truthy, which forces the replay engine onto the
    exact per-wire recording path — so the log captures the *order* of
    recorded transitions, not just their sum.
    """

    _partners = True

    def __init__(self):
        self.log = []

    def record_wire(self, t_ps, wire, toggled, new):
        self.log.append((t_ps, wire, toggled.copy(), new.copy()))


def assert_logs_equal(log_a, log_b):
    assert len(log_a) == len(log_b)
    for (ta, wa, ga, na), (tb, wb, gb, nb) in zip(log_a, log_b):
        assert ta == tb
        assert wa == wb
        assert np.array_equal(ga, gb)
        assert np.array_equal(na, nb)


def random_circuit(seed, jitter=False):
    rng = np.random.default_rng(seed)
    c = Circuit(f"rand{seed}")
    if jitter:
        c.enable_routing_jitter(
            seed + 100, gate_sigma_ps=60.0, delay_sigma_ps=150.0
        )
    wires = [c.add_input(f"i{k}") for k in range(4)]
    cells = ["AND2", "OR2", "XOR2", "NAND2", "NOR2", "XNOR2"]
    for _ in range(25):
        r = int(rng.integers(0, 8))
        if r == 6:
            wires.append(c.inv(wires[int(rng.integers(0, len(wires)))]))
        elif r == 7:
            s, a, b = rng.choice(len(wires), 3)
            wires.append(c.mux2(wires[s], wires[a], wires[b]))
        else:
            a, b = rng.choice(len(wires), 2)
            wires.append(c.add_gate(cells[r], [wires[a], wires[b]]))
    wires.append(
        c.delay_line(wires[int(rng.integers(0, len(wires)))], 2, 2)
    )
    c.mark_output("z", wires[-1])
    c.check()
    return c


def random_events(c, rng, n):
    """Four input events with partially coinciding times."""
    return [
        (int(rng.integers(0, 4)) * 500, c.wire(f"i{k}"),
         rng.integers(0, 2, n).astype(bool))
        for k in range(4)
    ]


def run_both(circuit, events_list, n):
    """Run the same event sequences interpreted and compiled.

    Returns per-engine (settle_times, events_processed, values, log)
    tuples for comparison.
    """
    out = []
    for compiled in (False, True):
        sim = VectorSimulator(circuit, n, compile_schedules=compiled)
        rec = LoggingRecorder()
        times = [sim.settle(events, recorder=rec) for events in events_list]
        out.append((times, sim.events_processed, sim.values.copy(), rec.log))
    return out


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
@pytest.mark.parametrize("jitter", [False, True])
def test_random_circuit_transition_equality(seed, jitter):
    c = random_circuit(seed, jitter=jitter)
    rng = np.random.default_rng(seed + 1000)
    n = 48
    events_a = random_events(c, rng, n)
    events_b = random_events(c, rng, n)  # second settle: persisted state
    (ti, ei, vi, li), (tc, ec, vc, lc) = run_both(c, [events_a, events_b], n)
    assert ti == tc
    assert ei == ec
    assert np.array_equal(vi, vc)
    assert_logs_equal(li, lc)


@pytest.mark.parametrize("seed", [0, 1])
def test_random_circuit_power_bitwise(seed):
    """Batched per-bin energy deposits equal per-wire accumulation."""
    c = random_circuit(seed)
    rng = np.random.default_rng(seed)
    n = 32
    events = random_events(c, rng, n)
    powers = []
    for compiled in (False, True):
        sim = VectorSimulator(c, n, compile_schedules=compiled)
        rec = PowerRecorder(n, 10_000, bin_ps=100, weights=sim.weights)
        sim.settle(events, recorder=rec)
        powers.append(rec.power.copy())
    assert np.array_equal(powers[0], powers[1])


def _drive_gadget_harness(circuit, compiled, n, rng_seed, reset_groups=()):
    rng = np.random.default_rng(rng_seed)
    h = ClockedHarness(
        circuit, n, period_ps=20_000, compile_schedules=compiled
    )
    rec = PowerRecorder(
        n, h.total_time_ps(6), bin_ps=50, weights=h.sim.weights
    )
    log = LoggingRecorder()
    names = ("x0", "x1", "y0", "y1")
    for cycle in range(6):
        vals = {k: rng.integers(0, 2, n).astype(bool) for k in names}
        events = [
            (1000 * (i + 1), circuit.wire(k), vals[k])
            for i, k in enumerate(names)
        ]
        h.step(
            events,
            recorder=rec if cycle % 2 == 0 else log,
            reset_groups=reset_groups if cycle % 3 == 0 else (),
        )
    return h, rec.power.copy(), log.log


@pytest.mark.parametrize(
    "build, reset_groups",
    [
        (build_secand2_ff, ("gadget",)),
        (lambda: build_secand2_pd(n_luts=2), ()),
        (lambda: build_secand2(n_instances=4), ()),
    ],
)
def test_gadget_harness_equality(build, reset_groups):
    c = build()
    n = 40
    hi, pi, li = _drive_gadget_harness(c, False, n, 7, reset_groups)
    hc, pc, lc = _drive_gadget_harness(c, True, n, 7, reset_groups)
    assert np.array_equal(hi.sim.values, hc.sim.values)
    assert hi.sim.events_processed == hc.sim.events_processed
    assert np.array_equal(pi, pc)
    assert_logs_equal(li, lc)
    for name, vals in hi.output_values().items():
        assert np.array_equal(vals, hc.output_values()[name])


def test_jittered_pd_gadget_equality():
    """Float event times (routing jitter) replay exactly too."""
    c = Circuit("pd-jitter")
    c.enable_routing_jitter(11, gate_sigma_ps=40.0, delay_sigma_ps=300.0)
    x0, x1, y0, y1 = c.add_inputs("x0", "x1", "y0", "y1")
    z = secand2_pd(c, SharePair(x0, x1), SharePair(y0, y1), n_luts=2)
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    c.check()
    rng = np.random.default_rng(3)
    n = 24
    events = [
        (0, y0, rng.integers(0, 2, n).astype(bool)),
        (500, x0, rng.integers(0, 2, n).astype(bool)),
        (500, x1, rng.integers(0, 2, n).astype(bool)),
        (1500, y1, rng.integers(0, 2, n).astype(bool)),
    ]
    results = []
    for compiled in (False, True):
        sim = VectorSimulator(c, n, compile_schedules=compiled)
        rec = LoggingRecorder()
        t = sim.settle(events, recorder=rec)
        results.append((t, sim.values.copy(), rec.log))
    assert results[0][0] == results[1][0]
    assert np.array_equal(results[0][1], results[1][1])
    assert_logs_equal(results[0][2], results[1][2])


def test_compiled_path_populates_cache():
    c = build_secand2(n_instances=2)
    info = schedule_cache_info(c)
    assert info["patterns"] == 0 and info["compiled"] == 0
    sim = VectorSimulator(c, 8)
    sim.settle([(0, c.wire("x0"), True)])
    info = schedule_cache_info(c)
    assert info["patterns"] == 1 and info["compiled"] == 1
    assert info["compiles"] == 1 and info["hits"] == 0
    # same pattern again: cache hit, no new entry
    sim.settle([(0, c.wire("x0"), False)])
    info = schedule_cache_info(c)
    assert info["patterns"] == 1 and info["hits"] == 1
    # different timing pattern: new entry
    sim.settle([(100, c.wire("x0"), True)])
    assert schedule_cache_info(c)["patterns"] == 2


def test_cache_invalidated_on_structural_change():
    c = build_secand2(n_instances=1)
    sim = VectorSimulator(c, 4)
    sim.settle([(0, c.wire("x0"), True)])
    assert schedule_cache_info(c)["patterns"] == 1
    c.inv(c.wire("x0"))  # structural edit: new gate + wire
    info = schedule_cache_info(c)
    assert info["patterns"] == 0 and info["compiled"] == 0


def test_budget_error_parity():
    c = Circuit()
    a = c.add_input("a")
    w = a
    for _ in range(100):
        w = c.inv(w)
    for compiled in (False, True):
        sim = VectorSimulator(c, 2, compile_schedules=compiled)
        sim.evaluate_combinational({a: False})
        with pytest.raises(SimulationError, match="budget"):
            sim.settle([(0, a, True)], max_events=3)


def test_events_processed_matches_interpreted():
    c = build_secand2(n_instances=3)
    n = 16
    counts = []
    for compiled in (False, True):
        rng = np.random.default_rng(1)  # identical stimuli per engine
        sim = VectorSimulator(c, n, compile_schedules=compiled)
        for _ in range(4):
            events = [
                (0, c.wire("y0"), rng.integers(0, 2, n).astype(bool)),
                (700, c.wire("x0"), rng.integers(0, 2, n).astype(bool)),
            ]
            sim.settle(events)
        counts.append(sim.events_processed)
    assert counts[0] == counts[1]


def test_stale_state_no_spurious_repair():
    """After reset_state, replay must not "repair" wires whose inputs
    never toggle — the interpreter leaves them stale, and so must we."""
    c = build_secand2(n_instances=2)
    n = 8
    ones = np.ones(n, bool)
    for compiled in (False, True):
        sim = VectorSimulator(c, n, compile_schedules=compiled)
        sim.settle([(0, c.wire("x0"), ones), (0, c.wire("y0"), ones)])
        state_after = sim.values.copy()
        sim.reset_state(False)
        # event that toggles nothing: values stay all-zero (stale),
        # even though the compiled schedule covers the whole cone
        sim.settle([(0, c.wire("x0"), np.zeros(n, bool))])
        assert not sim.values.any()
        del state_after
