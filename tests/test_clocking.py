"""Unit tests for the clocked simulation harness."""

import numpy as np
import pytest

from repro.netlist.circuit import Circuit
from repro.sim.clocking import ClockedHarness, TimingViolation
from repro.sim.power import PowerRecorder


def shift_register(n=3):
    c = Circuit()
    a = c.add_input("a")
    w = a
    for i in range(n):
        w = c.dff(w, name=f"ff{i}")
    c.mark_output("q", w)
    return c, a


def test_dff_shifts_one_per_cycle():
    c, a = shift_register(2)
    h = ClockedHarness(c, 1, period_ps=500)
    h.step([(0, a, True)])  # a=1 applied during cycle 0
    assert not h.output_values()["q"][0]
    h.step([])  # edge: ff0 samples 1
    assert not h.output_values()["q"][0]
    h.step([])  # edge: ff1 samples 1
    assert h.output_values()["q"][0]


def test_dffe_holds_without_enable():
    c = Circuit()
    a, en = c.add_inputs("a", "en")
    q = c.dffe(a, en, name="ff")
    c.mark_output("q", q)
    h = ClockedHarness(c, 1, period_ps=500)
    h.step([(0, a, True), (0, en, False)])
    h.step([])  # edge: EN low -> holds 0
    assert not h.output_values()["q"][0]
    h.step([(0, en, True)])
    h.step([])  # edge with EN high -> samples
    assert h.output_values()["q"][0]


def test_reset_ffs_global():
    c, a = shift_register(1)
    h = ClockedHarness(c, 1, period_ps=500)
    h.step([(0, a, True)])
    h.step([])
    assert h.ff_state("ff0")[0]
    h.step([], reset_ffs=True)
    assert not h.ff_state("ff0")[0]


def test_reset_groups_selective():
    c = Circuit()
    a = c.add_input("a")
    c.dff(a, name="plain")
    c.dff(a, name="gadget_ff", reset_group="gadget")
    h = ClockedHarness(c, 1, period_ps=500)
    h.step([(0, a, True)])
    h.step([])  # both sample 1
    h.step([], reset_groups=("gadget",))
    assert h.ff_state("plain")[0]
    assert not h.ff_state("gadget_ff")[0]


def test_preload_sets_state_silently():
    c, a = shift_register(2)
    h = ClockedHarness(c, 4, period_ps=500)
    vals = np.array([1, 0, 1, 0], bool)
    h.preload({"ff0": vals}, {a: np.zeros(4, bool)})
    assert np.array_equal(h.ff_state("ff0"), vals)
    # the preloaded value propagates on the next edge
    h.step([])
    assert np.array_equal(h.ff_state("ff1"), vals)


def test_timing_violation_detected():
    c = Circuit()
    a = c.add_input("a")
    w = a
    for _ in range(10):
        w = c.buf(w)  # 10 x 24 ps = 240 ps
    c.dff(w)
    h = ClockedHarness(c, 1, period_ps=100, check_timing=True)
    with pytest.raises(TimingViolation):
        h.step([(0, a, True)])


def test_timing_check_can_be_disabled():
    c = Circuit()
    a = c.add_input("a")
    w = a
    for _ in range(10):
        w = c.buf(w)
    c.dff(w)
    h = ClockedHarness(c, 1, period_ps=100, check_timing=False)
    h.step([(0, a, True)])  # no exception


def test_power_bins_span_cycles():
    c, a = shift_register(1)
    h = ClockedHarness(c, 1, period_ps=1000)
    rec = PowerRecorder(1, h.total_time_ps(3), bin_ps=1000, weights=h.sim.weights)
    h.step([(0, a, True)], recorder=rec)
    h.step([], recorder=rec)
    h.step([], recorder=rec)
    # input toggle in cycle 0, FF output toggle in cycle 1
    assert rec.power[0, 0] > 0
    assert rec.power[0, 1] > 0


def test_run_schedule():
    c, a = shift_register(2)
    h = ClockedHarness(c, 1, period_ps=500)
    h.run([[(0, a, True)], [], []])
    assert h.cycle == 3
    assert h.output_values()["q"][0]


def test_reset_harness():
    c, a = shift_register(1)
    h = ClockedHarness(c, 1, period_ps=500)
    h.step([(0, a, True)])
    h.step([])
    h.reset()
    assert h.cycle == 0
    assert not h.ff_state("ff0")[0]
