"""Unit and property-based tests for the share algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shares import (
    is_uniform_sharing,
    joint_distribution,
    random_bits,
    share,
    share_many,
    shares_independent_of,
    unshare,
)


def rng(seed=0):
    return np.random.default_rng(seed)


def test_share_roundtrip_array():
    r = rng()
    v = random_bits(r, 1000)
    s0, s1 = share(v, r)
    assert np.array_equal(unshare(s0, s1), v)


def test_share_scalar_broadcast():
    s0, s1 = share(True, rng(), n=64)
    assert np.all(unshare(s0, s1))
    s0, s1 = share(0, rng(), n=64)
    assert not np.any(unshare(s0, s1))


def test_share_scalar_requires_n():
    with pytest.raises(ValueError):
        share(True, rng())


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_share_roundtrip_property(seed):
    r = np.random.default_rng(seed)
    v = random_bits(r, 256)
    s0, s1 = share(v, r)
    assert np.array_equal(s0 ^ s1, v)


def test_mask_share_is_uniform():
    r = rng(1)
    v = np.ones(50_000, bool)  # constant secret
    s0, s1 = share(v, r)
    assert is_uniform_sharing(s0, s1)
    # and each share individually carries no information about v
    assert abs(s1.mean() - 0.5) < 0.02


def test_share_many_independent_masks():
    r = rng(2)
    pairs = share_many([np.ones(20_000, bool)] * 2, r)
    (a0, _), (b0, _) = pairs
    # masks of different variables are independent
    corr = np.corrcoef(a0, b0)[0, 1]
    assert abs(corr) < 0.03


def test_joint_distribution_uniform_bits():
    r = rng(3)
    bits = [random_bits(r, 100_000) for _ in range(2)]
    d = joint_distribution(bits)
    assert d.shape == (4,)
    assert np.allclose(d, 0.25, atol=0.01)
    assert d.sum() == pytest.approx(1.0)


def test_joint_distribution_correlated_bits():
    r = rng(4)
    a = random_bits(r, 100_000)
    d = joint_distribution([a, a])  # fully correlated
    assert d[1] == pytest.approx(0.0)
    assert d[2] == pytest.approx(0.0)


def test_shares_independent_of_detects_dependence():
    r = rng(5)
    secret = random_bits(r, 100_000)
    leaky = secret.copy()  # the "share" IS the secret
    assert not shares_independent_of([leaky], secret)


def test_shares_independent_of_passes_proper_sharing():
    r = rng(6)
    secret = random_bits(r, 100_000)
    s0, s1 = share(secret, r)
    assert shares_independent_of([s0], secret)
    assert shares_independent_of([s1], secret)


def test_shares_independent_of_joint_shares_fail():
    """Jointly, the two shares determine the secret."""
    r = rng(7)
    secret = random_bits(r, 100_000)
    s0, s1 = share(secret, r)
    assert not shares_independent_of([s0, s1], secret)


def test_shares_independent_requires_both_classes():
    r = rng(8)
    secret = np.zeros(100, bool)
    with pytest.raises(ValueError):
        shares_independent_of([secret], secret)
