"""Unit tests for SNR computation and the randomness source."""

import numpy as np
import pytest

from repro.leakage.prng import RandomnessSource
from repro.leakage.snr import snr


def test_snr_zero_for_uninformative_traces():
    rng = np.random.default_rng(0)
    traces = rng.normal(0, 1, (20000, 4))
    labels = rng.integers(0, 2, 20000)
    assert np.all(snr(traces, labels) < 0.01)


def test_snr_high_where_signal_lives():
    rng = np.random.default_rng(1)
    labels = rng.integers(0, 2, 20000)
    traces = rng.normal(0, 1, (20000, 4))
    traces[:, 2] += 3.0 * labels
    s = snr(traces, labels)
    assert s[2] > 1.0
    assert np.all(s[[0, 1, 3]] < 0.01)


def test_snr_scales_with_signal_amplitude():
    rng = np.random.default_rng(2)
    labels = rng.integers(0, 2, 50000)
    base = rng.normal(0, 1, (50000, 1))
    small = base + 0.5 * labels[:, None]
    large = base + 2.0 * labels[:, None]
    assert snr(large, labels)[0] > 10 * snr(small, labels)[0]


def test_snr_requires_two_classes():
    with pytest.raises(ValueError):
        snr(np.zeros((10, 2)), np.zeros(10, dtype=int))


def test_snr_multiclass():
    rng = np.random.default_rng(3)
    labels = rng.integers(0, 4, 40000)
    traces = rng.normal(0, 1, (40000, 2))
    traces[:, 0] += labels
    s = snr(traces, labels)
    assert s[0] > 0.5


def test_parallel_instances_improve_snr():
    """The paper replicates secAND2 instances to raise SNR (Sec. II-B).

    Replication multiplies the (correlated) signal while the
    *measurement* noise stays constant, so with realistic oscilloscope
    noise the SNR grows with the instance count.
    """
    from repro.core.sequences import SequenceSource

    rng = np.random.default_rng(4)
    seq = ("y0", "y1", "x1", "x0")
    snrs = []
    for n_inst in (1, 8):
        src = SequenceSource(seq, n_instances=n_inst)
        fixed = np.zeros(20000, bool)
        fixed[:10000] = True
        traces = src.acquire(fixed, np.random.default_rng(5))
        traces = traces + rng.normal(0, 10.0, traces.shape)
        snrs.append(snr(traces, fixed.astype(int)).max())
    assert snrs[1] > 2 * snrs[0]


# ----------------------------------------------------------------------
def test_prng_enabled_produces_random_bits():
    src = RandomnessSource(0)
    bits = src.bits(1000)
    assert 0.4 < bits.mean() < 0.6


def test_prng_disabled_is_all_zero():
    src = RandomnessSource(0, enabled=False)
    assert not src.bits(100).any()
    assert not src.words(10, 48).any()


def test_prng_seeded_reproducible():
    assert np.array_equal(
        RandomnessSource(42).bits(64), RandomnessSource(42).bits(64)
    )


def test_prng_shapes():
    src = RandomnessSource(1)
    assert src.bits(3, 5).shape == (3, 5)
    assert src.bit(7).shape == (7,)
    assert src.words(4, 48).shape == (4,)


def test_prng_words_range():
    src = RandomnessSource(2)
    w = src.words(1000, 8)
    assert w.max() < 256
    with pytest.raises(ValueError):
        src.words(1, 64)


def test_prng_spawn_independent_but_seeded():
    parent = RandomnessSource(3)
    child = parent.spawn()
    assert child.enabled
    # spawning is deterministic given the parent seed
    parent2 = RandomnessSource(3)
    child2 = parent2.spawn()
    assert np.array_equal(child.bits(32), child2.bits(32))


def test_prng_spawn_preserves_disabled():
    assert not RandomnessSource(0, enabled=False).spawn().enabled
