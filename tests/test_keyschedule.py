"""Tests for the (masked) key schedule."""

import numpy as np
import pytest

from repro.des.bits import int_to_bitarray
from repro.des.keyschedule import (
    masked_round_keys_bits,
    rotate_left28,
    round_keys,
    round_keys_bits,
)


def test_rotate_left28():
    assert rotate_left28(1 << 27, 1) == 1
    assert rotate_left28(0b11, 2) == 0b1100
    assert rotate_left28(0xFFFFFFF, 5) == 0xFFFFFFF


def test_round_keys_count_and_width():
    keys = round_keys(0x133457799BBCDFF1)
    assert len(keys) == 16
    assert all(0 <= k < 1 << 48 for k in keys)


def test_round_keys_known_first_and_last():
    """K1 and K16 for the classic 0x133457799BBCDFF1 key."""
    keys = round_keys(0x133457799BBCDFF1)
    assert keys[0] == 0b000110110000001011101111111111000111000001110010
    assert keys[15] == 0b110010110011110110001011000011100001011111110101


def test_round_keys_bits_matches_scalar():
    rng = np.random.default_rng(0)
    kv = rng.integers(0, 2**63, 16, dtype=np.uint64)
    bit_keys = round_keys_bits(int_to_bitarray(kv, 64))
    assert len(bit_keys) == 16
    for i, kb in enumerate(bit_keys):
        assert kb.shape == (48, 16)
        for t in range(16):
            scalar = round_keys(int(kv[t]))[i]
            got = 0
            for b in range(48):
                got = (got << 1) | int(kb[b, t])
            assert got == scalar


def test_masked_schedule_recombines():
    rng = np.random.default_rng(1)
    kv = rng.integers(0, 2**63, 8, dtype=np.uint64)
    kb = int_to_bitarray(kv, 64)
    mask = rng.integers(0, 2, kb.shape).astype(bool)
    masked = masked_round_keys_bits(kb ^ mask, mask)
    plain = round_keys_bits(kb)
    for (k0, k1), ref in zip(masked, plain):
        assert np.array_equal(k0 ^ k1, ref)


def test_masked_schedule_shares_dont_leak_key():
    """Each share of each round key is uniformly distributed."""
    rng = np.random.default_rng(2)
    n = 20000
    kb = int_to_bitarray(np.uint64(0x133457799BBCDFF1), 64, n)
    mask = rng.integers(0, 2, kb.shape).astype(bool)
    masked = masked_round_keys_bits(kb ^ mask, mask)
    k0, k1 = masked[0]
    assert abs(k0.mean() - 0.5) < 0.01
    assert abs(k1.mean() - 0.5) < 0.01
