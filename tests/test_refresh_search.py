"""Tests of the generic greedy refresh search and its DES binding.

:mod:`repro.core.refresh_search` is the extracted loop behind
:func:`repro.des.selective_refresh.greedy_minimal_refresh` and the
compiler's selective refresh pass; the DES regression here pins the
exact minimal subset so any change to the generic loop that shifts
results shows up immediately.
"""

from repro.core.refresh_search import FINAL_SALT, greedy_minimize
from repro.des.selective_refresh import greedy_minimal_refresh


# ----------------------------------------------------------------------
# generic loop semantics
# ----------------------------------------------------------------------
def test_greedy_drops_only_unneeded_positions():
    needed = (True, False, True, False, False)

    def defect(mask, salt):
        return 0.5 if any(n and not m for n, m in zip(needed, mask)) else 0.01

    result = greedy_minimize(defect, n_positions=5)
    assert result.mask == needed
    assert result.floor == 0.01
    assert result.defect == 0.01
    assert result.bits_used == 2
    assert result.bits_saved == 3
    assert result.kept == (0, 2)


def test_salt_schedule_is_pinned():
    """Floor at salt 0, trial for position p at salt p+1, final at 99 —
    the historical DES schedule, relied on for bit-identical results."""
    seen = []

    def defect(mask, salt):
        seen.append(salt)
        return 0.0

    greedy_minimize(defect, n_positions=3)
    assert seen[0] == 0  # floor
    assert sorted(seen[1:-1]) == [1, 2, 3]  # one trial per position
    assert seen[-1] == FINAL_SALT


def test_default_order_is_highest_first():
    visited = []

    def defect(mask, salt):
        if 0 < salt < FINAL_SALT:
            visited.append(salt - 1)
        return 0.0

    greedy_minimize(defect, n_positions=4)
    assert visited == [3, 2, 1, 0]


def test_custom_order_respected():
    visited = []

    def defect(mask, salt):
        if 0 < salt < FINAL_SALT:
            visited.append(salt - 1)
        return 0.0

    greedy_minimize(defect, n_positions=3, order=(1, 0, 2))
    assert visited == [1, 0, 2]


def test_threshold_uses_tolerance_factor():
    # floor 0.1; dropping any position doubles the defect to 0.2.
    def defect(mask, salt):
        return 0.1 if all(mask) else 0.2

    tight = greedy_minimize(defect, n_positions=2, tolerance_factor=1.5)
    assert tight.mask == (True, True)  # 0.2 > 0.15 + slack -> keep
    loose = greedy_minimize(defect, n_positions=2, tolerance_factor=3.0)
    assert loose.mask == (False, False)  # 0.2 <= 0.3 + slack -> drop


# ----------------------------------------------------------------------
# DES regression: the minimal refresh subset is pinned
# ----------------------------------------------------------------------
def test_des_sbox0_minimal_refresh_subset_regression():
    """The exact subset found for DES S-box 0 at the historical budget.

    Bit-identical behaviour of the extracted generic loop vs the
    original in-module search; if this moves, the greedy loop's salt
    schedule or visit order changed.
    """
    plan = greedy_minimal_refresh(0, n_per_input=1500, seed=2)
    assert plan.mask == (
        False, True, True, False, True, False, False,
        False, False, False, False, False, False, False,
    )
    assert plan.bits_used == 3
    assert plan.bits_used < 14  # strictly fewer than refresh-everything
    # and the subset still holds uniformity near the sampled floor
    assert plan.defect < 2 * plan.baseline_defect + 1e-4
