"""Sanity tests for the DES standard tables."""

import pytest

from repro.des.tables import E, FP, IP, P, PC1, PC2, SBOXES, SHIFTS


def test_table_sizes():
    assert len(IP) == 64
    assert len(FP) == 64
    assert len(E) == 48
    assert len(P) == 32
    assert len(PC1) == 56
    assert len(PC2) == 48
    assert len(SHIFTS) == 16
    assert len(SBOXES) == 8


def test_ip_fp_are_inverse_permutations():
    # FP[IP^-1] round-trips every bit position
    for out_pos, src in enumerate(FP):
        assert IP[src - 1] == out_pos + 1


def test_ip_is_permutation():
    assert sorted(IP) == list(range(1, 65))
    assert sorted(FP) == list(range(1, 65))
    assert sorted(P) == list(range(1, 33))


def test_pc1_drops_parity_bits():
    parity = {8, 16, 24, 32, 40, 48, 56, 64}
    assert parity.isdisjoint(set(PC1))
    assert len(set(PC1)) == 56


def test_pc2_selects_from_56():
    assert len(set(PC2)) == 48
    assert max(PC2) <= 56
    assert min(PC2) >= 1


def test_e_expansion_structure():
    # every input bit of R appears at least once, edges twice
    assert set(E) == set(range(1, 33))
    from collections import Counter

    counts = Counter(E)
    assert sum(1 for v in counts.values() if v == 2) == 16


def test_shift_total_is_28():
    # after 16 rounds the key registers return to their start position
    assert sum(SHIFTS) == 28


def test_sbox_rows_are_4bit_permutations():
    """Each row must be a permutation of 0..15 — the property that
    bounds the mini S-box ANF degree at 3 (Sec. IV-A)."""
    for box in SBOXES:
        assert len(box) == 4
        for row in box:
            assert sorted(row) == list(range(16))


def test_sbox1_first_row_spot_values():
    assert SBOXES[0][0][0] == 14
    assert SBOXES[0][0][15] == 7
    assert SBOXES[7][3][15] == 11
