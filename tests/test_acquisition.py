"""Unit tests for the fixed-vs-random acquisition harness."""

import os

import numpy as np
import pytest

from repro.leakage.acquisition import (
    CampaignBatchError,
    CampaignConfig,
    OversubscriptionWarning,
    detect_leakage_traces,
    run_campaign,
    run_multi_fixed,
)


class CrashySource:
    """Source whose acquire always raises (picklable, for pool tests)."""

    n_samples = 8

    def acquire(self, fixed_mask, rng):
        raise RuntimeError("injected fault")


class SyntheticSource:
    """Source with a controllable first-order leak at sample 3."""

    def __init__(self, leak=0.0, n_samples=8):
        self.n_samples = n_samples
        self.leak = leak
        self.calls = 0

    def acquire(self, fixed_mask, rng):
        self.calls += 1
        n = fixed_mask.shape[0]
        traces = rng.normal(10.0, 1.0, (n, self.n_samples)).astype(np.float32)
        traces[fixed_mask, 3] += self.leak
        return traces


def test_campaign_flags_leaky_source():
    res = run_campaign(
        SyntheticSource(leak=0.5),
        CampaignConfig(n_traces=5000, batch_size=1000, noise_sigma=0.0, seed=1),
    )
    assert res.leaks(1)
    assert 3 in res.crossings(1)


def test_campaign_clean_source_stays_clean():
    res = run_campaign(
        SyntheticSource(leak=0.0),
        CampaignConfig(n_traces=5000, batch_size=1000, noise_sigma=0.0, seed=1),
    )
    assert not res.leaks(1)


def test_campaign_noise_slows_detection():
    quiet = run_campaign(
        SyntheticSource(leak=0.3),
        CampaignConfig(n_traces=4000, batch_size=1000, noise_sigma=0.0, seed=2),
    )
    noisy = run_campaign(
        SyntheticSource(leak=0.3),
        CampaignConfig(n_traces=4000, batch_size=1000, noise_sigma=5.0, seed=2),
    )
    assert noisy.max_abs(1) < quiet.max_abs(1)


def test_campaign_respects_trace_budget():
    src = SyntheticSource()
    res = run_campaign(
        src, CampaignConfig(n_traces=3500, batch_size=1000, seed=0)
    )
    assert res.n_traces == 3500
    assert src.calls == 4  # 1000+1000+1000+500


def test_detect_leakage_reports_trace_count():
    detected, res = detect_leakage_traces(
        SyntheticSource(leak=1.0),
        CampaignConfig(n_traces=20000, batch_size=500, noise_sigma=0.0, seed=3),
    )
    assert detected is not None
    assert detected <= 2000  # strong leak found quickly
    assert res.n_traces == detected


def test_detect_leakage_none_for_clean_source():
    detected, res = detect_leakage_traces(
        SyntheticSource(leak=0.0),
        CampaignConfig(n_traces=3000, batch_size=1000, noise_sigma=0.0, seed=4),
    )
    assert detected is None
    assert res.n_traces == 3000


def test_multi_fixed_runs_requested_tests():
    made = []

    def factory(i):
        made.append(i)
        return SyntheticSource(leak=0.5)

    results = run_multi_fixed(
        factory,
        CampaignConfig(n_traces=2000, batch_size=1000, noise_sigma=0.0, seed=5),
        n_fixed=3,
    )
    assert made == [0, 1, 2]
    assert len(results) == 3
    assert all(r.leaks(1) for r in results)
    # seeds differ across the tests
    assert len({r.label for r in results}) == 3


# ----------------------------------------------------------------------
# config validation and batch-failure context
# ----------------------------------------------------------------------
def test_config_rejects_nonpositive_trace_count():
    with pytest.raises(ValueError, match="n_traces"):
        CampaignConfig(n_traces=0)
    with pytest.raises(ValueError, match="n_traces"):
        CampaignConfig(n_traces=-100)


def test_config_rejects_nonpositive_batch_size():
    with pytest.raises(ValueError, match="batch_size"):
        CampaignConfig(batch_size=0)


def test_config_rejects_negative_noise():
    with pytest.raises(ValueError, match="noise_sigma"):
        CampaignConfig(noise_sigma=-0.1)


def test_serial_batch_error_carries_context():
    cfg = CampaignConfig(n_traces=2000, batch_size=1000, seed=1, label="ctx")
    with pytest.raises(CampaignBatchError) as ei:
        run_campaign(CrashySource(), cfg)
    err = ei.value
    assert err.batch_index == 0
    assert err.label == "ctx"
    assert "batch 0" in str(err) and "'ctx'" in str(err)
    assert "injected fault" in str(err)
    assert isinstance(err.__cause__, RuntimeError)


def test_pool_batch_error_carries_context_and_traceback():
    cfg = CampaignConfig(n_traces=2000, batch_size=1000, seed=1, label="pool")
    with pytest.raises(CampaignBatchError) as ei:
        run_campaign(CrashySource(), cfg, n_workers=2)
    err = ei.value
    assert err.batch_index == 0
    assert err.label == "pool"
    assert "injected fault" in err.worker_traceback
    assert "worker traceback" in str(err)


# ----------------------------------------------------------------------
# parallel campaigns
# ----------------------------------------------------------------------
def test_parallel_campaign_matches_serial_20k():
    """Acceptance check: n_workers=4 reproduces the serial t-stats."""
    cfg = CampaignConfig(
        n_traces=20_000, batch_size=1000, noise_sigma=1.0, seed=11
    )
    serial = run_campaign(SyntheticSource(leak=0.3), cfg)
    parallel = run_campaign(SyntheticSource(leak=0.3), cfg, n_workers=4)
    assert parallel.n_traces == serial.n_traces == 20_000
    for a, b in ((serial.t1, parallel.t1), (serial.t2, parallel.t2),
                 (serial.t3, parallel.t3)):
        rel = np.abs(a - b) / np.maximum(np.abs(a), 1e-30)
        assert np.all(rel[a != 0] <= 1e-9)
        assert np.array_equal(a, b)  # in fact bitwise identical


def test_parallel_detection_matches_serial():
    cfg = CampaignConfig(
        n_traces=20_000, batch_size=500, noise_sigma=0.0, seed=3
    )
    d_serial, _ = detect_leakage_traces(SyntheticSource(leak=1.0), cfg)
    d_par, _ = detect_leakage_traces(
        SyntheticSource(leak=1.0), cfg, n_workers=4
    )
    assert d_serial is not None
    assert d_par == d_serial


def test_config_n_workers_used_as_default():
    cfg = CampaignConfig(
        n_traces=4000, batch_size=1000, noise_sigma=0.0, seed=6, n_workers=2
    )
    res = run_campaign(SyntheticSource(leak=0.5), cfg)  # pool via config
    ref = run_campaign(
        SyntheticSource(leak=0.5),
        CampaignConfig(n_traces=4000, batch_size=1000, noise_sigma=0.0, seed=6),
    )
    assert np.array_equal(res.t1, ref.t1)


def test_parallel_with_simulator_source():
    """End-to-end: a real gadget-bank source through the process pool."""
    from repro.core.sequences import SequenceSource

    make = lambda: SequenceSource(
        ("x0", "x1", "y0", "y1"), n_instances=2
    )
    cfg = CampaignConfig(
        n_traces=1200, batch_size=300, noise_sigma=1.0, seed=8
    )
    serial = run_campaign(make(), cfg)
    parallel = run_campaign(make(), cfg, n_workers=3)
    assert np.array_equal(serial.t1, parallel.t1)
    assert np.array_equal(serial.t2, parallel.t2)


def test_multi_fixed_parallel_matches_serial():
    cfg = CampaignConfig(
        n_traces=2000, batch_size=500, noise_sigma=0.0, seed=5
    )
    serial = run_multi_fixed(lambda i: SyntheticSource(leak=0.5), cfg, n_fixed=2)
    par = run_multi_fixed(
        lambda i: SyntheticSource(leak=0.5), cfg, n_fixed=2, n_workers=2
    )
    for a, b in zip(serial, par):
        assert np.array_equal(a.t1, b.t1)


# ----------------------------------------------------------------------
# start methods, warm-up and schedule pinning
# ----------------------------------------------------------------------
def test_spawn_campaign_bitwise_equals_serial():
    """The pool result must not depend on the process start method.

    ``spawn`` re-pickles the source into cold workers (nothing is
    inherited from the parent), which exercises the whole transport and
    warm-up path from scratch — the t-statistics must still be bitwise
    identical to the serial run.
    """
    import multiprocessing

    if "spawn" not in multiprocessing.get_all_start_methods():
        pytest.skip("spawn start method unavailable")
    cfg = CampaignConfig(
        n_traces=2000, batch_size=500, noise_sigma=1.0, seed=21,
        start_method="spawn",
    )
    serial = run_campaign(SyntheticSource(leak=0.4), cfg, n_workers=1)
    with pytest.warns(OversubscriptionWarning) if (os.cpu_count() or 1) < 2 \
            else _nullcontext():
        parallel = run_campaign(SyntheticSource(leak=0.4), cfg, n_workers=2)
    assert parallel.stats.start_method == "spawn"
    assert np.array_equal(serial.t1, parallel.t1)
    assert np.array_equal(serial.t2, parallel.t2)
    assert np.array_equal(serial.t3, parallel.t3)


def _nullcontext():
    import contextlib

    return contextlib.nullcontext()


def test_forked_workers_replay_inherited_schedules():
    """Fork pool workers must hit the parent-warmed schedule cache.

    The campaign warms (and pins) the source's circuits in the parent
    before forking, so the per-batch cache counters measured inside the
    workers must show replays and zero compiles — recompiling per
    worker was the v1 regression.
    """
    import multiprocessing

    from repro.core.sequences import SequenceSource

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    source = SequenceSource(("x0", "x1", "y0", "y1"), n_instances=2)
    cfg = CampaignConfig(
        n_traces=800, batch_size=200, noise_sigma=1.0, seed=9,
        start_method="fork",
    )
    with pytest.warns(OversubscriptionWarning) if (os.cpu_count() or 1) < 2 \
            else _nullcontext():
        res = run_campaign(source, cfg, n_workers=2)
    stats = res.stats
    assert stats.start_method == "fork"
    assert stats.warmup_seconds > 0  # parent-side warm-up ran
    assert stats.schedule_compiles == 0  # no per-worker recompiles
    assert stats.schedule_replays >= stats.n_batches


def test_structural_edit_after_warmup_raises_stale_schedule():
    """A pinned circuit must refuse structural edits, loudly.

    ``warmup()`` pins the schedule cache for the campaign; editing the
    circuit afterwards and acquiring again must raise StaleScheduleError
    instead of silently recompiling (= silently simulating a different
    device mid-campaign).
    """
    from repro.core.sequences import SequenceSource
    from repro.leakage.acquisition import _warm_source
    from repro.sim.compiled import StaleScheduleError, unpin_schedule_cache

    source = SequenceSource(("x0", "x1", "y0", "y1"), n_instances=1)
    assert _warm_source(source) > 0
    source.circuit.inv(source.circuit.wire("x0"))  # structural edit
    with pytest.raises(StaleScheduleError):
        source.acquire(np.ones(4, dtype=bool), np.random.default_rng(0))
    unpin_schedule_cache(source.circuit)  # unpinned: edits allowed again
    source.acquire(np.ones(4, dtype=bool), np.random.default_rng(0))
