"""Unit tests for the fixed-vs-random acquisition harness."""

import numpy as np
import pytest

from repro.leakage.acquisition import (
    CampaignConfig,
    detect_leakage_traces,
    run_campaign,
    run_multi_fixed,
)


class SyntheticSource:
    """Source with a controllable first-order leak at sample 3."""

    def __init__(self, leak=0.0, n_samples=8):
        self.n_samples = n_samples
        self.leak = leak
        self.calls = 0

    def acquire(self, fixed_mask, rng):
        self.calls += 1
        n = fixed_mask.shape[0]
        traces = rng.normal(10.0, 1.0, (n, self.n_samples)).astype(np.float32)
        traces[fixed_mask, 3] += self.leak
        return traces


def test_campaign_flags_leaky_source():
    res = run_campaign(
        SyntheticSource(leak=0.5),
        CampaignConfig(n_traces=5000, batch_size=1000, noise_sigma=0.0, seed=1),
    )
    assert res.leaks(1)
    assert 3 in res.crossings(1)


def test_campaign_clean_source_stays_clean():
    res = run_campaign(
        SyntheticSource(leak=0.0),
        CampaignConfig(n_traces=5000, batch_size=1000, noise_sigma=0.0, seed=1),
    )
    assert not res.leaks(1)


def test_campaign_noise_slows_detection():
    quiet = run_campaign(
        SyntheticSource(leak=0.3),
        CampaignConfig(n_traces=4000, batch_size=1000, noise_sigma=0.0, seed=2),
    )
    noisy = run_campaign(
        SyntheticSource(leak=0.3),
        CampaignConfig(n_traces=4000, batch_size=1000, noise_sigma=5.0, seed=2),
    )
    assert noisy.max_abs(1) < quiet.max_abs(1)


def test_campaign_respects_trace_budget():
    src = SyntheticSource()
    res = run_campaign(
        src, CampaignConfig(n_traces=3500, batch_size=1000, seed=0)
    )
    assert res.n_traces == 3500
    assert src.calls == 4  # 1000+1000+1000+500


def test_detect_leakage_reports_trace_count():
    detected, res = detect_leakage_traces(
        SyntheticSource(leak=1.0),
        CampaignConfig(n_traces=20000, batch_size=500, noise_sigma=0.0, seed=3),
    )
    assert detected is not None
    assert detected <= 2000  # strong leak found quickly
    assert res.n_traces == detected


def test_detect_leakage_none_for_clean_source():
    detected, res = detect_leakage_traces(
        SyntheticSource(leak=0.0),
        CampaignConfig(n_traces=3000, batch_size=1000, noise_sigma=0.0, seed=4),
    )
    assert detected is None
    assert res.n_traces == 3000


def test_multi_fixed_runs_requested_tests():
    made = []

    def factory(i):
        made.append(i)
        return SyntheticSource(leak=0.5)

    results = run_multi_fixed(
        factory,
        CampaignConfig(n_traces=2000, batch_size=1000, noise_sigma=0.0, seed=5),
        n_fixed=3,
    )
    assert made == [0, 1, 2]
    assert len(results) == 3
    assert all(r.leaks(1) for r in results)
    # seeds differ across the tests
    assert len({r.label for r in results}) == 3
