"""Unit tests for the secAND2 gadget family (Eq. 2 / Figs. 1-3)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gadgets import (
    PD_DELAY_UNITS,
    SharePair,
    build_secand2,
    build_secand2_ff,
    build_secand2_pd,
    masked_not,
    masked_xor,
    refresh,
    secand2,
    secand2_func,
    trichina_func,
)
from repro.netlist.circuit import Circuit
from repro.sim.clocking import ClockedHarness
from repro.sim.vectorsim import VectorSimulator


def all_share_combinations():
    """All 16 share assignments as one vectorised batch."""
    combos = np.array(list(itertools.product([0, 1], repeat=4)), dtype=bool)
    return combos[:, 0], combos[:, 1], combos[:, 2], combos[:, 3]


def test_secand2_func_exhaustive():
    """Eq. 2 computes x AND y for every share assignment."""
    x0, x1, y0, y1 = all_share_combinations()
    z0, z1 = secand2_func(x0, x1, y0, y1)
    assert np.array_equal(z0 ^ z1, (x0 ^ x1) & (y0 ^ y1))


def test_secand2_func_needs_no_randomness():
    """Determinism: same shares always give the same output shares."""
    x0, x1, y0, y1 = all_share_combinations()
    a = secand2_func(x0, x1, y0, y1)
    b = secand2_func(x0, x1, y0, y1)
    assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


def test_secand2_output_not_independent_of_inputs():
    """The documented caveat (Sec. III-C): without fresh randomness the
    output sharing is a *deterministic* function of the input shares —
    e.g. whenever y = 0, z0 equals NOT y0 exactly."""
    rng = np.random.default_rng(0)
    n = 50_000
    x = rng.integers(0, 2, n).astype(bool)
    y = np.zeros(n, dtype=bool)
    x0 = rng.integers(0, 2, n).astype(bool)
    y0 = rng.integers(0, 2, n).astype(bool)
    z0, z1 = secand2_func(x0, x ^ x0, y0, y ^ y0)
    assert np.array_equal(z0, ~y0)  # perfectly correlated with a share
    # and jointly the output shares reveal x AND y by construction
    assert np.array_equal(z0 ^ z1, x & y)


def test_trichina_func_exhaustive():
    x0, x1, y0, y1 = all_share_combinations()
    for r in (False, True):
        rv = np.full(16, r)
        z0, z1 = trichina_func(x0, x1, y0, y1, rv)
        assert np.array_equal(z0 ^ z1, (x0 ^ x1) & (y0 ^ y1))


def test_secand2_netlist_matches_func():
    c = build_secand2()
    x0, x1, y0, y1 = all_share_combinations()
    sim = VectorSimulator(c, 16)
    sim.evaluate_combinational(
        {c.wire("x0"): x0, c.wire("x1"): x1, c.wire("y0"): y0, c.wire("y1"): y1}
    )
    out = sim.output_values()
    f0, f1 = secand2_func(x0, x1, y0, y1)
    assert np.array_equal(out["z0_0"], f0)
    assert np.array_equal(out["z1_0"], f1)


def test_secand2_gate_inventory_lut_style():
    """FPGA mapping: each output share is one LUT (SECAND2L)."""
    c = build_secand2()
    assert c.cell_counts() == {"SECAND2L": 2}


def test_secand2_gate_inventory_discrete_style():
    """Fig. 1 ASIC netlist: 1 INV + 2 AND2 + 2 OR2 + 2 XOR2."""
    c = build_secand2(style="gates")
    assert c.cell_counts() == {"AND2": 2, "INV": 1, "OR2": 2, "XOR2": 2}


def test_secand2_styles_functionally_identical():
    import numpy as np
    from repro.sim.vectorsim import VectorSimulator

    x0, x1, y0, y1 = all_share_combinations()
    outs = []
    for style in ("lut", "gates"):
        c = build_secand2(style=style)
        sim = VectorSimulator(c, 16)
        sim.evaluate_combinational({
            c.wire("x0"): x0, c.wire("x1"): x1,
            c.wire("y0"): y0, c.wire("y1"): y1,
        })
        outs.append(sim.output_values())
    assert np.array_equal(outs[0]["z0_0"], outs[1]["z0_0"])
    assert np.array_equal(outs[0]["z1_0"], outs[1]["z1_0"])


def test_secand2_bank_replication():
    c = build_secand2(n_instances=4)
    assert c.cell_counts()["SECAND2L"] == 8
    assert len(c.outputs) == 8


def test_secand2_ff_has_internal_ff_with_reset_group():
    c = build_secand2_ff()
    ffs = c.ff_gates()
    assert len(ffs) == 1
    assert ffs[0].params.get("reset_group") == "gadget"


def test_secand2_ff_two_cycle_evaluation():
    """secAND2-FF: y1 is sampled one cycle later; result valid after
    two cycles (the paper's 2-cycle multiplication)."""
    c = build_secand2_ff()
    x0, x1, y0, y1 = all_share_combinations()
    h = ClockedHarness(c, 16, period_ps=1000)
    h.step([
        (0, c.wire("x0"), x0), (0, c.wire("x1"), x1),
        (0, c.wire("y0"), y0), (0, c.wire("y1"), y1),
    ])
    h.step([])  # edge: internal FF samples y1
    out = h.output_values()
    f0, f1 = secand2_func(x0, x1, y0, y1)
    assert np.array_equal(out["z0"], f0)
    assert np.array_equal(out["z1"], f1)


def test_secand2_pd_delay_schedule():
    """Fig. 3: y0 undelayed, x0/x1 one unit, y1 two units."""
    assert PD_DELAY_UNITS == {"y0": 0, "x0": 1, "x1": 1, "y1": 2}
    c = build_secand2_pd(n_luts=10)
    delays = {
        g.name: g.params.get("n_units")
        for g in c.gates
        if g.cell.name == "DELAY"
    }
    assert delays["secand2pd_dl_x0"] == 1
    assert delays["secand2pd_dl_x1"] == 1
    assert delays["secand2pd_dl_y1"] == 2
    assert "secand2pd_dl_y0" not in delays  # zero units -> no gate


def test_secand2_pd_single_settle_correct():
    c = build_secand2_pd(n_luts=2)
    x0, x1, y0, y1 = all_share_combinations()
    sim = VectorSimulator(c, 16)
    sim.settle([
        (0, c.wire("x0"), x0), (0, c.wire("x1"), x1),
        (0, c.wire("y0"), y0), (0, c.wire("y1"), y1),
    ])
    out = sim.output_values()
    f0, f1 = secand2_func(x0, x1, y0, y1)
    assert np.array_equal(out["z0"], f0)
    assert np.array_equal(out["z1"], f1)


def test_secand2_pd_statically_safe():
    from repro.netlist.safety import check_secand2_ordering

    c = build_secand2_pd(n_luts=10)
    assert check_secand2_ordering(c) == []


def test_secand2_annotation_registered():
    c = build_secand2()
    anns = c.annotations["secand2"]
    assert len(anns) == 1
    assert set(anns[0]) == {"tag", "x0", "x1", "y0", "y1"}


def test_masked_xor_and_not():
    c = Circuit()
    x = SharePair(*c.add_inputs("x0", "x1"))
    y = SharePair(*c.add_inputs("y0", "y1"))
    zx = masked_xor(c, x, y)
    zn = masked_not(c, x)
    c.mark_output("zx0", zx.s0)
    c.mark_output("zx1", zx.s1)
    c.mark_output("zn0", zn.s0)
    c.mark_output("zn1", zn.s1)
    x0, x1, y0, y1 = all_share_combinations()
    sim = VectorSimulator(c, 16)
    sim.evaluate_combinational(
        {c.wire("x0"): x0, c.wire("x1"): x1, c.wire("y0"): y0, c.wire("y1"): y1}
    )
    out = sim.output_values()
    assert np.array_equal(out["zx0"] ^ out["zx1"], (x0 ^ x1) ^ (y0 ^ y1))
    assert np.array_equal(out["zn0"] ^ out["zn1"], ~(x0 ^ x1))


def test_refresh_preserves_value_and_remasks():
    c = Circuit()
    x = SharePair(*c.add_inputs("x0", "x1"))
    m = c.add_input("m")
    z = refresh(c, x, m)
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    rng = np.random.default_rng(0)
    n = 1000
    x0 = rng.integers(0, 2, n).astype(bool)
    x1 = rng.integers(0, 2, n).astype(bool)
    mv = rng.integers(0, 2, n).astype(bool)
    sim = VectorSimulator(c, n)
    sim.evaluate_combinational({c.wire("x0"): x0, c.wire("x1"): x1, c.wire("m"): mv})
    out = sim.output_values()
    assert np.array_equal(out["z0"] ^ out["z1"], x0 ^ x1)
    assert np.array_equal(out["z0"], x0 ^ mv)


@given(st.integers(0, 1), st.integers(0, 1), st.integers(0, 1), st.integers(0, 1))
@settings(max_examples=16, deadline=None)
def test_secand2_func_scalar_property(x0, x1, y0, y1):
    a = np.array([bool(x0)])
    b = np.array([bool(x1)])
    cc = np.array([bool(y0)])
    d = np.array([bool(y1)])
    z0, z1 = secand2_func(a, b, cc, d)
    assert bool(z0[0] ^ z1[0]) == ((x0 ^ x1) and (y0 ^ y1))
