"""Bitwise equivalence of the bit-packed engine against the boolean one.

The packed engine is only allowed to change *time*, never *bits*: for
every workload in the repo — the full gadget preset zoo, the masked-DES
clocked harness, random glitchy circuits — packed and boolean runs must
produce identical power samples, identical TVLA t-statistics, identical
event accounting and identical per-wire transition logs, including on
ragged batches (``n_traces % 64 != 0``) where the final lane carries
pad bits.
"""

import numpy as np
import pytest

from repro.core.sequences import INPUT_NAMES, SequenceSource
from repro.des.bits import int_to_bitarray
from repro.des.engines import MaskedDESNetlistEngine
from repro.leakage.acquisition import (
    CampaignConfig,
    run_campaign,
    suggest_batch_size,
)
from repro.leakage.prng import RandomnessSource
from repro.sim.clocking import ClockedHarness
from repro.sim.power import NullRecorder, PowerRecorder, TransientRecorder
from repro.sim.vectorsim import VectorSimulator
from repro.verify import preset_spec
from repro.verify.crossval import SpecTraceSource
from repro.verify.presets import PRESETS

from .test_compiled import (
    LoggingRecorder,
    assert_logs_equal,
    random_circuit,
    random_events,
)

#: Deliberately ragged campaign geometry: 120 % 64 != 0 and the final
#: batch is 80 traces — every packed batch exercises lane padding.
N_TRACES = 200
BATCH = 120


def _preset_campaign(name, pack_traces):
    """A small fixed-vs-random campaign over one gadget preset.

    Fresh spec and source per call so schedule-cache state (compile
    counters) cannot leak between the two legs.
    """
    source = SpecTraceSource(preset_spec(name))
    config = CampaignConfig(
        n_traces=N_TRACES,
        batch_size=BATCH,
        noise_sigma=0.5,
        seed=7,
        pack_traces=pack_traces,
    )
    return run_campaign(source, config, n_workers=1)


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_preset_campaign_bitwise_equal(name):
    """Packed campaigns on every gadget preset: identical TvlaResult
    t-statistics (all three orders) and identical campaign accounting."""
    boolean = _preset_campaign(name, pack_traces=False)
    packed = _preset_campaign(name, pack_traces=True)
    assert np.array_equal(boolean.t1, packed.t1)
    assert np.array_equal(boolean.t2, packed.t2)
    assert np.array_equal(boolean.t3, packed.t3)
    bs, ps = boolean.stats, packed.stats
    assert bs.n_traces == ps.n_traces == N_TRACES
    assert len(bs.batches) == len(ps.batches)
    assert bs.schedule_compiles == ps.schedule_compiles
    assert bs.schedule_replays == ps.schedule_replays


@pytest.mark.parametrize(
    "name", ["secand2_pd", "dom_indep", "trichina_late_x"]
)
def test_preset_power_samples_bitwise_equal(name):
    """Raw recorder output of one acquire: float-for-float identical."""
    rng_kw = dict(seed=123)
    fixed = np.zeros(90, dtype=bool)  # 90 traces: ragged final lane
    fixed[::2] = True
    powers = []
    for pack in (False, True):
        source = SpecTraceSource(preset_spec(name), pack_traces=pack)
        powers.append(source.acquire(fixed, np.random.default_rng(**rng_kw)))
    assert np.array_equal(powers[0], powers[1])


# ----------------------------------------------------------------------
# masked-DES clocked harness
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def des_engine():
    return MaskedDESNetlistEngine("ff")


def test_masked_des_packed_batch_bitwise_equal(des_engine):
    """Full 16-round masked DES, ragged 66-trace batch: ciphertext and
    every power sample identical between the engines."""
    rng = np.random.default_rng(9)
    n = 66  # 66 % 64 == 2: two real bits in the second lane
    pt = int_to_bitarray(rng.integers(0, 2**63, n, dtype=np.uint64), 64)
    ky = int_to_bitarray(rng.integers(0, 2**63, n, dtype=np.uint64), 64)
    ct_b, p_b = des_engine.run_batch(
        pt, ky, RandomnessSource(11), pack_traces=False
    )
    ct_p, p_p = des_engine.run_batch(
        pt, ky, RandomnessSource(11), pack_traces=True
    )
    assert np.array_equal(ct_b, ct_p)
    assert np.array_equal(p_b, p_p)


# ----------------------------------------------------------------------
# sequence-source campaign (interpreted + compiled VectorSimulator path)
# ----------------------------------------------------------------------
def test_sequence_source_campaign_bitwise_equal():
    results = []
    for pack in (False, True):
        source = SequenceSource(INPUT_NAMES, n_instances=4)
        config = CampaignConfig(
            n_traces=N_TRACES,
            batch_size=BATCH,
            noise_sigma=1.0,
            seed=3,
            pack_traces=pack,
        )
        results.append(run_campaign(source, config, n_workers=1))
    boolean, packed = results
    assert np.array_equal(boolean.t1, packed.t1)
    assert np.array_equal(boolean.t2, packed.t2)
    assert np.array_equal(boolean.t3, packed.t3)


# ----------------------------------------------------------------------
# transition order, event accounting, glitchy random circuits
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 2, 4])
@pytest.mark.parametrize("compiled", [False, True])
def test_random_circuit_packed_transition_equality(seed, compiled):
    """Per-wire transition logs — time, wire, toggle mask, new value —
    in identical order, on glitchy random circuits, both engines, with
    a ragged trace count."""
    c = random_circuit(seed, jitter=True)
    rng = np.random.default_rng(seed + 500)
    n = 70  # ragged
    events_a = random_events(c, rng, n)
    events_b = random_events(c, rng, n)
    out = []
    for pack in (False, True):
        sim = VectorSimulator(
            c, n, compile_schedules=compiled, pack_traces=pack
        )
        rec = LoggingRecorder()
        times = [
            sim.settle(events, recorder=rec)
            for events in (events_a, events_b)
        ]
        values = np.stack(
            [sim.wire_values(w) for w in range(c.n_wires)]
        )
        out.append((times, sim.events_processed, values, rec.log))
    (tb, eb, vb, lb), (tp, ep, vp, lp) = out
    assert tb == tp
    assert eb == ep
    assert np.array_equal(vb, vp)
    assert_logs_equal(lb, lp)


@pytest.mark.parametrize("compiled", [False, True])
def test_coupling_window_ordering_bitwise_equal(compiled):
    """CouplingModel energy depends on the *order* of coincident
    transitions inside the window; packed runs must reproduce the
    boolean engine's recording order exactly."""
    from repro.sim.power import CouplingModel

    c = random_circuit(7, jitter=True)
    rng = np.random.default_rng(77)
    n = 90  # ragged
    events = random_events(c, rng, n)
    powers = []
    for pack in (False, True):
        sim = VectorSimulator(
            c, n, compile_schedules=compiled, pack_traces=pack
        )
        coupling = CouplingModel(
            pairs=[(2, 5), (6, 9)], coefficient=0.05
        )
        rec = PowerRecorder(
            n, 6000, bin_ps=250, weights=sim.weights, coupling=coupling
        )
        sim.settle(events, recorder=rec)
        powers.append(rec.power)
    assert np.array_equal(powers[0], powers[1])


# ----------------------------------------------------------------------
# NullRecorder fast path + TransientRecorder refusal
# ----------------------------------------------------------------------
@pytest.mark.parametrize("compiled", [False, True])
def test_null_recorder_packed_fast_path(compiled):
    """NullRecorder settles skip recording entirely in packed mode but
    must leave functional results and event counts untouched."""
    c = random_circuit(1)
    rng = np.random.default_rng(42)
    n = 100
    events = random_events(c, rng, n)
    out = []
    for pack in (False, True):
        sim = VectorSimulator(
            c, n, compile_schedules=compiled, pack_traces=pack
        )
        t = sim.settle(events, recorder=NullRecorder())
        values = np.stack(
            [sim.wire_values(w) for w in range(c.n_wires)]
        )
        out.append((t, sim.events_processed, values))
    assert out[0][0] == out[1][0]
    assert out[0][1] == out[1][1]
    assert np.array_equal(out[0][2], out[1][2])


def test_null_recorder_methods_are_noops():
    rec = NullRecorder()
    assert rec.is_null
    rec.record_wire(0, 3, np.ones(4, bool), np.zeros(4, bool))
    rec.record_batch(0, [(1, np.ones(4, bool), np.zeros(4, bool))])
    rec.add_energy(0, np.zeros(4, np.float32))
    assert rec.n_bins == 0


def test_transient_recorder_refuses_packed_settle():
    """TransientRecorder needs per-trace transients; the packed engine
    must refuse it loudly instead of silently unpacking everything."""
    c = random_circuit(3)
    n = 128
    sim = VectorSimulator(c, n, pack_traces=True)
    rec = TransientRecorder()
    events = random_events(c, np.random.default_rng(0), n)
    with pytest.raises(RuntimeError, match="pack_traces=False"):
        sim.settle(events, recorder=rec)


def test_transient_recorder_fine_with_auto_small_batch():
    """'auto' keeps small verify-style batches boolean, so the exact
    verifier's TransientRecorder path is unaffected by the default."""
    c = random_circuit(3)
    n = 8
    sim = VectorSimulator(
        c, n, compile_schedules=False, pack_traces="auto"
    )
    assert not sim.packed
    events = random_events(c, np.random.default_rng(0), n)
    sim.settle(events, recorder=TransientRecorder())


# ----------------------------------------------------------------------
# clocked harness state across cycles
# ----------------------------------------------------------------------
def test_clocked_harness_ff_state_bitwise_equal():
    """Flip-flop sampling (the packed bitwise mux) across cycles."""
    from repro.core.gadgets import build_secand2_ff

    c = build_secand2_ff()
    rng = np.random.default_rng(5)
    n = 77
    names = [w for w in ("x0", "x1", "y0", "y1")]
    vals = {k: rng.integers(0, 2, n).astype(bool) for k in names}
    out = []
    for pack in (False, True):
        h = ClockedHarness(c, n, period_ps=4000, pack_traces=pack)
        h.preload({}, {c.wire(k): False for k in names})
        rec = PowerRecorder(n, 12000, bin_ps=250, weights=h.sim.weights)
        for cycle in range(3):
            events = [
                (100 + 300 * i, c.wire(k), vals[k])
                for i, k in enumerate(names)
            ]
            h.step(events, recorder=rec)
        out.append((h.ff_state("secand2ff_ff_y1"), rec.power))
    assert np.array_equal(out[0][0], out[1][0])
    assert np.array_equal(out[0][1], out[1][1])


# ----------------------------------------------------------------------
# batch-size autotuning (satellite: lane-aligned batches)
# ----------------------------------------------------------------------
def test_suggest_batch_size_rounds_to_lane_width():
    assert suggest_batch_size(100_000, 1, pack_traces=True) % 64 == 0
    assert suggest_batch_size(100_000, 3, pack_traces="auto") % 64 == 0
    # boolean engine: no rounding constraint
    assert suggest_batch_size(10_000, 3, pack_traces=False) == 833
    # tiny campaigns stay unrounded even when packing is forced
    assert suggest_batch_size(30, 1, pack_traces=True) == 30


def test_autotune_rounds_when_packed():
    cfg = CampaignConfig(
        n_traces=100_000, batch_size=1, pack_traces="auto"
    ).autotune(cpu_count=4)
    assert cfg.batch_size % 64 == 0
    boolean = CampaignConfig(
        n_traces=100_000, batch_size=1, pack_traces=False
    ).autotune(cpu_count=4)
    assert boolean.batch_size >= 256


def test_campaign_config_rejects_bad_pack_traces():
    with pytest.raises(ValueError):
        CampaignConfig(n_traces=100, batch_size=50, pack_traces="always")


# ----------------------------------------------------------------------
# bench: single-CPU campaign skip (satellite: cpu_count<2)
# ----------------------------------------------------------------------
def test_bench_records_campaign_skip_on_single_cpu(monkeypatch):
    from repro.eval import bench

    monkeypatch.setattr(bench, "_cpu_count", lambda: 1)
    called = []
    monkeypatch.setattr(
        bench,
        "campaign_comparison",
        lambda *a, **k: called.append(a) or {},
    )
    result = bench.run(quick=True, write=False)
    assert not called, "parallel leg must not run at all on 1 CPU"
    campaign = result.payload["campaign"]
    assert campaign["skipped_reason"] == "cpu_count<2"
    assert result.payload["parallel_comparison_valid"] is False
    assert "skipped (cpu_count<2)" in result.render()
    # the in-process packed sections still ran
    assert result.payload["settle_packed"]["speedup"] > 0
    assert result.payload["campaign_packed"]["bitwise_equal"] is True


def test_bench_runs_campaign_with_enough_cpus(monkeypatch):
    from repro.eval import bench

    monkeypatch.setattr(bench, "_cpu_count", lambda: 4)
    sentinel = {"source": "stub", "speedup": 1.0, "bitwise_equal": True}
    monkeypatch.setattr(
        bench, "campaign_comparison", lambda *a, **k: sentinel
    )
    result = bench.run(quick=True, write=False)
    assert result.payload["campaign"] is sentinel
    assert result.payload["parallel_comparison_valid"] is True


# ----------------------------------------------------------------------
# packed-domain power accumulation (counter planes, PR 8)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("compiled", [False, True])
def test_plain_recorder_power_bitwise_equal_both_paths(compiled):
    """A coupling-free PowerRecorder takes the counter-plane path in
    packed mode (both the compiled replay and the interpreted loop);
    power must stay float-for-float identical to the boolean engine on
    a ragged batch with weight > 1 wires (1 + fanout)."""
    c = random_circuit(11, jitter=True)
    rng = np.random.default_rng(111)
    n = 90  # ragged final lane
    events = random_events(c, rng, n)
    powers = []
    for pack in (False, True):
        sim = VectorSimulator(
            c, n, compile_schedules=compiled, pack_traces=pack
        )
        rec = PowerRecorder(n, 6000, bin_ps=250, weights=sim.weights)
        sim.settle(events, recorder=rec)
        powers.append(rec.power.copy())
    assert np.array_equal(powers[0], powers[1])


def test_packed_acquire_uses_counter_planes():
    """End-to-end packed acquisition must actually reach the packed
    accumulator — if this fails, the engine silently fell back to the
    per-event unpack leg (the 0.98x regression)."""
    from repro.sim.power import (
        packed_accumulator_counters,
        reset_packed_accumulator_counters,
    )

    reset_packed_accumulator_counters()
    source = SequenceSource(INPUT_NAMES, n_instances=4, pack_traces=True)
    source.acquire(np.ones(128, dtype=bool), np.random.default_rng(0))
    counters = packed_accumulator_counters()
    assert counters["accumulators"] >= 1
    assert counters["flushes"] >= 1
    assert counters["max_planes"] >= 1
    assert counters["overflow_bins"] == 0


def test_engine_auto_pack_declines_with_coupling_recorder(
    des_engine, monkeypatch
):
    """pack_traces='auto' + a coupling recorder: the engine must fall
    back to the boolean path (one-shot AutoPackFallbackWarning) and
    produce the exact boolean result — not run packed into the slow
    per-event unpack leg."""
    from repro.sim.bitpack import (
        AutoPackFallbackWarning,
        reset_auto_pack_warning,
    )

    monkeypatch.setattr(
        des_engine, "coupling_pairs", [(0, 1)], raising=False
    )
    rng = np.random.default_rng(21)
    n = 66
    pt = int_to_bitarray(rng.integers(0, 2**63, n, dtype=np.uint64), 64)
    ky = int_to_bitarray(rng.integers(0, 2**63, n, dtype=np.uint64), 64)
    ct_b, p_b = des_engine.run_batch(
        pt, ky, RandomnessSource(11),
        coupling_coefficient=0.25, pack_traces=False,
    )
    reset_auto_pack_warning()
    with pytest.warns(AutoPackFallbackWarning):
        ct_a, p_a = des_engine.run_batch(
            pt, ky, RandomnessSource(11),
            coupling_coefficient=0.25, pack_traces="auto",
        )
    reset_auto_pack_warning()
    assert np.array_equal(ct_b, ct_a)
    assert np.array_equal(p_b, p_a)


def test_suggest_batch_size_skips_lane_rounding_for_coupled_recorder():
    from repro.sim.bitpack import reset_auto_pack_warning
    from repro.sim.power import CouplingModel, PowerRecorder

    coupled = PowerRecorder(
        64, 1000, coupling=CouplingModel(pairs=[(0, 1)])
    )
    reset_auto_pack_warning()
    with pytest.warns(Warning):
        batch = suggest_batch_size(
            10_000, 3, pack_traces="auto", recorder=coupled
        )
    reset_auto_pack_warning()
    assert batch == 833  # boolean heuristic: no 64-trace rounding
    plain = PowerRecorder(64, 1000)
    assert (
        suggest_batch_size(10_000, 3, pack_traces="auto", recorder=plain)
        % 64
        == 0
    )
