"""Tests for checkpointed, fault-tolerant campaign runs.

The contract under test: ``run_campaign_resilient`` produces the
bitwise-identical :class:`TvlaResult` of a plain serial
``run_campaign`` for every combination of worker count, interruption,
resume and worker death.
"""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.leakage.acquisition import (
    CampaignBatchError,
    CampaignConfig,
    run_campaign,
)
from repro.leakage.resilient import (
    load_checkpoint,
    run_campaign_resilient,
    save_checkpoint,
)
from repro.leakage.tvla import TTestAccumulator

CFG = dict(n_traces=1000, batch_size=100, noise_sigma=0.5, seed=7)


class Synth:
    """Leaky synthetic source drawing all randomness from the batch rng."""

    def __init__(self, n_samples=16):
        self.n_samples = n_samples

    def acquire(self, fixed_mask, rng):
        tr = rng.normal(0.0, 1.0, (fixed_mask.shape[0], self.n_samples))
        tr[fixed_mask] += 0.05
        return tr


class CrashOnCall(Synth):
    """Raises on the Nth acquire call (serial: call N == batch N)."""

    def __init__(self, crash_call, n_samples=16):
        super().__init__(n_samples)
        self.crash_call = crash_call
        self.calls = 0

    def acquire(self, fixed_mask, rng):
        if self.calls == self.crash_call:
            raise RuntimeError("injected fault")
        self.calls += 1
        return super().acquire(fixed_mask, rng)


class KillOnce(Synth):
    """SIGKILLs the first worker process that acquires a batch.

    The kill happens at most once (guarded by an O_EXCL flag file shared
    across the forked workers) and only in a worker — the parent and the
    serial path are never killed.
    """

    def __init__(self, flag_path, n_samples=16):
        super().__init__(n_samples)
        self.flag = str(flag_path)

    def acquire(self, fixed_mask, rng):
        if multiprocessing.parent_process() is not None:
            try:
                fd = os.open(self.flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                os.close(fd)
                os.kill(os.getpid(), signal.SIGKILL)
        return super().acquire(fixed_mask, rng)


def assert_same_result(a, b):
    assert a.n_traces == b.n_traces
    assert np.array_equal(a.t1, b.t1)
    assert np.array_equal(a.t2, b.t2)
    assert np.array_equal(a.t3, b.t3)


# ----------------------------------------------------------------------
# checkpoint format
# ----------------------------------------------------------------------
def test_accumulator_state_roundtrip():
    rng = np.random.default_rng(0)
    acc = TTestAccumulator(8)
    acc.update(rng.normal(size=(50, 8)), rng.integers(0, 2, 50).astype(bool))
    clone = TTestAccumulator.from_state(acc.state())
    assert clone.n_traces == acc.n_traces
    assert np.array_equal(clone.t_stats(1), acc.t_stats(1))
    assert np.array_equal(clone.t_stats(3), acc.t_stats(3))


def test_checkpoint_roundtrip(tmp_path):
    cfg = CampaignConfig(**CFG, label="roundtrip")
    rng = np.random.default_rng(1)
    acc = TTestAccumulator(16)
    acc.update(rng.normal(size=(200, 16)), rng.integers(0, 2, 200).astype(bool))
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(path, acc, cfg, next_batch=2)
    loaded, next_batch = load_checkpoint(path, cfg, n_samples=16)
    assert next_batch == 2
    assert np.array_equal(loaded.t_stats(1), acc.t_stats(1))
    # no tmp file left behind by the atomic write
    assert not os.path.exists(path + ".tmp")


def test_load_checkpoint_missing_returns_none(tmp_path):
    cfg = CampaignConfig(**CFG)
    assert load_checkpoint(str(tmp_path / "nope.npz"), cfg, 16) is None


def test_checkpoint_fingerprint_mismatch_rejected(tmp_path):
    cfg = CampaignConfig(**CFG, label="fp")
    acc = TTestAccumulator(16)
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(path, acc, cfg, next_batch=1)
    other = CampaignConfig(**{**CFG, "seed": 8}, label="fp")
    with pytest.raises(ValueError, match="different campaign"):
        load_checkpoint(path, other, 16)
    with pytest.raises(ValueError, match="samples"):
        load_checkpoint(path, cfg, 32)


# ----------------------------------------------------------------------
# resilient runner
# ----------------------------------------------------------------------
def test_resilient_serial_matches_run_campaign(tmp_path):
    cfg = CampaignConfig(**CFG, label="serial")
    ref = run_campaign(Synth(), cfg)
    path = str(tmp_path / "ckpt.npz")
    res = run_campaign_resilient(Synth(), cfg, path, n_workers=1)
    assert_same_result(res, ref)
    assert not os.path.exists(path)  # cleaned up after success


def test_crash_then_resume_is_bitwise_identical(tmp_path):
    cfg = CampaignConfig(**CFG, label="resume")
    path = str(tmp_path / "ckpt.npz")
    with pytest.raises(CampaignBatchError) as ei:
        run_campaign_resilient(CrashOnCall(4), cfg, path, n_workers=1)
    assert ei.value.batch_index == 4
    assert ei.value.label == "resume"
    # the completed prefix was persisted
    loaded, next_batch = load_checkpoint(path, cfg, 16)
    assert next_batch == 4
    assert loaded.n_traces == 400
    # resume with a healthy source: bitwise equal to the uninterrupted run
    res = run_campaign_resilient(Synth(), cfg, path, n_workers=1)
    assert_same_result(res, run_campaign(Synth(), cfg))
    assert not os.path.exists(path)


def test_resume_with_sparse_checkpoints_is_bitwise(tmp_path):
    """checkpoint_every > 1 re-simulates a few batches after resume but
    still reproduces the serial float64 addition sequence."""
    cfg = CampaignConfig(**CFG, label="sparse")
    path = str(tmp_path / "ckpt.npz")
    with pytest.raises(CampaignBatchError):
        run_campaign_resilient(
            CrashOnCall(5), cfg, path, n_workers=1, checkpoint_every=3
        )
    res = run_campaign_resilient(
        Synth(), cfg, path, n_workers=1, checkpoint_every=3
    )
    assert_same_result(res, run_campaign(Synth(), cfg))


def test_resume_false_starts_from_scratch(tmp_path):
    cfg = CampaignConfig(**CFG, label="fresh")
    path = str(tmp_path / "ckpt.npz")
    with pytest.raises(CampaignBatchError):
        run_campaign_resilient(CrashOnCall(2), cfg, path, n_workers=1)
    res = run_campaign_resilient(Synth(), cfg, path, n_workers=1, resume=False)
    assert_same_result(res, run_campaign(Synth(), cfg))


def test_cleanup_false_keeps_final_checkpoint(tmp_path):
    cfg = CampaignConfig(**CFG, label="keep")
    path = str(tmp_path / "ckpt.npz")
    run_campaign_resilient(Synth(), cfg, path, n_workers=1, cleanup=False)
    loaded, next_batch = load_checkpoint(path, cfg, 16)
    assert next_batch == 10
    assert loaded.n_traces == cfg.n_traces


def test_checkpoint_every_validated(tmp_path):
    cfg = CampaignConfig(**CFG)
    with pytest.raises(ValueError, match="checkpoint_every"):
        run_campaign_resilient(Synth(), cfg, str(tmp_path / "c.npz"),
                               checkpoint_every=0)


def test_parallel_resilient_matches_serial(tmp_path):
    cfg = CampaignConfig(**CFG, label="par")
    ref = run_campaign(Synth(), cfg)
    res = run_campaign_resilient(
        Synth(), cfg, str(tmp_path / "ckpt.npz"), n_workers=2
    )
    assert_same_result(res, ref)


def test_deterministic_worker_failure_not_retried(tmp_path):
    """Source exceptions re-raise immediately (they would fail again);
    only worker deaths and timeouts are retried."""
    cfg = CampaignConfig(**CFG, label="det")
    with pytest.raises(CampaignBatchError) as ei:
        run_campaign_resilient(
            CrashOnCall(0), cfg, str(tmp_path / "ckpt.npz"), n_workers=2
        )
    assert ei.value.batch_index == 0
    assert "injected fault" in str(ei.value)


@pytest.mark.slow
def test_killed_worker_is_retried_and_result_bitwise(tmp_path):
    """A SIGKILLed worker costs one timeout + pool rebuild, not the
    campaign: the final result still equals the serial run bit for bit."""
    cfg = CampaignConfig(**CFG, label="kill")
    flag = tmp_path / "killed.flag"
    res = run_campaign_resilient(
        KillOnce(flag),
        cfg,
        str(tmp_path / "ckpt.npz"),
        n_workers=2,
        worker_timeout_s=3.0,
        max_retries=2,
        backoff_s=0.05,
    )
    assert flag.exists()  # the kill really happened
    assert_same_result(res, run_campaign(Synth(), cfg))


@pytest.mark.slow
def test_exhausted_retries_degrade_to_serial(tmp_path):
    """With zero retries the runner immediately falls back to in-process
    serial execution and still finishes with the exact result."""
    cfg = CampaignConfig(**CFG, label="degrade")
    flag = tmp_path / "killed.flag"
    res = run_campaign_resilient(
        KillOnce(flag),
        cfg,
        str(tmp_path / "ckpt.npz"),
        n_workers=2,
        worker_timeout_s=2.0,
        max_retries=0,
        backoff_s=0.05,
    )
    assert flag.exists()
    assert_same_result(res, run_campaign(Synth(), cfg))
