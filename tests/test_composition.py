"""Unit tests for the composition rules of Sec. III."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composition import (
    insecure_f_xy,
    pd_delay_schedule,
    product_chain_pd,
    product_tree_ff,
    secure_f_xy,
    tree_latency_cycles,
)
from repro.core.gadgets import SharePair
from repro.core.shares import share
from repro.netlist.circuit import Circuit
from repro.netlist.safety import check_secand2_ordering
from repro.sim.clocking import ClockedHarness
from repro.sim.vectorsim import VectorSimulator


def rng(seed=0):
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# delay schedules (Table II)
# ----------------------------------------------------------------------
def test_schedule_matches_table2_n3():
    assert pd_delay_schedule(3) == {
        (2, 0): 0, (1, 0): 1, (0, 0): 2, (0, 1): 2, (1, 1): 3, (2, 1): 4,
    }


def test_schedule_matches_table2_n4():
    assert pd_delay_schedule(4) == {
        (3, 0): 0, (2, 0): 1, (1, 0): 2, (0, 0): 3, (0, 1): 3,
        (1, 1): 4, (2, 1): 5, (3, 1): 6,
    }


def test_schedule_rejects_trivial():
    with pytest.raises(ValueError):
        pd_delay_schedule(1)


@given(st.integers(min_value=2, max_value=10))
@settings(max_examples=20, deadline=None)
def test_schedule_safety_invariants(n):
    """For every variable v_i (i>0): share 0 arrives before both shares
    of every inner variable, and share 1 after them — the generalised
    Table II safety property."""
    sched = pd_delay_schedule(n)
    for i in range(1, n):
        inner_max = max(
            max(sched[(j, 0)], sched[(j, 1)]) for j in range(0, i)
        )
        inner_min = min(
            min(sched[(j, 0)], sched[(j, 1)]) for j in range(0, i)
        )
        assert sched[(i, 1)] > inner_max
        assert sched[(i, 0)] < inner_min or i == 0


@given(st.integers(min_value=2, max_value=10))
@settings(max_examples=20, deadline=None)
def test_schedule_innermost_shares_together(n):
    sched = pd_delay_schedule(n)
    assert sched[(0, 0)] == sched[(0, 1)] == n - 1


def test_tree_latency_formula():
    # Sec. III-A: log2(n) + 1 cycles
    assert tree_latency_cycles(2) == 2
    assert tree_latency_cycles(3) == 3
    assert tree_latency_cycles(4) == 3
    assert tree_latency_cycles(8) == 4
    with pytest.raises(ValueError):
        tree_latency_cycles(1)


# ----------------------------------------------------------------------
# product tree (secAND2-FF, Fig. 4)
# ----------------------------------------------------------------------
def build_tree(n_vars):
    c = Circuit("tree")
    ops = [
        SharePair(c.add_input(f"v{i}s0"), c.add_input(f"v{i}s1"))
        for i in range(n_vars)
    ]
    tree = product_tree_ff(c, ops)
    c.mark_output("z0", tree.output.s0)
    c.mark_output("z1", tree.output.s1)
    c.check()
    return c, tree


@pytest.mark.parametrize("n_vars", [2, 3, 4, 5, 8])
def test_tree_structure(n_vars):
    c, tree = build_tree(n_vars)
    assert tree.n_gadgets == n_vars - 1
    assert tree.latency_cycles == tree_latency_cycles(n_vars)
    assert len(tree.layer_enables) == tree.latency_cycles - 1


@pytest.mark.parametrize("n_vars", [2, 4])
def test_tree_functional_with_layered_enables(n_vars):
    """Drive the Fig. 4 schedule: inputs in cycle 1, then one enable
    layer per cycle; the product appears after latency cycles."""
    c, tree = build_tree(n_vars)
    n = 512
    r = rng(7)
    vals = []
    events = []
    for i in range(n_vars):
        v = r.integers(0, 2, n).astype(bool)
        s0, s1 = share(v, r)
        vals.append(v)
        events += [(0, c.wire(f"v{i}s0"), s0), (0, c.wire(f"v{i}s1"), s1)]
    h = ClockedHarness(c, n, period_ps=2000)
    h.step(events + [(10, en, True) for en in tree.layer_enables[:1]])
    for k in range(1, len(tree.layer_enables) + 1):
        ev = []
        if k < len(tree.layer_enables):
            ev.append((10, tree.layer_enables[k], True))
        if k >= 1:
            ev.append((10, tree.layer_enables[k - 1], False))
        h.step(ev)
    out = h.output_values()
    expect = vals[0]
    for v in vals[1:]:
        expect = expect & v
    assert np.array_equal(out["z0"] ^ out["z1"], expect)


# ----------------------------------------------------------------------
# product chain (secAND2-PD, Fig. 6)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_vars", [2, 3, 4, 5])
def test_chain_functional(n_vars):
    c = Circuit("chain")
    ops = [
        SharePair(c.add_input(f"v{i}s0"), c.add_input(f"v{i}s1"))
        for i in range(n_vars)
    ]
    z = product_chain_pd(c, ops, n_luts=2)
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    c.check()
    n = 256
    r = rng(3)
    vals, assign = [], {}
    for i in range(n_vars):
        v = r.integers(0, 2, n).astype(bool)
        s0, s1 = share(v, r)
        vals.append(v)
        assign[c.wire(f"v{i}s0")] = s0
        assign[c.wire(f"v{i}s1")] = s1
    sim = VectorSimulator(c, n)
    sim.evaluate_combinational(assign)
    out = sim.output_values()
    expect = vals[0]
    for v in vals[1:]:
        expect = expect & v
    assert np.array_equal(out["z0"] ^ out["z1"], expect)


@pytest.mark.parametrize("n_vars", [2, 3, 4])
def test_chain_gadget_count_and_static_safety(n_vars):
    c = Circuit("chain")
    ops = [
        SharePair(c.add_input(f"v{i}s0"), c.add_input(f"v{i}s1"))
        for i in range(n_vars)
    ]
    product_chain_pd(c, ops, n_luts=4)
    assert len(c.annotations["secand2"]) == n_vars - 1
    assert check_secand2_ordering(c) == []


# ----------------------------------------------------------------------
# f = x ^ y ^ x.y (Fig. 7)
# ----------------------------------------------------------------------
def _run_f(c, with_mask):
    n = 100_000
    r = rng(11)
    x = r.integers(0, 2, n).astype(bool)
    y = r.integers(0, 2, n).astype(bool)
    x0, x1 = share(x, r)
    y0, y1 = share(y, r)
    assign = {
        c.wire("x0"): x0, c.wire("x1"): x1,
        c.wire("y0"): y0, c.wire("y1"): y1,
    }
    if with_mask:
        assign[c.wire("m")] = r.integers(0, 2, n).astype(bool)
    sim = VectorSimulator(c, n)
    sim.evaluate_combinational(assign)
    out = sim.output_values()
    f = x ^ y ^ (x & y)
    return out["f0"], out["f1"], f, x, y


def test_secure_f_functional():
    f0, f1, f, x, y = _run_f(secure_f_xy(), with_mask=True)
    assert np.array_equal(f0 ^ f1, f)


def test_insecure_f_functional():
    f0, f1, f, x, y = _run_f(insecure_f_xy(), with_mask=False)
    assert np.array_equal(f0 ^ f1, f)


def test_refresh_is_load_bearing():
    """Sec. III-C: without the refresh, the masked output share f0 has a
    data-dependent distribution; with it, f0 is balanced for every
    (x, y).  This is exactly why Fig. 7 inserts the refresh."""
    f0_bad, _, _, x, y = _run_f(insecure_f_xy(), with_mask=False)
    p_bad = [
        f0_bad[(x == a) & (y == b)].mean() for a in (0, 1) for b in (0, 1)
    ]
    assert max(p_bad) - min(p_bad) > 0.2  # insecure: biased share

    f0_ok, _, _, x, y = _run_f(secure_f_xy(), with_mask=True)
    p_ok = [
        f0_ok[(x == a) & (y == b)].mean() for a in (0, 1) for b in (0, 1)
    ]
    assert max(p_ok) - min(p_ok) < 0.02  # secure: balanced share
