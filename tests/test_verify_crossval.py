"""Cross-validation: exact verifier verdict vs TVLA (slow suite).

Two independent oracles judge every gadget preset: the exact
glitch-extended probing verifier (full enumeration) and a seeded
fixed-vs-random TVLA campaign over the same spec.  On most gadgets the
verdicts must agree — a probe-trace bias is a power-mean difference.

The two composition gadgets whose biased probes sit symmetrically on
the output shares (``insecure_f_xy``, ``pchain3_pd``) are the
documented exception: the share biases cancel exactly in the summed
first-order power mean and surface at second order, so the exact
verifier is strictly stronger than first-order TVLA there.  The suite
pins both halves of that claim down.
"""

import pytest

from repro.verify import cross_validate, preset_spec
from repro.verify.presets import PRESETS

#: Presets where first-order TVLA must agree with the exact verdict.
AGREEING = [
    "secand2_good_order",
    "secand2_bad_order",
    "secand2_ff",
    "secand2_pd",
    "secand2_pd_y1_early",
    "trichina_late_x",
    "dom_indep",
    "ti_and3",
    "secure_f_xy",
]

#: Presets with a share-symmetric exact leak: first-order TVLA is
#: structurally blind, second order is not.
SHARE_SYMMETRIC = ["insecure_f_xy", "pchain3_pd"]


def test_preset_partition_is_total():
    assert sorted(AGREEING + SHARE_SYMMETRIC) == sorted(PRESETS)


@pytest.mark.slow
@pytest.mark.parametrize("name", AGREEING)
def test_exact_and_tvla_agree(name):
    cv = cross_validate(preset_spec(name), n_traces=10_000, seed=0)
    assert cv.agree, cv.render()
    # and both match the paper's prediction
    expect = PRESETS[name].expect_secure
    assert cv.exact_leaks == (not expect)
    assert cv.tvla_leaks == (not expect)


@pytest.mark.slow
@pytest.mark.parametrize("name", AGREEING)
def test_leaky_presets_detected_within_budget(name):
    if PRESETS[name].expect_secure:
        pytest.skip("secure preset: nothing to detect")
    cv = cross_validate(preset_spec(name), n_traces=10_000, seed=0)
    assert cv.detected_at is not None
    assert cv.detected_at <= 10_000


@pytest.mark.slow
@pytest.mark.parametrize("name", SHARE_SYMMETRIC)
def test_share_symmetric_leaks_need_second_order(name):
    """Exact leak, flat first-order t, explosive second-order t."""
    cv = cross_validate(preset_spec(name), n_traces=10_000, seed=0)
    assert cv.exact_leaks
    assert not cv.tvla_leaks_at(1), cv.render()
    assert cv.tvla_leaks_at(2), cv.render()
    # not a near-miss: the order-2 statistic is an order of magnitude
    # past the threshold while order 1 sits below it
    assert cv.tvla.max_abs(2) > 10 * cv.threshold
    assert cv.tvla.max_abs(1) < cv.threshold


@pytest.mark.slow
def test_crossval_render_readable():
    cv = cross_validate(preset_spec("secand2_bad_order"), n_traces=10_000, seed=0)
    text = cv.render()
    assert "secand2_bad_order" in text
    assert "AGREE" in text
