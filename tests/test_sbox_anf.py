"""Tests for the mini-S-box ANF decomposition (Eq. 3 / Eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.bits import int_to_bitarray
from repro.des.reference import sbox_lookup
from repro.des.sbox_anf import (
    ALL_DEG2,
    ALL_DEG3,
    ALL_MONOMIALS,
    anf_of_row,
    decompose_sbox,
    evaluate_row_anf,
    mobius_transform,
    monomial_name,
    select_products,
)
from repro.des.tables import SBOXES


def test_monomial_sets():
    assert len(ALL_DEG2) == 6
    assert len(ALL_DEG3) == 4
    assert len(ALL_MONOMIALS) == 10
    assert all(bin(m).count("1") == 2 for m in ALL_DEG2)
    assert all(bin(m).count("1") == 3 for m in ALL_DEG3)


def test_monomial_names():
    assert monomial_name(0) == "1"
    assert monomial_name(0b1000) == "x1"
    assert monomial_name(0b1001) == "x1*x4"
    assert monomial_name(0b0111) == "x2*x3*x4"


def test_mobius_constant_functions():
    assert mobius_transform([0] * 16) == [0] * 16
    one = mobius_transform([1] * 16)
    assert one[0] == 1 and sum(one) == 1


def test_mobius_single_variable():
    # f = x1 (MSB of the column index)
    tt = [(c >> 3) & 1 for c in range(16)]
    coeffs = mobius_transform(tt)
    assert coeffs[0b1000] == 1
    assert sum(coeffs) == 1


@given(st.lists(st.integers(0, 1), min_size=16, max_size=16))
@settings(max_examples=50, deadline=None)
def test_mobius_is_involution(tt):
    assert mobius_transform(mobius_transform(tt)) == [v & 1 for v in tt]


@given(st.lists(st.integers(0, 1), min_size=16, max_size=16))
@settings(max_examples=50, deadline=None)
def test_mobius_evaluates_back_to_truth_table(tt):
    coeffs = mobius_transform(tt)
    for c in range(16):
        acc = 0
        for m in range(16):
            if (m & c) == m and coeffs[m]:
                acc ^= 1
        assert acc == (tt[c] & 1)


@pytest.mark.parametrize("sbox", range(8))
@pytest.mark.parametrize("row", range(4))
def test_anf_reproduces_table(sbox, row):
    anf = anf_of_row(sbox, row)
    x = int_to_bitarray(np.arange(16, dtype=np.uint64), 4)
    out = evaluate_row_anf(anf, x)
    vals = (
        out[0].astype(int) * 8
        + out[1].astype(int) * 4
        + out[2].astype(int) * 2
        + out[3].astype(int)
    )
    assert list(vals) == list(SBOXES[sbox][row])


@pytest.mark.parametrize("sbox", range(8))
def test_degree_bound_and_monomial_budget(sbox):
    """Sec. IV-A: at most six degree-2 and four degree-3 terms; never
    degree 4 (rows are 4-bit permutations)."""
    d = decompose_sbox(sbox, all_products=False)
    assert d.n_deg2 <= 6
    assert d.n_deg3 <= 4
    for row in d.rows:
        assert row.degree <= 3


@pytest.mark.parametrize("sbox", range(8))
def test_all_products_decomposition_has_ten_monomials(sbox):
    d = decompose_sbox(sbox, all_products=True)
    assert d.monomials == ALL_MONOMIALS
    assert d.n_deg2 == 6
    assert d.n_deg3 == 4


@pytest.mark.parametrize("sbox", range(8))
def test_deg3_factorisation_valid(sbox):
    d = decompose_sbox(sbox, all_products=True)
    for m in ALL_DEG3:
        d2, extra = d.deg3_factorisation(m)
        assert bin(d2).count("1") == 2
        assert d2 in d.monomials
        assert (d2 | (8 >> extra)) == m
        assert not (d2 & (8 >> extra))


def test_select_products_one_hot():
    rng = np.random.default_rng(0)
    x0 = rng.integers(0, 2, 1000).astype(bool)
    x5 = rng.integers(0, 2, 1000).astype(bool)
    sp = select_products(x0, x5)
    total = np.zeros(1000, dtype=int)
    for s in sp:
        total += s.astype(int)
    assert np.all(total == 1)  # exactly one row selected


def test_select_products_row_mapping():
    x0 = np.array([0, 0, 1, 1], bool)
    x5 = np.array([0, 1, 0, 1], bool)
    sp = select_products(x0, x5)
    for r in range(4):
        expect = (2 * x0.astype(int) + x5.astype(int)) == r
        assert np.array_equal(sp[r], expect)


def test_full_sbox_via_decomposition_matches_lookup():
    """Mini S-boxes + MUX (Eq. 3 + Eq. 4) == the DES S-box table."""
    rng = np.random.default_rng(1)
    for sbox in range(8):
        d = decompose_sbox(sbox)
        vals = rng.integers(0, 64, 500, dtype=np.uint64)
        bits = int_to_bitarray(vals, 6)
        x0, mid, x5 = bits[0], bits[1:5], bits[5]
        rows_out = [evaluate_row_anf(d.rows[r], mid) for r in range(4)]
        sel = select_products(x0, x5)
        out = np.zeros((4, 500), dtype=bool)
        for b in range(4):
            for r in range(4):
                out[b] ^= sel[r] & rows_out[r][b]
        got = (
            out[0].astype(int) * 8 + out[1] * 4 + out[2] * 2 + out[3]
        )
        ref = np.array([sbox_lookup(sbox, int(v)) for v in vals])
        assert np.array_equal(got, ref)


def test_decompose_is_cached():
    assert decompose_sbox(0) is decompose_sbox(0)
