"""Unit tests for repro.obs: tracer, metrics algebra, exporters, logging.

Everything here is single-process and uses an injectable fake clock
where determinism matters; cross-process propagation and the traced
campaign contract live in tests/test_obs_integration.py.
"""

import json
import logging

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.export import (
    CHROME_SCHEMA,
    from_chrome,
    read_jsonl,
    sort_spans,
    to_chrome,
    write_chrome,
    write_jsonl,
)
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, metric_key
from repro.obs.summary import (
    PHASE_NAMES,
    aggregate_spans,
    coverage,
    phase_stats,
    render_summary,
    summary_rows,
)
from repro.obs.trace import (
    Tracer,
    adopt_trace_context,
    current_span_id,
    disable_tracing,
    enable_tracing,
    get_tracer,
    ingest_spans,
    trace,
    trace_context,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    disable_tracing()
    yield
    disable_tracing()


class FakeClock:
    """Monotonic fake: every call advances by ``step`` nanoseconds."""

    def __init__(self, start=1_000, step=10):
        self.now = start
        self.step = step

    def __call__(self):
        t = self.now
        self.now += self.step
        return t


# ----------------------------------------------------------------------
# span tracer
# ----------------------------------------------------------------------
def test_disabled_tracing_records_nothing():
    assert not tracing_enabled()
    assert get_tracer() is None
    with trace("never.recorded", x=1):
        pass
    assert current_span_id() is None


def test_span_nesting_parent_links_and_durations():
    tracer = enable_tracing(clock=FakeClock())
    with trace("outer", kind="test"):
        with trace("inner"):
            pass
    spans = tracer.drain()
    assert [s["name"] for s in spans] == ["inner", "outer"]
    inner, outer = spans
    assert outer["parent_id"] is None
    assert inner["parent_id"] == outer["span_id"]
    assert inner["trace_id"] == outer["trace_id"] == tracer.trace_id
    # clock calls: outer.start=1000, inner.start=1010, inner.end=1020,
    # outer.end=1030
    assert inner["t_start_ns"] == 1010 and inner["dur_ns"] == 10
    assert outer["t_start_ns"] == 1000 and outer["dur_ns"] == 30
    assert inner["attrs"] == {}
    assert outer["attrs"] == {"kind": "test"}


def test_trace_as_decorator():
    tracer = enable_tracing(clock=FakeClock())

    @trace("fn.decorated", tag="d")
    def work(a, b):
        return a + b

    assert work(2, 3) == 5
    assert work(1, 1) == 2
    spans = tracer.drain()
    assert [s["name"] for s in spans] == ["fn.decorated"] * 2
    assert all(s["attrs"] == {"tag": "d"} for s in spans)


def test_ring_buffer_drops_oldest():
    tracer = enable_tracing(capacity=4, clock=FakeClock())
    for i in range(10):
        with trace(f"span.{i}"):
            pass
    spans = tracer.drain()
    assert [s["name"] for s in spans] == [
        "span.6", "span.7", "span.8", "span.9"
    ]
    assert tracer.drain() == []


def test_mark_and_spans_since_watermark():
    tracer = enable_tracing(clock=FakeClock())
    with trace("before"):
        pass
    mark = tracer.mark()
    with trace("after"):
        pass
    newer = tracer.spans(since=mark)
    assert [s["name"] for s in newer] == ["after"]
    # spans() copies, the buffer keeps everything
    assert len(tracer.drain()) == 2


def test_ingest_resequences_foreign_spans():
    tracer = enable_tracing(clock=FakeClock())
    with trace("local"):
        pass
    mark = tracer.mark()
    foreign = [
        {
            "name": "worker.batch",
            "t_start_ns": 5,
            "dur_ns": 7,
            "pid": 99999,
            "tid": 1,
            "span_id": "1869f.1",
            "parent_id": None,
            "trace_id": tracer.trace_id,
            "attrs": {},
            "seq": 123456,
        }
    ]
    ingest_spans(foreign)
    newer = tracer.spans(since=mark)
    assert [s["name"] for s in newer] == ["worker.batch"]
    assert newer[0]["pid"] == 99999  # identity preserved, seq local


def test_manual_enter_exit_and_exception_exit():
    tracer = enable_tracing(clock=FakeClock())
    span = trace("manual")
    span.__enter__()
    span.__exit__(None, None, None)
    with pytest.raises(RuntimeError):
        with trace("raises"):
            raise RuntimeError("boom")
    spans = tracer.drain()
    assert [s["name"] for s in spans] == ["manual", "raises"]
    assert all(s["dur_ns"] >= 0 for s in spans)


def test_adopt_trace_context_roots_under_parent():
    enable_tracing(clock=FakeClock())
    outer = trace("campaign.run")
    outer.__enter__()
    ctx = trace_context()
    assert ctx is not None and ctx["parent_id"] == current_span_id()

    # Simulate the worker side: fresh tracer sharing the trace id,
    # top-level spans rooted under the shipped parent span.
    adopt_trace_context(ctx)
    worker = get_tracer()
    with trace("campaign.batch"):
        pass
    spans = worker.drain()
    assert spans[0]["parent_id"] == ctx["parent_id"]
    assert spans[0]["trace_id"] == ctx["trace_id"]

    adopt_trace_context(None)
    assert not tracing_enabled()


def test_tracer_capacity_validation():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
def test_metric_key_sorts_labels():
    assert metric_key("x", {}) == "x"
    assert metric_key("x", {"b": 2, "a": 1}) == "x{a=1,b=2}"


def test_registry_counters_gauges_histograms():
    reg = MetricsRegistry()
    reg.inc("hits")
    reg.inc("hits", 4)
    reg.inc("bytes", 100, transport="pickle")
    reg.set_gauge("depth", 3)
    reg.max_gauge("depth", 9)
    reg.max_gauge("depth", 5)  # high-water mark keeps 9
    reg.observe("batch_s", 0.002)
    reg.observe("batch_s", 0.2)
    snap = reg.snapshot()
    assert snap.counter("hits") == 5
    assert snap.counter("bytes", transport="pickle") == 100
    assert snap.gauges["depth"] == 9
    h = snap.histograms["batch_s"]
    assert h["count"] == 2
    assert h["min"] == 0.002 and h["max"] == 0.2
    assert len(h["buckets"]) == 2  # 2ms and 200ms land in distinct buckets


def test_snapshot_diff_is_delta_only():
    reg = MetricsRegistry()
    reg.inc("a", 3)
    reg.observe("h", 1.0)
    older = reg.snapshot()
    reg.inc("a", 2)
    reg.inc("b", 7)
    reg.observe("h", 4.0)
    delta = reg.snapshot().diff(older)
    assert delta.counters == {"a": 2, "b": 7}
    assert delta.histograms["h"]["count"] == 1
    assert delta.histograms["h"]["sum"] == 4.0
    # unchanged metrics do not appear in the diff
    reg2 = MetricsRegistry()
    reg2.inc("x")
    s = reg2.snapshot()
    assert s.diff(s).counters == {}


def test_snapshot_merge_is_associative():
    def snap(counters, gauge, obs_values):
        reg = MetricsRegistry()
        for name, v in counters.items():
            reg.inc(name, v)
        reg.set_gauge("g", gauge)
        for v in obs_values:
            reg.observe("h", v)
        return reg.snapshot()

    a = snap({"n": 1, "m": 10}, 2, [1.0, 8.0])
    b = snap({"n": 5}, 7, [0.5])
    c = snap({"m": 3, "k": 1}, 4, [64.0, 2.0])

    left = a.merge(b).merge(c).as_dict()
    right = a.merge(b.merge(c)).as_dict()
    assert left == right
    assert left["counters"] == {"n": 6, "m": 13, "k": 1}
    assert left["gauges"]["g"] == 7  # gauges merge by max
    assert left["histograms"]["h"]["count"] == 5
    assert left["histograms"]["h"]["min"] == 0.5
    assert left["histograms"]["h"]["max"] == 64.0


def test_snapshot_dict_round_trip():
    reg = MetricsRegistry()
    reg.inc("a", 2, lane=3)
    reg.set_gauge("g", 1.5)
    reg.observe("h", 3.0)
    snap = reg.snapshot()
    again = MetricsSnapshot.from_dict(
        json.loads(json.dumps(snap.as_dict()))
    )
    assert again.as_dict() == snap.as_dict()


def test_merge_into_folds_worker_diff():
    parent = MetricsRegistry()
    parent.inc("n", 1)
    worker = MetricsRegistry()
    worker.inc("n", 4)
    worker.observe("h", 2.0)
    parent.merge_into(worker.snapshot())
    snap = parent.snapshot()
    assert snap.counter("n") == 5
    assert snap.histograms["h"]["count"] == 1


def test_reset_metrics_by_name_spares_others():
    reg = MetricsRegistry()
    reg.inc("keep.me")
    reg.inc("drop.me")
    reg.inc("drop.me", 2, lane=1)  # label variants go too
    reg.reset(["drop.me"])
    snap = reg.snapshot()
    assert snap.counter("keep.me") == 1
    assert all(not k.startswith("drop.me") for k in snap.counters)


def test_module_level_registry_helpers():
    obs_metrics.reset_metrics(["test.helper"])
    obs_metrics.inc("test.helper", 3)
    assert obs_metrics.counter_value("test.helper") == 3
    obs_metrics.reset_metrics(["test.helper"])
    assert obs_metrics.counter_value("test.helper") == 0


# ----------------------------------------------------------------------
# export round trips (deterministic under the fake clock)
# ----------------------------------------------------------------------
def _fixed_spans():
    tracer = enable_tracing(clock=FakeClock(start=5_000, step=25))
    with trace("campaign.run", label="rt"):
        with trace("campaign.batch", index=0):
            pass
        with trace("campaign.merge"):
            pass
    spans = tracer.drain()
    disable_tracing()
    return spans


def test_jsonl_round_trip(tmp_path):
    spans = _fixed_spans()
    path = tmp_path / "trace.jsonl"
    n = write_jsonl(spans, path)
    assert n == 3
    assert sort_spans(read_jsonl(path)) == sort_spans(spans)


def test_jsonl_write_is_deterministic(tmp_path):
    spans = _fixed_spans()
    p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_jsonl(spans, p1)
    write_jsonl(list(reversed(spans)), p2)  # input order irrelevant
    assert p1.read_bytes() == p2.read_bytes()


def test_chrome_round_trip_is_lossless():
    spans = _fixed_spans()
    payload = to_chrome(spans)
    assert payload["otherData"]["schema"] == CHROME_SCHEMA
    assert len(payload["traceEvents"]) == len(spans)
    assert all(e["ph"] == "X" for e in payload["traceEvents"])
    # ...including exact nanosecond timing, through the µs event fields
    assert sort_spans(from_chrome(payload)) == sort_spans(spans)


def test_chrome_file_is_valid_json(tmp_path):
    spans = _fixed_spans()
    path = tmp_path / "trace.json"
    write_chrome(spans, path)
    payload = json.loads(path.read_text())
    assert payload["otherData"]["schema"] == CHROME_SCHEMA
    assert sort_spans(from_chrome(payload)) == sort_spans(spans)


def test_jsonl_chrome_jsonl_round_trip_deterministic(tmp_path):
    spans = _fixed_spans()
    first = tmp_path / "first.jsonl"
    second = tmp_path / "second.jsonl"
    write_jsonl(spans, first)
    via_chrome = from_chrome(to_chrome(read_jsonl(first)))
    write_jsonl(via_chrome, second)
    assert first.read_bytes() == second.read_bytes()


# ----------------------------------------------------------------------
# summary / phases / coverage
# ----------------------------------------------------------------------
def test_aggregate_spans_self_time_excludes_children():
    spans = _fixed_spans()
    agg = aggregate_spans(spans)
    run = agg["campaign.run"]
    # run duration covers both children plus its own bookkeeping
    child_total = (
        agg["campaign.batch"]["total_ns"] + agg["campaign.merge"]["total_ns"]
    )
    assert run["self_ns"] == run["total_ns"] - child_total
    rows = summary_rows(spans)
    assert rows[0]["self_ns"] >= rows[-1]["self_ns"]
    table = render_summary(spans, top=2)
    assert "span" in table and "self ms" in table


def test_phase_stats_uses_display_labels():
    tracer = enable_tracing(clock=FakeClock())
    with trace("batch.simulate"):
        pass
    with trace("batch.simulate"):
        pass
    with trace("campaign.merge"):
        pass
    with trace("not.a.phase"):
        pass
    phases = phase_stats(tracer.drain())
    assert set(phases) == {"simulate", "merge"}
    assert phases["simulate"]["count"] == 2
    assert set(PHASE_NAMES.values()) >= set(phases)


def test_coverage_of_root_span():
    spans = _fixed_spans()
    cov = coverage(spans, root_name="campaign.run")
    assert 0.0 < cov <= 1.0
    assert coverage(spans, root_name="missing.root") == 0.0


# ----------------------------------------------------------------------
# logging
# ----------------------------------------------------------------------
def test_get_logger_hierarchy_and_null_handler():
    root = get_logger()
    child = get_logger("leakage.resilient")
    assert root.name == "repro"
    assert child.name == "repro.leakage.resilient"
    null_handlers = [
        h for h in root.handlers if isinstance(h, logging.NullHandler)
    ]
    get_logger("sim.power")  # repeated calls must not stack handlers
    assert len(
        [h for h in root.handlers if isinstance(h, logging.NullHandler)]
    ) == len(null_handlers) == 1


def test_logger_records_capturable(caplog):
    log = get_logger("test.obs")
    with caplog.at_level(logging.INFO, logger="repro"):
        log.info("campaign %s done", "x")
    assert any("campaign x done" in r.message for r in caplog.records)
