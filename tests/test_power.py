"""Unit tests for the power model and the coupling extension."""

import numpy as np
import pytest

from repro.sim.power import CouplingModel, NullRecorder, PowerRecorder, default_weights


def ch(old, new):
    return np.array(old, bool), np.array(new, bool)


def test_binning():
    rec = PowerRecorder(1, total_time_ps=1000, bin_ps=250)
    assert rec.n_bins == 4
    rec.record_batch(0, {0: ch([0], [1])})
    rec.record_batch(600, {0: ch([1], [0])})
    assert rec.power[0, 0] == 1
    assert rec.power[0, 2] == 1


def test_times_beyond_range_clamp_to_last_bin():
    rec = PowerRecorder(1, 1000, bin_ps=250)
    rec.record_batch(5000, {0: ch([0], [1])})
    assert rec.power[0, -1] == 1


def test_bad_bin_rejected():
    with pytest.raises(ValueError):
        PowerRecorder(1, 1000, bin_ps=0)


def test_no_toggle_no_power():
    rec = PowerRecorder(2, 1000)
    rec.record_batch(0, {0: ch([1, 0], [1, 0])})
    assert rec.power.sum() == 0


def test_weights_scale_energy():
    w = np.array([3.0, 1.0], dtype=np.float32)
    rec = PowerRecorder(1, 1000, weights=w)
    rec.record_batch(0, {0: ch([0], [1]), 1: ch([0], [1])})
    assert rec.power[0, 0] == pytest.approx(4.0)


def test_default_weights_from_fanout():
    w = default_weights({0: [1, 2, 3], 5: [7]}, 6)
    assert w[0] == 4.0  # 1 + 3 readers
    assert w[5] == 2.0
    assert w[1] == 1.0


def test_per_trace_independence():
    rec = PowerRecorder(3, 1000)
    rec.record_batch(0, {0: ch([0, 1, 0], [1, 1, 1])})
    assert list(rec.power[:, 0]) == [1.0, 0.0, 1.0]


def test_samples_alias():
    rec = PowerRecorder(1, 1000)
    assert rec.samples() is rec.power


def test_null_recorder_noop():
    NullRecorder().record_batch(0, {0: ch([0], [1])})  # no exception


# ----------------------------------------------------------------------
# coupling
# ----------------------------------------------------------------------
def test_coupling_same_direction_reduces_energy():
    cm = CouplingModel(pairs=[(0, 1)], coefficient=0.5)
    rec = PowerRecorder(1, 1000, coupling=cm)
    rec.record_batch(0, {0: ch([0], [1]), 1: ch([0], [1])})
    # 2 toggles - 0.5 * (+1 * +1)
    assert rec.power[0, 0] == pytest.approx(1.5)


def test_coupling_opposite_direction_adds_energy():
    cm = CouplingModel(pairs=[(0, 1)], coefficient=0.5)
    rec = PowerRecorder(1, 1000, coupling=cm)
    rec.record_batch(0, {0: ch([0], [1]), 1: ch([1], [0])})
    assert rec.power[0, 0] == pytest.approx(2.5)


def test_coupling_needs_both_transitions():
    cm = CouplingModel(pairs=[(0, 1)], coefficient=0.5)
    rec = PowerRecorder(1, 1000, coupling=cm)
    rec.record_batch(0, {0: ch([0], [1])})
    assert rec.power[0, 0] == pytest.approx(1.0)


def test_coupling_within_window():
    cm = CouplingModel(pairs=[(0, 1)], coefficient=1.0, window_ps=150)
    rec = PowerRecorder(1, 1000, bin_ps=1000, coupling=cm)
    rec.record_batch(100, {0: ch([0], [1])})
    rec.record_batch(200, {1: ch([0], [1])})  # 100 ps later: couples
    assert rec.power[0, 0] == pytest.approx(2.0 - 1.0)


def test_coupling_outside_window_ignored():
    cm = CouplingModel(pairs=[(0, 1)], coefficient=1.0, window_ps=150)
    rec = PowerRecorder(1, 1000, bin_ps=1000, coupling=cm)
    rec.record_batch(100, {0: ch([0], [1])})
    rec.record_batch(500, {1: ch([0], [1])})  # 400 ps later: no coupling
    assert rec.power[0, 0] == pytest.approx(2.0)


def test_coupling_uncoupled_wires_unaffected():
    cm = CouplingModel(pairs=[(0, 1)], coefficient=1.0)
    rec = PowerRecorder(1, 1000, coupling=cm)
    rec.record_batch(0, {2: ch([0], [1]), 3: ch([0], [1])})
    assert rec.power[0, 0] == pytest.approx(2.0)


def test_coupling_partner_map():
    cm = CouplingModel(pairs=[(0, 1), (0, 2)])
    pm = cm.partner_map()
    assert sorted(pm[0]) == [1, 2]
    assert pm[1] == [0]


def test_coupling_per_trace_sign_product():
    cm = CouplingModel(pairs=[(0, 1)], coefficient=1.0)
    rec = PowerRecorder(3, 1000, coupling=cm)
    rec.record_batch(
        0,
        {
            0: ch([0, 0, 0], [1, 1, 0]),
            1: ch([0, 1, 0], [1, 0, 1]),
        },
    )
    # trace0: same dir (+1,+1): 2 - 1 = 1
    # trace1: opposite (+1,-1): 2 + 1 = 3
    # trace2: only wire1 toggles: 1 (sign product 0)
    assert list(rec.power[:, 0]) == [1.0, 3.0, 1.0]
