"""Unit tests for the power model and the coupling extension."""

import numpy as np
import pytest

from repro.sim.power import CouplingModel, NullRecorder, PowerRecorder, default_weights


def ch(old, new):
    return np.array(old, bool), np.array(new, bool)


def test_binning():
    rec = PowerRecorder(1, total_time_ps=1000, bin_ps=250)
    assert rec.n_bins == 4
    rec.record_batch(0, {0: ch([0], [1])})
    rec.record_batch(600, {0: ch([1], [0])})
    assert rec.power[0, 0] == 1
    assert rec.power[0, 2] == 1


def test_times_beyond_range_clamp_to_last_bin():
    rec = PowerRecorder(1, 1000, bin_ps=250)
    rec.record_batch(5000, {0: ch([0], [1])})
    assert rec.power[0, -1] == 1


def test_bad_bin_rejected():
    with pytest.raises(ValueError):
        PowerRecorder(1, 1000, bin_ps=0)


def test_no_toggle_no_power():
    rec = PowerRecorder(2, 1000)
    rec.record_batch(0, {0: ch([1, 0], [1, 0])})
    assert rec.power.sum() == 0


def test_weights_scale_energy():
    w = np.array([3.0, 1.0], dtype=np.float32)
    rec = PowerRecorder(1, 1000, weights=w)
    rec.record_batch(0, {0: ch([0], [1]), 1: ch([0], [1])})
    assert rec.power[0, 0] == pytest.approx(4.0)


def test_default_weights_from_fanout():
    w = default_weights({0: [1, 2, 3], 5: [7]}, 6)
    assert w[0] == 4.0  # 1 + 3 readers
    assert w[5] == 2.0
    assert w[1] == 1.0


def test_per_trace_independence():
    rec = PowerRecorder(3, 1000)
    rec.record_batch(0, {0: ch([0, 1, 0], [1, 1, 1])})
    assert list(rec.power[:, 0]) == [1.0, 0.0, 1.0]


def test_samples_alias():
    rec = PowerRecorder(1, 1000)
    assert rec.samples() is rec.power


def test_null_recorder_noop():
    NullRecorder().record_batch(0, {0: ch([0], [1])})  # no exception


# ----------------------------------------------------------------------
# coupling
# ----------------------------------------------------------------------
def test_coupling_same_direction_reduces_energy():
    cm = CouplingModel(pairs=[(0, 1)], coefficient=0.5)
    rec = PowerRecorder(1, 1000, coupling=cm)
    rec.record_batch(0, {0: ch([0], [1]), 1: ch([0], [1])})
    # 2 toggles - 0.5 * (+1 * +1)
    assert rec.power[0, 0] == pytest.approx(1.5)


def test_coupling_opposite_direction_adds_energy():
    cm = CouplingModel(pairs=[(0, 1)], coefficient=0.5)
    rec = PowerRecorder(1, 1000, coupling=cm)
    rec.record_batch(0, {0: ch([0], [1]), 1: ch([1], [0])})
    assert rec.power[0, 0] == pytest.approx(2.5)


def test_coupling_needs_both_transitions():
    cm = CouplingModel(pairs=[(0, 1)], coefficient=0.5)
    rec = PowerRecorder(1, 1000, coupling=cm)
    rec.record_batch(0, {0: ch([0], [1])})
    assert rec.power[0, 0] == pytest.approx(1.0)


def test_coupling_within_window():
    cm = CouplingModel(pairs=[(0, 1)], coefficient=1.0, window_ps=150)
    rec = PowerRecorder(1, 1000, bin_ps=1000, coupling=cm)
    rec.record_batch(100, {0: ch([0], [1])})
    rec.record_batch(200, {1: ch([0], [1])})  # 100 ps later: couples
    assert rec.power[0, 0] == pytest.approx(2.0 - 1.0)


def test_coupling_outside_window_ignored():
    cm = CouplingModel(pairs=[(0, 1)], coefficient=1.0, window_ps=150)
    rec = PowerRecorder(1, 1000, bin_ps=1000, coupling=cm)
    rec.record_batch(100, {0: ch([0], [1])})
    rec.record_batch(500, {1: ch([0], [1])})  # 400 ps later: no coupling
    assert rec.power[0, 0] == pytest.approx(2.0)


def test_coupling_uncoupled_wires_unaffected():
    cm = CouplingModel(pairs=[(0, 1)], coefficient=1.0)
    rec = PowerRecorder(1, 1000, coupling=cm)
    rec.record_batch(0, {2: ch([0], [1]), 3: ch([0], [1])})
    assert rec.power[0, 0] == pytest.approx(2.0)


def test_coupling_partner_map():
    cm = CouplingModel(pairs=[(0, 1), (0, 2)])
    pm = cm.partner_map()
    assert sorted(pm[0]) == [1, 2]
    assert pm[1] == [0]


def test_coupling_per_trace_sign_product():
    cm = CouplingModel(pairs=[(0, 1)], coefficient=1.0)
    rec = PowerRecorder(3, 1000, coupling=cm)
    rec.record_batch(
        0,
        {
            0: ch([0, 0, 0], [1, 1, 0]),
            1: ch([0, 1, 0], [1, 0, 1]),
        },
    )
    # trace0: same dir (+1,+1): 2 - 1 = 1
    # trace1: opposite (+1,-1): 2 + 1 = 3
    # trace2: only wire1 toggles: 1 (sign product 0)
    assert list(rec.power[:, 0]) == [1.0, 3.0, 1.0]


# ----------------------------------------------------------------------
# clamp accounting (events past the recorder window)
# ----------------------------------------------------------------------
def test_clamp_warns_once_and_counts_events():
    from repro.sim.power import ClampedEventWarning

    rec = PowerRecorder(1, 1000, bin_ps=250)
    with pytest.warns(ClampedEventWarning, match="5000"):
        rec.record_batch(5000, {0: ch([0], [1])})
    # subsequent clamps on the same recorder stay silent but counted
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        rec.record_batch(6000, {0: ch([1], [0])})
        rec.add_energy(7000, np.ones(1, dtype=np.float32))
    assert rec.stats["clamped_events"] == 3
    assert rec.power[0, -1] == 3.0


def test_in_range_events_not_counted_as_clamped():
    rec = PowerRecorder(1, 1000, bin_ps=250)
    rec.record_batch(999, {0: ch([0], [1])})
    rec.add_energy(0, np.ones(1, dtype=np.float32))
    assert rec.stats["clamped_events"] == 0


# ----------------------------------------------------------------------
# packed accumulator protocol
# ----------------------------------------------------------------------
def test_accepts_packed_gates_on_coupling_and_weights():
    assert PowerRecorder(8, 1000).accepts_packed is True
    w_int = np.array([1.0, 5.0], dtype=np.float32)
    assert PowerRecorder(8, 1000, weights=w_int).accepts_packed is True
    coupled = PowerRecorder(
        8, 1000, coupling=CouplingModel(pairs=[(0, 1)])
    )
    assert coupled.accepts_packed is False
    assert coupled.packed_accumulator(8, 1) is None
    w_frac = np.array([1.5, 1.0], dtype=np.float32)
    assert PowerRecorder(8, 1000, weights=w_frac).accepts_packed is False
    w_neg = np.array([-1.0, 1.0], dtype=np.float32)
    assert PowerRecorder(8, 1000, weights=w_neg).accepts_packed is False
    w_huge = np.array([float(2**24)], dtype=np.float32)
    assert PowerRecorder(8, 1000, weights=w_huge).accepts_packed is False


def test_packed_accumulator_matches_record_wire():
    """Counter-plane accumulation == sequential float32 adds, bitwise,
    including ragged pad bits and weight > 1 wires."""
    from repro.sim.bitpack import n_lanes, pack_bool

    rng = np.random.default_rng(0)
    n = 100  # ragged final lane
    weights = np.array([1.0, 3.0, 7.0], dtype=np.float32)
    boolean = PowerRecorder(n, 2000, bin_ps=250, weights=weights)
    packed = PowerRecorder(n, 2000, bin_ps=250, weights=weights)
    acc = packed.packed_accumulator(n, n_lanes(n))
    assert acc is not None
    assert packed.packed_accumulator(n, n_lanes(n)) is acc  # reused
    for t in (0, 130, 600, 1999, 2500):  # 2500 clamps
        for wire in (0, 1, 2):
            toggled = rng.integers(0, 2, n).astype(bool)
            if not toggled.any():
                continue
            new = rng.integers(0, 2, n).astype(bool)
            boolean.record_wire(t, wire, toggled, new)
            acc.add(t, wire, pack_bool(toggled))
    assert np.array_equal(packed.power, boolean.power)
    assert packed.stats["clamped_events"] == boolean.stats["clamped_events"]
    assert packed.stats["max_counter_planes"] > 0


def test_packed_accumulator_rejects_trace_mismatch():
    rec = PowerRecorder(8, 1000)
    with pytest.raises(ValueError):
        rec.packed_accumulator(16, 1)


def test_power_read_flushes_pending_planes():
    from repro.sim.bitpack import pack_bool

    rec = PowerRecorder(4, 1000, bin_ps=250)
    acc = rec.packed_accumulator(4, 1)
    acc.add(0, 0, pack_bool(np.array([1, 0, 1, 0], bool)))
    assert rec._power[0, 0] == 0.0  # nothing flushed yet
    assert rec.power[0, 0] == 1.0  # property flushes
    assert rec.samples()[2, 0] == 1.0
    assert rec.power[0, 0] == 1.0  # flush is idempotent


def test_packed_overflow_warns_loudly_not_silently_drifts():
    """Two weight-2^23 toggles push a bin's count to 2^24: the flush
    must warn (PackedAccumulatorOverflowWarning) and deposit the
    correctly-rounded value instead of drifting quietly."""
    from repro.sim.bitpack import pack_bool
    from repro.sim.power import PackedAccumulatorOverflowWarning

    w = np.array([float(2**23)], dtype=np.float32)
    rec = PowerRecorder(2, 1000, bin_ps=1000, weights=w)
    assert rec.accepts_packed  # 2^23 < 2^24: still integer-exact
    acc = rec.packed_accumulator(2, 1)
    both = pack_bool(np.array([1, 1], bool))
    acc.add(0, 0, both)
    acc.add(0, 0, both)  # count per trace: 2 * 2^23 = 2^24
    with pytest.warns(PackedAccumulatorOverflowWarning):
        power = rec.power
    assert power[0, 0] == float(2**24)  # exactly representable here
    assert rec.stats["overflow_bins"] == 1


def test_packed_accumulator_counters_telemetry():
    from repro.sim.bitpack import pack_bool
    from repro.sim.power import (
        packed_accumulator_counters,
        reset_packed_accumulator_counters,
    )

    reset_packed_accumulator_counters()
    rec = PowerRecorder(4, 1000, bin_ps=250)
    acc = rec.packed_accumulator(4, 1)
    acc.add(0, 0, pack_bool(np.ones(4, bool)))
    _ = rec.power
    counters = packed_accumulator_counters()
    assert counters["accumulators"] == 1
    assert counters["flushes"] == 1
    assert counters["max_planes"] >= 1
    assert counters["overflow_bins"] == 0
