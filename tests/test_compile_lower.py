"""Front half of the masking compiler: specs, lowering, golden model."""

import numpy as np
import pytest

from repro.compile import (
    CompileError,
    FunctionSpec,
    PlanModel,
    aes_sbox_spec,
    des_sbox_spec,
    lower,
    plan_refresh,
    present_sbox_spec,
)
from repro.compile.refresh import refresh_positions, static_required
from repro.compile.spec import anf_to_table, mobius_transform
from repro.des.reference import sbox_lookup
from repro.des.sbox_anf import ALL_MONOMIALS


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
def test_mobius_transform_is_an_involution():
    rng = np.random.default_rng(0)
    for n in (1, 2, 3, 4, 6):
        table = [int(v) for v in rng.integers(0, 2, 1 << n)]
        anf = mobius_transform(list(table), n)
        assert mobius_transform(list(anf), n) == tuple(table)
        monomials = [mask for mask, c in enumerate(anf) if c and mask]
        assert anf_to_table(monomials, n, constant=anf[0]) == tuple(table)


def test_truth_table_and_anf_agree():
    # f(a, b) = a AND b: single monomial over both variables
    spec_tt = FunctionSpec.from_truth_table([0, 0, 0, 1], name="and2")
    spec_anf = FunctionSpec.from_anf([[0b11]], n_inputs=2, name="and2")
    assert spec_tt.table == spec_anf.table
    assert spec_tt.degree() == 2


def test_from_circuit_roundtrip():
    from repro.netlist.circuit import Circuit

    c = Circuit("xor_and")
    a, b = c.add_inputs("a", "b")
    c.mark_output("o", c.xor2(c.and2(a, b), b))
    spec = FunctionSpec.from_circuit(c)
    # o = ab ^ b; index bit conventions: a is the high index bit
    assert spec.table == tuple((v & 1) ^ ((v >> 1) & (v & 1)) for v in range(4))


def test_des_sbox_spec_matches_reference():
    spec = des_sbox_spec(3)
    for v in range(64):
        assert spec.table[v] == sbox_lookup(3, v)
    assert spec.preferred_select_vars == (0, 5)


def test_spec_validation_errors():
    # spec-layer validation raises plain ValueError (CompileError is the
    # lowering pass's vocabulary)
    with pytest.raises(ValueError):
        FunctionSpec.from_truth_table([0, 1, 2])  # not a power of two
    with pytest.raises(ValueError):
        # entry out of range for the declared output width
        FunctionSpec.from_truth_table([0, 1, 4, 0], n_outputs=2)


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------
def test_des_lowering_matches_hand_built_shape():
    plan = lower(des_sbox_spec(0))
    assert plan.select_vars == (0, 5)
    assert plan.inner_vars == (1, 2, 3, 4)
    # all_products over 4 inner vars = the hand-built monomial ladder
    assert plan.monomials == ALL_MONOMIALS
    assert plan.n_rows == 4
    # 10 products + 4 select minterms + 16 stage-2 gadgets
    assert plan.n_secand2() == 30


def test_row_cofactors_recombine_to_table():
    spec = des_sbox_spec(1)
    plan = lower(spec)
    for v in range(64):
        row = 2 * ((v >> 5) & 1) + (v & 1)  # classic DES row convention
        inner = (v >> 1) & 0xF
        rp = plan.rows[row]
        out = 0
        for b in range(4):
            bit = rp.constants[b]
            for p in rp.linear[b]:
                bit ^= (inner >> (3 - p)) & 1
            for mask in rp.products[b]:
                term = 1
                for p in plan.mask_positions(mask):
                    term &= (inner >> (3 - p)) & 1
                bit ^= term
            out = (out << 1) | bit
        assert out == spec.table[v]


def test_chain_prefix_closure():
    for name, spec in [("present", present_sbox_spec()), ("aes", aes_sbox_spec())]:
        plan = lower(spec)
        mono = set(plan.monomials)
        for mask in plan.monomials:
            if plan.chain_length(mask) >= 2:
                prefix, _ = plan.factor(mask)
                assert prefix in mono, f"{name}: {mask:#x} missing prefix"


def test_constant_output_rejected():
    with pytest.raises(CompileError, match="constant"):
        lower(FunctionSpec.from_truth_table([0, 0, 0, 0], name="zero"))
    with pytest.raises(CompileError, match="constant"):
        lower(FunctionSpec.from_truth_table([1, 1, 1, 1], name="one"))


def test_select_var_errors():
    spec = des_sbox_spec(0)
    with pytest.raises(CompileError):
        lower(spec, select_vars=(0, 0))
    with pytest.raises(CompileError):
        lower(spec, select_vars=(9,))
    with pytest.raises(CompileError):
        lower(spec, select_vars=(0,))  # leaves 5 inner vars > 4


# ----------------------------------------------------------------------
# golden model: every paper target recombines
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec",
    [des_sbox_spec(i) for i in range(8)]
    + [present_sbox_spec(), aes_sbox_spec()],
    ids=[f"des{i}" for i in range(8)] + ["present", "aes"],
)
def test_model_functional_all_paper_targets(spec):
    plan = lower(spec)
    assert PlanModel(plan).check_functional(seed=3)


def test_model_functional_random_tables():
    rng = np.random.default_rng(11)
    for trial in range(4):
        n = int(rng.integers(2, 7))
        table = [int(v) for v in rng.integers(0, 4, 1 << n)]
        if len({*table}) == 1:
            table[0] ^= 1
        # avoid constant output bits (rejected by design)
        try:
            plan = lower(FunctionSpec.from_truth_table(table, name=f"rnd{trial}"))
        except CompileError:
            continue
        assert PlanModel(plan).check_functional(seed=trial)


# ----------------------------------------------------------------------
# refresh pass
# ----------------------------------------------------------------------
def test_refresh_positions_match_hand_built_layout():
    plan = lower(des_sbox_spec(0))
    labels = [p.label for p in refresh_positions(plan)]
    assert len(labels) == 14  # r0..r9 products, r10..r13 selects
    assert labels[10:] == ["sel_0", "sel_1", "sel_2", "sel_3"]
    assert all(lbl.startswith("prod_") for lbl in labels[:10])


def test_static_rule_keeps_all_des_positions():
    # every DES product feeds two or more planes -> all kept
    plan = lower(des_sbox_spec(0))
    assert all(static_required(plan))


def test_static_rule_drops_maskable_product():
    # f = ab ^ c: the product shares its plane with a disjoint linear
    # term whose random share masks the sum -> refresh not required.
    spec = FunctionSpec.from_anf([[0b110, 0b001]], n_inputs=3, name="ab_xor_c")
    plan = lower(spec)
    assert static_required(plan) == (False,)


def test_selective_refresh_uses_strictly_fewer_bits():
    plan = lower(des_sbox_spec(0))
    choice = plan_refresh(plan, mode="selective", n_per_input=400, seed=0)
    assert choice.bits_used < choice.bits_full == 14
    full = plan_refresh(plan, mode="full")
    assert full.bits_used == 14


def test_refresh_mode_validation():
    plan = lower(present_sbox_spec())
    with pytest.raises(CompileError):
        plan_refresh(plan, mode="sometimes")
