"""Tests for the seeded fault-injection subsystem (repro.faults)."""

import numpy as np
import pytest

from repro.faults import (
    PDBankSource,
    build_pd_bank,
    clock_jitter_periods,
    delay_unit_vector,
    delay_variation,
    glitch_events,
    margin_erosion_sweep,
    shift_gate_delay,
    stuck_at,
    transient_glitch,
)
from repro.netlist.circuit import Circuit
from repro.netlist.safety import check_secand2_ordering, min_ordering_margin
from repro.netlist.timing import arrival_times
from repro.sim.clocking import ClockedHarness, TimingViolation
from repro.sim.compiled import schedule_cache_info
from repro.sim.power import PowerRecorder
from repro.sim.vectorsim import VectorSimulator

INPUTS = ("x0", "x1", "y0", "y1")


def share_events(c, value=True):
    return [(0, c.wire(name), value) for name in INPUTS]


# ----------------------------------------------------------------------
# delay variation
# ----------------------------------------------------------------------
def test_delay_variation_is_deterministic():
    bank = build_pd_bank(n_instances=2)
    a = delay_variation(bank, 100.0, seed=5)
    b = delay_variation(bank, 100.0, seed=5)
    other = delay_variation(bank, 100.0, seed=6)
    assert [g.delay_ps for g in a.gates] == [g.delay_ps for g in b.gates]
    assert [g.delay_ps for g in a.gates] != [g.delay_ps for g in other.gates]


def test_delay_variation_leaves_original_untouched():
    bank = build_pd_bank(n_instances=2)
    before = [g.delay_ps for g in bank.gates]
    perturbed = delay_variation(bank, 400.0, seed=1)
    assert [g.delay_ps for g in bank.gates] == before
    assert [g.delay_ps for g in perturbed.gates] != before
    # the copy shares no gate list with the original
    assert perturbed.gates is not bank.gates


def test_delay_variation_common_random_numbers():
    """Same seed at every sigma -> perturbation scales linearly."""
    bank = build_pd_bank(n_instances=2)
    base = np.array([g.delay_ps for g in bank.gates])
    d100 = np.array(
        [g.delay_ps for g in delay_variation(bank, 100.0, seed=3).gates]
    )
    d200 = np.array(
        [g.delay_ps for g in delay_variation(bank, 200.0, seed=3).gates]
    )
    unclamped = (d100 > 1.0) & (d200 > 1.0)
    assert unclamped.any()
    assert np.allclose((d200 - base)[unclamped], 2 * (d100 - base)[unclamped])


def test_delay_variation_uniform_is_bounded_and_floored():
    bank = build_pd_bank(n_instances=2)
    base = np.array([g.delay_ps for g in bank.gates])
    pert = np.array(
        [
            g.delay_ps
            for g in delay_variation(
                bank, 50.0, seed=2, distribution="uniform"
            ).gates
        ]
    )
    assert np.all(np.abs(pert - base) <= 50.0 + 1e-9)
    # a huge sigma never drives a delay below the floor
    huge = delay_variation(bank, 1e6, seed=2, min_delay_ps=7.0)
    assert all(g.delay_ps >= 7.0 for g in huge.gates)


def test_delay_variation_cell_filter_and_ff_exclusion():
    c = Circuit()
    a, b = c.add_inputs("a", "b")
    z = c.and2(a, b)
    d = c.delay_line(z, 2, 2, name="dl")
    c.dff(d, name="ff")
    pert = delay_variation(c, 500.0, seed=9, cells=("DELAY",))
    for old, new in zip(c.gates, pert.gates):
        if old.cell.name == "DELAY":
            assert new.delay_ps != old.delay_ps
        else:
            assert new.delay_ps == old.delay_ps
    # FFs are never perturbed even without a filter
    pert_all = delay_variation(c, 500.0, seed=9)
    assert [g.delay_ps for g in pert_all.gates if g.is_ff] == [
        g.delay_ps for g in c.gates if g.is_ff
    ]


def test_delay_variation_sigma_zero_is_identity_copy():
    bank = build_pd_bank(n_instances=1)
    copy = delay_variation(bank, 0.0, seed=4)
    assert copy is not bank
    assert [g.delay_ps for g in copy.gates] == [g.delay_ps for g in bank.gates]
    assert copy.structural_token() == bank.structural_token()


def test_delay_variation_rejects_negative_sigma_and_bad_distribution():
    bank = build_pd_bank(n_instances=1)
    with pytest.raises(ValueError):
        delay_variation(bank, -1.0)
    with pytest.raises(ValueError, match="distribution"):
        delay_unit_vector(bank, distribution="cauchy")


def test_shift_gate_delay_targets_one_gate():
    bank = build_pd_bank(n_instances=2)
    shifted = shift_gate_delay(bank, "i1_dl_y1", -300.0)
    diffs = [
        (old.name, new.delay_ps - old.delay_ps)
        for old, new in zip(bank.gates, shifted.gates)
        if new.delay_ps != old.delay_ps
    ]
    assert diffs == [("i1_dl_y1", -300.0)]
    with pytest.raises(ValueError, match="no gate named"):
        shift_gate_delay(bank, "nonexistent", 10.0)


def test_shift_gate_delay_rejects_ffs():
    c = Circuit()
    a = c.add_input("a")
    c.dff(a, name="ff")
    with pytest.raises(ValueError, match="sequential"):
        shift_gate_delay(c, "ff", 100.0)


# ----------------------------------------------------------------------
# compiled-schedule cache invalidation (the contract the fault models
# rely on: a perturbed copy must never replay the original's schedule)
# ----------------------------------------------------------------------
def test_delay_edits_invalidate_cached_schedules():
    bank = build_pd_bank(n_instances=1)
    sim = VectorSimulator(bank, 2)
    sim.evaluate_combinational({bank.wire(n): False for n in INPUTS})
    t_orig = sim.settle(share_events(bank))
    assert schedule_cache_info(bank)["patterns"] >= 1

    shifted = shift_gate_delay(bank, "i0_dl_y1", +333.0)
    # different delay fingerprint -> different structural token -> the
    # copy starts with an empty cache instead of inheriting a schedule
    # compiled for the old delays
    assert shifted.structural_token() != bank.structural_token()
    info = schedule_cache_info(shifted)
    assert info["patterns"] == 0 and info["compiled"] == 0

    sim2 = VectorSimulator(shifted, 2)
    sim2.evaluate_combinational({shifted.wire(n): False for n in INPUTS})
    t_shift = sim2.settle(share_events(shifted))
    # the y1 path is the slowest; its events land exactly 333 ps later
    assert t_shift == t_orig + 333.0
    # the original's cache is still valid for the original
    assert schedule_cache_info(bank)["patterns"] >= 1


# ----------------------------------------------------------------------
# stuck-at defects
# ----------------------------------------------------------------------
def test_stuck_at_forces_constant_output():
    for value in (False, True):
        c = Circuit()
        a, b = c.add_inputs("a", "b")
        z = c.and2(a, b)
        c.mark_output("z", z)
        faulty = stuck_at(c, z, value)
        av = np.array([0, 0, 1, 1], bool)
        bv = np.array([0, 1, 0, 1], bool)
        sim = VectorSimulator(faulty, 4)
        sim.evaluate_combinational({a: av, b: bv})
        assert np.all(sim.values[z] == value)
        # the original still computes the AND
        ref = VectorSimulator(c, 4)
        ref.evaluate_combinational({a: av, b: bv})
        assert np.array_equal(ref.values[z], av & bv)


def test_stuck_wire_contributes_no_switching_power():
    c = Circuit()
    a, b = c.add_inputs("a", "b")
    z = c.and2(a, b)
    c.mark_output("z", z)
    faulty = stuck_at(c, z, False)
    sim = VectorSimulator(faulty, 1)
    sim.evaluate_combinational({a: False, b: False})
    rec = PowerRecorder(1, 1000, bin_ps=250, weights=sim.weights)
    sim.settle([(0, a, True), (0, b, True)], recorder=rec)
    assert not sim.values[z][0]


def test_stuck_at_rejects_inputs_and_ff_outputs():
    c = Circuit()
    a = c.add_input("a")
    q = c.dff(a, name="ff")
    c.inv(q)
    with pytest.raises(ValueError, match="no driving gate"):
        stuck_at(c, a, True)
    with pytest.raises(ValueError, match="FF output"):
        stuck_at(c, q, True)
    with pytest.raises(ValueError, match="does not exist"):
        stuck_at(c, 10_000, True)


# ----------------------------------------------------------------------
# transient glitch pulses
# ----------------------------------------------------------------------
def glitch_fixture():
    c = Circuit()
    a, b = c.add_inputs("a", "b")
    z = c.xor2(c.and2(a, b), c.or2(a, b))
    c.mark_output("z", z)
    return c, a, b, z


def test_transient_glitch_transparent_without_pulse():
    c, a, b, z = glitch_fixture()
    glitched, pulse = transient_glitch(c, z)
    for av, bv in ((False, True), (True, True)):
        ref = VectorSimulator(c, 1)
        ref.settle([(0, a, av), (0, b, bv)])
        sim = VectorSimulator(glitched, 1)
        sim.settle([(0, a, av), (0, b, bv)])
        assert sim.output_values()["z"][0] == ref.output_values()["z"][0]


def test_transient_glitch_inverts_wire_during_window():
    c, a, b, z = glitch_fixture()
    glitched, pulse = transient_glitch(c, z, tag="set")
    # rise without fall: the output stays inverted
    sim = VectorSimulator(glitched, 1)
    sim.settle([(0, a, True), (0, b, True)] + [(500, pulse, True)])
    ref = VectorSimulator(c, 1)
    ref.settle([(0, a, True), (0, b, True)])
    assert sim.output_values()["z"][0] != ref.output_values()["z"][0]
    # a bounded pulse restores the original value after the window
    sim2 = VectorSimulator(glitched, 1)
    sim2.settle(
        [(0, a, True), (0, b, True)] + glitch_events(pulse, 500, 200)
    )
    assert sim2.output_values()["z"][0] == ref.output_values()["z"][0]


def test_glitch_events_mask_selects_traces():
    c, a, b, z = glitch_fixture()
    glitched, pulse = transient_glitch(c, z)
    mask = np.array([True, False])
    events = glitch_events(pulse, 500, 200, mask=mask)
    sim = VectorSimulator(glitched, 2)
    rec = PowerRecorder(2, 2000, bin_ps=250, weights=sim.weights)
    sim.settle([(0, a, True), (0, b, True)] + events, recorder=rec)
    # only the masked trace sees the pulse's extra toggles
    assert rec.power[0].sum() > rec.power[1].sum()
    with pytest.raises(ValueError, match="width_ps"):
        glitch_events(pulse, 0, 0)


# ----------------------------------------------------------------------
# clock jitter
# ----------------------------------------------------------------------
def test_clock_jitter_periods_deterministic_and_clamped():
    p1 = clock_jitter_periods(500, 20, 100.0, seed=3)
    p2 = clock_jitter_periods(500, 20, 100.0, seed=3)
    assert p1 == p2
    assert len(p1) == 20
    assert p1 != clock_jitter_periods(500, 20, 100.0, seed=4)
    assert clock_jitter_periods(500, 8, 0.0, seed=3) == [500] * 8
    assert all(
        p >= 50 for p in clock_jitter_periods(100, 50, 10_000.0, seed=0,
                                              min_period_ps=50)
    )


def test_harness_period_schedule_accumulates():
    c = Circuit()
    a = c.add_input("a")
    w = c.dff(a, name="ff0")
    c.mark_output("q", c.dff(w, name="ff1"))
    periods = [500, 700, 600]
    h = ClockedHarness(c, 1, period_ps=500, period_schedule=periods)
    assert h.total_time_ps(3) == 1800
    assert h.total_time_ps(4) == 2300  # falls back to period_ps
    assert h.cycle_period_ps(1) == 700
    h.run([[(0, a, True)], [], []])
    assert h.output_values()["q"][0]  # functionally unchanged by jitter
    h.reset()
    assert h.cycle == 0


def test_jittered_short_cycle_raises_timing_violation():
    c = Circuit()
    a = c.add_input("a")
    w = a
    for _ in range(10):
        w = c.buf(w)  # 240 ps settle path
    c.dff(w)
    periods = [1000, 100]
    h = ClockedHarness(
        c, 1, period_ps=1000, period_schedule=periods, check_timing=True
    )
    h.step([(0, a, True)])  # cycle 0: plenty of slack
    with pytest.raises(TimingViolation, match="cycle 1"):
        h.step([(0, a, False)])  # cycle 1: 100 ps < 240 ps settle


def test_period_schedule_rejects_nonpositive_entries():
    c = Circuit()
    a = c.add_input("a")
    c.dff(a)
    with pytest.raises(ValueError, match="positive"):
        ClockedHarness(c, 1, period_ps=500, period_schedule=[500, 0])


# ----------------------------------------------------------------------
# margin-erosion sweep
# ----------------------------------------------------------------------
def test_pd_bank_source_shapes_and_determinism():
    bank = build_pd_bank(n_instances=2)
    src = PDBankSource(bank)
    assert src.n_samples > 0
    mask = np.array([True, False, True, False])
    a = src.acquire(mask, np.random.default_rng(1))
    b = src.acquire(mask, np.random.default_rng(1))
    assert a.shape == (4, src.n_samples)
    assert np.array_equal(a, b)


def test_static_sweep_monotone_erosion():
    """Common random numbers make the smallest margin erode linearly."""
    res = margin_erosion_sweep(
        sigmas=(0, 100, 200, 300, 400, 500, 600),
        n_instances=8,
        fault_seed=1,
        n_traces=0,  # static margins only
    )
    assert res.nominal_margin_ps == 500.0
    assert res.clean_at_zero
    assert res.monotone_erosion
    assert res.onset_sigma_ps is not None
    v = res.first_violation
    assert v is not None and v.kind == "y1-not-last"
    out = res.render()
    assert "first violated constraint" in out
    assert v.gadget in out


@pytest.mark.slow
def test_margin_erosion_sweep_acceptance():
    """The PR acceptance criterion: sigma 0 is TVLA-clean, sigmas past
    the nominal margin leak, and the report names the collapsed
    constraint."""
    res = margin_erosion_sweep(
        sigmas=(0, 150, 300, 450, 600),
        n_instances=8,
        fault_seed=1,
        n_traces=4000,
        batch_size=2000,
        noise_sigma=1.0,
        seed=3,
    )
    assert res.clean_at_zero  # max|t| < 4.5 at sigma 0
    assert res.monotone_erosion
    for p in res.points:
        if p.sigma_ps >= res.nominal_margin_ps:
            assert not p.statically_safe
            assert p.leaks
    v = res.first_violation
    assert v is not None and v.kind == "y1-not-last"
    assert v.gadget in res.render()
