"""Campaign observability, transport and worker-topology tests.

Covers the pieces added after the v1 parallel-campaign regression
(0.92x "speedup" from 4 workers on 1 core, full accumulators through
the result pipe, per-worker schedule recompiles):

* :class:`repro.leakage.stats.CampaignStats` attached to every
  :class:`TvlaResult` and its derived readings;
* the shard transports (``pickle`` / ``shared_memory`` / ``auto``)
  staying bitwise-lossless;
* ``n_workers`` / ``batch_size`` resolution against the host
  (``auto``, clamping, :class:`OversubscriptionWarning`).
"""

import contextlib
import os

import numpy as np
import pytest

from repro.leakage.acquisition import (
    CampaignConfig,
    OversubscriptionWarning,
    detect_leakage_traces,
    resolve_n_workers,
    run_campaign,
    suggest_batch_size,
)
from repro.leakage.stats import BatchRecord, CampaignStats
from repro.leakage.transport import (
    SHM_THRESHOLD_BYTES,
    ShardPayload,
    pack_shard,
    resolve_transport,
    shared_memory_available,
    unpack_shard,
)
from repro.leakage.tvla import TTestAccumulator


class SyntheticSource:
    """Leaky toy source (picklable; mirrors test_acquisition)."""

    def __init__(self, leak=0.0, n_samples=8):
        self.n_samples = n_samples
        self.leak = leak

    def acquire(self, fixed_mask, rng):
        n = fixed_mask.shape[0]
        traces = rng.normal(10.0, 1.0, (n, self.n_samples)).astype(np.float32)
        traces[fixed_mask, 3] += self.leak
        return traces


def _maybe_oversub(n_workers):
    """Warning context for pool runs on a host with too few CPUs."""
    if n_workers > (os.cpu_count() or 1):
        return pytest.warns(OversubscriptionWarning)
    return contextlib.nullcontext()


# ----------------------------------------------------------------------
# CampaignStats on results
# ----------------------------------------------------------------------
def test_serial_campaign_attaches_stats():
    cfg = CampaignConfig(
        n_traces=3500, batch_size=1000, noise_sigma=0.0, seed=0, label="s"
    )
    res = run_campaign(SyntheticSource(leak=0.5), cfg)
    s = res.stats
    assert isinstance(s, CampaignStats)
    assert s.label == "s"
    assert s.n_workers == 1
    assert s.start_method == "serial"
    assert s.transport == "none"
    assert s.n_batches == 4
    assert [b.n_traces for b in s.batches] == [1000, 1000, 1000, 500]
    assert s.wall_seconds > 0
    assert s.traces_per_second > 0
    assert s.pipe_bytes == 0


def test_parallel_campaign_stats_record_topology_and_traffic():
    cfg = CampaignConfig(
        n_traces=4000, batch_size=1000, noise_sigma=0.0, seed=1,
        transport="pickle",
    )
    with _maybe_oversub(2):
        res = run_campaign(SyntheticSource(leak=0.5), cfg, n_workers=2)
    s = res.stats
    assert s.requested_workers == 2
    assert s.n_workers == 2
    assert s.cpu_count == (os.cpu_count() or 1)
    assert s.oversubscribed == (2 > s.cpu_count)
    assert s.transport == "pickle"
    assert s.start_method in ("fork", "spawn", "forkserver")
    # 4 batches x (2, 6, 8) float64 moments + pickle overhead
    assert s.pipe_bytes >= 4 * 2 * 6 * 8 * 8
    assert s.n_batches == 4


def test_detect_leakage_attaches_stats_and_forces_pickle():
    cfg = CampaignConfig(
        n_traces=4000, batch_size=1000, noise_sigma=0.0, seed=3
    )
    with _maybe_oversub(2):
        detected, res = detect_leakage_traces(
            SyntheticSource(leak=1.0), cfg, n_workers=2
        )
    assert res.stats is not None
    # auto transport must resolve to pickle here: early cancellation
    # could strand shared-memory segments of in-flight batches
    assert res.stats.transport == "pickle"


def test_stats_as_dict_and_summary():
    s = CampaignStats(
        label="x", n_traces=100, batch_size=50, requested_workers=2,
        n_workers=2, cpu_count=4, start_method="fork", transport="pickle",
        wall_seconds=2.0,
        batches=[
            BatchRecord(0, 50, 0.5, pipe_bytes=100, schedule_replays=1),
            BatchRecord(1, 50, 1.0, pipe_bytes=100, schedule_compiles=1),
        ],
    )
    d = s.as_dict()
    assert d["n_batches"] == 2
    assert d["traces_per_second"] == 50.0
    assert d["pipe_bytes"] == 200
    assert d["schedule_compiles"] == 1
    assert d["schedule_replays"] == 1
    assert d["batch_seconds"] == {"min": 0.5, "median": 0.75, "max": 1.0}
    import json

    json.dumps(d)  # must be JSON-serialisable as-is
    text = s.summary()
    assert "traces/s" in text and "transport=pickle" in text


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------
def _filled_accumulator(n_samples=32, seed=5):
    r = np.random.default_rng(seed)
    acc = TTestAccumulator(n_samples)
    acc.update(
        r.normal(4.0, 1.0, (200, n_samples)).astype(np.float32),
        r.integers(0, 2, 200).astype(bool),
    )
    return acc


@pytest.mark.parametrize("transport", ["pickle", "shared_memory"])
def test_pack_unpack_roundtrip_is_bitwise(transport):
    if transport == "shared_memory" and not shared_memory_available():
        pytest.skip("shared_memory unavailable")
    acc = _filled_accumulator()
    payload = pack_shard(acc, transport)
    assert payload.pipe_bytes > 0
    if transport == "shared_memory":
        assert payload.moments is None and payload.shm_name
        # only the segment name crosses the pipe
        assert payload.pipe_bytes < 1024
    back = unpack_shard(payload)
    assert back._fixed.n == acc._fixed.n
    assert back._random.n == acc._random.n
    assert np.array_equal(back._fixed.sums, acc._fixed.sums)
    assert np.array_equal(back._random.sums, acc._random.sums)
    for order in (1, 2, 3):
        assert np.array_equal(back.t_stats(order), acc.t_stats(order))


def test_shared_memory_campaign_bitwise_equals_serial():
    if not shared_memory_available():
        pytest.skip("shared_memory unavailable")
    cfg = CampaignConfig(
        n_traces=2000, batch_size=500, noise_sigma=1.0, seed=13,
        transport="shared_memory",
    )
    serial = run_campaign(SyntheticSource(leak=0.4), cfg, n_workers=1)
    with _maybe_oversub(2):
        parallel = run_campaign(SyntheticSource(leak=0.4), cfg, n_workers=2)
    assert parallel.stats.transport == "shared_memory"
    # 4 batches: only segment names crossed the pipe
    assert parallel.stats.pipe_bytes < 4 * 1024
    assert np.array_equal(serial.t1, parallel.t1)
    assert np.array_equal(serial.t2, parallel.t2)
    assert np.array_equal(serial.t3, parallel.t3)


def test_resolve_transport_auto_switches_on_payload_size():
    small = SHM_THRESHOLD_BYTES // (2 * 6 * 8) // 2
    assert resolve_transport("auto", small) == "pickle"
    if shared_memory_available():
        big = SHM_THRESHOLD_BYTES // (2 * 6 * 8) + 1
        assert resolve_transport("auto", big) == "shared_memory"
    assert resolve_transport("pickle", 10**9) == "pickle"


def test_resolve_transport_rejects_unknown():
    with pytest.raises(ValueError, match="transport"):
        resolve_transport("carrier-pigeon", 100)


def test_config_rejects_unknown_transport_eagerly():
    with pytest.raises(ValueError, match="transport"):
        CampaignConfig(transport="typo")


# ----------------------------------------------------------------------
# worker / batch-size resolution
# ----------------------------------------------------------------------
def test_resolve_n_workers_auto_matches_host_and_plan():
    assert resolve_n_workers("auto", n_batches=100, cpu_count=4) == 4
    assert resolve_n_workers("auto", n_batches=2, cpu_count=4) == 2
    assert resolve_n_workers("auto", n_batches=100, cpu_count=1) == 1


def test_resolve_n_workers_clamps_to_batches():
    # idle workers are pointless: 8 requested, only 3 batches to run
    assert resolve_n_workers(8, n_batches=3, cpu_count=16) == 3


def test_resolve_n_workers_warns_on_oversubscription():
    with pytest.warns(OversubscriptionWarning, match="4 workers on a 2-CPU"):
        n = resolve_n_workers(4, n_batches=100, cpu_count=2)
    assert n == 4  # honoured, not clamped


def test_resolve_n_workers_serial_never_warns():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_n_workers(1, n_batches=10, cpu_count=1) == 1


def test_suggest_batch_size_heuristic():
    # >= 4 batches per worker once the campaign is big enough
    assert suggest_batch_size(100_000, 4) == 100_000 // 16
    # floor: small campaigns still get vectorisation-worthy batches
    assert suggest_batch_size(2000, 4) == 256
    # ceiling: huge campaigns cap the per-worker residency
    assert suggest_batch_size(10_000_000, 4) == 8192
    # tiny campaigns: one batch of everything
    assert suggest_batch_size(100, 1) == 100


def test_config_autotune_sets_workers_and_batch():
    cfg = CampaignConfig(n_traces=100_000, batch_size=1)
    tuned = cfg.autotune(cpu_count=4)
    assert tuned.n_workers == 4
    # the default pack_traces="auto" selects the packed engine at this
    # size, so the suggestion is rounded to the 64-trace lane width
    assert tuned.batch_size == suggest_batch_size(
        100_000, 4, pack_traces="auto"
    )
    assert tuned.batch_size % 64 == 0
    assert tuned.n_traces == cfg.n_traces  # everything else untouched
    tiny = CampaignConfig(n_traces=100).autotune(cpu_count=8)
    assert tiny.n_workers == 1


def test_config_n_workers_auto_runs_and_matches_serial():
    cfg = CampaignConfig(
        n_traces=2000, batch_size=500, noise_sigma=0.0, seed=7,
        n_workers="auto",
    )
    auto = run_campaign(SyntheticSource(leak=0.5), cfg)
    ref = run_campaign(SyntheticSource(leak=0.5), cfg, n_workers=1)
    assert np.array_equal(auto.t1, ref.t1)
    assert auto.stats.n_workers <= (os.cpu_count() or 1)
