"""Unit tests for the standard-cell library."""

import numpy as np
import pytest

from repro.netlist.cells import (
    CELL_LIBRARY,
    DELAY_UNIT_ASIC_INVERTERS,
    DELAY_UNIT_DEFAULT_LUTS,
    LUT_DELAY_PS,
    cell,
    delay_unit_area_ge,
    delay_unit_delay_ps,
    is_sequential,
)


def test_library_has_expected_cells():
    for name in ("INV", "BUF", "AND2", "OR2", "XOR2", "XNOR2", "NAND2",
                 "NOR2", "ANDN2", "ORN2", "MUX2", "DELAY", "DFF", "DFFE"):
        assert name in CELL_LIBRARY


def test_cell_lookup_unknown_raises():
    with pytest.raises(KeyError, match="unknown cell"):
        cell("AND3")


def test_cell_lookup_returns_same_object():
    assert cell("XOR2") is CELL_LIBRARY["XOR2"]


def test_sequential_flags():
    assert is_sequential("DFF")
    assert is_sequential("DFFE")
    assert not is_sequential("AND2")
    assert not is_sequential("DELAY")


def test_nand2_is_area_unit():
    assert cell("NAND2").area_ge == 1.0


def test_all_combinational_cells_have_evaluator():
    for ct in CELL_LIBRARY.values():
        if not ct.sequential:
            assert ct.evaluate is not None
        else:
            assert ct.evaluate is None


@pytest.mark.parametrize(
    "name,inputs,expected",
    [
        ("INV", (0,), 1),
        ("INV", (1,), 0),
        ("BUF", (1,), 1),
        ("AND2", (1, 1), 1),
        ("AND2", (1, 0), 0),
        ("OR2", (0, 0), 0),
        ("OR2", (1, 0), 1),
        ("XOR2", (1, 1), 0),
        ("XOR2", (1, 0), 1),
        ("XNOR2", (1, 1), 1),
        ("NAND2", (1, 1), 0),
        ("NOR2", (0, 0), 1),
        ("ANDN2", (1, 0), 1),   # a AND NOT b
        ("ANDN2", (1, 1), 0),
        ("ORN2", (0, 0), 1),    # a OR NOT b
        ("ORN2", (0, 1), 0),
        ("MUX2", (0, 1, 0), 1),  # sel=0 -> a
        ("MUX2", (1, 1, 0), 0),  # sel=1 -> b
        ("DELAY", (1,), 1),
    ],
)
def test_cell_truth_tables(name, inputs, expected):
    args = [np.array([bool(v)]) for v in inputs]
    out = cell(name).evaluate(*args)
    assert bool(out[0]) == bool(expected)


def test_cell_evaluators_are_vectorised():
    a = np.array([True, False, True, False])
    b = np.array([True, True, False, False])
    assert np.array_equal(cell("AND2").evaluate(a, b), a & b)
    assert np.array_equal(cell("XOR2").evaluate(a, b), a ^ b)


def test_delay_unit_delay_scales_linearly():
    assert delay_unit_delay_ps(1) == LUT_DELAY_PS
    assert delay_unit_delay_ps(10) == 10 * LUT_DELAY_PS
    assert delay_unit_delay_ps(3) == 3 * delay_unit_delay_ps(1)


def test_delay_unit_delay_rejects_nonpositive():
    with pytest.raises(ValueError):
        delay_unit_delay_ps(0)
    with pytest.raises(ValueError):
        delay_unit_area_ge(-1)


def test_delay_unit_area_matches_paper_estimate():
    # paper: a 10-LUT DelayUnit is estimated as 120 inverters on ASIC
    expected = DELAY_UNIT_ASIC_INVERTERS * cell("INV").area_ge
    assert delay_unit_area_ge(DELAY_UNIT_DEFAULT_LUTS) == pytest.approx(expected)


def test_delay_unit_area_scales_with_size():
    assert delay_unit_area_ge(5) == pytest.approx(delay_unit_area_ge(10) / 2)


def test_default_delay_unit_is_papers_optimum():
    assert DELAY_UNIT_DEFAULT_LUTS == 10
