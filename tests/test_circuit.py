"""Unit tests for the circuit graph and builder API."""

import numpy as np
import pytest

from repro.netlist.cells import LUT_DELAY_PS
from repro.netlist.circuit import Circuit, CircuitError


def small_circuit():
    c = Circuit("t")
    a, b = c.add_inputs("a", "b")
    z = c.xor2(c.and2(a, b, name="g_and"), c.or2(a, b, name="g_or"), name="g_xor")
    c.mark_output("z", z)
    return c, a, b, z


def test_wire_creation_and_lookup():
    c = Circuit()
    w = c.add_wire("foo")
    assert c.wire("foo") == w
    assert c.wire_name(w) == "foo"


def test_duplicate_wire_rejected():
    c = Circuit()
    c.add_wire("foo")
    with pytest.raises(CircuitError, match="already exists"):
        c.add_wire("foo")


def test_anonymous_wires_autonamed():
    c = Circuit()
    w1, w2 = c.add_wire(), c.add_wire()
    assert w1 != w2
    assert c.wire_name(w1) != c.wire_name(w2)


def test_gate_wrong_arity_rejected():
    c = Circuit()
    a = c.add_input("a")
    with pytest.raises(CircuitError, match="expects 2 inputs"):
        c.add_gate("AND2", [a])


def test_gate_unknown_input_wire_rejected():
    c = Circuit()
    with pytest.raises(CircuitError, match="does not exist"):
        c.add_gate("INV", [42])


def test_double_driver_rejected():
    c = Circuit()
    a = c.add_input("a")
    z = c.inv(a)
    with pytest.raises(CircuitError, match="already driven"):
        c.add_gate("INV", [a], output=z)


def test_driving_primary_input_rejected():
    c = Circuit()
    a, b = c.add_inputs("a", "b")
    with pytest.raises(CircuitError, match="primary input"):
        c.add_gate("INV", [b], output=a)


def test_combinational_loop_detected():
    c = Circuit()
    a = c.add_input("a")
    loop = c.add_wire("loop")
    other = c.add_gate("AND2", [a, loop])
    c.add_gate("INV", [other], output=loop)
    with pytest.raises(CircuitError, match="loop"):
        c.comb_order()


def test_ff_breaks_loop():
    c = Circuit()
    d = c.add_wire("d")
    q = c.dff(d, name="ff")
    c.add_gate("INV", [q], output=d)  # classic toggle FF structure
    c.check()  # no loop error: the FF breaks the cycle


def test_comb_order_respects_dependencies():
    c, a, b, z = small_circuit()
    order = c.comb_order()
    names = [c.gates[i].name for i in order]
    assert names.index("g_xor") > names.index("g_and")
    assert names.index("g_xor") > names.index("g_or")


def test_check_flags_undriven_output():
    c = Circuit()
    w = c.add_wire("floating")
    c.mark_output("z", w)
    with pytest.raises(CircuitError, match="undriven"):
        c.check()


def test_duplicate_output_name_rejected():
    c, a, b, z = small_circuit()
    with pytest.raises(CircuitError, match="already declared"):
        c.mark_output("z", z)


def test_scope_prefixes_names():
    c = Circuit()
    a = c.add_input("a")
    with c.scope("blk"):
        w = c.add_wire("inner")
        c.inv(a, name="g")
    assert c.wire_name(w) == "blk.inner"
    assert c.gates[-1].name == "blk.g"


def test_nested_scopes():
    c = Circuit()
    with c.scope("outer"):
        with c.scope("inner"):
            w = c.add_wire("x")
    assert c.wire_name(w) == "outer.inner.x"


def test_xor_tree_single_wire_passthrough():
    c = Circuit()
    a = c.add_input("a")
    assert c.xor_tree([a]) == a


def test_xor_tree_empty_rejected():
    c = Circuit()
    with pytest.raises(CircuitError):
        c.xor_tree([])


@pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8])
def test_xor_tree_uses_n_minus_1_gates(n):
    c = Circuit()
    wires = [c.add_input(f"i{k}") for k in range(n)]
    c.xor_tree(wires)
    assert len(c.gates) == n - 1


def test_delay_line_zero_units_is_identity():
    c = Circuit()
    a = c.add_input("a")
    assert c.delay_line(a, 0, 10) == a
    assert len(c.gates) == 0


def test_delay_line_delay_and_params():
    c = Circuit()
    a = c.add_input("a")
    c.delay_line(a, 3, 10, name="dl")
    g = c.gates[-1]
    assert g.delay_ps == 3 * 10 * LUT_DELAY_PS
    assert g.params["n_units"] == 3
    assert g.params["n_luts"] == 10


def test_delay_line_negative_units_rejected():
    c = Circuit()
    a = c.add_input("a")
    with pytest.raises(CircuitError):
        c.delay_line(a, -1, 10)


def test_fanout_map():
    c, a, b, z = small_circuit()
    fo = c.fanout_map()
    assert len(fo[a]) == 2  # a feeds AND and OR
    assert z not in fo  # output drives nothing


def test_cell_counts():
    c, *_ = small_circuit()
    assert c.cell_counts() == {"AND2": 1, "OR2": 1, "XOR2": 1}


def test_ff_partition():
    c = Circuit()
    a = c.add_input("a")
    q = c.dff(a)
    c.inv(q)
    assert len(c.ff_gates()) == 1
    assert len(c.comb_gates()) == 1


def test_dffe_reset_group_param():
    c = Circuit()
    a, en = c.add_inputs("a", "en")
    c.dffe(a, en, name="ff", reset_group="gadget")
    assert c.gates[-1].params["reset_group"] == "gadget"


def test_repr_mentions_counts():
    c, *_ = small_circuit()
    assert "3 gates" in repr(c)
    assert "2 inputs" in repr(c)


def test_routing_jitter_is_deterministic():
    def build(seed):
        c = Circuit()
        c.enable_routing_jitter(seed, gate_sigma_ps=50.0)
        a, b = c.add_inputs("a", "b")
        c.and2(a, b)
        c.xor2(a, b)
        return [g.delay_ps for g in c.gates]

    assert build(1) == build(1)
    assert build(1) != build(2)


def test_routing_jitter_not_applied_to_ffs():
    c = Circuit()
    c.enable_routing_jitter(0, gate_sigma_ps=1e6)
    a = c.add_input("a")
    c.dff(a)
    assert c.gates[-1].delay_ps == c.gates[-1].cell.delay_ps


def test_routing_jitter_delay_sigma_applies_to_delay_cells():
    c = Circuit()
    c.enable_routing_jitter(7, gate_sigma_ps=0.0, delay_sigma_ps=500.0)
    a = c.add_input("a")
    c.delay_line(a, 1, 4)
    nominal = 4 * LUT_DELAY_PS
    assert c.gates[-1].delay_ps >= nominal  # jitter only adds
