"""Unit tests for the baseline masked AND gadgets (Trichina, DOM, TI)."""

import itertools

import numpy as np
import pytest

from repro.core.baselines import (
    ShareTriple,
    build_dom_indep,
    build_trichina,
    dom_dep_and,
    dom_indep_and,
    gadget_costs,
    ti_and3,
    trichina_and,
)
from repro.core.gadgets import SharePair
from repro.netlist.circuit import Circuit
from repro.sim.clocking import ClockedHarness
from repro.sim.vectorsim import VectorSimulator


def share_combos(k):
    combos = np.array(list(itertools.product([0, 1], repeat=k)), dtype=bool)
    return [combos[:, i] for i in range(k)]


def test_trichina_netlist_exhaustive():
    c = build_trichina()
    x0, x1, y0, y1, r = share_combos(5)
    sim = VectorSimulator(c, 32)
    sim.evaluate_combinational({
        c.wire("x0"): x0, c.wire("x1"): x1,
        c.wire("y0"): y0, c.wire("y1"): y1, c.wire("r"): r,
    })
    out = sim.output_values()
    assert np.array_equal(out["z0"] ^ out["z1"], (x0 ^ x1) & (y0 ^ y1))
    assert np.array_equal(out["z1"], r)


def test_trichina_uses_one_random_bit_and_more_gates_than_secand2():
    """Sec. II: secAND2 needs fewer elementary operations than
    Trichina's gadget and zero randomness."""
    from repro.core.gadgets import build_secand2
    from repro.netlist.area import area_ge

    tri = build_trichina()
    sec = build_secand2()
    assert area_ge(tri) > area_ge(sec)


def test_dom_indep_functional_two_cycles():
    c = build_dom_indep()
    x0, x1, y0, y1, r = share_combos(5)
    h = ClockedHarness(c, 32, period_ps=1000)
    h.step([
        (0, c.wire("x0"), x0), (0, c.wire("x1"), x1),
        (0, c.wire("y0"), y0), (0, c.wire("y1"), y1), (0, c.wire("r"), r),
    ])
    h.step([])  # register stage
    out = h.output_values()
    assert np.array_equal(out["z0"] ^ out["z1"], (x0 ^ x1) & (y0 ^ y1))


def test_dom_indep_output_remasked():
    """DOM's cross terms carry the fresh mask: flipping r flips both
    output shares (the mask cancels in the recombination)."""
    c = build_dom_indep()
    x0, x1, y0, y1, _ = share_combos(5)

    def run(rv):
        h = ClockedHarness(c, 32, period_ps=1000)
        h.step([
            (0, c.wire("x0"), x0), (0, c.wire("x1"), x1),
            (0, c.wire("y0"), y0), (0, c.wire("y1"), y1),
            (0, c.wire("r"), np.full(32, rv)),
        ])
        h.step([])
        return h.output_values()

    o0 = run(False)
    o1 = run(True)
    assert np.array_equal(o0["z0"] ^ o0["z1"], o1["z0"] ^ o1["z1"])
    assert np.array_equal(o0["z0"] ^ o1["z0"], np.ones(32, bool))


def test_dom_dep_functional():
    c = Circuit("domdep")
    x0, x1, y0, y1 = c.add_inputs("x0", "x1", "y0", "y1")
    r0, r1, r2 = c.add_inputs("r0", "r1", "r2")
    z = dom_dep_and(c, SharePair(x0, x1), SharePair(y0, y1), (r0, r1, r2))
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    c.check()
    vals = share_combos(7)
    h = ClockedHarness(c, 128, period_ps=1000)
    names = ["x0", "x1", "y0", "y1", "r0", "r1", "r2"]
    h.step([(0, c.wire(n), v) for n, v in zip(names, vals)])
    h.step([])  # refresh registers
    h.step([])  # DOM core registers
    out = h.output_values()
    xv = vals[0] ^ vals[1]
    yv = vals[2] ^ vals[3]
    assert np.array_equal(out["z0"] ^ out["z1"], xv & yv)


def test_ti_and3_functional_and_noncomplete():
    c = Circuit("ti")
    xs = ShareTriple(*c.add_inputs("x0", "x1", "x2"))
    ys = ShareTriple(*c.add_inputs("y0", "y1", "y2"))
    z = ti_and3(c, xs, ys)
    for i, w in enumerate(z):
        c.mark_output(f"z{i}", w)
    c.check()
    vals = share_combos(6)
    h = ClockedHarness(c, 64, period_ps=1000)
    names = ["x0", "x1", "x2", "y0", "y1", "y2"]
    h.step([(0, c.wire(n), v) for n, v in zip(names, vals)])
    h.step([])  # TI register layer
    out = h.output_values()
    xv = vals[0] ^ vals[1] ^ vals[2]
    yv = vals[3] ^ vals[4] ^ vals[5]
    assert np.array_equal(out["z0"] ^ out["z1"] ^ out["z2"], xv & yv)


def test_ti_noncompleteness_structure():
    """Each TI component function must omit one share index."""
    c = Circuit("ti")
    xs = ShareTriple(*c.add_inputs("x0", "x1", "x2"))
    ys = ShareTriple(*c.add_inputs("y0", "y1", "y2"))
    ti_and3(c, xs, ys)
    # component i's AND gates must not read share i of either input
    for i in range(3):
        comp_ins = set()
        for g in c.gates:
            if g.name.startswith(f"ti_z{i}") and g.cell.name == "AND2":
                comp_ins.update(c.wire_name(w) for w in g.inputs)
        assert f"x{i}" not in comp_ins
        assert f"y{i}" not in comp_ins


def test_gadget_cost_table():
    costs = {g.name: g for g in gadget_costs()}
    assert costs["secAND2"].random_bits == 0
    assert costs["secAND2-FF"].random_bits == 0
    assert costs["secAND2-PD"].random_bits == 0
    assert costs["Trichina"].random_bits == 1
    assert costs["DOM-indep"].random_bits == 1
    assert costs["DOM-indep"].n_ff == 2
    assert costs["secAND2-FF"].n_ff == 1
    # the PD gadget's area is dominated by its DelayUnits
    assert costs["secAND2-PD"].area_ge > 3 * costs["secAND2"].area_ge
