"""Unit tests of the uint64 trace-lane packing primitives."""

import numpy as np
import pytest

from repro.sim import bitpack
from repro.sim.bitpack import (
    LANE_BITS,
    n_lanes,
    pack_bool,
    pack_scalar,
    popcount,
    resolve_pack_traces,
    unpack_bool,
    unpack_u8,
)


# ----------------------------------------------------------------------
# lane geometry
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "n,expected",
    [(1, 1), (63, 1), (64, 1), (65, 2), (128, 2), (129, 3), (1000, 16)],
)
def test_n_lanes(n, expected):
    assert n_lanes(n) == expected


@pytest.mark.parametrize("bad", [0, -1])
def test_n_lanes_rejects_nonpositive(bad):
    with pytest.raises(ValueError):
        n_lanes(bad)


# ----------------------------------------------------------------------
# pack / unpack roundtrip
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [1, 7, 63, 64, 65, 100, 128, 321])
def test_roundtrip_1d(n):
    rng = np.random.default_rng(n)
    values = rng.integers(0, 2, n).astype(bool)
    packed = pack_bool(values)
    assert packed.dtype == np.uint64
    assert packed.shape == (n_lanes(n),)
    assert np.array_equal(unpack_bool(packed, n), values)
    u8 = unpack_u8(packed, n)
    assert u8.dtype == np.uint8
    assert np.array_equal(u8, values.astype(np.uint8))


@pytest.mark.parametrize("n", [64, 100, 200])
def test_roundtrip_2d(n):
    rng = np.random.default_rng(n)
    values = rng.integers(0, 2, (5, n)).astype(bool)
    packed = pack_bool(values)
    assert packed.shape == (5, n_lanes(n))
    assert np.array_equal(unpack_bool(packed, n), values)


def test_trace_to_bit_mapping():
    """Trace i lives in lane i//64, bit i%64 (little bitorder)."""
    for i in [0, 1, 63, 64, 70, 127]:
        values = np.zeros(128, dtype=bool)
        values[i] = True
        packed = pack_bool(values)
        expect = np.zeros(2, dtype=np.uint64)
        expect[i // 64] = np.uint64(1) << np.uint64(i % 64)
        assert np.array_equal(packed, expect), i


def test_ragged_pad_copies_last_trace():
    """Pad bits must shadow the last real trace, never be zero.

    A zero pad would raise phantom toggles through inverting gates in
    traces that do not exist (see the module docstring); copying the
    last trace keeps pad bits pointwise identical to a real trace
    forever, so liveness guards and event accounting match the boolean
    engine exactly.
    """
    values = np.array([True] * 5, dtype=bool)  # n=5, last trace True
    packed = pack_bool(values)
    # bits 5..63 replicate trace 4 (True): the whole lane is ones
    assert packed[0] == np.uint64(0xFFFFFFFFFFFFFFFF)
    values[-1] = False
    packed = pack_bool(values)
    # pad now replicates False: only bits 0..3 set
    assert packed[0] == np.uint64(0b01111)


def test_pack_bool_bitwise_ops_match_boolean():
    """& | ^ ~ on lanes == the same ops on the unpacked booleans."""
    rng = np.random.default_rng(0)
    n = 100  # ragged on purpose
    a = rng.integers(0, 2, n).astype(bool)
    b = rng.integers(0, 2, n).astype(bool)
    pa, pb = pack_bool(a), pack_bool(b)
    assert np.array_equal(unpack_bool(pa & pb, n), a & b)
    assert np.array_equal(unpack_bool(pa | pb, n), a | b)
    assert np.array_equal(unpack_bool(pa ^ pb, n), a ^ b)
    assert np.array_equal(unpack_bool(~pa, n), ~a)


def test_pack_scalar():
    ones = pack_scalar(True, 3)
    zeros = pack_scalar(False, 3)
    assert ones.shape == zeros.shape == (3,)
    assert (ones == np.uint64(0xFFFFFFFFFFFFFFFF)).all()
    assert (zeros == 0).all()
    # the packed image of a broadcast scalar, pad included
    assert np.array_equal(pack_scalar(True, 2), pack_bool(np.ones(128, bool)))
    assert np.array_equal(unpack_bool(pack_scalar(True, 2), 90), np.ones(90, bool))


# ----------------------------------------------------------------------
# resolve_pack_traces
# ----------------------------------------------------------------------
def test_resolve_pack_traces():
    assert resolve_pack_traces(True, 1) is True
    assert resolve_pack_traces(False, 10_000) is False
    assert resolve_pack_traces("auto", 63) is False
    assert resolve_pack_traces("auto", 64) is True
    assert resolve_pack_traces("auto", 10_000) is True
    assert resolve_pack_traces(np.True_, 1) is True


@pytest.mark.parametrize("bad", ["yes", 1, None, "AUTO"])
def test_resolve_pack_traces_rejects_garbage(bad):
    with pytest.raises(ValueError):
        resolve_pack_traces(bad, 64)


# ----------------------------------------------------------------------
# popcount (both backends)
# ----------------------------------------------------------------------
def _reference_popcount(lanes):
    return np.array(
        [bin(int(x)).count("1") for x in np.ravel(lanes)]
    ).reshape(np.shape(lanes))


@pytest.mark.parametrize("force_lut", [False, True])
def test_popcount_backends_agree(monkeypatch, force_lut):
    if force_lut:
        monkeypatch.setattr(bitpack, "HAVE_BITWISE_COUNT", False)
    rng = np.random.default_rng(1)
    lanes = rng.integers(0, 2**64, (4, 7), dtype=np.uint64)
    lanes[0, 0] = 0
    lanes[0, 1] = np.uint64(0xFFFFFFFFFFFFFFFF)
    counts = popcount(lanes)
    assert counts.shape == lanes.shape
    assert np.array_equal(counts, _reference_popcount(lanes))
    assert counts[0, 0] == 0
    assert counts[0, 1] == 64


def test_popcount_lut_matches_bitwise_count(monkeypatch):
    """The numpy<2 LUT path must be value-identical to bitwise_count."""
    if not bitpack.HAVE_BITWISE_COUNT:
        pytest.skip("numpy<2: native backend unavailable")
    rng = np.random.default_rng(2)
    lanes = rng.integers(0, 2**64, 1000, dtype=np.uint64)
    native = popcount(lanes)
    monkeypatch.setattr(bitpack, "HAVE_BITWISE_COUNT", False)
    assert np.array_equal(popcount(lanes), native)


def test_popcount_of_packed_traces():
    """popcount over pack_bool counts set traces (plus any pad)."""
    rng = np.random.default_rng(3)
    values = rng.integers(0, 2, 256).astype(bool)  # lane-aligned: no pad
    assert popcount(pack_bool(values)).sum() == values.sum()


# ----------------------------------------------------------------------
# counter planes (packed-domain power accumulation kernels)
# ----------------------------------------------------------------------
def test_lanes_to_int_preserves_bit_positions():
    """Trace i's bit keeps position i in the big-int representation."""
    for i in [0, 1, 63, 64, 70, 127]:
        values = np.zeros(128, dtype=bool)
        values[i] = True
        assert bitpack.lanes_to_int(pack_bool(values)) == 1 << i


def test_counter_add_matches_integer_sums():
    """Ripple-carry adds over bit-planes == per-trace integer sums."""
    rng = np.random.default_rng(10)
    n = 100  # ragged: 2 lanes, 28 pad bits
    lanes = n_lanes(n)
    planes = []
    expected = np.zeros(n, dtype=np.int64)
    for _ in range(50):
        row = rng.integers(0, 2, n).astype(bool)
        bitpack.counter_add(planes, bitpack.lanes_to_int(pack_bool(row)))
        expected += row
    got = bitpack.counter_unpack(planes, lanes, n)
    assert np.array_equal(got, expected)
    # 50 adds of 0/1 fit in 6 bits
    assert len(planes) <= 6


def test_counter_add_shift_scales_by_power_of_two():
    """A shifted add contributes mask * 2**shift — the binary weight
    decomposition: weight 5 = shifts (0, 2)."""
    rng = np.random.default_rng(11)
    n = 70
    lanes = n_lanes(n)
    planes = []
    expected = np.zeros(n, dtype=np.int64)
    for _ in range(20):
        row = rng.integers(0, 2, n).astype(bool)
        mask = bitpack.lanes_to_int(pack_bool(row))
        bitpack.counter_add(planes, mask, 0)
        bitpack.counter_add(planes, mask, 2)
        expected += row.astype(np.int64) * 5
    assert np.array_equal(bitpack.counter_unpack(planes, lanes, n), expected)


def test_counter_add_grows_planes_on_demand():
    planes = []
    bitpack.counter_add(planes, 0b1, 3)
    assert planes == [0, 0, 0, 0b1]
    bitpack.counter_add(planes, 0b1, 3)  # 8 + 8 = 16: carry into plane 4
    assert planes == [0, 0, 0, 0, 0b1]


def test_counter_unpack_drops_pad_bits():
    n = 5
    row = np.ones(n, dtype=bool)  # pad replicates trace 4 (True)
    planes = []
    bitpack.counter_add(planes, bitpack.lanes_to_int(pack_bool(row)))
    counts = bitpack.counter_unpack(planes, 1, n)
    assert counts.shape == (n,)
    assert np.array_equal(counts, np.ones(n, dtype=np.int64))


# ----------------------------------------------------------------------
# recorder-aware "auto" resolution
# ----------------------------------------------------------------------
class _RecorderStub:
    pass


def test_recorder_accepts_packed_duck_typing():
    from repro.sim.power import CouplingModel, PowerRecorder, NullRecorder
    from repro.sim.power import TransientRecorder

    assert bitpack.recorder_accepts_packed(None) is True
    assert bitpack.recorder_accepts_packed(NullRecorder()) is True
    assert bitpack.recorder_accepts_packed(TransientRecorder()) is False
    # a recorder-shaped object without accepts_packed: no packed path
    assert bitpack.recorder_accepts_packed(_RecorderStub()) is False
    plain = PowerRecorder(8, 1000)
    assert bitpack.recorder_accepts_packed(plain) is True
    coupled = PowerRecorder(
        8, 1000, coupling=CouplingModel(pairs=[(0, 1)])
    )
    assert bitpack.recorder_accepts_packed(coupled) is False


def test_resolve_auto_declines_for_unpackable_recorder():
    from repro.sim.power import CouplingModel, PowerRecorder

    coupled = PowerRecorder(
        128, 1000, coupling=CouplingModel(pairs=[(0, 1)])
    )
    bitpack.reset_auto_pack_warning()
    with pytest.warns(bitpack.AutoPackFallbackWarning):
        assert resolve_pack_traces("auto", 128, coupled) is False
    # one-shot: the second resolution stays silent
    import warnings as _warnings

    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        assert resolve_pack_traces("auto", 128, coupled) is False
    bitpack.reset_auto_pack_warning()
    # explicit True is still honoured (slow unpack leg, but correct)
    assert resolve_pack_traces(True, 128, coupled) is True
    # a packable recorder keeps the size-only behaviour
    plain = PowerRecorder(128, 1000)
    assert resolve_pack_traces("auto", 128, plain) is True
    assert resolve_pack_traces("auto", 63, plain) is False
