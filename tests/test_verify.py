"""Tests for the exact glitch-extended probing verifier."""

import json

import numpy as np
import pytest

from repro.core.gadgets import build_secand2
from repro.faults.models import shift_gate_delay
from repro.netlist.safety import count_violations
from repro.verify import (
    MAX_INPUT_BITS,
    GadgetSpec,
    VerificationBudgetError,
    counterexample_vcd,
    pd_bank_spec,
    preset_spec,
    tabulate_probes,
    verify,
    verify_fault_sweep,
    witness_simulator,
)
from repro.verify.cli import main as cli_main
from repro.verify.presets import PRESETS


# ----------------------------------------------------------------------
# the paper's qualitative results
# ----------------------------------------------------------------------
def test_secand2_pd_exactly_secure():
    """Fig. 3: correct DelayUnit schedule -> 0 leaking probes, exact."""
    result = verify(preset_spec("secand2_pd"))
    assert result.secure
    assert result.n_leaking == 0
    assert result.n_probes == 9  # every wire of the gadget is probed


def test_y1_not_last_leak_with_counterexample():
    """Table I: y1 arriving before the x shares leaks, and the verifier
    hands back a concrete (secret pair, mask assignment, trace)."""
    spec = preset_spec("secand2_pd_y1_early")
    result = verify(spec)
    assert not result.secure
    probe = result.leaks[0]
    assert probe.count_hi > probe.count_lo
    assert probe.bias > 0
    assert probe.secret_hi != probe.secret_lo
    # the witness is a complete, valid input assignment
    assert set(probe.witness) == set(spec.input_bits)
    # and it is consistent with the hi secret class
    packed = 0
    for j, name in enumerate(spec.secret_names):
        v = 0
        for _, shares in [s for s in spec.secrets if s[0] == name]:
            for sh in shares:
                v ^= probe.witness[sh]
        packed |= v << j
    assert spec.decode_secret(packed) == probe.secret_hi


def test_table1_good_vs_bad_sequence():
    good = verify(preset_spec("secand2_good_order"))
    bad = verify(preset_spec("secand2_bad_order"))
    assert good.secure
    assert not bad.secure
    # the leak sits on the gadget outputs, as Table I derives
    assert {p.wire_name for p in bad.leaks} == {"i0_z0_o", "i0_z1_o"}


@pytest.mark.parametrize(
    "name", ["secand2_ff", "dom_indep", "ti_and3", "secure_f_xy"]
)
def test_protected_constructions_secure(name):
    assert verify(preset_spec(name)).secure


@pytest.mark.parametrize(
    "name", ["trichina_late_x", "insecure_f_xy", "pchain3_pd"]
)
def test_known_leaky_constructions_flagged(name):
    assert not verify(preset_spec(name)).secure


def test_all_presets_match_expectations():
    """The machine-checked form of the paper's qualitative claims."""
    for preset in PRESETS.values():
        if preset.expect_secure is None:
            continue
        result = verify(preset.build())
        assert result.secure == preset.expect_secure, preset.name


def test_leak_count_correlates_with_static_violations():
    """Exact leaking probes appear exactly where the static checker
    counts a y1-not-last violation, across a mis-sizing ladder."""
    leaking, violations = [], []
    for spec_name in ("secand2_pd", "secand2_pd_y1_early"):
        spec = preset_spec(spec_name)
        leaking.append(verify(spec).n_leaking > 0)
        violations.append(
            count_violations(spec.circuit)["y1-not-last"] > 0
        )
    assert leaking == violations == [False, True]


# ----------------------------------------------------------------------
# mechanics: enumeration, chunking, budget, spec validation
# ----------------------------------------------------------------------
def test_chunked_equals_unchunked():
    """Chunk boundaries must be invisible in the tabulation."""
    spec = preset_spec("secand2_bad_order")
    whole = tabulate_probes(spec, chunk_size=1 << 14)
    pieces = tabulate_probes(spec, chunk_size=3)  # ragged chunks
    assert whole.leaking_wires == pieces.leaking_wires
    for w in whole.probes:
        a, b = whole.probes[w].counts, pieces.probes[w].counts
        assert set(a) == set(b)
        for key in a:
            assert np.array_equal(a[key], b[key])


def test_budget_error():
    spec = preset_spec("secand2_pd")
    with pytest.raises(VerificationBudgetError) as err:
        verify(spec, max_input_bits=3)
    assert err.value.n_bits == 4
    assert err.value.max_bits == 3
    assert "2^3" in str(err.value)


def test_spec_validation_rejects_bad_declarations():
    circuit = build_secand2()
    with pytest.raises(ValueError, match="not covered"):
        GadgetSpec(
            name="missing", circuit=circuit, secrets=(("x", ("x0", "x1")),)
        ).validate()
    with pytest.raises(ValueError, match="not in circuit"):
        GadgetSpec(
            name="extra",
            circuit=circuit,
            secrets=(("x", ("x0", "x1")), ("y", ("y0", "y1"))),
            randoms=("nope",),
        ).validate()
    with pytest.raises(ValueError, match="twice"):
        GadgetSpec(
            name="dup",
            circuit=circuit,
            secrets=(("x", ("x0", "x1")), ("y", ("y0", "y1"))),
            randoms=("x0",),
        ).validate()


def test_class_sizes_exact():
    spec = preset_spec("secand2_pd")
    tab = tabulate_probes(spec)
    assert tab.n_assignments == 16
    assert tab.class_size == 4
    # per wire, counts over all traces sum to the class size per secret
    for dist in tab.probes.values():
        total = sum(dist.counts.values())
        assert np.array_equal(total, np.full(4, 4, dtype=np.int64))


# ----------------------------------------------------------------------
# counterexamples: witness resimulation and VCD export
# ----------------------------------------------------------------------
def test_witness_simulator_reproduces_trace():
    spec = preset_spec("secand2_bad_order")
    probe = verify(spec).leaks[0]
    sim = witness_simulator(spec, probe.witness)
    got = tuple(sim.waveforms[probe.wire].changes)
    assert got == probe.trace


def test_counterexample_vcd_contains_leaking_wire():
    spec = preset_spec("secand2_pd_y1_early")
    probe = verify(spec).leaks[0]
    vcd = counterexample_vcd(spec, probe)
    assert "$timescale" in vcd
    assert probe.wire_name in vcd


# ----------------------------------------------------------------------
# fault path: faulted circuits through the verifier, exact sweep
# ----------------------------------------------------------------------
def test_faulted_circuit_flips_verdict():
    """Stretching the y1 DelayUnit shorter turns the exactly-secure PD
    gadget leaky — the verifier sees the fault transform's effect."""
    spec = preset_spec("secand2_pd")
    assert verify(spec).secure
    # collapse the y1 delay line: 1000 -> 300 ps, before the x shares' 500
    broken = spec.with_circuit(
        shift_gate_delay(spec.circuit, "secand2pd_dl_y1", -700.0),
        name="secand2_pd shifted",
    )
    assert not verify(broken).secure


def test_verify_fault_sweep_quick():
    sweep = verify_fault_sweep(
        spec=pd_bank_spec(n_instances=2, n_luts=1), sigmas=(0, 300)
    )
    assert sweep.clean_at_zero
    assert sweep.monotone_counts
    assert [p.sigma_ps for p in sweep.points] == [0, 300]
    d = sweep.to_json_dict()
    assert d["schema"] == "verify_fault_sweep/v1"
    assert json.loads(json.dumps(d)) == d


def test_eval_fault_sweep_verify_metric():
    from repro.eval.fault_sweep import run

    result = run(sigmas=(0,), metric="verify", n_instances=2, n_luts=1)
    assert result.clean_at_zero
    assert "Exact fault sweep" in result.render()
    with pytest.raises(ValueError, match="metric"):
        run(metric="nope")


# ----------------------------------------------------------------------
# report plumbing and CLI
# ----------------------------------------------------------------------
def test_result_json_roundtrip():
    result = verify(preset_spec("secand2_bad_order"))
    d = result.to_json_dict()
    assert d["schema"] == "verify_report/v1"
    assert d["secure"] is False
    assert d["n_leaking"] == len(d["leaks"]) == 2
    assert json.loads(json.dumps(d)) == d


def test_render_mentions_verdict():
    secure = verify(preset_spec("secand2_pd")).render()
    leaky = verify(preset_spec("secand2_bad_order")).render()
    assert "SECURE" in secure
    assert "LEAKS" in leaky and "witness" in leaky


def test_cli_smoke(tmp_path, capsys):
    report = tmp_path / "report.json"
    vcd = tmp_path / "leak.vcd"
    rc = cli_main(
        [
            "--preset",
            "secand2_pd",
            "--preset",
            "secand2_pd_y1_early",
            "--json",
            str(report),
            "--vcd",
            str(vcd),
        ]
    )
    assert rc == 0
    data = json.loads(report.read_text())
    assert data["schema"] == "verify_cli/v2"
    assert data["ok"] is True
    assert data["n_presets"] == 2
    assert data["n_matched"] == 2
    assert data["elapsed_s"] >= 0
    assert [r["matched"] for r in data["results"]] == [True, True]
    assert "$timescale" in vcd.read_text()
    out = capsys.readouterr().out
    assert "2/2 verdicts match" in out


def test_cli_list_and_errors(capsys):
    assert cli_main(["--list-presets"]) == 0
    assert "secand2_pd" in capsys.readouterr().out
    assert cli_main(["--preset", "nope"]) == 2
    assert cli_main([]) == 2


def test_main_module_dispatches_verify(capsys):
    from repro.__main__ import main as repro_main

    assert repro_main(["verify", "--preset", "secand2_pd"]) == 0
    assert "SECURE" in capsys.readouterr().out


def test_default_budget_is_twenty_bits():
    assert MAX_INPUT_BITS == 20
