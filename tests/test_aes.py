"""Tests for the AES-128 case study (reference + masked)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aes import (
    INV_SBOX,
    MULT_MONOMIAL_MASKS,
    MaskedAES128,
    MaskedByte,
    SBOX,
    aes128_encrypt,
    expand_key128,
    gf_inverse,
    gf_mult,
    masked_gf_inverse,
    masked_gf_mult,
    masked_sbox,
    xtime,
)
from repro.leakage.prng import RandomnessSource


# ----------------------------------------------------------------------
# reference
# ----------------------------------------------------------------------
def test_fips197_vector():
    pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    ky = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    assert aes128_encrypt(pt, ky).hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def test_fips197_appendix_b_vector():
    pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    ky = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    assert aes128_encrypt(pt, ky).hex() == "3925841d02dc09fbdc118597196a0b32"


def test_sbox_known_values():
    assert SBOX[0x00] == 0x63
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16
    assert sorted(SBOX) == list(range(256))
    assert all(INV_SBOX[SBOX[v]] == v for v in range(256))


def test_gf_mult_properties():
    assert gf_mult(0x57, 0x83) == 0xC1  # FIPS-197 example
    assert gf_mult(0x57, 0x13) == 0xFE
    for a in (1, 7, 0x53, 0xCA):
        assert gf_mult(a, 1) == a
        assert gf_mult(a, 0) == 0


@given(st.integers(1, 255))
@settings(max_examples=40, deadline=None)
def test_gf_inverse_property(a):
    assert gf_mult(a, gf_inverse(a)) == 1


def test_xtime():
    assert xtime(0x57) == 0xAE
    assert xtime(0xAE) == 0x47  # wraps through the reduction


def test_key_expansion_first_round_key_is_key():
    key = bytes(range(16))
    keys = expand_key128(key)
    assert len(keys) == 11
    assert bytes(keys[0]) == key


def test_bad_sizes_rejected():
    with pytest.raises(ValueError):
        aes128_encrypt(b"short", bytes(16))
    with pytest.raises(ValueError):
        expand_key128(b"short")


# ----------------------------------------------------------------------
# masked
# ----------------------------------------------------------------------
def test_monomial_masks_consistency():
    """masks[i][j] must encode x^(7-i) * x^(7-j) reduced mod the AES
    polynomial."""
    for i in range(8):
        for j in range(8):
            prod = gf_mult(1 << (7 - i), 1 << (7 - j))
            m = int(MULT_MONOMIAL_MASKS[i, j])
            rebuilt = 0
            for k in range(8):
                if m & (1 << k):
                    rebuilt |= 1 << (7 - k)
            assert rebuilt == prod


def test_masked_byte_share_roundtrip():
    rng = np.random.default_rng(0)
    vals = rng.integers(0, 256, 1000).astype(np.uint8)
    mb = MaskedByte.share(vals, RandomnessSource(1))
    assert np.array_equal(mb.unshare(), vals)
    # mask share is balanced
    assert abs(mb.s1.mean() - 0.5) < 0.05


def test_masked_gf_mult_matches_reference():
    rng = np.random.default_rng(1)
    prng = RandomnessSource(2)
    a = rng.integers(0, 256, 3000).astype(np.uint8)
    b = rng.integers(0, 256, 3000).astype(np.uint8)
    mc = masked_gf_mult(
        MaskedByte.share(a, prng), MaskedByte.share(b, prng), prng
    )
    ref = np.array([gf_mult(int(x), int(y)) for x, y in zip(a, b)],
                   dtype=np.uint8)
    assert np.array_equal(mc.unshare(), ref)


def test_masked_gf_mult_output_refreshed():
    """The product's mask share must be fresh (independent of inputs)."""
    prng = RandomnessSource(3)
    a = np.full(20_000, 0x57, dtype=np.uint8)
    b = np.full(20_000, 0x83, dtype=np.uint8)
    mc = masked_gf_mult(
        MaskedByte.share(a, prng), MaskedByte.share(b, prng), prng
    )
    for i in range(8):
        assert abs(mc.s0[i].mean() - 0.5) < 0.02


def test_masked_inverse_all_values():
    prng = RandomnessSource(4)
    vals = np.arange(256, dtype=np.uint8)
    inv = masked_gf_inverse(MaskedByte.share(vals, prng), prng)
    ref = np.array([gf_inverse(v) for v in range(256)], dtype=np.uint8)
    assert np.array_equal(inv.unshare(), ref)


def test_masked_sbox_all_values():
    prng = RandomnessSource(5)
    vals = np.arange(256, dtype=np.uint8)
    out = masked_sbox(MaskedByte.share(vals, prng), prng)
    assert np.array_equal(out.unshare(), np.array(SBOX, dtype=np.uint8))


def test_masked_aes_matches_reference():
    rng = np.random.default_rng(6)
    pts = rng.integers(0, 256, (6, 16)).astype(np.uint8)
    kys = rng.integers(0, 256, (6, 16)).astype(np.uint8)
    cts = MaskedAES128().encrypt(pts, kys, RandomnessSource(7))
    for i in range(6):
        assert bytes(cts[i]) == aes128_encrypt(bytes(pts[i]), bytes(kys[i]))


def test_masked_aes_fips_vector():
    pt = np.frombuffer(
        bytes.fromhex("00112233445566778899aabbccddeeff"), dtype=np.uint8
    ).reshape(1, 16)
    ky = np.frombuffer(
        bytes.fromhex("000102030405060708090a0b0c0d0e0f"), dtype=np.uint8
    ).reshape(1, 16)
    ct = MaskedAES128().encrypt(pt, ky, RandomnessSource(8))
    assert bytes(ct[0]).hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def test_masked_aes_prng_off_still_correct():
    rng = np.random.default_rng(9)
    pts = rng.integers(0, 256, (2, 16)).astype(np.uint8)
    kys = rng.integers(0, 256, (2, 16)).astype(np.uint8)
    cts = MaskedAES128().encrypt(pts, kys, RandomnessSource(0, enabled=False))
    for i in range(2):
        assert bytes(cts[i]) == aes128_encrypt(bytes(pts[i]), bytes(kys[i]))


def test_randomness_accounting():
    assert MaskedAES128.RANDOM_BITS_PER_SBOX == 32  # 4 mults x 8 bits
