"""Integration tests of the paper's headline security claims.

These run real (reduced-budget) TVLA campaigns on the gate-level
engines, so they are the slowest tests in the suite; each asserts one
qualitative result of Sec. VII.  The full-budget campaigns live in
``examples/reproduce_paper.py`` and the benchmark harness.
"""

import numpy as np
import pytest

from repro.des.engines import DESTraceSource, MaskedDESNetlistEngine
from repro.leakage.acquisition import (
    CampaignConfig,
    detect_leakage_traces,
    run_campaign,
)

FIXED = 0x0123456789ABCDEF
KEY = 0x133457799BBCDFF1

_ENGINES = {}


def engine(variant, n_luts=10):
    key = (variant, n_luts)
    if key not in _ENGINES:
        _ENGINES[key] = MaskedDESNetlistEngine(variant, n_luts=n_luts)
    return _ENGINES[key]


def campaign(src, n_traces, seed=11, sigma=2.0):
    return run_campaign(
        src,
        CampaignConfig(
            n_traces=n_traces, batch_size=2000, noise_sigma=sigma, seed=seed
        ),
    )


def test_ff_prng_off_leaks_fast():
    """Fig. 14a: with masking disabled, first-order leakage is
    detected within a few thousand traces — the sanity check that the
    whole simulation/TVLA chain can see leaks at all."""
    src = DESTraceSource(engine("ff"), FIXED, KEY, prng_enabled=False)
    detected, res = detect_leakage_traces(
        src, CampaignConfig(n_traces=4000, batch_size=1000, noise_sigma=2.0, seed=1)
    )
    assert detected is not None and detected <= 4000
    assert res.max_abs(1) > 20


def test_ff_prng_on_first_order_clean_second_order_leaky():
    """Fig. 14b-d: no first-order evidence, pronounced second order."""
    src = DESTraceSource(engine("ff"), FIXED, KEY, prng_enabled=True)
    res = campaign(src, 10_000)
    assert not res.leaks(1)
    assert res.leaks(2)


def test_pd_small_delayunit_leaks_first_order():
    """Fig. 15a: a 1-LUT DelayUnit cannot preserve the arrival order
    against routing skew -> pronounced first-order leakage."""
    src = DESTraceSource(engine("pd", n_luts=1), FIXED, KEY)
    res = campaign(src, 6_000)
    assert res.leaks(1)
    assert res.max_abs(1) > 8


def test_pd_optimal_delayunit_first_order_clean():
    """Fig. 15e/17: at the optimal 10-LUT DelayUnit (and without
    physical coupling) the PD engine shows no first-order evidence."""
    src = DESTraceSource(engine("pd", n_luts=10), FIXED, KEY)
    res = campaign(src, 8_000, seed=13)
    assert not res.leaks(1)
    assert res.leaks(2)  # two shares: higher-order leakage remains


def test_pd_coupling_restores_first_order_leak():
    """Fig. 17 / Sec. VII-C: with coupling between the share delay
    lines, the statically-safe PD engine leaks in the first order."""
    src = DESTraceSource(
        engine("pd", n_luts=10), FIXED, KEY, coupling_coefficient=5.0
    )
    detected, res = detect_leakage_traces(
        src,
        CampaignConfig(n_traces=12_000, batch_size=2000, noise_sigma=2.0, seed=7),
    )
    assert detected is not None


def test_leakage_ordering_pd_sweep():
    """Fig. 15 trend on two points: 1 LUT leaks much harder than 10."""
    small = campaign(DESTraceSource(engine("pd", n_luts=1), FIXED, KEY), 4_000)
    large = campaign(
        DESTraceSource(engine("pd", n_luts=10), FIXED, KEY), 4_000
    )
    assert small.max_abs(1) > 2 * large.max_abs(1)
