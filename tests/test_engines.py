"""Tests for the full gate-level masked DES engines."""

import numpy as np
import pytest

from repro.des.bits import int_to_bitarray
from repro.des.engines import DESTraceSource, MaskedDESNetlistEngine
from repro.des.reference import des_encrypt_bits
from repro.leakage.prng import RandomnessSource

# engines are expensive to build/run: share instances across tests
_ENGINES = {}


def engine(variant, **kw):
    key = (variant, tuple(sorted(kw.items())))
    if key not in _ENGINES:
        _ENGINES[key] = MaskedDESNetlistEngine(variant, **kw)
    return _ENGINES[key]


def blocks(n, seed=0):
    rng = np.random.default_rng(seed)
    pt = int_to_bitarray(rng.integers(0, 2**63, n, dtype=np.uint64), 64)
    ky = int_to_bitarray(rng.integers(0, 2**63, n, dtype=np.uint64), 64)
    return pt, ky


@pytest.mark.parametrize("variant", ["ff", "pd"])
def test_engine_ciphertext_matches_reference(variant):
    eng = engine(variant)
    pt, ky = blocks(48)
    ct, power = eng.run_batch(pt, ky, RandomnessSource(3))
    assert np.array_equal(ct, des_encrypt_bits(pt, ky))
    assert power.shape == (48, eng.n_samples)
    assert power.sum() > 0


@pytest.mark.parametrize("variant", ["ff", "pd"])
def test_engine_correct_with_prng_off(variant):
    eng = engine(variant)
    pt, ky = blocks(32, seed=1)
    ct, _ = eng.run_batch(pt, ky, RandomnessSource(3, enabled=False), record=False)
    assert np.array_equal(ct, des_encrypt_bits(pt, ky))


def test_engine_correct_small_delayunit_with_jitter():
    """Even an order-violating build computes correct ciphertexts —
    glitches are transient; only the power leaks."""
    eng = engine("pd", n_luts=1)
    pt, ky = blocks(32, seed=2)
    ct, _ = eng.run_batch(pt, ky, RandomnessSource(5), record=False)
    assert np.array_equal(ct, des_encrypt_bits(pt, ky))


def test_engine_no_record_returns_none_power():
    eng = engine("ff")
    pt, ky = blocks(8, seed=3)
    _, power = eng.run_batch(pt, ky, RandomnessSource(0), record=False)
    assert power is None


def test_engine_invalid_variant():
    with pytest.raises(ValueError):
        MaskedDESNetlistEngine("nope")


def test_ff_engine_structure():
    eng = engine("ff")
    c = eng.circuit
    # 30 secAND2 per S-box x 8 S-boxes
    assert len(c.annotations["secand2"]) == 240
    # masked state: 64 L/R FFs per share + masked key schedule 56 x 2
    names = {g.name for g in c.ff_gates()}
    assert "L_s0_0" in names and "R_s1_31" in names and "CD_s1_55" in names
    assert eng.cycles_per_round == 7
    assert len(eng.rand_wires) == 14


def test_pd_engine_structure():
    eng = engine("pd")
    assert eng.cycles_per_round == 2
    assert len(eng.coupling_pairs) == 48  # 6 pairs x 8 S-boxes
    # all delay cells sized at the requested DelayUnit
    sizes = {
        g.params["n_luts"]
        for g in eng.circuit.gates
        if g.cell.name == "DELAY"
    }
    assert sizes == {10}


def test_engine_no_recycle_randomness():
    eng = engine("ff", recycle_randomness=False)
    assert len(eng.rand_wires) == 112
    pt, ky = blocks(16, seed=4)
    ct, _ = eng.run_batch(pt, ky, RandomnessSource(6), record=False)
    assert np.array_equal(ct, des_encrypt_bits(pt, ky))


def test_engine_deterministic_given_seeds():
    eng = engine("ff")
    pt, ky = blocks(8, seed=5)
    _, p1 = eng.run_batch(pt, ky, RandomnessSource(7))
    _, p2 = eng.run_batch(pt, ky, RandomnessSource(7))
    assert np.array_equal(p1, p2)


def test_engine_power_depends_on_masks():
    eng = engine("ff")
    pt, ky = blocks(8, seed=6)
    _, p1 = eng.run_batch(pt, ky, RandomnessSource(1))
    _, p2 = eng.run_batch(pt, ky, RandomnessSource(2))
    assert not np.array_equal(p1, p2)


def test_trace_source_verify_flag():
    eng = engine("ff")
    src = DESTraceSource(
        eng, 0x0123456789ABCDEF, 0x133457799BBCDFF1, verify=True
    )
    rng = np.random.default_rng(0)
    fixed = np.zeros(16, bool)
    fixed[:8] = True
    traces = src.acquire(fixed, rng)
    assert traces.shape == (16, eng.n_samples)


def test_trace_source_fixed_class_repeatable_stimulus():
    eng = engine("ff")
    src = DESTraceSource(eng, 0xAAAAAAAAAAAAAAAA, 0x133457799BBCDFF1)
    assert src.n_samples == eng.n_samples


def test_coupling_changes_power_only_for_pd():
    pt, ky = blocks(16, seed=7)
    pd = engine("pd")
    _, a = pd.run_batch(pt, ky, RandomnessSource(8), coupling_coefficient=0.0)
    _, b = pd.run_batch(pt, ky, RandomnessSource(8), coupling_coefficient=5.0)
    assert not np.array_equal(a, b)
    ff = engine("ff")
    _, c1 = ff.run_batch(pt, ky, RandomnessSource(8), coupling_coefficient=5.0)
    _, c2 = ff.run_batch(pt, ky, RandomnessSource(8), coupling_coefficient=0.0)
    assert np.array_equal(c1, c2)  # FF engine has no coupled delay lines
