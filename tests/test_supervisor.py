"""Tests for the hardened campaign supervisor.

Covers the v2 checkpoint format (CRC, double-buffered generations,
quarantine of corrupt files), resumable interruption, poison-batch
quarantine and the validation of runner arguments — everything short of
real process-level failure, which lives in ``test_chaos.py`` and
``test_hard_crash_resume.py``.
"""

import json
import os

import numpy as np
import pytest

from repro.leakage.acquisition import (
    CampaignBatchError,
    CampaignConfig,
    run_campaign,
)
from repro.leakage.resilient import save_checkpoint, validate_runner_args
from repro.leakage.supervisor import (
    SUPERVISOR_CHECKPOINT_VERSION,
    CampaignInterrupted,
    _BatchFailureLog,
    load_checkpoint_supervised,
    marker_path,
    run_campaign_supervised,
    save_checkpoint_supervised,
)
from repro.leakage.transport import scavenge_orphans
from repro.leakage.tvla import TTestAccumulator

CFG = dict(n_traces=1000, batch_size=100, noise_sigma=0.5, seed=11)


class Synth:
    """Leaky synthetic source drawing all randomness from the batch rng."""

    def __init__(self, n_samples=16):
        self.n_samples = n_samples

    def acquire(self, fixed_mask, rng):
        tr = rng.normal(0.0, 1.0, (fixed_mask.shape[0], self.n_samples))
        tr[fixed_mask] += 0.05
        return tr


class PoisonBatch(Synth):
    """Raises forever on one specific batch, identified by its mask.

    The batch-``index`` rng stream is ``default_rng([seed, index])`` and
    the fixed mask is its first draw, so matching the precomputed mask
    pins the failure to exactly one batch index in every worker.
    """

    def __init__(self, config, index, n_samples=16):
        super().__init__(n_samples)
        rng = np.random.default_rng([config.seed, index])
        self.poison_mask = rng.integers(0, 2, size=config.batch_size).astype(
            bool
        )

    def acquire(self, fixed_mask, rng):
        if np.array_equal(fixed_mask, self.poison_mask):
            raise RuntimeError("poison batch")
        return super().acquire(fixed_mask, rng)


def _acc(n_samples=16, n=200, seed=1):
    rng = np.random.default_rng(seed)
    acc = TTestAccumulator(n_samples)
    acc.update(
        rng.normal(size=(n, n_samples)), rng.integers(0, 2, n).astype(bool)
    )
    return acc


def assert_same_result(a, b):
    assert a.n_traces == b.n_traces
    assert np.array_equal(a.t1, b.t1)
    assert np.array_equal(a.t2, b.t2)
    assert np.array_equal(a.t3, b.t3)


# ----------------------------------------------------------------------
# checkpoint format v2
# ----------------------------------------------------------------------
def test_supervised_checkpoint_roundtrip(tmp_path):
    cfg = CampaignConfig(**CFG, label="v2")
    acc = _acc()
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint_supervised(
        path, acc, cfg, next_batch=3, restarts=2, watchdog_kills=1,
        quarantined=[5],
    )
    loaded = load_checkpoint_supervised(path, cfg, 16)
    assert loaded is not None
    assert loaded.next_batch == 3
    assert loaded.restarts == 2
    assert loaded.watchdog_kills == 1
    assert loaded.quarantined == [5]
    assert not loaded.used_fallback
    assert loaded.files_quarantined == 0
    assert np.array_equal(loaded.acc.t_stats(1), acc.t_stats(1))
    assert not os.path.exists(path + ".tmp")


def test_crc_detects_bitflip(tmp_path):
    cfg = CampaignConfig(**CFG, label="crc")
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint_supervised(path, _acc(), cfg, next_batch=2)
    with open(path, "rb+") as f:
        f.seek(os.path.getsize(path) // 2)
        byte = f.read(1)
        f.seek(-1, os.SEEK_CUR)
        f.write(bytes([byte[0] ^ 0xFF]))
    with pytest.warns(RuntimeWarning, match="quarantin"):
        loaded = load_checkpoint_supervised(path, cfg, 16)
    assert loaded is None
    assert not os.path.exists(path)
    assert os.path.exists(path + ".corrupt")


def test_truncated_file_falls_back_to_previous_generation(tmp_path):
    cfg = CampaignConfig(**CFG, label="fallback")
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint_supervised(path, _acc(n=100), cfg, next_batch=1)
    save_checkpoint_supervised(path, _acc(n=200), cfg, next_batch=2)
    assert os.path.exists(path + ".prev")
    with open(path, "rb+") as f:
        f.truncate(os.path.getsize(path) // 3)
    with pytest.warns(RuntimeWarning):
        loaded = load_checkpoint_supervised(path, cfg, 16)
    assert loaded is not None
    assert loaded.used_fallback
    assert loaded.files_quarantined == 1
    assert loaded.next_batch == 1
    assert os.path.exists(path + ".corrupt")


def test_zero_length_checkpoint_tolerated(tmp_path):
    cfg = CampaignConfig(**CFG, label="zero")
    path = str(tmp_path / "ckpt.npz")
    open(path, "wb").close()
    with pytest.warns(RuntimeWarning):
        assert load_checkpoint_supervised(path, cfg, 16) is None
    assert os.path.exists(path + ".corrupt")


def test_v1_checkpoint_quarantined_not_crashed(tmp_path):
    """A pre-supervisor (v1) checkpoint is set aside, not a crash."""
    cfg = CampaignConfig(**CFG, label="v1")
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(path, _acc(), cfg, next_batch=2)
    with pytest.warns(RuntimeWarning):
        assert load_checkpoint_supervised(path, cfg, 16) is None
    assert os.path.exists(path + ".corrupt")


def test_fingerprint_mismatch_still_raises(tmp_path):
    cfg = CampaignConfig(**CFG, label="fp")
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint_supervised(path, _acc(), cfg, next_batch=1)
    other = CampaignConfig(**{**CFG, "seed": 12}, label="fp")
    with pytest.raises(ValueError, match="different campaign"):
        load_checkpoint_supervised(path, other, 16)
    with pytest.raises(ValueError, match="samples"):
        load_checkpoint_supervised(path, cfg, 32)


def test_missing_checkpoint_returns_none(tmp_path):
    cfg = CampaignConfig(**CFG)
    assert load_checkpoint_supervised(str(tmp_path / "no.npz"), cfg, 16) is None


# ----------------------------------------------------------------------
# supervised runs
# ----------------------------------------------------------------------
def test_supervised_serial_matches_run_campaign(tmp_path):
    cfg = CampaignConfig(**CFG, label="serial")
    path = str(tmp_path / "ckpt.npz")
    res = run_campaign_supervised(
        Synth(), cfg, path, n_workers=1, handle_signals=False
    )
    assert_same_result(res, run_campaign(Synth(), cfg))
    # every sidecar file is cleaned up after success
    for suffix in ("", ".prev", ".tmp", ".interrupted"):
        assert not os.path.exists(path + suffix)
    assert scavenge_orphans() == []


def test_supervised_parallel_matches_serial(tmp_path):
    cfg = CampaignConfig(**CFG, label="par")
    res = run_campaign_supervised(
        Synth(), cfg, str(tmp_path / "ckpt.npz"), n_workers=2,
        handle_signals=False,
    )
    assert_same_result(res, run_campaign(Synth(), cfg))
    assert scavenge_orphans() == []


def test_stop_after_batches_interrupts_resumably(tmp_path):
    cfg = CampaignConfig(**CFG, label="slice")
    path = str(tmp_path / "ckpt.npz")
    with pytest.raises(CampaignInterrupted) as ei:
        run_campaign_supervised(
            Synth(), cfg, path, n_workers=1, handle_signals=False,
            stop_after_batches=3,
        )
    assert ei.value.next_batch == 3
    assert ei.value.reason == "stop_after_batches"
    with open(marker_path(path)) as f:
        marker = json.load(f)
    assert marker["next_batch"] == 3
    assert marker["n_batches"] == 10
    # resume finishes the campaign bitwise
    res = run_campaign_supervised(
        Synth(), cfg, path, n_workers=1, handle_signals=False
    )
    assert res.stats.restarts == 1
    assert_same_result(res, run_campaign(Synth(), cfg))
    assert not os.path.exists(marker_path(path))


def test_cleanup_false_keeps_loadable_checkpoint(tmp_path):
    cfg = CampaignConfig(**CFG, label="keep")
    path = str(tmp_path / "ckpt.npz")
    run_campaign_supervised(
        Synth(), cfg, path, n_workers=1, handle_signals=False, cleanup=False
    )
    loaded = load_checkpoint_supervised(path, cfg, 16)
    assert loaded is not None
    assert loaded.next_batch == 10
    assert loaded.acc.n_traces == cfg.n_traces


def test_poison_batch_quarantined_with_explicit_trace_accounting(tmp_path):
    """A batch failing across >= 2 pool generations is quarantined: the
    campaign finishes, reports the skipped index and subtracts its
    traces explicitly instead of dying."""
    cfg = CampaignConfig(**CFG, label="poison")
    res = run_campaign_supervised(
        PoisonBatch(cfg, index=4), cfg, str(tmp_path / "ckpt.npz"),
        n_workers=2, max_retries=1, backoff_s=0.05, handle_signals=False,
    )
    assert res.stats.quarantined_batches == [4]
    assert res.stats.skipped_traces == cfg.batch_size
    assert res.n_traces == cfg.n_traces - cfg.batch_size
    assert res.stats.robustness_events()["quarantined_batches"] == 1
    assert scavenge_orphans() == []


def test_quarantine_disabled_reproduces_abort(tmp_path):
    cfg = CampaignConfig(**CFG, label="abort")
    with pytest.raises(CampaignBatchError) as ei:
        run_campaign_supervised(
            PoisonBatch(cfg, index=4), cfg, str(tmp_path / "ckpt.npz"),
            n_workers=2, max_retries=1, backoff_s=0.05,
            handle_signals=False, quarantine_batches=False,
        )
    assert ei.value.batch_index == 4


# ----------------------------------------------------------------------
# argument validation (no-progress combinations rejected up front)
# ----------------------------------------------------------------------
def test_invalid_runner_args_rejected(tmp_path):
    cfg = CampaignConfig(**CFG)
    path = str(tmp_path / "c.npz")
    for kwargs in (
        dict(checkpoint_every=0),
        dict(max_retries=-1),
        dict(worker_timeout_s=0.0),
        dict(backoff_s=-1.0),
        dict(stop_after_batches=0),
    ):
        with pytest.raises(ValueError):
            run_campaign_supervised(
                Synth(), cfg, path, n_workers=1, handle_signals=False,
                **kwargs,
            )


def test_timeout_shorter_than_warmup_rejected():
    with pytest.raises(ValueError, match="warm-up"):
        validate_runner_args(worker_timeout_s=0.5, warmup_batch_s=2.0)


def test_batch_failure_log_poison_semantics():
    log = _BatchFailureLog()
    log.record(3, "pool-1")
    log.record(3, "pool-1")
    log.record(3, "pool-1")
    # many failures from a single origin never condemn the batch
    assert not log.is_poison(3, max_retries=2)
    log.record(3, "pool-2")
    assert log.is_poison(3, max_retries=2)
    assert not log.is_poison(3, max_retries=10)


def test_checkpoint_version_constant_is_two():
    assert SUPERVISOR_CHECKPOINT_VERSION == 2
