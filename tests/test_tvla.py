"""Unit tests for the TVLA implementation (orders 1..3, streaming)."""

import numpy as np
import pytest

from repro.leakage.tvla import (
    THRESHOLD,
    TTestAccumulator,
    TvlaResult,
    consistent_leakage,
    threshold_crossings,
    welch_t,
)


def rng(seed=0):
    return np.random.default_rng(seed)


def direct_welch(a, b):
    return welch_t(
        a.mean(0), a.var(0), a.shape[0], b.mean(0), b.var(0), b.shape[0]
    )


def test_welch_t_zero_for_identical_populations():
    a = np.ones((10, 3))
    t = welch_t(a.mean(0), a.var(0), 10, a.mean(0), a.var(0), 10)
    assert np.allclose(t, 0.0)


def test_welch_t_matches_scipy_formula():
    r = rng(1)
    a = r.normal(0, 1, (500, 4))
    b = r.normal(0.5, 2, (400, 4))
    t = direct_welch(a, b)
    try:
        from scipy import stats

        ref = stats.ttest_ind(a, b, axis=0, equal_var=False).statistic
        assert np.allclose(t, ref, rtol=0.01)
    except ImportError:  # pragma: no cover
        pytest.skip("scipy unavailable")


def test_accumulator_first_order_matches_direct():
    r = rng(2)
    a = r.normal(0, 1, (3000, 8))
    b = r.normal(0.2, 1, (3000, 8))
    acc = TTestAccumulator(8)
    acc.update(a, np.ones(3000, bool))
    acc.update(b, np.zeros(3000, bool))
    assert np.allclose(acc.t_stats(1), direct_welch(a, b), rtol=1e-6)


def test_accumulator_streaming_equals_batch():
    r = rng(3)
    traces = r.normal(0, 1, (4000, 5))
    labels = r.integers(0, 2, 4000).astype(bool)
    one = TTestAccumulator(5)
    one.update(traces, labels)
    many = TTestAccumulator(5)
    for i in range(0, 4000, 250):
        many.update(traces[i : i + 250], labels[i : i + 250])
    for order in (1, 2, 3):
        assert np.allclose(one.t_stats(order), many.t_stats(order), rtol=1e-9)


def test_second_order_detects_variance_difference():
    """Masked-but-second-order-leaky situation: equal means, different
    variances — order 1 silent, order 2 loud."""
    r = rng(4)
    a = r.normal(0, 1.0, (20000, 2))
    b = r.normal(0, 1.6, (20000, 2))
    acc = TTestAccumulator(2)
    acc.update(a, np.ones(20000, bool))
    acc.update(b, np.zeros(20000, bool))
    assert np.max(np.abs(acc.t_stats(1))) < THRESHOLD
    assert np.max(np.abs(acc.t_stats(2))) > THRESHOLD


def test_third_order_detects_skewness_difference():
    r = rng(5)
    a = r.normal(0, 1, (50000, 1))
    # skewed with matched mean/variance (standardised chi-square-ish)
    b = r.gamma(4.0, 1.0, (50000, 1))
    b = (b - b.mean()) / b.std()
    acc = TTestAccumulator(1)
    acc.update(a, np.ones(50000, bool))
    acc.update(b, np.zeros(50000, bool))
    assert np.max(np.abs(acc.t_stats(1))) < THRESHOLD
    assert np.max(np.abs(acc.t_stats(2))) < 2 * THRESHOLD
    assert np.max(np.abs(acc.t_stats(3))) > THRESHOLD


def test_invalid_order_rejected():
    with pytest.raises(ValueError):
        TTestAccumulator(1).t_stats(4)


def test_sample_count_mismatch_rejected():
    acc = TTestAccumulator(4)
    with pytest.raises(ValueError):
        acc.update(np.zeros((10, 5)), np.zeros(10, bool))


def test_result_summary_and_leaks():
    r = rng(6)
    a = r.normal(0, 1, (5000, 3))
    b = r.normal(2, 1, (5000, 3))
    acc = TTestAccumulator(3)
    acc.update(a, np.ones(5000, bool))
    acc.update(b, np.zeros(5000, bool))
    res = acc.result("unit")
    assert res.leaks(1)
    assert res.n_traces == 10000
    assert "LEAKS" in res.summary()
    assert len(res.crossings(1)) == 3


def test_threshold_crossings():
    t = np.array([0.0, 5.0, -6.0, 4.4])
    assert list(threshold_crossings(t)) == [1, 2]


def _result_with_crossings(idx, n_samples=10):
    t1 = np.zeros(n_samples)
    for i in idx:
        t1[i] = 10.0
    return TvlaResult("x", 1000, t1, np.zeros(n_samples), np.zeros(n_samples))


def test_consistent_leakage_requires_common_sample():
    """The paper's rule: crossings must align across fixed plaintexts."""
    a = _result_with_crossings([2, 5])
    b = _result_with_crossings([5, 7])
    c = _result_with_crossings([5])
    d = _result_with_crossings([3])
    assert consistent_leakage([a, b, c])
    assert not consistent_leakage([a, b, d])
    assert not consistent_leakage([])


def test_consistent_leakage_single_result():
    assert consistent_leakage([_result_with_crossings([1])])
    assert not consistent_leakage([_result_with_crossings([])])


def test_constant_samples_give_zero_t():
    acc = TTestAccumulator(2)
    acc.update(np.ones((100, 2)), np.ones(100, bool))
    acc.update(np.ones((100, 2)), np.zeros(100, bool))
    for order in (1, 2, 3):
        assert np.all(np.isfinite(acc.t_stats(order)))


# ----------------------------------------------------------------------
# merge (sharded accumulation)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_merge_property_shards_match_serial(seed):
    """Property: shards merged in order == one serial accumulator.

    Random trace matrices, random shard boundaries, random class
    assignments — the raw sums are added in the same order either way,
    so the statistics agree to float tolerance (and the identical
    per-batch partial sums make them bitwise equal here).
    """
    r = rng(seed)
    n_samples = int(r.integers(2, 12))
    n_batches = int(r.integers(2, 7))
    serial = TTestAccumulator(n_samples)
    shards = []
    for _ in range(n_batches):
        n = int(r.integers(5, 60))
        traces = r.normal(3.0, 1.5, (n, n_samples))
        mask = r.integers(0, 2, n).astype(bool)
        serial.update(traces, mask)
        shard = TTestAccumulator(n_samples)
        shard.update(traces, mask)
        shards.append(shard)
    merged = TTestAccumulator(n_samples)
    for shard in shards:
        assert merged.merge(shard) is merged
    assert merged.n_traces == serial.n_traces
    for order in (1, 2, 3):
        a, b = merged.t_stats(order), serial.t_stats(order)
        assert np.allclose(a, b, rtol=1e-9, atol=1e-12)
        assert np.array_equal(a, b)  # identical addition sequence


def test_merge_rejects_sample_mismatch():
    with pytest.raises(ValueError, match="merge"):
        TTestAccumulator(4).merge(TTestAccumulator(5))


def test_merge_empty_shard_is_identity():
    r = rng(9)
    acc = TTestAccumulator(3)
    acc.update(r.normal(0, 1, (50, 3)), r.integers(0, 2, 50).astype(bool))
    before = acc.t_stats(1).copy()
    acc.merge(TTestAccumulator(3))
    assert np.array_equal(acc.t_stats(1), before)


# ----------------------------------------------------------------------
# float64 precision contract (parallel-campaign bitwise guarantee)
# ----------------------------------------------------------------------
def test_100k_trace_shard_merge_bitwise_equals_serial():
    """100 shards x 1000 traces: merging equals the serial batch loop.

    This is the precision contract behind ``run_campaign(n_workers=k)``:
    per-batch shards merged in batch order perform exactly the float64
    additions the serial accumulator performs batch by batch, so at
    100k traces the raw sums — and every derived t-statistic — are
    bitwise identical, not merely close.
    """
    n_samples = 16
    serial = TTestAccumulator(n_samples)
    merged = TTestAccumulator(n_samples)
    for i in range(100):
        r = np.random.default_rng([17, i])
        traces = r.normal(10.0, 2.0, (1000, n_samples)).astype(np.float32)
        mask = r.integers(0, 2, 1000).astype(bool)
        serial.update(traces, mask)
        shard = TTestAccumulator(n_samples)
        shard.update(traces, mask)
        merged.merge(shard)
    assert serial.n_traces == merged.n_traces == 100_000
    # the accumulation is float64 end to end ...
    for acc in (serial, merged):
        assert acc._fixed.sums.dtype == np.float64
        assert acc._random.sums.dtype == np.float64
    # ... and the shard-merge is exact, raw sums through t-statistics
    assert np.array_equal(serial._fixed.sums, merged._fixed.sums)
    assert np.array_equal(serial._random.sums, merged._random.sums)
    for order in (1, 2, 3):
        assert np.array_equal(serial.t_stats(order), merged.t_stats(order))


def test_merge_rejects_non_float64_shard():
    shard = TTestAccumulator(4)
    shard._fixed.sums = shard._fixed.sums.astype(np.float32)
    with pytest.raises(TypeError, match="float64"):
        TTestAccumulator(4).merge(shard)
