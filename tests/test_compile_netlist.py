"""Back half of the masking compiler: emitted netlists + scheduling.

Functional recombination on real share arrays, static ordering margins,
DelayUnit solving/rejection, and cost parity against the hand-built DES
engines (the ISSUE's cross-validation criterion).
"""

import numpy as np
import pytest

from repro.compile import (
    ScheduleError,
    certify_netlist,
    compile_spec,
    des_sbox_spec,
    lower,
    plan_refresh,
)
from repro.compile.emit import emit_pd
from repro.compile.schedule import PDSchedule, pd_schedule
from repro.des.masked_netlist import SBOX_N_SECAND2, build_standalone_sbox
from repro.netlist import area
from repro.netlist.safety import check_secand2_ordering


@pytest.fixture(scope="module")
def des_pd():
    return compile_spec(des_sbox_spec(0), style="pd", refresh="full")


@pytest.fixture(scope="module")
def des_ff():
    return compile_spec(des_sbox_spec(0), style="ff", refresh="full")


# ----------------------------------------------------------------------
# recombination on all inputs (criterion a)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("style", ["pd", "ff"])
def test_des_recombines_on_all_inputs(style, des_pd, des_ff):
    result = des_pd if style == "pd" else des_ff
    net = result.netlist
    spec = net.plan.spec
    idx = np.arange(64, dtype=np.int64)
    bits = np.stack(
        [((idx >> (spec.n_inputs - 1 - i)) & 1).astype(bool) for i in range(6)]
    )
    rng = np.random.default_rng(7)
    for _ in range(2):
        s1 = rng.integers(0, 2, bits.shape).astype(bool)
        rand = rng.integers(0, 2, (net.fresh_bits, 64)).astype(bool)
        out = net.recombine(bits ^ s1, s1, rand)
        assert np.array_equal(out, np.array(spec.table, dtype=np.int64))


# ----------------------------------------------------------------------
# scheduling (criterion b)
# ----------------------------------------------------------------------
def test_pd_solver_meets_requested_margin(des_pd):
    assert des_pd.n_luts_solved
    assert des_pd.n_luts == 1  # DES orders at the minimum DelayUnit
    assert check_secand2_ordering(des_pd.circuit, min_margin_ps=50) == []


def test_under_budget_pin_rejected_with_diagnosis():
    with pytest.raises(ScheduleError) as exc_info:
        compile_spec(des_sbox_spec(0), style="pd", margin_ps=400, n_luts=1)
    err = exc_info.value
    assert len(err.violations) > 0
    assert err.required_n_luts == 2
    # rejection at a 400 ps margin is a *margin* failure: the worst site
    # is still positively ordered, so no exact counterexample exists —
    # the error must not fabricate one.
    assert all(v.margin_ps < 400 for v in err.violations)


def test_sabotaged_schedule_yields_exact_counterexample():
    """Reverse every stagger pair (y1 lands first): the certifier must
    find a concrete leaking probe and its VCD must export."""
    from repro.verify.report import counterexample_vcd

    plan = lower(des_sbox_spec(0))
    choice = plan_refresh(plan, mode="full")
    good = pd_schedule(plan, 1, 50)
    bad = PDSchedule(
        n_luts=1,
        margin_ps=50,
        inner_units=tuple((b, a) for a, b in good.inner_units),
        select_units=tuple((b, a) for a, b in good.select_units),
    )
    net = emit_pd(plan, choice, bad)
    cert = certify_netlist(net, margin_ps=50, exact="sites")
    assert not cert.ok
    assert cert.counterexample is not None
    assert cert.counterexample_spec is not None
    vcd = counterexample_vcd(cert.counterexample_spec, cert.counterexample)
    assert "$timescale" in vcd


# ----------------------------------------------------------------------
# cost parity with the hand-built engines (criterion d)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("style", ["pd", "ff"])
def test_cost_within_25_percent_of_hand_built(style, des_pd, des_ff):
    result = des_pd if style == "pd" else des_ff
    net = result.netlist
    assert net.n_secand2 == 30 == SBOX_N_SECAND2
    assert net.fresh_bits == 14  # full refresh matches r0..r13

    hand, _ctrl, _coupling = build_standalone_sbox(0, style, n_luts=1)
    ours = area.report(net.circuit)
    theirs = area.report(hand)
    assert abs(ours.area_ge - theirs.area_ge) <= 0.25 * theirs.area_ge
    assert abs(ours.n_ff - theirs.n_ff) <= 0.25 * theirs.n_ff


# ----------------------------------------------------------------------
# FF layering
# ----------------------------------------------------------------------
def test_ff_layering_every_site_registered_last(des_ff):
    from repro.compile.certify import _ff_layering

    res = _ff_layering(des_ff.netlist)
    assert res["checked"]
    assert res["ok"]
    assert res["n_sites"] == 30
    assert res["n_bad"] == 0
