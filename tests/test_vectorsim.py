"""Unit tests for the vectorised glitch simulator, including the
scalar/vector cross-check on random circuits."""

import numpy as np
import pytest

from repro.netlist.circuit import Circuit, CircuitError
from repro.sim.power import PowerRecorder
from repro.sim.simulator import ScalarSimulator
from repro.sim.vectorsim import SimulationError, VectorSimulator


def xor_and_circuit():
    c = Circuit()
    a, b = c.add_inputs("a", "b")
    z = c.xor2(c.and2(a, b), c.or2(a, b))
    c.mark_output("z", z)
    return c, a, b, z


def test_functional_evaluation():
    c, a, b, z = xor_and_circuit()
    sim = VectorSimulator(c, 4)
    av = np.array([0, 0, 1, 1], bool)
    bv = np.array([0, 1, 0, 1], bool)
    sim.evaluate_combinational({a: av, b: bv})
    assert np.array_equal(sim.values[z], (av & bv) ^ (av | bv))


def test_settle_reaches_same_values_as_functional():
    c, a, b, z = xor_and_circuit()
    av = np.array([0, 1, 1], bool)
    bv = np.array([1, 0, 1], bool)
    s1 = VectorSimulator(c, 3)
    s1.evaluate_combinational({a: av, b: bv})
    s2 = VectorSimulator(c, 3)
    s2.settle([(0, a, av), (0, b, bv)])
    assert np.array_equal(s1.values[z], s2.values[z])


def test_settle_returns_last_event_time():
    c, a, b, z = xor_and_circuit()
    sim = VectorSimulator(c, 1)
    t = sim.settle([(100, a, np.array([True]))])
    assert t >= 100


def test_scalar_broadcast_events():
    c, a, b, z = xor_and_circuit()
    sim = VectorSimulator(c, 5)
    sim.settle([(0, a, True), (0, b, False)])
    assert np.all(sim.values[a])
    assert not np.any(sim.values[b])


def test_bad_event_shape_rejected():
    c, a, b, z = xor_and_circuit()
    sim = VectorSimulator(c, 4)
    with pytest.raises(ValueError, match="expected shape"):
        sim.settle([(0, a, np.zeros(3, bool))])


def test_output_values_and_wire_values():
    c, a, b, z = xor_and_circuit()
    sim = VectorSimulator(c, 2)
    sim.evaluate_combinational({a: True, b: True})
    out = sim.output_values()
    assert np.array_equal(out["z"], sim.wire_values(z))


def test_event_budget_error():
    c = Circuit()
    a = c.add_input("a")
    w = a
    for _ in range(100):
        w = c.inv(w)
    sim = VectorSimulator(c, 1)
    sim.evaluate_combinational({a: False})
    with pytest.raises(SimulationError, match="budget"):
        sim.settle([(0, a, True)], max_events=3)


def ring_oscillator():
    """NAND ring: oscillates while the enable input is high."""
    c = Circuit()
    en = c.add_input("en")
    fb = c.add_wire("osc")
    c.add_gate("NAND2", [en, fb], output=fb, name="ringnand")
    return c, en


def test_loop_rejected_without_allow_loops():
    c, en = ring_oscillator()
    with pytest.raises(CircuitError):
        c.check()
    with pytest.raises(CircuitError):
        VectorSimulator(c, 1)


@pytest.mark.parametrize("compile_schedules", [True, False])
def test_oscillation_error_names_wires_and_budget(compile_schedules):
    c, en = ring_oscillator()
    sim = VectorSimulator(c, 2, compile_schedules=compile_schedules,
                          allow_loops=True)
    with pytest.raises(SimulationError) as ei:
        sim.settle([(0, en, True)], max_events=500)
    err = ei.value
    assert err.budget == 500
    assert err.time_ps is not None
    assert "osc" in err.wires
    assert "osc" in str(err)
    assert "500" in str(err)


def test_oscillation_stops_when_enable_falls():
    c, en = ring_oscillator()
    sim = VectorSimulator(c, 1, allow_loops=True)
    # oscillate for a bounded window, then NAND(0, fb) == 1: settles
    sim.settle([(0, en, True), (300, en, False)], max_events=10_000)
    assert sim.values[c.wire("osc")][0]


def test_power_recorded_on_transitions():
    c, a, b, z = xor_and_circuit()
    sim = VectorSimulator(c, 2)
    sim.evaluate_combinational({a: False, b: False})
    rec = PowerRecorder(2, 1000, bin_ps=250, weights=sim.weights)
    sim.settle([(0, a, np.array([True, False]))], recorder=rec)
    # trace 0 toggled, trace 1 did not
    assert rec.power[0].sum() > 0
    assert rec.power[1].sum() == 0


def test_ff_outputs_not_driven_combinationally():
    c = Circuit()
    a = c.add_input("a")
    q = c.dff(a, name="ff")
    z = c.inv(q)
    sim = VectorSimulator(c, 1)
    sim.settle([(0, a, True)])
    # the FF does not propagate combinationally: q stays 0
    assert not sim.values[q][0]


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_vector_matches_scalar_on_random_circuit(seed):
    """Transition-for-transition cross-check of the two engines."""
    rng = np.random.default_rng(seed)
    c = Circuit()
    wires = [c.add_input(f"i{k}") for k in range(4)]
    cells = ["AND2", "OR2", "XOR2", "NAND2", "NOR2", "XNOR2"]
    for k in range(15):
        kind = cells[rng.integers(0, len(cells))]
        a, b = rng.choice(len(wires), 2)
        wires.append(c.add_gate(kind, [wires[a], wires[b]]))

    stim = [(int(200 * k), c.wire(f"i{k}"), bool(rng.integers(0, 2)))
            for k in range(4)]

    ssim = ScalarSimulator(c)
    ssim.evaluate_combinational({c.wire(f"i{k}"): False for k in range(4)})
    ssim.settle(stim, t_offset=100_000)

    vsim = VectorSimulator(c, 1)
    vsim.evaluate_combinational({c.wire(f"i{k}"): False for k in range(4)})
    rec = PowerRecorder(1, 2000, bin_ps=1, weights=None)
    vsim.settle([(t, w, np.array([v])) for t, w, v in stim], recorder=rec)

    # same final values on every wire
    for w in range(c.n_wires):
        assert bool(vsim.values[w][0]) == ssim.values[w]
    # same transition count during the stimulus window
    scalar_toggles = sum(
        1
        for wf in ssim.waveforms.values()
        for t, _ in wf.changes
        if t >= 100_000
    )
    assert int(rec.power.sum()) == scalar_toggles
