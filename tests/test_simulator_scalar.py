"""Unit tests for the scalar reference simulator (waveforms, glitches)."""

import pytest

from repro.netlist.circuit import Circuit
from repro.sim.simulator import ScalarSimulator, Waveform


def test_waveform_value_at():
    wf = Waveform(initial=False, changes=[(10, True), (30, False)])
    assert wf.value_at(5) is False
    assert wf.value_at(10) is True
    assert wf.value_at(29) is True
    assert wf.value_at(30) is False
    assert wf.n_transitions == 2


def test_single_gate_propagation():
    c = Circuit()
    a = c.add_input("a")
    z = c.inv(a, name="inv")
    sim = ScalarSimulator(c)
    sim.settle([(0, a, True)])
    # initial state (all zero) is inconsistent for an inverter, so the
    # simulator produces the corrective transition
    assert sim.values[z] is False


def test_glitch_on_unbalanced_xor_paths():
    """The canonical glitch: XOR of a signal with a delayed copy of
    itself pulses when the input toggles."""
    c = Circuit()
    a = c.add_input("a")
    slow = c.buf(c.buf(a))           # 2 x 24 ps
    z = c.xor2(a, slow, name="gl")
    sim = ScalarSimulator(c)
    sim.evaluate_combinational()     # settle the all-zero state
    sim.settle([(1000, a, True)])
    wf = sim.waveforms[z]
    # z pulses 1 then returns to 0: exactly two transitions
    assert wf.n_transitions == 2
    assert sim.values[z] is False


def test_no_glitch_on_balanced_paths():
    c = Circuit()
    a, b = c.add_inputs("a", "b")
    z = c.xor2(c.and2(a, b), c.or2(a, b))  # AND/OR same delay
    sim = ScalarSimulator(c)
    sim.evaluate_combinational()
    sim.settle([(1000, a, True), (1000, b, True)])
    # both XOR inputs toggle simultaneously -> at most one transition
    assert sim.waveforms[z].n_transitions <= 1


def test_toggle_counts_by_name():
    c = Circuit()
    a = c.add_input("a")
    c.inv(a, name="theinv")
    sim = ScalarSimulator(c)
    sim.settle([(0, a, True)])
    counts = sim.toggle_counts()
    assert counts["a"] == 1


def test_total_toggles_accumulate():
    c = Circuit()
    a = c.add_input("a")
    c.buf(a)
    sim = ScalarSimulator(c)
    sim.settle([(0, a, True)])
    t1 = sim.total_toggles()
    sim.settle([(0, a, False)], t_offset=1000)
    assert sim.total_toggles() > t1


def test_reset_state_clears_waveforms():
    c = Circuit()
    a = c.add_input("a")
    c.inv(a)
    sim = ScalarSimulator(c)
    sim.settle([(0, a, True)])
    sim.reset_state()
    assert sim.total_toggles() == 0
    assert all(v is False for v in sim.values.values())


def test_waveform_of_by_name():
    c = Circuit()
    a = c.add_input("a")
    sim = ScalarSimulator(c)
    sim.settle([(5, a, True)])
    assert sim.waveform_of("a").changes == [(5, True)]


def test_event_budget_guard():
    c = Circuit()
    a = c.add_input("a")
    # ring oscillator: INV loop is a combinational loop, so build a
    # long chain instead and give a tiny budget
    w = a
    for _ in range(50):
        w = c.inv(w)
    sim = ScalarSimulator(c)
    sim.evaluate_combinational({a: False})
    with pytest.raises(RuntimeError, match="budget"):
        sim.settle([(0, a, True)], max_events=5)
