"""repro — reproduction of *Low-Cost First-Order Secure Boolean Masking
in Glitchy Hardware* (DATE 2023).

Package map
-----------
``repro.core``
    The paper's contribution: secAND2 / secAND2-FF / secAND2-PD masked
    AND gadgets, baseline gadgets (Trichina, DOM, TI), composition
    rules (product trees/chains, refresh), and the Table I
    input-sequence analysis.
``repro.netlist``
    Gate-level substrate: cell library, circuit graph, static timing,
    area/utilisation accounting.
``repro.sim``
    Event-driven glitch simulation (scalar and vectorised) and the
    toggle-count power model with the coupling extension.
``repro.des``
    DES substrate: reference cipher, ANF S-box decomposition, masked
    cores (share-level model and both gate-level engines).
``repro.leakage``
    TVLA (orders 1..3), fixed-vs-random acquisition, SNR, PRNG.
``repro.eval``
    One module per paper table/figure, regenerating the evaluation.
``repro.attacks``
    CPA key recovery (orders 1 and 2) against the engines — the
    executable form of the paper's security argument.
``repro.verify``
    Exact glitch-extended probing verification: enumerate all input
    assignments, tabulate every wire's transient distribution, decide
    first-order security with an integer independence test.
``repro.obs``
    Zero-dependency observability: span tracer with cross-process
    propagation, metrics registry backing the campaign counters,
    JSONL/Chrome trace exporters, ``python -m repro obs`` CLI.
"""

from . import (
    aes,
    attacks,
    core,
    des,
    eval,
    leakage,
    netlist,
    obs,
    present,
    sim,
    verify,
)

__version__ = "1.0.0"

__all__ = [
    "aes",
    "attacks",
    "core",
    "des",
    "eval",
    "leakage",
    "netlist",
    "obs",
    "present",
    "sim",
    "verify",
    "__version__",
]
