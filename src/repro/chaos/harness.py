"""Chaos scenarios: inject one failure, demand a perfect recovery.

Each scenario runs a supervised campaign with exactly one scheduled
failure (:class:`~repro.chaos.policy.ChaosPolicy`) and holds the
outcome to the supervisor's contract:

* the final :class:`~repro.leakage.tvla.TvlaResult` is **bitwise
  identical** to an undisturbed serial run, or the run ended in a
  **structured error naming the failed component**
  (:class:`CampaignBatchError`, :class:`CampaignInterrupted`,
  :class:`TransportError` — never a hang, never a bare stack trace
  from the middle of the pool machinery);
* :func:`repro.leakage.transport.scavenge_orphans` finds **zero
  orphaned shared-memory segments** afterwards;
* the injection **really happened** (the policy's one-shot flag was
  taken) — a chaos suite whose failures silently stop firing proves
  nothing.

Scenarios are deterministic per ``(mode, seed)``; the CLI
(``python -m repro chaos``) runs the full matrix for soak testing.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..leakage.acquisition import CampaignConfig, run_campaign
from ..leakage.supervisor import CampaignInterrupted, run_campaign_supervised
from ..obs.log import get_logger
from ..obs.trace import trace
from ..leakage.transport import (
    scavenge_orphans,
    set_chaos_hook,
    shared_memory_available,
)
from .policy import CHECKPOINT_MODES, FAILURE_MODES, ChaosPolicy

__all__ = [
    "SynthSource",
    "ChaosSource",
    "ScenarioResult",
    "run_chaos_scenario",
    "run_chaos_matrix",
]

_LOG = get_logger("chaos")


class SynthSource:
    """Leaky synthetic source; all randomness from the batch generator.

    Cheap enough that a full chaos scenario (clean run + disturbed run
    + retries) stays in CI-smoke territory, deterministic so the
    bitwise oracle is exact.
    """

    def __init__(self, n_samples: int = 16):
        self.n_samples = n_samples

    def acquire(self, fixed_mask: np.ndarray, rng) -> np.ndarray:
        traces = rng.normal(0.0, 1.0, (fixed_mask.shape[0], self.n_samples))
        traces[fixed_mask] += 0.05
        return traces


class ChaosSource:
    """A trace source with a chaos policy wired into its acquire seam.

    Transparent to the campaign contract: forwards ``n_samples``,
    ``pack_traces`` and ``warmup`` to the wrapped source and never
    consumes from the batch generator, so an injection-free run is
    bitwise equal to the bare source.
    """

    def __init__(self, inner, policy: ChaosPolicy):
        self.inner = inner
        self.policy = policy

    @property
    def n_samples(self) -> int:
        return self.inner.n_samples

    @property
    def pack_traces(self):
        return getattr(self.inner, "pack_traces", False)

    @pack_traces.setter
    def pack_traces(self, value) -> None:
        if hasattr(self.inner, "pack_traces"):
            self.inner.pack_traces = value

    def warmup(self):
        warm = getattr(self.inner, "warmup", None)
        return warm() if warm is not None else ()

    def acquire(self, fixed_mask: np.ndarray, rng) -> np.ndarray:
        self.policy.maybe_inject_in_acquire()
        return self.inner.acquire(fixed_mask, rng)


@dataclass
class ScenarioResult:
    """Outcome of one ``(mode, seed)`` chaos scenario."""

    mode: str
    seed: int
    injected: bool  #: the scheduled failure actually fired
    recovered: bool  #: the campaign produced a final result
    bitwise: bool  #: ... bitwise equal to the undisturbed run
    structured_error: Optional[str] = None  #: error type when not recovered
    orphaned_segments: List[str] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """The supervisor's contract held for this scenario.

        Injection fired, no shm orphans, and the run either recovered
        bitwise or died with a structured, attributable error.
        """
        outcome = (self.recovered and self.bitwise) or (
            not self.recovered and self.structured_error is not None
        )
        return self.injected and outcome and not self.orphaned_segments

    def row(self) -> List[str]:
        outcome = (
            "bitwise" if self.recovered and self.bitwise
            else "diverged" if self.recovered
            else f"error:{self.structured_error}"
        )
        events = "  ".join(f"{k}={v}" for k, v in self.stats.items())
        return [
            self.mode,
            str(self.seed),
            "yes" if self.injected else "NO",
            outcome,
            str(len(self.orphaned_segments)),
            "ok" if self.ok else "FAIL",
            f"{self.seconds:.1f}s",
            events,
        ]


#: Structured errors a scenario may legitimately end in: each names the
#: failing component (batch, campaign state, transport segment).
_STRUCTURED = (CampaignInterrupted,)


def _campaign_config(mode: str, seed: int, quick: bool) -> CampaignConfig:
    n_traces = 800 if quick else 2000
    transport = "shared_memory" if mode == "drop_shm" else "auto"
    return CampaignConfig(
        n_traces=n_traces,
        batch_size=100,
        noise_sigma=0.5,
        seed=seed,
        label=f"chaos-{mode}-s{seed}",
        transport=transport,
    )


def run_chaos_scenario(
    mode: str,
    seed: int = 0,
    quick: bool = True,
    n_workers: int = 2,
) -> ScenarioResult:
    """Run one failure mode against a supervised campaign.

    Worker modes run a 2-worker pool with tight watchdog budgets and
    expect in-run recovery.  Checkpoint modes interrupt the campaign at
    the injection point, damage the checkpoint that interruption wrote,
    then resume — expecting the loader to quarantine the damage and
    fall back to the previous generation.

    Returns a :class:`ScenarioResult`; never raises for in-contract
    failures (``result.ok`` carries the verdict).
    """
    if mode not in FAILURE_MODES:
        raise ValueError(f"mode must be one of {FAILURE_MODES}, got {mode!r}")
    if mode == "drop_shm" and not shared_memory_available():
        # Nothing to drop on platforms without shared memory; report an
        # explicitly skipped-but-ok scenario rather than a fake pass.
        return ScenarioResult(
            mode=mode, seed=seed, injected=True, recovered=True, bitwise=True,
            structured_error="skipped: shared_memory unavailable",
        )

    config = _campaign_config(mode, seed, quick)
    reference = run_campaign(SynthSource(), config, n_workers=1)

    t0 = time.perf_counter()
    result = None
    structured: Optional[str] = None
    with trace("chaos.scenario", mode=mode, seed=seed), \
            tempfile.TemporaryDirectory(prefix=f"chaos-{mode}-") as workdir:
        policy = ChaosPolicy(mode=mode, seed=seed, workdir=workdir)
        checkpoint = os.path.join(workdir, "campaign.npz")
        source = ChaosSource(SynthSource(), policy)
        common = dict(
            checkpoint_path=checkpoint,
            n_workers=n_workers,
            max_retries=3,
            worker_timeout_s=10.0,
            watchdog_timeout_s=3.0,
            backoff_s=0.05,
            handle_signals=False,
            chaos=policy,
        )
        try:
            if mode in CHECKPOINT_MODES:
                # Phase 1: run serially to the injection point; the
                # interruption's own flush is the save the policy damages.
                try:
                    run_campaign_supervised(
                        source,
                        config,
                        stop_after_batches=policy.inject_at_batch,
                        **{**common, "n_workers": 1},
                    )
                except CampaignInterrupted:
                    pass
                # Phase 2: resume over the damaged file.
                result = run_campaign_supervised(source, config, **common)
            else:
                result = run_campaign_supervised(source, config, **common)
        except _STRUCTURED as exc:
            structured = type(exc).__name__
        except Exception as exc:
            # Anything with campaign context counts as structured; a
            # bare pool/OS exception is a contract violation.
            from ..leakage.acquisition import CampaignBatchError
            from ..leakage.transport import TransportError

            if isinstance(exc, (CampaignBatchError, TransportError, ValueError)):
                structured = type(exc).__name__
            else:
                structured = None
                raise
        finally:
            injected = policy.injected
            set_chaos_hook(None)
        orphans = scavenge_orphans()

    seconds = time.perf_counter() - t0
    if result is None:
        outcome = ScenarioResult(
            mode=mode, seed=seed, injected=injected, recovered=False,
            bitwise=False, structured_error=structured,
            orphaned_segments=orphans, seconds=seconds,
        )
    else:
        bitwise = bool(
            np.array_equal(result.t1, reference.t1)
            and np.array_equal(result.t2, reference.t2)
            and np.array_equal(result.t3, reference.t3)
        )
        outcome = ScenarioResult(
            mode=mode,
            seed=seed,
            injected=injected,
            recovered=True,
            bitwise=bitwise,
            orphaned_segments=orphans,
            stats=result.stats.robustness_events(),
            seconds=seconds,
        )
    _LOG.info(
        "chaos scenario %s seed=%d: injected=%s recovered=%s bitwise=%s "
        "(%.2fs)",
        mode, seed, outcome.injected, outcome.recovered, outcome.bitwise,
        seconds,
    )
    return outcome


def run_chaos_matrix(
    modes: Sequence[str] = FAILURE_MODES,
    seeds: Sequence[int] = (0,),
    quick: bool = True,
) -> List[ScenarioResult]:
    """The full failure-mode x seed matrix, in deterministic order."""
    results = []
    for mode in modes:
        for seed in seeds:
            results.append(run_chaos_scenario(mode, seed=seed, quick=quick))
    return results
