"""Seeded, deterministic failure injection for campaign supervision.

A chaos run must be *reproducible*: "the campaign survived seed 7" has
to mean the same kills, hangs and corruptions happen again under seed
7.  Two rules make that possible without disturbing the statistics
under test:

1. **No batch-RNG draws.**  Injection decisions never consume from the
   per-batch generator — they are derived from the policy seed and a
   per-process call counter — so the simulated traces (and therefore
   the bitwise-equality oracle against an undisturbed run) are
   untouched.
2. **Exactly-once via the filesystem.**  Worker-side injections are
   guarded by an ``O_CREAT | O_EXCL`` flag file shared by all workers:
   whichever worker reaches the trigger first takes the flag and
   injects; retries and respawned workers find it taken and behave.
   The flag doubles as the harness's proof that the failure really
   fired.

:class:`ChaosPolicy` is picklable (plain fields only) so its bound
methods can travel into pool workers as the supervisor's
``worker_setup`` hook.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Optional

from ..leakage import transport

__all__ = ["FAILURE_MODES", "WORKER_MODES", "CHECKPOINT_MODES", "ChaosPolicy"]

#: Worker-seam injections: fire inside a pool worker's batch.
WORKER_MODES = ("kill_worker", "hang_worker", "raise_in_batch", "drop_shm")

#: Checkpoint-seam injections: fire on the checkpoint file after a save.
CHECKPOINT_MODES = ("corrupt_checkpoint", "truncate_checkpoint")

#: Every injectable failure mode, in documentation order.
FAILURE_MODES = WORKER_MODES + CHECKPOINT_MODES


def _take_flag(path: str) -> bool:
    """Atomically claim the one-shot injection flag; True for the winner."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


@dataclass
class ChaosPolicy:
    """One failure mode plus the seeded schedule that triggers it.

    Attributes:
        mode: One of :data:`FAILURE_MODES`.
        seed: Schedule seed; determines on which acquire call (worker
            modes) or checkpoint generation (checkpoint modes) the
            injection fires.
        workdir: Directory for the one-shot flag file (the harness
            points this at the scenario's temp dir).
        hang_s: How long ``hang_worker`` sleeps — far beyond any
            watchdog, never returning within a test's patience.
    """

    mode: str
    seed: int = 0
    workdir: str = "."
    hang_s: float = 120.0
    _calls: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.mode not in FAILURE_MODES:
            raise ValueError(
                f"mode must be one of {FAILURE_MODES}, got {self.mode!r}"
            )

    # -- seeded schedule ------------------------------------------------
    @property
    def trigger_call(self) -> int:
        """Worker modes: inject on this (0-based) acquire call."""
        return self.seed % 3

    @property
    def inject_at_batch(self) -> int:
        """Checkpoint modes: corrupt the save of this batch boundary."""
        return 2 + self.seed % 3

    @property
    def flag_path(self) -> str:
        return os.path.join(self.workdir, f"chaos-{self.mode}.injected")

    @property
    def injected(self) -> bool:
        """Whether the scheduled failure actually fired."""
        return os.path.exists(self.flag_path)

    # -- supervisor seams ----------------------------------------------
    def worker_setup(self) -> None:
        """Install worker-side hooks (supervisor pool initializer)."""
        if self.mode == "drop_shm":
            transport.set_chaos_hook(self._drop_segment)

    def post_checkpoint(self, path: str, next_batch: int) -> None:
        """Checkpoint seam: damage the file the save just produced."""
        if self.mode not in CHECKPOINT_MODES:
            return
        if next_batch != self.inject_at_batch:
            return
        if not _take_flag(self.flag_path):
            return
        if self.mode == "truncate_checkpoint":
            with open(path, "rb+") as f:
                f.truncate(max(0, os.path.getsize(path) // 3))
        else:  # corrupt_checkpoint: flip a byte run inside the payload
            with open(path, "rb+") as f:
                f.seek(os.path.getsize(path) // 2)
                chunk = bytearray(f.read(64))
                for k in range(len(chunk)):
                    chunk[k] ^= 0xFF
                f.seek(os.path.getsize(path) // 2)
                f.write(bytes(chunk))

    # -- worker-side injections ----------------------------------------
    def maybe_inject_in_acquire(self) -> None:
        """Called by :class:`~repro.chaos.harness.ChaosSource` per acquire.

        Only fires in pool workers (never the parent: killing the
        supervisor is outside the failure model — that case is covered
        by the hard-crash resume tests, which SIGKILL a whole campaign
        subprocess).
        """
        if self.mode not in WORKER_MODES or self.mode == "drop_shm":
            return
        import multiprocessing

        if multiprocessing.parent_process() is None:
            return
        call = self._calls
        self._calls += 1
        if call != self.trigger_call:
            return
        if not _take_flag(self.flag_path):
            return
        if self.mode == "kill_worker":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.mode == "hang_worker":
            time.sleep(self.hang_s)
        elif self.mode == "raise_in_batch":
            raise RuntimeError(
                "chaos: injected deterministic batch failure "
                f"(seed {self.seed}, call {call})"
            )

    def _drop_segment(self, name: str) -> None:
        """``drop_shm``: unlink a just-created segment exactly once."""
        if not _take_flag(self.flag_path):
            return
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:  # pragma: no cover - already gone
            return
        shm.close()
        shm.unlink()
