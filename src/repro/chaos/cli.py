"""``python -m repro chaos`` — run the chaos matrix from the shell.

Exit status 0 only when every scenario upholds the supervisor's
contract (injection fired; bitwise recovery or structured error; zero
orphaned shared-memory segments).  Intended for CI resilience jobs and
manual soak runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..eval.report import render_table, rule
from .harness import run_chaos_matrix
from .policy import FAILURE_MODES


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos", description=__doc__
    )
    parser.add_argument(
        "--mode",
        action="append",
        choices=FAILURE_MODES,
        help="failure mode(s) to run (default: all)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="first schedule seed (default 0)"
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="number of consecutive seeds per mode (soak runs)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-size campaigns instead of smoke budgets",
    )
    parser.add_argument(
        "--json", type=str, default=None, help="write results to this path"
    )
    args = parser.parse_args(argv)

    modes = tuple(args.mode) if args.mode else FAILURE_MODES
    seeds = tuple(range(args.seed, args.seed + max(1, args.seeds)))
    results = run_chaos_matrix(modes=modes, seeds=seeds, quick=not args.full)

    print(rule())
    print(f"# chaos matrix: {len(modes)} modes x {len(seeds)} seeds")
    print(rule())
    print(
        render_table(
            ["mode", "seed", "injected", "outcome", "orphans", "verdict",
             "time", "recovery events"],
            [r.row() for r in results],
        )
    )
    failures = [r for r in results if not r.ok]
    print(rule())
    print(
        f"{len(results) - len(failures)}/{len(results)} scenarios ok"
        + (f" — {len(failures)} FAILED" if failures else "")
    )
    if args.json:
        payload = {
            "schema": "chaos_matrix/v1",
            "scenarios": [
                {
                    "mode": r.mode,
                    "seed": r.seed,
                    "injected": r.injected,
                    "recovered": r.recovered,
                    "bitwise": r.bitwise,
                    "structured_error": r.structured_error,
                    "orphaned_segments": r.orphaned_segments,
                    "stats": r.stats,
                    "seconds": r.seconds,
                    "ok": r.ok,
                }
                for r in results
            ],
            "ok": not failures,
        }
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"wrote {args.json}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
