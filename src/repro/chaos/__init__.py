"""Deterministic chaos-injection harness for the campaign supervisor.

``repro.chaos`` proves the recovery claims of
:mod:`repro.leakage.supervisor` instead of asserting them: a seeded
:class:`ChaosPolicy` injects exactly one process-level failure — a
SIGKILLed worker, a hung worker, a corrupted or truncated checkpoint, a
dropped shared-memory segment, an exception mid-batch — into a running
campaign, and the harness demands either a bitwise-identical recovered
result or a structured error naming the failed component, with zero
orphaned shared-memory segments either way.

Run the matrix from the command line::

    python -m repro chaos                 # all modes, seed 0
    python -m repro chaos --mode kill_worker --seed 3
    python -m repro chaos --seeds 5       # soak: 5 seeds per mode
"""

from .policy import CHECKPOINT_MODES, FAILURE_MODES, WORKER_MODES, ChaosPolicy
from .harness import (
    ChaosSource,
    ScenarioResult,
    SynthSource,
    run_chaos_matrix,
    run_chaos_scenario,
)

__all__ = [
    "FAILURE_MODES",
    "WORKER_MODES",
    "CHECKPOINT_MODES",
    "ChaosPolicy",
    "ChaosSource",
    "SynthSource",
    "ScenarioResult",
    "run_chaos_scenario",
    "run_chaos_matrix",
]
