"""Key-recovery attacks against the DES engines (CPA, orders 1 and 2).

The executable version of the paper's security argument: the
unprotected core falls to first-order CPA within hundreds of traces;
the masked cores resist it, and the adversary is forced into
second-order attacks whose cost explodes with noise (Sec. I / VII-A).
"""

from .cpa import (
    AttackResult,
    correlation_matrix,
    first_order_cpa,
    second_order_cpa,
    true_subkey,
)
from .models import (
    hamming_weight4,
    register_hd_hypotheses,
    round1_state,
    sbox_output_hypotheses,
)
from .campaigns import AttackCampaign, acquire_known_plaintext, attack_engine

__all__ = [
    "AttackResult",
    "correlation_matrix",
    "first_order_cpa",
    "second_order_cpa",
    "true_subkey",
    "hamming_weight4",
    "register_hd_hypotheses",
    "round1_state",
    "sbox_output_hypotheses",
    "AttackCampaign",
    "acquire_known_plaintext",
    "attack_engine",
]
