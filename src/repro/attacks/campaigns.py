"""End-to-end key-recovery campaigns against the DES engines.

Acquisition + attack in one call, with the same batching discipline as
the TVLA campaigns: known random plaintexts, a fixed secret key, traces
from the glitch simulator (plus Gaussian measurement noise), then CPA
per S-box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..des.bits import int_to_bitarray
from ..des.engines import MaskedDESNetlistEngine
from ..des.unprotected import UnprotectedDESEngine
from ..leakage.prng import RandomnessSource
from .cpa import AttackResult, first_order_cpa, second_order_cpa
from .models import register_hd_hypotheses, sbox_output_hypotheses

__all__ = ["acquire_known_plaintext", "AttackCampaign", "attack_engine"]


def acquire_known_plaintext(
    engine,
    key: int,
    n_traces: int,
    seed: int = 0,
    noise_sigma: float = 1.0,
    batch_size: int = 2048,
    masked: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Simulate a known-plaintext acquisition.

    Returns:
        ``(plaintexts (n,) uint64, traces (n, samples))``.
    """
    rng = np.random.default_rng(seed)
    pts = np.zeros(n_traces, dtype=np.uint64)
    traces = np.zeros((n_traces, engine.n_samples), dtype=np.float32)
    done = 0
    while done < n_traces:
        n = min(batch_size, n_traces - done)
        batch_pts = rng.integers(0, 1 << 63, size=n, dtype=np.uint64)
        batch_pts = (batch_pts << np.uint64(1)) | rng.integers(
            0, 2, size=n, dtype=np.uint64
        )
        pt_bits = int_to_bitarray(batch_pts, 64)
        key_bits = int_to_bitarray(np.uint64(key), 64, n)
        if masked:
            prng = RandomnessSource(int(rng.integers(0, 2**63)))
            _, power = engine.run_batch(pt_bits, key_bits, prng, record=True)
        else:
            _, power = engine.run_batch(pt_bits, key_bits, record=True)
        if noise_sigma > 0:
            power = power + rng.normal(0, noise_sigma, power.shape).astype(
                np.float32
            )
        pts[done : done + n] = batch_pts
        traces[done : done + n] = power
        done += n
    return pts, traces


@dataclass
class AttackCampaign:
    """Results of attacking all requested S-boxes of one engine."""

    label: str
    n_traces: int
    results: List[AttackResult]

    @property
    def n_recovered(self) -> int:
        return sum(1 for r in self.results if r.success)

    @property
    def mean_rank(self) -> float:
        return float(np.mean([r.rank_of_correct for r in self.results]))

    def render(self) -> str:
        lines = [f"{self.label} ({self.n_traces} traces):"]
        lines += ["  " + r.row() for r in self.results]
        lines.append(
            f"  recovered {self.n_recovered}/{len(self.results)} subkeys, "
            f"mean rank {self.mean_rank:.1f}"
        )
        return "\n".join(lines)


def attack_engine(
    kind: str,
    key: int,
    n_traces: int,
    sboxes: Sequence[int] = range(8),
    order: int = 1,
    seed: int = 0,
    noise_sigma: float = 1.0,
    engine=None,
    window_rounds: Optional[Tuple[int, int]] = (0, 2),
) -> AttackCampaign:
    """Acquire and attack.

    Args:
        kind: ``"unprotected"``, ``"ff"`` or ``"pd"``.
        order: 1 = classical CPA, 2 = centered-square second-order.
        window_rounds: Restrict samples to this round range (the round-1
            S-box activity is what the hypotheses model).
        engine: Optional pre-built engine (reuse between campaigns).
    """
    masked = kind != "unprotected"
    if engine is None:
        engine = (
            UnprotectedDESEngine()
            if kind == "unprotected"
            else MaskedDESNetlistEngine(kind)
        )
    pts, traces = acquire_known_plaintext(
        engine, key, n_traces, seed=seed, noise_sigma=noise_sigma,
        masked=masked,
    )
    window = None
    if window_rounds is not None:
        per_round = engine.cycles_per_round * engine.period_ps / engine.bin_ps
        window = (
            int(window_rounds[0] * per_round),
            min(int(window_rounds[1] * per_round) + 1, engine.n_samples),
        )
    attack = first_order_cpa if order == 1 else second_order_cpa
    model = register_hd_hypotheses if kind == "unprotected" else sbox_output_hypotheses
    results = [
        attack(traces, pts, key, sbox, model, window=window)
        for sbox in sboxes
    ]
    return AttackCampaign(
        label=f"{kind} engine, order-{order} CPA",
        n_traces=n_traces,
        results=results,
    )
