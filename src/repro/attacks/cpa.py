"""Correlation power analysis (first- and second-order).

The paper argues its masked cores force the adversary into higher-order
attacks, whose cost grows exponentially with noise.  This module makes
that argument executable:

* :func:`first_order_cpa` — classical CPA: Pearson correlation between
  a per-guess leakage hypothesis and the traces; breaks the
  *unprotected* engine with a few hundred simulated traces and fails
  against the masked engines;
* :func:`second_order_cpa` — univariate second-order CPA with
  centered-square preprocessing; because the two shares are processed
  in parallel, the per-sample variance depends on the unshared value,
  which is exactly what the paper's second-order t-tests detect
  (|t2| up to 60) and what this attack exploits for key recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

__all__ = [
    "correlation_matrix",
    "AttackResult",
    "first_order_cpa",
    "second_order_cpa",
    "true_subkey",
]


def correlation_matrix(traces: np.ndarray, hyps: np.ndarray) -> np.ndarray:
    """Pearson correlation of every hypothesis row with every sample.

    Args:
        traces: (n, s) power matrix.
        hyps: (g, n) hypothesis matrix (one row per key guess).

    Returns:
        (g, s) correlation coefficients.
    """
    t = traces.astype(np.float64)
    h = hyps.astype(np.float64)
    tc = t - t.mean(axis=0, keepdims=True)
    hc = h - h.mean(axis=1, keepdims=True)
    num = hc @ tc  # (g, s)
    t_norm = np.sqrt((tc * tc).sum(axis=0))  # (s,)
    h_norm = np.sqrt((hc * hc).sum(axis=1))  # (g,)
    denom = np.outer(h_norm, t_norm)
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = num / denom
    return np.where(denom > 0, corr, 0.0)


@dataclass
class AttackResult:
    """Outcome of a CPA attack on one S-box subkey."""

    sbox: int
    scores: np.ndarray  # (64,) max |corr| per guess
    correct_guess: int

    @property
    def best_guess(self) -> int:
        return int(np.argmax(self.scores))

    @property
    def rank_of_correct(self) -> int:
        """0 = the correct subkey wins."""
        order = np.argsort(-self.scores)
        return int(np.where(order == self.correct_guess)[0][0])

    @property
    def success(self) -> bool:
        return self.best_guess == self.correct_guess

    def row(self) -> str:
        return (
            f"S-box {self.sbox}: best guess {self.best_guess:2d} "
            f"(true {self.correct_guess:2d}), rank {self.rank_of_correct:2d}, "
            f"peak |corr| {self.scores[self.best_guess]:.3f} "
            f"[{'RECOVERED' if self.success else 'resisted'}]"
        )


def true_subkey(key: int, sbox: int) -> int:
    """The actual 6-bit round-1 subkey chunk for this S-box."""
    from ..des.keyschedule import round_keys

    k1 = round_keys(key)[0]
    return (k1 >> (42 - 6 * sbox)) & 0x3F


def _attack(
    traces: np.ndarray,
    hyps: np.ndarray,
    sbox: int,
    key: int,
    window: Optional[Tuple[int, int]],
) -> AttackResult:
    if window is not None:
        traces = traces[:, window[0] : window[1]]
    corr = correlation_matrix(traces, hyps)
    scores = np.max(np.abs(corr), axis=1)
    return AttackResult(
        sbox=sbox, scores=scores, correct_guess=true_subkey(key, sbox)
    )


def first_order_cpa(
    traces: np.ndarray,
    plaintexts: np.ndarray,
    key: int,
    sbox: int,
    model: Callable[[np.ndarray, int], np.ndarray],
    window: Optional[Tuple[int, int]] = None,
) -> AttackResult:
    """Classical CPA on one S-box subkey.

    Args:
        traces: (n, s) power matrix.
        plaintexts: (n,) uint64 plaintexts (known to the attacker).
        key: The true key (only used to mark the correct guess).
        sbox: Target S-box 0..7.
        model: Hypothesis generator, e.g.
            :func:`repro.attacks.models.register_hd_hypotheses`.
        window: Optional sample range to restrict the attack to.
    """
    hyps = model(plaintexts, sbox)
    return _attack(traces, hyps, sbox, key, window)


def second_order_cpa(
    traces: np.ndarray,
    plaintexts: np.ndarray,
    key: int,
    sbox: int,
    model: Callable[[np.ndarray, int], np.ndarray],
    window: Optional[Tuple[int, int]] = None,
) -> AttackResult:
    """Univariate second-order CPA (centered squares).

    Each sample is replaced by its squared deviation from the sample
    mean; with both shares processed in parallel, the variance of the
    power at the S-box output sampling instant depends on the unshared
    output value, so the squared trace correlates with the model.
    """
    if window is not None:
        traces = traces[:, window[0] : window[1]]
        window = None
    t = traces.astype(np.float64)
    centered = t - t.mean(axis=0, keepdims=True)
    pre = centered * centered
    hyps = model(plaintexts, sbox)
    return _attack(pre, hyps, sbox, key, window)
