"""Leakage models for correlation power analysis on DES.

A CPA attack guesses one 6-bit round-1 subkey chunk at a time (64
hypotheses per S-box) and predicts, per trace, a value that should
correlate with the power if the guess is right.  Two classical models:

* **Hamming weight** of the S-box output (combinational switching of
  the S-box cone),
* **Hamming distance** of the four R-register bits the S-box drives
  (the register update ``R0 -> L0 ^ P(Sout)``) — the dominant model for
  register-based round implementations.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..des.bits import int_to_bitarray, permute_rows
from ..des.reference import _SBOX_FLAT
from ..des.tables import E, IP, P

__all__ = [
    "round1_state",
    "sbox_output_hypotheses",
    "register_hd_hypotheses",
    "hamming_weight4",
]

_HW4 = np.array([bin(v).count("1") for v in range(16)], dtype=np.float64)


def hamming_weight4(values: np.ndarray) -> np.ndarray:
    """HW of 4-bit values."""
    return _HW4[values]


def round1_state(plaintexts: np.ndarray):
    """(L0, R0, E(R0)) bit matrices for a batch of plaintexts.

    Args:
        plaintexts: (n,) uint64 plaintext blocks.

    Returns:
        ``(l0, r0, er0)`` boolean matrices of shapes (32,n), (32,n),
        (48,n).
    """
    bits = int_to_bitarray(plaintexts.astype(np.uint64), 64)
    st = permute_rows(bits, IP)
    l0, r0 = st[:32], st[32:]
    return l0, r0, permute_rows(r0, E)


def _sbox_out_values(
    er0: np.ndarray, sbox: int, guess: int
) -> np.ndarray:
    """(n,) 4-bit S-box outputs of round 1 under a subkey guess."""
    chunk = er0[6 * sbox : 6 * sbox + 6]
    idx = np.zeros(chunk.shape[1], dtype=np.int64)
    for b in range(6):
        bit = chunk[b] ^ bool((guess >> (5 - b)) & 1)
        idx = (idx << 1) | bit.astype(np.int64)
    return _SBOX_FLAT[sbox][idx].astype(np.int64)


def sbox_output_hypotheses(
    plaintexts: np.ndarray, sbox: int
) -> np.ndarray:
    """HW(Sbox out) for all 64 subkey guesses: (64, n) float matrix."""
    _, _, er0 = round1_state(plaintexts)
    return np.stack(
        [hamming_weight4(_sbox_out_values(er0, sbox, g)) for g in range(64)]
    )


def register_hd_hypotheses(
    plaintexts: np.ndarray, sbox: int
) -> np.ndarray:
    """HD of the R-register bits driven by this S-box, 64 guesses.

    ``R_new[j] = L0[j] ^ P(Sout)[j]`` against ``R_old[j] = R0[j]`` for
    the four positions ``j`` with ``P[j]`` inside the S-box's output
    nibble.
    """
    l0, r0, er0 = round1_state(plaintexts)
    # output bit positions (1-based within the 32-bit f output)
    out_bits = [4 * sbox + 1 + b for b in range(4)]
    positions = [j for j in range(32) if P[j] in out_bits]
    # P[j] maps f-output bit P[j] to R position j
    hyps = np.zeros((64, plaintexts.shape[0]), dtype=np.float64)
    for g in range(64):
        vals = _sbox_out_values(er0, sbox, g)
        hd = np.zeros(plaintexts.shape[0], dtype=np.float64)
        for j in positions:
            # which bit of the nibble is f-output bit P[j]?
            bit_in_nibble = P[j] - (4 * sbox + 1)  # 0 = MSB
            f_bit = (vals >> (3 - bit_in_nibble)) & 1
            hd += (l0[j] ^ r0[j] ^ f_bit.astype(bool)).astype(np.float64)
        hyps[g] = hd
    return hyps
