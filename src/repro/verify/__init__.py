"""Exact glitch-extended probing verification (``python -m repro verify``).

The statistical stack (:mod:`repro.leakage`) *samples* a gadget's power
side channel; this subsystem *enumerates* it.  Every share/mask input
assignment is swept through the event-driven simulator, every wire's
full transient — its glitch-extended probe — is tabulated jointly with
the unshared secrets, and first-order security is decided by an exact
integer independence test: no floats, no thresholds, no trace budget.
Leaking probes come with concrete counterexamples (secret pair, mask
assignment, transient trace) exportable to VCD.

Entry points:

* :func:`verify` — verdict for one :class:`GadgetSpec`;
* :data:`PRESETS` / :func:`preset_spec` — the paper's gadget zoo;
* :func:`verify_fault_sweep` — exact sibling of the TVLA margin-erosion
  sweep (leaking-probe counts per delay-variation sigma);
* :func:`cross_validate` — agreement harness against the TVLA oracle.

See ``docs/verification.md`` for the theory and the budget model.
"""

from .crossval import CrossValidation, SpecTraceSource, cross_validate
from .distributions import ProbeDistribution, ProbeTabulation, tabulate_probes
from .presets import PRESETS, Preset, pd_bank_spec, preset_spec
from .probes import (
    MAX_INPUT_BITS,
    GadgetSpec,
    VerificationBudgetError,
    iter_probe_chunks,
    witness_simulator,
)
from .report import (
    LeakingProbe,
    VerificationResult,
    VerifyFaultSweepResult,
    VerifySweepPoint,
    counterexample_vcd,
    verify,
    verify_fault_sweep,
)

__all__ = [
    "GadgetSpec",
    "VerificationBudgetError",
    "MAX_INPUT_BITS",
    "iter_probe_chunks",
    "witness_simulator",
    "ProbeDistribution",
    "ProbeTabulation",
    "tabulate_probes",
    "LeakingProbe",
    "VerificationResult",
    "verify",
    "counterexample_vcd",
    "VerifySweepPoint",
    "VerifyFaultSweepResult",
    "verify_fault_sweep",
    "Preset",
    "PRESETS",
    "preset_spec",
    "pd_bank_spec",
    "SpecTraceSource",
    "CrossValidation",
    "cross_validate",
]
