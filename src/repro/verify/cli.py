"""Command line for the exact verifier: ``python -m repro verify``.

Examples::

    python -m repro verify --list-presets
    python -m repro verify --preset secand2_pd --quick
    python -m repro verify --preset secand2_pd_y1_early --vcd leak.vcd
    python -m repro verify --all --json VERIFY_report.json
    python -m repro verify --fault-sweep --sigmas 0,300,600

Exit status is 0 when every verified gadget matches its paper-predicted
verdict (``Preset.expect_secure``), 1 on any mismatch, 2 on usage
errors — so CI can gate on "the verifier still reproduces the paper's
qualitative results" rather than merely "the verifier ran".
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .presets import PRESETS, preset_spec
from .probes import MAX_INPUT_BITS, VerificationBudgetError
from .report import counterexample_vcd, verify, verify_fault_sweep

_RULE = "-" * 64


def _parse_sigmas(text: str) -> List[float]:
    try:
        return [float(s) for s in text.split(",") if s.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--sigmas wants a comma-separated list of numbers, got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro verify",
        description="Exact first-order glitch-extended probing verification",
    )
    parser.add_argument(
        "--preset",
        action="append",
        default=[],
        metavar="NAME",
        help="gadget preset to verify (repeatable; see --list-presets)",
    )
    parser.add_argument(
        "--all", action="store_true", help="verify every preset"
    )
    parser.add_argument(
        "--list-presets",
        action="store_true",
        help="list presets with their expected verdicts",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke budgets (smaller fault-sweep bank and sigma ladder)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write a machine-readable report to PATH",
    )
    parser.add_argument(
        "--vcd",
        metavar="PATH",
        help="dump the first leaking probe's counterexample waveform",
    )
    parser.add_argument(
        "--fault-sweep",
        action="store_true",
        help="exact delay-variation sweep on the secAND2-PD bank "
        "(leaking-probe counts vs static violations per sigma)",
    )
    parser.add_argument(
        "--sigmas",
        type=_parse_sigmas,
        default=None,
        metavar="CSV",
        help="fault-sweep sigma ladder in ps (default 0,150,300,450,600)",
    )
    parser.add_argument(
        "--max-input-bits",
        type=int,
        default=MAX_INPUT_BITS,
        metavar="N",
        help=f"enumeration budget in input bits (default {MAX_INPUT_BITS})",
    )
    return parser


def _list_presets() -> None:
    print("available presets:")
    width = max(len(name) for name in PRESETS)
    for preset in PRESETS.values():
        expect = {True: "secure", False: "leaks ", None: "  ?   "}[
            preset.expect_secure
        ]
        print(f"  {preset.name:<{width}}  [{expect}]  {preset.note}")


def _run_fault_sweep(args, report: dict) -> int:
    kwargs = {"max_input_bits": args.max_input_bits}
    if args.sigmas is not None:
        kwargs["sigmas"] = args.sigmas
    elif args.quick:
        kwargs["sigmas"] = [0, 300, 600]
    if args.quick:
        kwargs.update(n_instances=2, n_luts=1)
    sweep = verify_fault_sweep(**kwargs)
    print(sweep.render())
    report["fault_sweep"] = sweep.to_json_dict()
    if not sweep.clean_at_zero:
        print("FAIL: unfaulted bank should be clean at sigma=0")
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_presets:
        _list_presets()
        return 0

    names = list(PRESETS) if args.all else list(args.preset)
    if not names and not args.fault_sweep:
        parser.print_usage(sys.stderr)
        print(
            "error: pick --preset NAME, --all, --fault-sweep or "
            "--list-presets",
            file=sys.stderr,
        )
        return 2

    report: dict = {"schema": "verify_cli/v2", "results": []}
    status = 0
    vcd_written = False
    t0 = time.time()
    for name in names:
        if name not in PRESETS:
            print(f"unknown preset {name!r}; use --list-presets", file=sys.stderr)
            return 2
        preset = PRESETS[name]
        print(_RULE)
        try:
            result = verify(preset_spec(name), max_input_bits=args.max_input_bits)
        except VerificationBudgetError as err:
            print(f"{name}: SKIPPED ({err})")
            report["results"].append({"gadget": name, "skipped": str(err)})
            continue
        print(result.render())
        matched = (
            preset.expect_secure is None
            or result.secure == preset.expect_secure
        )
        if not matched:
            expected = "secure" if preset.expect_secure else "leaky"
            print(f"  MISMATCH: paper predicts {expected}")
            status = 1
        entry = result.to_json_dict()
        entry["expect_secure"] = preset.expect_secure
        entry["matched"] = matched
        report["results"].append(entry)
        if args.vcd and result.leaks and not vcd_written:
            with open(args.vcd, "w") as fh:
                fh.write(counterexample_vcd(preset_spec(name), result.leaks[0]))
            print(f"  counterexample VCD -> {args.vcd}")
            vcd_written = True

    if args.fault_sweep:
        print(_RULE)
        status = max(status, _run_fault_sweep(args, report))

    if names:
        print(_RULE)
        n_ok = sum(1 for r in report["results"] if r.get("matched"))
        print(
            f"{n_ok}/{len(names)} verdicts match the paper "
            f"[{time.time() - t0:.1f}s]"
        )
    if args.vcd and not vcd_written:
        print(f"no leaking probe found; {args.vcd} not written")

    # v2 summary header: lets CI gate on the artifact without digging
    # through per-preset entries.
    report["ok"] = status == 0
    report["n_presets"] = len(names)
    report["n_matched"] = sum(1 for r in report["results"] if r.get("matched"))
    report["elapsed_s"] = round(time.time() - t0, 2)

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"report -> {args.json}")
    return status


if __name__ == "__main__":
    sys.exit(main())
