"""Exact probe-distribution tabulation and independence testing.

For each wire the verifier tabulates the joint distribution of

    (glitch-extended probe trace, unshared secret value)

over *all* input assignments — shares and fresh masks enumerated
exhaustively (:mod:`repro.verify.probes`).  Because every secret's
shares XOR to its value and all other bits are free, each secret value
is hit by exactly ``2^(k - n_secrets)`` assignments: the secret classes
have identical size.  The probe is therefore independent of the
secrets *iff the raw integer counts per trace are equal across secret
values* — an exact test on integers, no floats, no estimation error.

First-order glitch-extended probing security holds iff every single
wire passes this test (higher orders would take tuples of wires; the
paper's gadgets only claim first order).

The trace observation is canonical: the tuple of ``(time, value)``
change points the wire actually takes.  Potential event instants where
a given assignment does not toggle are invisible to the adversary and
are dropped from the key, which also makes the key independent of
which enumeration chunk simulated the assignment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .probes import (
    MAX_INPUT_BITS,
    GadgetSpec,
    ProbeChunk,
    iter_probe_chunks,
)

__all__ = ["TraceKey", "ProbeDistribution", "ProbeTabulation", "tabulate_probes"]

#: Canonical probe observation: ordered ``(time_ps, value)`` change
#: points of one wire under one assignment.
TraceKey = Tuple[Tuple[float, int], ...]


@dataclass
class ProbeDistribution:
    """Joint (trace, secret) counts of one wire's probe.

    Attributes:
        wire: Wire id.
        counts: trace observation -> per-secret-value assignment counts
            (length ``2^n_secrets`` integer arrays).
        witnesses: ``(trace, secret_value)`` -> global index of the
            first assignment exhibiting that pair (counterexample
            material).
    """

    wire: int
    counts: Dict[TraceKey, np.ndarray] = field(default_factory=dict)
    witnesses: Dict[Tuple[TraceKey, int], int] = field(default_factory=dict)

    @property
    def independent(self) -> bool:
        """Exact independence: equal counts across secret values for
        every observable trace."""
        return all(int(c.max()) == int(c.min()) for c in self.counts.values())

    @property
    def max_count_gap(self) -> int:
        """Largest per-trace count imbalance across secret values."""
        if not self.counts:
            return 0
        return max(int(c.max()) - int(c.min()) for c in self.counts.values())

    def worst_trace(self) -> Optional[TraceKey]:
        """The observation with the largest count imbalance."""
        if not self.counts:
            return None
        return max(
            self.counts, key=lambda k: int(self.counts[k].max()) - int(self.counts[k].min())
        )


@dataclass
class ProbeTabulation:
    """Exact joint distributions of every probed wire.

    Attributes:
        spec: The verified gadget.
        n_assignments: ``2^k`` assignments enumerated.
        class_size: Assignments per secret value
            (``n_assignments / 2^n_secrets``).
        probes: wire id -> :class:`ProbeDistribution`.
        elapsed_s: Wall time of the enumeration.
    """

    spec: GadgetSpec
    n_assignments: int
    class_size: int
    probes: Dict[int, ProbeDistribution]
    elapsed_s: float = 0.0

    @property
    def leaking_wires(self) -> List[int]:
        return [w for w, d in sorted(self.probes.items()) if not d.independent]

    @property
    def secure(self) -> bool:
        return not self.leaking_wires


def _accumulate(
    probes: Dict[int, ProbeDistribution],
    chunk: ProbeChunk,
    wires: Sequence[int],
    n_secret_values: int,
) -> None:
    """Fold one chunk's events into the per-wire joint counts.

    Per wire, the chunk's potential events form an ``(n_traces, E + 1)``
    integer matrix: symbol 0 = no transition, ``2 + value`` = transition
    to ``value``, plus the packed secret as the last column.  One
    ``np.unique`` over rows yields each distinct (trace, secret) pair
    with its count and first-occurrence index — the entire tabulation
    for the chunk in a handful of vectorised ops per wire.
    """
    by_wire: Dict[int, List[Tuple[float, np.ndarray, np.ndarray]]] = {}
    for t, w, toggled, new in chunk.events:
        by_wire.setdefault(w, []).append((t, toggled, new))
    for w in wires:
        evs = by_wire.get(w, ())
        n_events = len(evs)
        mat = np.zeros((chunk.n_traces, n_events + 1), dtype=np.int64)
        for e, (_, toggled, new) in enumerate(evs):
            mat[:, e] = np.where(toggled, 2 + new.astype(np.int64), 0)
        mat[:, n_events] = chunk.secret_index
        uniq, first, cnt = np.unique(
            mat, axis=0, return_index=True, return_counts=True
        )
        times = [t for t, _, _ in evs]
        dist = probes[w]
        for row, fi, ct in zip(uniq, first, cnt):
            key: TraceKey = tuple(
                (times[e], int(row[e]) - 2)
                for e in range(n_events)
                if row[e]
            )
            s = int(row[n_events])
            arr = dist.counts.get(key)
            if arr is None:
                arr = np.zeros(n_secret_values, dtype=np.int64)
                dist.counts[key] = arr
            arr[s] += int(ct)
            wk = (key, s)
            if wk not in dist.witnesses:
                dist.witnesses[wk] = chunk.base + int(fi)


def tabulate_probes(
    spec: GadgetSpec,
    wires: Optional[Sequence[int]] = None,
    chunk_size: int = 1 << 14,
    max_input_bits: int = MAX_INPUT_BITS,
) -> ProbeTabulation:
    """Enumerate the gadget and tabulate every wire's probe exactly.

    Args:
        spec: Gadget under verification.
        wires: Wire ids to probe (default: every wire in the circuit —
            the adversary may probe any net).
        chunk_size: Assignments per batched simulation.
        max_input_bits: Enumeration budget; beyond it a
            :class:`~repro.verify.probes.VerificationBudgetError` is
            raised.
    """
    t0 = time.perf_counter()
    spec.validate()
    probe_wires = (
        list(range(spec.circuit.n_wires)) if wires is None else [int(w) for w in wires]
    )
    probes = {w: ProbeDistribution(wire=w) for w in probe_wires}
    n_secret_values = spec.n_secret_values
    for chunk in iter_probe_chunks(
        spec, chunk_size=chunk_size, max_input_bits=max_input_bits
    ):
        _accumulate(probes, chunk, probe_wires, n_secret_values)
    n_assignments = 1 << spec.n_input_bits
    return ProbeTabulation(
        spec=spec,
        n_assignments=n_assignments,
        class_size=n_assignments >> len(spec.secrets),
        probes=probes,
        elapsed_s=time.perf_counter() - t0,
    )
