"""Verification results, counterexamples and the exact fault sweep.

:func:`verify` is the subsystem's front door: enumerate, tabulate,
test, and package the verdict as a :class:`VerificationResult` whose
leaking probes each carry a *concrete counterexample* — the secret pair
whose trace distributions differ, a mask assignment exhibiting the
biased trace, and the transient trace itself.  The witness can be
re-simulated into a VCD (:func:`counterexample_vcd`) to watch the
offending glitch in a waveform viewer.

:func:`verify_fault_sweep` is the exact-counting sibling of
:func:`repro.faults.sweep.margin_erosion_sweep`: the same seeded
delay-variation ladder (common random numbers), but each rung is judged
by the exact verifier — leaking-probe *counts* instead of TVLA
t-scores — next to the static checker's violation counts, so the
"margin collapses -> Table I leak appears" story needs no sampling
noise at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.safety import count_violations, min_ordering_margin
from .distributions import (
    ProbeTabulation,
    TraceKey,
    tabulate_probes,
)
from .probes import MAX_INPUT_BITS, GadgetSpec, witness_simulator

__all__ = [
    "LeakingProbe",
    "VerificationResult",
    "verify",
    "counterexample_vcd",
    "VerifySweepPoint",
    "VerifyFaultSweepResult",
    "verify_fault_sweep",
]


def _render_trace(trace: TraceKey) -> str:
    if not trace:
        return "(no transition)"
    return " -> ".join(f"t={t:g}:{v}" for t, v in trace)


@dataclass(frozen=True)
class LeakingProbe:
    """One wire whose glitch-extended probe depends on the secrets.

    The counterexample reads: under secrets ``secret_hi`` the trace
    ``trace`` occurs ``count_hi`` times out of ``class_size`` mask
    assignments, under ``secret_lo`` only ``count_lo`` times — a
    distinguisher with advantage ``bias``.  ``witness`` is a complete
    input assignment (shares and masks) that exhibits the trace under
    ``secret_hi``.
    """

    wire: int
    wire_name: str
    trace: TraceKey
    secret_hi: Dict[str, int]
    secret_lo: Dict[str, int]
    count_hi: int
    count_lo: int
    class_size: int
    witness: Dict[str, int]

    @property
    def bias(self) -> float:
        """Probability gap of the trace between the two secret values."""
        return (self.count_hi - self.count_lo) / self.class_size

    def describe(self) -> str:
        hi = " ".join(f"{k}={v}" for k, v in self.secret_hi.items())
        lo = " ".join(f"{k}={v}" for k, v in self.secret_lo.items())
        wit = " ".join(f"{k}={v}" for k, v in self.witness.items())
        return (
            f"{self.wire_name}: trace {_render_trace(self.trace)} has "
            f"P={self.count_hi}/{self.class_size} under ({hi}) vs "
            f"P={self.count_lo}/{self.class_size} under ({lo}) "
            f"[bias {self.bias:+.3f}]; witness {wit}"
        )

    def to_json_dict(self) -> dict:
        return {
            "wire": self.wire,
            "wire_name": self.wire_name,
            "trace": [[t, v] for t, v in self.trace],
            "secret_hi": self.secret_hi,
            "secret_lo": self.secret_lo,
            "count_hi": self.count_hi,
            "count_lo": self.count_lo,
            "class_size": self.class_size,
            "bias": self.bias,
            "witness": self.witness,
        }


@dataclass
class VerificationResult:
    """Exact first-order glitch-extended probing verdict of one gadget."""

    gadget: str
    n_input_bits: int
    n_assignments: int
    secrets: Tuple[str, ...]
    n_probes: int
    class_size: int
    leaks: List[LeakingProbe] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def secure(self) -> bool:
        return not self.leaks

    @property
    def n_leaking(self) -> int:
        return len(self.leaks)

    def render(self, max_leaks: int = 8) -> str:
        verdict = (
            "SECURE (first-order, glitch-extended)"
            if self.secure
            else f"LEAKS ({self.n_leaking} probes)"
        )
        lines = [
            f"{self.gadget}: {verdict}",
            f"  probes checked: {self.n_probes}  assignments: "
            f"{self.n_assignments} (2^{self.n_input_bits})  "
            f"secrets: {', '.join(self.secrets)}  "
            f"[{self.elapsed_s:.2f}s]",
        ]
        for probe in self.leaks[:max_leaks]:
            lines.append(f"  leak: {probe.describe()}")
        if self.n_leaking > max_leaks:
            lines.append(f"  ... and {self.n_leaking - max_leaks} more")
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "schema": "verify_report/v1",
            "gadget": self.gadget,
            "secure": self.secure,
            "n_input_bits": self.n_input_bits,
            "n_assignments": self.n_assignments,
            "secrets": list(self.secrets),
            "n_probes": self.n_probes,
            "n_leaking": self.n_leaking,
            "class_size": self.class_size,
            "elapsed_s": self.elapsed_s,
            "leaks": [p.to_json_dict() for p in self.leaks],
        }


def _leaking_probe(
    tab: ProbeTabulation, wire: int
) -> LeakingProbe:
    """Extract the strongest counterexample for one leaking wire."""
    spec = tab.spec
    dist = tab.probes[wire]
    trace = dist.worst_trace()
    assert trace is not None
    counts = dist.counts[trace]
    s_hi = int(counts.argmax())
    s_lo = int(counts.argmin())
    witness_idx = dist.witnesses[(trace, s_hi)]
    return LeakingProbe(
        wire=wire,
        wire_name=spec.circuit.wire_name(wire),
        trace=trace,
        secret_hi=spec.decode_secret(s_hi),
        secret_lo=spec.decode_secret(s_lo),
        count_hi=int(counts[s_hi]),
        count_lo=int(counts[s_lo]),
        class_size=tab.class_size,
        witness=spec.decode_assignment(witness_idx),
    )


def verify(
    spec: GadgetSpec,
    wires: Optional[Sequence[int]] = None,
    chunk_size: int = 1 << 14,
    max_input_bits: int = MAX_INPUT_BITS,
) -> VerificationResult:
    """Exact first-order glitch-extended probing verification.

    Enumerates all share/mask assignments, derives every wire's
    glitch-extended probe, tests each probe's exact independence of the
    secrets, and returns the verdict with counterexamples for every
    leaking probe.
    """
    tab = tabulate_probes(
        spec, wires=wires, chunk_size=chunk_size, max_input_bits=max_input_bits
    )
    leaks = [_leaking_probe(tab, w) for w in tab.leaking_wires]
    return VerificationResult(
        gadget=spec.name,
        n_input_bits=spec.n_input_bits,
        n_assignments=tab.n_assignments,
        secrets=spec.secret_names,
        n_probes=len(tab.probes),
        class_size=tab.class_size,
        leaks=leaks,
        elapsed_s=tab.elapsed_s,
    )


def counterexample_vcd(
    spec: GadgetSpec,
    probe: LeakingProbe,
    wires: Optional[Sequence[str]] = None,
) -> str:
    """VCD of the witness assignment's transient activity.

    Re-simulates the leaking probe's witness scalar-exactly and dumps
    the waveforms; the leaking wire is always included so the
    counterexample glitch is front and centre in the viewer.
    """
    from ..sim.vcd import to_vcd

    sim = witness_simulator(spec, probe.witness)
    if wires is not None:
        wires = list(dict.fromkeys([probe.wire_name, *wires]))
    return to_vcd(sim, wires=wires)


# ----------------------------------------------------------------------
# exact fault sweep (satellite of the faults subsystem)
# ----------------------------------------------------------------------
@dataclass
class VerifySweepPoint:
    """One delay-variation sigma judged by the exact verifier."""

    sigma_ps: float
    n_leaking: int
    leaking_wires: Tuple[str, ...]
    violations: Dict[str, int]
    min_margin_ps: Optional[float]

    @property
    def statically_safe(self) -> bool:
        return not any(self.violations.values())

    @property
    def leaks(self) -> bool:
        return self.n_leaking > 0


@dataclass
class VerifyFaultSweepResult:
    """Sigma vs exact leaking-probe count vs static violation count.

    The static checker predicts the Table I leak from arrival times;
    the verifier *proves* it from distributions.  On a from-reset
    evaluation the two agree wherever a ``y1-not-last`` margin is
    decisively broken; hairline margins (within one gate delay) can be
    statically flagged yet exactly tie-free — which is precisely why
    the exact count is worth having next to the t-score.
    """

    gadget: str
    points: List[VerifySweepPoint]
    fault_seed: int
    elapsed_s: float = 0.0

    @property
    def clean_at_zero(self) -> bool:
        p = self.points[0]
        return p.sigma_ps == 0 and not p.leaks and p.statically_safe

    @property
    def onset_sigma_ps(self) -> Optional[float]:
        """Smallest swept sigma with at least one exact leaking probe."""
        for p in self.points:
            if p.leaks:
                return p.sigma_ps
        return None

    @property
    def monotone_counts(self) -> bool:
        """Leak counts never decrease along the (common-random-numbers)
        sigma ladder once leakage sets in."""
        counts = [p.n_leaking for p in self.points]
        return all(b >= a for a, b in zip(counts, counts[1:]))

    def render(self) -> str:
        lines = [
            f"Exact fault sweep — {self.gadget} "
            f"(fault seed {self.fault_seed}, [{self.elapsed_s:.1f}s])",
            f"{'sigma[ps]':>10} {'min margin':>11} {'y1-viol':>8} "
            f"{'y0-viol':>8} {'leaking':>8} {'verdict':>8}",
        ]
        for p in self.points:
            margin = (
                f"{p.min_margin_ps:10.0f}" if p.min_margin_ps is not None else "         -"
            )
            verdict = (
                "LEAKS" if p.leaks else ("viol." if not p.statically_safe else "clean")
            )
            lines.append(
                f"{p.sigma_ps:10.0f} {margin} "
                f"{p.violations.get('y1-not-last', 0):8d} "
                f"{p.violations.get('y0-not-first', 0):8d} "
                f"{p.n_leaking:8d} {verdict:>8}"
            )
        onset = self.onset_sigma_ps
        lines.append(
            "exact leakage onset: "
            + (f"sigma {onset:g} ps" if onset is not None else "none in sweep")
        )
        if self.points and self.points[-1].leaking_wires:
            shown = ", ".join(self.points[-1].leaking_wires[:6])
            more = len(self.points[-1].leaking_wires) - 6
            lines.append(
                "leaking wires at max sigma: "
                + shown
                + (f" (+{more} more)" if more > 0 else "")
            )
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "schema": "verify_fault_sweep/v1",
            "gadget": self.gadget,
            "fault_seed": self.fault_seed,
            "elapsed_s": self.elapsed_s,
            "clean_at_zero": self.clean_at_zero,
            "onset_sigma_ps": self.onset_sigma_ps,
            "points": [
                {
                    "sigma_ps": p.sigma_ps,
                    "n_leaking": p.n_leaking,
                    "leaking_wires": list(p.leaking_wires),
                    "violations": p.violations,
                    "min_margin_ps": p.min_margin_ps,
                }
                for p in self.points
            ],
        }


def verify_fault_sweep(
    spec: Optional[GadgetSpec] = None,
    sigmas: Sequence[float] = (0, 150, 300, 450, 600),
    fault_seed: int = 1,
    distribution: str = "gaussian",
    n_instances: int = 4,
    n_luts: int = 2,
    chunk_size: int = 1 << 14,
    max_input_bits: int = MAX_INPUT_BITS,
) -> VerifyFaultSweepResult:
    """Delay-variation sweep judged by exact leaking-probe counts.

    Per sigma: perturb the gadget's gate delays with
    :func:`repro.faults.models.delay_variation` (seed-only direction —
    common random numbers, margins erode linearly), then run the exact
    verifier on the *faulted* circuit next to the static ordering
    checker.  Default device under test: the secAND2-PD bank of
    :func:`repro.faults.sweep.build_pd_bank` with all four shares
    applied at t=0, so the DelayUnits alone provide the protection —
    the exact analogue of the TVLA margin-erosion sweep.
    """
    from ..faults.models import delay_variation

    if spec is None:
        from .presets import pd_bank_spec

        spec = pd_bank_spec(n_instances=n_instances, n_luts=n_luts)
    t0 = time.perf_counter()
    points: List[VerifySweepPoint] = []
    for sigma in sigmas:
        faulted = spec.with_circuit(
            delay_variation(
                spec.circuit, sigma, seed=fault_seed, distribution=distribution
            ),
            name=f"{spec.name} sigma={sigma:g}ps",
        )
        result = verify(
            faulted, chunk_size=chunk_size, max_input_bits=max_input_bits
        )
        margin = min_ordering_margin(faulted.circuit)
        points.append(
            VerifySweepPoint(
                sigma_ps=float(sigma),
                n_leaking=result.n_leaking,
                leaking_wires=tuple(p.wire_name for p in result.leaks),
                violations=count_violations(faulted.circuit),
                min_margin_ps=margin.worst_ps if margin else None,
            )
        )
    return VerifyFaultSweepResult(
        gadget=spec.name,
        points=points,
        fault_seed=fault_seed,
        elapsed_s=time.perf_counter() - t0,
    )
