"""Glitch-extended probe extraction by exhaustive enumeration.

A *glitch-extended probe* on a wire observes the full transient value
sequence the wire takes while the combinational logic settles — not
just the final value (Sec. II-B: every leakage argument of the paper is
about which transient a gate output passes through, as a function of
input arrival order).  First-order security in the glitch-extended
probing model therefore requires that, for every single wire, the
*distribution of its transient trace* over the uniform mask randomness
is independent of the unshared secrets.

This module derives each wire's probe exactly: it sweeps all ``2^k``
assignments of the gadget's share/mask inputs through the event-driven
simulator (:class:`~repro.sim.vectorsim.VectorSimulator` under a
:class:`~repro.sim.clocking.ClockedHarness`, ``compile_schedules=False``
so every transition is observable) and records, per assignment, the
complete transition sequence of every wire via
:class:`~repro.sim.power.TransientRecorder`.  Enumeration is vectorised
— each chunk of assignments is one batched simulation — and chunked so
``k`` up to ~20 stays tractable; beyond the budget a
:class:`VerificationBudgetError` is raised instead of silently
sampling.

The observable of one assignment is the sequence of ``(time, value)``
change points of the wire (traces in which a potential event does not
toggle the wire see nothing at that instant).  Because the event
*schedule* is data-independent, an assignment's observable is identical
whichever chunk simulates it, so chunk results merge exactly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from ..netlist.timing import arrival_times
from ..sim.clocking import ClockedHarness
from ..sim.power import TransientRecorder
from ..sim.simulator import ScalarSimulator, Waveform

__all__ = [
    "GadgetSpec",
    "ProbeChunk",
    "VerificationBudgetError",
    "iter_probe_chunks",
    "witness_simulator",
    "MAX_INPUT_BITS",
]

#: Default enumeration budget: refuse gadgets with more than this many
#: share/mask input bits (2^20 assignments ≈ one M-trace batch sweep).
MAX_INPUT_BITS = 20

#: Settling headroom added to the auto-computed clock period.
_PERIOD_MARGIN_PS = 2000


class VerificationBudgetError(RuntimeError):
    """The gadget has too many input bits for exact enumeration.

    Exact verification enumerates all ``2^k`` input assignments; past
    ``max_input_bits`` that is no longer a "fast oracle" but a batch
    job, and silently sampling instead would forfeit the exactness the
    verifier exists for.  Callers can raise the budget explicitly or
    fall back to TVLA (:mod:`repro.leakage`).
    """

    def __init__(self, n_bits: int, max_bits: int):
        super().__init__(
            f"gadget has {n_bits} input bits; exact enumeration is capped "
            f"at {max_bits} (2^{max_bits} assignments). Raise "
            f"max_input_bits to force it, or use TVLA for a statistical "
            f"assessment."
        )
        self.n_bits = n_bits
        self.max_bits = max_bits


@dataclass(frozen=True)
class GadgetSpec:
    """A gadget circuit plus the masking semantics of its inputs.

    The verifier needs to know which primary inputs carry shares of
    which secret, which carry fresh randomness, and when each input
    arrives — that is exactly the information a netlist alone does not
    hold.

    Attributes:
        name: Label used in reports.
        circuit: The netlist under verification.
        secrets: ``(secret_name, (share_input, ...))`` per masked
            variable; the secret's value is the XOR of its shares.
        randoms: Fresh-mask primary inputs (uniform, independent).
        schedule: ``(input_name, t_ps)`` absolute arrival times of the
            input events; inputs not listed arrive at t=0.  Times are
            relative to the first clock edge (cycle boundaries at
            multiples of the period).
        n_cycles: Clock cycles to simulate (2 for the FF/DOM/TI
            gadgets whose register layer adds a cycle of latency).
        period_ps: Clock period; ``None`` auto-sizes it from static
            arrival times plus the schedule span.
    """

    name: str
    circuit: Circuit
    secrets: Tuple[Tuple[str, Tuple[str, ...]], ...]
    randoms: Tuple[str, ...] = ()
    schedule: Tuple[Tuple[str, int], ...] = ()
    n_cycles: int = 1
    period_ps: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def input_bits(self) -> Tuple[str, ...]:
        """Enumerated input names; bit ``j`` of an assignment index is
        the value of ``input_bits[j]``."""
        names: List[str] = []
        for _, shares in self.secrets:
            names.extend(shares)
        names.extend(self.randoms)
        return tuple(names)

    @property
    def n_input_bits(self) -> int:
        return len(self.input_bits)

    @property
    def secret_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.secrets)

    @property
    def n_secret_values(self) -> int:
        return 1 << len(self.secrets)

    def schedule_map(self) -> Dict[str, int]:
        """Arrival time of every input (default 0)."""
        sched = {name: 0 for name in self.input_bits}
        for name, t in self.schedule:
            sched[name] = int(t)
        return sched

    @property
    def resolved_period_ps(self) -> int:
        if self.period_ps is not None:
            return self.period_ps
        latest = max(arrival_times(self.circuit).values(), default=0)
        span = max((t for _, t in self.schedule), default=0)
        return int(latest) + int(span) + _PERIOD_MARGIN_PS

    def validate(self) -> None:
        """Check the spec covers the circuit's inputs exactly once."""
        declared = list(self.input_bits)
        if len(set(declared)) != len(declared):
            raise ValueError(f"{self.name}: input declared twice: {declared}")
        circuit_inputs = {self.circuit.wire_name(w) for w in self.circuit.inputs}
        missing = circuit_inputs - set(declared)
        if missing:
            raise ValueError(
                f"{self.name}: primary inputs not covered by "
                f"secrets/randoms: {sorted(missing)}"
            )
        extra = set(declared) - circuit_inputs
        if extra:
            raise ValueError(
                f"{self.name}: declared inputs not in circuit: {sorted(extra)}"
            )
        unknown = [n for n, _ in self.schedule if n not in circuit_inputs]
        if unknown:
            raise ValueError(f"{self.name}: scheduled unknown inputs {unknown}")
        if self.n_cycles < 1:
            raise ValueError("n_cycles must be >= 1")

    def with_circuit(self, circuit: Circuit, name: Optional[str] = None) -> "GadgetSpec":
        """Same spec over a transformed (e.g. fault-perturbed) circuit.

        Wire names survive :meth:`Circuit.copy`-based transforms
        (:mod:`repro.faults.models`), so secrets/randoms/schedule carry
        over; the auto-computed period is re-derived because the
        transform may have stretched delays.
        """
        return dataclasses.replace(
            self,
            circuit=circuit,
            name=name if name is not None else self.name,
            period_ps=None if self.period_ps is None else self.period_ps,
        )

    # ------------------------------------------------------------------
    def assignment_bits(self, index: np.ndarray) -> Dict[str, np.ndarray]:
        """Input name -> boolean value array for assignment indices."""
        return {
            name: ((index >> j) & 1).astype(bool)
            for j, name in enumerate(self.input_bits)
        }

    def secret_index(self, bits: Dict[str, np.ndarray]) -> np.ndarray:
        """Packed unshared-secret value per assignment (bit j = secret j)."""
        n = next(iter(bits.values())).shape[0] if bits else 0
        out = np.zeros(n, dtype=np.int64)
        for j, (_, shares) in enumerate(self.secrets):
            v = np.zeros(n, dtype=bool)
            for sh in shares:
                v ^= bits[sh]
            out |= v.astype(np.int64) << j
        return out

    def decode_assignment(self, index: int) -> Dict[str, int]:
        """Assignment index -> concrete input values."""
        return {
            name: (int(index) >> j) & 1
            for j, name in enumerate(self.input_bits)
        }

    def decode_secret(self, secret_index: int) -> Dict[str, int]:
        """Packed secret value -> per-secret bits."""
        return {
            name: (int(secret_index) >> j) & 1
            for j, name in enumerate(self.secret_names)
        }


@dataclass
class ProbeChunk:
    """Transient events of one contiguous block of input assignments.

    Attributes:
        base: Global index of the first assignment in the chunk.
        n_traces: Assignments simulated (trace ``i`` = assignment
            ``base + i``).
        secret_index: Packed unshared-secret value per trace.
        events: ``(t_ps, wire, toggled, new)`` in simulation order —
            the potential transition instants shared by all traces;
            ``toggled[i]`` says whether trace ``i`` actually switched.
    """

    base: int
    n_traces: int
    secret_index: np.ndarray
    events: List[Tuple[float, int, np.ndarray, np.ndarray]]


def _run_schedule(
    spec: GadgetSpec, bits: Dict[str, np.ndarray], n: int
) -> Tuple[np.ndarray, TransientRecorder]:
    """Drive one batch of assignments; return (initial state, recorder).

    All traces start from the settled all-zero input state (the
    consistent reset condition every experiment in this repo uses), so
    the initial wire values are identical across assignments and the
    recorded transitions are the entire observable.
    """
    circuit = spec.circuit
    period = spec.resolved_period_ps
    harness = ClockedHarness(
        circuit, n, period_ps=period, compile_schedules=False
    )
    harness.preload(
        {}, {circuit.wire(name): False for name in spec.input_bits}
    )
    initial = harness.sim.values[:, 0].copy()
    recorder = TransientRecorder()
    sched = spec.schedule_map()
    for cycle in range(spec.n_cycles):
        lo = cycle * period
        events = [
            (t - lo, circuit.wire(name), bits[name])
            for name, t in sched.items()
            if lo <= t < lo + period
        ]
        harness.step(events, recorder=recorder)
    return initial, recorder


def iter_probe_chunks(
    spec: GadgetSpec,
    chunk_size: int = 1 << 14,
    max_input_bits: int = MAX_INPUT_BITS,
) -> Iterator[ProbeChunk]:
    """Enumerate all ``2^k`` assignments in batched simulations.

    Raises:
        VerificationBudgetError: if the gadget has more than
            ``max_input_bits`` enumerated inputs.
    """
    spec.validate()
    k = spec.n_input_bits
    if k > max_input_bits:
        raise VerificationBudgetError(k, max_input_bits)
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    total = 1 << k
    for base in range(0, total, chunk_size):
        n = min(chunk_size, total - base)
        index = np.arange(base, base + n, dtype=np.int64)
        bits = spec.assignment_bits(index)
        _, recorder = _run_schedule(spec, bits, n)
        yield ProbeChunk(
            base=base,
            n_traces=n,
            secret_index=spec.secret_index(bits),
            events=recorder.events,
        )


def witness_simulator(spec: GadgetSpec, assignment: Dict[str, int]) -> ScalarSimulator:
    """Re-simulate one concrete assignment with full waveforms.

    Returns a :class:`ScalarSimulator` whose ``waveforms`` hold the
    witness's transient activity — ready for
    :func:`repro.sim.vcd.to_vcd` (the standard way to eyeball the
    counterexample glitch in GTKWave).
    """
    spec.validate()
    bits = {
        name: np.array([bool(assignment[name])]) for name in spec.input_bits
    }
    initial, recorder = _run_schedule(spec, bits, 1)
    shell = ScalarSimulator(spec.circuit)
    for w in range(spec.circuit.n_wires):
        shell.values[w] = bool(initial[w])
    shell.waveforms = {
        w: Waveform(initial=bool(initial[w]))
        for w in range(spec.circuit.n_wires)
    }
    for t, wire, toggled, new in recorder.events:
        if toggled[0]:
            shell.waveforms[wire].changes.append((t, bool(new[0])))
            shell.values[wire] = bool(new[0])
    return shell
