"""Gadget presets for ``python -m repro verify``.

Each preset packages a circuit from :mod:`repro.core` with its masking
semantics and input schedule as a :class:`~repro.verify.probes.
GadgetSpec`, plus the verdict the paper (or the construction's own
security proof) predicts:

* the raw secAND2 under a *good* (y1 last — Table I safe) and a *bad*
  (x0 last — Table I leak) input sequence;
* secAND2-FF (Fig. 2, two cycles) and secAND2-PD (Fig. 3, DelayUnits)
  — the paper's constructions, both expected exactly secure;
* a deliberately mis-scheduled PD variant (``y1`` DelayUnit shorter
  than the x shares') reproducing the Table I leak through the fault
  path the delay-variation sweep erodes;
* the baselines: Trichina under late-x arrival (the Sec. II problem
  statement), DOM-indep and 3-share TI (register layers, provably
  secure);
* the Sec. III-C composition lesson: ``f = x ^ y ^ x.y`` with and
  without the mandatory refresh, and the Table II 3-variable PD chain.

Expectations are *claims checked by tests*, not inputs to the
verifier; ``expect_secure=None`` marks presets we verify without a
paper-anchored prediction.  Two composition presets are expected to
*fail* exact verification while staying quiet under first-order TVLA
(``insecure_f_xy``, ``pchain3_pd``): their biased probes sit
symmetrically on the two output shares, so the toggle-rate differences
cancel in the summed power trace and only reappear at second order —
the glitch-extended probing model is strictly stronger than aggregate
first-order power analysis (see ``docs/verification.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.baselines import ShareTriple, build_dom_indep, build_trichina, ti_and3
from ..core.composition import insecure_f_xy, product_chain_pd, secure_f_xy
from ..core.gadgets import (
    SharePair,
    build_secand2,
    build_secand2_ff,
    build_secand2_pd,
    secand2_pd,
)
from ..netlist.circuit import Circuit
from .probes import GadgetSpec

__all__ = ["Preset", "PRESETS", "preset_spec", "pd_bank_spec"]

#: Spacing between successive input arrivals in sequenced presets —
#: comfortably above every gate delay, so "arrives later" is decisive.
_STEP_PS = 1000

_XY_SECRETS = (("x", ("x0", "x1")), ("y", ("y0", "y1")))


def _sequence(*names: str) -> Tuple[Tuple[str, int], ...]:
    return tuple((name, i * _STEP_PS) for i, name in enumerate(names))


def _secand2_seq_spec(name: str, order: Tuple[str, ...]) -> GadgetSpec:
    return GadgetSpec(
        name=name,
        circuit=build_secand2(),
        secrets=_XY_SECRETS,
        schedule=_sequence(*order),
    )


def _secand2_ff_spec() -> GadgetSpec:
    return GadgetSpec(
        name="secand2_ff",
        circuit=build_secand2_ff(),
        secrets=_XY_SECRETS,
        n_cycles=2,
    )


def _secand2_pd_spec(n_luts: int = 2) -> GadgetSpec:
    return GadgetSpec(
        name="secand2_pd",
        circuit=build_secand2_pd(n_luts=n_luts),
        secrets=_XY_SECRETS,
    )


def _secand2_pd_y1_early_spec(n_luts: int = 2) -> GadgetSpec:
    """PD delay schedule with the y1 DelayUnit too short: the x shares
    arrive *after* y1 — exactly the Table I leak condition the static
    checker flags as ``y1-not-last``."""
    c = Circuit("secAND2-PD-y1early")
    x0, x1, y0, y1 = c.add_inputs("x0", "x1", "y0", "y1")
    z = secand2_pd(
        c,
        SharePair(x0, x1),
        SharePair(y0, y1),
        n_luts=n_luts,
        delay_units={"y0": 0, "x0": 2, "x1": 2, "y1": 1},
    )
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    c.check()
    return GadgetSpec(
        name="secand2_pd_y1_early", circuit=c, secrets=_XY_SECRETS
    )


def _trichina_spec() -> GadgetSpec:
    """Trichina AND (LUT mapping) with the x shares arriving last —
    the late-x transition exposes the unmasked y (Sec. II problem
    statement)."""
    return GadgetSpec(
        name="trichina_late_x",
        circuit=build_trichina(style="lut"),
        secrets=_XY_SECRETS,
        randoms=("r",),
        schedule=_sequence("r", "y0", "y1", "x1", "x0"),
    )


def _dom_indep_spec() -> GadgetSpec:
    return GadgetSpec(
        name="dom_indep",
        circuit=build_dom_indep(),
        secrets=_XY_SECRETS,
        randoms=("r",),
        n_cycles=2,
    )


def _ti_and3_spec() -> GadgetSpec:
    c = Circuit("TI-AND3")
    x0, x1, x2, y0, y1, y2 = c.add_inputs("x0", "x1", "x2", "y0", "y1", "y2")
    z = ti_and3(c, ShareTriple(x0, x1, x2), ShareTriple(y0, y1, y2))
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    c.mark_output("z2", z.s2)
    c.check()
    return GadgetSpec(
        name="ti_and3",
        circuit=c,
        secrets=(("x", ("x0", "x1", "x2")), ("y", ("y0", "y1", "y2"))),
        n_cycles=2,
    )


def _secure_f_xy_spec() -> GadgetSpec:
    return GadgetSpec(
        name="secure_f_xy",
        circuit=secure_f_xy(),
        secrets=_XY_SECRETS,
        randoms=("m",),
    )


def _insecure_f_xy_spec() -> GadgetSpec:
    return GadgetSpec(
        name="insecure_f_xy",
        circuit=insecure_f_xy(),
        secrets=_XY_SECRETS,
    )


def _pchain3_pd_spec(n_luts: int = 1) -> GadgetSpec:
    """Table II 3-variable product chain of secAND2-PD gadgets."""
    c = Circuit("pchain3-PD")
    a0, a1, b0, b1, c0, c1 = c.add_inputs("a0", "a1", "b0", "b1", "c0", "c1")
    z = product_chain_pd(
        c,
        [SharePair(a0, a1), SharePair(b0, b1), SharePair(c0, c1)],
        n_luts=n_luts,
    )
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    c.check()
    return GadgetSpec(
        name="pchain3_pd",
        circuit=c,
        secrets=(
            ("a", ("a0", "a1")),
            ("b", ("b0", "b1")),
            ("c", ("c0", "c1")),
        ),
    )


def pd_bank_spec(n_instances: int = 4, n_luts: int = 2) -> GadgetSpec:
    """The fault sweep's device under test: a secAND2-PD bank with
    shared inputs, all shares at t=0 (DelayUnits alone stagger)."""
    from ..faults.sweep import build_pd_bank

    return GadgetSpec(
        name=f"pd_bank{n_instances}x{n_luts}",
        circuit=build_pd_bank(n_instances=n_instances, n_luts=n_luts),
        secrets=_XY_SECRETS,
    )


@dataclass(frozen=True)
class Preset:
    """A named gadget spec with the paper-predicted verdict."""

    name: str
    build: Callable[[], GadgetSpec]
    expect_secure: Optional[bool]
    note: str


PRESETS: Dict[str, Preset] = {
    p.name: p
    for p in [
        Preset(
            "secand2_good_order",
            lambda: _secand2_seq_spec(
                "secand2_good_order", ("x0", "x1", "y0", "y1")
            ),
            True,
            "raw secAND2, y1 arrives last (Table I safe sequence)",
        ),
        Preset(
            "secand2_bad_order",
            lambda: _secand2_seq_spec(
                "secand2_bad_order", ("y0", "y1", "x1", "x0")
            ),
            False,
            "raw secAND2, x0 arrives last (Table I leak)",
        ),
        Preset(
            "secand2_ff",
            _secand2_ff_spec,
            True,
            "Fig. 2: FF delays y1 by a cycle (2-cycle latency)",
        ),
        Preset(
            "secand2_pd",
            _secand2_pd_spec,
            True,
            "Fig. 3: DelayUnits stagger y0 -> x0,x1 -> y1",
        ),
        Preset(
            "secand2_pd_y1_early",
            _secand2_pd_y1_early_spec,
            False,
            "mis-sized y1 DelayUnit: x shares arrive after y1",
        ),
        Preset(
            "trichina_late_x",
            _trichina_spec,
            False,
            "Trichina LUT with late x shares (Sec. II problem)",
        ),
        Preset(
            "dom_indep",
            _dom_indep_spec,
            True,
            "DOM-indep AND: registered cross terms + fresh mask",
        ),
        Preset(
            "ti_and3",
            _ti_and3_spec,
            True,
            "3-share TI AND: non-complete components + registers",
        ),
        Preset(
            "secure_f_xy",
            _secure_f_xy_spec,
            True,
            "Fig. 7: f = x^y^xy with mandatory refresh (Sec. III-C)",
        ),
        Preset(
            "insecure_f_xy",
            _insecure_f_xy_spec,
            False,
            "Fig. 7 without the refresh (the Sec. III-C failure)",
        ),
        Preset(
            "pchain3_pd",
            _pchain3_pd_spec,
            False,
            "Table II 3-variable PD chain: statically safe margins, but "
            "the from-reset transient of the last gadget's outputs "
            "carries a share-symmetric bias (order-2 in power)",
        ),
    ]
}


def preset_spec(name: str) -> GadgetSpec:
    """Build the named preset's :class:`GadgetSpec`."""
    try:
        return PRESETS[name].build()
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {', '.join(PRESETS)}"
        ) from None
