"""Cross-validation of the exact verifier against TVLA.

Two independent oracles judge the same gadget:

* the exact verifier (:func:`repro.verify.report.verify`) — the full
  joint distribution of every glitch-extended probe, no sampling;
* a fixed-vs-random TVLA campaign (:func:`repro.leakage.acquisition.
  detect_leakage_traces`) over the *same* spec, driven through
  :class:`SpecTraceSource` — the paper's statistical methodology.

A probe-trace bias is a per-wire toggle-rate difference between the
secret classes, and the power model is a weighted toggle count, so an
exact leak surfaces as a first-order t-statistic once the trace budget
covers the bias; conversely a gadget with exactly independent probes
has classwise-identical power distributions and TVLA stays quiet (up
to the threshold's false-positive rate).  The slow cross-validation
suite (``tests/test_verify_crossval.py``) asserts this agreement,
``leak <-> |t| > 4.5``, over the gadget preset set at a seeded 10k
traces.

One structural caveat: when a biased probe sits *symmetrically on the
two output shares* (equal weights, opposite toggle-rate biases in the
same time bin), the differences cancel in the summed power mean — the
first-order t-statistic stays flat at any trace budget while the
second-order statistic explodes.  ``insecure_f_xy`` and ``pchain3_pd``
exhibit exactly this: the exact verifier (per-wire resolution) is
strictly stronger than first-order TVLA on aggregated power, and the
suite pins the gap down via :meth:`CrossValidation.tvla_leaks_at`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..leakage.acquisition import CampaignConfig, detect_leakage_traces
from ..leakage.tvla import THRESHOLD, TvlaResult
from ..sim.clocking import ClockedHarness
from ..sim.power import PowerRecorder
from .probes import MAX_INPUT_BITS, GadgetSpec
from .report import VerificationResult, verify

__all__ = ["SpecTraceSource", "CrossValidation", "cross_validate"]


class SpecTraceSource:
    """Fixed-vs-random trace source over a :class:`GadgetSpec`.

    Drives the spec's circuit exactly like the verifier does — settled
    all-zero reset state, then the scheduled input events, ``n_cycles``
    clock cycles — but with sampled stimuli and a
    :class:`~repro.sim.power.PowerRecorder`: fixed class = fixed
    unshared secrets under fresh uniform sharings, random class =
    uniform secrets; fresh masks uniform in both.  Unlike the verifier
    the source keeps schedule compilation on — batches replay the same
    event pattern, which is the campaign fast path.
    """

    def __init__(
        self,
        spec: GadgetSpec,
        fixed_secrets: Optional[Dict[str, int]] = None,
        bin_ps: int = 250,
        pack_traces: "bool | str" = "auto",
    ):
        spec.validate()
        self.spec = spec
        self.period_ps = spec.resolved_period_ps
        self.total_time_ps = spec.n_cycles * self.period_ps
        self.bin_ps = bin_ps
        #: Execution mode for per-batch harnesses
        #: (:mod:`repro.sim.bitpack`); campaign runners overwrite this
        #: with :attr:`CampaignConfig.pack_traces`.  The exact verifier
        #: itself is untouched — only the sampled TVLA side packs.
        self.pack_traces = pack_traces
        self.n_samples = -(-self.total_time_ps // bin_ps)
        self.fixed_secrets = (
            {name: 1 for name in spec.secret_names}
            if fixed_secrets is None
            else dict(fixed_secrets)
        )

    def warmup(self):
        """Compile the cycle schedules once before workers fork."""
        self.acquire(np.zeros(2, dtype=bool), np.random.default_rng(0))
        return (self.spec.circuit,)

    def acquire(
        self, fixed_mask: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        spec = self.spec
        n = fixed_mask.shape[0]
        values: Dict[str, np.ndarray] = {}
        for name, shares in spec.secrets:
            v = rng.integers(0, 2, size=n).astype(bool)
            v[fixed_mask] = bool(self.fixed_secrets[name])
            drawn = [
                rng.integers(0, 2, size=n).astype(bool)
                for _ in range(len(shares) - 1)
            ]
            last = v.copy()
            for part in drawn:
                last ^= part
            for share_name, arr in zip(shares, drawn + [last]):
                values[share_name] = arr
        for name in spec.randoms:
            values[name] = rng.integers(0, 2, size=n).astype(bool)

        circuit = spec.circuit
        harness = ClockedHarness(
            circuit, n, period_ps=self.period_ps,
            pack_traces=self.pack_traces,
        )
        harness.preload(
            {}, {circuit.wire(name): False for name in values}
        )
        recorder = PowerRecorder(
            n, self.total_time_ps, bin_ps=self.bin_ps,
            weights=harness.sim.weights,
        )
        sched = spec.schedule_map()
        for cycle in range(spec.n_cycles):
            lo = cycle * self.period_ps
            events = [
                (t - lo, circuit.wire(name), values[name])
                for name, t in sched.items()
                if lo <= t < lo + self.period_ps
            ]
            harness.step(events, recorder=recorder)
        return recorder.power


@dataclass
class CrossValidation:
    """Verdict pair of one gadget: exact verifier vs TVLA."""

    gadget: str
    exact: VerificationResult
    tvla: TvlaResult
    detected_at: Optional[int]
    threshold: float = THRESHOLD

    @property
    def exact_leaks(self) -> bool:
        return not self.exact.secure

    @property
    def tvla_leaks(self) -> bool:
        return self.tvla.leaks(1, self.threshold)

    def tvla_leaks_at(self, order: int) -> bool:
        """TVLA verdict at a chosen order (share-symmetric probe biases
        cancel in the first-order power mean and surface at order 2)."""
        return self.tvla.leaks(order, self.threshold)

    @property
    def agree(self) -> bool:
        return self.exact_leaks == self.tvla_leaks

    def render(self) -> str:
        exact = (
            f"{self.exact.n_leaking} leaking probes"
            if self.exact_leaks
            else "0 leaking probes"
        )
        tvla = (
            f"|t1|max {self.tvla.max_abs(1):.2f} "
            f"({'LEAK' if self.tvla_leaks else 'ok'}"
            + (f" @ {self.detected_at} traces" if self.detected_at else "")
            + ")"
        )
        return (
            f"{self.gadget}: exact {exact} | TVLA {tvla} | "
            f"{'AGREE' if self.agree else 'DISAGREE'}"
        )


def cross_validate(
    spec: GadgetSpec,
    n_traces: int = 10_000,
    batch_size: int = 2_500,
    noise_sigma: float = 0.25,
    seed: int = 0,
    threshold: float = THRESHOLD,
    n_workers: int = 1,
    max_input_bits: int = MAX_INPUT_BITS,
) -> CrossValidation:
    """Judge one gadget with both oracles and compare the verdicts.

    ``noise_sigma`` defaults low because the presets are single gadget
    instances — the paper boosts SNR by replicating instances with
    shared inputs, which for identical replicas is equivalent to
    scaling the noise down.
    """
    exact = verify(spec, max_input_bits=max_input_bits)
    source = SpecTraceSource(spec)
    config = CampaignConfig(
        n_traces=n_traces,
        batch_size=min(batch_size, n_traces),
        noise_sigma=noise_sigma,
        seed=seed,
        label=f"{spec.name} crossval",
    )
    detected_at, tvla = detect_leakage_traces(
        source, config, order=1, threshold=threshold, n_workers=n_workers
    )
    return CrossValidation(
        gadget=spec.name,
        exact=exact,
        tvla=tvla,
        detected_at=detected_at,
        threshold=threshold,
    )
