"""``python -m repro obs`` — record, summarise and convert traces.

Subcommands:

* ``record`` — run a small traced workload (a TVLA campaign, a
  supervised campaign, or a masking-compiler run), write the span
  stream as JSONL and optionally as a Chrome trace-event file
  (loadable in ``chrome://tracing`` / Perfetto), and print the
  self-time summary.
* ``summary`` — aggregate an existing JSONL trace file.
* ``convert`` — JSONL -> Chrome trace-event JSON.

Examples::

    python -m repro obs record --out trace.jsonl --chrome trace.json
    python -m repro obs record --what compile --out compile.jsonl
    python -m repro obs summary trace.jsonl
    python -m repro obs convert trace.jsonl trace.json
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List, Optional

from .export import read_jsonl, write_chrome, write_jsonl
from .summary import coverage, phase_stats, render_summary
from .trace import disable_tracing, enable_tracing

_WHAT = ("campaign", "supervised", "compile")


def _record_campaign(args, supervised: bool) -> None:
    from ..core.sequences import SequenceSource
    from ..leakage.acquisition import CampaignConfig, run_campaign

    source = SequenceSource(("x0", "x1", "y0", "y1"))
    config = CampaignConfig(
        n_traces=args.n_traces,
        batch_size=args.batch_size,
        noise_sigma=1.0,
        seed=args.seed,
        n_workers=args.n_workers,
        label=f"obs.record.{'supervised' if supervised else 'campaign'}",
    )
    if supervised:
        from ..leakage.supervisor import run_campaign_supervised

        with tempfile.TemporaryDirectory(prefix="obs-record-") as workdir:
            result = run_campaign_supervised(
                source, config, checkpoint_path=f"{workdir}/campaign.npz"
            )
    else:
        result = run_campaign(source, config)
    if result.stats is not None:
        print(result.stats.summary())


def _record_compile(args) -> None:
    from ..compile import compile_spec, des_sbox_spec

    result = compile_spec(des_sbox_spec(0), style="pd")
    cert = result.certify()
    print(
        f"compiled {result.plan.spec.name} ({result.style}): "
        f"certificate ok={cert.ok}"
    )


def _print_trace_report(spans: List[dict]) -> None:
    print(render_summary(spans, top=20))
    phases = phase_stats(spans)
    if phases:
        print(
            "phases: "
            + "  ".join(
                f"{label}={entry['total_s']:.3f}s"
                for label, entry in phases.items()
            )
        )
    cov = coverage(spans)
    if cov > 0:
        print(f"campaign.run coverage: {cov:.1%}")


def _cmd_record(args) -> int:
    tracer = enable_tracing(capacity=args.capacity)
    try:
        if args.what == "compile":
            _record_compile(args)
        else:
            _record_campaign(args, supervised=args.what == "supervised")
    finally:
        spans = tracer.drain()
        disable_tracing()
    if not spans:
        print("no spans recorded", file=sys.stderr)
        return 1
    n = write_jsonl(spans, args.out)
    print(f"wrote {n} spans to {args.out}")
    if args.chrome:
        write_chrome(spans, args.chrome)
        print(f"wrote Chrome trace to {args.chrome}")
    _print_trace_report(spans)
    return 0


def _cmd_summary(args) -> int:
    spans = read_jsonl(args.trace)
    if not spans:
        print(f"{args.trace}: no spans", file=sys.stderr)
        return 1
    print(f"{args.trace}: {len(spans)} spans")
    _print_trace_report(spans)
    return 0


def _cmd_convert(args) -> int:
    spans = read_jsonl(args.trace)
    if not spans:
        print(f"{args.trace}: no spans", file=sys.stderr)
        return 1
    write_chrome(spans, args.chrome)
    print(f"wrote {len(spans)} spans to {args.chrome}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="run a traced workload")
    rec.add_argument(
        "--what",
        choices=_WHAT,
        default="campaign",
        help="workload to trace (default: campaign)",
    )
    rec.add_argument("--n-traces", type=int, default=256)
    rec.add_argument("--batch-size", type=int, default=64)
    rec.add_argument("--n-workers", type=int, default=1)
    rec.add_argument("--seed", type=int, default=0)
    rec.add_argument(
        "--capacity", type=int, default=65536, help="span ring-buffer size"
    )
    rec.add_argument("--out", required=True, help="JSONL output path")
    rec.add_argument(
        "--chrome", default=None, help="also write a Chrome trace here"
    )
    rec.set_defaults(func=_cmd_record)

    summ = sub.add_parser("summary", help="aggregate a JSONL trace")
    summ.add_argument("trace", help="JSONL trace file")
    summ.set_defaults(func=_cmd_summary)

    conv = sub.add_parser("convert", help="JSONL -> Chrome trace JSON")
    conv.add_argument("trace", help="JSONL trace file")
    conv.add_argument("chrome", help="Chrome trace output path")
    conv.set_defaults(func=_cmd_convert)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
