"""Span tracer: nested wall-clock spans with cross-process propagation.

A *span* is a named interval (``campaign.batch``, ``compile.lower``)
with monotonic-clock start/duration, process/thread ids, a parent link
and free-form attributes.  Spans land in a bounded in-memory ring
buffer (oldest dropped first) and are exported after the run by
:mod:`repro.obs.export` — no I/O ever happens on the hot path.

Tracing is **off by default** and the disabled path is a single module
attribute check, so instrumented code (`with trace("batch.simulate")`)
costs one cheap object construction per call site when disabled.
Campaign results are bitwise-identical with tracing on or off: spans
only ever *observe* the clock, never the RNG streams or data path.

Usage::

    from repro.obs import enable_tracing, trace

    tracer = enable_tracing()
    with trace("campaign.batch", index=3):
        ...
    spans = tracer.drain()

``trace(...)`` doubles as a decorator::

    @trace("compile.lower")
    def lower(...): ...

Cross-process propagation: the parent captures :func:`trace_context`
and ships it through the pool initializer; workers call
:func:`adopt_trace_context`, which starts a *fresh* tracer sharing the
parent's ``trace_id`` and rooting worker spans under the parent's
active span.  Worker spans ride back to the parent attached to the
per-batch records (see ``repro.leakage.acquisition``) and are folded
in with :func:`ingest_spans`.  Timestamps use
:func:`time.perf_counter_ns` (CLOCK_MONOTONIC), which is comparable
across processes on the POSIX hosts the campaign runners target — the
same property the supervisor's heartbeat watchdog already relies on.

The clock is injectable (:func:`enable_tracing` ``clock=``) so tests
can pin a deterministic fake.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "DEFAULT_CAPACITY",
    "Tracer",
    "adopt_trace_context",
    "current_span_id",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "ingest_spans",
    "trace",
    "trace_context",
    "tracing_enabled",
]

DEFAULT_CAPACITY = 65536

#: Fast-path gate: ``trace(...).__enter__`` checks this one attribute
#: before touching anything else.
_ENABLED = False
_TRACER: Optional["Tracer"] = None


class Tracer:
    """Bounded ring buffer of finished spans plus per-thread open-span stacks."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock: Optional[Callable[[], int]] = None,
        trace_id: Optional[str] = None,
        base_parent: Optional[str] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock if clock is not None else time.perf_counter_ns
        self.trace_id = (
            trace_id
            if trace_id is not None
            else f"{os.getpid():x}-{os.urandom(4).hex()}"
        )
        #: Parent span id (from another process) that roots this
        #: tracer's top-level spans; ``None`` for the origin process.
        self.base_parent = base_parent
        self._buf: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._seq = itertools.count(1)
        self._pid = os.getpid()

    # -- span lifecycle ------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def start(self, name: str, attrs: Dict[str, Any]):
        stack = self._stack()
        parent = stack[-1] if stack else self.base_parent
        span_id = f"{self._pid:x}.{next(self._ids)}"
        stack.append(span_id)
        return (name, span_id, parent, self.clock(), attrs)

    def finish(self, frame) -> None:
        t_end = self.clock()
        name, span_id, parent, t_start, attrs = frame
        stack = self._stack()
        if stack and stack[-1] == span_id:
            stack.pop()
        elif span_id in stack:  # tolerate mis-nested exits
            stack.remove(span_id)
        span = {
            "name": name,
            "t_start_ns": t_start,
            "dur_ns": t_end - t_start,
            "pid": self._pid,
            "tid": threading.get_ident(),
            "span_id": span_id,
            "parent_id": parent,
            "trace_id": self.trace_id,
            "attrs": dict(attrs) if attrs else {},
        }
        with self._lock:
            span["seq"] = next(self._seq)
            self._buf.append(span)

    def current_span_id(self) -> Optional[str]:
        stack = self._stack()
        return stack[-1] if stack else self.base_parent

    # -- reading the buffer --------------------------------------------
    def mark(self) -> int:
        """Sequence watermark; pass to :meth:`spans` to get only newer spans."""
        with self._lock:
            return self._buf[-1]["seq"] if self._buf else 0

    def spans(self, since: int = 0) -> List[dict]:
        """Copy of buffered spans with ``seq > since`` (buffer untouched)."""
        with self._lock:
            return [dict(s) for s in self._buf if s["seq"] > since]

    def drain(self) -> List[dict]:
        """Remove and return all buffered spans."""
        with self._lock:
            out = [dict(s) for s in self._buf]
            self._buf.clear()
        return out

    def ingest(self, spans: List[dict]) -> None:
        """Append spans recorded by another tracer (e.g. a worker process).

        Foreign spans keep their own ids/pids/timestamps but are
        re-sequenced locally so :meth:`mark`/:meth:`spans` stay
        monotone.
        """
        with self._lock:
            for span in spans:
                span = dict(span)
                span["seq"] = next(self._seq)
                self._buf.append(span)


class _Span:
    """Context manager / decorator returned by :func:`trace`."""

    __slots__ = ("name", "attrs", "_frame", "_tracer")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self._frame = None
        self._tracer = None

    def __enter__(self) -> "_Span":
        if _ENABLED:
            tracer = _TRACER
            if tracer is not None:
                self._tracer = tracer
                self._frame = tracer.start(self.name, self.attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._frame is not None:
            self._tracer.finish(self._frame)
            self._frame = None
            self._tracer = None
        return False

    def __call__(self, fn: Callable) -> Callable:
        name, attrs = self.name, self.attrs

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with _Span(name, attrs):
                return fn(*args, **kwargs)

        return wrapper


def trace(name: str, **attrs: Any) -> _Span:
    """Open a span (context manager) or wrap a function (decorator)."""
    return _Span(name, attrs)


# -- global tracer management ------------------------------------------
def enable_tracing(
    capacity: int = DEFAULT_CAPACITY,
    clock: Optional[Callable[[], int]] = None,
    trace_id: Optional[str] = None,
    base_parent: Optional[str] = None,
) -> Tracer:
    """Install a fresh process-global tracer and turn tracing on."""
    global _ENABLED, _TRACER
    _TRACER = Tracer(
        capacity=capacity, clock=clock, trace_id=trace_id,
        base_parent=base_parent,
    )
    _ENABLED = True
    return _TRACER


def disable_tracing() -> None:
    """Turn tracing off and drop the global tracer."""
    global _ENABLED, _TRACER
    _ENABLED = False
    _TRACER = None


def tracing_enabled() -> bool:
    return _ENABLED


def get_tracer() -> Optional[Tracer]:
    return _TRACER if _ENABLED else None


def current_span_id() -> Optional[str]:
    tracer = get_tracer()
    return tracer.current_span_id() if tracer is not None else None


def ingest_spans(spans: Optional[List[dict]]) -> None:
    """Fold worker-recorded spans into the active tracer (no-op if off)."""
    if not spans:
        return
    tracer = get_tracer()
    if tracer is not None:
        tracer.ingest(spans)


# -- cross-process context ---------------------------------------------
def trace_context() -> Optional[Dict[str, Any]]:
    """Serialisable handle a worker can :func:`adopt_trace_context`.

    ``None`` when tracing is off — workers then stay untraced.  The
    context pins the parent's ``trace_id`` and the span that was
    active when the pool was created, so worker spans nest under the
    campaign span in the merged trace.
    """
    tracer = get_tracer()
    if tracer is None:
        return None
    return {
        "trace_id": tracer.trace_id,
        "parent_id": tracer.current_span_id(),
        "capacity": tracer.capacity,
    }


def adopt_trace_context(ctx: Optional[Dict[str, Any]]) -> None:
    """Enable tracing in a worker from a parent's :func:`trace_context`.

    Always starts a *fresh* tracer (a forked child inherits the
    parent's buffer; re-shipping those spans would duplicate them).
    ``None`` disables tracing — under ``fork`` the inherited
    ``_ENABLED`` flag would otherwise keep dead spans accumulating.
    """
    if ctx is None:
        disable_tracing()
        return
    enable_tracing(
        capacity=ctx.get("capacity", DEFAULT_CAPACITY),
        trace_id=ctx.get("trace_id"),
        base_parent=ctx.get("parent_id"),
    )
