"""Trace analysis: per-name aggregates, self-time ranking, phase tables.

Post-processing for span lists produced by :mod:`repro.obs.trace` /
read back by :mod:`repro.obs.export`.  The aggregation functions are
pure and dependency-free; only the rendering helpers import
:mod:`repro.eval.report` (lazily, to keep ``repro.obs`` importable
before the rest of the package).

*Self time* is a span's duration minus the summed durations of its
direct children — the usual profiler notion, so a fat parent span
("campaign.run") does not drown the phases nested inside it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

__all__ = [
    "PHASE_NAMES",
    "aggregate_spans",
    "campaign_phases",
    "coverage",
    "phase_stats",
    "render_summary",
    "summary_rows",
]

#: Span names that constitute the campaign's per-phase breakdown, in
#: display order, mapped to the short labels ``campaign_stats_panel``
#: prints.  Everything here is batch-granular — nothing fires per
#: event or per trace.
PHASE_NAMES = {
    "batch.simulate": "simulate",
    "batch.noise": "noise",
    "batch.accumulate": "accumulate",
    "transport.pack": "pack",
    "transport.unpack": "unpack",
    "campaign.await": "await",
    "campaign.merge": "merge",
    "campaign.checkpoint": "checkpoint",
    "campaign.pool_teardown": "teardown",
    "campaign.scavenge": "scavenge",
}


def aggregate_spans(spans: Iterable[dict]) -> Dict[str, Dict[str, float]]:
    """Per-name totals: count, total/self nanoseconds, min/max."""
    spans = list(spans)
    child_time: Dict[str, int] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0) + span.get(
                "dur_ns", 0
            )
    agg: Dict[str, Dict[str, float]] = {}
    for span in spans:
        name = span["name"]
        dur = span.get("dur_ns", 0)
        own = max(0, dur - child_time.get(span.get("span_id"), 0))
        entry = agg.get(name)
        if entry is None:
            agg[name] = {
                "count": 1,
                "total_ns": dur,
                "self_ns": own,
                "min_ns": dur,
                "max_ns": dur,
            }
        else:
            entry["count"] += 1
            entry["total_ns"] += dur
            entry["self_ns"] += own
            entry["min_ns"] = min(entry["min_ns"], dur)
            entry["max_ns"] = max(entry["max_ns"], dur)
    return agg


def summary_rows(spans: Iterable[dict]) -> List[dict]:
    """Aggregates as rows sorted by self time, descending."""
    agg = aggregate_spans(spans)
    rows = [{"name": name, **entry} for name, entry in agg.items()]
    rows.sort(key=lambda r: (-r["self_ns"], r["name"]))
    return rows


def render_summary(spans: Iterable[dict], top: Optional[int] = None) -> str:
    """Text table of top spans by self-time (via ``eval.report``)."""
    from ..eval.report import render_table  # lazy: avoid import cycle

    rows = summary_rows(spans)
    if top is not None:
        rows = rows[:top]
    table_rows = [
        (
            r["name"],
            r["count"],
            f"{r['self_ns'] / 1e6:.3f}",
            f"{r['total_ns'] / 1e6:.3f}",
            f"{r['min_ns'] / 1e6:.3f}",
            f"{r['max_ns'] / 1e6:.3f}",
        )
        for r in rows
    ]
    return render_table(
        ("span", "count", "self ms", "total ms", "min ms", "max ms"),
        table_rows,
    )


def phase_stats(
    spans: Iterable[dict], names: Optional[Dict[str, str]] = None
) -> Dict[str, Dict[str, float]]:
    """Per-phase histogram table keyed by display label.

    ``names`` maps span name -> display label (default
    :data:`PHASE_NAMES`).  Values carry ``count`` and seconds
    (``total_s``/``min_s``/``max_s``) — the shape
    ``CampaignStats.phases`` stores and ``campaign_stats_panel``
    renders.
    """
    if names is None:
        names = PHASE_NAMES
    agg = aggregate_spans(s for s in spans if s["name"] in names)
    out: Dict[str, Dict[str, float]] = {}
    for span_name, label in names.items():
        entry = agg.get(span_name)
        if entry is None:
            continue
        out[label] = {
            "count": int(entry["count"]),
            "total_s": entry["total_ns"] / 1e9,
            "min_s": entry["min_ns"] / 1e9,
            "max_s": entry["max_ns"] / 1e9,
        }
    return out


# Alias with the campaign-facing name used by the runners.
campaign_phases = phase_stats


def coverage(spans: Iterable[dict], root_name: str = "campaign.run") -> float:
    """Fraction of the root span's wall-clock covered by its children.

    Finds the longest span named ``root_name`` and sums the durations
    of its *direct* children (worker batch spans root themselves under
    the campaign span via the propagated trace context, so they
    count).  Children of one root running concurrently on several
    workers can sum past 1.0; the value is clamped.  Returns 0.0 when
    no root span exists.
    """
    spans = list(spans)
    roots = [s for s in spans if s["name"] == root_name]
    if not roots:
        return 0.0
    root = max(roots, key=lambda s: s.get("dur_ns", 0))
    total = root.get("dur_ns", 0)
    if total <= 0:
        return 0.0
    covered = sum(
        s.get("dur_ns", 0)
        for s in spans
        if s.get("parent_id") == root["span_id"]
    )
    return min(1.0, covered / total)
