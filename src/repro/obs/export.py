"""Trace exporters: JSONL span logs and Chrome trace-event JSON.

Two interchangeable on-disk forms:

* **JSONL** — one span dict per line (the tracer's native span
  schema), sorted by start time then span id, each line serialised
  with sorted keys.  Deterministic for a fixed clock: byte-identical
  across runs.  This is the archival format the CLI writes.
* **Chrome trace-event JSON** — ``{"traceEvents": [...]}`` with
  complete (``"ph": "X"``) events, loadable in Perfetto / Chromium
  ``chrome://tracing``.  Native nanosecond timestamps ride along in
  ``args`` so the conversion is lossless: ``from_chrome(to_chrome(s))``
  reproduces the span dicts exactly (``ts``/``dur`` microseconds are
  display-only).

No dependencies beyond the stdlib; everything is pure-function so the
round trip is testable under a fixed clock stub.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

__all__ = [
    "CHROME_SCHEMA",
    "from_chrome",
    "read_jsonl",
    "sort_spans",
    "to_chrome",
    "write_chrome",
    "write_jsonl",
]

CHROME_SCHEMA = "repro_obs_trace/v1"

#: Span-dict keys that are structural (everything else a span carries
#: lives under its ``attrs``).
_SPAN_KEYS = (
    "name",
    "t_start_ns",
    "dur_ns",
    "pid",
    "tid",
    "span_id",
    "parent_id",
    "trace_id",
    "seq",
)


def sort_spans(spans: Iterable[dict]) -> List[dict]:
    """Deterministic order: start time, then pid/tid, then span id."""
    return sorted(
        spans,
        key=lambda s: (
            s.get("t_start_ns", 0),
            s.get("pid", 0),
            s.get("tid", 0),
            str(s.get("span_id", "")),
        ),
    )


def write_jsonl(spans: Iterable[dict], path: str) -> int:
    """Write spans as sorted JSON lines; returns the span count."""
    ordered = sort_spans(spans)
    with open(path, "w") as fh:
        for span in ordered:
            fh.write(json.dumps(span, sort_keys=True, default=str))
            fh.write("\n")
    return len(ordered)


def read_jsonl(path: str) -> List[dict]:
    spans = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def to_chrome(spans: Iterable[dict]) -> Dict[str, Any]:
    """Convert span dicts to a Chrome trace-event payload.

    Timestamps become microseconds (the viewer's unit); the original
    nanosecond fields are preserved in each event's ``args`` under
    ``span_id``/``parent_id``/``trace_id``/``t_start_ns``/``dur_ns``/
    ``seq`` so :func:`from_chrome` can reconstruct losslessly.
    """
    events = []
    for span in sort_spans(spans):
        args = dict(span.get("attrs") or {})
        for key in _SPAN_KEYS:
            if key in ("name", "pid", "tid"):
                continue
            args[key] = span.get(key)
        events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": span.get("t_start_ns", 0) / 1000.0,
                "dur": span.get("dur_ns", 0) / 1000.0,
                "pid": span.get("pid", 0),
                "tid": span.get("tid", 0),
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": CHROME_SCHEMA},
    }


def from_chrome(payload: Dict[str, Any]) -> List[dict]:
    """Reconstruct span dicts from :func:`to_chrome` output (lossless)."""
    spans = []
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        span = {
            "name": event["name"],
            "pid": event.get("pid", 0),
            "tid": event.get("tid", 0),
        }
        for key in _SPAN_KEYS:
            if key in ("name", "pid", "tid"):
                continue
            if key in args:
                span[key] = args.pop(key)
        span["attrs"] = args
        spans.append(span)
    return spans


def write_chrome(spans: Iterable[dict], path: str) -> int:
    """Write the Chrome trace-event JSON; returns the event count."""
    payload = to_chrome(spans)
    with open(path, "w") as fh:
        json.dump(payload, fh, sort_keys=True, default=str)
        fh.write("\n")
    return len(payload["traceEvents"])
