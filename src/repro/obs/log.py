"""Library logging for the ``repro`` namespace.

Every diagnostic the package emits through :mod:`warnings` (one-shot
by design, so a 10M-trace campaign is not drowned in repeats) is
mirrored onto a standard :mod:`logging` logger under the ``repro.*``
hierarchy, so headless campaign runs leave a greppable record when the
embedding application configures logging.  Following library
convention the root ``repro`` logger carries a
:class:`logging.NullHandler` and nothing else: importing the package
never prints, and the host application decides where records go::

    import logging
    logging.basicConfig(level=logging.INFO)   # now repro.* records show

Use :func:`get_logger` from inside the package instead of calling
``logging.getLogger`` directly — it guarantees the NullHandler is
installed exactly once.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_ROOT_NAME = "repro"


def _root() -> logging.Logger:
    root = logging.getLogger(_ROOT_NAME)
    if not any(isinstance(h, logging.NullHandler) for h in root.handlers):
        root.addHandler(logging.NullHandler())
    return root


def get_logger(name: str = "") -> logging.Logger:
    """Return the ``repro`` logger, or a child (``get_logger("sim.power")``).

    The root ``repro`` logger is given a :class:`logging.NullHandler`
    on first use so the library never emits to stderr unless the host
    application configures handlers.
    """
    root = _root()
    if not name:
        return root
    return root.getChild(name)
