"""``repro.obs`` — unified tracing, metrics and profiling layer.

Zero-dependency observability for the simulation → campaign → compile
pipeline:

* :mod:`repro.obs.trace` — span tracer (`with trace("campaign.batch")`),
  bounded ring buffer, thread- and process-aware via trace-context
  propagation through the pool initializer; off by default and
  guaranteed not to perturb results (bitwise-identical campaigns with
  tracing on or off).
* :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms
  with labels; the single backing store behind
  ``schedule_cache_counters``, ``packed_accumulator_counters``,
  transport pipe bytes, supervisor restarts and clamped-event counts.
  Snapshots diff and merge associatively, so workers ship per-batch
  diffs to the parent over the existing moments transport.
* :mod:`repro.obs.export` — JSONL and Chrome trace-event (Perfetto)
  exporters, losslessly round-trippable.
* :mod:`repro.obs.summary` — self-time ranking and the per-phase
  histogram table ``campaign_stats_panel`` renders.
* :mod:`repro.obs.log` — the ``repro.*`` :mod:`logging` hierarchy
  (NullHandler by default) that mirrors the package's one-shot
  warnings.

CLI: ``python -m repro obs record|summary|convert`` (see
:mod:`repro.obs.cli`).

Import discipline: this package imports **nothing** from the rest of
``repro`` at module level (``summary``/``cli`` pull rendering helpers
lazily), because nearly every other subpackage imports it.
"""

from . import export, metrics, summary
from .log import get_logger
from .metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    counter_value,
    gauge_value,
    inc,
    max_gauge,
    merge_into,
    observe,
    registry,
    reset_metrics,
    set_gauge,
    snapshot,
)
from .trace import (
    Tracer,
    adopt_trace_context,
    current_span_id,
    disable_tracing,
    enable_tracing,
    get_tracer,
    ingest_spans,
    trace,
    trace_context,
    tracing_enabled,
)

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "Tracer",
    "adopt_trace_context",
    "counter_value",
    "current_span_id",
    "disable_tracing",
    "enable_tracing",
    "export",
    "gauge_value",
    "get_logger",
    "get_tracer",
    "inc",
    "ingest_spans",
    "max_gauge",
    "merge_into",
    "metrics",
    "observe",
    "registry",
    "reset_metrics",
    "set_gauge",
    "snapshot",
    "summary",
    "trace",
    "trace_context",
    "tracing_enabled",
]
