"""Process-wide metrics registry: counters, gauges and histograms.

This is the single backing store for the runtime telemetry that used
to live in scattered module-global dicts (``repro.sim.compiled``
schedule-cache hits/compiles, ``repro.sim.power`` packed-accumulator
counters, per-batch pipe bytes in the campaign runners).  Those
modules now increment named metrics here and their public counter
functions re-export registry values, so one :func:`snapshot` sees the
whole pipeline.

Design constraints, in order:

* **zero dependencies** — stdlib only; :mod:`repro.obs` must be
  importable before (and by) every other ``repro`` subpackage;
* **cheap when idle** — an :func:`inc` is a lock + dict add, fast
  enough for per-``settle`` call sites (hundreds per batch), while
  anything hotter (per-event work) aggregates locally and reports
  per batch;
* **mergeable** — worker processes snapshot around each batch and
  ship the :meth:`MetricsSnapshot.diff` to the parent attached to the
  batch record, riding the existing moments transport; the parent
  folds diffs back in with :func:`merge_into`.  ``merge`` is
  associative (counters add, gauges max, histogram count/sum/buckets
  add, min/max combine), so shard order does not matter.

Metric keys are ``name`` or ``name{label=value,...}`` with labels
sorted — a flat string key keeps snapshots trivially JSON-serialisable
and diffable.

Histograms are log2-bucketed (bucket ``e`` counts values in
``[2**e, 2**(e+1))``): coarse, but enough to separate a 2 ms batch
from a 200 ms one without storing samples.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, Mapping, Optional

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "counter_value",
    "gauge_value",
    "inc",
    "max_gauge",
    "merge_into",
    "metric_key",
    "observe",
    "registry",
    "reset_metrics",
    "set_gauge",
    "snapshot",
]

#: Histogram bucket for non-positive values (log2 undefined).
_BUCKET_ZERO = "zero"


def metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """Flat string key: ``name`` or ``name{a=1,b=x}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _bucket(value: float) -> str:
    if value <= 0:
        return _BUCKET_ZERO
    return str(int(math.floor(math.log2(value))))


class MetricsSnapshot:
    """Immutable point-in-time copy of a registry (or a diff of two).

    ``counters``/``gauges`` are flat ``key -> number`` dicts;
    ``histograms`` maps ``key -> {"count", "sum", "min", "max",
    "buckets": {exp: n}}``.  Snapshots support :meth:`diff` (what
    happened between two snapshots of one registry) and :meth:`merge`
    (combine diffs from independent processes; associative).
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(
        self,
        counters: Optional[Dict[str, float]] = None,
        gauges: Optional[Dict[str, float]] = None,
        histograms: Optional[Dict[str, Dict[str, Any]]] = None,
    ):
        self.counters = dict(counters or {})
        self.gauges = dict(gauges or {})
        self.histograms = {
            k: {
                "count": h.get("count", 0),
                "sum": h.get("sum", 0.0),
                "min": h.get("min"),
                "max": h.get("max"),
                "buckets": dict(h.get("buckets", {})),
            }
            for k, h in (histograms or {}).items()
        }

    # -- serialisation -------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                k: {**h, "buckets": dict(h["buckets"])}
                for k, h in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricsSnapshot":
        return cls(
            counters=payload.get("counters", {}),
            gauges=payload.get("gauges", {}),
            histograms=payload.get("histograms", {}),
        )

    # -- algebra -------------------------------------------------------
    def diff(self, older: "MetricsSnapshot") -> "MetricsSnapshot":
        """What accumulated between ``older`` and ``self``.

        Counters and histogram count/sum/buckets subtract; gauges and
        histogram min/max keep the newer value (a "diff" of a
        level-style metric is just its current level).
        """
        counters = {}
        for key, value in self.counters.items():
            delta = value - older.counters.get(key, 0)
            if delta:
                counters[key] = delta
        hists = {}
        for key, h in self.histograms.items():
            old = older.histograms.get(
                key, {"count": 0, "sum": 0.0, "buckets": {}}
            )
            count = h["count"] - old["count"]
            if not count:
                continue
            buckets = {}
            for b, n in h["buckets"].items():
                d = n - old["buckets"].get(b, 0)
                if d:
                    buckets[b] = d
            hists[key] = {
                "count": count,
                "sum": h["sum"] - old["sum"],
                "min": h["min"],
                "max": h["max"],
                "buckets": buckets,
            }
        return MetricsSnapshot(counters, dict(self.gauges), hists)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two independent snapshots/diffs (associative)."""
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        gauges = dict(self.gauges)
        for key, value in other.gauges.items():
            gauges[key] = max(gauges[key], value) if key in gauges else value
        hists = {
            k: {**h, "buckets": dict(h["buckets"])}
            for k, h in self.histograms.items()
        }
        for key, h in other.histograms.items():
            if key not in hists:
                hists[key] = {**h, "buckets": dict(h["buckets"])}
                continue
            mine = hists[key]
            mine["count"] += h["count"]
            mine["sum"] += h["sum"]
            mine["min"] = _opt_min(mine["min"], h["min"])
            mine["max"] = _opt_max(mine["max"], h["max"])
            for b, n in h["buckets"].items():
                mine["buckets"][b] = mine["buckets"].get(b, 0) + n
        return MetricsSnapshot(counters, gauges, hists)

    def counter(self, name: str, default: float = 0, **labels: Any) -> float:
        return self.counters.get(metric_key(name, labels), default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsSnapshot(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )


def _opt_min(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _opt_max(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms keyed by flat label strings."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, Dict[str, Any]] = {}

    # -- write side ----------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def max_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge to ``max(current, value)`` (high-water mark)."""
        key = metric_key(name, labels)
        with self._lock:
            current = self._gauges.get(key)
            if current is None or value > current:
                self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = metric_key(name, labels)
        bucket = _bucket(value)
        with self._lock:
            h = self._hists.get(key)
            if h is None:
                h = {
                    "count": 0,
                    "sum": 0.0,
                    "min": None,
                    "max": None,
                    "buckets": {},
                }
                self._hists[key] = h
            h["count"] += 1
            h["sum"] += value
            h["min"] = _opt_min(h["min"], value)
            h["max"] = _opt_max(h["max"], value)
            h["buckets"][bucket] = h["buckets"].get(bucket, 0) + 1

    # -- read side -----------------------------------------------------
    def counter_value(self, name: str, default: float = 0, **labels: Any) -> float:
        return self._counters.get(metric_key(name, labels), default)

    def gauge_value(self, name: str, default: float = 0, **labels: Any) -> float:
        return self._gauges.get(metric_key(name, labels), default)

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(self._counters, self._gauges, self._hists)

    # -- maintenance ---------------------------------------------------
    def merge_into(self, diff: "MetricsSnapshot | Mapping[str, Any]") -> None:
        """Fold a worker diff (snapshot or its ``as_dict``) into this registry."""
        if not isinstance(diff, MetricsSnapshot):
            diff = MetricsSnapshot.from_dict(diff)
        with self._lock:
            for key, value in diff.counters.items():
                self._counters[key] = self._counters.get(key, 0) + value
            for key, value in diff.gauges.items():
                current = self._gauges.get(key)
                if current is None or value > current:
                    self._gauges[key] = value
            for key, h in diff.histograms.items():
                mine = self._hists.get(key)
                if mine is None:
                    self._hists[key] = {
                        "count": h["count"],
                        "sum": h["sum"],
                        "min": h["min"],
                        "max": h["max"],
                        "buckets": dict(h["buckets"]),
                    }
                    continue
                mine["count"] += h["count"]
                mine["sum"] += h["sum"]
                mine["min"] = _opt_min(mine["min"], h["min"])
                mine["max"] = _opt_max(mine["max"], h["max"])
                for b, n in h["buckets"].items():
                    mine["buckets"][b] = mine["buckets"].get(b, 0) + n

    def reset(self, names: Optional[Iterable[str]] = None) -> None:
        """Zero metrics.  ``names`` restricts to exact metric names
        (label variants included); ``None`` clears everything."""
        with self._lock:
            if names is None:
                self._counters.clear()
                self._gauges.clear()
                self._hists.clear()
                return
            wanted = tuple(names)

            def _match(key: str) -> bool:
                base = key.split("{", 1)[0]
                return base in wanted

            for store in (self._counters, self._gauges, self._hists):
                for key in [k for k in store if _match(k)]:
                    del store[key]


#: The process-wide default registry.  Campaign workers inherit a copy
#: under ``fork`` and a fresh one under ``spawn``; either way the
#: per-batch snapshot *diffs* shipped to the parent are what get
#: merged, so inherited history never double-counts.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


def inc(name: str, value: float = 1, **labels: Any) -> None:
    _REGISTRY.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    _REGISTRY.set_gauge(name, value, **labels)


def max_gauge(name: str, value: float, **labels: Any) -> None:
    _REGISTRY.max_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    _REGISTRY.observe(name, value, **labels)


def counter_value(name: str, default: float = 0, **labels: Any) -> float:
    return _REGISTRY.counter_value(name, default, **labels)


def gauge_value(name: str, default: float = 0, **labels: Any) -> float:
    return _REGISTRY.gauge_value(name, default, **labels)


def snapshot() -> MetricsSnapshot:
    return _REGISTRY.snapshot()


def merge_into(diff: "MetricsSnapshot | Mapping[str, Any]") -> None:
    _REGISTRY.merge_into(diff)


def reset_metrics(names: Optional[Iterable[str]] = None) -> None:
    _REGISTRY.reset(names)
