"""Scalar reference simulator with full waveform recording.

The vectorised simulator (:mod:`repro.sim.vectorsim`) is optimised for
throughput and only exposes transition counts.  For debugging,
schematics-level reasoning (e.g. reproducing the hand analysis of
Sec. II-B: "the XOR gate outputting z0 toggles from !y1 to y0 XOR 1"),
and cross-checking the vector engine, this module simulates a single
stimulus and records the complete waveform of every wire.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..netlist.circuit import Circuit

__all__ = ["Waveform", "ScalarSimulator"]


@dataclass
class Waveform:
    """History of one wire: list of (time_ps, value) change points."""

    initial: bool = False
    changes: List[Tuple[int, bool]] = field(default_factory=list)

    def value_at(self, t: int) -> bool:
        v = self.initial
        for ct, cv in self.changes:
            if ct > t:
                break
            v = cv
        return v

    @property
    def n_transitions(self) -> int:
        return len(self.changes)


class ScalarSimulator:
    """Single-stimulus event-driven simulator with waveforms.

    Uses the same transport-delay semantics as
    :class:`~repro.sim.vectorsim.VectorSimulator`, so the two engines
    are cross-checkable transition for transition.
    """

    def __init__(self, circuit: Circuit):
        circuit.check()
        self.circuit = circuit
        self.values: Dict[int, bool] = {w: False for w in range(circuit.n_wires)}
        self._comb_fanout: Dict[int, List[int]] = {}
        for wire, readers in circuit.fanout_map().items():
            comb = [gi for gi in readers if not circuit.gates[gi].is_ff]
            if comb:
                self._comb_fanout[wire] = comb
        self.waveforms: Dict[int, Waveform] = {
            w: Waveform() for w in range(circuit.n_wires)
        }
        self._now = 0

    def reset_state(self, value: bool = False) -> None:
        for w in self.values:
            self.values[w] = value
        self.waveforms = {
            w: Waveform(initial=value) for w in range(self.circuit.n_wires)
        }
        self._now = 0

    def evaluate_combinational(self, input_values=None) -> None:
        """Zero-delay functional evaluation to a consistent state.

        Sets inputs, evaluates every combinational gate once in
        topological order, and resets the waveforms so the consistent
        state becomes the recorded initial condition (no transitions).
        Mirrors :meth:`VectorSimulator.evaluate_combinational`.
        """
        import numpy as np

        for w, v in (input_values or {}).items():
            self.values[w] = bool(v)
        for gi in self.circuit.comb_order():
            g = self.circuit.gates[gi]
            ins = [np.array([self.values[w]]) for w in g.inputs]
            self.values[g.output] = bool(g.cell.evaluate(*ins)[0])
        self.waveforms = {
            w: Waveform(initial=self.values[w])
            for w in range(self.circuit.n_wires)
        }

    def settle(
        self,
        input_events: Iterable[Tuple[int, int, bool]] = (),
        t_offset: int = 0,
        max_events: int = 100000,
    ) -> int:
        """Apply ``(t, wire, value)`` events and propagate to quiescence."""
        gates = self.circuit.gates
        pending: Dict[int, Dict[int, bool]] = {}
        heap: List[int] = []
        queued = set()

        def schedule(t: int, wire: int, val: bool) -> None:
            pending.setdefault(t, {})[wire] = val
            if t not in queued:
                queued.add(t)
                heapq.heappush(heap, t)

        for t, wire, val in input_events:
            schedule(int(t), wire, bool(val))

        last_t = 0
        budget = max_events
        while heap:
            t = heapq.heappop(heap)
            queued.discard(t)
            updates = pending.pop(t)
            last_t = t
            affected: List[int] = []
            for wire, new in updates.items():
                if self.values[wire] == new:
                    continue
                self.values[wire] = new
                self.waveforms[wire].changes.append((t_offset + t, new))
                affected.extend(self._comb_fanout.get(wire, ()))
            for gi in dict.fromkeys(affected):
                budget -= 1
                if budget < 0:
                    raise RuntimeError("event budget exhausted")
                g = gates[gi]
                import numpy as np

                ins = [np.array([self.values[w]]) for w in g.inputs]
                out = bool(g.cell.evaluate(*ins)[0])
                schedule(t + g.delay_ps, g.output, out)
        self._now = t_offset + last_t
        return last_t

    # ------------------------------------------------------------------
    def toggle_counts(self) -> Dict[str, int]:
        """Transitions per wire name (for glitch-count assertions)."""
        return {
            self.circuit.wire_name(w): wf.n_transitions
            for w, wf in self.waveforms.items()
            if wf.n_transitions
        }

    def total_toggles(self) -> int:
        return sum(wf.n_transitions for wf in self.waveforms.values())

    def waveform_of(self, name: str) -> Waveform:
        return self.waveforms[self.circuit.wire(name)]
