"""Event-driven glitch simulation and power modelling.

Substitute for the paper's physical measurement setup (SAKURA-G +
oscilloscope): a transport-delay gate-level simulator whose transient
transitions *are* the glitches the paper reasons about, and a
toggle-count power model whose traces feed TVLA.
"""

from .bitpack import (
    HAVE_BITWISE_COUNT,
    LANE_BITS,
    n_lanes,
    pack_bool,
    pack_scalar,
    popcount,
    resolve_pack_traces,
    unpack_bool,
    unpack_u8,
)
from .compiled import (
    CompiledSchedule,
    StaleScheduleError,
    compile_schedule,
    pin_schedule_cache,
    schedule_cache_counters,
    schedule_cache_info,
    unpin_schedule_cache,
)
from .power import CouplingModel, NullRecorder, PowerRecorder, default_weights
from .simulator import ScalarSimulator, Waveform
from .vectorsim import InputEvent, SimulationError, VectorSimulator
from .clocking import ClockedHarness, TimingViolation
from .vcd import to_vcd

__all__ = [
    "HAVE_BITWISE_COUNT",
    "LANE_BITS",
    "n_lanes",
    "pack_bool",
    "pack_scalar",
    "popcount",
    "resolve_pack_traces",
    "unpack_bool",
    "unpack_u8",
    "CompiledSchedule",
    "StaleScheduleError",
    "compile_schedule",
    "pin_schedule_cache",
    "schedule_cache_counters",
    "schedule_cache_info",
    "unpin_schedule_cache",
    "CouplingModel",
    "NullRecorder",
    "PowerRecorder",
    "default_weights",
    "ScalarSimulator",
    "Waveform",
    "InputEvent",
    "SimulationError",
    "VectorSimulator",
    "ClockedHarness",
    "TimingViolation",
    "to_vcd",
]
