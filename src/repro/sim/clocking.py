"""Multi-cycle clocked simulation harness.

Drives a circuit containing flip-flops through clock cycles on top of
the vectorised glitch simulator:

* at each rising edge, every FF samples the D (and EN) value that had
  settled by the end of the previous cycle; changed Q outputs are
  injected as events at ``CLK_TO_Q_PS``;
* primary-input changes are injected according to a per-cycle schedule
  (this is how the paper's controlled input sequences — one share per
  cycle, Sec. II-B — and the PD design's staggered arrivals are driven);
* all transitions of the cycle are recorded into the shared power trace
  at absolute time ``cycle * period + t``.

The harness also supports synchronous FF reset (secAND2-FF "must be
reset between successive computations", Sec. II-C) and checks that the
combinational logic settles within the clock period (the PD design's
DelayUnits push the period up — Table III's 21 MHz).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit, Gate
from ..netlist.timing import CLK_TO_Q_PS
from .bitpack import pack_scalar, unpack_bool
from .power import PowerRecorder
from .vectorsim import InputEvent, VectorSimulator

__all__ = ["ClockedHarness", "TimingViolation"]


class TimingViolation(RuntimeError):
    """Combinational logic did not settle within the clock period."""


class ClockedHarness:
    """Cycle-driver around :class:`VectorSimulator`.

    Args:
        circuit: Netlist (may contain DFF/DFFE cells).
        n_traces: Number of parallel stimuli.
        period_ps: Clock period; transitions later than this within a
            cycle raise :class:`TimingViolation` when ``check_timing``.
        check_timing: Enforce the period (default True).
        period_schedule: Optional per-cycle clock periods (ps) — cycle
            ``i`` lasts ``period_schedule[i]``, modelling clock jitter
            (see :func:`repro.faults.models.clock_jitter_periods`).
            Cycles beyond the schedule fall back to ``period_ps``.
            Event times stay relative to each cycle's own edge; the
            absolute power-trace offset accumulates the actual periods.
        compile_schedules: Record each cycle's event schedule on first
            use and replay it for subsequent batches (default True; see
            :mod:`repro.sim.compiled`).  Cycles driven with the same
            input-event timing pattern — the common case in campaigns,
            where every batch replays the same control sequence — then
            skip the interpreted event loop entirely.
        pack_traces: Bit-packed execution mode, forwarded to
            :class:`VectorSimulator` (``False`` / ``True`` / ``"auto"``;
            see :mod:`repro.sim.bitpack`).  FF state is then held as
            ``uint64`` lanes too, and clock-edge sampling runs bitwise.
    """

    def __init__(
        self,
        circuit: Circuit,
        n_traces: int,
        period_ps: int,
        check_timing: bool = True,
        compile_schedules: bool = True,
        period_schedule: Optional[Sequence[int]] = None,
        pack_traces: "bool | str" = False,
    ):
        self.sim = VectorSimulator(
            circuit,
            n_traces,
            compile_schedules=compile_schedules,
            pack_traces=pack_traces,
        )
        self.period_ps = period_ps
        self.period_schedule = (
            None if period_schedule is None else [int(p) for p in period_schedule]
        )
        if self.period_schedule is not None and any(
            p <= 0 for p in self.period_schedule
        ):
            raise ValueError("period_schedule entries must be positive")
        self.check_timing = check_timing
        self.cycle = 0
        self._t_offset_ps = 0
        self._ffs: List[Gate] = circuit.ff_gates()
        self._ff_index = {g.name: i for i, g in enumerate(self._ffs)}
        if self.sim.packed:
            self._ff_q = np.zeros(
                (len(self._ffs), self.sim.n_lanes), dtype=np.uint64
            )
        else:
            self._ff_q = np.zeros((len(self._ffs), n_traces), dtype=bool)
        # FFs may declare a reset_group param; step() can synchronously
        # reset whole groups (the paper resets the secAND2-FF gadget
        # flip-flops between computations, Sec. II-C).
        self._reset_groups: Dict[str, List[int]] = {}
        for i, g in enumerate(self._ffs):
            group = g.params.get("reset_group")
            if group is not None:
                self._reset_groups.setdefault(str(group), []).append(i)
        self.last_settle_ps = 0

    @property
    def circuit(self) -> Circuit:
        return self.sim.circuit

    @property
    def n_traces(self) -> int:
        return self.sim.n_traces

    def total_time_ps(self, n_cycles: int) -> int:
        """Trace length for a :class:`PowerRecorder` covering n cycles."""
        if self.period_schedule is None:
            return n_cycles * self.period_ps
        sched = self.period_schedule[:n_cycles]
        return sum(sched) + max(0, n_cycles - len(sched)) * self.period_ps

    def cycle_period_ps(self, cycle: int) -> int:
        """Actual period of the given cycle (schedule-aware)."""
        if self.period_schedule is not None and cycle < len(self.period_schedule):
            return self.period_schedule[cycle]
        return self.period_ps

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Asynchronous global reset: all wires and FF state to 0."""
        self.sim.reset_state(False)
        self._ff_q[:] = False
        self.cycle = 0
        self._t_offset_ps = 0

    def force_ffs(self, value: bool = False) -> None:
        """Synchronously force every FF's stored state (no events)."""
        if self.sim.packed:
            self._ff_q[:] = pack_scalar(value, 1)[0]
        else:
            self._ff_q[:] = value

    def preload(
        self,
        ff_values: Dict[str, np.ndarray],
        input_values: Optional[Dict[int, np.ndarray]] = None,
    ) -> None:
        """Initialise register contents and primary inputs *silently*.

        Sets FF state (by gate name) and input wires, then evaluates the
        combinational logic once with zero delay so every wire holds a
        consistent value.  No events, no power — this models the
        untraced load phase before the measured operation starts.
        """
        for name, vals in ff_values.items():
            i = self._ff_index[name]
            v = np.asarray(vals, dtype=bool)
            coerced = self.sim._coerce(v if v.ndim else bool(v))
            self._ff_q[i] = coerced
            self.sim.values[self._ffs[i].output] = coerced
        inputs = dict(input_values or {})
        self.sim.evaluate_combinational(inputs)

    def ff_state(self, name: str) -> np.ndarray:
        """Current stored boolean value of the named FF (copy)."""
        i = self._ff_index[name]
        if self.sim.packed:
            return unpack_bool(self._ff_q[i], self.n_traces)
        return self._ff_q[i].copy()

    # ------------------------------------------------------------------
    def _sample_ffs(
        self, reset: bool, reset_groups: Iterable[str]
    ) -> List[InputEvent]:
        """Clock edge: sample D/EN, emit Q-change events at CLK_TO_Q."""
        reset_idx = set()
        for grp in reset_groups:
            reset_idx.update(self._reset_groups.get(grp, ()))
        events: List[InputEvent] = []
        vals = self.sim.values
        packed = self.sim.packed
        for i, ff in enumerate(self._ffs):
            if reset or i in reset_idx:
                new_q = np.zeros_like(self._ff_q[i])
            elif ff.cell.name == "DFFE":
                d, en = ff.inputs
                if packed:
                    # Bitwise mux (np.where is positional, not bitwise):
                    # pad bits keep shadowing the last real trace.
                    new_q = (vals[en] & vals[d]) | (~vals[en] & self._ff_q[i])
                else:
                    new_q = np.where(vals[en], vals[d], self._ff_q[i])
            else:
                new_q = vals[ff.inputs[0]].copy()
            if not np.array_equal(new_q, self._ff_q[i]):
                self._ff_q[i] = new_q
                events.append((CLK_TO_Q_PS, ff.output, new_q))
        return events

    def step(
        self,
        input_events: Iterable[InputEvent] = (),
        recorder: Optional[PowerRecorder] = None,
        reset_ffs: bool = False,
        reset_groups: Iterable[str] = (),
    ) -> None:
        """Advance one clock cycle.

        Args:
            input_events: ``(t_ps, wire, values)`` with ``t_ps`` relative
                to this cycle's clock edge.
            recorder: Power recorder (absolute-time binning).
            reset_ffs: Apply synchronous reset this edge (all FFs -> 0).
            reset_groups: Names of FF reset groups (``reset_group``
                gate param) to reset this edge — e.g. the secAND2-FF
                gadget flip-flops at the start of each round.
        """
        events = self._sample_ffs(reset=reset_ffs, reset_groups=reset_groups)
        events.extend(input_events)
        period = self.cycle_period_ps(self.cycle)
        settle = self.sim.settle(
            events, recorder=recorder, t_offset=self._t_offset_ps
        )
        self.last_settle_ps = settle
        if self.check_timing and settle >= period:
            raise TimingViolation(
                f"cycle {self.cycle}: logic settled at {settle} ps "
                f">= period {period} ps"
            )
        self.cycle += 1
        self._t_offset_ps += period

    def run(
        self,
        schedule: Sequence[Iterable[InputEvent]],
        recorder: Optional[PowerRecorder] = None,
    ) -> None:
        """Run one cycle per entry of ``schedule``."""
        for cycle_events in schedule:
            self.step(cycle_events, recorder=recorder)

    # ------------------------------------------------------------------
    def wire_values(self, wire: int) -> np.ndarray:
        return self.sim.wire_values(wire)

    def output_values(self) -> Dict[str, np.ndarray]:
        return self.sim.output_values()
