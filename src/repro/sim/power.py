"""Toggle-count power model with optional coupling.

The paper measures the (amplified) power consumption of a Spartan-6
while the masked DES runs, and feeds the samples to TVLA.  Dynamic CMOS
power is dominated by switching activity, and every leakage argument in
the paper (Sec. II-B, II-C, II-D) is a Hamming-distance/toggle argument.
We therefore model instantaneous power as the fanout-weighted number of
signal transitions falling into each time bin:

    P[trace, bin] = sum over transitions (wire w toggles at time t)
                    of weight(w),   bin = t // bin_ps

*Coupling* (Sec. VII-C): the paper attributes the residual first-order
leakage of the secAND2-PD engine to physical coupling between the long
delay lines.  Capacitive (Miller) coupling makes the switching energy of
two adjacent lines depend on whether they switch in the same or opposite
direction.  :class:`CouplingModel` reproduces this: for configured wire
pairs, coincident transitions add an energy term

    c * s_i * s_j,   s = (new - old) ∈ {-1, 0, +1}

which is exactly the mechanism that makes 2-share implementations leak
in the first order even when probing-secure (cf. De Cnudde et al.,
"Does Coupling Affect the Security of Masked Implementations?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CouplingModel",
    "PowerRecorder",
    "NullRecorder",
    "TransientRecorder",
    "default_weights",
]


@dataclass
class CouplingModel:
    """Pairwise transition coupling between wires.

    Attributes:
        pairs: Wire-id pairs that are physically adjacent (e.g. the
            delay lines of the two shares of one variable in the PD
            S-box delay block, Fig. 11).
        coefficient: Energy added per coincident transition product;
            small relative to the unit toggle energy (physical coupling
            is a second-order effect, which is why the paper only sees
            it after millions of traces).
    """

    pairs: Sequence[Tuple[int, int]]
    coefficient: float = 0.05
    #: Two transitions couple when they happen within this window
    #: (routing skew means "simultaneous" switching is never exact).
    window_ps: int = 150

    def partner_map(self) -> Dict[int, List[int]]:
        pm: Dict[int, List[int]] = {}
        for a, b in self.pairs:
            pm.setdefault(a, []).append(b)
            pm.setdefault(b, []).append(a)
        return pm


def default_weights(fanout: Dict[int, List[int]], n_wires: int) -> np.ndarray:
    """Per-wire toggle energy: 1 + fanout count (capacitance proxy)."""
    w = np.ones(n_wires, dtype=np.float32)
    for wire, readers in fanout.items():
        w[wire] += len(readers)
    return w


class PowerRecorder:
    """Accumulates transition energy into a (n_traces, n_bins) matrix.

    The simulator calls :meth:`record_batch` once per event time with
    all wires that changed at that instant, so coincident-transition
    coupling can be evaluated exactly.
    """

    def __init__(
        self,
        n_traces: int,
        total_time_ps: int,
        bin_ps: int = 250,
        weights: Optional[np.ndarray] = None,
        coupling: Optional[CouplingModel] = None,
    ):
        if bin_ps <= 0:
            raise ValueError("bin_ps must be positive")
        self.n_traces = n_traces
        self.bin_ps = bin_ps
        self.n_bins = max(1, -(-total_time_ps // bin_ps))
        self._power = np.zeros((n_traces, self.n_bins), dtype=np.float32)
        self._weights = weights
        self._coupling = coupling
        self._partners = coupling.partner_map() if coupling else {}
        # last transition of each coupled wire: wire -> (t_ps, sign array)
        self._last_transition: Dict[int, Tuple[int, np.ndarray]] = {}

    @property
    def power(self) -> np.ndarray:
        """The accumulated (n_traces, n_bins) power matrix."""
        return self._power

    def _weight(self, wire: int) -> float:
        if self._weights is None:
            return 1.0
        return float(self._weights[wire])

    def record_wire(
        self, t_ps, wire: int, toggled: np.ndarray, new: np.ndarray
    ) -> None:
        """Fast path: one wire's (pre-computed) transitions at ``t_ps``.

        ``toggled`` must be ``old ^ new`` and already known non-zero.
        """
        b = min(int(t_ps // self.bin_ps), self.n_bins - 1)
        self._power[:, b] += toggled * np.float32(self._weight(wire))
        if self._partners and wire in self._partners:
            old = new ^ toggled
            sign = new.astype(np.int8) - old.astype(np.int8)
            self._couple_wire(self._power[:, b], t_ps, wire, sign)

    def _couple_wire(
        self, col: np.ndarray, t_ps, wire: int, sign: np.ndarray
    ) -> None:
        window = self._coupling.window_ps
        c = self._coupling.coefficient
        for partner in self._partners[wire]:
            last = self._last_transition.get(partner)
            if last is None or t_ps - last[0] > window:
                continue
            # Opposite-direction switching charges the Miller cap:
            # more energy; same direction: less.  Sign convention is
            # irrelevant for TVLA; magnitude is what leaks.
            col -= c * (sign * last[1]).astype(np.float32)
        self._last_transition[wire] = (t_ps, sign)

    def add_energy(self, t_ps, energy: np.ndarray) -> None:
        """Batched path: pre-summed transition energy of one instant.

        The compiled replay engine sums ``weight(w) * toggled(w)`` over
        every wire that switched at ``t_ps`` into one ``(n_traces,)``
        vector and deposits it with a single call — one column update
        per time bin instead of one per wire.  With the default
        integer-valued weights the result is bit-identical to the
        per-wire :meth:`record_wire` accumulation.
        """
        b = min(int(t_ps // self.bin_ps), self.n_bins - 1)
        self._power[:, b] += energy

    def record_batch(
        self, t_ps: int, changes: Dict[int, Tuple[np.ndarray, np.ndarray]]
    ) -> None:
        """Record several wires' transitions at time ``t_ps``.

        Args:
            t_ps: Absolute simulation time of the transitions.
            changes: wire id -> (old_values, new_values) boolean arrays;
                only traces where old != new toggled.
        """
        for wire, (old, new) in changes.items():
            toggled = old ^ new
            if toggled.any():
                self.record_wire(t_ps, wire, toggled, new)

    def samples(self) -> np.ndarray:
        """Alias of :attr:`power` (TVLA vocabulary)."""
        return self._power


class TransientRecorder:
    """Captures every wire transition verbatim instead of binning energy.

    Where :class:`PowerRecorder` collapses transitions into a power
    trace, this recorder keeps the full ``(time, wire, toggled, new)``
    event stream — the raw material of a *glitch-extended probe*
    (:mod:`repro.verify`): the complete transient value sequence each
    wire takes while the logic settles.

    Only the interpreted simulation path emits per-wire transitions
    (``compile_schedules=False``); the compiled replay engine pre-sums
    energy across wires, which destroys exactly the information this
    recorder exists to keep, so :meth:`add_energy` refuses to run.
    The bit-packed engine (``pack_traces=True``) is refused for the
    same reason — the simulator checks :attr:`requires_transients` and
    raises before simulating (see :mod:`repro.sim.bitpack`).
    """

    #: The simulator keeps the exact boolean transient path for this
    #: recorder: packed simulation raises instead of silently handing
    #: it lane words.
    requires_transients = True

    def __init__(self) -> None:
        #: ``(t_ps, wire, toggled, new)`` in simulation order; ``toggled``
        #: and ``new`` are per-trace boolean arrays (copies).
        self.events: List[Tuple[float, int, np.ndarray, np.ndarray]] = []

    def record_wire(
        self, t_ps, wire: int, toggled: np.ndarray, new: np.ndarray
    ) -> None:
        self.events.append((t_ps, int(wire), toggled.copy(), new.copy()))

    def record_batch(
        self, t_ps: int, changes: Dict[int, Tuple[np.ndarray, np.ndarray]]
    ) -> None:
        for wire, (old, new) in changes.items():
            toggled = old ^ new
            if toggled.any():
                self.record_wire(t_ps, wire, toggled, new)

    def add_energy(self, t_ps, energy) -> None:
        raise RuntimeError(
            "TransientRecorder needs per-wire transitions; run the "
            "simulator with compile_schedules=False"
        )


class NullRecorder:
    """A recorder that discards everything (pure functional simulation).

    Both simulation engines check :attr:`is_null` and skip *all*
    recording work for this recorder — no toggle-energy arithmetic, no
    unpacking of packed lanes — so functional replay with a
    ``NullRecorder`` costs exactly as much as passing no recorder while
    keeping a recorder-shaped object in APIs that require one.
    """

    #: Engines treat the recorder as absent: transitions are neither
    #: unpacked nor weighted.  The no-op methods below still exist for
    #: callers that record unconditionally.
    is_null = True

    n_bins = 0

    def record_batch(self, t_ps: int, changes) -> None:
        pass

    def record_wire(self, t_ps, wire, toggled, new) -> None:
        pass

    def add_energy(self, t_ps, energy) -> None:
        pass
