"""Toggle-count power model with optional coupling.

The paper measures the (amplified) power consumption of a Spartan-6
while the masked DES runs, and feeds the samples to TVLA.  Dynamic CMOS
power is dominated by switching activity, and every leakage argument in
the paper (Sec. II-B, II-C, II-D) is a Hamming-distance/toggle argument.
We therefore model instantaneous power as the fanout-weighted number of
signal transitions falling into each time bin:

    P[trace, bin] = sum over transitions (wire w toggles at time t)
                    of weight(w),   bin = t // bin_ps

*Coupling* (Sec. VII-C): the paper attributes the residual first-order
leakage of the secAND2-PD engine to physical coupling between the long
delay lines.  Capacitive (Miller) coupling makes the switching energy of
two adjacent lines depend on whether they switch in the same or opposite
direction.  :class:`CouplingModel` reproduces this: for configured wire
pairs, coincident transitions add an energy term

    c * s_i * s_j,   s = (new - old) ∈ {-1, 0, +1}

which is exactly the mechanism that makes 2-share implementations leak
in the first order even when probing-secure (cf. De Cnudde et al.,
"Does Coupling Affect the Security of Masked Implementations?").
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs.log import get_logger
from ..obs.trace import trace
from .bitpack import COUNTER_EXACT_BITS, counter_add, counter_unpack

_LOG = get_logger("sim.power")

__all__ = [
    "CouplingModel",
    "PowerRecorder",
    "PackedToggleAccumulator",
    "NullRecorder",
    "TransientRecorder",
    "default_weights",
    "ClampedEventWarning",
    "PackedAccumulatorOverflowWarning",
    "packed_accumulator_counters",
    "reset_packed_accumulator_counters",
]


class ClampedEventWarning(RuntimeWarning):
    """A transition fell past the recorder's time window and was clamped
    into the last bin.  Emitted once per recorder (i.e. once per batch —
    engines build a fresh recorder per batch); every clamped event is
    counted in ``recorder.stats["clamped_events"]``."""


class PackedAccumulatorOverflowWarning(RuntimeWarning):
    """A packed counter bin reached ``2**COUNTER_EXACT_BITS``: float32
    can no longer represent every integer count exactly, so bitwise
    equality with the boolean engine's sequential adds is off the
    table.  The flush still deposits the correctly-rounded value (one
    exact-integer -> float32 conversion) instead of drifting."""


#: Registry metric names for the process-wide packed-accumulation
#: telemetry (backed by :mod:`repro.obs.metrics`), surfaced by the
#: throughput bench.  ``max_planes`` is a high-water gauge; the rest
#: are monotone counters — snapshot with
#: :func:`packed_accumulator_counters` and diff around a region.
_M_ACCUMULATORS = "packed_accumulator.accumulators"
_M_FLUSHES = "packed_accumulator.flushes"
_M_MAX_PLANES = "packed_accumulator.max_planes"
_M_OVERFLOW_BINS = "packed_accumulator.overflow_bins"
_M_CLAMPED = "power.clamped_events"
_PACKED_METRIC_NAMES = (
    _M_ACCUMULATORS,
    _M_FLUSHES,
    _M_MAX_PLANES,
    _M_OVERFLOW_BINS,
)


def packed_accumulator_counters() -> Dict[str, int]:
    """Snapshot of the process-wide packed-accumulation counters.

    A stable re-export of the :mod:`repro.obs.metrics` registry
    entries (``packed_accumulator.*``): ``accumulators`` instances
    created, ``flushes`` end-of-batch counter-plane unpacks,
    ``max_planes`` deepest per-bin counter seen and ``overflow_bins``
    that crossed the 2^24 exactness bound.
    """
    return {
        "accumulators": int(obs_metrics.counter_value(_M_ACCUMULATORS)),
        "flushes": int(obs_metrics.counter_value(_M_FLUSHES)),
        "max_planes": int(obs_metrics.gauge_value(_M_MAX_PLANES)),
        "overflow_bins": int(obs_metrics.counter_value(_M_OVERFLOW_BINS)),
    }


def reset_packed_accumulator_counters() -> None:
    """Zero the packed-accumulation counters (tests / bench prep)."""
    obs_metrics.reset_metrics(_PACKED_METRIC_NAMES)


@dataclass
class CouplingModel:
    """Pairwise transition coupling between wires.

    Attributes:
        pairs: Wire-id pairs that are physically adjacent (e.g. the
            delay lines of the two shares of one variable in the PD
            S-box delay block, Fig. 11).
        coefficient: Energy added per coincident transition product;
            small relative to the unit toggle energy (physical coupling
            is a second-order effect, which is why the paper only sees
            it after millions of traces).
    """

    pairs: Sequence[Tuple[int, int]]
    coefficient: float = 0.05
    #: Two transitions couple when they happen within this window
    #: (routing skew means "simultaneous" switching is never exact).
    window_ps: int = 150

    def partner_map(self) -> Dict[int, List[int]]:
        pm: Dict[int, List[int]] = {}
        for a, b in self.pairs:
            pm.setdefault(a, []).append(b)
            pm.setdefault(b, []).append(a)
        return pm


def default_weights(fanout: Dict[int, List[int]], n_wires: int) -> np.ndarray:
    """Per-wire toggle energy: 1 + fanout count (capacitance proxy)."""
    w = np.ones(n_wires, dtype=np.float32)
    for wire, readers in fanout.items():
        w[wire] += len(readers)
    return w


class PowerRecorder:
    """Accumulates transition energy into a (n_traces, n_bins) matrix.

    The simulator calls :meth:`record_batch` once per event time with
    all wires that changed at that instant, so coincident-transition
    coupling can be evaluated exactly.
    """

    def __init__(
        self,
        n_traces: int,
        total_time_ps: int,
        bin_ps: int = 250,
        weights: Optional[np.ndarray] = None,
        coupling: Optional[CouplingModel] = None,
    ):
        if bin_ps <= 0:
            raise ValueError("bin_ps must be positive")
        self.n_traces = n_traces
        self.bin_ps = bin_ps
        self.n_bins = max(1, -(-total_time_ps // bin_ps))
        self._power = np.zeros((n_traces, self.n_bins), dtype=np.float32)
        self._weights = weights
        self._coupling = coupling
        self._partners = coupling.partner_map() if coupling else {}
        # last transition of each coupled wire: wire -> (t_ps, sign array)
        self._last_transition: Dict[int, Tuple[int, np.ndarray]] = {}
        #: Observability counters; ``clamped_events`` counts recorded
        #: calls whose time fell past the window (see
        #: :class:`ClampedEventWarning`), the ``overflow_bins`` /
        #: ``max_counter_planes`` pair mirrors the packed accumulator.
        self.stats: Dict[str, int] = {
            "clamped_events": 0,
            "overflow_bins": 0,
            "max_counter_planes": 0,
        }
        self._clamp_warned = False
        self._packed_acc: Optional["PackedToggleAccumulator"] = None

    @property
    def power(self) -> np.ndarray:
        """The accumulated (n_traces, n_bins) power matrix.

        Reading it flushes any pending packed counter planes first, so
        callers always see the complete batch.
        """
        if self._packed_acc is not None:
            self._packed_acc.flush()
        return self._power

    @property
    def accepts_packed(self) -> bool:
        """Whether packed simulation may hand this recorder lane words
        via :meth:`packed_accumulator` instead of unpacked booleans.

        Requires toggle-count-only semantics (no coupling partners —
        coupling needs per-trace transition *signs*) and weights that
        are small non-negative integers, so counter-plane accumulation
        stays bitwise-equal to sequential float32 adds (see
        ``COUNTER_EXACT_BITS``).
        """
        if self._partners:
            return False
        if self._weights is not None:
            w = self._weights
            if (
                not np.all(w == np.floor(w))
                or np.any(w < 0)
                or np.any(w >= 2**COUNTER_EXACT_BITS)
            ):
                return False
        return True

    def packed_accumulator(
        self, n_traces: int, lanes: int
    ) -> Optional["PackedToggleAccumulator"]:
        """The packed-domain sink for this recorder, or ``None``.

        Engines call this once per settle/replay; the accumulator is
        reused across calls within a batch and flushed lazily when
        :attr:`power` / :meth:`samples` is read.  Returns ``None`` when
        :attr:`accepts_packed` is false — callers must then fall back
        to the per-event unpack leg (:meth:`record_wire`).
        """
        if not self.accepts_packed:
            return None
        if n_traces != self.n_traces:
            raise ValueError(
                f"recorder holds {self.n_traces} traces, "
                f"packed batch has {n_traces}"
            )
        acc = self._packed_acc
        if acc is None or acc.lanes != lanes:
            if acc is not None:
                acc.flush()
            acc = PackedToggleAccumulator(self, lanes)
            self._packed_acc = acc
        return acc

    def _note_clamped(self, t_ps, count: int = 1) -> None:
        self.stats["clamped_events"] += count
        obs_metrics.inc(_M_CLAMPED, count)
        if not self._clamp_warned:
            self._clamp_warned = True
            msg = (
                f"transition at t={t_ps} ps falls past the recorder "
                f"window ({self.n_bins * self.bin_ps} ps); clamping "
                "into the last bin (all such events are counted in "
                "stats['clamped_events'])"
            )
            _LOG.warning("%s", msg)
            warnings.warn(msg, ClampedEventWarning, stacklevel=4)

    def _weight(self, wire: int) -> float:
        if self._weights is None:
            return 1.0
        return float(self._weights[wire])

    def record_wire(
        self, t_ps, wire: int, toggled: np.ndarray, new: np.ndarray
    ) -> None:
        """Fast path: one wire's (pre-computed) transitions at ``t_ps``.

        ``toggled`` must be ``old ^ new`` and already known non-zero.
        """
        b = int(t_ps // self.bin_ps)
        if b >= self.n_bins:
            self._note_clamped(t_ps)
            b = self.n_bins - 1
        self._power[:, b] += toggled * np.float32(self._weight(wire))
        if self._partners and wire in self._partners:
            old = new ^ toggled
            sign = new.astype(np.int8) - old.astype(np.int8)
            self._couple_wire(self._power[:, b], t_ps, wire, sign)

    def _couple_wire(
        self, col: np.ndarray, t_ps, wire: int, sign: np.ndarray
    ) -> None:
        window = self._coupling.window_ps
        c = self._coupling.coefficient
        for partner in self._partners[wire]:
            last = self._last_transition.get(partner)
            if last is None or t_ps - last[0] > window:
                continue
            # Opposite-direction switching charges the Miller cap:
            # more energy; same direction: less.  Sign convention is
            # irrelevant for TVLA; magnitude is what leaks.
            col -= c * (sign * last[1]).astype(np.float32)
        self._last_transition[wire] = (t_ps, sign)

    def add_energy(self, t_ps, energy: np.ndarray) -> None:
        """Batched path: pre-summed transition energy of one instant.

        The compiled replay engine sums ``weight(w) * toggled(w)`` over
        every wire that switched at ``t_ps`` into one ``(n_traces,)``
        vector and deposits it with a single call — one column update
        per time bin instead of one per wire.  With the default
        integer-valued weights the result is bit-identical to the
        per-wire :meth:`record_wire` accumulation.
        """
        b = int(t_ps // self.bin_ps)
        if b >= self.n_bins:
            self._note_clamped(t_ps)
            b = self.n_bins - 1
        self._power[:, b] += energy

    def record_batch(
        self, t_ps: int, changes: Dict[int, Tuple[np.ndarray, np.ndarray]]
    ) -> None:
        """Record several wires' transitions at time ``t_ps``.

        Args:
            t_ps: Absolute simulation time of the transitions.
            changes: wire id -> (old_values, new_values) boolean arrays;
                only traces where old != new toggled.
        """
        for wire, (old, new) in changes.items():
            toggled = old ^ new
            if toggled.any():
                self.record_wire(t_ps, wire, toggled, new)

    def samples(self) -> np.ndarray:
        """Alias of :attr:`power` (TVLA vocabulary)."""
        return self.power


class PackedToggleAccumulator:
    """Packed-domain power accumulation: bit-sliced vertical counters.

    The packed engine's toggle masks are ``(n_lanes,)`` uint64 words,
    one trace per bit.  Instead of unpacking each mask to booleans for
    a float32 add (the per-event leg that made ``campaign_packed``
    *slower* than boolean), this sink keeps, per time bin, a list of
    counter *bit-planes*: plane ``j`` holds bit ``j`` of every trace's
    running toggle-energy count.  Adding a mask is a ripple-carry add
    over Python big-ints (:func:`repro.sim.bitpack.counter_add`);
    integer weights ``1 + fanout`` decompose in binary so a weight-
    ``w`` toggle issues one shifted add per set bit of ``w``.  Planes
    are unpacked to the ``(n_traces, n_bins)`` float32 matrix exactly
    once, at :meth:`flush` (end of batch) — bitwise-identical to the
    boolean engine while per-bin counts stay below
    ``2**COUNTER_EXACT_BITS`` (guarded loudly, see
    :class:`PackedAccumulatorOverflowWarning`).

    Obtain instances via :meth:`PowerRecorder.packed_accumulator`, not
    directly — the recorder owns flushing and the compatibility check.
    """

    def __init__(self, recorder: PowerRecorder, lanes: int):
        self.recorder = recorder
        self.lanes = lanes
        self.bin_ps = recorder.bin_ps
        self.n_bins = recorder.n_bins
        # bin -> counter planes (list of big-ints, LSB plane first)
        self._bins: Dict[int, List[int]] = {}
        # wire -> set-bit positions of its integer weight
        self._shifts: Dict[int, Tuple[int, ...]] = {}
        obs_metrics.inc(_M_ACCUMULATORS)

    def _wire_shifts(self, wire: int) -> Tuple[int, ...]:
        shifts = self._shifts.get(wire)
        if shifts is None:
            weights = self.recorder._weights
            w = 1 if weights is None else int(weights[wire])
            shifts = tuple(
                j for j in range(w.bit_length()) if (w >> j) & 1
            )
            self._shifts[wire] = shifts
        return shifts

    def add(self, t_ps, wire: int, toggled) -> None:
        """Accumulate one wire's packed toggle mask at time ``t_ps``.

        ``toggled`` is the ``(n_lanes,)`` uint64 ``old ^ new`` mask —
        or that mask already converted to a big-int (the compiled
        replay loop converts once, reusing the int as its liveness
        test, so the hot path never touches numpy here).  Pad bits
        ride along harmlessly — they are dropped at unpack time.
        """
        mask = (
            toggled
            if type(toggled) is int
            else int.from_bytes(toggled.tobytes(), "little")
        )
        b = int(t_ps // self.bin_ps)
        if b >= self.n_bins:
            self.recorder._note_clamped(t_ps)
            b = self.n_bins - 1
        planes = self._bins.get(b)
        if planes is None:
            planes = []
            self._bins[b] = planes
        shifts = self._shifts.get(wire)
        if shifts is None:
            shifts = self._wire_shifts(wire)
        for shift in shifts:
            counter_add(planes, mask, shift)

    def flush(self) -> None:
        """Unpack every pending counter bin into the recorder's float32
        power matrix and clear the planes.  Idempotent."""
        if not self._bins:
            return
        with trace("power.flush", bins=len(self._bins)):
            rec = self.recorder
            power = rec._power
            n = rec.n_traces
            obs_metrics.inc(_M_FLUSHES)
            max_depth = 0
            for b, planes in self._bins.items():
                depth = len(planes)
                if depth > max_depth:
                    max_depth = depth
                if depth > rec.stats["max_counter_planes"]:
                    rec.stats["max_counter_planes"] = depth
                counts = counter_unpack(planes, self.lanes, n)
                if depth > COUNTER_EXACT_BITS and int(
                    counts.max(initial=0)
                ) >= (1 << COUNTER_EXACT_BITS):
                    obs_metrics.inc(_M_OVERFLOW_BINS)
                    rec.stats["overflow_bins"] += 1
                    msg = (
                        f"packed counter for bin {b} reached "
                        f"{int(counts.max())} >= 2^{COUNTER_EXACT_BITS}: "
                        "beyond the float32 exactness bound.  The flushed "
                        "value is correctly rounded (single int->float32 "
                        "conversion) but may differ bitwise from the "
                        "boolean engine's sequential accumulation"
                    )
                    _LOG.warning("%s", msg)
                    warnings.warn(
                        msg, PackedAccumulatorOverflowWarning, stacklevel=3
                    )
                # int64 -> float32 is a single correct rounding; below the
                # exactness bound it is the exact integer either way.
                power[:, b] += counts.astype(np.float32)
            if max_depth:
                obs_metrics.max_gauge(_M_MAX_PLANES, max_depth)
            self._bins.clear()


class TransientRecorder:
    """Captures every wire transition verbatim instead of binning energy.

    Where :class:`PowerRecorder` collapses transitions into a power
    trace, this recorder keeps the full ``(time, wire, toggled, new)``
    event stream — the raw material of a *glitch-extended probe*
    (:mod:`repro.verify`): the complete transient value sequence each
    wire takes while the logic settles.

    Only the interpreted simulation path emits per-wire transitions
    (``compile_schedules=False``); the compiled replay engine pre-sums
    energy across wires, which destroys exactly the information this
    recorder exists to keep, so :meth:`add_energy` refuses to run.
    The bit-packed engine (``pack_traces=True``) is refused for the
    same reason — the simulator checks :attr:`requires_transients` and
    raises before simulating (see :mod:`repro.sim.bitpack`).
    """

    #: The simulator keeps the exact boolean transient path for this
    #: recorder: packed simulation raises instead of silently handing
    #: it lane words.
    requires_transients = True

    def __init__(self) -> None:
        #: ``(t_ps, wire, toggled, new)`` in simulation order; ``toggled``
        #: and ``new`` are per-trace boolean arrays (copies).
        self.events: List[Tuple[float, int, np.ndarray, np.ndarray]] = []

    def record_wire(
        self, t_ps, wire: int, toggled: np.ndarray, new: np.ndarray
    ) -> None:
        self.events.append((t_ps, int(wire), toggled.copy(), new.copy()))

    def record_batch(
        self, t_ps: int, changes: Dict[int, Tuple[np.ndarray, np.ndarray]]
    ) -> None:
        for wire, (old, new) in changes.items():
            toggled = old ^ new
            if toggled.any():
                self.record_wire(t_ps, wire, toggled, new)

    def add_energy(self, t_ps, energy) -> None:
        raise RuntimeError(
            "TransientRecorder needs per-wire transitions; run the "
            "simulator with compile_schedules=False"
        )


class NullRecorder:
    """A recorder that discards everything (pure functional simulation).

    Both simulation engines check :attr:`is_null` and skip *all*
    recording work for this recorder — no toggle-energy arithmetic, no
    unpacking of packed lanes — so functional replay with a
    ``NullRecorder`` costs exactly as much as passing no recorder while
    keeping a recorder-shaped object in APIs that require one.
    """

    #: Engines treat the recorder as absent: transitions are neither
    #: unpacked nor weighted.  The no-op methods below still exist for
    #: callers that record unconditionally.
    is_null = True

    n_bins = 0

    def record_batch(self, t_ps: int, changes) -> None:
        pass

    def record_wire(self, t_ps, wire, toggled, new) -> None:
        pass

    def add_energy(self, t_ps, energy) -> None:
        pass
