"""Vectorised event-driven glitch simulator.

This is the workhorse behind every leakage experiment: it simulates N
independent stimuli (traces) of one circuit simultaneously, with
transition-accurate timing, so a full fixed-vs-random TVLA campaign is a
handful of batched runs instead of millions of scalar simulations.

Timing model
------------
Transport delay.  When any input of a gate changes at time ``t`` the
gate re-evaluates with the wire values valid at ``t`` and schedules its
(possibly unchanged) output value for time ``t + gate.delay_ps``.
Different arrival times of a gate's inputs therefore produce exactly the
transient output transitions — *glitches* — whose data dependence the
paper exploits and defends against (Sec. II).

Vectorisation trick
-------------------
Because cell delays are data-independent, the set of *potential* event
times is identical across traces.  We therefore schedule gate
evaluations deterministically (whenever an input might have changed) and
apply the value updates per-trace with numpy boolean arrays; traces in
which nothing toggled simply contribute no power.  This makes the
simulation exact per trace while costing one numpy op per gate
evaluation instead of one per (gate, trace).

Schedule compilation
--------------------
The same data independence makes the *control flow* of ``settle``
identical across batches: the first call with a given input-event
timing pattern records the evaluation schedule via
:mod:`repro.sim.compiled`, and subsequent calls replay it as
straight-line numpy (no heap, no per-event dicts, batched power
updates) with transition-for-transition identical results.  Pass
``compile_schedules=False`` to force the interpreted path.

Packed trace lanes
------------------
``pack_traces=True`` (or ``"auto"``, which engages at 64+ traces)
stores wire state as ``uint64`` lanes of 64 traces each
(:mod:`repro.sim.bitpack`): every gate evaluation and toggle mask
becomes a bitwise op on 64x less data, while liveness guards, event
accounting and — via lazy unpacking of toggling wires only — the
recorded power stay bit-identical to the boolean engine.
:class:`~repro.sim.power.TransientRecorder` needs the boolean per-wire
transient stream and is refused under packing.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from .bitpack import (
    n_lanes,
    pack_bool,
    pack_scalar,
    resolve_pack_traces,
    unpack_bool,
)
from ..obs.trace import trace
from .compiled import lookup_or_compile, replay
from .power import PowerRecorder, default_weights

__all__ = ["VectorSimulator", "InputEvent", "SimulationError", "budget_error"]

#: (time_ps, wire_id, new_values) — new_values is a (n_traces,) bool array
#: or a scalar bool broadcast to all traces.
InputEvent = Tuple[int, int, "np.ndarray | bool"]


class SimulationError(RuntimeError):
    """Raised when the event budget is exhausted (oscillating circuit).

    Attributes:
        time_ps: Simulation instant at which the budget ran out.
        budget: The exhausted event budget (``max_events``).
        wires: Names of the wires switching at that instant — for a
            genuine oscillation these are the wires of the loop.
    """

    def __init__(
        self,
        message: str,
        *,
        time_ps: "float | None" = None,
        budget: Optional[int] = None,
        wires: Sequence[str] = (),
    ):
        super().__init__(message)
        self.time_ps = time_ps
        self.budget = budget
        self.wires = tuple(wires)


def budget_error(circuit, t, max_events: int, wires) -> SimulationError:
    """Build the budget-exhaustion error for both simulation engines.

    ``wires`` are the wire ids updating at instant ``t``; their names
    identify the oscillating region of the circuit.
    """
    if circuit is not None:
        name = circuit.name
        names = [circuit.wire_name(int(w)) for w in list(wires)[:8]]
    else:  # pragma: no cover - diagnostics without a circuit handle
        name = ""
        names = []
    suffix = " ..." if len(wires) > 8 else ""
    return SimulationError(
        f"event budget of {max_events} exhausted at t={t} in {name!r}; "
        f"oscillating wires: {', '.join(names) or '?'}{suffix}",
        time_ps=t,
        budget=max_events,
        wires=names,
    )


class VectorSimulator:
    """Simulates ``n_traces`` stimuli of ``circuit`` in parallel.

    The simulator owns the wire state between calls, so sequential
    behaviour (values persisting across clock cycles, the paper's
    "inputs are not reset between computations" scenarios) falls out
    naturally: state only changes through events.
    """

    def __init__(
        self,
        circuit: Circuit,
        n_traces: int,
        compile_schedules: bool = True,
        allow_loops: bool = False,
        pack_traces: "bool | str" = False,
    ):
        """``allow_loops=True`` admits circuits with combinational
        feedback (ring oscillators, latches): the event-driven
        :meth:`settle` simulates them faithfully until the event budget
        cuts a genuine oscillation off with a :class:`SimulationError`.
        Zero-delay :meth:`evaluate_combinational` still needs a
        topological order and keeps rejecting loops.

        ``pack_traces`` selects the bit-packed execution mode (see the
        module docstring): ``False`` (default) keeps boolean wire
        state, ``True`` packs 64 traces per ``uint64`` lane, ``"auto"``
        packs when ``n_traces >= 64``."""
        circuit.check(allow_loops=allow_loops)
        self.circuit = circuit
        self.n_traces = n_traces
        self.compile_schedules = compile_schedules
        self.packed = resolve_pack_traces(pack_traces, n_traces)
        self.n_lanes = n_lanes(n_traces) if self.packed else n_traces
        if self.packed:
            self.values = np.zeros(
                (circuit.n_wires, self.n_lanes), dtype=np.uint64
            )
        else:
            self.values = np.zeros((circuit.n_wires, n_traces), dtype=bool)
        self._fanout = circuit.fanout_map()
        # Fanout restricted to combinational gates: FF inputs are
        # sampled by the clocking harness, not propagated continuously.
        self._comb_fanout: Dict[int, List[int]] = {}
        for wire, readers in self._fanout.items():
            comb = [gi for gi in readers if not circuit.gates[gi].is_ff]
            if comb:
                self._comb_fanout[wire] = comb
        self.weights = default_weights(self._fanout, circuit.n_wires)
        self.events_processed = 0

    # ------------------------------------------------------------------
    def reset_state(self, value: bool = False) -> None:
        """Force every wire to ``value`` without generating events."""
        if self.packed:
            self.values[:] = pack_scalar(value, 1)[0]
        else:
            self.values[:] = value

    def wire_values(self, wire: int) -> np.ndarray:
        """Current boolean values of a wire.

        Boolean engine: a ``(n_traces,)`` view (do not mutate).  Packed
        engine: an unpacked ``(n_traces,)`` copy.
        """
        if self.packed:
            return unpack_bool(self.values[wire], self.n_traces)
        return self.values[wire]

    def packed_wire_values(self, wire: int) -> np.ndarray:
        """Raw lane row of a wire in packed mode (view, do not mutate)."""
        if not self.packed:
            raise RuntimeError("simulator is not packed (pack_traces=False)")
        return self.values[wire]

    def output_values(self) -> Dict[str, np.ndarray]:
        return {
            n: self.wire_values(w).copy() if not self.packed
            else self.wire_values(w)
            for n, w in self.circuit.outputs.items()
        }

    # ------------------------------------------------------------------
    def _coerce(self, vals: "np.ndarray | bool") -> np.ndarray:
        if self.packed:
            if isinstance(vals, np.ndarray):
                if vals.dtype == np.uint64 and vals.shape == (self.n_lanes,):
                    return vals  # already packed (harness FF events)
                if vals.shape != (self.n_traces,):
                    raise ValueError(
                        f"expected shape ({self.n_traces},) bool or "
                        f"({self.n_lanes},) uint64, got {vals.shape} "
                        f"{vals.dtype}"
                    )
                return pack_bool(vals.astype(bool, copy=False))
            return pack_scalar(bool(vals), self.n_lanes)
        if isinstance(vals, np.ndarray):
            if vals.shape != (self.n_traces,):
                raise ValueError(
                    f"expected shape ({self.n_traces},), got {vals.shape}"
                )
            return vals.astype(bool, copy=False)
        return np.full(self.n_traces, bool(vals))

    def settle(
        self,
        input_events: Iterable[InputEvent] = (),
        recorder: Optional[PowerRecorder] = None,
        t_offset: int = 0,
        max_events: Optional[int] = None,
    ) -> int:
        """Apply input events and propagate until quiescent.

        Args:
            input_events: ``(time_ps, wire, new_values)`` tuples; times
                are relative to the start of this call.
            recorder: Optional power recorder; receives every transition
                batch at absolute time ``t_offset + t``.
            t_offset: Absolute time of this call's t=0 (for binning).
            max_events: Event budget; default ``64 * n_gates + 64``.

        Returns:
            The relative time of the last processed event (settle time).
        """
        gates = self.circuit.gates
        if max_events is None:
            max_events = 64 * max(1, len(gates)) + 64
        if (
            self.packed
            and recorder is not None
            and getattr(recorder, "requires_transients", False)
        ):
            raise RuntimeError(
                f"{type(recorder).__name__} needs the boolean per-wire "
                "transient stream; construct the simulator with "
                "pack_traces=False"
            )
        events = [(t, wire, self._coerce(vals)) for t, wire, vals in input_events]

        if self.compile_schedules:
            program = lookup_or_compile(
                self.circuit,
                self._comb_fanout,
                tuple((t, wire) for t, wire, _ in events),
            )
            if program is not None:
                with trace("sim.replay", n_events=len(events)):
                    last_t, n_evals = replay(
                        program,
                        self.values,
                        [vals for _, _, vals in events],
                        recorder,
                        t_offset,
                        max_events,
                        self.circuit,
                        n_traces=self.n_traces if self.packed else None,
                    )
                self.events_processed += n_evals
                return last_t

        # pending[t] = {wire: new_value_array}
        pending: Dict[int, Dict[int, np.ndarray]] = {}
        heap: List[int] = []
        queued = set()

        def schedule(t, wire: int, vals: np.ndarray) -> None:
            slot = pending.setdefault(t, {})
            slot[wire] = vals
            if t not in queued:
                queued.add(t)
                heapq.heappush(heap, t)

        for t, wire, vals in events:
            schedule(t, wire, vals)

        last_t = 0
        budget = max_events
        values = self.values
        fanout = self._comb_fanout
        record = None
        acc_add = None
        packed = self.packed
        n_real = self.n_traces
        if recorder is not None and not getattr(recorder, "is_null", False):
            if packed and hasattr(recorder, "packed_accumulator"):
                acc = recorder.packed_accumulator(n_real, values.shape[1])
                if acc is not None:
                    acc_add = acc.add
            if acc_add is None:
                record = recorder.record_wire
        while heap:
            t = heapq.heappop(heap)
            queued.discard(t)
            updates = pending.pop(t)
            last_t = t
            # 1. Apply wire updates, record transitions, find affected gates.
            affected: List[int] = []
            for wire, new in updates.items():
                toggled = values[wire] ^ new
                if not toggled.any():
                    continue
                if acc_add is not None:
                    # Packed-domain recording: counter-plane add, no
                    # unpacking inside the event loop.
                    acc_add(t_offset + t, wire, toggled)
                elif record is not None:
                    if packed:
                        # Lazy unpack: only wires that actually toggled
                        # reach the boolean recorder interface.
                        record(
                            t_offset + t,
                            wire,
                            unpack_bool(toggled, n_real),
                            unpack_bool(new, n_real),
                        )
                    else:
                        record(t_offset + t, wire, toggled, new)
                values[wire] = new
                affected.extend(fanout.get(wire, ()))
            # 2. Re-evaluate affected gates once each; schedule outputs.
            for gi in dict.fromkeys(affected):
                budget -= 1
                if budget < 0:
                    raise budget_error(
                        self.circuit, t, max_events, list(updates)
                    )
                self.events_processed += 1
                g = gates[gi]
                ins = g.inputs
                if len(ins) == 2:
                    out = g.cell.evaluate(values[ins[0]], values[ins[1]])
                elif len(ins) == 1:
                    src = values[ins[0]]
                    out = g.cell.evaluate(src)
                    if out is src:
                        # Identity cells (BUF/DELAY) return their input
                        # row *view*; snapshot it, otherwise the pending
                        # value would alias live wire state and deliver
                        # the wire's future value instead of its value
                        # at evaluation time.
                        out = out.copy()
                else:
                    out = g.cell.evaluate(*(values[w] for w in ins))
                schedule(t + g.delay_ps, g.output, out)
        return last_t

    # ------------------------------------------------------------------
    def evaluate_combinational(
        self, input_values: Dict[int, "np.ndarray | bool"]
    ) -> None:
        """Zero-delay functional evaluation (no glitches, no power).

        Sets the given input wires and computes every combinational gate
        once in topological order.  Used for functional verification
        where timing is irrelevant.
        """
        for wire, vals in input_values.items():
            self.values[wire] = self._coerce(vals)
        for gi in self.circuit.comb_order():
            g = self.circuit.gates[gi]
            self.values[g.output] = g.cell.evaluate(
                *(self.values[w] for w in g.inputs)
            )
