"""VCD waveform export for the scalar simulator.

Dumps the waveforms recorded by :class:`~repro.sim.simulator.
ScalarSimulator` as a Value Change Dump file, viewable in GTKWave &co —
the standard way to eyeball a glitch: load the secAND2 trace and watch
``z0`` pulse when ``x0`` arrives last.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..netlist.circuit import Circuit
from .simulator import ScalarSimulator

__all__ = ["to_vcd"]


def _identifiers() -> Iterable[str]:
    """Short printable-ASCII VCD identifiers: !, ", #, ... !!, !\" ..."""
    alphabet = [chr(c) for c in range(33, 127)]
    single = list(alphabet)
    yield from single
    for a in alphabet:
        for b in alphabet:
            yield a + b


def to_vcd(
    sim: ScalarSimulator,
    wires: Optional[Iterable[str]] = None,
    timescale: str = "1ps",
    module: str = "dut",
) -> str:
    """Render the simulator's recorded waveforms as VCD text.

    Args:
        sim: A scalar simulator that has been stepped (its waveforms
            are read; the simulation state is untouched).
        wires: Wire names to dump (default: every named wire that
            toggled, plus all primary inputs and outputs).
        timescale: VCD timescale directive.
        module: Scope name.
    """
    c: Circuit = sim.circuit
    if wires is None:
        chosen: List[int] = list(c.inputs)
        chosen += list(c.outputs.values())
        chosen += [
            w
            for w, wf in sim.waveforms.items()
            if wf.n_transitions and w not in chosen
        ]
    else:
        chosen = [c.wire(n) for n in wires]
    # stable order, unique
    chosen = list(dict.fromkeys(chosen))

    ids: Dict[int, str] = {}
    for w, ident in zip(chosen, _identifiers()):
        ids[w] = ident

    lines = [
        "$date repro.sim.vcd $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    for w in chosen:
        name = c.wire_name(w).replace(" ", "_")
        lines.append(f"$var wire 1 {ids[w]} {name} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    # initial values
    lines.append("#0")
    lines.append("$dumpvars")
    for w in chosen:
        lines.append(f"{int(sim.waveforms[w].initial)}{ids[w]}")
    lines.append("$end")

    # merge change points by time
    events: Dict[int, List[str]] = {}
    for w in chosen:
        for t, v in sim.waveforms[w].changes:
            events.setdefault(int(t), []).append(f"{int(v)}{ids[w]}")
    for t in sorted(events):
        lines.append(f"#{t}")
        lines.extend(events[t])
    return "\n".join(lines) + "\n"
