"""Schedule compiler + replay engine for the vectorised simulator.

Every leakage campaign re-simulates the *same* circuit with the *same*
input-event timing pattern thousands of times — only the per-trace data
changes.  Because cell delays are data-independent, the whole
event-driven control flow of :meth:`VectorSimulator.settle` (which gate
re-evaluates at which instant, where its output lands) is identical
across batches.  The interpreted loop nevertheless re-derives it every
call through a heap and per-event dicts, which is pure-Python overhead.

This module removes that overhead:

* :func:`compile_schedule` runs the scheduling algorithm **once**,
  symbolically, and records the result as a flat program: a sequence of
  time steps, each holding (a) the wire updates applied at that instant
  and (b) the gate evaluations it triggers, grouped by cell opcode so a
  whole group evaluates as one ``(n_gates_in_group, n_traces)`` numpy
  expression;
* :func:`replay` executes that program as straight-line numpy — no
  heap, no dicts — with batched power-recorder updates per time bin.

Exactness
---------
Replay is *transition-for-transition identical* to the interpreted
path, not merely equivalent on average.  The compiled program is a
conservative superset (every *potential* evaluation), and replay keeps
the interpreter's data-dependent guards as vectorised masks:

* a scheduled wire update is applied only if its producing evaluation
  actually ran (``slot_valid``), mirroring "no event was scheduled";
* a gate evaluates only if one of its inputs actually toggled in at
  least one trace, mirroring the interpreter's ``toggled.any()`` skip;
* power is recorded only for genuinely toggling updates, in the same
  per-time order (required for the coupling model's coincidence
  window), and the event budget / ``events_processed`` accounting
  matches the interpreter's.

Cache invalidation
------------------
Compiled programs are cached per circuit, keyed by the input-event
timing pattern ``((t0, wire0), (t1, wire1), ...)``.  The cache is
dropped whenever the circuit's structural token changes
(:meth:`Circuit.structural_token` — gate count, wire count *and* a
per-gate delay fingerprint) and is bounded LRU.  Per-instance routing
jitter is baked into the gate delays at build time, so a compiled
schedule stays valid for the lifetime of a build, exactly like a
placed-and-routed bitstream; a delay edit (a fault-perturbed copy from
:mod:`repro.faults`) changes the token and starts from an empty cache.

Process model
-------------
The cache lives in a module-level registry keyed by circuit *identity*
(a ``WeakKeyDictionary``), never as circuit state.  That makes it

* **fork-safe** — a forked campaign worker inherits the parent's warm
  cache through copy-on-write memory, so batches replay instead of
  recompiling (see :func:`repro.leakage.acquisition._init_worker`);
* **spawn-safe** — pickling a circuit (e.g. the trace source shipped
  to a ``spawn`` pool) never drags compiled programs, which hold
  unpicklable numpy/closure state, through the pickle stream; a
  spawned worker simply starts cold and warms itself once.

Campaign runners can :func:`pin_schedule_cache` a warmed circuit: any
structural edit afterwards makes the next lookup raise
:class:`StaleScheduleError` instead of silently recompiling — a
mid-campaign netlist edit is a bug (the shards would mix two different
devices), not a cache miss.
"""

from __future__ import annotations

import heapq
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import metrics as obs_metrics

__all__ = [
    "CompiledSchedule",
    "StaleScheduleError",
    "compile_schedule",
    "lookup_or_compile",
    "schedule_cache_info",
    "schedule_cache_counters",
    "pin_schedule_cache",
    "unpin_schedule_cache",
    "replay",
]

#: Bound on the number of *potential* gate evaluations a compiled
#: schedule may contain, as a multiple of the interpreter's default
#: event budget.  Patterns exceeding it fall back to interpretation.
_COMPILE_BUDGET_FACTOR = 1

#: Maximum number of distinct timing patterns cached per circuit.
_CACHE_CAPACITY = 128


@dataclass
class _EvalGroup:
    """All gates of one cell type evaluating at one instant."""

    evaluate: Callable[..., np.ndarray]
    in_wires: np.ndarray  #: (n_pins, g) input wire ids
    out_slots: np.ndarray  #: (g,) destination value slots
    trig: np.ndarray  #: (g, k_updates) bool — which updates trigger row i
    #: (g,) update index when every row has exactly one trigger, else None
    #: (replay then gathers liveness instead of reducing the trig matrix).
    trig_one: Optional[np.ndarray] = None


@dataclass
class _TimeStep:
    """One event instant: wire updates, then triggered evaluations."""

    t: float
    upd_wires: np.ndarray  #: (k,) wire ids updated at t
    upd_slots: np.ndarray  #: (k,) slots holding the scheduled values
    groups: List[_EvalGroup]


@dataclass
class CompiledSchedule:
    """A replayable straight-line program for one timing pattern."""

    steps: List[_TimeStep]
    n_slots: int
    input_slots: List[int]  #: slot of each input event, in event order
    n_potential_evals: int  #: size of the conservative schedule

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"CompiledSchedule({len(self.steps)} time steps, "
            f"{self.n_potential_evals} potential evals, "
            f"{self.n_slots} value slots)"
        )


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
def compile_schedule(
    circuit,
    comb_fanout: Dict[int, List[int]],
    pattern: Sequence[Tuple[float, int]],
    max_evals: Optional[int] = None,
) -> Optional[CompiledSchedule]:
    """Run the event scheduler symbolically and record its trace.

    Mirrors ``VectorSimulator.settle`` exactly — same heap order, same
    pending-slot overwrite rule (last write wins, original insertion
    position kept), same fanout-dedup order — but propagates *potential*
    changes instead of values.

    Args:
        circuit: The netlist (delays already include routing jitter).
        comb_fanout: wire id -> combinational reader gate indices (FF
            inputs excluded, as in the simulator).
        pattern: ``(time, wire)`` of each input event, in event order.
        max_evals: Abort threshold; returns ``None`` when the
            conservative schedule grows past it (oscillating or
            pathological patterns fall back to interpretation).

    Returns:
        The compiled program, or ``None`` if compilation was abandoned.
    """
    gates = circuit.gates
    if max_evals is None:
        max_evals = _COMPILE_BUDGET_FACTOR * (64 * max(1, len(gates)) + 64)

    free: List[int] = []
    n_slots = 0

    def alloc() -> int:
        nonlocal n_slots
        if free:
            return free.pop()
        s = n_slots
        n_slots += 1
        return s

    # pending[t] = {wire: slot} — dict preserves the interpreter's
    # insertion order; overwriting keeps the original position, exactly
    # like the interpreter's ``slot[wire] = vals``.
    pending: Dict[float, Dict[int, int]] = {}
    heap: List[float] = []
    queued: set = set()

    def schedule(t: float, wire: int, slot: int) -> None:
        d = pending.setdefault(t, {})
        old = d.get(wire)
        if old is not None:
            free.append(old)  # overwritten producer is never read
        d[wire] = slot
        if t not in queued:
            queued.add(t)
            heapq.heappush(heap, t)

    input_slots: List[int] = []
    for t, wire in pattern:
        s = alloc()
        input_slots.append(s)
        schedule(t, wire, s)

    steps: List[_TimeStep] = []
    total_evals = 0
    while heap:
        t = heapq.heappop(heap)
        queued.discard(t)
        updates = pending.pop(t)
        wires = list(updates.keys())
        slots = list(updates.values())
        # Consumed slots are reusable immediately: replay gathers their
        # values before any same-instant evaluation writes new ones.
        free.extend(slots)
        wire_pos = {w: j for j, w in enumerate(wires)}

        affected: List[int] = []
        for w in wires:
            affected.extend(comb_fanout.get(w, ()))
        rows: List[Tuple[int, int, List[int]]] = []
        for gi in dict.fromkeys(affected):
            total_evals += 1
            if total_evals > max_evals:
                return None
            g = gates[gi]
            out_slot = alloc()
            trig = sorted(
                {wire_pos[w] for w in g.inputs if w in wire_pos}
            )
            rows.append((gi, out_slot, trig))
            schedule(t + g.delay_ps, g.output, out_slot)

        groups: List[_EvalGroup] = []
        by_cell: Dict[str, List[Tuple[int, int, List[int]]]] = {}
        for row in rows:
            by_cell.setdefault(gates[row[0]].cell.name, []).append(row)
        k = len(wires)
        for cell_rows in by_cell.values():
            g0 = gates[cell_rows[0][0]]
            n_pins = len(g0.inputs)
            in_wires = np.empty((n_pins, len(cell_rows)), dtype=np.intp)
            out_slots = np.empty(len(cell_rows), dtype=np.intp)
            trig = np.zeros((len(cell_rows), k), dtype=bool)
            for i, (gi, out_slot, trig_cols) in enumerate(cell_rows):
                in_wires[:, i] = gates[gi].inputs
                out_slots[i] = out_slot
                trig[i, trig_cols] = True
            trig_one = None
            if all(len(r[2]) == 1 for r in cell_rows):
                trig_one = np.asarray(
                    [r[2][0] for r in cell_rows], dtype=np.intp
                )
            groups.append(
                _EvalGroup(
                    evaluate=g0.cell.evaluate,
                    in_wires=in_wires,
                    out_slots=out_slots,
                    trig=trig,
                    trig_one=trig_one,
                )
            )
        steps.append(
            _TimeStep(
                t=t,
                upd_wires=np.asarray(wires, dtype=np.intp),
                upd_slots=np.asarray(slots, dtype=np.intp),
                groups=groups,
            )
        )
    return CompiledSchedule(
        steps=steps,
        n_slots=n_slots,
        input_slots=input_slots,
        n_potential_evals=total_evals,
    )


# ----------------------------------------------------------------------
# per-circuit cache (process-local registry)
# ----------------------------------------------------------------------
class StaleScheduleError(RuntimeError):
    """A pinned schedule cache was invalidated by a structural edit.

    Raised by :func:`lookup_or_compile` when a circuit that was pinned
    (typically by a campaign warm-up) no longer matches its structural
    token: silently recompiling would let a campaign mix shards from
    two *different* devices under test.
    """


@dataclass
class _CircuitCache:
    """Schedule cache of one circuit build, plus usage counters."""

    token: Tuple
    programs: "OrderedDict" = field(default_factory=OrderedDict)
    hits: int = 0
    compiles: int = 0
    pinned: bool = False


#: circuit identity -> its schedule cache.  Keyed weakly so dropping a
#: circuit drops its programs; never stored on the circuit itself (see
#: "Process model" in the module docstring).
_CACHES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: Registry metric names for the per-process totals across all
#: circuits (backed by :mod:`repro.obs.metrics`).  Campaign workers
#: snapshot these around each batch to report compile-vs-replay
#: behaviour.
_METRIC_HITS = "schedule_cache.hits"
_METRIC_COMPILES = "schedule_cache.compiles"


def _structural_token(circuit):
    token = getattr(circuit, "structural_token", None)
    if token is not None:
        return token()
    return (len(circuit.gates), circuit.n_wires)  # pragma: no cover


def _cache_for(circuit) -> _CircuitCache:
    """The circuit's schedule cache, invalidated on structural change."""
    token = _structural_token(circuit)
    cache = _CACHES.get(circuit)
    if cache is None or cache.token != token:
        if cache is not None and cache.pinned:
            raise StaleScheduleError(
                f"circuit {getattr(circuit, 'name', '?')!r} was "
                "structurally edited after its schedule cache was pinned "
                "(mid-campaign netlist edit?); refusing to recompile — "
                "unpin_schedule_cache() to accept the new structure"
            )
        cache = _CircuitCache(token)
        _CACHES[circuit] = cache
    return cache


def lookup_or_compile(
    circuit,
    comb_fanout: Dict[int, List[int]],
    pattern: Tuple[Tuple[float, int], ...],
) -> Optional[CompiledSchedule]:
    """Cached :func:`compile_schedule`; ``None`` means "interpret this".

    Failed compilations are cached too, so a pathological pattern costs
    the compile attempt only once.

    Raises:
        StaleScheduleError: The circuit's cache is pinned and its
            structural token no longer matches (see
            :func:`pin_schedule_cache`).
    """
    cache = _cache_for(circuit)
    programs = cache.programs
    if pattern in programs:
        programs.move_to_end(pattern)
        cache.hits += 1
        obs_metrics.inc(_METRIC_HITS)
        return programs[pattern]
    schedule = compile_schedule(circuit, comb_fanout, pattern)
    cache.compiles += 1
    obs_metrics.inc(_METRIC_COMPILES)
    programs[pattern] = schedule
    if len(programs) > _CACHE_CAPACITY:
        programs.popitem(last=False)
    return schedule


def pin_schedule_cache(circuit) -> None:
    """Pin the circuit's (possibly still empty) schedule cache.

    After pinning, a structural edit of the circuit turns the next
    :func:`lookup_or_compile` into a :class:`StaleScheduleError` instead
    of a silent recompile.  Campaign warm-ups pin the circuits they
    warmed so a mid-campaign netlist edit cannot produce shards of two
    different devices.
    """
    _cache_for(circuit).pinned = True


def unpin_schedule_cache(circuit) -> None:
    """Undo :func:`pin_schedule_cache` (no-op if never pinned)."""
    cache = _CACHES.get(circuit)
    if cache is not None:
        cache.pinned = False


def schedule_cache_info(circuit) -> Dict[str, int]:
    """Diagnostics: cached patterns / programs and usage counters.

    Returns ``patterns`` (cached timing patterns), ``compiled``
    (patterns with a compiled program; the rest fell back to the
    interpreter), ``hits`` / ``compiles`` (lifetime lookup counters of
    this build) and ``pinned``.  A cache built for an older structure
    of the circuit counts as empty (it will be dropped — or, if pinned,
    refused — on the next lookup).
    """
    cache = _CACHES.get(circuit)
    if cache is None or cache.token != _structural_token(circuit):
        return {"patterns": 0, "compiled": 0, "hits": 0, "compiles": 0,
                "pinned": False}
    return {
        "patterns": len(cache.programs),
        "compiled": sum(1 for s in cache.programs.values() if s is not None),
        "hits": cache.hits,
        "compiles": cache.compiles,
        "pinned": cache.pinned,
    }


def schedule_cache_counters() -> Dict[str, int]:
    """Per-process totals: schedule-cache ``hits`` and ``compiles``.

    Campaign workers snapshot this before and after each batch; the
    deltas travel back with the shard, so
    :class:`repro.leakage.stats.CampaignStats` can prove that workers
    replayed warm schedules instead of recompiling them.

    Backed by the :mod:`repro.obs.metrics` registry (metric names
    ``schedule_cache.hits`` / ``schedule_cache.compiles``); this
    function is a stable re-export.  Campaign warm-ups re-attribute
    their lookups to ``schedule_cache.warmup_*`` so the batch-time
    counters reconcile exactly with ``CampaignStats``.
    """
    return {
        "hits": int(obs_metrics.counter_value(_METRIC_HITS)),
        "compiles": int(obs_metrics.counter_value(_METRIC_COMPILES)),
    }


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def replay(
    schedule: CompiledSchedule,
    values: np.ndarray,
    event_values: Sequence[np.ndarray],
    recorder,
    t_offset: float,
    max_events: int,
    circuit=None,
    n_traces: Optional[int] = None,
) -> Tuple[float, int]:
    """Execute a compiled program over ``(n_wires, n_traces)`` state.

    Args:
        schedule: Program from :func:`compile_schedule`.
        values: The simulator's wire-value matrix (mutated in place):
            ``(n_wires, n_traces)`` bool, or ``(n_wires, n_lanes)``
            ``uint64`` in packed mode (:mod:`repro.sim.bitpack`).
        event_values: One coerced array per input event, in the order
            of the compiled pattern — ``(n_traces,)`` bool, or
            ``(n_lanes,)`` uint64 in packed mode.
        recorder: Optional power recorder.  Recorders with coupling
            partners (or without :meth:`add_energy`) take the exact
            per-wire path; plain recorders get one batched per-time-bin
            energy update; :class:`~repro.sim.power.NullRecorder`
            (``is_null``) skips all recording arithmetic entirely.
        t_offset: Absolute time of this call's t=0.
        max_events: Gate-evaluation budget (same semantics as the
            interpreter's).
        circuit: The owning circuit, used only for diagnostics (name
            and oscillating-wire names in budget errors).
        n_traces: Real trace count in packed mode (pad bits are
            stripped before anything reaches the recorder); ``None``
            means boolean state.

    In packed mode every guard and state update below runs on the
    64x-smaller lane words, and recording stays packed too: when the
    recorder offers a packed accumulator
    (:meth:`~repro.sim.power.PowerRecorder.packed_accumulator`), each
    live toggle mask is ripple-carry-added into per-bin counter planes
    (:mod:`repro.sim.bitpack`) and only unpacked once per batch —
    bitwise-identical to the boolean engine below the
    ``2**COUNTER_EXACT_BITS`` bound.  Recorders without a packed path
    (coupling partners, custom recorders) fall back to lazy per-event
    unpacking: toggle masks become per-trace bits only at recording
    points and only when at least one lane toggled, feeding the exact
    float expressions of the boolean path (pad bits shadow the last
    real trace — see :mod:`repro.sim.bitpack` — so liveness and event
    accounting match too).

    Returns:
        ``(settle_time, n_gate_evaluations)``.
    """
    from .bitpack import unpack_bool, unpack_u8
    from .vectorsim import budget_error

    packed = n_traces is not None
    n = values.shape[1] if values.ndim == 2 else 0
    slot_values = np.empty((max(1, schedule.n_slots), n), dtype=values.dtype)
    slot_valid = np.zeros(max(1, schedule.n_slots), dtype=bool)
    for slot, vals in zip(schedule.input_slots, event_values):
        slot_values[slot] = vals
        slot_valid[slot] = True

    record_wire = None
    add_energy = None
    acc_add = None
    weights = None
    if recorder is not None and not getattr(recorder, "is_null", False):
        if packed and hasattr(recorder, "packed_accumulator"):
            acc = recorder.packed_accumulator(n_traces, values.shape[1])
            if acc is not None:
                acc_add = acc.add
        if acc_add is None:
            batched = not getattr(recorder, "_partners", None)
            add_energy = (
                getattr(recorder, "add_energy", None) if batched else None
            )
            if add_energy is None:
                record_wire = recorder.record_wire
            else:
                weights = getattr(recorder, "_weights", None)

    budget = max_events
    processed = 0
    last_t: float = 0
    f32 = np.float32
    for step in schedule.steps:
        slots = step.upd_slots
        wires = step.upd_wires

        # --- single-update fast path: 1-D views, no fancy indexing ----
        if len(slots) == 1:
            s0 = slots[0]
            if not slot_valid[s0]:
                # Nothing was scheduled here, so none of the step's
                # evaluations run — their (possibly reused) output
                # slots must not keep a stale validity.
                for grp in step.groups:
                    slot_valid[grp.out_slots] = False
                continue
            last_t = step.t
            w0 = wires[0]
            new_row = slot_values[s0]
            toggled_row = values[w0] ^ new_row
            if acc_add is not None:
                # Packed-domain recording: convert the lane mask to a
                # big-int once — the int doubles as the liveness test
                # (zero mask = no toggle), so this path never pays the
                # per-event ndarray.any() reduction.
                mask0 = int.from_bytes(toggled_row.tobytes(), "little")
                live0 = mask0 != 0
                if live0:
                    values[w0] = new_row
                    acc_add(t_offset + step.t, int(w0), mask0)
            elif (live0 := bool(toggled_row.any())):
                values[w0] = new_row
                if record_wire is not None:
                    if packed:
                        record_wire(
                            t_offset + step.t,
                            int(w0),
                            unpack_bool(toggled_row, n_traces),
                            unpack_bool(new_row, n_traces),
                        )
                    else:
                        record_wire(
                            t_offset + step.t, int(w0), toggled_row, new_row
                        )
                elif add_energy is not None:
                    # Identical arithmetic to record_wire's accumulation,
                    # so this path is bitwise exact for *any* weights.
                    scale = f32(1.0) if weights is None else f32(weights[w0])
                    bits = (
                        unpack_u8(toggled_row, n_traces)
                        if packed
                        else toggled_row
                    )
                    add_energy(t_offset + step.t, bits * scale)
            for grp in step.groups:
                # k == 1: every row is triggered by the sole update.
                out_slots = grp.out_slots
                slot_valid[out_slots] = live0
                if not live0:
                    continue
                cnt = len(out_slots)
                budget -= cnt
                if budget < 0:
                    raise budget_error(circuit, step.t, max_events, wires)
                processed += cnt
                iw = grp.in_wires
                if len(iw) == 2:
                    out = grp.evaluate(values[iw[0]], values[iw[1]])
                elif len(iw) == 1:
                    out = grp.evaluate(values[iw[0]])
                else:
                    out = grp.evaluate(*(values[w] for w in iw))
                slot_values[out_slots] = out
            continue

        # --- general path: k simultaneous updates ---------------------
        valid = slot_valid[slots]
        all_valid = valid.all()
        if not all_valid and not valid.any():
            # Dead step: invalidate its outputs (slot reuse, see above).
            for grp in step.groups:
                slot_valid[grp.out_slots] = False
            continue
        last_t = step.t
        new = slot_values[slots]
        toggled = values[wires] ^ new
        if not all_valid:
            toggled[~valid] = False
        live = toggled.any(axis=1)
        n_live = int(live.sum())
        if n_live:
            if n_live == len(live):
                values[wires] = new
            else:
                values[wires[live]] = new[live]
            if acc_add is not None:
                # One tobytes() for the whole step; per-row big-ints
                # come from byte slices instead of ndarray views.
                t_abs = t_offset + step.t
                data = toggled.tobytes()
                stride = toggled.shape[1] * 8
                for r in np.nonzero(live)[0]:
                    o = r * stride
                    acc_add(
                        t_abs,
                        int(wires[r]),
                        int.from_bytes(data[o : o + stride], "little"),
                    )
            elif record_wire is not None:
                t_abs = t_offset + step.t
                if packed:
                    for r in np.nonzero(live)[0]:
                        record_wire(
                            t_abs,
                            int(wires[r]),
                            unpack_bool(toggled[r], n_traces),
                            unpack_bool(new[r], n_traces),
                        )
                else:
                    for r in np.nonzero(live)[0]:
                        record_wire(t_abs, int(wires[r]), toggled[r], new[r])
            elif add_energy is not None:
                if packed:
                    # Unpack and dot only the rows that actually
                    # toggled — dead rows contribute exact float zeros,
                    # so dropping them cannot change any partial sum
                    # (the same argument that makes this batched path
                    # bit-identical to per-wire accumulation for the
                    # integer-valued weights, see
                    # PowerRecorder.add_energy).  Row order is kept.
                    idx = np.nonzero(live)[0]
                    bits = unpack_u8(toggled[idx], n_traces)
                    if weights is None:
                        energy = np.dot(np.ones(len(idx), dtype=f32), bits)
                    else:
                        energy = np.dot(weights[wires[idx]].astype(f32), bits)
                else:
                    if weights is None:
                        energy = np.dot(
                            np.ones(len(wires), dtype=f32),
                            toggled.view(np.uint8),
                        )
                    else:
                        energy = np.dot(
                            weights[wires].astype(f32),
                            toggled.view(np.uint8),
                        )
                add_energy(t_offset + step.t, energy)
        for grp in step.groups:
            out_slots = grp.out_slots
            if grp.trig_one is not None:
                glive = live[grp.trig_one]
            else:
                glive = (grp.trig & live).any(axis=1)
            slot_valid[out_slots] = glive
            cnt = int(glive.sum())
            if cnt == 0:
                continue
            budget -= cnt
            if budget < 0:
                raise budget_error(circuit, step.t, max_events, wires)
            processed += cnt
            iw = grp.in_wires
            if len(iw) == 2:
                out = grp.evaluate(values[iw[0]], values[iw[1]])
            elif len(iw) == 1:
                out = grp.evaluate(values[iw[0]])
            else:
                out = grp.evaluate(*(values[w] for w in iw))
            slot_values[out_slots] = out
    return last_t, processed
