"""Bit-packed trace lanes: 64 traces per ``uint64`` word.

The vectorised simulator's hot loops are pure boolean algebra over
``(n_wires, n_traces)`` arrays — one full *byte* of memory traffic per
trace-bit per op.  Packing the trace axis 64-to-a-``uint64`` turns every
gate evaluation, toggle mask and state update into the same bitwise
expression over ``(n_wires, n_lanes)`` words: a 64x reduction in bytes
moved per logic op, which is where simulation-based verifiers
(aLEAKator-style HDL simulation, bitsliced cipher evaluation) get their
throughput.

The packing convention is fixed by :func:`numpy.packbits` with
``bitorder="little"`` applied to the little-endian ``uint8`` view of the
lanes: trace ``i`` lives in lane ``i // 64``, and the whole codebase
only ever manipulates lanes with position-agnostic bitwise operators
(``& | ^ ~``) plus this module's pack/unpack/popcount, so the mapping of
traces to bit positions never leaks out.

Padding
-------
A ragged batch (``n_traces % 64 != 0``) pads the final lane with copies
of the **last real trace**, not with zeros.  Every gate is a pointwise
function and all simulator state starts uniform, so by induction the pad
bits shadow the last trace through the whole simulation.  That keeps the
packed engine's data-dependent control flow — "did any trace toggle?" —
*exactly* equal to the boolean engine's: a zero pad would raise phantom
toggles (e.g. through INV) in traces that do not exist, changing event
accounting and liveness guards.  Pad bits are stripped again on unpack,
so they never reach power samples or outputs.

Popcount
--------
:func:`popcount` uses :func:`numpy.bitwise_count` where available
(numpy >= 2.0) and falls back to an 8-bit lookup table over the
``uint8`` view on older numpy — same values, a few times slower.

Counter planes
--------------
Power recording used to be the one place the packed engine had to
unpack: every toggled lane became a boolean row so float32 energy could
be accumulated per event.  :func:`counter_add` / :func:`counter_unpack`
keep that accumulation in the packed domain instead.  A per-bin counter
is a list of *bit-planes* — plane ``j`` holds bit ``j`` of every
trace's running count, one trace per lane bit — and adding a toggled
mask is a ripple-carry add::

    planes[j] ^= carry;  carry = old_plane[j] & carry;  j += 1

Planes are Python arbitrary-precision ints (``lanes_to_int``), not
numpy arrays: at typical lane counts (a handful of ``uint64`` words)
CPython's big-int ``^``/``&`` run in well under a microsecond, with
none of the per-call overhead a numpy kernel pays on tiny arrays, and a
carry that dies after the first few planes costs amortised O(1) ops.
Integer weights ``1 + fanout`` decompose in binary: a weight-``w``
toggle adds the mask once per set bit of ``w``, shifted to that plane.
Counts are unpacked to integers exactly once per batch
(:func:`counter_unpack`) and cast to float32 — bitwise-identical to the
boolean engine's sequential adds while every per-bin count stays below
``2**COUNTER_EXACT_BITS`` (all addends are non-negative integers, and
integer-valued float32 sums below 2^24 are exact in any order).
"""

from __future__ import annotations

import warnings

import numpy as np

from ..obs.log import get_logger

_LOG = get_logger("sim.bitpack")

__all__ = [
    "LANE_BITS",
    "HAVE_BITWISE_COUNT",
    "COUNTER_EXACT_BITS",
    "n_lanes",
    "pack_bool",
    "pack_scalar",
    "unpack_u8",
    "unpack_bool",
    "popcount",
    "lanes_to_int",
    "counter_add",
    "counter_unpack",
    "recorder_accepts_packed",
    "resolve_pack_traces",
    "AutoPackFallbackWarning",
    "reset_auto_pack_warning",
]

#: Traces per packed lane (one ``uint64`` word).
LANE_BITS = 64

#: True when :func:`numpy.bitwise_count` exists (numpy >= 2.0); False
#: means :func:`popcount` runs on the 8-bit LUT fallback.
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: byte value -> number of set bits, for the numpy<2 popcount fallback.
_POPCOUNT_LUT = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def n_lanes(n_traces: int) -> int:
    """Number of ``uint64`` lanes covering ``n_traces`` trace bits."""
    if n_traces < 1:
        raise ValueError(f"n_traces must be >= 1, got {n_traces}")
    return -(-n_traces // LANE_BITS)


def pack_bool(values: np.ndarray) -> np.ndarray:
    """Pack a boolean array along its last axis into ``uint64`` lanes.

    ``(..., n_traces)`` bool -> ``(..., n_lanes)`` uint64.  A ragged
    final lane is padded with the last trace's value (see the module
    docstring for why zero-padding would be wrong).
    """
    values = np.asarray(values, dtype=bool)
    n = values.shape[-1]
    pad = (-n) % LANE_BITS
    if pad:
        values = np.concatenate(
            [values, np.repeat(values[..., -1:], pad, axis=-1)], axis=-1
        )
    packed = np.packbits(
        np.ascontiguousarray(values), axis=-1, bitorder="little"
    )
    return packed.view(np.uint64)


def pack_scalar(value: bool, lanes: int) -> np.ndarray:
    """A ``(lanes,)`` lane vector with every trace (and pad) bit set to
    ``value`` — the packed image of a scalar broadcast."""
    return np.full(lanes, _ONES if value else np.uint64(0), dtype=np.uint64)


def unpack_u8(packed: np.ndarray, count: int) -> np.ndarray:
    """Unpack lanes to 0/1 ``uint8`` bits, dropping the padding.

    ``(..., n_lanes)`` uint64 -> ``(..., count)`` uint8.  The uint8
    result feeds float energy accumulation directly (the boolean engine
    reads its toggle masks through a ``uint8`` view the same way, so
    downstream float arithmetic is bit-identical).
    """
    return np.unpackbits(
        np.ascontiguousarray(packed).view(np.uint8),
        axis=-1,
        count=count,
        bitorder="little",
    )


def unpack_bool(packed: np.ndarray, count: int) -> np.ndarray:
    """Unpack lanes to a boolean array, dropping the padding."""
    return unpack_u8(packed, count).view(bool)


class AutoPackFallbackWarning(RuntimeWarning):
    """``pack_traces="auto"`` declined to pack because the attached
    recorder has no packed-domain accumulation path (coupling partners,
    transient capture, or a custom recorder without
    ``accepts_packed``) — the batch runs on the boolean engine instead
    of silently landing in the slow per-event unpack leg."""


#: One-shot latch for :class:`AutoPackFallbackWarning` (warn once per
#: process, not once per batch — campaigns resolve per batch).
_auto_fallback_warned = False


def reset_auto_pack_warning() -> None:
    """Re-arm the one-shot :class:`AutoPackFallbackWarning` (tests)."""
    global _auto_fallback_warned
    _auto_fallback_warned = False


def recorder_accepts_packed(recorder) -> bool:
    """Whether a recorder can consume packed lanes without per-event
    unpacking.

    ``None`` and null recorders trivially qualify (nothing to record).
    Recorders that demand the exact boolean transient stream
    (``requires_transients``) never do.  Everything else must advertise
    a truthy ``accepts_packed`` — :class:`repro.sim.power.PowerRecorder`
    does so exactly when it has no coupling partners and its weights
    are small non-negative integers (see ``COUNTER_EXACT_BITS``).
    """
    if recorder is None or getattr(recorder, "is_null", False):
        return True
    if getattr(recorder, "requires_transients", False):
        return False
    return bool(getattr(recorder, "accepts_packed", False))


def resolve_pack_traces(
    pack_traces: "bool | str", n_traces: int, recorder=None
) -> bool:
    """Resolve a ``pack_traces`` request against a batch size (and,
    optionally, the recorder that will observe the batch).

    ``True`` / ``False`` are honoured verbatim (packing tiny batches is
    allowed — a single ragged lane — just rarely worth it; an explicit
    ``True`` with an unpackable recorder runs the per-event unpack leg,
    still bitwise-correct).  ``"auto"`` packs once a batch fills at
    least one full lane (``n_traces >= 64``) **and** the recorder — if
    one is given — accepts packed lanes; otherwise the boolean engine
    is both smaller and faster, and a one-shot
    :class:`AutoPackFallbackWarning` explains the recorder-driven
    fallback.
    """
    if pack_traces == "auto":
        if n_traces < LANE_BITS:
            return False
        if recorder_accepts_packed(recorder):
            return True
        global _auto_fallback_warned
        if not _auto_fallback_warned:
            _auto_fallback_warned = True
            msg = (
                f"pack_traces='auto': recorder "
                f"{type(recorder).__name__} has no packed accumulation "
                "path (coupling partners, transient capture, or no "
                "accepts_packed) — falling back to the boolean engine "
                "for this and similar batches"
            )
            _LOG.info("%s", msg)
            warnings.warn(msg, AutoPackFallbackWarning, stacklevel=2)
        return False
    if isinstance(pack_traces, (bool, np.bool_)):
        return bool(pack_traces)
    raise ValueError(
        f"pack_traces must be True, False or 'auto', got {pack_traces!r}"
    )


def popcount(lanes: np.ndarray) -> np.ndarray:
    """Per-element set-bit count of an unsigned integer array.

    Uses :func:`numpy.bitwise_count` when numpy provides it; otherwise
    an 8-bit LUT over the ``uint8`` view (numpy < 2).  Either way the
    result counts pad bits too — mask or slice first when counting
    toggling *traces* of a ragged final lane.
    """
    if HAVE_BITWISE_COUNT:
        return np.bitwise_count(lanes)
    lanes = np.ascontiguousarray(lanes)
    per_byte = _POPCOUNT_LUT[lanes.view(np.uint8)]
    return per_byte.reshape(lanes.shape + (lanes.dtype.itemsize,)).sum(
        axis=-1, dtype=np.uint8
    )


#: Per-bin per-trace counts below ``2**COUNTER_EXACT_BITS`` are exact
#: as float32 in *any* summation order, so counter-plane accumulation
#: is bitwise-identical to the boolean engine's sequential float32
#: adds.  At or above it, a flush still produces the correctly-rounded
#: value (one int->float32 rounding) but warns loudly — the boolean
#: engine itself would have drifted by then.
COUNTER_EXACT_BITS = 24


def lanes_to_int(lanes: np.ndarray) -> int:
    """A ``(n_lanes,)`` uint64 lane vector as one little-endian Python
    int — the plane representation :func:`counter_add` operates on.

    Trace ``i``'s bit keeps position ``i`` (lane words are
    little-endian and lane ``i // 64`` holds bit ``i % 64``), so
    big-int ``& ^ |`` act lane-wise exactly like the numpy ops.
    """
    return int.from_bytes(lanes.tobytes(), "little")


def counter_add(planes: "list[int]", mask: int, shift: int = 0) -> None:
    """Ripple-carry add of a 1-bit-per-trace ``mask`` into vertical
    counter ``planes``, scaled by ``2**shift``.

    ``planes[j]`` holds bit ``j`` of every trace's count (as a big int,
    see :func:`lanes_to_int`); the list grows in place as counts carry
    into new planes.  A weight-``w`` toggle is added by calling this
    once per set bit of ``w`` with that bit position as ``shift`` —
    binary weight decomposition instead of multiplication.
    """
    carry = mask
    j = shift
    n = len(planes)
    while carry:
        if j >= n:
            planes.extend([0] * (j - n))
            planes.append(carry)
            return
        p = planes[j]
        planes[j] = p ^ carry
        carry = p & carry
        j += 1


def counter_unpack(
    planes: "list[int]", lanes: int, count: int
) -> np.ndarray:
    """Materialise vertical counter ``planes`` as per-trace totals.

    Returns a ``(count,)`` int64 array; pad bits beyond ``count`` are
    dropped.  This runs once per bin per batch — the only point where
    packed power accumulation leaves the bit-plane domain.
    """
    totals = np.zeros(count, dtype=np.int64)
    nbytes = lanes * 8
    for j, plane in enumerate(planes):
        if not plane:
            continue
        words = np.frombuffer(plane.to_bytes(nbytes, "little"), dtype=np.uint64)
        totals += unpack_u8(words, count).astype(np.int64) << j
    return totals
