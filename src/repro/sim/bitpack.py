"""Bit-packed trace lanes: 64 traces per ``uint64`` word.

The vectorised simulator's hot loops are pure boolean algebra over
``(n_wires, n_traces)`` arrays — one full *byte* of memory traffic per
trace-bit per op.  Packing the trace axis 64-to-a-``uint64`` turns every
gate evaluation, toggle mask and state update into the same bitwise
expression over ``(n_wires, n_lanes)`` words: a 64x reduction in bytes
moved per logic op, which is where simulation-based verifiers
(aLEAKator-style HDL simulation, bitsliced cipher evaluation) get their
throughput.

The packing convention is fixed by :func:`numpy.packbits` with
``bitorder="little"`` applied to the little-endian ``uint8`` view of the
lanes: trace ``i`` lives in lane ``i // 64``, and the whole codebase
only ever manipulates lanes with position-agnostic bitwise operators
(``& | ^ ~``) plus this module's pack/unpack/popcount, so the mapping of
traces to bit positions never leaks out.

Padding
-------
A ragged batch (``n_traces % 64 != 0``) pads the final lane with copies
of the **last real trace**, not with zeros.  Every gate is a pointwise
function and all simulator state starts uniform, so by induction the pad
bits shadow the last trace through the whole simulation.  That keeps the
packed engine's data-dependent control flow — "did any trace toggle?" —
*exactly* equal to the boolean engine's: a zero pad would raise phantom
toggles (e.g. through INV) in traces that do not exist, changing event
accounting and liveness guards.  Pad bits are stripped again on unpack,
so they never reach power samples or outputs.

Popcount
--------
:func:`popcount` uses :func:`numpy.bitwise_count` where available
(numpy >= 2.0) and falls back to an 8-bit lookup table over the
``uint8`` view on older numpy — same values, a few times slower.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "LANE_BITS",
    "HAVE_BITWISE_COUNT",
    "n_lanes",
    "pack_bool",
    "pack_scalar",
    "unpack_u8",
    "unpack_bool",
    "popcount",
    "resolve_pack_traces",
]

#: Traces per packed lane (one ``uint64`` word).
LANE_BITS = 64

#: True when :func:`numpy.bitwise_count` exists (numpy >= 2.0); False
#: means :func:`popcount` runs on the 8-bit LUT fallback.
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: byte value -> number of set bits, for the numpy<2 popcount fallback.
_POPCOUNT_LUT = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def n_lanes(n_traces: int) -> int:
    """Number of ``uint64`` lanes covering ``n_traces`` trace bits."""
    if n_traces < 1:
        raise ValueError(f"n_traces must be >= 1, got {n_traces}")
    return -(-n_traces // LANE_BITS)


def pack_bool(values: np.ndarray) -> np.ndarray:
    """Pack a boolean array along its last axis into ``uint64`` lanes.

    ``(..., n_traces)`` bool -> ``(..., n_lanes)`` uint64.  A ragged
    final lane is padded with the last trace's value (see the module
    docstring for why zero-padding would be wrong).
    """
    values = np.asarray(values, dtype=bool)
    n = values.shape[-1]
    pad = (-n) % LANE_BITS
    if pad:
        values = np.concatenate(
            [values, np.repeat(values[..., -1:], pad, axis=-1)], axis=-1
        )
    packed = np.packbits(
        np.ascontiguousarray(values), axis=-1, bitorder="little"
    )
    return packed.view(np.uint64)


def pack_scalar(value: bool, lanes: int) -> np.ndarray:
    """A ``(lanes,)`` lane vector with every trace (and pad) bit set to
    ``value`` — the packed image of a scalar broadcast."""
    return np.full(lanes, _ONES if value else np.uint64(0), dtype=np.uint64)


def unpack_u8(packed: np.ndarray, count: int) -> np.ndarray:
    """Unpack lanes to 0/1 ``uint8`` bits, dropping the padding.

    ``(..., n_lanes)`` uint64 -> ``(..., count)`` uint8.  The uint8
    result feeds float energy accumulation directly (the boolean engine
    reads its toggle masks through a ``uint8`` view the same way, so
    downstream float arithmetic is bit-identical).
    """
    return np.unpackbits(
        np.ascontiguousarray(packed).view(np.uint8),
        axis=-1,
        count=count,
        bitorder="little",
    )


def unpack_bool(packed: np.ndarray, count: int) -> np.ndarray:
    """Unpack lanes to a boolean array, dropping the padding."""
    return unpack_u8(packed, count).view(bool)


def resolve_pack_traces(pack_traces: "bool | str", n_traces: int) -> bool:
    """Resolve a ``pack_traces`` request against a batch size.

    ``True`` / ``False`` are honoured verbatim (packing tiny batches is
    allowed — a single ragged lane — just rarely worth it).  ``"auto"``
    packs once a batch fills at least one full lane
    (``n_traces >= 64``); below that the boolean engine's per-byte
    layout is both smaller and faster.
    """
    if pack_traces == "auto":
        return n_traces >= LANE_BITS
    if isinstance(pack_traces, (bool, np.bool_)):
        return bool(pack_traces)
    raise ValueError(
        f"pack_traces must be True, False or 'auto', got {pack_traces!r}"
    )


def popcount(lanes: np.ndarray) -> np.ndarray:
    """Per-element set-bit count of an unsigned integer array.

    Uses :func:`numpy.bitwise_count` when numpy provides it; otherwise
    an 8-bit LUT over the ``uint8`` view (numpy < 2).  Either way the
    result counts pad bits too — mask or slice first when counting
    toggling *traces* of a ragged final lane.
    """
    if HAVE_BITWISE_COUNT:
        return np.bitwise_count(lanes)
    lanes = np.ascontiguousarray(lanes)
    per_byte = _POPCOUNT_LUT[lanes.view(np.uint8)]
    return per_byte.reshape(lanes.shape + (lanes.dtype.itemsize,)).sum(
        axis=-1, dtype=np.uint8
    )
