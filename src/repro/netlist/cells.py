"""Standard-cell library for the gate-level substrate.

The paper evaluates its designs both on ASIC (NanGate 45nm open cell
library, Synopsys DC) and on FPGA (Spartan-6, Xilinx ISE).  We model a
small but sufficient cell library:

* combinational cells (INV, BUF, AND2, OR2, XOR2, ... , MUX2) with a
  propagation delay in picoseconds and an area in gate equivalents (GE,
  normalised to a NAND2),
* sequential cells (DFF, DFFE: D flip-flop with clock enable) whose
  behaviour is driven by :mod:`repro.sim.clocking`,
* a parameterisable DELAY cell which models the paper's *DelayUnit*
  (a chain of LUT buffers on FPGA, a chain of inverters on ASIC,
  Sec. V / Fig. 10).

Delays are representative rather than sign-off accurate: what matters
for reproducing the paper is the *relative* order in which signals
arrive at gate inputs, which is what creates or suppresses glitches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

__all__ = [
    "CellType",
    "CELL_LIBRARY",
    "cell",
    "is_sequential",
    "LUT_DELAY_PS",
    "INV_DELAY_PS",
    "DELAY_UNIT_DEFAULT_LUTS",
    "DELAY_UNIT_ASIC_INVERTERS",
    "GE_PER_LUT_BUFFER",
    "delay_unit_delay_ps",
    "delay_unit_area_ge",
]

# Per-LUT buffer delay on the FPGA fabric (LUT + local routing).  The
# paper's DelayUnit chains several LUTs placed in consecutive slices
# (Fig. 10); 10 LUTs was found optimal (Sec. VII-B).
LUT_DELAY_PS = 250

# NanGate-45nm-like inverter delay; the ASIC DelayUnit estimate in
# Sec. VI-B uses chains of inverters (120 per DelayUnit).
INV_DELAY_PS = 12

#: DelayUnit size (in LUTs) the paper found optimal on Spartan-6.
DELAY_UNIT_DEFAULT_LUTS = 10

#: Inverters per DelayUnit used for the paper's ASIC area estimate.
DELAY_UNIT_ASIC_INVERTERS = 120

#: GE charged per LUT configured as a route-through buffer when
#: estimating ASIC-equivalent area of FPGA delay lines.
GE_PER_LUT_BUFFER = 2.0


def _eval_inv(a: np.ndarray) -> np.ndarray:
    return ~a


def _eval_buf(a: np.ndarray) -> np.ndarray:
    return a


def _eval_and2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a & b


def _eval_or2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a | b


def _eval_xor2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a ^ b


def _eval_xnor2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return ~(a ^ b)


def _eval_nand2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return ~(a & b)


def _eval_nor2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return ~(a | b)


def _eval_andn2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # a AND (NOT b); used for the MUX select products x0*!x5 etc. (Eq. 4)
    return a & ~b


def _eval_orn2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # a OR (NOT b); secAND2 computes x + !y1 (Eq. 2)
    return a | ~b


def _eval_mux2(sel: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # sel ? b : a
    return (a & ~sel) | (b & sel)


def _eval_trichina_l(
    r: np.ndarray,
    x0: np.ndarray,
    x1: np.ndarray,
    y0: np.ndarray,
    y1: np.ndarray,
) -> np.ndarray:
    # Trichina's masked share z0 (Eq. 1) as a single LUT5.  Mapped into
    # one LUT, the output transitions atomically — and the Hamming
    # distance on a late x-share arrival is x.(y0^y1), the unmasked y:
    # this is why classical Boolean masking leaks in glitchy hardware
    # no matter when the fresh bit arrives.
    return r ^ (x0 & y0) ^ (x0 & y1) ^ (x1 & y1) ^ (x1 & y0)


def _eval_secand2l(x: np.ndarray, y0: np.ndarray, y1: np.ndarray) -> np.ndarray:
    # one output share of secAND2 (Eq. 2) as a single LUT:
    #   z = (x . y0) XOR (x + !y1)
    # On the FPGA each output of the gadget maps into one LUT
    # (Sec. II-A: "programming the equations for the outputs of secAND2
    # directly into LUTs"), so the output transitions *atomically* —
    # one toggle whose Hamming distance combines all input changes.
    # That atomicity is what makes late arrival of an x share leak
    # y0 ^ y1 (Table I).
    return (x & y0) ^ (x | ~y1)


@dataclass(frozen=True)
class CellType:
    """A cell in the library.

    Attributes:
        name: Library name (e.g. ``"XOR2"``).
        n_inputs: Number of data inputs (clock/reset of FFs excluded).
        delay_ps: Default propagation delay, picoseconds.
        area_ge: Area in gate equivalents (NAND2 = 1.0).
        evaluate: Vectorised boolean function over numpy arrays, or
            ``None`` for sequential cells (evaluated by the clocking
            driver, not combinationally).
        sequential: True for flip-flops.
    """

    name: str
    n_inputs: int
    delay_ps: int
    area_ge: float
    evaluate: Callable[..., np.ndarray] | None
    sequential: bool = False


# Areas follow typical NanGate 45nm GE figures; delays are representative
# gate delays chosen so that multi-level paths separate cleanly in the
# event-driven simulator.
CELL_LIBRARY: Dict[str, CellType] = {
    "INV": CellType("INV", 1, INV_DELAY_PS, 0.67, _eval_inv),
    "BUF": CellType("BUF", 1, 2 * INV_DELAY_PS, 1.0, _eval_buf),
    "AND2": CellType("AND2", 2, 20, 1.33, _eval_and2),
    "OR2": CellType("OR2", 2, 20, 1.33, _eval_or2),
    "XOR2": CellType("XOR2", 2, 30, 2.0, _eval_xor2),
    "XNOR2": CellType("XNOR2", 2, 30, 2.0, _eval_xnor2),
    "NAND2": CellType("NAND2", 2, 15, 1.0, _eval_nand2),
    "NOR2": CellType("NOR2", 2, 15, 1.0, _eval_nor2),
    # Compound cells (AND/OR with one inverted input) exist in real
    # libraries (AOI-style); they keep the secAND2 netlist a faithful
    # 1:1 image of Fig. 1 without separate INV instances when desired.
    "ANDN2": CellType("ANDN2", 2, 22, 1.5, _eval_andn2),
    "ORN2": CellType("ORN2", 2, 22, 1.5, _eval_orn2),
    "MUX2": CellType("MUX2", 3, 25, 2.33, _eval_mux2),
    # One secAND2 output share as a single LUT (see _eval_secand2l).
    # Area charged as the discrete equivalent (AND2 + OR2 + XOR2 + half
    # of the shared INV) so gadget-level GE match the ASIC mapping.
    "SECAND2L": CellType("SECAND2L", 3, 35, 5.0, _eval_secand2l),
    # Trichina z0 as one LUT5 (area = 4 AND2 + 4 XOR2 discrete equiv.)
    "TRICHINA_L": CellType("TRICHINA_L", 5, 40, 13.3, _eval_trichina_l),
    # DELAY: a chain of buffer elements (LUTs on FPGA, inverter pairs on
    # ASIC).  Instances override delay_ps/area via Gate.params.
    "DELAY": CellType("DELAY", 1, LUT_DELAY_PS, GE_PER_LUT_BUFFER, _eval_buf),
    # Sequential cells.  `n_inputs` counts data pins the netlist wires
    # up: D for DFF; D and EN for DFFE.  Reset is a simulation-level
    # control (the paper resets secAND2-FF inputs between evaluations).
    "DFF": CellType("DFF", 1, 50, 4.5, None, sequential=True),
    "DFFE": CellType("DFFE", 2, 50, 5.33, None, sequential=True),
}


def cell(name: str) -> CellType:
    """Look up a cell type by name.

    Raises:
        KeyError: if the cell is not in the library.
    """
    try:
        return CELL_LIBRARY[name]
    except KeyError:
        raise KeyError(
            f"unknown cell {name!r}; available: {sorted(CELL_LIBRARY)}"
        ) from None


def is_sequential(name: str) -> bool:
    """True if the named cell is a flip-flop."""
    return cell(name).sequential


def delay_unit_delay_ps(n_luts: int = DELAY_UNIT_DEFAULT_LUTS) -> int:
    """Propagation delay of a DelayUnit built from ``n_luts`` chained LUTs.

    Sec. V: LUTs wired as buffers and placed in consecutive slices give a
    replicable, quantifiable delay; the delay scales linearly in chain
    length.
    """
    if n_luts < 1:
        raise ValueError("a DelayUnit needs at least one LUT")
    return n_luts * LUT_DELAY_PS


def delay_unit_area_ge(n_luts: int = DELAY_UNIT_DEFAULT_LUTS) -> float:
    """ASIC-equivalent GE area of a DelayUnit of ``n_luts`` LUTs.

    The paper estimates the ASIC DelayUnit as 120 inverters (Sec. VI-B);
    we charge GE proportionally to chain length so that the 10-LUT
    DelayUnit costs 120 inverter-equivalents.
    """
    if n_luts < 1:
        raise ValueError("a DelayUnit needs at least one LUT")
    inverters = DELAY_UNIT_ASIC_INVERTERS * n_luts / DELAY_UNIT_DEFAULT_LUTS
    return inverters * CELL_LIBRARY["INV"].area_ge
