"""Gate-level circuit graph.

A :class:`Circuit` is a flat netlist of library cells connected by
wires.  It is the common representation consumed by:

* the event-driven glitch simulators (:mod:`repro.sim`),
* static timing analysis (:mod:`repro.netlist.timing`),
* area/utilisation accounting (:mod:`repro.netlist.area`).

Wires are integer ids with human-readable names.  Hierarchy is
expressed through name prefixes only (the paper synthesises with
"Keep Hierarchy" to stop the tools optimising across gadget
boundaries; our builder mirrors that by never merging or rewriting
gates).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .cells import CellType, cell, delay_unit_area_ge, delay_unit_delay_ps

__all__ = ["Gate", "Circuit", "CircuitError"]


class CircuitError(ValueError):
    """Raised for structural problems: double drivers, loops, bad pins."""


@dataclass(frozen=True)
class Gate:
    """One instantiated cell.

    Attributes:
        name: Instance name (unique within the circuit).
        cell: Library cell type.
        inputs: Driven input wire ids, in pin order.  For ``DFFE`` the
            order is ``(D, EN)``.
        output: Output wire id.
        delay_ps: Effective propagation delay (instance override of the
            library default; used by DELAY chains).  May be fractional
            when routing jitter is enabled.
        area_ge: Effective area (instance override, same reason).
        params: Free-form instance parameters (e.g. ``n_luts`` of a
            DelayUnit).
    """

    name: str
    cell: CellType
    inputs: Tuple[int, ...]
    output: int
    delay_ps: float
    area_ge: float
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def is_ff(self) -> bool:
        return self.cell.sequential


class Circuit:
    """A mutable flat netlist with a builder API.

    Typical use::

        c = Circuit("secAND2")
        x0, y0 = c.add_inputs("x0", "y0")
        z = c.xor2(c.and2(x0, y0), c.orn2(x0, y0))
        c.mark_output("z", z)
        c.check()
    """

    def __init__(self, name: str = "top"):
        self.name = name
        self._wire_names: List[str] = []
        self._wire_ids: Dict[str, int] = {}
        self.gates: List[Gate] = []
        self._driver: Dict[int, int] = {}  # wire id -> gate index
        self.inputs: List[int] = []
        self.outputs: Dict[str, int] = {}
        self._prefix: str = ""
        self._auto_n = 0
        self._order_cache: Optional[List[int]] = None
        self._struct_token: Optional[Tuple[int, int, int]] = None
        #: Free-form builder annotations (e.g. the list of secAND2 core
        #: instances with their operand wires, used by the static
        #: arrival-order safety checker in repro.netlist.safety).
        self.annotations: Dict[str, list] = {}
        self._jitter_rng = None
        self._jitter_gate_ps = 0.0
        self._jitter_delay_ps = 0.0

    # ------------------------------------------------------------------
    # wires
    # ------------------------------------------------------------------
    @property
    def n_wires(self) -> int:
        return len(self._wire_names)

    def wire_name(self, wire: int) -> str:
        return self._wire_names[wire]

    def wire(self, name: str) -> int:
        """Id of an existing wire by full (prefixed) name."""
        return self._wire_ids[name]

    def add_wire(self, name: Optional[str] = None) -> int:
        """Create a new wire; auto-names anonymous nets ``_n<k>``."""
        if name is None:
            name = f"_n{self._auto_n}"
            self._auto_n += 1
        full = self._prefix + name
        if full in self._wire_ids:
            raise CircuitError(f"wire {full!r} already exists")
        wid = len(self._wire_names)
        self._wire_names.append(full)
        self._wire_ids[full] = wid
        return wid

    def add_input(self, name: str) -> int:
        """Create a primary input wire."""
        wid = self.add_wire(name)
        self.inputs.append(wid)
        return wid

    def add_inputs(self, *names: str) -> List[int]:
        return [self.add_input(n) for n in names]

    def mark_output(self, name: str, wire: int) -> None:
        """Expose ``wire`` as the primary output ``name``."""
        if name in self.outputs:
            raise CircuitError(f"output {name!r} already declared")
        self.outputs[name] = wire

    def enable_routing_jitter(
        self,
        seed: int,
        gate_sigma_ps: float = 30.0,
        delay_sigma_ps: float = 400.0,
    ) -> None:
        """Model placement-dependent routing delay.

        Every gate added *after* this call receives a deterministic
        extra delay ``|N(0, sigma)|`` — larger for DELAY lines (long
        routes) than for logic cells.  This is the physical reason the
        paper must size its DelayUnits (Sec. V / VII-B): the staggered
        arrival order only holds if the DelayUnit exceeds the routing
        skew.  The jitter is fixed per instance (placement is static),
        so a given build either has order-violating sites or it does
        not — exactly like a given bitstream.
        """
        import numpy as _np

        self._jitter_rng = _np.random.default_rng(seed)
        self._jitter_gate_ps = float(gate_sigma_ps)
        self._jitter_delay_ps = float(delay_sigma_ps)

    def _routing_extra_ps(self, cell_name: str) -> float:
        if self._jitter_rng is None:
            return 0.0
        sigma = (
            self._jitter_delay_ps if cell_name == "DELAY" else self._jitter_gate_ps
        )
        if sigma <= 0:
            return 0.0
        # Continuous (float-ps) jitter: two independent routes never
        # arrive at the *exact* same instant, just like on real fabric.
        return float(abs(self._jitter_rng.normal(0.0, sigma)))

    @contextmanager
    def scope(self, prefix: str) -> Iterator[None]:
        """Name-prefix scope for building sub-blocks (hierarchy by name)."""
        old = self._prefix
        self._prefix = old + prefix + "."
        try:
            yield
        finally:
            self._prefix = old

    # ------------------------------------------------------------------
    # gates
    # ------------------------------------------------------------------
    def add_gate(
        self,
        cell_name: str,
        inputs: Sequence[int],
        output: Optional[int] = None,
        *,
        name: Optional[str] = None,
        delay_ps: Optional[int] = None,
        area_ge: Optional[float] = None,
        **params: object,
    ) -> int:
        """Instantiate a cell; returns the output wire id."""
        ct = cell(cell_name)
        if len(inputs) != ct.n_inputs:
            raise CircuitError(
                f"{cell_name} expects {ct.n_inputs} inputs, got {len(inputs)}"
            )
        for w in inputs:
            if not 0 <= w < self.n_wires:
                raise CircuitError(f"input wire id {w} does not exist")
        if output is None:
            output = self.add_wire(None if name is None else name + "_o")
        if output in self._driver:
            raise CircuitError(
                f"wire {self.wire_name(output)!r} already driven by "
                f"{self.gates[self._driver[output]].name!r}"
            )
        if output in self.inputs:
            raise CircuitError(
                f"cannot drive primary input {self.wire_name(output)!r}"
            )
        gname = self._prefix + (name if name is not None else f"g{len(self.gates)}")
        base_delay = ct.delay_ps if delay_ps is None else delay_ps
        if not ct.sequential:
            base_delay += self._routing_extra_ps(ct.name)
        gate = Gate(
            name=gname,
            cell=ct,
            inputs=tuple(inputs),
            output=output,
            delay_ps=base_delay,
            area_ge=ct.area_ge if area_ge is None else area_ge,
            params=dict(params),
        )
        self._driver[output] = len(self.gates)
        self.gates.append(gate)
        self._order_cache = None
        self._struct_token = None
        return output

    # -- combinational conveniences ------------------------------------
    def inv(self, a: int, name: Optional[str] = None) -> int:
        return self.add_gate("INV", [a], name=name)

    def buf(self, a: int, name: Optional[str] = None) -> int:
        return self.add_gate("BUF", [a], name=name)

    def and2(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.add_gate("AND2", [a, b], name=name)

    def or2(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.add_gate("OR2", [a, b], name=name)

    def xor2(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.add_gate("XOR2", [a, b], name=name)

    def xnor2(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.add_gate("XNOR2", [a, b], name=name)

    def nand2(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.add_gate("NAND2", [a, b], name=name)

    def nor2(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.add_gate("NOR2", [a, b], name=name)

    def andn2(self, a: int, b: int, name: Optional[str] = None) -> int:
        """a AND (NOT b)."""
        return self.add_gate("ANDN2", [a, b], name=name)

    def orn2(self, a: int, b: int, name: Optional[str] = None) -> int:
        """a OR (NOT b) — the `x + !y1` term of secAND2 (Eq. 2)."""
        return self.add_gate("ORN2", [a, b], name=name)

    def mux2(self, sel: int, a: int, b: int, name: Optional[str] = None) -> int:
        """sel ? b : a."""
        return self.add_gate("MUX2", [sel, a, b], name=name)

    def xor_tree(self, wires: Sequence[int], name: Optional[str] = None) -> int:
        """Balanced XOR reduction of one or more wires."""
        if not wires:
            raise CircuitError("xor_tree needs at least one wire")
        level = list(wires)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.xor2(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    # -- sequential / delay conveniences --------------------------------
    def dff(self, d: int, name: Optional[str] = None, **params: object) -> int:
        """D flip-flop sampling every clock edge."""
        return self.add_gate("DFF", [d], name=name, **params)

    def dffe(
        self, d: int, en: int, name: Optional[str] = None, **params: object
    ) -> int:
        """D flip-flop with clock enable (samples only when EN is high).

        Pass ``reset_group="..."`` to make the FF member of a named
        synchronous-reset group (see ClockedHarness.step).
        """
        return self.add_gate("DFFE", [d, en], name=name, **params)

    def delay_line(
        self, a: int, n_units: int, n_luts: int, name: Optional[str] = None
    ) -> int:
        """``n_units`` stacked DelayUnits of ``n_luts`` chained LUTs each.

        This is the paper's path-delay element (Sec. V, Fig. 10): the
        signal is buffered through a deterministic LUT chain so it
        arrives ``n_units * n_luts * LUT_DELAY_PS`` later.  ``n_units``
        of zero is legal and returns the input unchanged (an undelayed
        input such as ``y0`` in Fig. 3).
        """
        if n_units < 0:
            raise CircuitError("n_units must be >= 0")
        if n_units == 0:
            return a
        return self.add_gate(
            "DELAY",
            [a],
            name=name,
            delay_ps=n_units * delay_unit_delay_ps(n_luts),
            area_ge=n_units * delay_unit_area_ge(n_luts),
            n_units=n_units,
            n_luts=n_luts,
        )

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def driver_of(self, wire: int) -> Optional[Gate]:
        idx = self._driver.get(wire)
        return None if idx is None else self.gates[idx]

    def fanout_map(self) -> Dict[int, List[int]]:
        """wire id -> indices of gates reading it."""
        fo: Dict[int, List[int]] = {}
        for gi, g in enumerate(self.gates):
            for w in g.inputs:
                fo.setdefault(w, []).append(gi)
        return fo

    def ff_gates(self) -> List[Gate]:
        return [g for g in self.gates if g.is_ff]

    def comb_gates(self) -> List[Gate]:
        return [g for g in self.gates if not g.is_ff]

    def cell_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for g in self.gates:
            counts[g.cell.name] = counts.get(g.cell.name, 0) + 1
        return dict(sorted(counts.items()))

    def copy(self) -> "Circuit":
        """Structural copy with fresh simulator caches.

        Gates are immutable and shared; the containers are copied, so
        gate replacements on the copy (the fault transforms in
        :mod:`repro.faults.models` work this way) never touch the
        original.  The copy starts with no cached topological order and
        no structural token, so compiled event schedules are never
        shared between original and copy.
        """
        new = Circuit(self.name)
        new._wire_names = list(self._wire_names)
        new._wire_ids = dict(self._wire_ids)
        new.gates = list(self.gates)
        new._driver = dict(self._driver)
        new.inputs = list(self.inputs)
        new.outputs = dict(self.outputs)
        new._auto_n = self._auto_n
        new.annotations = {k: list(v) for k, v in self.annotations.items()}
        return new

    def structural_token(self) -> Tuple[int, int, int]:
        """Identity of the circuit's structure *and* timing.

        Compiled event schedules (:mod:`repro.sim.compiled`) are only
        valid for one exact build: the same gates, the same wires, the
        same per-instance delays.  The token therefore folds a delay
        fingerprint in with the gate/wire counts, so two builds that
        differ only in gate delays — e.g. a fault-perturbed copy from
        :mod:`repro.faults.models` — never share cached schedules.

        The token is cached and recomputed only after :meth:`add_gate`;
        code that mutates ``gates`` directly (the fault transforms build
        fresh copies instead, precisely to avoid this) must clear
        ``_struct_token`` itself.
        """
        tok = self._struct_token
        if tok is None:
            tok = (
                len(self.gates),
                self.n_wires,
                hash(tuple(g.delay_ps for g in self.gates)),
            )
            self._struct_token = tok
        return tok

    def comb_order(self) -> List[int]:
        """Topological order of combinational gate indices.

        Sources are primary inputs and FF outputs; FF D/EN pins are
        sinks.  Raises :class:`CircuitError` on combinational loops.
        """
        if self._order_cache is not None:
            return self._order_cache
        indeg: Dict[int, int] = {}
        dependents: Dict[int, List[int]] = {}
        comb = [gi for gi, g in enumerate(self.gates) if not g.is_ff]
        for gi in comb:
            g = self.gates[gi]
            deg = 0
            for w in g.inputs:
                drv = self._driver.get(w)
                if drv is not None and not self.gates[drv].is_ff:
                    deg += 1
                    dependents.setdefault(drv, []).append(gi)
            indeg[gi] = deg
        ready = [gi for gi in comb if indeg[gi] == 0]
        order: List[int] = []
        while ready:
            gi = ready.pop()
            order.append(gi)
            for dep in dependents.get(gi, ()):
                indeg[dep] -= 1
                if indeg[dep] == 0:
                    ready.append(dep)
        if len(order) != len(comb):
            stuck = [self.gates[gi].name for gi in comb if indeg[gi] > 0]
            raise CircuitError(f"combinational loop through: {stuck[:8]}")
        self._order_cache = order
        return order

    def check(self, allow_loops: bool = False) -> None:
        """Validate structure: no loops, no floating output/pin wires.

        Args:
            allow_loops: Skip the combinational-loop check.  The
                event-driven simulators can run looped circuits (ring
                oscillators, latch structures) until the event budget is
                exhausted; only zero-delay functional evaluation needs a
                topological order.
        """
        if not allow_loops:
            self.comb_order()
        driven = set(self._driver) | set(self.inputs)
        for g in self.gates:
            for w in g.inputs:
                if w not in driven:
                    raise CircuitError(
                        f"gate {g.name!r} reads undriven wire "
                        f"{self.wire_name(w)!r}"
                    )
        for name, w in self.outputs.items():
            if w not in driven:
                raise CircuitError(f"output {name!r} is undriven")

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        nff = sum(1 for g in self.gates if g.is_ff)
        return (
            f"Circuit({self.name!r}: {self.n_wires} wires, "
            f"{len(self.gates)} gates ({nff} FFs), "
            f"{len(self.inputs)} inputs, {len(self.outputs)} outputs)"
        )
