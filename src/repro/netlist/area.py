"""Area and utilisation accounting (Table III quantities).

Two views of the same netlist:

* **ASIC**: gate equivalents (GE, NAND2-normalised), as the paper reports
  for the NanGate 45nm library.  DELAY instances carry the
  inverter-chain GE estimate of Sec. VI-B (120 INVs per 10-LUT
  DelayUnit).
* **FPGA**: flip-flop and LUT counts, as reported for Spartan-6.  We use
  a simple technology-mapping estimate: LUT6s are packed greedily along
  the topological order with a configurable fanin budget, and DELAY
  instances consume exactly their chain length in LUTs (they must not be
  packed — the paper places them manually to keep the delay replicable).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict

from .circuit import Circuit

__all__ = ["UtilizationReport", "area_ge", "fpga_utilization", "report"]

#: Data inputs a single FPGA LUT can absorb (LUT6 fabric).
LUT_INPUTS = 6

#: Average logic cells packed per LUT in practice (routing/packing
#: losses); calibrated so small gadget circuits map 1 LUT ~ 2.5 cells.
CELLS_PER_LUT = 2.5


@dataclass(frozen=True)
class UtilizationReport:
    """Utilisation summary for one design (one row of Table III)."""

    name: str
    area_ge: float
    area_ge_no_delay: float
    n_ff: int
    n_lut: int
    n_lut_delay: int
    cell_counts: Dict[str, int]

    def row(self) -> str:
        return (
            f"{self.name:<24} {self.area_ge:>9.0f} GE "
            f"(excl. delay: {self.area_ge_no_delay:>7.0f}) "
            f"{self.n_ff:>5} FF / {self.n_lut:>5} LUT"
        )


def area_ge(circuit: Circuit, include_delay: bool = True) -> float:
    """Total GE area; ``include_delay=False`` excludes DELAY chains.

    The paper quotes both numbers for the PD design: 52273 GE including
    DelayUnits and 12592 GE for the remaining circuit.
    """
    total = 0.0
    for g in circuit.gates:
        if not include_delay and g.cell.name == "DELAY":
            continue
        total += g.area_ge
    return total


def fpga_utilization(circuit: Circuit) -> Dict[str, int]:
    """Estimate Spartan-6-style FF / LUT counts.

    Returns a dict with ``ff``, ``lut_logic``, ``lut_delay`` and ``lut``
    (= logic + delay).
    """
    n_ff = sum(1 for g in circuit.gates if g.is_ff)
    n_logic_cells = sum(
        1 for g in circuit.gates if not g.is_ff and g.cell.name != "DELAY"
    )
    lut_delay = sum(
        int(g.params.get("n_units", 1)) * int(g.params.get("n_luts", 1))
        for g in circuit.gates
        if g.cell.name == "DELAY"
    )
    lut_logic = ceil(n_logic_cells / CELLS_PER_LUT)
    return {
        "ff": n_ff,
        "lut_logic": lut_logic,
        "lut_delay": lut_delay,
        "lut": lut_logic + lut_delay,
    }


def report(circuit: Circuit) -> UtilizationReport:
    """Build the full utilisation report for a circuit."""
    fpga = fpga_utilization(circuit)
    return UtilizationReport(
        name=circuit.name,
        area_ge=area_ge(circuit, include_delay=True),
        area_ge_no_delay=area_ge(circuit, include_delay=False),
        n_ff=fpga["ff"],
        n_lut=fpga["lut"],
        n_lut_delay=fpga["lut_delay"],
        cell_counts=circuit.cell_counts(),
    )
