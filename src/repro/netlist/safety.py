"""Static arrival-order safety checker for secAND2 gadgets.

The whole security argument of the PD construction is temporal: at each
secAND2 core, ``y0`` must arrive no later than the ``x`` shares, and
``y1`` must arrive strictly after them (Table I / Sec. II-D).  Whether
that holds on a concrete netlist depends on the DelayUnit size *and*
the routing skew — exactly what the paper's Sec. VII-B sweep probes
experimentally.

This module checks the property *statically*: it runs arrival-time
analysis over the (jittered) netlist and reports every gadget whose
operand ordering is violated or has less margin than requested.  The
number of violating sites predicts the Fig. 15 leakage trend: many
violations at a 1-LUT DelayUnit, none at 10 LUTs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .circuit import Circuit
from .timing import arrival_times

__all__ = [
    "OrderingViolation",
    "OrderingMargin",
    "check_secand2_ordering",
    "count_violations",
    "ordering_margins",
    "min_ordering_margin",
]


@dataclass(frozen=True)
class OrderingViolation:
    """One secAND2 core whose arrival order is unsafe.

    ``kind`` is ``"y1-not-last"`` (an x share arrives at or after y1 —
    the Table I leak condition) or ``"y0-not-first"`` (y0 arrives after
    an x share — unsafe for back-to-back evaluation without reset).
    """

    gadget: str
    kind: str
    margin_ps: int
    at_x0: int
    at_x1: int
    at_y0: int
    at_y1: int

    def __str__(self) -> str:
        return (
            f"{self.gadget}: {self.kind} (margin {self.margin_ps:g} ps; "
            f"x0@{self.at_x0:g} x1@{self.at_x1:g} "
            f"y0@{self.at_y0:g} y1@{self.at_y1:g})"
        )


def _core_arrivals(
    circuit: Circuit, at: Dict[int, int], g: Dict
) -> Optional[Tuple[int, int, int, int]]:
    """Arrival times of one core's operands, or ``None`` to skip it.

    Arrival *order* is only meaningful for operands that actually
    transition.  A core is skipped when an operand wire is constant
    (driven by a stuck-at fault cell — it never toggles after its first
    evaluation) or floating (a non-input wire with no driver, hence no
    entry in the arrival map): such a core has no ordering to violate,
    and the previous silent ``0 ps`` fallback mis-reported it as an
    early-arriving share.
    """
    arrivals = []
    for pin in ("x0", "x1", "y0", "y1"):
        w = g[pin]
        if w not in at:
            return None
        drv = circuit.driver_of(w)
        if drv is not None and drv.cell.name.startswith("STUCK"):
            return None
        arrivals.append(at[w])
    return tuple(arrivals)


def check_secand2_ordering(
    circuit: Circuit,
    min_margin_ps: int = 0,
    check_y0_first: bool = True,
) -> List[OrderingViolation]:
    """Check every annotated secAND2 core's arrival order.

    Args:
        circuit: Netlist whose builders registered ``secand2``
            annotations (all builders in this library do).
        min_margin_ps: Require y1 to trail the x shares by at least this
            margin (0 = strict ordering only).
        check_y0_first: Also flag gadgets where ``y0`` arrives after an
            ``x`` share (only matters for designs evaluated
            back-to-back without reset, i.e. the PD style).

    Returns:
        All violations found (empty list = statically safe).
    """
    gadgets = circuit.annotations.get("secand2", [])
    at = arrival_times(circuit)
    violations: List[OrderingViolation] = []
    for g in gadgets:
        arrivals = _core_arrivals(circuit, at, g)
        if arrivals is None:
            continue
        ax0, ax1, ay0, ay1 = arrivals
        x_last = max(ax0, ax1)
        if ay1 - x_last < max(1, min_margin_ps):
            violations.append(
                OrderingViolation(
                    g["tag"], "y1-not-last", ay1 - x_last, ax0, ax1, ay0, ay1
                )
            )
        if check_y0_first and ay0 > min(ax0, ax1):
            violations.append(
                OrderingViolation(
                    g["tag"],
                    "y0-not-first",
                    min(ax0, ax1) - ay0,
                    ax0,
                    ax1,
                    ay0,
                    ay1,
                )
            )
    return violations


def count_violations(circuit: Circuit, min_margin_ps: int = 0) -> Dict[str, int]:
    """Violation counts by kind (summary for the Fig. 15 sweep)."""
    out = {"y1-not-last": 0, "y0-not-first": 0}
    for v in check_secand2_ordering(circuit, min_margin_ps=min_margin_ps):
        out[v.kind] += 1
    return out


@dataclass(frozen=True)
class OrderingMargin:
    """Arrival-order slack of one secAND2 core (positive = safe).

    ``y1_margin_ps`` is how much later ``y1`` arrives than the last
    ``x`` share (the Table I security condition); ``y0_margin_ps`` is
    how much earlier ``y0`` arrives than the first ``x`` share (the
    back-to-back-evaluation condition of the PD style).
    """

    gadget: str
    y1_margin_ps: float
    y0_margin_ps: float
    at_x0: float
    at_x1: float
    at_y0: float
    at_y1: float

    @property
    def worst_ps(self) -> float:
        return min(self.y1_margin_ps, self.y0_margin_ps)

    def __str__(self) -> str:
        return (
            f"{self.gadget}: y1 margin {self.y1_margin_ps:.0f} ps, "
            f"y0 margin {self.y0_margin_ps:.0f} ps "
            f"(x0@{self.at_x0:.0f} x1@{self.at_x1:.0f} "
            f"y0@{self.at_y0:.0f} y1@{self.at_y1:.0f})"
        )


def ordering_margins(circuit: Circuit) -> List[OrderingMargin]:
    """Per-gadget arrival-order slack (what the fault sweep erodes).

    Where :func:`check_secand2_ordering` answers "is it broken", this
    reports *how far from broken* every core is — the quantity a delay
    perturbation eats into, gadget by gadget.
    """
    gadgets = circuit.annotations.get("secand2", [])
    at = arrival_times(circuit)
    out: List[OrderingMargin] = []
    for g in gadgets:
        arrivals = _core_arrivals(circuit, at, g)
        if arrivals is None:
            continue
        ax0, ax1, ay0, ay1 = arrivals
        out.append(
            OrderingMargin(
                gadget=g["tag"],
                y1_margin_ps=ay1 - max(ax0, ax1),
                y0_margin_ps=min(ax0, ax1) - ay0,
                at_x0=ax0,
                at_x1=ax1,
                at_y0=ay0,
                at_y1=ay1,
            )
        )
    return out


def min_ordering_margin(circuit: Circuit) -> Optional[OrderingMargin]:
    """The gadget with the smallest worst-case margin (None if the
    circuit has no secAND2 annotations, or every core was skipped for
    constant/floating operands)."""
    margins = ordering_margins(circuit)
    if not margins:
        return None
    return min(margins, key=lambda m: m.worst_ps)
