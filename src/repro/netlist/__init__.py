"""Gate-level netlist substrate: cells, circuit graph, timing, area.

This package stands in for the paper's synthesis targets (NanGate 45nm
ASIC flow and Spartan-6 FPGA): it provides the structural representation
on which the glitch simulator, the timing analysis and the utilisation
reports of Table III operate.
"""

from .cells import (
    CELL_LIBRARY,
    CellType,
    DELAY_UNIT_DEFAULT_LUTS,
    cell,
    delay_unit_area_ge,
    delay_unit_delay_ps,
    is_sequential,
)
from .circuit import Circuit, CircuitError, Gate
from .timing import TimingReport, analyze, arrival_times, critical_path
from .area import UtilizationReport, area_ge, fpga_utilization, report
from .safety import OrderingViolation, check_secand2_ordering, count_violations
from .verilog import sanitize_identifier, to_verilog

__all__ = [
    "CELL_LIBRARY",
    "CellType",
    "DELAY_UNIT_DEFAULT_LUTS",
    "cell",
    "delay_unit_area_ge",
    "delay_unit_delay_ps",
    "is_sequential",
    "Circuit",
    "CircuitError",
    "Gate",
    "TimingReport",
    "analyze",
    "arrival_times",
    "critical_path",
    "UtilizationReport",
    "area_ge",
    "fpga_utilization",
    "report",
    "OrderingViolation",
    "check_secand2_ordering",
    "count_violations",
    "sanitize_identifier",
    "to_verilog",
]
