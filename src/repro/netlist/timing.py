"""Static timing analysis over a :class:`~repro.netlist.circuit.Circuit`.

The paper reports maximum operating frequencies from the Xilinx ISE
timing report (Table III): 183 MHz for the secAND2-FF DES and 21 MHz for
the secAND2-PD DES — the huge gap is the point, caused by the stacked
DelayUnits sitting on the S-box critical path.  This module computes the
same quantity over our netlists: longest register-to-register (or
input-to-register) combinational path, including instance-level DELAY
overrides, plus FF clock-to-q and setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .cells import cell
from .circuit import Circuit, Gate

__all__ = ["TimingReport", "arrival_times", "critical_path", "analyze"]

#: FF timing parameters (ps) used for period computation.
CLK_TO_Q_PS = 50
SETUP_PS = 40


@dataclass(frozen=True)
class TimingReport:
    """Result of :func:`analyze`.

    Attributes:
        critical_path_ps: Longest combinational delay (launch clk-to-q
            and capture setup included).
        max_freq_mhz: ``1e6 / critical_path_ps``.
        path: Gate instance names along the critical path, source first.
        start_wire / end_wire: Wire names bounding the path.
    """

    critical_path_ps: int
    max_freq_mhz: float
    path: Tuple[str, ...]
    start_wire: str
    end_wire: str

    def __str__(self) -> str:
        chain = " -> ".join(self.path) if self.path else "(direct)"
        return (
            f"critical path {self.critical_path_ps} ps "
            f"({self.max_freq_mhz:.1f} MHz): "
            f"{self.start_wire} -> {chain} -> {self.end_wire}"
        )


def arrival_times(
    circuit: Circuit, input_arrivals: Optional[Dict[int, int]] = None
) -> Dict[int, int]:
    """Latest arrival time (ps) of every wire.

    Sources: primary inputs arrive at ``input_arrivals`` (default 0);
    FF outputs arrive at ``CLK_TO_Q_PS`` after the clock edge.
    """
    at: Dict[int, int] = {}
    for w in circuit.inputs:
        at[w] = 0
    if input_arrivals:
        at.update(input_arrivals)
    for g in circuit.gates:
        if g.is_ff:
            at[g.output] = CLK_TO_Q_PS
    for gi in circuit.comb_order():
        g = circuit.gates[gi]
        worst = max(at.get(w, 0) for w in g.inputs)
        at[g.output] = worst + g.delay_ps
    return at


def critical_path(circuit: Circuit) -> Tuple[int, List[Gate], int, int]:
    """Longest data path ending at an FF data pin or a primary output.

    Returns:
        ``(delay_ps, gates_along_path, start_wire, end_wire)`` where
        ``delay_ps`` excludes clk-to-q/setup (pure combinational delay).
    """
    at = arrival_times(circuit)
    # Candidate endpoints: FF D pins and primary outputs.
    endpoints: List[int] = []
    for g in circuit.gates:
        if g.is_ff:
            endpoints.append(g.inputs[0])  # D pin
    endpoints.extend(circuit.outputs.values())
    if not endpoints:
        endpoints = [g.output for g in circuit.gates if not g.is_ff]
    if not endpoints:
        return 0, [], -1, -1
    end = max(endpoints, key=lambda w: at.get(w, 0))
    # Trace back through worst-arrival inputs.
    path: List[Gate] = []
    w = end
    while True:
        drv = circuit.driver_of(w)
        if drv is None or drv.is_ff:
            break
        path.append(drv)
        w = max(drv.inputs, key=lambda x: at.get(x, 0))
    path.reverse()
    start = w
    comb = at.get(end, 0) - at.get(start, 0)
    return comb, path, start, end


def analyze(circuit: Circuit) -> TimingReport:
    """Full timing report with FF overheads folded into the period."""
    comb, path, start, end = critical_path(circuit)
    launch_seq = circuit.driver_of(start) is not None and circuit.driver_of(start).is_ff
    period = comb + SETUP_PS + (CLK_TO_Q_PS if launch_seq else 0)
    period = max(period, CLK_TO_Q_PS + SETUP_PS)  # FF-to-FF floor
    return TimingReport(
        critical_path_ps=period,
        max_freq_mhz=1e6 / period,
        path=tuple(g.name for g in path),
        start_wire=circuit.wire_name(start) if start >= 0 else "-",
        end_wire=circuit.wire_name(end) if end >= 0 else "-",
    )
