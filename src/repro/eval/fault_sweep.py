"""Experiment: fault-injection margin-erosion sweep.

Not a figure of the paper, but the question behind its Sec. VII-B
DelayUnit sweep, asked directly: *how much timing perturbation do the
secAND2-PD ordering margins absorb before the design leaks?*  Process
variation is modelled as seeded per-gate delay variation
(:mod:`repro.faults.models`, common random numbers across the sweep);
each sigma is checked both statically (ordering margins / violations)
and dynamically (TVLA on the perturbed build), and the report names the
first violated ordering constraint — the secAND2 instance whose margin
collapsed at the leakage onset.

The sweep covers the gadget bank (full TVLA per sigma) and the masked
DES core (static margins per sigma; TVLA optional via ``des_traces``).

``metric="verify"`` swaps the dynamic oracle: instead of sampling a
t-score per sigma, the exact verifier (:mod:`repro.verify`) counts the
leaking glitch-extended probes of the faulted bank — the same
margin-erosion story with zero sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..faults.sweep import (
    FaultSweepResult,
    des_margin_erosion,
    margin_erosion_sweep,
)
from .report import rule

__all__ = ["FaultSweepReport", "run"]


@dataclass
class FaultSweepReport:
    bank: FaultSweepResult
    des: Optional[FaultSweepResult]

    @property
    def acceptance(self) -> bool:
        """Clean at sigma 0, monotone erosion, leakage past the margin."""
        past = [
            p
            for p in self.bank.points
            if p.sigma_ps >= self.bank.nominal_margin_ps and p.tvla is not None
        ]
        return (
            self.bank.clean_at_zero
            and self.bank.monotone_erosion
            and all(p.leaks for p in past)
            and self.bank.first_violation is not None
        )

    def render(self) -> str:
        parts = [
            "Fault sweep — delay-variation margin erosion",
            rule(),
            self.bank.render(),
        ]
        if self.des is not None:
            parts.extend([rule(), self.des.render()])
        parts.extend(
            [
                rule(),
                f"acceptance (clean@0, monotone, leaks past margin, "
                f"constraint named): {self.acceptance}",
            ]
        )
        return "\n".join(parts)


def run(
    sigmas: Sequence[float] = (0, 150, 300, 450, 600),
    n_traces: int = 6_000,
    batch_size: int = 2_000,
    noise_sigma: float = 1.0,
    seed: int = 3,
    fault_seed: int = 1,
    n_instances: int = 8,
    n_luts: int = 2,
    include_des: bool = True,
    des_variant: str = "pd",
    des_n_luts: int = 10,
    des_sigmas: Optional[Sequence[float]] = None,
    des_traces: int = 0,
    n_workers: int = 1,
    metric: str = "tvla",
):
    """Run the sweep.  ``des_traces=0`` keeps the DES half static-only
    (its hundreds of secAND2 sites make the static report the
    interesting part); ``include_des=False`` skips it entirely.

    ``metric`` picks the dynamic oracle: ``"tvla"`` (default) samples
    t-scores per sigma; ``"verify"`` counts exact leaking probes
    instead and returns a
    :class:`~repro.verify.report.VerifyFaultSweepResult` (the TVLA
    trace parameters are ignored — exactness needs no budget).
    """
    if metric == "verify":
        from ..verify import verify_fault_sweep

        return verify_fault_sweep(
            sigmas=sigmas,
            fault_seed=fault_seed,
            n_instances=n_instances,
            n_luts=n_luts,
        )
    if metric != "tvla":
        raise ValueError(f"metric must be 'tvla' or 'verify', got {metric!r}")
    bank = margin_erosion_sweep(
        sigmas,
        n_instances=n_instances,
        n_luts=n_luts,
        fault_seed=fault_seed,
        n_traces=n_traces,
        batch_size=batch_size,
        noise_sigma=noise_sigma,
        seed=seed,
        n_workers=n_workers,
    )
    des = None
    if include_des:
        des = des_margin_erosion(
            sigmas if des_sigmas is None else des_sigmas,
            variant=des_variant,
            n_luts=des_n_luts,
            fault_seed=fault_seed,
            n_traces=des_traces,
            seed=seed,
            n_workers=n_workers,
        )
    return FaultSweepReport(bank=bank, des=des)
