"""Experiment: Table III — utilisation of the full DES implementations.

Synthesises both masked DES engines (including the masked key schedule,
as in the paper), counts GE / FF / LUT, runs static timing for the max
frequency, and prints our numbers next to the paper's (and next to the
DOM TDES rows of [17], which are published constants — we do not
re-measure someone else's silicon).

Absolute numbers differ from the paper (our cell library and LUT-packing
model are representative, not ISE/DC), but the *shape* must hold:

* the FF engine is compact, the PD engine is dominated by DelayUnits
  (paper: 52273 GE total vs 12592 GE excluding delays);
* randomness: 14 bits/round for both engines — far below DOM-indep
  (176) and DOM-dep (528);
* cycles/round: 7 (FF) vs 2 (PD) vs 5 (DOM);
* max frequency: the PD engine is an order of magnitude slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..des.engines import MaskedDESNetlistEngine
from ..des.masked_core import MaskedDES
from ..netlist.area import report as area_report
from .report import render_table, rule

__all__ = ["Row", "Table3Result", "run", "PAPER_ROWS"]


@dataclass(frozen=True)
class Row:
    """One utilisation row (Table III columns)."""

    version: str
    asic_ge: Optional[float]
    asic_ge_no_delay: Optional[float]
    ff: Optional[int]
    lut: Optional[int]
    rand_per_round: Optional[int]
    cycles_per_round: Optional[int]
    max_freq_mhz: Optional[float]
    source: str = "measured"

    def cells(self) -> List[str]:
        def f(v, fmt="{:.0f}"):
            return "-" if v is None else fmt.format(v)

        return [
            self.version,
            f(self.asic_ge),
            f(self.asic_ge_no_delay),
            f"{f(self.ff)}/{f(self.lut)}",
            f(self.rand_per_round),
            f(self.cycles_per_round),
            f(self.max_freq_mhz, "{:.0f}"),
            self.source,
        ]


#: The published Table III rows (FPGA columns for the PD version are the
#: paper's; DOM numbers from Sasdrich & Hutter [17], key schedule
#: unmasked there, cycle count scaled from TDES to DES).
PAPER_ROWS = [
    Row("secAND2-FF", 15956, 15956, 819, 2129, 14, 7, 183, "paper"),
    Row("secAND2-PD", 52273, 12592, None, None, 14, 2, 21, "paper"),
    Row("DOM-indep [17]", 13800, 13800, None, None, 176, 5, None, "paper"),
    Row("DOM-dep [17]", 22400, 22400, None, None, 528, 5, None, "paper"),
]


@dataclass
class Table3Result:
    measured: List[Row]
    paper: List[Row]

    def render(self) -> str:
        headers = [
            "version",
            "GE",
            "GE (no delay)",
            "FF/LUT",
            "rand/rnd",
            "cyc/rnd",
            "fmax MHz",
            "source",
        ]
        rows = [r.cells() for r in self.measured] + [r.cells() for r in self.paper]
        notes = (
            f"\n{rule()}\n"
            "Shape checks (paper vs measured):\n"
            f"  PD delay-line area dominates: "
            f"{self.measured[1].asic_ge_no_delay / self.measured[1].asic_ge:.0%} "
            "of PD area is non-delay logic "
            f"(paper: {12592 / 52273:.0%})\n"
            f"  FF/PD frequency ratio: "
            f"{self.measured[0].max_freq_mhz / self.measured[1].max_freq_mhz:.1f}x "
            f"(paper: {183 / 21:.1f}x)\n"
            "  randomness 14 bits/round for both engines, "
            "vs 176 (DOM-indep) and 528 (DOM-dep)"
        )
        return render_table(headers, rows) + notes


def measure_engine(variant: str, n_luts: int = 10) -> Row:
    """Build one engine and extract its utilisation row."""
    eng = MaskedDESNetlistEngine(variant, n_luts=n_luts)
    rep = area_report(eng.circuit)
    model = MaskedDES(variant)
    return Row(
        version=f"secAND2-{variant.upper()}",
        asic_ge=rep.area_ge,
        asic_ge_no_delay=rep.area_ge_no_delay,
        ff=rep.n_ff,
        lut=rep.n_lut,
        rand_per_round=model.random_bits_per_round,
        cycles_per_round=model.cycles_per_round,
        max_freq_mhz=eng.timing.max_freq_mhz,
    )


def run(n_luts: int = 10) -> Table3Result:
    """Regenerate Table III for both engines."""
    measured = [measure_engine("ff"), measure_engine("pd", n_luts=n_luts)]
    return Table3Result(measured=measured, paper=PAPER_ROWS)
