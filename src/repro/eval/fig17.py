"""Experiment: Fig. 17 — leakage assessment of the secAND2-PD DES.

The final PD engine (DelayUnit = 10 LUTs) shows *marginal* first-order
leakage with many traces (the extended abstract quotes ~15 M) even
though its arrival ordering is statically safe.  The paper's second
explanation — the one their extra experiments support — is physical
*coupling* between the long delay lines (Sec. VII-C): 2-share designs
can leak in the first order through coupled switching even when
probing-secure.

We regenerate the four panels with the coupling model enabled on the
share-pair delay lines:

* (d) PRNG off: detection within a few thousand traces (paper: 33 000);
* (a)(b)(c) PRNG on, three fixed plaintexts: first-order t-statistics
  that *do* cross the threshold, unlike the FF engine's — but only
  with a large trace budget, and second-order leakage remains dominant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..des.engines import DESTraceSource, MaskedDESNetlistEngine
from ..leakage.acquisition import (
    CampaignConfig,
    detect_leakage_traces,
    run_multi_fixed,
)
from ..leakage.tvla import TvlaResult
from .fig14 import FIXED_PLAINTEXTS, KEY
from .report import rule, tvla_panel

__all__ = ["Fig17Result", "run", "DEFAULT_COUPLING"]

#: Coupling coefficient calibrated so the PD engine's first-order
#: leakage needs roughly an order of magnitude more traces than the
#: PRNG-off detection — mirroring 15 M vs 33 k on the paper's setup.
DEFAULT_COUPLING = 2.0

PAPER_TRACES_OFF_DETECT = 33_000
PAPER_TRACES_FIRST_ORDER = 15_000_000


@dataclass
class Fig17Result:
    prng_off_detected_at: Optional[int]
    prng_off: TvlaResult
    prng_on: List[TvlaResult]
    coupling_coefficient: float

    @property
    def sanity_ok(self) -> bool:
        return self.prng_off_detected_at is not None

    @property
    def first_order_leakage_observed(self) -> bool:
        """The PD engine's residual first-order leakage (the paper's
        headline observation for this variant)."""
        return any(r.leaks(1) for r in self.prng_on)

    def render(self) -> str:
        parts = [
            "Fig. 17 — TVLA of protected DES (secAND2-PD, DelayUnit=10, "
            f"coupling c={self.coupling_coefficient})",
            rule(),
            f"(d) PRNG off: first-order leakage detected at "
            f"{self.prng_off_detected_at} traces "
            f"(paper: ~{PAPER_TRACES_OFF_DETECT:,})",
            tvla_panel(self.prng_off),
            rule(),
        ]
        for i, r in enumerate(self.prng_on):
            parts.append(f"({chr(ord('a') + i)}) PRNG on, fixed plaintext #{i}:")
            parts.append(tvla_panel(r))
        parts.append(rule())
        parts.append(
            f"sanity (PRNG off leaks): {self.sanity_ok}   "
            f"residual 1st-order leakage observed (coupling): "
            f"{self.first_order_leakage_observed}"
        )
        return "\n".join(parts)


def run(
    n_traces: int = 60_000,
    n_traces_off: int = 10_000,
    batch_size: int = 4_000,
    noise_sigma: float = 2.0,
    coupling_coefficient: float = DEFAULT_COUPLING,
    n_luts: int = 10,
    seed: int = 0,
    n_workers: int = 1,
) -> Fig17Result:
    """Regenerate the Fig. 17 panels (scaled budgets).

    ``n_workers`` parallelises each campaign's batches; results are
    identical for any worker count.
    """
    engine = MaskedDESNetlistEngine("pd", n_luts=n_luts)

    off_src = DESTraceSource(
        engine,
        FIXED_PLAINTEXTS[0],
        KEY,
        prng_enabled=False,
        coupling_coefficient=coupling_coefficient,
    )
    detected, off_res = detect_leakage_traces(
        off_src,
        CampaignConfig(
            n_traces=n_traces_off,
            batch_size=batch_size,
            noise_sigma=noise_sigma,
            seed=seed + 99,
            label="PD PRNG-off",
        ),
        n_workers=n_workers,
    )

    def make_source(i: int) -> DESTraceSource:
        return DESTraceSource(
            engine,
            FIXED_PLAINTEXTS[i],
            KEY,
            prng_enabled=True,
            coupling_coefficient=coupling_coefficient,
        )

    on_res = run_multi_fixed(
        make_source,
        CampaignConfig(
            n_traces=n_traces,
            batch_size=batch_size,
            noise_sigma=noise_sigma,
            seed=seed,
            label="PD PRNG-on",
        ),
        n_fixed=len(FIXED_PLAINTEXTS),
        n_workers=n_workers,
    )
    return Fig17Result(
        prng_off_detected_at=detected,
        prng_off=off_res,
        prng_on=on_res,
        coupling_coefficient=coupling_coefficient,
    )
