"""Plain-text rendering of experiment results.

The paper's tables and figures are regenerated as text: tables as
aligned rows, t-statistic curves and power traces as compact ASCII
sparklines with the max-|t| annotation that matters for the pass/fail
reading of Figs. 14–17.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = [
    "render_table",
    "sparkline",
    "tvla_panel",
    "campaign_stats_panel",
    "rule",
]

_SPARK = " .:-=+*#%@"


def rule(width: int = 72) -> str:
    return "-" * width


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Aligned text table."""
    srows = [[str(c) for c in r] for r in rows]
    widths = [len(h) for h in headers]
    for r in srows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    def fmt(cols: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cols, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in srows)
    return "\n".join(lines)


def sparkline(values: np.ndarray, width: int = 64) -> str:
    """Downsampled ASCII sparkline of a 1-D series."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return ""
    if v.size > width:
        edges = np.linspace(0, v.size, width + 1).astype(int)
        v = np.array([np.abs(v[a:b]).max() if b > a else 0.0
                      for a, b in zip(edges[:-1], edges[1:])])
    else:
        v = np.abs(v)
    top = v.max()
    if top <= 0:
        return _SPARK[0] * v.size
    idx = np.minimum((v / top * (len(_SPARK) - 1)).astype(int), len(_SPARK) - 1)
    return "".join(_SPARK[i] for i in idx)


def campaign_stats_panel(stats) -> str:
    """Indented acquisition-observability block for a campaign result.

    Renders :meth:`repro.leakage.stats.CampaignStats.summary` — worker
    topology, throughput, transport traffic and schedule-cache
    behaviour — under the statistical panel it belongs to.  When the
    campaign ran with :mod:`repro.obs` tracing enabled the runners
    attach per-phase timing histograms (``stats.phases``); those get a
    breakdown table here, each phase with its call count, total
    seconds, share of the summed phase time, and min/max per call.
    """
    lines = list(stats.summary().splitlines())
    phases = getattr(stats, "phases", None)
    if phases:
        grand = sum(p["total_s"] for p in phases.values()) or 1.0
        rows = [
            (
                label,
                int(p["count"]),
                f"{p['total_s']:.3f}",
                f"{p['total_s'] / grand:.0%}",
                f"{p['min_s'] * 1e3:.2f}",
                f"{p['max_s'] * 1e3:.2f}",
            )
            for label, p in phases.items()
        ]
        table = render_table(
            ("phase", "count", "total s", "share", "min ms", "max ms"), rows
        )
        lines.append("phases:")
        lines.extend("  " + line for line in table.splitlines())
    return "\n".join("  " + line for line in lines)


def tvla_panel(result, threshold: float = 4.5, show_stats: bool = False) -> str:
    """Three-row panel (orders 1..3) like one subplot of Fig. 14/15/17.

    ``show_stats=True`` appends the campaign's acquisition stats
    (:func:`campaign_stats_panel`) when the result carries them.
    """
    lines = [f"{result.label or 'TVLA'}  (n = {result.n_traces})"]
    for order, t in ((1, result.t1), (2, result.t2), (3, result.t3)):
        mx = float(np.max(np.abs(t))) if t.size else 0.0
        mark = "LEAK" if mx > threshold else "ok  "
        lines.append(
            f"  t{order} |max|={mx:7.2f} [{mark}]  {sparkline(t)}"
        )
    stats = getattr(result, "stats", None)
    if show_stats and stats is not None:
        lines.append(campaign_stats_panel(stats))
    return "\n".join(lines)
