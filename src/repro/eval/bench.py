"""Simulator throughput benchmark — ``BENCH_simulator.json`` schema v5.

Four head-to-head comparisons over the simulation substrate:

* **settle** — compiled schedule replay vs the interpreted event loop
  on a campaign-shaped gadget-bank workload (both engines must agree
  bitwise; only the time differs);
* **settle_packed** — boolean compiled replay vs the bit-packed
  ``uint64``-lane engine (:mod:`repro.sim.bitpack`) on the same
  workload; power samples must stay bitwise equal, the ~64x byte
  reduction per logic op is where the speedup comes from;
* **campaign** — serial vs parallel :func:`repro.leakage.run_campaign`
  over the same source and config (bitwise-equal t-statistics are a
  hard requirement); *skipped entirely* on single-CPU hosts, where the
  parallel leg can only measure pool overhead;
* **campaign_packed** — the same source run serially with
  ``pack_traces=False`` vs ``pack_traces=True`` on a lane-aligned
  config (bitwise-equal t-statistics required; end-to-end engine
  speedup is the number, and since v4 the packed leg accumulates power
  in the counter-plane domain instead of unpacking per event).

Schema history
--------------
``bench_simulator/v1`` recorded a single ``speedup`` per comparison
and nothing about the host — which let a 4-workers-on-1-core run
publish a 0.92x "speedup" with no way to see why.  ``v2`` added:

* ``parallel_comparison_valid`` — ``False`` when the host has fewer
  than two CPUs;
* ``n_workers`` vs ``cpu_count`` next to every campaign timing;
* the full :meth:`repro.leakage.stats.CampaignStats.as_dict` of both
  campaign runs (``serial_stats`` / ``parallel_stats``).

``v3`` adds the two packed-engine sections (``settle_packed``,
``campaign_packed``, each recording the popcount backend in use — see
:data:`repro.sim.bitpack.HAVE_BITWISE_COUNT`) and replaces the v2
single-CPU behaviour: instead of burning a minute producing an invalid
parallel comparison flagged ``parallel_comparison_valid=false``, the
``campaign`` section is now ``{"skipped_reason": "cpu_count<2"}`` and
the parallel leg never runs.

``v4`` marks the packed-domain power accumulator (recorders consume
toggle masks as counter bit-planes instead of per-event unpacked
booleans — :class:`repro.sim.power.PackedToggleAccumulator`).  The
``campaign_packed`` section now embeds ``counter_planes`` — the packed
leg's accumulator telemetry (instances, flushes, deepest per-bin
counter in bits, bins past the 2^24 float32-exactness bound) — and
runs on its own lane-aligned config (``n_traces`` and ``batch_size``
multiples of 64): the v3 section reused the parallel campaign's
125-trace batches, two ragged lanes per batch, which is exactly the
geometry packing cannot win (the seed's recorded 0.98x).

``v5`` adds the ``obs`` section — traced vs untraced packed campaign
(:mod:`repro.obs`), bitwise-equal t-statistics required, publishing
the span-tracing overhead ratio — and gives every campaign leg a
descriptive label (``bench.campaign.serial``,
``bench.campaign_packed.boolean``, ...) instead of the empty/shared
labels the v4 stats embedded.

The pytest benches under ``benchmarks/`` call the same comparison
functions with CI budgets and write the same JSON; ``python -m repro
bench [--quick]`` runs them standalone.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from dataclasses import replace as dc_replace

from ..core.gadgets import build_secand2
from ..core.shares import share
from ..leakage.acquisition import CampaignConfig, run_campaign
from ..sim import bitpack
from ..sim.power import (
    PowerRecorder,
    packed_accumulator_counters,
    reset_packed_accumulator_counters,
)
from ..sim.vectorsim import VectorSimulator

__all__ = [
    "SCHEMA",
    "median_time",
    "settle_comparison",
    "settle_packed_comparison",
    "campaign_comparison",
    "campaign_packed_comparison",
    "obs_overhead_comparison",
    "assemble_payload",
    "write_json",
    "BenchResult",
    "run",
]

SCHEMA = "bench_simulator/v5"


def _cpu_count() -> int:
    """Host CPU count (module-level so tests can monkeypatch it)."""
    return os.cpu_count() or 1


def _popcount_backend() -> str:
    """Which popcount implementation :mod:`repro.sim.bitpack` is using."""
    return "bitwise_count" if bitpack.HAVE_BITWISE_COUNT else "lut8"

#: Default output location (repo root when run from a checkout; the
#: CLI and the pytest bench both write here and CI uploads it).
DEFAULT_JSON = Path(__file__).resolve().parents[3] / "BENCH_simulator.json"


def median_time(fn: Callable, reps: int = 15, prep: Optional[Callable] = None) -> float:
    """Median wall time of ``fn`` over ``reps`` repetitions.

    ``prep`` runs untimed before each repetition (state reset, so every
    ``fn`` does real work); the first ``fn`` call is an untimed warmup
    and compiles schedules where applicable.
    """
    if prep is not None:
        prep()
    fn()
    times = []
    for _ in range(reps):
        if prep is not None:
            prep()
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def alternating_blocks(
    run_a: Callable,
    prep_a: Callable,
    run_b: Callable,
    prep_b: Callable,
    reps: int,
    rounds: int = 3,
) -> "tuple[float, float, float]":
    """Time two workloads in alternating per-leg blocks.

    Runs ``reps`` timed repetitions of leg A, then of leg B, repeated
    ``rounds`` times (plus one untimed warmup of each leg, which
    compiles schedules where applicable).  Per-leg blocks keep each
    leg's working set cache-warm — a campaign runs one engine
    back-to-back, never alternating — while alternating the blocks
    cancels host-speed drift (CPU-frequency scaling, steal time on
    shared runners) that would skew a single A-block-then-B-block
    measurement.

    Returns ``(t_a, t_b, ratio)``: the median block-median time of
    each leg and the median per-round ratio ``t_a / t_b``.
    """
    prep_a()
    run_a()
    prep_b()
    run_b()

    def block(run, prep):
        times = []
        for _ in range(reps):
            prep()
            t0 = time.perf_counter()
            run()
            times.append(time.perf_counter() - t0)
        return statistics.median(times)

    t_as, t_bs, ratios = [], [], []
    for _ in range(rounds):
        ta = block(run_a, prep_a)
        tb = block(run_b, prep_b)
        t_as.append(ta)
        t_bs.append(tb)
        ratios.append(ta / tb)
    return (
        statistics.median(t_as),
        statistics.median(t_bs),
        statistics.median(ratios),
    )


def _settle_workload(n_instances: int, n_traces: int):
    """The shared secAND2-bank settle workload of both settle sections.

    Returns ``(make, n_traces)`` where ``make(compiled, packed)`` builds
    a fresh ``(sim, rec, prep, run_once)`` quadruple over the same
    circuit, events and weights.
    """
    rng = np.random.default_rng(0)
    c = build_secand2(n_instances=n_instances)
    n = n_traces
    x0, x1 = share(rng.integers(0, 2, n).astype(bool), rng)
    y0, y1 = share(rng.integers(0, 2, n).astype(bool), rng)
    events = [
        (0, c.wire("y0"), y0),
        (1000, c.wire("x0"), x0),
        (1000, c.wire("x1"), x1),
        (2000, c.wire("y1"), y1),
    ]
    inputs = {c.wire(k): False for k in ("x0", "x1", "y0", "y1")}

    def make(compiled: bool, packed: bool = False):
        sim = VectorSimulator(
            c, n, compile_schedules=compiled, pack_traces=packed
        )
        rec = PowerRecorder(n, 5000, bin_ps=250, weights=sim.weights)

        def prep():
            sim.reset_state(False)
            sim.evaluate_combinational(inputs)
            rec.power[:] = 0.0

        def run_once():
            sim.settle(events, recorder=rec)

        return sim, rec, prep, run_once

    return make


def settle_comparison(
    n_instances: int = 64, n_traces: int = 1024, reps: int = 15
) -> Dict[str, object]:
    """Compiled replay vs interpreted settle on a secAND2 bank.

    Returns the ``settle`` section; raises AssertionError if the two
    engines disagree on values or power (they must be bitwise equal).
    Timed via :func:`alternating_blocks` so host-speed drift between
    the legs cancels.
    """
    make = _settle_workload(n_instances, n_traces)
    sim_i, rec_i, prep_i, run_i = make(False)
    sim_c, rec_c, prep_c, run_c = make(True)
    t_interp, t_compiled, speedup = alternating_blocks(
        run_i, prep_i, run_c, prep_c, reps
    )
    prep_i()
    run_i()
    prep_c()
    run_c()
    assert np.array_equal(sim_i.values, sim_c.values)
    assert np.array_equal(rec_i.power, rec_c.power)
    return {
        "circuit": "secAND2 bank",
        "n_instances": n_instances,
        "n_traces": n_traces,
        "interpreted_ms": t_interp * 1e3,
        "compiled_ms": t_compiled * 1e3,
        "speedup": speedup,
    }


def settle_packed_comparison(
    n_instances: int = 64, n_traces: int = 16384, reps: int = 9
) -> Dict[str, object]:
    """Boolean vs bit-packed compiled replay on a secAND2 bank.

    Both engines run the compiled path with a :class:`PowerRecorder`,
    so the measured difference is purely the ``uint64``-lane state
    representation (plus its lazy unpacking at recording points).
    Raises AssertionError unless final wire values and power samples
    are bitwise equal.  The defaults are sized so the byte-traffic
    advantage dominates per-call numpy overhead (packing small batches
    is not profitable — that is why ``"auto"`` exists).  Timed via
    :func:`alternating_blocks` so host-speed drift between the legs
    cancels.
    """
    make = _settle_workload(n_instances, n_traces)
    sim_b, rec_b, prep_b, run_b = make(True, packed=False)
    sim_p, rec_p, prep_p, run_p = make(True, packed=True)
    t_bool, t_packed, speedup = alternating_blocks(
        run_b, prep_b, run_p, prep_p, reps
    )
    prep_b()
    run_b()
    prep_p()
    run_p()
    for w in range(sim_b.values.shape[0]):
        assert np.array_equal(sim_b.wire_values(w), sim_p.wire_values(w))
    assert np.array_equal(rec_b.power, rec_p.power)
    return {
        "circuit": "secAND2 bank",
        "n_instances": n_instances,
        "n_traces": n_traces,
        "n_lanes": sim_p.n_lanes,
        "popcount": _popcount_backend(),
        "boolean_ms": t_bool * 1e3,
        "packed_ms": t_packed * 1e3,
        "speedup": speedup,
    }


def campaign_comparison(
    source,
    config: CampaignConfig,
    n_workers: "int | str" = "auto",
    source_label: str = "",
) -> Dict[str, object]:
    """Serial vs parallel campaign over one source/config.

    Returns the ``campaign`` section, with the serial and parallel
    :class:`~repro.leakage.stats.CampaignStats` embedded; raises
    AssertionError if the parallel t-statistics are not bitwise equal
    to the serial ones.  Callers must skip this comparison on
    single-CPU hosts (see :func:`run`): there the parallel leg can only
    measure pool overhead, never parallelism.

    Each leg gets a descriptive stats label
    (``<config.label>.serial`` / ``.parallel``) so the embedded
    ``CampaignStats`` say which leg they describe.
    """
    base = config.label or "bench.campaign"
    serial = run_campaign(
        source, dc_replace(config, label=f"{base}.serial"), n_workers=1
    )
    parallel = run_campaign(
        source,
        dc_replace(config, label=f"{base}.parallel"),
        n_workers=n_workers,
    )
    bitwise = bool(
        np.array_equal(serial.t1, parallel.t1)
        and np.array_equal(serial.t2, parallel.t2)
        and np.array_equal(serial.t3, parallel.t3)
    )
    assert bitwise, "parallel campaign diverged bitwise from serial"
    t_serial = serial.stats.wall_seconds
    t_parallel = parallel.stats.wall_seconds
    return {
        "source": source_label or type(source).__name__,
        "n_traces": config.n_traces,
        "batch_size": config.batch_size,
        "n_workers": parallel.stats.n_workers,
        "requested_workers": n_workers,
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "speedup": t_serial / t_parallel if t_parallel > 0 else 0.0,
        "bitwise_equal": bitwise,
        "serial_stats": serial.stats.as_dict(),
        "parallel_stats": parallel.stats.as_dict(),
    }


def campaign_packed_comparison(
    source,
    config: CampaignConfig,
    source_label: str = "",
    reps: int = 1,
    rounds: int = 3,
) -> Dict[str, object]:
    """Boolean vs bit-packed engine over one serial campaign.

    Runs the identical campaign with ``pack_traces=False`` and
    ``True`` and demands bitwise-equal t-statistics at every order.
    Serial on purpose: the number isolates the engine, not the pool.
    Timed via :func:`alternating_blocks` (``reps`` campaigns per leg
    block, ``rounds`` alternations, plus one untimed warm-up of each
    leg) — single-shot campaign timing on a shared 1-CPU runner
    drifts by 10-15%, which is exactly the margin the >= 1.2x gate
    needs; the published ``speedup`` is the median per-round ratio, so
    host-speed drift between the legs cancels.  The v4 section embeds
    the packed leg's counter-plane telemetry (the boolean leg creates
    no accumulators, so the process-wide counters are reset up front
    and read once at the end; repeated packed runs accumulate into the
    same counters).
    """
    reset_packed_accumulator_counters()
    base = config.label or "bench.campaign_packed"
    cfg_bool = dc_replace(config, pack_traces=False, label=f"{base}.boolean")
    cfg_packed = dc_replace(config, pack_traces=True, label=f"{base}.packed")
    latest: Dict[str, object] = {}

    def run_bool():
        latest["boolean"] = run_campaign(source, cfg_bool, n_workers=1)

    def run_pack():
        latest["packed"] = run_campaign(source, cfg_packed, n_workers=1)

    def _noop():
        pass

    t_bool, t_packed, ratio = alternating_blocks(
        run_bool, _noop, run_pack, _noop, reps, rounds
    )
    counter_planes = packed_accumulator_counters()
    boolean = latest["boolean"]
    packed = latest["packed"]
    bitwise = bool(
        np.array_equal(boolean.t1, packed.t1)
        and np.array_equal(boolean.t2, packed.t2)
        and np.array_equal(boolean.t3, packed.t3)
    )
    assert bitwise, "packed campaign diverged bitwise from boolean"
    return {
        "source": source_label or type(source).__name__,
        "n_traces": config.n_traces,
        "batch_size": config.batch_size,
        "popcount": _popcount_backend(),
        "boolean_s": t_bool,
        "packed_s": t_packed,
        "speedup": ratio,
        "bitwise_equal": bitwise,
        "counter_planes": counter_planes,
        "boolean_stats": boolean.stats.as_dict(),
        "packed_stats": packed.stats.as_dict(),
    }


def obs_overhead_comparison(
    source,
    config: CampaignConfig,
    source_label: str = "",
    reps: int = 1,
    rounds: int = 3,
) -> Dict[str, object]:
    """Untraced vs traced serial campaign over one source/config.

    Runs the identical campaign with :mod:`repro.obs` span tracing off
    and on (a fresh tracer per repetition so the ring never wraps) and
    demands bitwise-equal t-statistics — tracing must *observe* the
    campaign, never perturb it.  Timed via :func:`alternating_blocks`
    like the other campaign sections; the published ``overhead`` is
    the median per-round ``traced / untraced`` wall-time ratio minus
    one.  The v5 gate is <= 5%: spans fire per batch/phase, never per
    event, so the disabled-path and enabled-path costs are both far
    below the simulation work they wrap.
    """
    from ..obs.summary import coverage
    from ..obs.trace import disable_tracing, enable_tracing, get_tracer

    base = config.label or "bench.obs"
    cfg_off = dc_replace(config, label=f"{base}.untraced")
    cfg_on = dc_replace(config, label=f"{base}.traced")
    latest: Dict[str, object] = {}
    observed = {"spans": []}

    def prep_off():
        disable_tracing()

    def run_off():
        latest["untraced"] = run_campaign(source, cfg_off, n_workers=1)

    def prep_on():
        enable_tracing()

    def run_on():
        latest["traced"] = run_campaign(source, cfg_on, n_workers=1)
        tracer = get_tracer()
        if tracer is not None:
            observed["spans"] = tracer.drain()

    try:
        t_on, t_off, ratio = alternating_blocks(
            run_on, prep_on, run_off, prep_off, reps, rounds
        )
    finally:
        disable_tracing()
    untraced = latest["untraced"]
    traced = latest["traced"]
    bitwise = bool(
        np.array_equal(untraced.t1, traced.t1)
        and np.array_equal(untraced.t2, traced.t2)
        and np.array_equal(untraced.t3, traced.t3)
    )
    assert bitwise, "traced campaign diverged bitwise from untraced"
    spans = observed["spans"]
    assert spans, "traced campaign recorded no spans"
    return {
        "source": source_label or type(source).__name__,
        "n_traces": config.n_traces,
        "batch_size": config.batch_size,
        "untraced_s": t_off,
        "traced_s": t_on,
        "overhead": ratio - 1.0,
        "bitwise_equal": bitwise,
        "n_spans": len(spans),
        "coverage": coverage(spans),
        "traced_stats": traced.stats.as_dict(),
    }


def assemble_payload(**sections) -> Dict[str, object]:
    """Wrap comparison sections in the v5 envelope (host + validity)."""
    cpu = _cpu_count()
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": cpu,
        "unix_time": time.time(),
        # Single-CPU hosts cannot produce a meaningful serial-vs-
        # parallel number; run() then skips the campaign section
        # (recording a skipped_reason) instead of timing pool overhead.
        "parallel_comparison_valid": cpu >= 2,
        **sections,
    }


def write_json(payload: Dict[str, object], path: "Optional[Path]" = None) -> Path:
    out = Path(path) if path is not None else DEFAULT_JSON
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


@dataclass
class BenchResult:
    """``run()`` output: the JSON payload plus where it was written."""

    payload: Dict[str, object]
    json_path: Optional[Path]

    def render(self) -> str:
        p = self.payload
        lines = [
            f"bench_simulator {p['schema']}  "
            f"(python {p['python']}, numpy {p['numpy']}, "
            f"{p['cpu_count']} cpu)"
        ]
        s = p.get("settle")
        if s:
            lines.append(
                f"settle:   interpreted {s['interpreted_ms']:8.3f} ms   "
                f"compiled {s['compiled_ms']:8.3f} ms   "
                f"speedup {s['speedup']:.2f}x"
            )
        sp = p.get("settle_packed")
        if sp:
            lines.append(
                f"packed:   boolean {sp['boolean_ms']:10.3f} ms   "
                f"packed   {sp['packed_ms']:8.3f} ms   "
                f"speedup {sp['speedup']:.2f}x   "
                f"({sp['n_traces']} traces in {sp['n_lanes']} lanes, "
                f"popcount={sp['popcount']})"
            )
        c = p.get("campaign")
        if c:
            if "skipped_reason" in c:
                lines.append(
                    f"campaign: skipped ({c['skipped_reason']}) — a "
                    "serial-vs-parallel timing on this host would only "
                    "measure pool overhead"
                )
            else:
                lines.append(
                    f"campaign: serial {c['serial_s']:8.3f} s   "
                    f"parallel({c['n_workers']}) {c['parallel_s']:8.3f} s   "
                    f"speedup {c['speedup']:.2f}x   "
                    f"bitwise={c['bitwise_equal']}"
                )
                stats = c.get("parallel_stats") or {}
                if stats:
                    lines.append(
                        f"  parallel run: {stats['start_method']} start, "
                        f"transport={stats['transport']} "
                        f"({stats['pipe_bytes']:,} B through the pipe), "
                        f"warmup {stats['warmup_seconds']:.3f}s, "
                        f"schedules {stats['schedule_replays']} replayed / "
                        f"{stats['schedule_compiles']} compiled"
                    )
                    recovery = {
                        k: stats[k]
                        for k in (
                            "retries", "pool_rebuilds", "restarts",
                            "watchdog_kills", "checkpoint_restores",
                            "checkpoints_quarantined", "skipped_traces",
                            "scavenged_segments",
                        )
                        if stats.get(k)
                    }
                    if recovery:
                        lines.append(
                            "  recovery: "
                            + "  ".join(f"{k}={v}" for k, v in recovery.items())
                        )
        cp = p.get("campaign_packed")
        if cp:
            lines.append(
                f"campaign_packed: boolean {cp['boolean_s']:8.3f} s   "
                f"packed {cp['packed_s']:8.3f} s   "
                f"speedup {cp['speedup']:.2f}x   "
                f"bitwise={cp['bitwise_equal']}"
            )
            planes = cp.get("counter_planes")
            if planes:
                lines.append(
                    f"  counter planes: {planes['accumulators']} "
                    f"accumulators, {planes['flushes']} flushes, "
                    f"max depth {planes['max_planes']} bits, "
                    f"{planes['overflow_bins']} bins past 2^24"
                )
        ob = p.get("obs")
        if ob:
            lines.append(
                f"obs:      untraced {ob['untraced_s']:8.3f} s   "
                f"traced {ob['traced_s']:8.3f} s   "
                f"overhead {ob['overhead'] * 100:+.1f}%   "
                f"bitwise={ob['bitwise_equal']}   "
                f"({ob['n_spans']} spans, "
                f"coverage {ob['coverage']:.0%})"
            )
        if self.json_path is not None:
            lines.append(f"wrote {self.json_path}")
        return "\n".join(lines)


def run(
    quick: bool = False,
    n_workers: "Optional[int | str]" = None,
    write: bool = True,
    json_path: "Optional[Path]" = None,
) -> BenchResult:
    """Run all comparisons and (by default) write the v5 JSON.

    ``quick`` shrinks the budgets to CI-smoke size and swaps the
    campaign workload from the masked-DES netlist engine to the
    8-instance secAND2 sequence source (seconds, not minutes).
    ``n_workers`` defaults to ``"auto"`` (match the host) so the
    recorded speedup is the best the box can do; pass an int to
    measure a specific topology.

    On a single-CPU host the serial-vs-parallel ``campaign`` section is
    skipped entirely — recorded as ``{"skipped_reason": "cpu_count<2",
    ...}`` — instead of spending a minute timing pool overhead that
    the old schema could only flag as invalid after the fact.  The
    packed-engine sections always run; they are in-process.
    """
    workers = "auto" if n_workers is None else n_workers
    if quick:
        settle = settle_comparison(n_instances=8, n_traces=256, reps=3)
        settle_packed = settle_packed_comparison(
            n_instances=16, n_traces=2048, reps=3
        )
        from ..core.sequences import INPUT_NAMES, SequenceSource

        source = SequenceSource(INPUT_NAMES, n_instances=8)
        cfg = CampaignConfig(
            n_traces=400, batch_size=100, noise_sigma=1.0, seed=0,
            label="bench.campaign",
        )
        cfg_packed = dc_replace(cfg, label="bench.campaign_packed")
        source_label = "SequenceSource (secAND2 bank, 8 instances)"
    else:
        settle = settle_comparison()
        settle_packed = settle_packed_comparison()
        from ..des.engines import DESTraceSource, MaskedDESNetlistEngine

        engine = MaskedDESNetlistEngine("ff")
        source = DESTraceSource(
            engine, 0x0123456789ABCDEF, 0x133457799BBCDFF1, prng_enabled=True
        )
        cfg = CampaignConfig(
            n_traces=500, batch_size=125, noise_sigma=1.0, seed=0,
            label="bench.campaign",
        )
        # The engine comparison gets a lane-aligned geometry: 125-trace
        # batches are two ragged uint64 lanes — per-batch fixed costs
        # dominate and packing structurally cannot win there (the v3
        # bench's 0.98x).  The parallel comparison above keeps the
        # multi-batch config so the pool has batches to shard.
        cfg_packed = CampaignConfig(
            n_traces=512, batch_size=512, noise_sigma=1.0, seed=0,
            label="bench.campaign_packed",
        )
        source_label = "DESTraceSource (masked DES netlist, ff variant)"
    if _cpu_count() < 2:
        campaign: Dict[str, object] = {
            "source": source_label,
            "skipped_reason": "cpu_count<2",
        }
    else:
        campaign = campaign_comparison(
            source, cfg, n_workers=workers, source_label=source_label
        )
    campaign_packed = campaign_packed_comparison(
        source, cfg_packed, source_label=source_label
    )
    obs = obs_overhead_comparison(
        source,
        dc_replace(cfg_packed, pack_traces=True, label="bench.obs"),
        source_label=source_label,
    )
    payload = assemble_payload(
        settle=settle,
        settle_packed=settle_packed,
        campaign=campaign,
        campaign_packed=campaign_packed,
        obs=obs,
    )
    path = write_json(payload, json_path) if write else None
    return BenchResult(payload=payload, json_path=path)
