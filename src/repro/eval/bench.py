"""Simulator throughput benchmark — ``BENCH_simulator.json`` schema v2.

Two head-to-head comparisons over the simulation substrate:

* **settle** — compiled schedule replay vs the interpreted event loop
  on a campaign-shaped gadget-bank workload (both engines must agree
  bitwise; only the time differs);
* **campaign** — serial vs parallel :func:`repro.leakage.run_campaign`
  over the same source and config (bitwise-equal t-statistics are a
  hard requirement; the speedup is the headline number).

Schema history
--------------
``bench_simulator/v1`` recorded a single ``speedup`` per comparison
and nothing about the host — which let a 4-workers-on-1-core run
publish a 0.92x "speedup" with no way to see why.  ``v2`` adds:

* ``parallel_comparison_valid`` — ``False`` when the host has fewer
  than two CPUs; the parallel timing then only measures pool overhead
  and must not be read as a regression (the bitwise-equality check
  still holds and still runs);
* ``n_workers`` vs ``cpu_count`` next to every campaign timing;
* the full :meth:`repro.leakage.stats.CampaignStats.as_dict` of both
  campaign runs (``serial_stats`` / ``parallel_stats``): transport,
  start method, pipe bytes, warm-up time, per-batch min/median/max and
  schedule compile-vs-replay counts.

The pytest benches under ``benchmarks/`` call the same comparison
functions with CI budgets and write the same JSON; ``python -m repro
bench [--quick]`` runs them standalone.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from ..core.gadgets import build_secand2
from ..core.shares import share
from ..leakage.acquisition import CampaignConfig, run_campaign
from ..sim.power import PowerRecorder
from ..sim.vectorsim import VectorSimulator

__all__ = [
    "SCHEMA",
    "median_time",
    "settle_comparison",
    "campaign_comparison",
    "assemble_payload",
    "write_json",
    "BenchResult",
    "run",
]

SCHEMA = "bench_simulator/v2"

#: Default output location (repo root when run from a checkout; the
#: CLI and the pytest bench both write here and CI uploads it).
DEFAULT_JSON = Path(__file__).resolve().parents[3] / "BENCH_simulator.json"


def median_time(fn: Callable, reps: int = 15, prep: Optional[Callable] = None) -> float:
    """Median wall time of ``fn`` over ``reps`` repetitions.

    ``prep`` runs untimed before each repetition (state reset, so every
    ``fn`` does real work); the first ``fn`` call is an untimed warmup
    and compiles schedules where applicable.
    """
    if prep is not None:
        prep()
    fn()
    times = []
    for _ in range(reps):
        if prep is not None:
            prep()
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def settle_comparison(
    n_instances: int = 32, n_traces: int = 1024, reps: int = 15
) -> Dict[str, object]:
    """Compiled replay vs interpreted settle on a secAND2 bank.

    Returns the v2 ``settle`` section; raises AssertionError if the two
    engines disagree on values or power (they must be bitwise equal).
    """
    rng = np.random.default_rng(0)
    c = build_secand2(n_instances=n_instances)
    n = n_traces
    x0, x1 = share(rng.integers(0, 2, n).astype(bool), rng)
    y0, y1 = share(rng.integers(0, 2, n).astype(bool), rng)
    events = [
        (0, c.wire("y0"), y0),
        (1000, c.wire("x0"), x0),
        (1000, c.wire("x1"), x1),
        (2000, c.wire("y1"), y1),
    ]
    inputs = {c.wire(k): False for k in ("x0", "x1", "y0", "y1")}

    def make(compiled):
        sim = VectorSimulator(c, n, compile_schedules=compiled)
        rec = PowerRecorder(n, 5000, bin_ps=250, weights=sim.weights)

        def prep():
            sim.reset_state(False)
            sim.evaluate_combinational(inputs)

        def run_once():
            sim.settle(events, recorder=rec)

        return sim, rec, prep, run_once

    sim_i, rec_i, prep_i, run_i = make(False)
    sim_c, rec_c, prep_c, run_c = make(True)
    t_interp = median_time(run_i, reps=reps, prep=prep_i)
    t_compiled = median_time(run_c, reps=reps, prep=prep_c)
    prep_i()
    run_i()
    prep_c()
    run_c()
    assert np.array_equal(sim_i.values, sim_c.values)
    assert np.array_equal(rec_i.power, rec_c.power)
    return {
        "circuit": "secAND2 bank",
        "n_instances": n_instances,
        "n_traces": n,
        "interpreted_ms": t_interp * 1e3,
        "compiled_ms": t_compiled * 1e3,
        "speedup": t_interp / t_compiled,
    }


def campaign_comparison(
    source,
    config: CampaignConfig,
    n_workers: "int | str" = "auto",
    source_label: str = "",
) -> Dict[str, object]:
    """Serial vs parallel campaign over one source/config.

    Returns the v2 ``campaign`` section, with the serial and parallel
    :class:`~repro.leakage.stats.CampaignStats` embedded; raises
    AssertionError if the parallel t-statistics are not bitwise equal
    to the serial ones.
    """
    serial = run_campaign(source, config, n_workers=1)
    parallel = run_campaign(source, config, n_workers=n_workers)
    bitwise = bool(
        np.array_equal(serial.t1, parallel.t1)
        and np.array_equal(serial.t2, parallel.t2)
        and np.array_equal(serial.t3, parallel.t3)
    )
    assert bitwise, "parallel campaign diverged bitwise from serial"
    t_serial = serial.stats.wall_seconds
    t_parallel = parallel.stats.wall_seconds
    return {
        "source": source_label or type(source).__name__,
        "n_traces": config.n_traces,
        "batch_size": config.batch_size,
        "n_workers": parallel.stats.n_workers,
        "requested_workers": n_workers,
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "speedup": t_serial / t_parallel if t_parallel > 0 else 0.0,
        "bitwise_equal": bitwise,
        "serial_stats": serial.stats.as_dict(),
        "parallel_stats": parallel.stats.as_dict(),
    }


def assemble_payload(**sections) -> Dict[str, object]:
    """Wrap comparison sections in the v2 envelope (host + validity)."""
    cpu = os.cpu_count() or 1
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": cpu,
        "unix_time": time.time(),
        # On a single-CPU host the parallel campaign timing measures
        # pool overhead, not parallelism; readers must not treat its
        # speedup as a regression signal.
        "parallel_comparison_valid": cpu >= 2,
        **sections,
    }


def write_json(payload: Dict[str, object], path: "Optional[Path]" = None) -> Path:
    out = Path(path) if path is not None else DEFAULT_JSON
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


@dataclass
class BenchResult:
    """``run()`` output: the JSON payload plus where it was written."""

    payload: Dict[str, object]
    json_path: Optional[Path]

    def render(self) -> str:
        p = self.payload
        lines = [
            f"bench_simulator {p['schema']}  "
            f"(python {p['python']}, numpy {p['numpy']}, "
            f"{p['cpu_count']} cpu)"
        ]
        s = p.get("settle")
        if s:
            lines.append(
                f"settle:   interpreted {s['interpreted_ms']:8.3f} ms   "
                f"compiled {s['compiled_ms']:8.3f} ms   "
                f"speedup {s['speedup']:.2f}x"
            )
        c = p.get("campaign")
        if c:
            lines.append(
                f"campaign: serial {c['serial_s']:8.3f} s   "
                f"parallel({c['n_workers']}) {c['parallel_s']:8.3f} s   "
                f"speedup {c['speedup']:.2f}x   "
                f"bitwise={c['bitwise_equal']}"
            )
            if not p["parallel_comparison_valid"]:
                lines.append(
                    "  NOTE: single-CPU host — the parallel timing "
                    "measures pool overhead, not parallelism; only the "
                    "bitwise check is meaningful here"
                )
            stats = c.get("parallel_stats") or {}
            if stats:
                lines.append(
                    f"  parallel run: {stats['start_method']} start, "
                    f"transport={stats['transport']} "
                    f"({stats['pipe_bytes']:,} B through the pipe), "
                    f"warmup {stats['warmup_seconds']:.3f}s, "
                    f"schedules {stats['schedule_replays']} replayed / "
                    f"{stats['schedule_compiles']} compiled"
                )
        if self.json_path is not None:
            lines.append(f"wrote {self.json_path}")
        return "\n".join(lines)


def run(
    quick: bool = False,
    n_workers: "Optional[int | str]" = None,
    write: bool = True,
    json_path: "Optional[Path]" = None,
) -> BenchResult:
    """Run both comparisons and (by default) write the v2 JSON.

    ``quick`` shrinks the budgets to CI-smoke size and swaps the
    campaign workload from the masked-DES netlist engine to the
    8-instance secAND2 sequence source (seconds, not minutes).
    ``n_workers`` defaults to ``"auto"`` (match the host) so the
    recorded speedup is the best the box can do; pass an int to
    measure a specific topology.
    """
    workers = "auto" if n_workers is None else n_workers
    if quick:
        settle = settle_comparison(n_instances=8, n_traces=256, reps=3)
        from ..core.sequences import INPUT_NAMES, SequenceSource

        source = SequenceSource(INPUT_NAMES, n_instances=8)
        cfg = CampaignConfig(
            n_traces=400, batch_size=100, noise_sigma=1.0, seed=0,
            label="bench-quick",
        )
        campaign = campaign_comparison(
            source, cfg, n_workers=workers,
            source_label="SequenceSource (secAND2 bank, 8 instances)",
        )
    else:
        settle = settle_comparison()
        from ..des.engines import DESTraceSource, MaskedDESNetlistEngine

        engine = MaskedDESNetlistEngine("ff")
        source = DESTraceSource(
            engine, 0x0123456789ABCDEF, 0x133457799BBCDFF1, prng_enabled=True
        )
        cfg = CampaignConfig(
            n_traces=500, batch_size=125, noise_sigma=1.0, seed=0,
            label="bench",
        )
        campaign = campaign_comparison(
            source, cfg, n_workers=workers,
            source_label="DESTraceSource (masked DES netlist, ff variant)",
        )
    payload = assemble_payload(settle=settle, campaign=campaign)
    path = write_json(payload, json_path) if write else None
    return BenchResult(payload=payload, json_path=path)
