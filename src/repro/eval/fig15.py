"""Experiment: Fig. 15 — finding the optimal DelayUnit size.

The paper implements the secAND2-PD DES with DelayUnit sizes of 1, 3,
5 and 7 LUTs (0.5 M traces each, same fixed plaintext) plus a 5 M-trace
run at 7 LUTs, observing first-order leakage that *decreases with
size*: pronounced at 1 LUT, gone at 10 LUTs.

We regenerate the sweep and pair each size with its *static* safety
diagnosis (:mod:`repro.netlist.safety`): the number of secAND2 cores
whose arrival order is broken by routing skew falls with the DelayUnit
size and predicts the measured t-statistics — the mechanism behind the
paper's empirical finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..des.engines import DESTraceSource, MaskedDESNetlistEngine
from ..leakage.acquisition import CampaignConfig, run_campaign
from ..leakage.tvla import TvlaResult
from ..netlist.safety import count_violations
from .fig14 import FIXED_PLAINTEXTS, KEY
from .report import render_table, rule

__all__ = ["SweepPoint", "Fig15Result", "run", "PAPER_SIZES"]

#: DelayUnit sizes the paper sweeps (panels a-e; f is 7 LUTs @ 5M).
PAPER_SIZES = (1, 3, 5, 7, 10)


@dataclass
class SweepPoint:
    n_luts: int
    static_violations: Dict[str, int]
    tvla: TvlaResult
    extended: bool = False

    @property
    def leaks(self) -> bool:
        return self.tvla.leaks(1)


@dataclass
class Fig15Result:
    points: List[SweepPoint]

    @property
    def monotone_trend(self) -> bool:
        """max|t1| must not increase as the DelayUnit grows.

        Only points with the same trace budget are compared (|t| grows
        with sqrt(n), so the extended-budget point — the paper's
        5M-trace panel f — is excluded, and a bounded bump for a single
        marginal violation site is allowed).
        """
        ts = [p.tvla.max_abs(1) for p in self.points if not p.extended]
        return all(b <= a * 1.5 + 2.0 for a, b in zip(ts, ts[1:]))

    @property
    def largest_is_clean(self) -> bool:
        return not self.points[-1].leaks

    @property
    def smallest_is_leaky(self) -> bool:
        return self.points[0].leaks

    def render(self) -> str:
        rows = [
            (
                p.n_luts,
                p.static_violations["y1-not-last"],
                p.static_violations["y0-not-first"],
                f"{p.tvla.max_abs(1):6.2f}",
                f"{p.tvla.max_abs(2):6.2f}",
                p.tvla.n_traces,
                "LEAKS" if p.leaks else "clean",
            )
            for p in self.points
        ]
        table = render_table(
            [
                "DelayUnit [LUTs]",
                "order-violations",
                "y0-violations",
                "max|t1|",
                "max|t2|",
                "traces",
                "verdict",
            ],
            rows,
        )
        return (
            "Fig. 15 — DelayUnit size sweep (secAND2-PD DES)\n"
            + rule()
            + "\n"
            + table
            + f"\n{rule()}\n"
            f"leakage decreases with DelayUnit size: {self.monotone_trend}\n"
            f"1 LUT leaks: {self.smallest_is_leaky}   "
            f"10 LUTs clean: {self.largest_is_clean}"
        )


def run(
    sizes: Sequence[int] = PAPER_SIZES,
    n_traces: int = 10_000,
    extended_traces: int = 60_000,
    extended_sizes: Sequence[int] = (7,),
    batch_size: int = 4_000,
    noise_sigma: float = 2.0,
    seed: int = 0,
    n_workers: int = 1,
) -> Fig15Result:
    """Run the sweep.  ``extended_sizes`` get the larger budget, like
    the paper's 5 M-trace run at 7 LUTs (panel f).  ``n_workers``
    parallelises each campaign's batches (identical results)."""
    points: List[SweepPoint] = []
    for n_luts in sizes:
        eng = MaskedDESNetlistEngine("pd", n_luts=n_luts)
        viol = count_violations(eng.circuit)
        budget = extended_traces if n_luts in extended_sizes else n_traces
        src = DESTraceSource(eng, FIXED_PLAINTEXTS[0], KEY)
        res = run_campaign(
            src,
            CampaignConfig(
                n_traces=budget,
                batch_size=batch_size,
                noise_sigma=noise_sigma,
                seed=seed + n_luts,
                label=f"PD DelayUnit={n_luts}",
            ),
            n_workers=n_workers,
        )
        points.append(
            SweepPoint(
                n_luts=n_luts,
                static_violations=viol,
                tvla=res,
                extended=n_luts in extended_sizes,
            )
        )
    return Fig15Result(points)
