"""Experiment: Fig. 14 — leakage assessment of the secAND2-FF DES.

Four panels, as in the paper:

* (a) PRNG **off** sanity check: the masked core degenerates to an
  unmasked one; TVLA must detect first-order leakage within a few
  thousand traces ("with as little as 12 000 traces" on the paper's
  setup) — this validates the whole measurement chain;
* (b)(c)(d) PRNG **on**, three different fixed plaintexts: no evidence
  of first-order leakage (minor threshold crossings are dismissed
  unless they align across the three plaintexts), while second-order
  leakage is pronounced (the paper reaches |t2| ~ 60 at 50 M traces).

Trace budgets are scaled to the simulator's noise level; see
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..des.engines import DESTraceSource, MaskedDESNetlistEngine
from ..leakage.acquisition import (
    CampaignConfig,
    detect_leakage_traces,
    run_multi_fixed,
)
from ..leakage.tvla import THRESHOLD, TvlaResult, consistent_leakage
from .report import rule, tvla_panel

__all__ = ["FIXED_PLAINTEXTS", "KEY", "Fig14Result", "run"]

#: Three fixed plaintexts for the (b)(c)(d) panels.
FIXED_PLAINTEXTS = (
    0x0123456789ABCDEF,
    0xFEDCBA9876543210,
    0x00000000FFFFFFFF,
)

#: The evaluation key (fixed for all experiments, masked per operation).
KEY = 0x133457799BBCDFF1

#: Paper trace budgets for reference.
PAPER_TRACES_ON = 50_000_000
PAPER_TRACES_OFF_DETECT = 12_000


@dataclass
class Fig14Result:
    prng_off_detected_at: Optional[int]
    prng_off: TvlaResult
    prng_on: List[TvlaResult]

    @property
    def sanity_ok(self) -> bool:
        """PRNG-off must leak (the setup works)."""
        return self.prng_off_detected_at is not None

    @property
    def first_order_secure(self) -> bool:
        """No *consistent* first-order leakage across fixed plaintexts."""
        return not consistent_leakage(self.prng_on, order=1)

    @property
    def second_order_present(self) -> bool:
        return all(r.leaks(2) for r in self.prng_on)

    def render(self) -> str:
        parts = [
            "Fig. 14 — TVLA of protected DES (secAND2-FF)",
            rule(),
            f"(a) PRNG off: first-order leakage detected at "
            f"{self.prng_off_detected_at} traces "
            f"(paper: ~{PAPER_TRACES_OFF_DETECT:,})",
            tvla_panel(self.prng_off),
            rule(),
        ]
        for i, r in enumerate(self.prng_on):
            parts.append(f"({chr(ord('b') + i)}) PRNG on, fixed plaintext #{i}:")
            parts.append(tvla_panel(r))
        parts.append(rule())
        parts.append(
            f"sanity (PRNG off leaks): {self.sanity_ok}   "
            f"no consistent 1st-order leakage: {self.first_order_secure}   "
            f"2nd-order leakage present: {self.second_order_present}"
        )
        return "\n".join(parts)


def run(
    n_traces: int = 60_000,
    n_traces_off: int = 10_000,
    batch_size: int = 4_000,
    noise_sigma: float = 2.0,
    seed: int = 0,
    n_workers: int = 1,
) -> Fig14Result:
    """Regenerate all four Fig. 14 panels (scaled budgets).

    ``n_workers`` parallelises each campaign's batches; results are
    identical for any worker count.
    """
    engine = MaskedDESNetlistEngine("ff")

    # (a) PRNG off
    off_src = DESTraceSource(engine, FIXED_PLAINTEXTS[0], KEY, prng_enabled=False)
    detected, off_res = detect_leakage_traces(
        off_src,
        CampaignConfig(
            n_traces=n_traces_off,
            batch_size=batch_size,
            noise_sigma=noise_sigma,
            seed=seed + 99,
            label="FF PRNG-off",
        ),
        n_workers=n_workers,
    )

    # (b)(c)(d) PRNG on, three fixed plaintexts
    def make_source(i: int) -> DESTraceSource:
        return DESTraceSource(engine, FIXED_PLAINTEXTS[i], KEY, prng_enabled=True)

    on_res = run_multi_fixed(
        make_source,
        CampaignConfig(
            n_traces=n_traces,
            batch_size=batch_size,
            noise_sigma=noise_sigma,
            seed=seed,
            label="FF PRNG-on",
        ),
        n_fixed=len(FIXED_PLAINTEXTS),
        n_workers=n_workers,
    )
    return Fig14Result(
        prng_off_detected_at=detected, prng_off=off_res, prng_on=on_res
    )
