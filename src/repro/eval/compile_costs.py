"""Experiment: compiled vs hand-built cost across the paper S-boxes.

Not a paper table — the acceptance sheet of the :mod:`repro.compile`
subsystem.  Compiles every paper target (8 DES S-boxes, PRESENT, AES),
certifies each netlist, and for DES puts the compiler's cost report
next to the hand-built :mod:`repro.des.masked_netlist` standalone
S-box.  The qualitative claims:

* every target certifies (functional + static margin + exact sites);
* compiled DES GE / FF are within 25% of the hand-built engine at the
  same DelayUnit size (the ISSUE's cross-validation criterion);
* full refresh uses exactly the hand-built ``r0..r13`` budget (14
  bits), selective strictly fewer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..compile import (
    aes_sbox_spec,
    compile_spec,
    des_sbox_spec,
    present_sbox_spec,
)
from ..des.masked_netlist import build_standalone_sbox
from ..netlist.area import report as area_report
from .report import render_table, rule

__all__ = ["CompileCostsResult", "run"]


@dataclass(frozen=True)
class CompileCostsResult:
    style: str
    #: per-target rows: (name, GE, FF, LUT, fresh bits, cycles, certified)
    rows: Tuple[Tuple[str, float, int, int, int, int, bool], ...]
    #: DES S-box 0: (compiled GE, hand-built GE, compiled FF, hand FF)
    des_parity: Tuple[float, float, int, int]

    @property
    def all_certified(self) -> bool:
        return all(r[-1] for r in self.rows)

    @property
    def des_within_25pct(self) -> bool:
        c_ge, h_ge, c_ff, h_ff = self.des_parity
        return (
            abs(c_ge - h_ge) <= 0.25 * h_ge
            and abs(c_ff - h_ff) <= 0.25 * h_ff
        )

    def render(self) -> str:
        lines = [
            f"compiled paper targets, style={self.style} "
            "(GE/FF/LUT from netlist.area, certificate = "
            "functional + static + exact sites)",
            rule(),
            render_table(
                ["target", "GE", "FF", "LUT", "rand", "cyc", "certified"],
                [
                    (n, f"{ge:.0f}", ff, lut, rand, cyc,
                     "yes" if ok else "NO")
                    for n, ge, ff, lut, rand, cyc, ok in self.rows
                ],
            ),
            rule(),
        ]
        c_ge, h_ge, c_ff, h_ff = self.des_parity
        lines.append(
            f"DES S-box 0 parity: compiled {c_ge:.0f} GE / {c_ff} FF vs "
            f"hand-built {h_ge:.0f} GE / {h_ff} FF "
            f"({100 * abs(c_ge - h_ge) / h_ge:.1f}% GE delta, "
            f"within 25%: {'yes' if self.des_within_25pct else 'NO'})"
        )
        return "\n".join(lines)


def run(style: str = "pd", margin_ps: int = 50) -> CompileCostsResult:
    specs = (
        [des_sbox_spec(i) for i in range(8)]
        + [present_sbox_spec(), aes_sbox_spec()]
    )
    rows: List[Tuple[str, float, int, int, int, int, bool]] = []
    des0_cost = None
    for spec in specs:
        result = compile_spec(
            spec, style=style, margin_ps=margin_ps, refresh="full"
        )
        cert = result.certify()
        util = area_report(result.circuit)
        rows.append(
            (
                spec.name,
                util.area_ge,
                util.n_ff,
                util.n_lut,
                result.netlist.fresh_bits,
                result.netlist.n_cycles,
                cert.ok,
            )
        )
        if spec.name == "des_sbox0":
            des0_cost = (util.area_ge, util.n_ff)

    hand, _ctrl, _coupling = build_standalone_sbox(0, style, n_luts=1)
    hand_util = area_report(hand)
    assert des0_cost is not None
    return CompileCostsResult(
        style=style,
        rows=tuple(rows),
        des_parity=(
            des0_cost[0], hand_util.area_ge, des0_cost[1], hand_util.n_ff
        ),
    )
