"""Experiment: Table I — leakage behaviour of secAND2 input sequences.

The paper exhausts all 24 arrival orders of the four secAND2 input
shares (0.5 M traces each) and finds that exactly the sequences ending
in ``x0`` or ``x1`` leak.  We rerun the experiment on the glitch
simulator (scaled trace budget) and print the per-sequence verdicts
plus the Table I summary rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.sequences import (
    ALL_SEQUENCES,
    SequenceVerdict,
    run_table1,
    sequence_is_safe,
)
from .report import render_table, rule

__all__ = ["Table1Result", "run", "PAPER_TRACES", "DEFAULT_TRACES"]

#: The paper's per-sequence trace budget.
PAPER_TRACES = 500_000

#: Scaled default (simulated traces carry far less noise; see
#: EXPERIMENTS.md for the calibration).
DEFAULT_TRACES = 30_000


@dataclass
class Table1Result:
    verdicts: List[SequenceVerdict]

    @property
    def all_match_paper(self) -> bool:
        return all(v.matches_paper for v in self.verdicts)

    @property
    def n_leaky(self) -> int:
        return sum(1 for v in self.verdicts if v.leaks)

    def render(self) -> str:
        rows = [
            (
                " -> ".join(v.sequence),
                f"{v.max_t1:7.2f}",
                "LEAKS" if v.leaks else "clean",
                "leaky" if not v.expected_safe else "safe",
                "ok" if v.matches_paper else "MISMATCH",
            )
            for v in self.verdicts
        ]
        table = render_table(
            ["sequence", "max|t1|", "verdict", "paper", "agrees"], rows
        )
        summary = (
            f"\n{rule()}\nTable I rule: a sequence leaks iff x0 or x1 "
            f"arrives last.\n"
            f"Leaky sequences found: {self.n_leaky} / {len(self.verdicts)} "
            f"(paper: 12 / 24)\n"
            f"All verdicts agree with the paper: {self.all_match_paper}"
        )
        return table + summary


def run(
    n_traces: int = DEFAULT_TRACES,
    sequences: Optional[Sequence[Sequence[str]]] = None,
    noise_sigma: float = 1.0,
    seed: int = 0,
    n_workers: int = 1,
) -> Table1Result:
    """Reproduce Table I (all 24 sequences by default)."""
    verdicts = run_table1(
        sequences=sequences,
        n_traces=n_traces,
        noise_sigma=noise_sigma,
        seed=seed,
        n_workers=n_workers,
    )
    return Table1Result(verdicts)
