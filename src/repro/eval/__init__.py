"""Experiment registry: one module per table/figure of the paper.

======  ==============================================  ==============
id      paper content                                   module
======  ==============================================  ==============
table1  secAND2 input-sequence leakage (24 orders)      eval.table1
table2  delay schedules for 3/4-variable products       eval.table2
table3  utilisation of the full DES engines             eval.table3
fig13   power trace, FF engine                          eval.traces
fig16   power trace, PD engine                          eval.traces
fig14   TVLA of the FF engine (PRNG off/on)             eval.fig14
fig15   DelayUnit size sweep                            eval.fig15
fig17   TVLA of the PD engine (coupling)                eval.fig17
======  ==============================================  ==============

plus ``fault_sweep`` (eval.fault_sweep): the delay-variation
margin-erosion sweep over the fault-injection subsystem — not a paper
figure, but the robustness question behind Sec. VII-B; ``bench``
(eval.bench): the simulator-throughput benchmark that writes
``BENCH_simulator.json`` (schema ``bench_simulator/v5``); and
``compile_costs`` (eval.compile_costs): the masking compiler's
acceptance sheet — certify all ten paper S-boxes and compare compiled
vs hand-built DES cost.

Each module exposes ``run(...)`` returning a result object with a
``render()`` method; the benchmark harness under ``benchmarks/`` calls
these with reduced budgets, and ``examples/reproduce_paper.py`` runs the
full scaled campaign.
"""

from typing import Callable, Dict

from . import (
    bench,
    compile_costs,
    fault_sweep,
    fig14,
    fig15,
    fig17,
    report,
    table1,
    table2,
    table3,
    traces,
)

EXPERIMENTS: Dict[str, Callable] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "fig13": lambda **kw: traces.run(variant="ff", **kw),
    "fig16": lambda **kw: traces.run(variant="pd", **kw),
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig17": fig17.run,
    "fault_sweep": fault_sweep.run,
    "bench": bench.run,
    "compile_costs": compile_costs.run,
}

__all__ = [
    "EXPERIMENTS",
    "bench",
    "compile_costs",
    "fault_sweep",
    "fig14",
    "fig15",
    "fig17",
    "report",
    "table1",
    "table2",
    "table3",
    "traces",
]
