"""Experiment: Table II / Figs. 4 & 6 — products of 3 and 4 variables.

Regenerates the Table II delay schedules from the generalised rule,
verifies both composition styles functionally (secAND2-FF tree,
secAND2-PD chain), and runs the leakage assessment of the secAND2-PD
3-variable chain across *consecutive computations without reset* — the
property Sec. II-D/III-B claims for the PD construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.composition import pd_delay_schedule, product_chain_pd
from ..core.gadgets import SharePair
from ..core.shares import share
from ..leakage.acquisition import CampaignConfig, run_campaign
from ..leakage.tvla import THRESHOLD, TvlaResult
from ..netlist.circuit import Circuit
from ..sim.power import PowerRecorder
from ..sim.vectorsim import VectorSimulator
from .report import render_table, rule

__all__ = [
    "schedule_rows",
    "ChainTraceSource",
    "Table2Result",
    "run",
    "PAPER_SCHEDULES",
]

#: Table II verbatim (variable 0 = a innermost; (var, share) -> units).
PAPER_SCHEDULES = {
    3: {
        (2, 0): 0, (1, 0): 1, (0, 0): 2, (0, 1): 2, (1, 1): 3, (2, 1): 4,
    },
    4: {
        (3, 0): 0, (2, 0): 1, (1, 0): 2, (0, 0): 3, (0, 1): 3,
        (1, 1): 4, (2, 1): 5, (3, 1): 6,
    },
}


def schedule_rows(n: int) -> List[Tuple[str, int]]:
    """Human-readable delay schedule for an n-variable product."""
    names = "abcdefgh"
    sched = pd_delay_schedule(n)
    rows = [
        (f"{names[v]}{s}", units)
        for (v, s), units in sorted(sched.items(), key=lambda kv: kv[1])
    ]
    return rows


class ChainTraceSource:
    """Leakage source for the PD product chain, no reset between ops.

    Each trace performs two consecutive products on the same chain:
    first with fresh random operands (the "previous computation"), then
    with the test stimulus — power is recorded over the *second*
    computation only, so any leakage of either the previous or the
    current unshared operands (the two failure modes of Sec. II-C/D)
    shows up.
    """

    def __init__(
        self,
        n_vars: int = 3,
        n_luts: int = 4,
        fixed_values: Tuple[int, ...] = (1, 1, 1),
        bin_ps: int = 500,
    ):
        self.n_vars = n_vars
        self.fixed_values = fixed_values
        c = Circuit(f"pchain{n_vars}")
        ops = [
            SharePair(c.add_input(f"v{i}s0"), c.add_input(f"v{i}s1"))
            for i in range(n_vars)
        ]
        z = product_chain_pd(c, ops, n_luts=n_luts)
        c.mark_output("z0", z.s0)
        c.mark_output("z1", z.s1)
        c.check()
        self.circuit = c
        from ..netlist.timing import arrival_times

        settle = int(max(arrival_times(c).values())) + 500
        self.window_ps = settle
        self.bin_ps = bin_ps
        self.n_samples = int(-(-settle // bin_ps))

    def acquire(self, fixed_mask: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = fixed_mask.shape[0]
        c = self.circuit
        sim = VectorSimulator(c, n)
        # computation 1: fresh random operands, not recorded
        prev_events = []
        for i in range(self.n_vars):
            v = rng.integers(0, 2, n).astype(bool)
            s0, s1 = share(v, rng)
            prev_events.append((0, c.wire(f"v{i}s0"), s0))
            prev_events.append((0, c.wire(f"v{i}s1"), s1))
        sim.settle(prev_events)
        # computation 2: the test stimulus, recorded
        rec = PowerRecorder(n, self.window_ps, bin_ps=self.bin_ps, weights=sim.weights)
        events = []
        for i in range(self.n_vars):
            v = rng.integers(0, 2, n).astype(bool)
            v[fixed_mask] = bool(self.fixed_values[i])
            s0, s1 = share(v, rng)
            events.append((0, c.wire(f"v{i}s0"), s0))
            events.append((0, c.wire(f"v{i}s1"), s1))
        sim.settle(events, recorder=rec)
        return rec.power


@dataclass
class Table2Result:
    schedules: Dict[int, List[Tuple[str, int]]]
    matches_paper: bool
    chain_functional_ok: bool
    chain_tvla: TvlaResult

    @property
    def chain_is_clean(self) -> bool:
        return not self.chain_tvla.leaks(1)

    def render(self) -> str:
        parts = []
        for n, rows in sorted(self.schedules.items()):
            parts.append(f"Product of {n} variables — delay sequence:")
            parts.append(
                render_table(["input share", "DelayUnits"], rows)
            )
            parts.append("")
        parts.append(f"Schedules match Table II: {self.matches_paper}")
        parts.append(
            f"3-var PD chain functional (z == a.b.c): {self.chain_functional_ok}"
        )
        parts.append(
            f"3-var PD chain TVLA (no reset, 2 consecutive ops): "
            f"max|t1| = {self.chain_tvla.max_abs(1):.2f} "
            f"-> {'clean' if self.chain_is_clean else 'LEAKS'}"
        )
        return "\n".join(parts)


def _verify_chain_functional(n_vars: int = 3, n: int = 4000, seed: int = 5) -> bool:
    rng = np.random.default_rng(seed)
    c = Circuit("pchain-func")
    ops = [
        SharePair(c.add_input(f"v{i}s0"), c.add_input(f"v{i}s1"))
        for i in range(n_vars)
    ]
    z = product_chain_pd(c, ops, n_luts=2)
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    sim = VectorSimulator(c, n)
    vals = []
    assign = {}
    for i in range(n_vars):
        v = rng.integers(0, 2, n).astype(bool)
        s0, s1 = share(v, rng)
        vals.append(v)
        assign[c.wire(f"v{i}s0")] = s0
        assign[c.wire(f"v{i}s1")] = s1
    sim.evaluate_combinational(assign)
    out = sim.output_values()
    expect = vals[0]
    for v in vals[1:]:
        expect = expect & v
    return bool(np.array_equal(out["z0"] ^ out["z1"], expect))


def run(
    n_traces: int = 30_000,
    noise_sigma: float = 1.0,
    seed: int = 0,
    n_workers: int = 1,
) -> Table2Result:
    """Regenerate Table II and assess the 3-variable PD chain.

    ``n_workers`` parallelises the chain campaign's batches (identical
    results for any worker count).
    """
    schedules = {n: schedule_rows(n) for n in (3, 4)}
    matches = all(
        pd_delay_schedule(n) == PAPER_SCHEDULES[n] for n in (3, 4)
    )
    functional = _verify_chain_functional()
    src = ChainTraceSource()
    tvla = run_campaign(
        src,
        CampaignConfig(
            n_traces=n_traces,
            batch_size=min(5000, n_traces),
            noise_sigma=noise_sigma,
            seed=seed,
            label="PD 3-var chain",
        ),
        n_workers=n_workers,
    )
    return Table2Result(
        schedules=schedules,
        matches_paper=matches,
        chain_functional_ok=functional,
        chain_tvla=tvla,
    )
