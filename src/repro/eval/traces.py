"""Experiment: Figs. 13 & 16 — power traces of the full DES operation.

The paper shows raw oscilloscope traces covering the whole encryption:
sixteen repeating round humps (seven cycles each for the FF engine, two
for the PD engine).  We regenerate the equivalent from the simulator:
the mean toggle-power trace of a small batch, its per-round energy
profile, and a periodicity check that the trace contains exactly
sixteen round patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..des.bits import int_to_bitarray
from ..des.engines import MaskedDESNetlistEngine
from ..des.tables import N_ROUNDS
from ..leakage.prng import RandomnessSource
from .report import rule, sparkline

__all__ = ["PowerTraceResult", "run"]


@dataclass
class PowerTraceResult:
    variant: str
    mean_trace: np.ndarray
    samples_per_round: float
    round_energy: np.ndarray

    @property
    def n_rounds_detected(self) -> int:
        """Rounds detected as contiguous above-median-energy humps."""
        return int(self.round_energy.shape[0])

    @property
    def rounds_uniform(self) -> bool:
        """Rounds 2..15 should burn similar energy (same structure)."""
        inner = self.round_energy[1:-1]
        return bool(inner.std() / inner.mean() < 0.1)

    def render(self) -> str:
        lines = [
            f"Fig. {'13' if self.variant == 'ff' else '16'} — power trace, "
            f"protected DES ({self.variant.upper()} variant, "
            f"{7 if self.variant == 'ff' else 2} cycles/round)",
            sparkline(self.mean_trace, width=72),
            f"samples/round: {self.samples_per_round:.1f}   "
            f"rounds: {self.n_rounds_detected}   "
            f"inner-round energy spread: "
            f"{self.round_energy[1:-1].std() / self.round_energy[1:-1].mean():.1%}",
        ]
        return "\n".join(lines)


def run(
    variant: str = "ff",
    n_traces: int = 64,
    seed: int = 0,
    n_luts: int = 10,
) -> PowerTraceResult:
    """Regenerate the Fig. 13 (FF) or Fig. 16 (PD) power trace."""
    eng = MaskedDESNetlistEngine(variant, n_luts=n_luts)
    rng = np.random.default_rng(seed)
    pt = int_to_bitarray(
        rng.integers(0, 2**63, n_traces, dtype=np.uint64), 64
    )
    key = int_to_bitarray(np.uint64(0x133457799BBCDFF1), 64, n_traces)
    _, power = eng.run_batch(pt, key, RandomnessSource(seed))
    mean = power.mean(axis=0)
    per_round = eng.cycles_per_round * eng.period_ps / eng.bin_ps
    energy = np.array(
        [
            mean[int(r * per_round) : int((r + 1) * per_round)].sum()
            for r in range(N_ROUNDS)
        ]
    )
    return PowerTraceResult(
        variant=variant,
        mean_trace=mean,
        samples_per_round=per_round,
        round_energy=energy,
    )
