"""Greedy minimal-refresh search, factored out of ``des.selective_refresh``.

The search itself is gadget-agnostic: given a *defect function* that
measures how far a masked design's share distribution is from uniform
under an arbitrary subset of refresh positions, drop positions one at a
time and keep a drop only while the defect stays within a tolerance of
the full-refresh statistical floor.  The DES exploration
(:mod:`repro.des.selective_refresh`) and the compiler's refresh pass
(:mod:`repro.compile.refresh`) both run this exact loop — only the
defect function differs.

The defect function receives ``(mask, salt)``.  ``salt`` is a small
integer the caller folds into its RNG seed so every evaluation draws an
independent sample: ``0`` for the full-refresh floor, ``pos + 1`` for
the trial that drops position ``pos``, and ``FINAL_SALT`` for the
confirmation run on the final mask.  These values are pinned so the
factored search reproduces the historical ``des.selective_refresh``
numerics bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

__all__ = ["FINAL_SALT", "GreedySearchResult", "greedy_minimize"]

#: Salt of the confirmation evaluation on the final mask (historical
#: constant from the original DES search; changing it would shift the
#: reported defect of every pinned plan).
FINAL_SALT = 99

DefectFn = Callable[[Sequence[bool], int], float]


@dataclass(frozen=True)
class GreedySearchResult:
    """Outcome of one greedy minimisation."""

    mask: Tuple[bool, ...]
    defect: float
    floor: float
    threshold: float

    @property
    def bits_used(self) -> int:
        return sum(self.mask)

    @property
    def bits_saved(self) -> int:
        return len(self.mask) - self.bits_used

    @property
    def kept(self) -> Tuple[int, ...]:
        return tuple(i for i, m in enumerate(self.mask) if m)


def greedy_minimize(
    defect_fn: DefectFn,
    n_positions: int,
    tolerance_factor: float = 2.0,
    order: Optional[Sequence[int]] = None,
    threshold_slack: float = 1e-4,
) -> GreedySearchResult:
    """Greedily drop refresh positions while the defect stays bounded.

    Starts from the all-kept mask, measures the full-refresh floor,
    then visits positions in ``order`` (default: highest index first,
    the historical DES order — MUX selects before product terms) and
    drops each one whose removal keeps ``defect_fn`` within
    ``floor * tolerance_factor + threshold_slack``.

    This is an *empirical first-order uniformity* criterion — it bounds
    the distribution of the output shares, which is the property the
    refresh layer restores; it is not a proof of composable security
    (neither is the paper's refresh-everything baseline).
    """
    if n_positions < 0:
        raise ValueError("n_positions must be >= 0")
    mask = [True] * n_positions
    floor = float(defect_fn(mask, 0))
    threshold = floor * tolerance_factor + threshold_slack
    if order is None:
        order = range(n_positions - 1, -1, -1)
    for pos in order:
        mask[pos] = False
        defect = float(defect_fn(mask, pos + 1))
        if defect > threshold:
            mask[pos] = True
    final = float(defect_fn(mask, FINAL_SALT))
    return GreedySearchResult(
        mask=tuple(mask), defect=final, floor=floor, threshold=threshold
    )
