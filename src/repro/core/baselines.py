"""Baseline masked AND gadgets the paper compares against.

* :func:`trichina_and` — Trichina's classical Boolean-masked AND (Eq. 1
  of the paper): one fresh random bit, secure only under left-to-right
  evaluation order, glitch-*insecure* in hardware;
* :func:`dom_indep_and` — Domain-Oriented Masking, independent-input
  variant (Gross et al.): one fresh random bit and a register layer on
  the cross-domain terms;
* :func:`dom_dep_and` — DOM for dependent inputs, which first refreshes
  one operand: 3 fresh random bits per AND (the variant whose leakage
  Sasdrich & Hutter assessed, paper ref. [17]);
* :func:`ti_and3` — the classical 3-share first-order Threshold
  Implementation of AND (non-complete component functions + register
  layer, no fresh randomness but three shares).

These give the cost (area / latency / randomness) and behaviour
reference points used in Table III and the surrounding discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from .gadgets import SharePair

__all__ = [
    "trichina_and",
    "dom_indep_and",
    "dom_dep_and",
    "ti_and3",
    "ShareTriple",
    "build_trichina",
    "build_dom_indep",
    "GadgetCost",
    "gadget_costs",
]


@dataclass(frozen=True)
class ShareTriple:
    """Wire ids of a 3-share (TI) variable."""

    s0: int
    s1: int
    s2: int

    def __iter__(self):
        return iter((self.s0, self.s1, self.s2))


def trichina_and(
    c: Circuit,
    x: SharePair,
    y: SharePair,
    r: int,
    tag: str = "trichina",
    style: str = "gates",
) -> SharePair:
    """Trichina AND (Eq. 1): z0 = r ^ x0y0 ^ x0y1 ^ x1y1 ^ x1y0; z1 = r.

    ``style="gates"``: the discrete XOR chain, built strictly
    left-to-right — the order required for software security, which
    hardware does not honour.  ``style="lut"``: z0 packed into a single
    LUT5 (the FPGA mapping), whose atomic output transition exposes the
    unmasked ``y`` on a late x-share arrival — the problem statement of
    Sec. II.
    """
    if style == "lut":
        z0 = c.add_gate(
            "TRICHINA_L", [r, x.s0, x.s1, y.s0, y.s1], name=f"{tag}_z0"
        )
        z1 = c.buf(r, name=f"{tag}_z1")
        return SharePair(z0, z1)
    t00 = c.and2(x.s0, y.s0, name=f"{tag}_a00")
    t01 = c.and2(x.s0, y.s1, name=f"{tag}_a01")
    t11 = c.and2(x.s1, y.s1, name=f"{tag}_a11")
    t10 = c.and2(x.s1, y.s0, name=f"{tag}_a10")
    acc = c.xor2(r, t00, name=f"{tag}_x0")
    acc = c.xor2(acc, t01, name=f"{tag}_x1")
    acc = c.xor2(acc, t11, name=f"{tag}_x2")
    z0 = c.xor2(acc, t10, name=f"{tag}_x3")
    z1 = c.buf(r, name=f"{tag}_z1")
    return SharePair(z0, z1)


def dom_indep_and(
    c: Circuit, x: SharePair, y: SharePair, r: int, tag: str = "domi"
) -> SharePair:
    """DOM-indep AND: cross-domain terms remasked and registered.

        z0 = x0.y0 ^ FF(x0.y1 ^ r)
        z1 = x1.y1 ^ FF(x1.y0 ^ r)

    One fresh random bit per AND; one register stage of latency.  The
    register layer stops glitch propagation across share domains, which
    is what buys provable first-order security (at the cost the paper
    wants to avoid).
    """
    inner0 = c.and2(x.s0, y.s0, name=f"{tag}_a00")
    inner1 = c.and2(x.s1, y.s1, name=f"{tag}_a11")
    cross0 = c.xor2(c.and2(x.s0, y.s1, name=f"{tag}_a01"), r, name=f"{tag}_m0")
    cross1 = c.xor2(c.and2(x.s1, y.s0, name=f"{tag}_a10"), r, name=f"{tag}_m1")
    cross0_q = c.dff(cross0, name=f"{tag}_ff0")
    cross1_q = c.dff(cross1, name=f"{tag}_ff1")
    z0 = c.xor2(inner0, cross0_q, name=f"{tag}_z0")
    z1 = c.xor2(inner1, cross1_q, name=f"{tag}_z1")
    return SharePair(z0, z1)


def dom_dep_and(
    c: Circuit,
    x: SharePair,
    y: SharePair,
    r: Tuple[int, int, int],
    tag: str = "domd",
) -> SharePair:
    """DOM-dep AND: refresh one operand, then DOM-indep.

    For operands that are not statistically independent, DOM first
    re-shares ``y`` with two fresh bits (register-separated), then runs
    DOM-indep with a third.  Total 3 random bits per AND — the
    "528 bits per round" row of Table III comes from this cost.
    """
    r0, r1, r2 = r
    # re-mask each operand (same fresh bit on both shares preserves the
    # sharing); registers stop glitches from recombining the masks
    y_ref = SharePair(
        c.dff(c.xor2(y.s0, r0, name=f"{tag}_ry0"), name=f"{tag}_ffy0"),
        c.dff(c.xor2(y.s1, r0, name=f"{tag}_ry1"), name=f"{tag}_ffy1"),
    )
    x_ref = SharePair(
        c.dff(c.xor2(x.s0, r1, name=f"{tag}_rx0"), name=f"{tag}_ffx0"),
        c.dff(c.xor2(x.s1, r1, name=f"{tag}_rx1"), name=f"{tag}_ffx1"),
    )
    return dom_indep_and(c, x_ref, y_ref, r2, tag=f"{tag}_core")


def ti_and3(
    c: Circuit, x: ShareTriple, y: ShareTriple, tag: str = "ti"
) -> ShareTriple:
    """3-share first-order TI of AND (non-complete + registered).

        z0 = x1y1 ^ x1y2 ^ x2y1
        z1 = x2y2 ^ x2y0 ^ x0y2
        z2 = x0y0 ^ x0y1 ^ x1y0

    Each component omits one input share index (non-completeness), so
    glitches within a component cannot combine all shares; a register
    layer isolates the next stage.  No fresh randomness, but three
    shares of everything — the area cost TI pays.
    """
    xs = list(x)
    ys = list(y)
    outs: List[int] = []
    for i in range(3):
        a, b = (i + 1) % 3, (i + 2) % 3
        t0 = c.and2(xs[a], ys[a], name=f"{tag}_z{i}a")
        t1 = c.and2(xs[a], ys[b], name=f"{tag}_z{i}b")
        t2 = c.and2(xs[b], ys[a], name=f"{tag}_z{i}c")
        z = c.xor2(c.xor2(t0, t1, name=f"{tag}_z{i}x0"), t2, name=f"{tag}_z{i}x1")
        outs.append(c.dff(z, name=f"{tag}_z{i}ff"))
    return ShareTriple(*outs)


# ----------------------------------------------------------------------
def build_trichina(style: str = "gates") -> Circuit:
    """Standalone Trichina AND circuit (for leakage comparison)."""
    c = Circuit("trichina-AND")
    x0, x1, y0, y1, r = c.add_inputs("x0", "x1", "y0", "y1", "r")
    z = trichina_and(c, SharePair(x0, x1), SharePair(y0, y1), r, style=style)
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    c.check()
    return c


def build_dom_indep() -> Circuit:
    """Standalone DOM-indep AND circuit."""
    c = Circuit("DOM-indep-AND")
    x0, x1, y0, y1, r = c.add_inputs("x0", "x1", "y0", "y1", "r")
    z = dom_indep_and(c, SharePair(x0, x1), SharePair(y0, y1), r)
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    c.check()
    return c


@dataclass(frozen=True)
class GadgetCost:
    """Cost summary of one masked-AND gadget."""

    name: str
    area_ge: float
    n_ff: int
    random_bits: int
    latency_cycles: int


def gadget_costs() -> List[GadgetCost]:
    """Cost table of all masked-AND gadgets (paper Sec. II discussion)."""
    from ..netlist.area import area_ge
    from .gadgets import build_secand2, build_secand2_ff, build_secand2_pd

    rows = []
    for name, circ, rnd, lat in [
        ("secAND2", build_secand2(), 0, 1),
        ("secAND2-FF", build_secand2_ff(), 0, 2),
        ("secAND2-PD", build_secand2_pd(), 0, 1),
        ("Trichina", build_trichina(), 1, 1),
        ("DOM-indep", build_dom_indep(), 1, 2),
    ]:
        n_ff = sum(1 for g in circ.gates if g.is_ff)
        rows.append(GadgetCost(name, area_ge(circ), n_ff, rnd, lat))
    return rows
