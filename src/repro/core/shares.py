"""First-order Boolean share algebra.

Every sensitive bit ``x`` is split as ``x = x0 XOR x1`` with ``x0``
uniform (Sec. I).  This module provides vectorised sharing/unsharing
over numpy boolean arrays plus uniformity diagnostics used by the
composition tests (the secAND2 output is *not* independent of its
inputs — Sec. III-C — and the tests must be able to demonstrate that).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "share",
    "unshare",
    "share_many",
    "random_bits",
    "joint_distribution",
    "is_uniform_sharing",
    "shares_independent_of",
]


def random_bits(rng: np.random.Generator, n: int) -> np.ndarray:
    """n uniform random bits as a boolean array."""
    return rng.integers(0, 2, size=n, dtype=np.uint8).astype(bool)


def share(
    values: "np.ndarray | bool | int", rng: np.random.Generator, n: int = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``values`` into two shares with a uniform mask.

    Args:
        values: Boolean array of unshared bits, or a scalar (then ``n``
            gives the number of traces to broadcast to).
        rng: Randomness source for the masks.
        n: Trace count when ``values`` is scalar.

    Returns:
        ``(s0, s1)`` with ``s0`` uniform and ``s0 ^ s1 == values``.
    """
    if not isinstance(values, np.ndarray):
        if n is None:
            raise ValueError("scalar values require n")
        values = np.full(n, bool(values))
    s0 = random_bits(rng, values.shape[0])
    s1 = s0 ^ values.astype(bool)
    return s0, s1


def unshare(s0: np.ndarray, s1: np.ndarray) -> np.ndarray:
    """Recombine two shares."""
    return s0 ^ s1


def share_many(
    values: Sequence["np.ndarray | bool | int"],
    rng: np.random.Generator,
    n: int = None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Independently share several variables (fresh mask per variable)."""
    return [share(v, rng, n) for v in values]


def joint_distribution(bits: Sequence[np.ndarray]) -> np.ndarray:
    """Empirical joint distribution of k boolean arrays.

    Returns:
        Length-``2**k`` array of probabilities, indexed by the integer
        formed with ``bits[0]`` as MSB.
    """
    k = len(bits)
    idx = np.zeros(bits[0].shape[0], dtype=np.int64)
    for b in bits:
        idx = (idx << 1) | b.astype(np.int64)
    counts = np.bincount(idx, minlength=1 << k).astype(float)
    return counts / counts.sum()


def is_uniform_sharing(
    s0: np.ndarray, s1: np.ndarray, tol: float = 0.02
) -> bool:
    """Check that the mask share ``s0`` is (empirically) uniform."""
    p = s0.mean()
    return abs(p - 0.5) < tol


def shares_independent_of(
    share_bits: Sequence[np.ndarray],
    secret: np.ndarray,
    tol: float = 0.05,
) -> bool:
    """Empirically test P(shares | secret=0) ≈ P(shares | secret=1).

    This is the first-order security notion used informally throughout
    the paper: no share (or probed tuple of wires) may have a
    distribution that depends on an unshared secret.
    """
    mask0 = ~secret.astype(bool)
    mask1 = secret.astype(bool)
    if mask0.sum() == 0 or mask1.sum() == 0:
        raise ValueError("need both secret values represented")
    d0 = joint_distribution([b[mask0] for b in share_bits])
    d1 = joint_distribution([b[mask1] for b in share_bits])
    return bool(np.max(np.abs(d0 - d1)) < tol)
