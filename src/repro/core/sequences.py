"""The Sec. II-B input-sequence experiments (Table I).

The paper drives the four secAND2 input shares from registers, updating
one register per clock cycle, and exhausts all 4! = 24 arrival orders;
TVLA over half a million traces shows that exactly the sequences where
``x0`` or ``x1`` arrives *last* leak, and sequences ending in ``y0`` or
``y1`` do not.

We reproduce the experiment on the glitch simulator: a bank of parallel
secAND2 instances (the paper replicates instances to boost SNR) receives
one input share per time step from the reset-to-zero state, the toggle
power is recorded, and a fixed-vs-random t-test is run per sequence.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from ..sim.bitpack import resolve_pack_traces
from ..sim.power import PowerRecorder, default_weights
from ..sim.vectorsim import VectorSimulator
from ..leakage.acquisition import CampaignConfig, run_campaign
from ..leakage.tvla import THRESHOLD, TvlaResult
from .gadgets import build_secand2
from .shares import share

__all__ = [
    "INPUT_NAMES",
    "ALL_SEQUENCES",
    "sequence_is_safe",
    "SequenceSource",
    "SequenceVerdict",
    "assess_sequence",
    "run_table1",
]

INPUT_NAMES = ("x0", "x1", "y0", "y1")

#: All 24 arrival orders of the four input shares.
ALL_SEQUENCES: Tuple[Tuple[str, ...], ...] = tuple(
    itertools.permutations(INPUT_NAMES)
)


def sequence_is_safe(sequence: Sequence[str]) -> bool:
    """Table I's rule: safe iff ``y0`` or ``y1`` arrives last.

    Late arrival of an ``x`` share makes the output XOR toggle with
    Hamming distance ``y0 ^ y1 = y`` — an unmasked sensitive value.
    """
    return sequence[-1] in ("y0", "y1")


class SequenceSource:
    """Trace source for one arrival order (plugs into the TVLA harness).

    Each trace: all registers reset to 0, then the four shares are
    applied one per ``step_ps`` in the given order, exactly like the
    paper's register-per-cycle update.  The fixed class uses the fixed
    unshared inputs ``(x, y)`` with fresh uniform sharing per trace; the
    random class draws ``x, y`` uniformly.
    """

    def __init__(
        self,
        sequence: Sequence[str],
        n_instances: int = 8,
        fixed_xy: Tuple[int, int] = (1, 1),
        step_ps: int = 1000,
        bin_ps: int = 250,
        settle_margin_ps: int = 1000,
        pack_traces: "bool | str" = "auto",
    ):
        if sorted(sequence) != sorted(INPUT_NAMES):
            raise ValueError(f"sequence must permute {INPUT_NAMES}")
        self.sequence = tuple(sequence)
        self.fixed_xy = fixed_xy
        self.step_ps = step_ps
        self.bin_ps = bin_ps
        #: Execution mode for per-batch simulators
        #: (:mod:`repro.sim.bitpack`); campaign runners overwrite this
        #: with :attr:`CampaignConfig.pack_traces`.
        self.pack_traces = pack_traces
        self.circuit = build_secand2(n_instances=n_instances)
        total = len(sequence) * step_ps + settle_margin_ps
        self.total_time_ps = total
        self.n_samples = -(-total // bin_ps)
        self._weights_cache: Optional[np.ndarray] = None

    def _wire_weights(self) -> np.ndarray:
        """``1 + fanout`` toggle energies, identical to
        ``VectorSimulator.weights`` for this circuit (cached)."""
        n_wires = self.circuit.n_wires
        if self._weights_cache is None or len(self._weights_cache) != n_wires:
            self._weights_cache = default_weights(
                self.circuit.fanout_map(), n_wires
            )
        return self._weights_cache

    def warmup(self):
        """Compile the (single) event schedule this source replays.

        One throwaway trace covers it: every :meth:`acquire` applies
        the same four input events at the same times, so the compiled
        schedule cache holds exactly one pattern afterwards.  Returns
        the circuit for the campaign runner to pin.
        """
        self.acquire(np.ones(1, dtype=bool), np.random.default_rng(0))
        return (self.circuit,)

    def acquire(self, fixed_mask: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = fixed_mask.shape[0]
        x = rng.integers(0, 2, size=n).astype(bool)
        y = rng.integers(0, 2, size=n).astype(bool)
        x[fixed_mask] = bool(self.fixed_xy[0])
        y[fixed_mask] = bool(self.fixed_xy[1])
        x0, x1 = share(x, rng)
        y0, y1 = share(y, rng)
        values = {"x0": x0, "x1": x1, "y0": y0, "y1": y1}

        # Recorder first, so pack_traces="auto" resolves against its
        # packed-accumulation capability (no coupling here, but the
        # ordering keeps every source on the same contract).
        rec = PowerRecorder(
            n, self.total_time_ps, bin_ps=self.bin_ps,
            weights=self._wire_weights(),
        )
        sim = VectorSimulator(
            self.circuit, n,
            pack_traces=resolve_pack_traces(self.pack_traces, n, rec),
        )
        # settle the reset state (inputs 0) without recording power
        sim.evaluate_combinational(
            {self.circuit.wire(name): False for name in INPUT_NAMES}
        )
        events = [
            (k * self.step_ps, self.circuit.wire(name), values[name])
            for k, name in enumerate(self.sequence)
        ]
        sim.settle(events, recorder=rec)
        return rec.power


@dataclass(frozen=True)
class SequenceVerdict:
    """Outcome of the TVLA test for one arrival order."""

    sequence: Tuple[str, ...]
    max_t1: float
    max_t2: float
    leaks: bool
    expected_safe: bool

    @property
    def matches_paper(self) -> bool:
        return self.leaks != self.expected_safe

    def row(self) -> str:
        order = " -> ".join(self.sequence)
        verdict = "LEAKS " if self.leaks else "clean "
        expect = "safe" if self.expected_safe else "leaky"
        return (
            f"{order:<26} max|t1|={self.max_t1:7.2f}  {verdict}"
            f"(paper: {expect})"
        )


def assess_sequence(
    sequence: Sequence[str],
    n_traces: int = 30000,
    n_instances: int = 8,
    noise_sigma: float = 1.0,
    seed: int = 0,
    threshold: float = THRESHOLD,
    n_workers: int = 1,
) -> SequenceVerdict:
    """Run the fixed-vs-random test for one arrival order.

    ``n_workers`` shards the campaign's batches over processes; the
    verdict is identical for any worker count.
    """
    source = SequenceSource(sequence, n_instances=n_instances)
    cfg = CampaignConfig(
        n_traces=n_traces,
        batch_size=min(4000, n_traces),
        noise_sigma=noise_sigma,
        seed=seed,
        label="seq " + ">".join(sequence),
    )
    result = run_campaign(source, cfg, n_workers=n_workers)
    return SequenceVerdict(
        sequence=tuple(sequence),
        max_t1=result.max_abs(1),
        max_t2=result.max_abs(2),
        leaks=result.leaks(1, threshold),
        expected_safe=sequence_is_safe(sequence),
    )


def run_table1(
    sequences: Optional[Sequence[Sequence[str]]] = None,
    n_traces: int = 30000,
    n_instances: int = 8,
    noise_sigma: float = 1.0,
    seed: int = 0,
    n_workers: int = 1,
) -> List[SequenceVerdict]:
    """Reproduce Table I over the given (default: all 24) sequences."""
    if sequences is None:
        sequences = ALL_SEQUENCES
    return [
        assess_sequence(
            seq,
            n_traces=n_traces,
            n_instances=n_instances,
            noise_sigma=noise_sigma,
            seed=seed + 17 * i,
            n_workers=n_workers,
        )
        for i, seq in enumerate(sequences)
    ]
