"""The paper's masked gadgets as netlist builders.

Three flavours of the low-cost masked AND (Sec. II):

* :func:`secand2` — the raw combinational gadget of Fig. 1 (Eq. 2),
  *insecure on its own* in glitchy hardware (the paper verified that
  programming the equations directly into LUTs leaks);
* :func:`secand2_ff` — Fig. 2: an internal flip-flop delays ``y1`` so it
  arrives a cycle later; two cycles per multiplication, needs reset
  between evaluations (Sec. II-C);
* :func:`secand2_pd` — Fig. 3: LUT-chain path delays stagger the inputs
  ``y0 -> x0,x1 -> y1``; one cycle per multiplication, no reset needed
  (Sec. II-D).

plus the trivially share-wise :func:`masked_xor` and the 1-bit
:func:`refresh` gadget (Sec. III-C, Fig. 7).

All builders append gates into a caller-supplied :class:`Circuit` and
return the output wires, so gadgets compose into larger circuits; the
``build_*`` helpers wrap a single gadget into a standalone circuit for
gadget-level experiments.

Algebraic reference models (``*_func``) are provided for functional
verification: the netlists must match them bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..netlist.cells import DELAY_UNIT_DEFAULT_LUTS
from ..netlist.circuit import Circuit

__all__ = [
    "SharePair",
    "secand2_core_on_wires",
    "secand2",
    "secand2_ff",
    "secand2_pd",
    "masked_xor",
    "masked_not",
    "refresh",
    "build_secand2",
    "build_secand2_ff",
    "build_secand2_pd",
    "secand2_func",
    "trichina_func",
    "PD_DELAY_UNITS",
]

#: DelayUnits applied to each secAND2-PD input (Fig. 3): y0 undelayed,
#: x0/x1 one unit, y1 two units.
PD_DELAY_UNITS = {"y0": 0, "x0": 1, "x1": 1, "y1": 2}


@dataclass(frozen=True)
class SharePair:
    """Wire ids of the two shares of one masked variable."""

    s0: int
    s1: int

    def __iter__(self):
        return iter((self.s0, self.s1))


def secand2_core_on_wires(
    c: Circuit,
    x0: int,
    x1: int,
    y0: int,
    y1: int,
    tag: str,
    style: str = "lut",
) -> SharePair:
    """The secAND2 combinational core on already-prepared share wires.

    Two styles:

    * ``"lut"`` (default): each output share is one SECAND2L compound
      cell — the FPGA mapping the paper uses ("programming the
      equations for the outputs of secAND2 directly into LUTs").  The
      output transitions atomically, with the Hamming distance of the
      full Eq. 2 expression: that is the switching behaviour all
      leakage arguments of Sec. II-B rest on.
    * ``"gates"``: the discrete Fig. 1 netlist
      (1 INV + 2 AND2 + 2 OR2 + 2 XOR2) for ASIC-style analysis.

    The core registers a ``secand2`` annotation so the static
    arrival-order checker can audit it.
    """
    c.annotations.setdefault("secand2", []).append(
        {"tag": tag, "x0": x0, "x1": x1, "y0": y0, "y1": y1}
    )
    if style == "lut":
        z0 = c.add_gate("SECAND2L", [x0, y0, y1], name=f"{tag}_z0")
        z1 = c.add_gate("SECAND2L", [x1, y0, y1], name=f"{tag}_z1")
        return SharePair(z0, z1)
    if style == "gates":
        ny1 = c.inv(y1, name=f"{tag}_inv_y1")
        a0 = c.and2(x0, y0, name=f"{tag}_and0")
        o0 = c.or2(x0, ny1, name=f"{tag}_or0")
        z0 = c.xor2(a0, o0, name=f"{tag}_xor0")
        a1 = c.and2(x1, y0, name=f"{tag}_and1")
        o1 = c.or2(x1, ny1, name=f"{tag}_or1")
        z1 = c.xor2(a1, o1, name=f"{tag}_xor1")
        return SharePair(z0, z1)
    raise ValueError("style must be 'lut' or 'gates'")


def _secand2_core(
    c: Circuit, x0: int, x1: int, y0: int, y1: int, tag: str, style: str = "lut"
) -> SharePair:
    return secand2_core_on_wires(c, x0, x1, y0, y1, tag, style)


def secand2(
    c: Circuit,
    x: SharePair,
    y: SharePair,
    tag: str = "secand2",
    style: str = "lut",
) -> SharePair:
    """Raw combinational secAND2 (Fig. 1 / Eq. 2).

    Computes ``z = x AND y`` over shares with **no fresh randomness**:

        z0 = (x0.y0) XOR (x0 + !y1)
        z1 = (x1.y0) XOR (x1 + !y1)

    Security depends entirely on the arrival order of the inputs (only
    sequences where ``y0`` or ``y1`` arrives last are safe — Table I);
    use :func:`secand2_ff` or :func:`secand2_pd` unless the caller
    controls arrival times externally (e.g. via input registers,
    Fig. 5).
    """
    return _secand2_core(c, x.s0, x.s1, y.s0, y.s1, tag, style)


def secand2_ff(
    c: Circuit,
    x: SharePair,
    y: SharePair,
    enable: Optional[int] = None,
    tag: str = "secand2ff",
    reset_group: str = "gadget",
    style: str = "lut",
) -> SharePair:
    """secAND2 with internal flip-flop on ``y1`` (Fig. 2).

    The FF guarantees ``y1`` arrives one cycle after the other operands,
    which is a safe sequence (Table I).  With ``enable`` (Fig. 4's
    FSM-controlled sampling) the FF samples only when the enable wire is
    high, so cascaded gadgets can be activated layer by layer.

    Latency: 2 cycles per multiplication.  The gadget must be **reset
    between successive computations** (Sec. II-C) — the harness does
    this with a synchronous FF reset cycle.
    """
    if enable is None:
        y1_del = c.dff(y.s1, name=f"{tag}_ff_y1", reset_group=reset_group)
    else:
        y1_del = c.dffe(y.s1, enable, name=f"{tag}_ff_y1", reset_group=reset_group)
    return _secand2_core(c, x.s0, x.s1, y.s0, y1_del, tag, style)


def secand2_pd(
    c: Circuit,
    x: SharePair,
    y: SharePair,
    n_luts: int = DELAY_UNIT_DEFAULT_LUTS,
    tag: str = "secand2pd",
    delay_units: Optional[dict] = None,
    style: str = "lut",
) -> SharePair:
    """secAND2 with path-delayed inputs (Fig. 3).

    Inputs are staggered by chained-LUT DelayUnits:
    ``y0`` first (0 units), then ``x0``/``x1`` (1 unit), finally ``y1``
    (2 units).  ``y0`` arriving first protects the *previous*
    computation; ``y1`` arriving last protects the *current* one
    (Sec. II-D), so no reset is needed and a multiplication completes in
    a single cycle.

    Args:
        n_luts: LUTs per DelayUnit (the paper found 10 optimal on
            Spartan-6; Sec. VII-B sweeps 1..10).
        delay_units: Override of DelayUnits per input
            (default :data:`PD_DELAY_UNITS`); composition uses this for
            chain schedules (Table II).
    """
    du = dict(PD_DELAY_UNITS if delay_units is None else delay_units)
    x0d = c.delay_line(x.s0, du["x0"], n_luts, name=f"{tag}_dl_x0")
    x1d = c.delay_line(x.s1, du["x1"], n_luts, name=f"{tag}_dl_x1")
    y0d = c.delay_line(y.s0, du["y0"], n_luts, name=f"{tag}_dl_y0")
    y1d = c.delay_line(y.s1, du["y1"], n_luts, name=f"{tag}_dl_y1")
    return _secand2_core(c, x0d, x1d, y0d, y1d, tag, style)


def masked_xor(
    c: Circuit, x: SharePair, y: SharePair, tag: str = "mxor"
) -> SharePair:
    """Share-wise masked XOR: z_i = x_i ^ y_i (trivially secure)."""
    z0 = c.xor2(x.s0, y.s0, name=f"{tag}_x0")
    z1 = c.xor2(x.s1, y.s1, name=f"{tag}_x1")
    return SharePair(z0, z1)


def masked_not(c: Circuit, x: SharePair, tag: str = "mnot") -> SharePair:
    """Masked NOT: invert one share only."""
    return SharePair(c.inv(x.s0, name=f"{tag}_inv"), x.s1)


def refresh(c: Circuit, x: SharePair, mask: int, tag: str = "refresh") -> SharePair:
    """Re-mask a share pair with one fresh random bit (Sec. III-C).

    Because secAND2 consumes no randomness, its output is *not*
    independent of its inputs; before XOR-ing dependent terms the
    shares must be refreshed: z_i' = z_i ^ m.
    """
    z0 = c.xor2(x.s0, mask, name=f"{tag}_m0")
    z1 = c.xor2(x.s1, mask, name=f"{tag}_m1")
    return SharePair(z0, z1)


# ----------------------------------------------------------------------
# standalone circuits for gadget-level experiments
# ----------------------------------------------------------------------
def _with_inputs(name: str) -> Tuple[Circuit, SharePair, SharePair]:
    c = Circuit(name)
    x0, x1, y0, y1 = c.add_inputs("x0", "x1", "y0", "y1")
    return c, SharePair(x0, x1), SharePair(y0, y1)


def build_secand2(n_instances: int = 1, style: str = "lut") -> Circuit:
    """Standalone combinational secAND2 bank (shared inputs).

    ``n_instances`` parallel copies receive identical inputs, mirroring
    the paper's SNR-boosting replication in the Sec. II-B experiments.
    """
    c, x, y = _with_inputs("secAND2")
    for i in range(n_instances):
        z = secand2(c, x, y, tag=f"i{i}", style=style)
        c.mark_output(f"z0_{i}", z.s0)
        c.mark_output(f"z1_{i}", z.s1)
    c.check()
    return c


def build_secand2_ff(enable: bool = False) -> Circuit:
    """Standalone secAND2-FF (optionally with an enable input)."""
    c, x, y = _with_inputs("secAND2-FF")
    en = c.add_input("en") if enable else None
    z = secand2_ff(c, x, y, enable=en)
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    c.check()
    return c


def build_secand2_pd(n_luts: int = DELAY_UNIT_DEFAULT_LUTS) -> Circuit:
    """Standalone secAND2-PD with the Fig. 3 delay schedule."""
    c, x, y = _with_inputs("secAND2-PD")
    z = secand2_pd(c, x, y, n_luts=n_luts)
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    c.check()
    return c


# ----------------------------------------------------------------------
# algebraic reference models
# ----------------------------------------------------------------------
def secand2_func(
    x0: np.ndarray, x1: np.ndarray, y0: np.ndarray, y1: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Eq. 2 evaluated directly (software-order, glitch-free)."""
    z0 = (x0 & y0) ^ (x0 | ~y1)
    z1 = (x1 & y0) ^ (x1 | ~y1)
    return z0, z1


def trichina_func(
    x0: np.ndarray,
    x1: np.ndarray,
    y0: np.ndarray,
    y1: np.ndarray,
    r: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Trichina's masked AND (Eq. 1), left-to-right evaluation."""
    z0 = ((((r ^ (x0 & y0)) ^ (x0 & y1)) ^ (x1 & y1)) ^ (x1 & y0))
    return z0, r
