"""Composition guidelines of Sec. III as reusable circuit builders.

* products of n independently-shared variables:

  - :func:`product_tree_ff` — Fig. 4: a balanced tree of secAND2-FF
    gadgets whose internal FFs are enabled layer by layer
    (``log2(n)`` layers, latency ``log2(n) + 1`` cycles);
  - :func:`product_chain_pd` — Fig. 6: a chain of secAND2-PD gadgets
    with the staggered input schedule of Table II
    (single-cycle evaluation);

* :func:`pd_delay_schedule` — the generalised Table II schedule for a
  product of n variables;
* :func:`refresh` re-export and :func:`secure_f_xy` — Fig. 7's
  ``f = x ^ y ^ x.y`` with the mandatory refresh of the dependent
  product term before the XOR plane (Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.cells import DELAY_UNIT_DEFAULT_LUTS
from ..netlist.circuit import Circuit
from .gadgets import SharePair, masked_xor, refresh, secand2, secand2_ff

__all__ = [
    "ProductTree",
    "product_tree_ff",
    "pd_delay_schedule",
    "product_chain_pd",
    "secure_f_xy",
    "insecure_f_xy",
    "tree_latency_cycles",
]


@dataclass(frozen=True)
class ProductTree:
    """Result of :func:`product_tree_ff`.

    Attributes:
        output: Shares of the product.
        layer_enables: One enable wire per tree layer; the FSM must
            raise them one per cycle, first layer first (Fig. 4: FF1/FF2
            in cycle 2, FF3 in cycle 3).
        n_gadgets: secAND2-FF instances used (= n - 1).
        latency_cycles: log2(n) + 1 as per Sec. III-A.
    """

    output: SharePair
    layer_enables: Tuple[int, ...]
    n_gadgets: int
    latency_cycles: int


def tree_latency_cycles(n: int) -> int:
    """Latency of an n-input secAND2-FF product tree: log2(n) + 1."""
    if n < 2:
        raise ValueError("a product needs at least two variables")
    layers = (n - 1).bit_length()
    return layers + 1


def product_tree_ff(
    c: Circuit,
    operands: Sequence[SharePair],
    tag: str = "ptree",
) -> ProductTree:
    """Product of n independently shared variables with secAND2-FF (Fig. 4).

    Builds a balanced tree of ``n - 1`` gadgets in ``ceil(log2 n)``
    layers.  Each layer gets its own enable wire (added as a primary
    input ``<tag>_en<layer>``) controlling all internal FFs of that
    layer, so the caller's FSM can activate layers on consecutive
    cycles — the construction of Sec. III-A that needs **no external
    registers**.
    """
    n = len(operands)
    if n < 2:
        raise ValueError("a product needs at least two variables")
    enables: List[int] = []
    level: List[SharePair] = list(operands)
    layer = 0
    n_gadgets = 0
    while len(level) > 1:
        en = c.add_input(f"{tag}_en{layer}")
        enables.append(en)
        nxt: List[SharePair] = []
        for i in range(0, len(level) - 1, 2):
            z = secand2_ff(
                c,
                level[i],
                level[i + 1],
                enable=en,
                tag=f"{tag}_l{layer}g{i // 2}",
            )
            n_gadgets += 1
            nxt.append(z)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        layer += 1
    return ProductTree(
        output=level[0],
        layer_enables=tuple(enables),
        n_gadgets=n_gadgets,
        latency_cycles=layer + 1,
    )


def pd_delay_schedule(n: int) -> Dict[Tuple[int, int], int]:
    """Table II generalised: DelayUnits for each share of an n-product.

    Variables are indexed ``0 .. n-1`` for ``z = v0 . v1 . ... . v(n-1)``
    (``v0 = a`` innermost).  Returns ``{(var, share): units}``:

    * share 0 of the *outermost* variable arrives first (0 units) to
      protect the previous computation,
    * both shares of ``v0`` arrive together in the middle,
    * share 1 of the outermost variable arrives last to protect the
      current computation.

    For n=3 this is exactly Table II's
    ``c0 -> b0 -> a0,a1 -> b1 -> c1`` (0,1,2,3,4 units) and for n=4
    ``d0 -> c0 -> b0 -> a0,a1 -> b1 -> c1 -> d1`` (0..6 units).
    """
    if n < 2:
        raise ValueError("a product needs at least two variables")
    sched: Dict[Tuple[int, int], int] = {}
    sched[(0, 0)] = n - 1
    sched[(0, 1)] = n - 1
    for i in range(1, n):
        sched[(i, 0)] = n - 1 - i
        sched[(i, 1)] = n - 1 + i
    return sched


def product_chain_pd(
    c: Circuit,
    operands: Sequence[SharePair],
    n_luts: int = DELAY_UNIT_DEFAULT_LUTS,
    tag: str = "pchain",
) -> SharePair:
    """Product of n variables with secAND2-PD in a chain (Fig. 6).

    Delays are applied to the *primary inputs only* (Sec. III-B: it is
    easy to enforce delays on register outputs, hard on gadget
    outputs); intermediate products feed the next gadget undelayed as
    its ``x`` operand, while each new variable enters as the ``y``
    operand whose shares bracket the computation.

    The whole product evaluates in a single clock cycle.  The paper
    validated products of up to three variables in one cycle on FPGA;
    the construction itself generalises (Sec. III-B).
    """
    n = len(operands)
    sched = pd_delay_schedule(n)
    delayed: List[SharePair] = []
    for i, op in enumerate(operands):
        d0 = c.delay_line(op.s0, sched[(i, 0)], n_luts, name=f"{tag}_v{i}s0")
        d1 = c.delay_line(op.s1, sched[(i, 1)], n_luts, name=f"{tag}_v{i}s1")
        delayed.append(SharePair(d0, d1))
    acc = delayed[0]
    for i in range(1, n):
        # x = running product (undelayed gadget output), y = v_i whose
        # share 0 arrived before and share 1 arrives after acc's inputs.
        acc = secand2(c, acc, delayed[i], tag=f"{tag}_g{i - 1}")
    return acc


def secure_f_xy(mask_input: str = "m") -> Circuit:
    """Fig. 7: ``f = x ^ y ^ x.y`` computed *securely*.

    The product ``z = x.y`` from secAND2 is not independent of ``x`` and
    ``y``; its shares are refreshed with one fresh bit ``m`` before the
    XOR plane so the masked inputs of the XOR have a data-independent
    distribution (Sec. III-C).
    """
    c = Circuit("f=x^y^xy-secure")
    x0, x1, y0, y1 = c.add_inputs("x0", "x1", "y0", "y1")
    m = c.add_input(mask_input)
    x = SharePair(x0, x1)
    y = SharePair(y0, y1)
    z = secand2(c, x, y, tag="and")
    z_ref = refresh(c, z, m, tag="ref")
    t = masked_xor(c, x, y, tag="xy")
    f = masked_xor(c, t, z_ref, tag="out")
    c.mark_output("f0", f.s0)
    c.mark_output("f1", f.s1)
    c.check()
    return c


def insecure_f_xy() -> Circuit:
    """Fig. 7's function *without* the refresh (for negative tests).

    XOR-ing the dependent product term directly onto x ^ y produces a
    data-dependent masked distribution — the failure mode Sec. III-C
    warns about.  Used by tests and the composition example to show the
    refresh is load-bearing.
    """
    c = Circuit("f=x^y^xy-insecure")
    x0, x1, y0, y1 = c.add_inputs("x0", "x1", "y0", "y1")
    x = SharePair(x0, x1)
    y = SharePair(y0, y1)
    z = secand2(c, x, y, tag="and")
    t = masked_xor(c, x, y, tag="xy")
    f = masked_xor(c, t, z, tag="out")
    c.mark_output("f0", f.s0)
    c.mark_output("f1", f.s1)
    c.check()
    return c
