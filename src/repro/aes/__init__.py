"""AES-128 case study: the paper's gadgets on the community benchmark.

Every masking scheme the paper compares against (Trichina, DOM, Gross
et al.) was demonstrated on AES; this package applies the secAND2
recipe to it — masked GF(2^8) arithmetic, the x^254 inversion chain,
and a full masked AES-128 with masked key schedule.
"""

from .reference import (
    INV_SBOX,
    SBOX,
    aes128_encrypt,
    expand_key128,
    gf_inverse,
    gf_mult,
    xtime,
)
from .masked import (
    MULT_MONOMIAL_MASKS,
    MaskedAES128,
    MaskedByte,
    masked_gf_inverse,
    masked_gf_mult,
    masked_sbox,
)

__all__ = [
    "INV_SBOX",
    "SBOX",
    "aes128_encrypt",
    "expand_key128",
    "gf_inverse",
    "gf_mult",
    "xtime",
    "MULT_MONOMIAL_MASKS",
    "MaskedAES128",
    "MaskedByte",
    "masked_gf_inverse",
    "masked_gf_mult",
    "masked_sbox",
]
