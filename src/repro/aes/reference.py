"""Reference AES-128 (FIPS-197).

AES is the benchmark every hardware-masking scheme the paper discusses
was originally built for (Trichina's gadget, DOM, Gross et al.'s
two-random-bit AES).  The reference model here is the golden oracle for
the masked AES S-box and cipher built from the paper's gadgets in
:mod:`repro.aes.masked`.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = [
    "SBOX",
    "_RCON",
    "INV_SBOX",
    "xtime",
    "gf_mult",
    "gf_inverse",
    "aes128_encrypt",
    "expand_key128",
]


def _build_sbox() -> List[int]:
    # multiplicative inverse + affine transform, built from first
    # principles so the table itself is testable
    sbox = [0] * 256
    for x in range(256):
        inv = gf_inverse(x)
        y = inv
        res = 0
        for _ in range(5):
            res ^= y
            y = ((y << 1) | (y >> 7)) & 0xFF
        sbox[x] = res ^ 0x63
    return sbox


def xtime(a: int) -> int:
    """Multiply by x in GF(2^8) mod x^8+x^4+x^3+x+1."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def gf_mult(a: int, b: int) -> int:
    """GF(2^8) multiplication."""
    res = 0
    while b:
        if b & 1:
            res ^= a
        a = xtime(a)
        b >>= 1
    return res


def gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); 0 maps to 0 (AES convention)."""
    if a == 0:
        return 0
    # a^254 via square-and-multiply
    res = 1
    power = a
    exp = 254
    while exp:
        if exp & 1:
            res = gf_mult(res, power)
        power = gf_mult(power, power)
        exp >>= 1
    return res


SBOX: Sequence[int] = tuple(_build_sbox())
INV_SBOX: Sequence[int] = tuple(
    SBOX.index(v) for v in range(256)
)

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def expand_key128(key: bytes) -> List[List[int]]:
    """The eleven 16-byte round keys of a 128-bit key."""
    if len(key) != 16:
        raise ValueError("AES-128 key must be 16 bytes")
    words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [
        [b for w in words[4 * r : 4 * r + 4] for b in w] for r in range(11)
    ]


def _sub_bytes(state: List[int]) -> List[int]:
    return [SBOX[b] for b in state]


def _shift_rows(state: List[int]) -> List[int]:
    # column-major state: byte (row, col) at index 4*col + row
    out = [0] * 16
    for row in range(4):
        for col in range(4):
            out[4 * col + row] = state[4 * ((col + row) % 4) + row]
    return out


def _mix_columns(state: List[int]) -> List[int]:
    out = [0] * 16
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        out[4 * col + 0] = gf_mult(a[0], 2) ^ gf_mult(a[1], 3) ^ a[2] ^ a[3]
        out[4 * col + 1] = a[0] ^ gf_mult(a[1], 2) ^ gf_mult(a[2], 3) ^ a[3]
        out[4 * col + 2] = a[0] ^ a[1] ^ gf_mult(a[2], 2) ^ gf_mult(a[3], 3)
        out[4 * col + 3] = gf_mult(a[0], 3) ^ a[1] ^ a[2] ^ gf_mult(a[3], 2)
    return out


def aes128_encrypt(plaintext: bytes, key: bytes) -> bytes:
    """Encrypt one 16-byte block."""
    if len(plaintext) != 16:
        raise ValueError("block must be 16 bytes")
    keys = expand_key128(key)
    state = [p ^ k for p, k in zip(plaintext, keys[0])]
    for rnd in range(1, 10):
        state = _mix_columns(_shift_rows(_sub_bytes(state)))
        state = [s ^ k for s, k in zip(state, keys[rnd])]
    state = _shift_rows(_sub_bytes(state))
    return bytes(s ^ k for s, k in zip(state, keys[10]))
