"""First-order masked AES-128 from the paper's secAND2 gadget.

AES is where every scheme the paper positions itself against was
benchmarked (Trichina's AND was proposed for SubBytes; DOM and Gross et
al. masked full AES cores).  This module applies the paper's recipe to
it:

* every GF(2^8) multiplication is decomposed into its 64 bit-level AND
  monomials, each computed with the secAND2 algebra (Eq. 2, zero fresh
  randomness), and the product byte is refreshed with 8 fresh bits
  before reuse (the Sec. III-C rule for dependent terms);
* squarings, the affine transform, ShiftRows, MixColumns and
  AddRoundKey are GF(2)-linear and run share-wise;
* inversion uses the addition chain x^254 = ((x^3)^4 · x^3)^16 · (x^3)^4
  · x^2 — four masked multiplications per S-box;
* the key schedule's SubWord is masked with the same S-box.

This is a *straightforward* application — 256 secAND2 evaluations per
S-box versus the ~30 of a tower-field design — meant to demonstrate
generality and provide a correctness-verified masked AES oracle, not to
compete with DOM's area numbers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.gadgets import secand2_func
from ..leakage.prng import RandomnessSource
from .reference import _RCON, aes128_encrypt, gf_mult

__all__ = ["MaskedByte", "MaskedAES128", "MULT_MONOMIAL_MASKS"]


def _mult_monomial_masks() -> np.ndarray:
    """masks[i, j] = 8-bit mask of output bits receiving a_i * b_j.

    Bit index 0 is the MSB (x^7 coefficient), matching the (8, n)
    bit-matrix layout used throughout.
    """
    masks = np.zeros((8, 8), dtype=np.uint8)
    for i in range(8):
        for j in range(8):
            prod = gf_mult(1 << (7 - i), 1 << (7 - j))
            # prod's bit (7-k) set -> output bit k receives the monomial
            m = 0
            for k in range(8):
                if prod & (1 << (7 - k)):
                    m |= 1 << k
            masks[i, j] = m
    return masks


MULT_MONOMIAL_MASKS = _mult_monomial_masks()


def _square_matrix() -> np.ndarray:
    """8x8 GF(2) matrix of the (linear) squaring map, MSB-first."""
    mat = np.zeros((8, 8), dtype=bool)
    for j in range(8):
        sq = gf_mult(1 << (7 - j), 1 << (7 - j))
        for i in range(8):
            mat[i, j] = bool(sq & (1 << (7 - i)))
    return mat


_SQUARE = _square_matrix()


def _affine_matrix() -> np.ndarray:
    """The AES affine transform's matrix (applied after inversion)."""
    mat = np.zeros((8, 8), dtype=bool)
    for j in range(8):
        basis = 1 << (7 - j)
        y = basis
        res = 0
        for _ in range(5):
            res ^= y
            y = ((y << 1) | (y >> 7)) & 0xFF
        for i in range(8):
            mat[i, j] = bool(res & (1 << (7 - i)))
    return mat


_AFFINE = _affine_matrix()
_AFFINE_CONST = 0x63


class MaskedByte:
    """A first-order shared GF(2^8) element: two (8, n) bit matrices."""

    __slots__ = ("s0", "s1")

    def __init__(self, s0: np.ndarray, s1: np.ndarray):
        self.s0 = s0
        self.s1 = s1

    @classmethod
    def share(
        cls, values: np.ndarray, prng: RandomnessSource
    ) -> "MaskedByte":
        """Share (n,) byte values with a fresh mask byte."""
        n = values.shape[0]
        bits = np.zeros((8, n), dtype=bool)
        for i in range(8):
            bits[i] = (values >> (7 - i)) & 1
        mask = prng.bits(8, n)
        return cls(bits ^ mask, mask)

    def unshare(self) -> np.ndarray:
        bits = self.s0 ^ self.s1
        out = np.zeros(bits.shape[1], dtype=np.uint8)
        for i in range(8):
            out = (out << np.uint8(1)) | bits[i].astype(np.uint8)
        return out

    def __xor__(self, other: "MaskedByte") -> "MaskedByte":
        return MaskedByte(self.s0 ^ other.s0, self.s1 ^ other.s1)

    def linear(self, matrix: np.ndarray) -> "MaskedByte":
        """Apply a GF(2)-linear 8x8 map share-wise."""
        def apply(s):
            out = np.zeros_like(s)
            for i in range(8):
                acc = None
                for j in range(8):
                    if matrix[i, j]:
                        acc = s[j] if acc is None else acc ^ s[j]
                out[i] = acc if acc is not None else False
            return out

        return MaskedByte(apply(self.s0), apply(self.s1))

    def square(self) -> "MaskedByte":
        return self.linear(_SQUARE)

    def xor_const(self, const: int) -> "MaskedByte":
        s0 = self.s0.copy()
        for i in range(8):
            if const & (1 << (7 - i)):
                s0[i] = ~s0[i]
        return MaskedByte(s0, self.s1)


def masked_gf_mult(
    a: MaskedByte, b: MaskedByte, prng: RandomnessSource
) -> MaskedByte:
    """Masked GF(2^8) multiplication: 64 secAND2 bit products + an
    8-bit refresh of the result (Sec. III-C: the product byte is not
    independent of its operands)."""
    n = a.s0.shape[1]
    out0 = np.zeros((8, n), dtype=bool)
    out1 = np.zeros((8, n), dtype=bool)
    for i in range(8):
        for j in range(8):
            mask = int(MULT_MONOMIAL_MASKS[i, j])
            if not mask:
                continue
            p0, p1 = secand2_func(a.s0[i], a.s1[i], b.s0[j], b.s1[j])
            for k in range(8):
                if mask & (1 << k):
                    out0[k] ^= p0
                    out1[k] ^= p1
    r = prng.bits(8, n)
    return MaskedByte(out0 ^ r, out1 ^ r)


def masked_gf_inverse(x: MaskedByte, prng: RandomnessSource) -> MaskedByte:
    """x^254 by addition chain: 4 masked multiplications."""
    x2 = x.square()
    x3 = masked_gf_mult(x2, x, prng)
    x12 = x3.square().square()
    x15 = masked_gf_mult(x12, x3, prng)
    x240 = x15.square().square().square().square()
    x252 = masked_gf_mult(x240, x12, prng)
    return masked_gf_mult(x252, x2, prng)


def masked_sbox(x: MaskedByte, prng: RandomnessSource) -> MaskedByte:
    """The masked AES S-box: inversion, affine map, constant."""
    inv = masked_gf_inverse(x, prng)
    return inv.linear(_AFFINE).xor_const(_AFFINE_CONST)


class MaskedAES128:
    """Share-level first-order masked AES-128 (datapath + key schedule).

    Randomness: 8 fresh bits per masked multiplication (4 per S-box) —
    40 bytes of fresh randomness per round of 16 S-boxes, plus the key
    schedule's four SubWord S-boxes.
    """

    RANDOM_BITS_PER_SBOX = 4 * 8

    def _expand_key(
        self, key_shares: List[MaskedByte], prng: RandomnessSource
    ) -> List[List[MaskedByte]]:
        words: List[List[MaskedByte]] = [
            key_shares[4 * i : 4 * i + 4] for i in range(4)
        ]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]
                temp = [masked_sbox(b, prng) for b in temp]
                temp[0] = temp[0].xor_const(_RCON[i // 4 - 1])
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        return [
            [b for w in words[4 * r : 4 * r + 4] for b in w]
            for r in range(11)
        ]

    @staticmethod
    def _shift_rows(state: List[MaskedByte]) -> List[MaskedByte]:
        out: List[Optional[MaskedByte]] = [None] * 16
        for row in range(4):
            for col in range(4):
                out[4 * col + row] = state[4 * ((col + row) % 4) + row]
        return out  # type: ignore[return-value]

    @staticmethod
    def _xtime(b: MaskedByte) -> MaskedByte:
        """Multiply by x: share-wise shift + conditional reduction."""
        def apply(s):
            out = np.zeros_like(s)
            msb = s[0]
            out[:7] = s[1:]
            out[7] = np.zeros_like(msb)
            # xor 0x1B where the MSB was set: bits 3,4,6,7
            for k in (3, 4, 6, 7):
                out[k] = out[k] ^ msb
            return out

        return MaskedByte(apply(b.s0), apply(b.s1))

    def _mix_columns(self, state: List[MaskedByte]) -> List[MaskedByte]:
        out: List[MaskedByte] = []
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            a2 = [self._xtime(b) for b in a]
            a3 = [x ^ y for x, y in zip(a2, a)]
            out.append(a2[0] ^ a3[1] ^ a[2] ^ a[3])
            out.append(a[0] ^ a2[1] ^ a3[2] ^ a[3])
            out.append(a[0] ^ a[1] ^ a2[2] ^ a3[3])
            out.append(a3[0] ^ a[1] ^ a[2] ^ a2[3])
        return out

    def encrypt(
        self,
        plaintexts: np.ndarray,
        keys: np.ndarray,
        prng: RandomnessSource,
    ) -> np.ndarray:
        """Mask, encrypt, unmask a batch.

        Args:
            plaintexts: (n, 16) uint8 blocks.
            keys: (n, 16) uint8 keys.

        Returns:
            (n, 16) uint8 ciphertexts.
        """
        state = [
            MaskedByte.share(plaintexts[:, i].astype(np.uint8), prng)
            for i in range(16)
        ]
        key_shares = [
            MaskedByte.share(keys[:, i].astype(np.uint8), prng)
            for i in range(16)
        ]
        round_keys = self._expand_key(key_shares, prng)
        state = [s ^ k for s, k in zip(state, round_keys[0])]
        for rnd in range(1, 10):
            state = [masked_sbox(b, prng) for b in state]
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = [s ^ k for s, k in zip(state, round_keys[rnd])]
        state = [masked_sbox(b, prng) for b in state]
        state = self._shift_rows(state)
        state = [s ^ k for s, k in zip(state, round_keys[10])]
        return np.stack([b.unshare() for b in state], axis=1)
