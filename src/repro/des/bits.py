"""Bit-vector helpers shared by the DES models.

Two representations are used throughout:

* **scalar**: Python ints with DES's MSB-first bit numbering (bit 1 of a
  64-bit block is the most significant) — used by the reference cipher;
* **vectorised**: numpy boolean arrays of shape ``(width, n_traces)``,
  one row per bit in MSB-first order — used by the masked models, where
  a permutation is just a row gather.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "int_to_bits",
    "bits_to_int",
    "permute_int",
    "int_to_bitarray",
    "bitarray_to_ints",
    "permute_rows",
]


def int_to_bits(value: int, width: int) -> list:
    """MSB-first list of 0/1 ints."""
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """MSB-first bits back to an int."""
    out = 0
    for b in bits:
        out = (out << 1) | (int(b) & 1)
    return out


def permute_int(value: int, table: Sequence[int], width: int) -> int:
    """Apply a 1-based DES permutation table to an integer.

    ``table[i]`` gives the (1-based, MSB-first) source bit of output
    bit ``i``; ``width`` is the *input* width.
    """
    out = 0
    for pos in table:
        out = (out << 1) | ((value >> (width - pos)) & 1)
    return out


def int_to_bitarray(values: "np.ndarray | int", width: int, n: int = None) -> np.ndarray:
    """Ints to an MSB-first (width, n) boolean matrix.

    Args:
        values: (n,) unsigned integer array, or a scalar with ``n``.
    """
    if not isinstance(values, np.ndarray):
        if n is None:
            raise ValueError("scalar values require n")
        values = np.full(n, values, dtype=np.uint64)
    values = values.astype(np.uint64, copy=False)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    return ((values[None, :] >> shifts[:, None]) & np.uint64(1)).astype(bool)


def bitarray_to_ints(bits: np.ndarray) -> np.ndarray:
    """MSB-first (width, n) boolean matrix back to (n,) uint64."""
    width = bits.shape[0]
    if width > 64:
        raise ValueError("at most 64 bits fit a uint64")
    out = np.zeros(bits.shape[1], dtype=np.uint64)
    for i in range(width):
        out = (out << np.uint64(1)) | bits[i].astype(np.uint64)
    return out


def permute_rows(bits: np.ndarray, table: Sequence[int]) -> np.ndarray:
    """Apply a 1-based permutation table as a row gather."""
    idx = np.asarray(table, dtype=np.int64) - 1
    return bits[idx]
