"""Cycle-accurate *share-level* masked DES model.

This is the architectural golden model of the paper's two protected DES
engines (Sec. IV): it computes exactly the share values the gate-level
netlists produce — every secAND2 evaluated through its Eq. 2 algebra,
every refresh with the same randomness layout — but without gate
timing.  It serves three purposes:

* functional verification: masked ciphertext must equal reference DES;
* cost accounting: cycle counts and randomness budget per Table III;
* a fast oracle for the netlist tests (share-for-share comparison).

Randomness layout per round (Sec. VI-A): 14 fresh bits — 10 refresh the
mini-S-box product terms and 4 refresh the MUX select products; the
reference design *recycles* the same 14 bits across all eight S-boxes
(the paper verified this does not affect first-order security), so the
engine consumes 14 bits/round (112 if recycling is disabled).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.gadgets import secand2_func
from ..leakage.prng import RandomnessSource
from .bits import permute_rows
from .keyschedule import masked_round_keys_bits
from .sbox_anf import decompose_sbox
from .tables import E, FP, IP, N_ROUNDS, P

__all__ = ["MaskedDES", "MaskedSboxModel", "SBOX_RANDOM_BITS"]

#: Fresh bits per S-box evaluation: 10 product refreshes + 4 select
#: product refreshes.
SBOX_RANDOM_BITS = 14

_ShareVec = Tuple[np.ndarray, np.ndarray]


def _mand(x: _ShareVec, y: _ShareVec) -> _ShareVec:
    """Masked AND through the secAND2 algebra (Eq. 2)."""
    z0, z1 = secand2_func(x[0], x[1], y[0], y[1])
    return z0, z1


def _mxor(x: _ShareVec, y: _ShareVec) -> _ShareVec:
    return x[0] ^ y[0], x[1] ^ y[1]


def _mnot(x: _ShareVec) -> _ShareVec:
    return ~x[0], x[1]


def _mrefresh(x: _ShareVec, m: np.ndarray) -> _ShareVec:
    return x[0] ^ m, x[1] ^ m


class MaskedSboxModel:
    """Share-level model of one protected DES S-box (Fig. 8a / 9a).

    The dataflow is identical for the FF and PD variants — they differ
    only in how arrival times are enforced — so a single model covers
    both.
    """

    def __init__(self, sbox: int):
        self.sbox = sbox
        self.decomp = decompose_sbox(sbox, all_products=True)

    def __call__(
        self,
        x_s0: np.ndarray,
        x_s1: np.ndarray,
        rand14: np.ndarray,
        refresh_mask: Optional[Sequence[bool]] = None,
        expose_intermediates: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate the masked S-box.

        Args:
            x_s0, x_s1: (6, n) share matrices of the six input bits
                (x0..x5, paper order: x0 MSB).
            rand14: (14, n) fresh random bits: [0..9] product refresh,
                [10..13] select-product refresh.
            refresh_mask: Optional 14 booleans selecting which refresh
                positions are actually applied — the paper's
                future-work optimisation of "selectively refreshing
                only some of the ten terms"; see
                :mod:`repro.des.selective_refresh`.
            expose_intermediates: Also return the mini-S-box XOR-plane
                outputs and refreshed select products (for uniformity
                audits).

        Returns:
            ``(out0, out1)`` — (4, n) share matrices — or, with
            ``expose_intermediates``, ``(out0, out1, rows_out, sel)``.
        """
        if refresh_mask is None:
            refresh_mask = [True] * 14
        n = x_s0.shape[1]
        xs = [(x_s0[i], x_s1[i]) for i in range(6)]
        mid = xs[1:5]  # x1..x4 — mini S-box inputs

        # --- AND stage: the 10 shared product terms (10 secAND2 each
        # variant; degree-3 terms chain one more gadget on a degree-2
        # product, Fig. 4 / Fig. 6).
        products: dict = {}
        for mask in self.decomp.monomials:
            deg = bin(mask).count("1")
            if deg == 2:
                i, j = [k for k in range(4) if mask & (8 >> k)]
                # higher-indexed variable takes the y role (its share 1
                # must arrive last in the timed implementations)
                products[mask] = _mand(mid[i], mid[j])
        for mask in self.decomp.monomials:
            if bin(mask).count("1") == 3:
                d2, extra = self.decomp.deg3_factorisation(mask)
                products[mask] = _mand(products[d2], mid[extra])

        # --- refresh the product terms (10 fresh bits) before the
        # linear layer (Sec. III-C / IV-A).
        refreshed = {
            mask: (
                _mrefresh(products[mask], rand14[k])
                if refresh_mask[k]
                else products[mask]
            )
            for k, mask in enumerate(self.decomp.monomials)
        }

        # --- mini S-box XOR stage (Eq. 3): linear terms + constants.
        rows_out: List[List[_ShareVec]] = []
        for row in self.decomp.rows:
            bits: List[_ShareVec] = []
            for b in range(4):
                acc0 = np.full(n, bool(row.constants[b]))
                acc1 = np.zeros(n, dtype=bool)
                for v in row.linear[b]:
                    acc0 = acc0 ^ mid[v][0]
                    acc1 = acc1 ^ mid[v][1]
                for mask in row.products[b]:
                    acc0 = acc0 ^ refreshed[mask][0]
                    acc1 = acc1 ^ refreshed[mask][1]
                bits.append((acc0, acc1))
            rows_out.append(bits)

        # --- MUX stage 1 (Eq. 4 selects): 4 secAND2 on (x0, x5) with
        # masked NOTs, refreshed with 4 fresh bits, then registered.
        x0_, x5_ = xs[0], xs[5]
        sel_raw = [
            _mand(_mnot(x0_), _mnot(x5_)),
            _mand(_mnot(x0_), x5_),
            _mand(x0_, _mnot(x5_)),
            _mand(x0_, x5_),
        ]
        sel = [
            _mrefresh(sel_raw[r], rand14[10 + r])
            if refresh_mask[10 + r]
            else sel_raw[r]
            for r in range(4)
        ]

        # --- MUX stage 2: 16 secAND2 (select x mini output) and
        # stage 3: XOR the four rows per output bit.
        out0 = np.zeros((4, n), dtype=bool)
        out1 = np.zeros((4, n), dtype=bool)
        for b in range(4):
            acc: Optional[_ShareVec] = None
            for r in range(4):
                term = _mand(sel[r], rows_out[r][b])
                acc = term if acc is None else _mxor(acc, term)
            out0[b], out1[b] = acc
        if expose_intermediates:
            return out0, out1, rows_out, sel
        return out0, out1


@dataclass(frozen=True)
class _VariantSpec:
    name: str
    sbox_latency: int
    cycles_per_round: int
    needs_reset: bool


_VARIANTS = {
    # 5-cycle S-box + input/output S-box registers -> 7 cycles/round
    "ff": _VariantSpec("secAND2-FF", 5, 7, True),
    # 2-cycle S-box, no extra registers -> 2 cycles/round
    "pd": _VariantSpec("secAND2-PD", 2, 2, False),
}


class MaskedDES:
    """First-order masked DES engine (share-level).

    Args:
        variant: ``"ff"`` (secAND2-FF engine, Fig. 8) or ``"pd"``
            (secAND2-PD engine, Fig. 9).
        recycle_randomness: Reuse the same 14 fresh bits across all
            eight S-boxes of a round (the paper's reference choice).
    """

    def __init__(self, variant: str = "ff", recycle_randomness: bool = True):
        if variant not in _VARIANTS:
            raise ValueError(f"variant must be one of {sorted(_VARIANTS)}")
        self.variant = variant
        self.spec = _VARIANTS[variant]
        self.recycle_randomness = recycle_randomness
        self._sboxes = [MaskedSboxModel(i) for i in range(8)]

    # -- cost model ----------------------------------------------------
    @property
    def cycles_per_round(self) -> int:
        return self.spec.cycles_per_round

    @property
    def total_cycles(self) -> int:
        """Whole-operation latency (paper: 115 cycles for the FF core).

        16 rounds plus three overhead cycles (load/initial-mask/output).
        """
        return N_ROUNDS * self.spec.cycles_per_round + 3

    @property
    def random_bits_per_round(self) -> int:
        return SBOX_RANDOM_BITS * (1 if self.recycle_randomness else 8)

    @property
    def random_bits_total(self) -> int:
        return self.random_bits_per_round * N_ROUNDS

    # -- functional model ----------------------------------------------
    def _round_randomness(
        self, prng: RandomnessSource, n: int
    ) -> List[np.ndarray]:
        """Per-S-box (14, n) random matrices for one round."""
        if self.recycle_randomness:
            r = prng.bits(SBOX_RANDOM_BITS, n)
            return [r] * 8
        return [prng.bits(SBOX_RANDOM_BITS, n) for _ in range(8)]

    def encrypt_shares(
        self,
        pt_s0: np.ndarray,
        pt_s1: np.ndarray,
        key_s0: np.ndarray,
        key_s1: np.ndarray,
        prng: RandomnessSource,
        decrypt: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Encrypt (or decrypt) shared data under a shared key.

        All arguments are (64, n) bit-share matrices; returns the
        (64, n) output shares.  Decryption runs the identical masked
        datapath with the round keys reversed (the round-based
        architecture's decrypt mode).
        """
        keys = masked_round_keys_bits(key_s0, key_s1)
        if decrypt:
            keys = keys[::-1]
        s0 = permute_rows(pt_s0, IP)
        s1 = permute_rows(pt_s1, IP)
        l0, r0 = s0[:32], s0[32:]
        l1, r1 = s1[:32], s1[32:]
        n = pt_s0.shape[1]
        for rnd in range(N_ROUNDS):
            k0, k1 = keys[rnd]
            e0 = permute_rows(r0, E) ^ k0
            e1 = permute_rows(r1, E) ^ k1
            rand = self._round_randomness(prng, n)
            f0 = np.zeros((32, n), dtype=bool)
            f1 = np.zeros((32, n), dtype=bool)
            for i in range(8):
                o0, o1 = self._sboxes[i](
                    e0[6 * i : 6 * i + 6], e1[6 * i : 6 * i + 6], rand[i]
                )
                f0[4 * i : 4 * i + 4] = o0
                f1[4 * i : 4 * i + 4] = o1
            f0 = permute_rows(f0, P)
            f1 = permute_rows(f1, P)
            l0, r0 = r0, l0 ^ f0
            l1, r1 = r1, l1 ^ f1
        c0 = permute_rows(np.concatenate([r0, l0], axis=0), FP)
        c1 = permute_rows(np.concatenate([r1, l1], axis=0), FP)
        return c0, c1

    def encrypt(
        self,
        plaintext_bits: np.ndarray,
        key_bits: np.ndarray,
        prng: RandomnessSource,
        decrypt: bool = False,
    ) -> np.ndarray:
        """Mask, encrypt, unmask: (64, n) bits in, (64, n) bits out.

        The key is re-masked before every operation (as in the paper's
        evaluation: "the DES key is fixed ... but masked before every
        DES operation").
        """
        n = plaintext_bits.shape[1]
        pm = prng.bits(64, n)
        km = prng.bits(64, n)
        c0, c1 = self.encrypt_shares(
            plaintext_bits ^ pm, pm, key_bits ^ km, km, prng, decrypt=decrypt
        )
        return c0 ^ c1

    def decrypt(
        self,
        ciphertext_bits: np.ndarray,
        key_bits: np.ndarray,
        prng: RandomnessSource,
    ) -> np.ndarray:
        """Masked decryption (reversed round keys, same datapath)."""
        return self.encrypt(ciphertext_bits, key_bits, prng, decrypt=True)

    def tdes_encrypt(
        self,
        plaintext_bits: np.ndarray,
        k1_bits: np.ndarray,
        k2_bits: np.ndarray,
        k3_bits: Optional[np.ndarray] = None,
        prng: Optional[RandomnessSource] = None,
    ) -> np.ndarray:
        """Masked EDE Triple-DES (the paper's motivating use of DES).

        Three chained masked DES operations (E-D-E); each operation
        re-masks its inputs, exactly as three back-to-back runs of the
        engine would on hardware.  Two-key EDE when ``k3`` is omitted.
        """
        if prng is None:
            prng = RandomnessSource()
        if k3_bits is None:
            k3_bits = k1_bits
        stage1 = self.encrypt(plaintext_bits, k1_bits, prng)
        stage2 = self.decrypt(stage1, k2_bits, prng)
        return self.encrypt(stage2, k3_bits, prng)

    def tdes_decrypt(
        self,
        ciphertext_bits: np.ndarray,
        k1_bits: np.ndarray,
        k2_bits: np.ndarray,
        k3_bits: Optional[np.ndarray] = None,
        prng: Optional[RandomnessSource] = None,
    ) -> np.ndarray:
        """Masked EDE Triple-DES decryption."""
        if prng is None:
            prng = RandomnessSource()
        if k3_bits is None:
            k3_bits = k1_bits
        stage1 = self.decrypt(ciphertext_bits, k3_bits, prng)
        stage2 = self.encrypt(stage1, k2_bits, prng)
        return self.decrypt(stage2, k1_bits, prng)
