"""Unprotected gate-level DES engine — the attack baseline.

The paper's entire premise is that an *unmasked* implementation falls to
first-order DPA (Kocher et al.).  This module provides that baseline as
a netlist on the same simulator: a classical round-based DES without
masking — one cycle per round, S-boxes built from the same mini-S-box
ANF decomposition (plain AND/XOR instead of masked gadgets).

Used by:
* :mod:`repro.attacks` — first-order CPA recovers its round key within
  a few hundred simulated traces (the negative control the masked
  engines are measured against);
* utilisation comparisons (the cost of masking = masked GE / these GE).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from ..netlist.timing import analyze
from ..sim.clocking import ClockedHarness
from ..sim.power import PowerRecorder
from .bits import permute_rows
from .sbox_anf import decompose_sbox
from .tables import E, FP, IP, N_ROUNDS, P, PC1, PC2, SHIFTS

__all__ = ["build_unprotected_sbox", "UnprotectedDESEngine"]


def build_unprotected_sbox(
    c: Circuit, sbox: int, ins: List[int], tag: str = "usb"
) -> List[int]:
    """Plain (unmasked) DES S-box from the ANF decomposition.

    Args:
        c: Target circuit.
        sbox: S-box index 0..7.
        ins: Six input wires (x0..x5).

    Returns:
        Four output wires (y1..y4, MSB first).
    """
    decomp = decompose_sbox(sbox, all_products=True)
    mid = ins[1:5]

    products: Dict[int, int] = {}
    for mask in decomp.monomials:
        if bin(mask).count("1") == 2:
            i, j = [k for k in range(4) if mask & (8 >> k)]
            products[mask] = c.and2(mid[i], mid[j], name=f"{tag}_p{mask:x}")
    for mask in decomp.monomials:
        if bin(mask).count("1") == 3:
            d2, extra = decomp.deg3_factorisation(mask)
            products[mask] = c.and2(
                products[d2], mid[extra], name=f"{tag}_p{mask:x}"
            )

    rows_out: List[List[int]] = []
    for r, row in enumerate(decomp.rows):
        bits: List[int] = []
        for b in range(4):
            terms = [mid[v] for v in row.linear[b]]
            terms += [products[m] for m in row.products[b]]
            w = c.xor_tree(terms, name=f"{tag}_r{r}b{b}")
            if row.constants[b]:
                w = c.inv(w, name=f"{tag}_r{r}b{b}c")
            bits.append(w)
        rows_out.append(bits)

    nx0 = c.inv(ins[0], name=f"{tag}_nx0")
    nx5 = c.inv(ins[5], name=f"{tag}_nx5")
    sel = [
        c.and2(nx0, nx5, name=f"{tag}_sel0"),
        c.and2(nx0, ins[5], name=f"{tag}_sel1"),
        c.and2(ins[0], nx5, name=f"{tag}_sel2"),
        c.and2(ins[0], ins[5], name=f"{tag}_sel3"),
    ]
    outs: List[int] = []
    for b in range(4):
        terms = [
            c.and2(sel[r], rows_out[r][b], name=f"{tag}_m{r}b{b}")
            for r in range(4)
        ]
        outs.append(c.xor_tree(terms, name=f"{tag}_o{b}"))
    return outs


class UnprotectedDESEngine:
    """Round-based unmasked DES netlist, one cycle per round."""

    def __init__(self, routing_jitter_seed: Optional[int] = 2023):
        c = Circuit("unprotected-DES")
        if routing_jitter_seed is not None:
            c.enable_routing_jitter(routing_jitter_seed, 40.0, 0.0)
        self.circuit = c
        self.shift2 = c.add_input("shift2")
        self.en_state = c.add_input("en_state")
        self._build(c)
        c.check()
        self.timing = analyze(c)
        self.period_ps = int(self.timing.critical_path_ps) + 200
        self.cycles_per_round = 1
        self.total_cycles = N_ROUNDS + 1
        self.bin_ps = max(50, self.period_ps // 8)
        self.n_samples = int(
            -(-self.total_cycles * self.period_ps // self.bin_ps)
        )

    def _build(self, c: Circuit) -> None:
        r_d = [c.add_wire(f"R_d_{i}") for i in range(32)]
        self._r_q = [
            c.dffe(r_d[i], self.en_state, name=f"R_{i}") for i in range(32)
        ]
        self._l_q = [
            c.dffe(self._r_q[i], self.en_state, name=f"L_{i}")
            for i in range(32)
        ]
        cd_d = [c.add_wire(f"CD_d_{i}") for i in range(56)]
        cd_q = [
            c.dffe(cd_d[i], self.en_state, name=f"CD_{i}") for i in range(56)
        ]
        for i in range(56):
            half, pos = (0, i) if i < 28 else (1, i - 28)
            src1 = cd_q[half * 28 + (pos + 1) % 28]
            src2 = cd_q[half * 28 + (pos + 2) % 28]
            c.add_gate("MUX2", [self.shift2, src1, src2],
                       output=cd_d[i], name=f"rot_{i}")
        k = [cd_q[PC2[t] - 1] for t in range(48)]
        e = [self._r_q[E[t] - 1] for t in range(48)]
        xin = [c.xor2(e[t], k[t], name=f"ka_{t}") for t in range(48)]
        sout: List[int] = []
        for box in range(8):
            sout.extend(
                build_unprotected_sbox(
                    c, box, xin[6 * box : 6 * box + 6], tag=f"usb{box}"
                )
            )
        f = [sout[P[i] - 1] for i in range(32)]
        for i in range(32):
            c.add_gate("XOR2", [self._l_q[i], f[i]],
                       output=r_d[i], name=f"fx_{i}")

    # ------------------------------------------------------------------
    def run_batch(
        self,
        pt_bits: np.ndarray,
        key_bits: np.ndarray,
        record: bool = True,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Encrypt a batch; return (ciphertext bits, power traces)."""
        n = pt_bits.shape[1]
        h = ClockedHarness(self.circuit, n, self.period_ps, check_timing=False)
        st = permute_rows(pt_bits, IP)
        cd = permute_rows(key_bits, PC1)
        cd = np.concatenate(
            [np.roll(cd[:28], -SHIFTS[0], axis=0),
             np.roll(cd[28:], -SHIFTS[0], axis=0)],
            axis=0,
        )
        ff_vals = {}
        for i in range(32):
            ff_vals[f"L_{i}"] = st[i]
            ff_vals[f"R_{i}"] = st[32 + i]
        for i in range(56):
            ff_vals[f"CD_{i}"] = cd[i]
        inputs = {w: np.zeros(n, dtype=bool) for w in self.circuit.inputs}
        h.preload(ff_vals, inputs)

        rec = None
        if record:
            rec = PowerRecorder(
                n,
                self.total_cycles * self.period_ps,
                bin_ps=self.bin_ps,
                weights=h.sim.weights,
            )
        for rnd in range(N_ROUNDS):
            nxt = rnd + 1
            shift = SHIFTS[nxt] if nxt < N_ROUNDS else 1
            h.step(
                [
                    (10, self.shift2, np.full(n, shift == 2)),
                    (10, self.en_state, np.full(n, True)),
                ],
                recorder=rec,
            )
        h.step([(10, self.en_state, False)], recorder=rec)
        r = np.stack([h.ff_state(f"R_{i}") for i in range(32)])
        l = np.stack([h.ff_state(f"L_{i}") for i in range(32)])
        ct = permute_rows(np.concatenate([r, l], axis=0), FP)
        return ct, (rec.power if rec is not None else None)
