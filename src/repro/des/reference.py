"""Reference (unprotected) DES and Triple-DES.

The classical round-based architecture the paper starts from
(Sec. IV-A): IP, sixteen Feistel rounds with expansion, key mixing,
S-boxes and the P permutation, final swap and FP.  Used as the golden
model every masked core must match bit-for-bit, and as the unprotected
baseline in examples.

Also provides a vectorised implementation over bit matrices for batch
cross-checking of the masked cores.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .bits import bitarray_to_ints, int_to_bitarray, permute_int, permute_rows
from .keyschedule import round_keys, round_keys_bits
from .tables import E, FP, IP, N_ROUNDS, P, SBOXES

__all__ = [
    "feistel",
    "des_encrypt",
    "des_decrypt",
    "tdes_encrypt",
    "tdes_decrypt",
    "des_encrypt_bits",
    "sbox_lookup",
]


def sbox_lookup(sbox_idx: int, value6: int) -> int:
    """One S-box lookup: row = bits (1,6), column = bits (2..5)."""
    row = ((value6 >> 4) & 0b10) | (value6 & 1)
    col = (value6 >> 1) & 0xF
    return SBOXES[sbox_idx][row][col]


def feistel(right32: int, subkey48: int) -> int:
    """The DES round function f(R, K)."""
    x = permute_int(right32, E, 32) ^ subkey48
    out = 0
    for i in range(8):
        chunk = (x >> (42 - 6 * i)) & 0x3F
        out = (out << 4) | sbox_lookup(i, chunk)
    return permute_int(out, P, 32)


def _des_block(block64: int, keys: List[int]) -> int:
    x = permute_int(block64, IP, 64)
    left, right = x >> 32, x & 0xFFFFFFFF
    for k in keys:
        left, right = right, left ^ feistel(right, k)
    return permute_int((right << 32) | left, FP, 64)


def des_encrypt(plaintext64: int, key64: int) -> int:
    """Encrypt one 64-bit block."""
    return _des_block(plaintext64, round_keys(key64))


def des_decrypt(ciphertext64: int, key64: int) -> int:
    """Decrypt one 64-bit block."""
    return _des_block(ciphertext64, round_keys(key64)[::-1])


def tdes_encrypt(plaintext64: int, k1: int, k2: int, k3: int = None) -> int:
    """EDE Triple-DES (two- or three-key)."""
    if k3 is None:
        k3 = k1
    return des_encrypt(des_decrypt(des_encrypt(plaintext64, k1), k2), k3)


def tdes_decrypt(ciphertext64: int, k1: int, k2: int, k3: int = None) -> int:
    """EDE Triple-DES decryption."""
    if k3 is None:
        k3 = k1
    return des_decrypt(des_encrypt(des_decrypt(ciphertext64, k3), k2), k1)


# ----------------------------------------------------------------------
# vectorised model (bit matrices) for batch verification
# ----------------------------------------------------------------------
_SBOX_FLAT = [
    np.array(
        [SBOXES[i][((v >> 4) & 0b10) | (v & 1)][(v >> 1) & 0xF] for v in range(64)],
        dtype=np.uint8,
    )
    for i in range(8)
]


def _sbox_bits(sbox_idx: int, six: np.ndarray) -> np.ndarray:
    """Vectorised S-box: (6, n) bits -> (4, n) bits."""
    idx = np.zeros(six.shape[1], dtype=np.int64)
    for i in range(6):
        idx = (idx << 1) | six[i].astype(np.int64)
    out_vals = _SBOX_FLAT[sbox_idx][idx]
    return int_to_bitarray(out_vals.astype(np.uint64), 4)


def des_encrypt_bits(plain_bits: np.ndarray, key_bits: np.ndarray) -> np.ndarray:
    """Vectorised DES over (64, n) bit matrices; returns (64, n)."""
    keys = round_keys_bits(key_bits)
    x = permute_rows(plain_bits, IP)
    left, right = x[:32], x[32:]
    for k in keys:
        expanded = permute_rows(right, E) ^ k
        sbox_out = np.concatenate(
            [_sbox_bits(i, expanded[6 * i : 6 * i + 6]) for i in range(8)], axis=0
        )
        f_out = permute_rows(sbox_out, P)
        left, right = right, left ^ f_out
    return permute_rows(np.concatenate([right, left], axis=0), FP)
