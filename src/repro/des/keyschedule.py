"""DES key schedule — scalar, vectorised, and masked variants.

The key schedule is entirely linear over GF(2) (permuted choices and
rotations), so the masked variant simply runs the same schedule on each
share independently; the round keys recombine by XOR.  The paper's
engines include such a *masked key schedule running in parallel to the
DES operation* (Sec. IV-A, +~900 GE), unlike the DOM TDES of [17] whose
key schedule is unmasked.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .bits import permute_int, permute_rows
from .tables import N_ROUNDS, PC1, PC2, SHIFTS

__all__ = [
    "round_keys",
    "round_keys_bits",
    "masked_round_keys_bits",
    "rotate_left28",
]


def rotate_left28(value: int, amount: int) -> int:
    """28-bit rotate left."""
    mask = (1 << 28) - 1
    return ((value << amount) | (value >> (28 - amount))) & mask


def round_keys(key64: int) -> List[int]:
    """The sixteen 48-bit round keys of a 64-bit key (parity ignored)."""
    cd = permute_int(key64, PC1, 64)
    c, d = cd >> 28, cd & ((1 << 28) - 1)
    keys = []
    for shift in SHIFTS:
        c = rotate_left28(c, shift)
        d = rotate_left28(d, shift)
        keys.append(permute_int((c << 28) | d, PC2, 56))
    return keys


def round_keys_bits(key_bits: np.ndarray) -> List[np.ndarray]:
    """Vectorised key schedule over a (64, n) key-bit matrix.

    Returns sixteen (48, n) round-key matrices.
    """
    cd = permute_rows(key_bits, PC1)
    c, d = cd[:28], cd[28:]
    keys = []
    for shift in SHIFTS:
        c = np.roll(c, -shift, axis=0)
        d = np.roll(d, -shift, axis=0)
        keys.append(permute_rows(np.concatenate([c, d], axis=0), PC2))
    return keys


def masked_round_keys_bits(
    key_share0: np.ndarray, key_share1: np.ndarray
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Masked key schedule: the linear schedule applied per share."""
    k0 = round_keys_bits(key_share0)
    k1 = round_keys_bits(key_share1)
    return list(zip(k0, k1))
