"""Gate-level masked DES S-boxes (Fig. 8a and Fig. 9a).

Both variants share the same dataflow (mini-S-box AND stage -> refresh
-> mini XOR stage; MUX select stage -> refresh -> register; MUX AND
stage 2 -> MUX XOR stage 3) and differ in how safe input-arrival
sequences are enforced:

* **FF variant** (Fig. 8a): secAND2-FF gadgets whose internal y1
  flip-flops are enabled layer by layer by an FSM, preceded by an input
  register layer; S-box latency 5 cycles, plus input/output registers
  -> 7 cycles per DES round.  Gadget FFs carry ``reset_group="gadget"``
  so the harness can reset them between rounds (Sec. II-C).

* **PD variant** (Fig. 9a): plain secAND2 cores behind chained-LUT
  delay lines.  All twelve input shares of one S-box share a single
  staggered schedule that generalises Table II to four variables with
  common products:

      x4_s0 (0) -> x3_s0 (1) -> x2_s0 (2) -> x1_s0,x1_s1 (3)
      -> x2_s1 (4) -> x3_s1 (5) -> x4_s1 (6)   [DelayUnits]

  which makes every one of the ten shared products (and the degree-3
  chains, Fig. 6) observe "y0 first / x middle / y1 last".  S-box
  latency 2 cycles.

Routing skew: on the FPGA the delay of a route is placement-dependent;
the paper's whole DelayUnit-size study (Sec. VII-B) exists because the
staggering must exceed that skew.  Builders therefore support a
deterministic per-instance routing-jitter model
(:meth:`repro.netlist.circuit.Circuit` jitter hook below) — with a
1-LUT DelayUnit the jitter breaks the arrival order at many sites
(pronounced leakage, Fig. 15a); at 10 LUTs the order always holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.gadgets import (
    SharePair,
    refresh,
    secand2,
    secand2_core_on_wires,
    secand2_ff,
)
from ..netlist.cells import DELAY_UNIT_DEFAULT_LUTS
from ..netlist.circuit import Circuit
from .sbox_anf import decompose_sbox

__all__ = [
    "FFSboxControls",
    "PDSboxControls",
    "PD_MINI_SCHEDULE",
    "PD_SELECT_SCHEDULE",
    "PD_STAGE2_SEL_UNITS",
    "PD_STAGE2_MINI_UNITS",
    "build_sbox_ff",
    "build_sbox_pd",
    "build_standalone_sbox",
    "SBOX_N_SECAND2",
]

#: secAND2 instances per protected S-box: 10 (mini AND stage) + 4
#: (MUX stage 1) + 16 (MUX stage 2) — Sec. VI-A's "30 secAND2 gates".
SBOX_N_SECAND2 = 30

#: PD DelayUnits for the mini S-box inputs x1..x4: (share0, share1).
PD_MINI_SCHEDULE: Dict[int, Tuple[int, int]] = {
    0: (3, 3),  # x1 — innermost variable, both shares together
    1: (2, 4),  # x2
    2: (1, 5),  # x3
    3: (0, 6),  # x4 — outermost: share0 first, share1 last
}

#: PD DelayUnits for the MUX select inputs (x0, x5).
PD_SELECT_SCHEDULE: Dict[str, Tuple[int, int]] = {
    "x0": (1, 1),
    "x5": (0, 2),
}

#: PD DelayUnits in MUX stage 2: the registered select products are the
#: x operand (middle), the registered mini S-box outputs the y operand
#: (share0 first, share1 last).
PD_STAGE2_SEL_UNITS: Tuple[int, int] = (1, 1)
PD_STAGE2_MINI_UNITS: Tuple[int, int] = (0, 2)


@dataclass(frozen=True)
class FFSboxControls:
    """Enable wires of the FF S-box FSM (shared by all eight S-boxes).

    Cycle schedule within a 7-cycle round (edge Ek starts cycle ck):

    =====  ==================================================
    edge   sampling (enable raised during the previous cycle)
    =====  ==================================================
    E0     state registers; gadget-FF reset group
    E1     S-box input registers (``en_inreg``)
    E2     degree-2 + MUX-select gadget FFs (``en_deg2``)
    E3     degree-3 gadget FFs + MUX1 product register
    E4     MUX stage 2 gadget FFs (``en_mux2``)
    E5     S-box output registers (``en_outreg``)
    E6     (settling margin)
    =====  ==================================================
    """

    en_inreg: int
    en_deg2: int
    en_deg3: int
    en_muxreg: int
    en_mux2: int
    en_outreg: int


@dataclass(frozen=True)
class PDSboxControls:
    """Enable wires of the PD S-box (2-cycle rounds).

    ``en_round``: input register (+ state/key registers, round edge);
    ``en_mid``: mid registers between stage A and stage B.
    """

    en_round: int
    en_mid: int


def _mini_xor_stage(
    c: Circuit,
    decomp,
    mid: Sequence[SharePair],
    refreshed: Dict[int, SharePair],
    tag: str,
) -> List[List[SharePair]]:
    """Eq. 3's linear layer: rows x bits of mini S-box output shares."""
    rows_out: List[List[SharePair]] = []
    for r, row in enumerate(decomp.rows):
        bits: List[SharePair] = []
        for b in range(4):
            terms0 = [mid[v].s0 for v in row.linear[b]]
            terms1 = [mid[v].s1 for v in row.linear[b]]
            terms0 += [refreshed[m].s0 for m in row.products[b]]
            terms1 += [refreshed[m].s1 for m in row.products[b]]
            if not terms0:
                raise ValueError(
                    f"S-box {decomp.sbox} row {r} bit {b}: empty ANF"
                )
            s0 = c.xor_tree(terms0, name=f"{tag}_r{r}b{b}_t0")
            s1 = c.xor_tree(terms1, name=f"{tag}_r{r}b{b}_t1")
            if row.constants[b]:
                s0 = c.inv(s0, name=f"{tag}_r{r}b{b}_c")
            bits.append(SharePair(s0, s1))
        rows_out.append(bits)
    return rows_out


def build_sbox_ff(
    c: Circuit,
    sbox: int,
    ins: Sequence[SharePair],
    rand: Sequence[int],
    ctrl: FFSboxControls,
    tag: str = "sb",
    output_register: bool = True,
) -> List[SharePair]:
    """Protected S-box with secAND2-FF (Fig. 8a).

    Args:
        c: Target circuit.
        sbox: S-box index 0..7.
        ins: Six share pairs (x0..x5) — the D values of the S-box input
            register (e.g. ``E(R) ^ K`` slices).
        rand: Fourteen fresh-randomness wires (10 product + 4 select
            refreshes); recycled across S-boxes by the caller.
        ctrl: FSM enable wires.
        output_register: With False, the S-box output register is
            omitted (the paper's open question of Sec. IV-B/VI-A:
            "whether the S-box output register can be removed ... we
            leave for future work"); the round then takes 6 cycles.

    Returns:
        Four share pairs — the S-box output register Q wires (or the
        combinational stage-3 outputs when ``output_register=False``).
    """
    if len(ins) != 6 or len(rand) != 14:
        raise ValueError("need 6 input share pairs and 14 random wires")
    decomp = decompose_sbox(sbox, all_products=True)

    # input register layer (Fig. 5 / Fig. 8a)
    reg = [
        SharePair(
            c.dffe(p.s0, ctrl.en_inreg, name=f"{tag}_in{i}s0"),
            c.dffe(p.s1, ctrl.en_inreg, name=f"{tag}_in{i}s1"),
        )
        for i, p in enumerate(ins)
    ]
    mid = reg[1:5]  # x1..x4

    # --- mini S-box AND stage: 10 secAND2-FF (6 deg-2 + 4 chained deg-3)
    products: Dict[int, SharePair] = {}
    for mask in decomp.monomials:
        if bin(mask).count("1") == 2:
            i, j = [k for k in range(4) if mask & (8 >> k)]
            products[mask] = secand2_ff(
                c, mid[i], mid[j], enable=ctrl.en_deg2, tag=f"{tag}_p{mask:x}"
            )
    for mask in decomp.monomials:
        if bin(mask).count("1") == 3:
            d2, extra = decomp.deg3_factorisation(mask)
            products[mask] = secand2_ff(
                c,
                products[d2],
                mid[extra],
                enable=ctrl.en_deg3,
                tag=f"{tag}_p{mask:x}",
            )

    # --- refresh the ten products (Sec. IV-A), then the linear layer
    refreshed = {
        mask: refresh(c, products[mask], rand[k], tag=f"{tag}_ref{mask:x}")
        for k, mask in enumerate(decomp.monomials)
    }
    rows_out = _mini_xor_stage(c, decomp, mid, refreshed, f"{tag}_mx")

    # --- MUX stage 1: four select products on (x0, x5); the four
    # gadgets share one y1 flip-flop (same x5_s1 for all rows).
    x0_, x5_ = reg[0], reg[5]
    nx0 = c.inv(x0_.s0, name=f"{tag}_nx0")
    nx5 = c.inv(x5_.s0, name=f"{tag}_nx5")
    y1q = c.dffe(
        x5_.s1, ctrl.en_deg2, name=f"{tag}_sel_ffy1", reset_group="gadget"
    )
    sel_regged: List[SharePair] = []
    for r in range(4):
        xs0 = x0_.s0 if (r >> 1) else nx0
        ys0 = x5_.s0 if (r & 1) else nx5
        raw = _sel_core(c, xs0, x0_.s1, ys0, y1q, f"{tag}_sel{r}")
        ref = refresh(c, raw, rand[10 + r], tag=f"{tag}_selref{r}")
        sel_regged.append(
            SharePair(
                c.dffe(ref.s0, ctrl.en_muxreg, name=f"{tag}_selreg{r}s0"),
                c.dffe(ref.s1, ctrl.en_muxreg, name=f"{tag}_selreg{r}s1"),
            )
        )

    # --- MUX stage 2 (16 secAND2-FF) and stage 3 (XOR rows together)
    outputs: List[SharePair] = []
    for b in range(4):
        terms: List[SharePair] = []
        for r in range(4):
            terms.append(
                secand2_ff(
                    c,
                    sel_regged[r],
                    rows_out[r][b],
                    enable=ctrl.en_mux2,
                    tag=f"{tag}_m2r{r}b{b}",
                )
            )
        s0 = c.xor_tree([t.s0 for t in terms], name=f"{tag}_o{b}s0")
        s1 = c.xor_tree([t.s1 for t in terms], name=f"{tag}_o{b}s1")
        if output_register:
            outputs.append(
                SharePair(
                    c.dffe(s0, ctrl.en_outreg, name=f"{tag}_out{b}s0"),
                    c.dffe(s1, ctrl.en_outreg, name=f"{tag}_out{b}s1"),
                )
            )
        else:
            outputs.append(SharePair(s0, s1))
    return outputs


def _sel_core(
    c: Circuit, x0: int, x1: int, y0: int, y1: int, tag: str
) -> SharePair:
    """secAND2 combinational core on already-prepared share wires."""
    return secand2_core_on_wires(c, x0, x1, y0, y1, tag)


def build_sbox_pd(
    c: Circuit,
    sbox: int,
    ins: Sequence[SharePair],
    rand: Sequence[int],
    ctrl: PDSboxControls,
    n_luts: int = DELAY_UNIT_DEFAULT_LUTS,
    tag: str = "sb",
) -> Tuple[List[SharePair], List[Tuple[int, int]]]:
    """Protected S-box with secAND2-PD (Fig. 9a).

    Returns:
        ``(outputs, coupling_pairs)``: the four output share pairs
        (combinational — the PD engine has no S-box output register) and
        the list of physically-adjacent delay-line wire pairs that carry
        the two shares of one variable with *equal* nominal delay — the
        candidates for the coupling model of Sec. VII-C.
    """
    if len(ins) != 6 or len(rand) != 14:
        raise ValueError("need 6 input share pairs and 14 random wires")
    decomp = decompose_sbox(sbox, all_products=True)
    coupling_pairs: List[Tuple[int, int]] = []

    # input register (loaded at the round edge, Fig. 9b)
    reg = [
        SharePair(
            c.dffe(p.s0, ctrl.en_round, name=f"{tag}_in{i}s0"),
            c.dffe(p.s1, ctrl.en_round, name=f"{tag}_in{i}s1"),
        )
        for i, p in enumerate(ins)
    ]

    # --- shared staggered delay lines for x1..x4
    mid: List[SharePair] = []
    for v in range(4):
        u0, u1 = PD_MINI_SCHEDULE[v]
        d0 = c.delay_line(reg[v + 1].s0, u0, n_luts, name=f"{tag}_dl{v}s0")
        d1 = c.delay_line(reg[v + 1].s1, u1, n_luts, name=f"{tag}_dl{v}s1")
        mid.append(SharePair(d0, d1))
        if u0 == u1 and u0 > 0:
            coupling_pairs.append((d0, d1))

    # --- AND stage: 10 secAND2 on the delayed shares, degree-3 terms
    # chained per Fig. 6 (undelayed gadget outputs feed the x operand).
    products: Dict[int, SharePair] = {}
    for mask in decomp.monomials:
        if bin(mask).count("1") == 2:
            i, j = [k for k in range(4) if mask & (8 >> k)]
            products[mask] = secand2(c, mid[i], mid[j], tag=f"{tag}_p{mask:x}")
    for mask in decomp.monomials:
        if bin(mask).count("1") == 3:
            d2, extra = decomp.deg3_factorisation(mask)
            products[mask] = secand2(
                c, products[d2], mid[extra], tag=f"{tag}_p{mask:x}"
            )

    refreshed = {
        mask: refresh(c, products[mask], rand[k], tag=f"{tag}_ref{mask:x}")
        for k, mask in enumerate(decomp.monomials)
    }
    rows_out = _mini_xor_stage(c, decomp, mid, refreshed, f"{tag}_mx")

    # --- MUX stage 1 on delayed (x0, x5)
    u = PD_SELECT_SCHEDULE
    x0d = SharePair(
        c.delay_line(reg[0].s0, u["x0"][0], n_luts, name=f"{tag}_dlx0s0"),
        c.delay_line(reg[0].s1, u["x0"][1], n_luts, name=f"{tag}_dlx0s1"),
    )
    x5d = SharePair(
        c.delay_line(reg[5].s0, u["x5"][0], n_luts, name=f"{tag}_dlx5s0"),
        c.delay_line(reg[5].s1, u["x5"][1], n_luts, name=f"{tag}_dlx5s1"),
    )
    if u["x0"][0] == u["x0"][1]:
        coupling_pairs.append((x0d.s0, x0d.s1))
    nx0 = c.inv(x0d.s0, name=f"{tag}_nx0")
    nx5 = c.inv(x5d.s0, name=f"{tag}_nx5")
    sel_mid: List[SharePair] = []
    for r in range(4):
        xs0 = x0d.s0 if (r >> 1) else nx0
        ys0 = x5d.s0 if (r & 1) else nx5
        raw = _sel_core(c, xs0, x0d.s1, ys0, x5d.s1, f"{tag}_sel{r}")
        ref = refresh(c, raw, rand[10 + r], tag=f"{tag}_selref{r}")
        sel_mid.append(
            SharePair(
                c.dffe(ref.s0, ctrl.en_mid, name=f"{tag}_selmid{r}s0"),
                c.dffe(ref.s1, ctrl.en_mid, name=f"{tag}_selmid{r}s1"),
            )
        )

    # --- mid registers for the mini S-box outputs, then stage B delays
    outputs: List[SharePair] = []
    stage2_terms: List[List[SharePair]] = [[] for _ in range(4)]
    for r in range(4):
        su0, su1 = PD_STAGE2_SEL_UNITS
        seld = SharePair(
            c.delay_line(sel_mid[r].s0, su0, n_luts, name=f"{tag}_dls{r}s0"),
            c.delay_line(sel_mid[r].s1, su1, n_luts, name=f"{tag}_dls{r}s1"),
        )
        if su0 == su1 and su0 > 0:
            coupling_pairs.append((seld.s0, seld.s1))
        for b in range(4):
            mreg = SharePair(
                c.dffe(rows_out[r][b].s0, ctrl.en_mid, name=f"{tag}_mmid{r}{b}s0"),
                c.dffe(rows_out[r][b].s1, ctrl.en_mid, name=f"{tag}_mmid{r}{b}s1"),
            )
            mu0, mu1 = PD_STAGE2_MINI_UNITS
            mind = SharePair(
                c.delay_line(mreg.s0, mu0, n_luts, name=f"{tag}_dlm{r}{b}s0"),
                c.delay_line(mreg.s1, mu1, n_luts, name=f"{tag}_dlm{r}{b}s1"),
            )
            stage2_terms[b].append(
                secand2(c, seld, mind, tag=f"{tag}_m2r{r}b{b}")
            )
    for b in range(4):
        s0 = c.xor_tree([t.s0 for t in stage2_terms[b]], name=f"{tag}_o{b}s0")
        s1 = c.xor_tree([t.s1 for t in stage2_terms[b]], name=f"{tag}_o{b}s1")
        outputs.append(SharePair(s0, s1))
    return outputs, coupling_pairs


def build_standalone_sbox(
    sbox: int,
    variant: str = "ff",
    n_luts: int = DELAY_UNIT_DEFAULT_LUTS,
) -> Tuple[Circuit, object, List[Tuple[int, int]]]:
    """One protected S-box as a self-contained circuit.

    Primary inputs: ``x{i}s{j}`` share wires, ``r0..r13`` randomness,
    and the variant's control wires.  Outputs ``y{b}s{j}``.

    Returns:
        ``(circuit, controls, coupling_pairs)``.
    """
    c = Circuit(f"masked-sbox{sbox}-{variant}")
    ins = [
        SharePair(c.add_input(f"x{i}s0"), c.add_input(f"x{i}s1"))
        for i in range(6)
    ]
    rand = [c.add_input(f"r{k}") for k in range(14)]
    coupling: List[Tuple[int, int]] = []
    if variant == "ff":
        ctrl = FFSboxControls(
            en_inreg=c.add_input("en_inreg"),
            en_deg2=c.add_input("en_deg2"),
            en_deg3=c.add_input("en_deg3"),
            en_muxreg=c.add_input("en_muxreg"),
            en_mux2=c.add_input("en_mux2"),
            en_outreg=c.add_input("en_outreg"),
        )
        outs = build_sbox_ff(c, sbox, ins, rand, ctrl)
    elif variant == "pd":
        ctrl = PDSboxControls(
            en_round=c.add_input("en_round"), en_mid=c.add_input("en_mid")
        )
        outs, coupling = build_sbox_pd(c, sbox, ins, rand, ctrl, n_luts=n_luts)
    else:
        raise ValueError("variant must be 'ff' or 'pd'")
    for b, p in enumerate(outs):
        c.mark_output(f"y{b}s0", p.s0)
        c.mark_output(f"y{b}s1", p.s1)
    c.check()
    return c, ctrl, coupling
