"""Selective refresh — the paper's Sec. IV-A future-work optimisation.

The reference design refreshes all ten product terms of an S-box (plus
the four MUX select products) with fresh randomness before the XOR
plane.  The paper notes: *"It is possible to further optimize the
refresh step by selectively refreshing only some of the ten terms
instead of refreshing all of them while maintaining uniformity, but we
leave this optimization for future work."*

This module implements that exploration: it measures the *uniformity
defect* of the masked S-box output shares under an arbitrary subset of
refresh positions, and greedily searches for a minimal subset that
keeps the output-share distribution independent of the unshared input.

The criterion: for every unshared 6-bit input, the distribution of the
4-bit share-0 output nibble must be uniform over 16 values (the
share-1 nibble is then automatically balanced as well since the
recombination is fixed).  This is the empirical version of the
uniformity the refresh layer is there to restore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.refresh_search import greedy_minimize
from .bits import int_to_bitarray
from .masked_core import MaskedSboxModel

__all__ = [
    "uniformity_defect",
    "RefreshPlan",
    "greedy_minimal_refresh",
    "refresh_bits_used",
]


def uniformity_defect(
    sbox: int,
    refresh_mask: Sequence[bool],
    n_per_input: int = 4000,
    seed: int = 0,
) -> float:
    """Worst deviation of P(output share-0 nibble | input) from uniform.

    Returns the maximum over all 64 unshared inputs of
    ``max_v |P(nibble = v) - 1/16|``; a secure refresh plan keeps this
    at the statistical-noise floor (~sqrt(1/16 * 15/16 / n)).
    """
    model = MaskedSboxModel(sbox)
    rng = np.random.default_rng(seed)
    worst = 0.0
    mask = list(refresh_mask)

    def nibble_defect(bits4: Sequence[np.ndarray]) -> float:
        nib = (
            bits4[0].astype(np.int64) * 8
            + bits4[1] * 4
            + bits4[2] * 2
            + bits4[3]
        )
        counts = np.bincount(nib, minlength=16) / nib.shape[0]
        return float(np.max(np.abs(counts - 1.0 / 16)))

    for value in range(64):
        bits = int_to_bitarray(np.uint64(value), 6, n_per_input)
        share1 = rng.integers(0, 2, (6, n_per_input)).astype(bool)
        rand14 = rng.integers(0, 2, (14, n_per_input)).astype(bool)
        o0, _, rows_out, sel = model(
            bits ^ share1,
            share1,
            rand14,
            refresh_mask=mask,
            expose_intermediates=True,
        )
        # the final output nibble ...
        worst = max(worst, nibble_defect([o0[b] for b in range(4)]))
        # ... and every mini-S-box output nibble (share 0) must be
        # uniform: these feed the MUX AND stage and the XOR plane.
        for row in rows_out:
            worst = max(worst, nibble_defect([row[b][0] for b in range(4)]))
    return worst


@dataclass(frozen=True)
class RefreshPlan:
    """Result of the minimal-refresh search for one S-box."""

    sbox: int
    mask: Tuple[bool, ...]
    defect: float
    baseline_defect: float

    @property
    def bits_used(self) -> int:
        return sum(self.mask)

    @property
    def bits_saved(self) -> int:
        return len(self.mask) - self.bits_used

    def row(self) -> str:
        kept = [i for i, m in enumerate(self.mask) if m]
        return (
            f"S-box {self.sbox}: {self.bits_used}/14 refresh bits "
            f"(saved {self.bits_saved}); defect {self.defect:.4f} "
            f"(full-refresh floor {self.baseline_defect:.4f}); kept {kept}"
        )


def greedy_minimal_refresh(
    sbox: int,
    n_per_input: int = 4000,
    tolerance_factor: float = 2.0,
    seed: int = 0,
) -> RefreshPlan:
    """Greedily drop refresh positions while uniformity holds.

    A candidate position is dropped if the uniformity defect stays
    within ``tolerance_factor`` of the full-refresh statistical floor.
    Greedy order: MUX select refreshes first (they sit behind another
    secAND2 layer), then product refreshes from the highest monomial.

    The loop itself is the generic
    :func:`repro.core.refresh_search.greedy_minimize`; this wrapper
    binds it to the DES :func:`uniformity_defect` with the historical
    seed schedule (floor at ``seed``, trial for position ``pos`` at
    ``seed + pos + 1``, confirmation at ``seed + 99``), so results are
    bit-identical to the original in-module search.

    Note: this is an *empirical first-order uniformity* criterion — it
    bounds the distribution of the output shares, which is the property
    the refresh layer restores; it is not a proof of composable
    security (neither is the paper's full refresh).
    """
    result = greedy_minimize(
        lambda mask, salt: uniformity_defect(
            sbox, mask, n_per_input, seed + salt
        ),
        n_positions=14,
        tolerance_factor=tolerance_factor,
    )
    return RefreshPlan(
        sbox=sbox,
        mask=result.mask,
        defect=result.defect,
        baseline_defect=result.floor,
    )


def refresh_bits_used(plans: Sequence[RefreshPlan]) -> int:
    """Randomness per round if each S-box uses its own minimal plan
    (without the paper's cross-S-box recycling)."""
    return sum(p.bits_used for p in plans)
