"""Mini-S-box decomposition and ANF of the DES S-boxes (Sec. IV-A).

Each DES S-box takes six bits ``(x0, x1, x2, x3, x4, x5)`` (paper
notation) and is decomposed into

* four *mini S-boxes* — the four rows of the table, each a 4-bit
  permutation of the middle bits ``(x1, x2, x3, x4)`` — expressed in
  Algebraic Normal Form (Eq. 3), and
* a 4:1 MUX on the outer bits ``(x0, x5)`` realised as four select
  products ``x0.x5, x0.!x5, !x0.x5, !x0.!x5`` multiplied into the mini
  S-box outputs and XOR-ed (Eq. 4).

Because each row of a DES S-box is a 4-bit *permutation*, its component
functions have algebraic degree at most 3; there are therefore at most
C(4,2) = 6 degree-2 and C(4,3) = 4 degree-3 monomials — the paper's
"ten possible product terms", computed once per S-box and shared by all
four mini S-boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .tables import SBOXES

__all__ = [
    "mobius_transform",
    "anf_of_row",
    "MiniSboxANF",
    "SboxDecomposition",
    "decompose_sbox",
    "ALL_DEG2",
    "ALL_DEG3",
    "ALL_MONOMIALS",
    "monomial_name",
    "evaluate_row_anf",
    "select_products",
]

#: Monomial masks over (x1, x2, x3, x4); bit 3 of the mask is x1 (the
#: MSB of the mini S-box column index), bit 0 is x4.
ALL_DEG2: Tuple[int, ...] = tuple(
    m for m in range(16) if bin(m).count("1") == 2
)
ALL_DEG3: Tuple[int, ...] = tuple(
    m for m in range(16) if bin(m).count("1") == 3
)
#: The ten possible nonlinear monomials, degree-2 first.
ALL_MONOMIALS: Tuple[int, ...] = ALL_DEG2 + ALL_DEG3

_VAR_NAMES = ("x1", "x2", "x3", "x4")


def monomial_name(mask: int) -> str:
    """Human-readable monomial, e.g. ``x1*x3``; ``1`` for the constant."""
    if mask == 0:
        return "1"
    return "*".join(_VAR_NAMES[i] for i in range(4) if mask & (8 >> i))


def mobius_transform(truth_table: Sequence[int]) -> List[int]:
    """ANF coefficients of a 4-variable boolean function.

    Args:
        truth_table: 16 values f(c) for c = x1*8 + x2*4 + x3*2 + x4.

    Returns:
        16 coefficients a_m with ``f(c) = XOR over m subset-of c of a_m``.
    """
    a = [int(v) & 1 for v in truth_table]
    n = 4
    for i in range(n):
        step = 1 << i
        for m in range(16):
            if m & step:
                a[m] ^= a[m ^ step]
    return a


@dataclass(frozen=True)
class MiniSboxANF:
    """ANF of one mini S-box (one row of a DES S-box).

    Attributes:
        sbox: S-box index 0..7.
        row: Row (mini S-box) index 0..3 — selected by ``(x0, x5)``.
        constants: Per output bit (4), the constant term (0/1).
        linear: Per output bit, tuple of linear variable indexes
            (0 -> x1 .. 3 -> x4).
        products: Per output bit, tuple of nonlinear monomial masks.
    """

    sbox: int
    row: int
    constants: Tuple[int, ...]
    linear: Tuple[Tuple[int, ...], ...]
    products: Tuple[Tuple[int, ...], ...]

    @property
    def degree(self) -> int:
        return max(
            (bin(m).count("1") for bits in self.products for m in bits),
            default=1,
        )

    def used_monomials(self) -> Tuple[int, ...]:
        seen = sorted({m for bits in self.products for m in bits})
        return tuple(seen)


def anf_of_row(sbox: int, row: int) -> MiniSboxANF:
    """Compute the ANF of all four output bits of one mini S-box."""
    table = SBOXES[sbox][row]
    constants: List[int] = []
    linear: List[Tuple[int, ...]] = []
    products: List[Tuple[int, ...]] = []
    for bit in range(4):  # output bit, MSB first (y1 .. y4 of Eq. 3)
        tt = [(table[c] >> (3 - bit)) & 1 for c in range(16)]
        coeffs = mobius_transform(tt)
        constants.append(coeffs[0])
        lin = tuple(i for i in range(4) if coeffs[8 >> i])
        prods = tuple(
            m for m in ALL_MONOMIALS if coeffs[m]
        )
        # A 4-bit permutation has component degree <= 3: no x1x2x3x4.
        if coeffs[0b1111]:
            raise AssertionError(
                f"S-box {sbox} row {row} bit {bit} has degree 4 — "
                "DES rows must be 4-bit permutations"
            )
        linear.append(lin)
        products.append(prods)
    return MiniSboxANF(
        sbox=sbox,
        row=row,
        constants=tuple(constants),
        linear=tuple(linear),
        products=tuple(products),
    )


@dataclass(frozen=True)
class SboxDecomposition:
    """Complete masked-evaluation plan of one DES S-box.

    Attributes:
        sbox: S-box index.
        rows: The four mini S-box ANFs.
        monomials: Ordered nonlinear monomials actually used by any row
            (degree-2 first) — the product terms the AND stage computes
            once and shares (at most 10).
    """

    sbox: int
    rows: Tuple[MiniSboxANF, ...]
    monomials: Tuple[int, ...]

    @property
    def n_deg2(self) -> int:
        return sum(1 for m in self.monomials if bin(m).count("1") == 2)

    @property
    def n_deg3(self) -> int:
        return sum(1 for m in self.monomials if bin(m).count("1") == 3)

    def deg3_factorisation(self, mask: int) -> Tuple[int, int]:
        """Factor a degree-3 monomial as (deg2_mask, extra_var_index).

        Used by the AND stage: a degree-3 product is one more secAND2
        on an already-computed degree-2 product (keeps the stage at
        n-1 = 10 gadgets).  Prefers a degree-2 factor that is itself in
        :attr:`monomials`; the DES S-boxes always allow this when all
        six degree-2 products are computed.
        """
        vars_in = [i for i in range(4) if mask & (8 >> i)]
        for extra in reversed(vars_in):
            deg2 = mask & ~(8 >> extra)
            if deg2 in self.monomials:
                return deg2, extra
        # fall back to any factorisation (deg-2 product to be added)
        extra = vars_in[-1]
        return mask & ~(8 >> extra), extra


@lru_cache(maxsize=None)
def decompose_sbox(sbox: int, all_products: bool = True) -> SboxDecomposition:
    """Decompose S-box ``sbox`` into mini S-boxes + shared monomials.

    Args:
        all_products: When True (paper's choice), the AND stage always
            computes all ten possible products; when False, only the
            monomials some row actually uses.
    """
    rows = tuple(anf_of_row(sbox, r) for r in range(4))
    if all_products:
        monomials = ALL_MONOMIALS
    else:
        used = set()
        for r in rows:
            used.update(r.used_monomials())
        # keep canonical order: degree-2 before degree-3
        monomials = tuple(m for m in ALL_MONOMIALS if m in used)
    return SboxDecomposition(sbox=sbox, rows=rows, monomials=monomials)


def evaluate_row_anf(anf: MiniSboxANF, x: np.ndarray) -> np.ndarray:
    """Evaluate a mini S-box ANF on (4, n) input bits -> (4, n) outputs.

    Reference model for verifying both the decomposition (against the
    table) and the masked netlists.
    """
    out = np.zeros((4, x.shape[1]), dtype=bool)
    for bit in range(4):
        acc = np.full(x.shape[1], bool(anf.constants[bit]))
        for v in anf.linear[bit]:
            acc = acc ^ x[v]
        for m in anf.products[bit]:
            prod = np.ones(x.shape[1], dtype=bool)
            for i in range(4):
                if m & (8 >> i):
                    prod = prod & x[i]
            acc = acc ^ prod
        out[bit] = acc
    return out


def select_products(x0: np.ndarray, x5: np.ndarray) -> List[np.ndarray]:
    """The four MUX select products of Eq. 4, row order 0..3.

    Row index of the DES table is ``2*x0 + x5``, so row r is selected by
    the product ``(x0 == r>>1) AND (x5 == r&1)``.
    """
    return [
        (~x0) & (~x5),
        (~x0) & x5,
        x0 & (~x5),
        x0 & x5,
    ]
