"""Full gate-level masked DES engines (Fig. 8b and Fig. 9b).

These are the devices-under-test of the paper's evaluation (Sec. VII):
complete round-based masked DES cores — state registers, masked key
schedule running in parallel, eight protected S-boxes — built as flat
netlists and driven cycle by cycle on the glitch simulator, producing
the power traces that feed TVLA.

* :class:`MaskedDESNetlistEngine` with ``variant="ff"``: 7 cycles per
  round (5-cycle S-box + input/output S-box registers); the harness
  resets the secAND2-FF gadget flip-flops at every round start
  (Sec. II-C).
* ``variant="pd"``: 2 cycles per round; the S-box output feeds the
  input register directly while the state register updates in parallel
  (Sec. IV-C); DelayUnit size is a parameter (the Fig. 15 sweep).

The plaintext/key loading and initial masking are performed silently
(registers preloaded before recording starts); the recorded trace
covers the sixteen rounds, like the paper's Fig. 13/16 traces cover the
DES operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.gadgets import SharePair
from ..leakage.prng import RandomnessSource
from ..netlist.cells import DELAY_UNIT_DEFAULT_LUTS
from ..netlist.circuit import Circuit
from ..netlist.timing import analyze
from ..sim.bitpack import resolve_pack_traces
from ..sim.clocking import ClockedHarness
from ..sim.power import CouplingModel, PowerRecorder, default_weights
from .bits import permute_rows
from .masked_netlist import (
    FFSboxControls,
    PDSboxControls,
    build_sbox_ff,
    build_sbox_pd,
)
from .tables import E, FP, IP, N_ROUNDS, P, PC1, PC2, SHIFTS

__all__ = ["MaskedDESNetlistEngine", "DESTraceSource"]


def _rot_amounts(round_index: int) -> int:
    """SHIFTS entry selecting the rotation applied when entering
    ``round_index + 1`` (0-based rounds)."""
    nxt = round_index + 1
    return SHIFTS[nxt] if nxt < N_ROUNDS else 1


class MaskedDESNetlistEngine:
    """Gate-level first-order masked DES core.

    Args:
        variant: ``"ff"`` or ``"pd"``.
        n_luts: DelayUnit size in LUTs (PD variant only).
        recycle_randomness: One set of 14 fresh bits shared by all eight
            S-boxes per round (paper default) vs. 112 independent bits.
        routing_jitter_seed: Seed of the deterministic placement-skew
            model; ``None`` disables jitter (idealised routing).
        gate_jitter_ps: Per-LUT routing-skew sigma.  Each secAND2
            output share is one atomic LUT (SECAND2L cell), so this
            skew acts *between* LUTs: it spreads the arrival instants
            of independently-routed nets, exactly like placement does
            on the fabric (two nets never switch at the same exact
            instant).
        delay_jitter_ps: Skew sigma per DelayUnit route.  The staggered
            arrival order only holds while the DelayUnit exceeds this
            skew, which is what the Sec. VII-B size sweep measures.
        pack_traces: Default execution mode for :meth:`run_batch`
            harnesses (``False`` / ``True`` / ``"auto"``; see
            :mod:`repro.sim.bitpack`).  ``"auto"`` bit-packs campaign
            batches of 64+ traces and leaves tiny batches boolean.
    """

    def __init__(
        self,
        variant: str = "ff",
        n_luts: int = DELAY_UNIT_DEFAULT_LUTS,
        recycle_randomness: bool = True,
        routing_jitter_seed: Optional[int] = 2023,
        gate_jitter_ps: float = 40.0,
        delay_jitter_ps: float = 700.0,
        sbox_output_register: bool = True,
        pack_traces: "bool | str" = "auto",
    ):
        if variant not in ("ff", "pd"):
            raise ValueError("variant must be 'ff' or 'pd'")
        self.variant = variant
        self.n_luts = n_luts
        self.recycle_randomness = recycle_randomness
        self.delay_jitter_ps = delay_jitter_ps
        self.pack_traces = pack_traces
        self.sbox_output_register = sbox_output_register
        self.coupling_pairs: List[Tuple[int, int]] = []
        self.circuit = Circuit(f"masked-DES-{variant}")
        if routing_jitter_seed is not None:
            self.circuit.enable_routing_jitter(
                routing_jitter_seed, gate_jitter_ps, delay_jitter_ps
            )
        self._build()
        self.circuit.check()
        self.timing = analyze(self.circuit)
        self.period_ps = int(self.timing.critical_path_ps) + 200
        if variant == "ff":
            # the Sec. VI-A future-work ablation: dropping the S-box
            # output register saves one cycle per round (7 -> 6)
            self.cycles_per_round = 7 if sbox_output_register else 6
        else:
            self.cycles_per_round = 2
        self.total_cycles = N_ROUNDS * self.cycles_per_round + 1
        # Sampling resolution: the paper samples at 500 MS/s with a
        # 3 MHz clock (~167 samples/cycle).  Fine bins matter for the
        # PD engine, whose round activity is concentrated in two long
        # cycles — coarse bins would bury localised effects (coupling)
        # under the whole round's switching noise.
        self.bin_ps = max(50, self.period_ps // (32 if variant == "pd" else 4))
        self.n_samples = -(-self.total_cycles * self.period_ps // self.bin_ps)

    # ------------------------------------------------------------------
    # netlist construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        c = self.circuit
        n_rand = 14 if self.recycle_randomness else 112
        self.rand_wires = [c.add_input(f"rand{k}") for k in range(n_rand)]
        self.shift2 = c.add_input("shift2")
        if self.variant == "ff":
            self._build_ff(c)
        else:
            self._build_pd(c)

    def _state_registers(
        self, c: Circuit, en_state: int
    ) -> Tuple[List[List[int]], List[List[int]], List[List[int]], List[List[int]], List[List[int]]]:
        """L/R/C/D register banks; returns (r_d, r_q, l_q, cd_d, cd_q).

        ``r_d`` are pre-allocated D wires for R (driven later by the
        round-function XORs); C/D rotation muxes drive ``cd_d``.
        """
        r_d = [[c.add_wire(f"R_d_s{j}_{i}") for i in range(32)] for j in range(2)]
        r_q = [
            [c.dffe(r_d[j][i], en_state, name=f"R_s{j}_{i}") for i in range(32)]
            for j in range(2)
        ]
        l_q = [
            [c.dffe(r_q[j][i], en_state, name=f"L_s{j}_{i}") for i in range(32)]
            for j in range(2)
        ]
        # masked key schedule: C and D halves with rot1/rot2 muxes
        cd_d = [[c.add_wire(f"CD_d_s{j}_{i}") for i in range(56)] for j in range(2)]
        cd_q = [
            [c.dffe(cd_d[j][i], en_state, name=f"CD_s{j}_{i}") for i in range(56)]
            for j in range(2)
        ]
        for j in range(2):
            for i in range(56):
                half, pos = (0, i) if i < 28 else (1, i - 28)
                src1 = cd_q[j][half * 28 + (pos + 1) % 28]
                src2 = cd_q[j][half * 28 + (pos + 2) % 28]
                c.add_gate(
                    "MUX2",
                    [self.shift2, src1, src2],
                    output=cd_d[j][i],
                    name=f"rot_s{j}_{i}",
                )
        return r_d, r_q, l_q, cd_d, cd_q

    def _sbox_rand(self, box: int) -> List[int]:
        if self.recycle_randomness:
            return self.rand_wires
        return self.rand_wires[14 * box : 14 * box + 14]

    def _round_function(
        self,
        c: Circuit,
        r_source: List[List[int]],
        key_source: List[List[int]],
        l_q: List[List[int]],
        r_d: List[List[int]],
        sbox_builder,
    ) -> None:
        """Wire E -> key XOR -> S-boxes -> P -> L XOR into ``r_d``.

        ``r_source``: the 32-bit state the expansion reads (R register Q
        for the FF engine; the *combinational* next-R for the PD
        engine's direct input-register path).  ``key_source``: the
        56-bit C||D providing the round key via PC2.
        """
        xin: List[List[int]] = [[], []]
        for j in range(2):
            k = [key_source[j][PC2[t] - 1] for t in range(48)]
            e = [r_source[j][E[t] - 1] for t in range(48)]
            xin[j] = [
                c.xor2(e[t], k[t], name=f"keyadd_s{j}_{t}") for t in range(48)
            ]
        sout: List[List[int]] = [[], []]
        for box in range(8):
            ins = [
                SharePair(xin[0][6 * box + t], xin[1][6 * box + t])
                for t in range(6)
            ]
            outs = sbox_builder(box, ins)
            for p in outs:
                sout[0].append(p.s0)
                sout[1].append(p.s1)
        for j in range(2):
            f = [sout[j][P[i] - 1] for i in range(32)]
            for i in range(32):
                c.add_gate(
                    "XOR2",
                    [l_q[j][i], f[i]],
                    output=r_d[j][i],
                    name=f"fxor_s{j}_{i}",
                )

    def _build_ff(self, c: Circuit) -> None:
        ctrl = FFSboxControls(
            en_inreg=c.add_input("en_inreg"),
            en_deg2=c.add_input("en_deg2"),
            en_deg3=c.add_input("en_deg3"),
            en_muxreg=c.add_input("en_muxreg"),
            en_mux2=c.add_input("en_mux2"),
            en_outreg=c.add_input("en_outreg"),
        )
        self.en_state = c.add_input("en_state")
        self.ctrl = ctrl
        r_d, r_q, l_q, cd_d, cd_q = self._state_registers(c, self.en_state)
        self._r_q, self._l_q = r_q, l_q

        def sbox_builder(box: int, ins: List[SharePair]) -> List[SharePair]:
            return build_sbox_ff(
                c,
                box,
                ins,
                self._sbox_rand(box),
                ctrl,
                tag=f"sb{box}",
                output_register=self.sbox_output_register,
            )

        # FF engine: expansion reads the R register, round key reads the
        # C/D registers (preloaded already rotated for round 1).
        self._round_function(c, r_q, cd_q, l_q, r_d, sbox_builder)

    def _build_pd(self, c: Circuit) -> None:
        ctrl = PDSboxControls(
            en_round=c.add_input("en_round"), en_mid=c.add_input("en_mid")
        )
        self.ctrl = ctrl
        self.en_state = ctrl.en_round
        r_d, r_q, l_q, cd_d, cd_q = self._state_registers(c, ctrl.en_round)
        self._r_q, self._l_q = r_q, l_q

        def sbox_builder(box: int, ins: List[SharePair]) -> List[SharePair]:
            outs, pairs = build_sbox_pd(
                c,
                box,
                ins,
                self._sbox_rand(box),
                ctrl,
                n_luts=self.n_luts,
                tag=f"sb{box}",
            )
            self.coupling_pairs.extend(pairs)
            return outs

        # PD engine: the S-box input register is loaded from the *next*
        # round state directly (Fig. 9b): expansion reads the
        # combinational next-R (r_d) and the key via the rotation muxes
        # (cd_d), both sampled at the same round edge as the state.
        self._round_function(c, r_d, cd_d, l_q, r_d, sbox_builder)

    # ------------------------------------------------------------------
    # operation
    # ------------------------------------------------------------------
    def _initial_state(
        self,
        pt_s: Tuple[np.ndarray, np.ndarray],
        key_s: Tuple[np.ndarray, np.ndarray],
    ) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray], List[np.ndarray]]:
        """Per-share L0/R0 and round-1-rotated C||D (numpy, (bits, n))."""
        l0, r0, cd1 = [], [], []
        for j in range(2):
            st = permute_rows(pt_s[j], IP)
            l0.append(st[:32])
            r0.append(st[32:])
            cd = permute_rows(key_s[j], PC1)
            ch = np.roll(cd[:28], -SHIFTS[0], axis=0)
            dh = np.roll(cd[28:], -SHIFTS[0], axis=0)
            cd1.append(np.concatenate([ch, dh], axis=0))
        return l0, r0, cd1

    def _preload(
        self,
        h: ClockedHarness,
        l0: List[np.ndarray],
        r0: List[np.ndarray],
        cd1: List[np.ndarray],
        rand_bits: np.ndarray,
    ) -> None:
        ff_vals: Dict[str, np.ndarray] = {}
        for j in range(2):
            for i in range(32):
                ff_vals[f"L_s{j}_{i}"] = l0[j][i]
                ff_vals[f"R_s{j}_{i}"] = r0[j][i]
            for i in range(56):
                ff_vals[f"CD_s{j}_{i}"] = cd1[j][i]
        if self.variant == "pd":
            # the input registers hold E(R0) ^ K1 at the start of round 1
            for j in range(2):
                k1 = np.stack([cd1[j][PC2[t] - 1] for t in range(48)])
                e0 = np.stack([r0[j][E[t] - 1] for t in range(48)])
                xin = e0 ^ k1
                for box in range(8):
                    for t in range(6):
                        ff_vals[f"sb{box}_in{t}s{j}"] = xin[6 * box + t]
        inputs = {w: np.zeros(h.n_traces, dtype=bool) for w in self.circuit.inputs}
        for k, w in enumerate(self.rand_wires):
            inputs[w] = rand_bits[k]
        h.preload(ff_vals, inputs)

    def _wire_weights(self) -> np.ndarray:
        """Per-wire toggle energies (``1 + fanout``), cached: the
        circuit never changes after construction, and the values are
        identical to what ``VectorSimulator.weights`` computes."""
        n_wires = self.circuit.n_wires
        w = getattr(self, "_wire_weights_cache", None)
        if w is None or len(w) != n_wires:
            w = default_weights(self.circuit.fanout_map(), n_wires)
            self._wire_weights_cache = w
        return w

    def _round_rand(self, prng: RandomnessSource, n: int) -> np.ndarray:
        return prng.bits(len(self.rand_wires), n)

    def _rand_events(self, rand_bits: np.ndarray) -> List[Tuple[int, int, np.ndarray]]:
        return [(10, w, rand_bits[k]) for k, w in enumerate(self.rand_wires)]

    def _ctrl_event(self, name_wire: int, value: bool) -> Tuple[int, int, bool]:
        return (10, name_wire, value)

    def run_batch(
        self,
        pt_bits: np.ndarray,
        key_bits: np.ndarray,
        prng: RandomnessSource,
        record: bool = True,
        coupling_coefficient: float = 0.0,
        pack_traces: "bool | str | None" = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Encrypt a batch and optionally record its power traces.

        Args:
            pt_bits / key_bits: (64, n) plaintext and key bit matrices.
            prng: Randomness source (initial masking + refresh bits);
                disabled = the paper's PRNG-off sanity mode.
            record: Record toggle power.
            coupling_coefficient: Enable the Sec. VII-C coupling model
                on the PD delay-line pairs with this strength.
            pack_traces: Override the engine's default execution mode
                for this batch (``None`` keeps the constructor's).

        Returns:
            ``(ciphertext_bits (64, n), power (n, n_samples) or None)``.
        """
        n = pt_bits.shape[1]
        pm = prng.bits(64, n)
        km = prng.bits(64, n)
        pt_s = (pt_bits ^ pm, pm)
        key_s = (key_bits ^ km, km)

        if pack_traces is None:
            pack_traces = self.pack_traces

        # The recorder is built *before* the harness so ``"auto"`` can
        # resolve against it: a coupling recorder has no packed
        # accumulation path, and packing such a batch would only buy
        # the slow per-event unpack leg (the 0.98x regression).
        recorder = None
        if record:
            coupling = None
            if coupling_coefficient > 0 and self.coupling_pairs:
                # adjacent delay lines couple along their whole length;
                # the coincidence window must cover the routing skew
                # between the two shares' transitions
                window = max(150, int(3 * self.delay_jitter_ps))
                coupling = CouplingModel(
                    self.coupling_pairs,
                    coefficient=coupling_coefficient,
                    window_ps=window,
                )
            recorder = PowerRecorder(
                n,
                self.total_cycles * self.period_ps,
                bin_ps=self.bin_ps,
                weights=self._wire_weights(),
                coupling=coupling,
            )

        h = ClockedHarness(
            self.circuit,
            n,
            self.period_ps,
            check_timing=False,
            pack_traces=resolve_pack_traces(pack_traces, n, recorder),
        )
        rand0 = self._round_rand(prng, n)
        l0, r0, cd1 = self._initial_state(pt_s, key_s)
        self._preload(h, l0, r0, cd1, rand0)

        if self.variant == "ff":
            self._run_ff(h, recorder, prng, rand0)
        else:
            self._run_pd(h, recorder, prng, rand0)

        ct = self._read_ciphertext(h)
        power = recorder.power if recorder is not None else None
        return ct, power

    def _run_ff(
        self,
        h: ClockedHarness,
        rec: Optional[PowerRecorder],
        prng: RandomnessSource,
        rand0: np.ndarray,
    ) -> None:
        c = self.circuit
        ctrl = self.ctrl
        n = h.n_traces
        ev = self._ctrl_event
        for rnd in range(N_ROUNDS):
            rand_bits = rand0 if rnd == 0 else self._round_rand(prng, n)
            shift_next = np.full(n, _rot_amounts(rnd) == 2)
            # E0: state regs sampled (en_state from prev c6), gadget reset
            h.step(
                self._rand_events(rand_bits)
                + [
                    ev(self.en_state, False),
                    ev(ctrl.en_inreg, True),
                    (10, self.shift2, shift_next),
                ],
                recorder=rec,
                reset_groups=("gadget",),
            )
            h.step([ev(ctrl.en_inreg, False), ev(ctrl.en_deg2, True)], recorder=rec)
            h.step(
                [ev(ctrl.en_deg2, False), ev(ctrl.en_deg3, True), ev(ctrl.en_muxreg, True)],
                recorder=rec,
            )
            h.step(
                [ev(ctrl.en_deg3, False), ev(ctrl.en_muxreg, False), ev(ctrl.en_mux2, True)],
                recorder=rec,
            )
            if self.sbox_output_register:
                h.step(
                    [ev(ctrl.en_mux2, False), ev(ctrl.en_outreg, True)],
                    recorder=rec,
                )
                h.step([ev(ctrl.en_outreg, False)], recorder=rec)
                h.step([ev(self.en_state, True)], recorder=rec)
            else:
                # 6-cycle round: stage 3 feeds the round XOR directly
                h.step([ev(ctrl.en_mux2, False)], recorder=rec)
                h.step([ev(self.en_state, True)], recorder=rec)
        # final edge: state registers latch round 16's result
        h.step([ev(self.en_state, False)], recorder=rec)

    def _run_pd(
        self,
        h: ClockedHarness,
        rec: Optional[PowerRecorder],
        prng: RandomnessSource,
        rand0: np.ndarray,
    ) -> None:
        ctrl = self.ctrl
        n = h.n_traces
        ev = self._ctrl_event
        for rnd in range(N_ROUNDS):
            rand_bits = rand0 if rnd == 0 else self._round_rand(prng, n)
            shift_next = np.full(n, _rot_amounts(rnd) == 2)
            # c0: stage A settles; mid regs sample at the next edge
            h.step(
                self._rand_events(rand_bits)
                + [
                    ev(ctrl.en_round, False),
                    ev(ctrl.en_mid, True),
                    (10, self.shift2, shift_next),
                ],
                recorder=rec,
            )
            # c1: stage B settles; round edge next
            h.step([ev(ctrl.en_mid, False), ev(ctrl.en_round, True)], recorder=rec)
        h.step([ev(ctrl.en_round, False)], recorder=rec)

    def _read_ciphertext(self, h: ClockedHarness) -> np.ndarray:
        ct_shares = []
        for j in range(2):
            r = np.stack([h.ff_state(f"R_s{j}_{i}") for i in range(32)])
            l = np.stack([h.ff_state(f"L_s{j}_{i}") for i in range(32)])
            ct_shares.append(permute_rows(np.concatenate([r, l], axis=0), FP))
        return ct_shares[0] ^ ct_shares[1]


@dataclass
class DESTraceSource:
    """Fixed-vs-random trace source over a netlist engine.

    Plugs into :func:`repro.leakage.acquisition.run_campaign`: each
    batch mixes fixed-plaintext and random-plaintext encryptions under
    one fixed key (masked freshly every operation), exactly the paper's
    TVLA protocol (Sec. VII).
    """

    engine: MaskedDESNetlistEngine
    fixed_plaintext: int
    key: int
    prng_enabled: bool = True
    coupling_coefficient: float = 0.0
    verify: bool = False
    #: Execution mode per batch (:mod:`repro.sim.bitpack`); ``None``
    #: defers to the engine's default.  Campaign runners overwrite this
    #: attribute with :attr:`CampaignConfig.pack_traces`.
    pack_traces: "bool | str | None" = None

    def __post_init__(self) -> None:
        self.n_samples = self.engine.n_samples

    def warmup(self):
        """Compile every event schedule the campaign will replay.

        Simulates one throwaway trace (fixed plaintext, fixed seed) so
        the clocked harness's per-cycle schedules are in the compiled
        cache before the campaign — or a forked worker pool — starts.
        Returns the circuits whose caches the campaign runner pins.
        """
        self.acquire(np.ones(1, dtype=bool), np.random.default_rng(0))
        return (self.engine.circuit,)

    def acquire(self, fixed_mask: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        from .bits import int_to_bitarray
        from .reference import des_encrypt_bits

        n = fixed_mask.shape[0]
        pts = rng.integers(0, 1 << 63, size=n, dtype=np.uint64)
        pts = (pts << np.uint64(1)) | rng.integers(0, 2, size=n, dtype=np.uint64)
        pts[fixed_mask] = np.uint64(self.fixed_plaintext)
        pt_bits = int_to_bitarray(pts, 64)
        key_bits = int_to_bitarray(np.uint64(self.key), 64, n)
        prng = RandomnessSource(
            int(rng.integers(0, 2**63)), enabled=self.prng_enabled
        )
        ct, power = self.engine.run_batch(
            pt_bits,
            key_bits,
            prng,
            record=True,
            coupling_coefficient=self.coupling_coefficient,
            pack_traces=self.pack_traces,
        )
        if self.verify:
            ref = des_encrypt_bits(pt_bits, key_bits)
            if not np.array_equal(ct, ref):
                raise AssertionError("netlist engine ciphertext mismatch")
        return power
