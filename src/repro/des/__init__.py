"""DES substrate: reference cipher, ANF decomposition, masked cores.

Everything the paper's case study (Sec. IV) needs: the unprotected
round-based DES (golden model), the mini-S-box/MUX decomposition with
ANF (Eq. 3/4), the share-level masked model, and the two gate-level
masked engines (secAND2-FF and secAND2-PD).
"""

from .tables import E, FP, IP, N_ROUNDS, P, PC1, PC2, SBOXES, SHIFTS
from .bits import (
    bitarray_to_ints,
    bits_to_int,
    int_to_bitarray,
    int_to_bits,
    permute_int,
    permute_rows,
)
from .keyschedule import masked_round_keys_bits, round_keys, round_keys_bits
from .reference import (
    des_decrypt,
    des_encrypt,
    des_encrypt_bits,
    feistel,
    sbox_lookup,
    tdes_decrypt,
    tdes_encrypt,
)
from .sbox_anf import (
    ALL_DEG2,
    ALL_DEG3,
    ALL_MONOMIALS,
    MiniSboxANF,
    SboxDecomposition,
    anf_of_row,
    decompose_sbox,
    evaluate_row_anf,
    mobius_transform,
    monomial_name,
    select_products,
)
from .masked_core import SBOX_RANDOM_BITS, MaskedDES, MaskedSboxModel
from .masked_netlist import (
    PD_MINI_SCHEDULE,
    PD_SELECT_SCHEDULE,
    SBOX_N_SECAND2,
    build_sbox_ff,
    build_sbox_pd,
    build_standalone_sbox,
)
from .engines import DESTraceSource, MaskedDESNetlistEngine
from .selective_refresh import (
    RefreshPlan,
    greedy_minimal_refresh,
    refresh_bits_used,
    uniformity_defect,
)

__all__ = [
    "E",
    "FP",
    "IP",
    "N_ROUNDS",
    "P",
    "PC1",
    "PC2",
    "SBOXES",
    "SHIFTS",
    "bitarray_to_ints",
    "bits_to_int",
    "int_to_bitarray",
    "int_to_bits",
    "permute_int",
    "permute_rows",
    "masked_round_keys_bits",
    "round_keys",
    "round_keys_bits",
    "des_decrypt",
    "des_encrypt",
    "des_encrypt_bits",
    "feistel",
    "sbox_lookup",
    "tdes_decrypt",
    "tdes_encrypt",
    "ALL_DEG2",
    "ALL_DEG3",
    "ALL_MONOMIALS",
    "MiniSboxANF",
    "SboxDecomposition",
    "anf_of_row",
    "decompose_sbox",
    "evaluate_row_anf",
    "mobius_transform",
    "monomial_name",
    "select_products",
    "SBOX_RANDOM_BITS",
    "MaskedDES",
    "MaskedSboxModel",
    "PD_MINI_SCHEDULE",
    "PD_SELECT_SCHEDULE",
    "SBOX_N_SECAND2",
    "build_sbox_ff",
    "build_sbox_pd",
    "build_standalone_sbox",
    "DESTraceSource",
    "MaskedDESNetlistEngine",
    "RefreshPlan",
    "greedy_minimal_refresh",
    "refresh_bits_used",
    "uniformity_defect",
]
