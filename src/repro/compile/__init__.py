"""repro.compile — automated glitch-safe masking compiler (Sec. III-IV).

Turns an *unmasked* specification (truth table, ANF, or combinational
:class:`~repro.netlist.circuit.Circuit`) into a first-order masked
netlist built from the paper's secAND2 gadgets, through four passes:

1. :mod:`~repro.compile.lower` — ANF extraction and product-tree
   lowering into the paper's S-box shape (inner core chains + MUX
   stage);
2. :mod:`~repro.compile.refresh` — dependency-tracking refresh
   insertion, optionally minimised by the DES selective-refresh greedy
   loop (:mod:`repro.core.refresh_search`);
3. :mod:`~repro.compile.schedule` — arrival-order scheduling: FF
   pipeline layering, or PD DelayUnit sizing solved from the netlist
   timing model;
4. :mod:`~repro.compile.certify` — the certification pipeline (static
   safety, exact glitch-extended probing of every arrival class,
   uniformity audit, optional TVLA spot-check, cost report).

Entry point::

    from repro.compile import compile_spec, des_sbox_spec
    result = compile_spec(des_sbox_spec(0), style="pd", margin_ps=50)
    cert = result.certify()
    assert cert.ok

or from the command line: ``python -m repro compile --des-sbox 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..obs.trace import trace
from .certify import (
    Certificate,
    CostReport,
    SiteClass,
    certify_netlist,
    site_classes,
    site_spec_for_arrivals,
)
from .emit import CompiledNetlist, emit_ff, emit_pd
from .lower import CompileError, LoweredPlan, RowPlan, lower
from .model import PlanModel, uniformity_defect
from .refresh import (
    REFRESH_MODES,
    RefreshChoice,
    RefreshPosition,
    plan_refresh,
    refresh_positions,
    static_required,
)
from .schedule import (
    MAX_N_LUTS,
    FFSchedule,
    PDSchedule,
    ScheduleError,
    ff_layers,
    pd_schedule,
    solve_pd_n_luts,
    stagger_units,
)
from .spec import (
    FunctionSpec,
    aes_sbox_spec,
    des_sbox_spec,
    mobius_transform,
    present_sbox_spec,
)

__all__ = [
    "CompileError",
    "CompileResult",
    "CompiledNetlist",
    "Certificate",
    "CostReport",
    "FunctionSpec",
    "LoweredPlan",
    "PlanModel",
    "RefreshChoice",
    "ScheduleError",
    "aes_sbox_spec",
    "compile_spec",
    "certify_netlist",
    "des_sbox_spec",
    "lower",
    "plan_refresh",
    "present_sbox_spec",
    "solve_pd_n_luts",
]


@dataclass
class CompileResult:
    """A compiled netlist plus everything needed to certify it."""

    netlist: CompiledNetlist
    margin_ps: int
    #: DelayUnit size actually used (PD) — solver output or the pinned
    #: request; ``None`` for the FF style.
    n_luts: Optional[int] = None
    #: True when the solver chose :attr:`n_luts` (vs a user pin).
    n_luts_solved: bool = False

    @property
    def plan(self) -> LoweredPlan:
        return self.netlist.plan

    @property
    def circuit(self):
        return self.netlist.circuit

    @property
    def style(self) -> str:
        return self.netlist.style

    def certify(self, **kwargs) -> Certificate:
        """Run the certification pipeline (see :func:`certify_netlist`)."""
        kwargs.setdefault("margin_ps", self.margin_ps)
        return certify_netlist(self.netlist, **kwargs)

    def to_json_dict(self) -> dict:
        return {
            "name": self.plan.spec.name,
            "style": self.style,
            "n_luts": self.n_luts,
            "n_luts_solved": self.n_luts_solved,
            "requested_margin_ps": self.margin_ps,
            "n_secand2": self.netlist.n_secand2,
            "fresh_bits": self.netlist.fresh_bits,
            "n_cycles": self.netlist.n_cycles,
            "refresh": self.netlist.refresh.to_json_dict(),
            "schedule": self.netlist.schedule.to_json_dict(),
        }


def _reject_unschedulable(netlist, plan, choice, margin_ps, n_luts, secand2_style):
    """Pinned DelayUnit budget fails the static check: build the full
    rejection — violations, the solver's actual requirement, and an
    exact-verifier counterexample for the worst violating site."""
    from ..netlist.safety import check_secand2_ordering
    from ..verify.report import verify

    violations = check_secand2_ordering(netlist.circuit, min_margin_ps=margin_ps)
    if not violations:
        return netlist
    required = None
    try:
        required, _ = solve_pd_n_luts(
            plan, choice, margin_ps, secand2_style=secand2_style
        )
    except ScheduleError as exc:
        required = exc.required_n_luts
    worst = min(violations, key=lambda v: v.margin_ps)
    counterexample = None
    site_spec = None
    lo = min(worst.at_x0, worst.at_x1, worst.at_y0, worst.at_y1)
    arrivals = tuple(
        int(round(a - lo))
        for a in (worst.at_x0, worst.at_x1, worst.at_y0, worst.at_y1)
    )
    spec = site_spec_for_arrivals(
        arrivals, name=f"{plan.spec.name}_reject_{worst.gadget}"
    )
    result = verify(spec)
    if not result.secure:
        counterexample = result.leaks[0]
        site_spec = spec
    hint = "" if required is None else f"; solver requires n_luts={required}"
    raise ScheduleError(
        f"{plan.spec.name}: n_luts={n_luts} leaves {len(violations)} "
        f"ordering violations at margin {margin_ps} ps "
        f"(worst: {worst}){hint}",
        violations=violations,
        required_n_luts=required,
        counterexample=counterexample,
        site_spec=site_spec,
    )


def compile_spec(
    spec: Union[FunctionSpec, Sequence[int]],
    style: str = "pd",
    margin_ps: int = 50,
    n_luts: Optional[int] = None,
    refresh: str = "auto",
    select_vars: Optional[Sequence[int]] = None,
    all_products: Optional[bool] = None,
    secand2_style: str = "lut",
    refresh_n_per_input: int = 800,
    seed: int = 0,
) -> CompileResult:
    """Compile an unmasked function into a first-order masked netlist.

    Args:
        spec: A :class:`FunctionSpec` or a raw truth table.
        style: ``"pd"`` (path-delay DelayUnits, the paper's low-latency
            design) or ``"ff"`` (register-pipelined secAND2-FF).
        margin_ps: Required ``y1`` ordering margin for the PD static
            check; the DelayUnit solver sizes against it.
        n_luts: Pin the DelayUnit size instead of solving.  A pin too
            small for the requested margin raises
            :class:`ScheduleError` carrying the static violations and
            an exact-verifier counterexample.
        refresh: ``"full"`` / ``"static"`` / ``"selective"`` / ``"auto"``
            (see :func:`repro.compile.refresh.plan_refresh`).
        select_vars / all_products: Lowering overrides
            (see :func:`repro.compile.lower.lower`).

    Returns:
        A :class:`CompileResult`; call :meth:`CompileResult.certify`
        for the certification pipeline.
    """
    if not isinstance(spec, FunctionSpec):
        spec = FunctionSpec.from_truth_table(spec)
    if style not in ("pd", "ff"):
        raise CompileError(f'style must be "pd" or "ff", got {style!r}')

    with trace("compile.lower", spec=spec.name, style=style):
        plan = lower(spec, select_vars=select_vars, all_products=all_products)
    with trace("compile.refresh", mode=refresh):
        choice = plan_refresh(
            plan,
            mode=refresh,
            n_per_input=refresh_n_per_input,
            seed=seed,
        )

    if style == "ff":
        with trace("compile.emit", style="ff"):
            netlist = emit_ff(plan, choice, secand2_style=secand2_style)
        return CompileResult(netlist=netlist, margin_ps=margin_ps)

    if n_luts is None:
        with trace("compile.schedule", margin_ps=margin_ps):
            solved, _ = solve_pd_n_luts(
                plan, choice, margin_ps, secand2_style=secand2_style
            )
            schedule = pd_schedule(plan, solved, margin_ps)
        with trace("compile.emit", style="pd"):
            netlist = emit_pd(
                plan, choice, schedule, secand2_style=secand2_style
            )
        return CompileResult(
            netlist=netlist,
            margin_ps=margin_ps,
            n_luts=solved,
            n_luts_solved=True,
        )

    with trace("compile.schedule", margin_ps=margin_ps, n_luts=int(n_luts)):
        schedule = pd_schedule(plan, int(n_luts), margin_ps)
    with trace("compile.emit", style="pd"):
        netlist = emit_pd(plan, choice, schedule, secand2_style=secand2_style)
    _reject_unschedulable(netlist, plan, choice, margin_ps, n_luts, secand2_style)
    return CompileResult(netlist=netlist, margin_ps=margin_ps, n_luts=int(n_luts))
