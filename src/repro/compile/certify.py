"""Pass 4: the certification pipeline.

A compiled netlist is *certified*, not trusted: every claim the
compiler makes is re-checked by the repo's independent analysis
engines, strongest evidence first.

1. **Functional** — the netlist, driven share-accurately through
   :class:`~repro.sim.clocking.ClockedHarness`, recombines to the spec
   table on *every* input under multiple random sharings, and its
   output shares equal the :class:`~repro.compile.model.PlanModel`
   golden shares bit-for-bit.
2. **Static safety** — :func:`repro.netlist.safety.check_secand2_ordering`
   over the real :mod:`repro.netlist.timing` arrival times (PD style),
   or a valid-cycle dynamic program proving every gadget's ``y1`` is a
   registered value landing strictly after its other operands (FF
   style).
3. **Exact verification** — the glitch-extended probing verifier
   (:func:`repro.verify.report.verify`).  The default ``"sites"`` mode
   groups the netlist's secAND2 cores by their *normalised arrival
   pattern* and verifies one standalone core per pattern — the
   gadget-by-gadget composition argument the paper itself makes
   (Sec. IV).  ``"whole"`` mode runs the verifier on the entire
   netlist; note that even the paper's hand-built compositions fail
   this strictly stronger check (see the ``pchain3_pd`` preset: chained
   gadgets exhibit a from-reset transient bias that is invisible to
   first-order TVLA on power but visible to per-wire exact probes), so
   it is only expected to pass for single-gadget netlists.
4. **Uniformity audit** — the refresh choice's empirical share-
   distribution defect stays within a factor of the full-refresh floor.
5. **TVLA spot-check** (optional) — a sampled fixed-vs-random campaign
   over the whole netlist must show no first-order t-peak.

The certificate also carries a cost report (GE / FF / LUT / fresh
randomness / latency / fmax) built from :mod:`repro.netlist.area` and
:mod:`repro.netlist.timing` — the Table III quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.gadgets import secand2_core_on_wires
from ..netlist import area as area_mod
from ..netlist import timing as timing_mod
from ..netlist.circuit import Circuit
from ..netlist.safety import check_secand2_ordering, ordering_margins
from ..netlist.timing import arrival_times
from ..obs.trace import trace
from ..verify.probes import MAX_INPUT_BITS, GadgetSpec
from ..verify.report import LeakingProbe, VerificationResult, verify
from .emit import CompiledNetlist
from .lower import CompileError
from .model import PlanModel, uniformity_defect

__all__ = [
    "CostReport",
    "SiteClass",
    "Certificate",
    "site_spec_for_arrivals",
    "site_classes",
    "certify_netlist",
]

EXACT_MODES = ("sites", "whole", "none")


# ----------------------------------------------------------------------
# cost report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CostReport:
    """Table III-style cost summary of one compiled netlist."""

    name: str
    style: str
    area_ge: float
    area_ge_no_delay: float
    n_ff: int
    n_lut: int
    n_lut_delay: int
    n_secand2: int
    fresh_bits: int
    n_cycles: int
    critical_path_ps: int
    max_freq_mhz: float

    @classmethod
    def from_netlist(cls, netlist: CompiledNetlist) -> "CostReport":
        util = area_mod.report(netlist.circuit)
        t = timing_mod.analyze(netlist.circuit)
        return cls(
            name=netlist.plan.spec.name,
            style=netlist.style,
            area_ge=util.area_ge,
            area_ge_no_delay=util.area_ge_no_delay,
            n_ff=util.n_ff,
            n_lut=util.n_lut,
            n_lut_delay=util.n_lut_delay,
            n_secand2=netlist.n_secand2,
            fresh_bits=netlist.fresh_bits,
            n_cycles=netlist.n_cycles,
            critical_path_ps=t.critical_path_ps,
            max_freq_mhz=t.max_freq_mhz,
        )

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "style": self.style,
            "area_ge": round(self.area_ge, 1),
            "area_ge_no_delay": round(self.area_ge_no_delay, 1),
            "n_ff": self.n_ff,
            "n_lut": self.n_lut,
            "n_lut_delay": self.n_lut_delay,
            "n_secand2": self.n_secand2,
            "fresh_bits": self.fresh_bits,
            "n_cycles": self.n_cycles,
            "critical_path_ps": self.critical_path_ps,
            "max_freq_mhz": round(self.max_freq_mhz, 1),
        }

    def row(self) -> str:
        return (
            f"{self.name:<16} {self.style:<3} "
            f"{self.area_ge:>8.0f} GE  {self.n_ff:>4} FF {self.n_lut:>5} LUT  "
            f"{self.n_secand2:>3} secAND2  {self.fresh_bits:>3} rand  "
            f"{self.n_cycles} cyc  {self.max_freq_mhz:>6.1f} MHz"
        )


# ----------------------------------------------------------------------
# per-site exact verification
# ----------------------------------------------------------------------
@dataclass
class SiteClass:
    """One equivalence class of secAND2 cores by arrival pattern.

    ``arrivals`` is the normalised ``(x0, x1, y0, y1)`` arrival tuple
    (ps, minimum subtracted); every core in the netlist whose operands
    arrive in this pattern shares the verification verdict of the
    standalone core driven with exactly these offsets.
    """

    arrivals: Tuple[int, int, int, int]
    tags: Tuple[str, ...]
    result: Optional[VerificationResult] = None

    @property
    def n_sites(self) -> int:
        return len(self.tags)

    @property
    def secure(self) -> Optional[bool]:
        return None if self.result is None else self.result.secure

    def to_json_dict(self) -> dict:
        return {
            "arrivals_ps": list(self.arrivals),
            "n_sites": self.n_sites,
            "example_tags": list(self.tags[:4]),
            "secure": self.secure,
            "n_leaking": 0 if self.result is None else self.result.n_leaking,
            "elapsed_s": 0.0 if self.result is None else self.result.elapsed_s,
        }


def site_spec_for_arrivals(
    arrivals: Tuple[int, int, int, int],
    name: str = "site",
    secand2_style: str = "lut",
) -> GadgetSpec:
    """A standalone secAND2 core driven with the given arrival offsets.

    This is the canonical object the compositional argument verifies:
    if the core is exactly secure under this arrival pattern, every
    in-netlist instance whose operands settle in the same pattern
    inherits the verdict (the glitch-extended probe of any wire in the
    core's cone sees the same transition structure).
    """
    c = Circuit(f"site_{name}")
    x0, x1, y0, y1 = (c.add_input(n) for n in ("x0", "x1", "y0", "y1"))
    z = secand2_core_on_wires(c, x0, x1, y0, y1, "site", secand2_style)
    c.mark_output("z0", z.s0)
    c.mark_output("z1", z.s1)
    c.check()
    spec = GadgetSpec(
        name=name,
        circuit=c,
        secrets=(("x", ("x0", "x1")), ("y", ("y0", "y1"))),
        schedule=tuple(zip(("x0", "x1", "y0", "y1"), arrivals)),
        n_cycles=1,
    )
    spec.validate()
    return spec


def site_classes(netlist: CompiledNetlist) -> List[SiteClass]:
    """Group the netlist's secAND2 cores by normalised arrival tuple."""
    c = netlist.circuit
    at = arrival_times(c)
    groups: Dict[Tuple[int, int, int, int], List[str]] = {}
    for g in c.annotations.get("secand2", []):
        arr = [at[g[pin]] for pin in ("x0", "x1", "y0", "y1")]
        lo = min(arr)
        key = tuple(int(round(a - lo)) for a in arr)
        groups.setdefault(key, []).append(g["tag"])
    return [
        SiteClass(arrivals=key, tags=tuple(tags))
        for key, tags in sorted(groups.items())
    ]


# ----------------------------------------------------------------------
# FF valid-cycle layering check
# ----------------------------------------------------------------------
def _valid_cycles(c: Circuit) -> Dict[int, int]:
    """Valid-from cycle of every wire: inputs 0, DFF = D + 1, comb = max.

    The emitted pipelines are acyclic through their registers, so a
    bounded relaxation converges; a residual change after the bound
    means a register feedback loop, which the compiler never emits.
    """
    valid = {w: 0 for w in c.inputs}
    for g in c.gates:
        valid.setdefault(g.output, 0)
    for _ in range(len(c.gates) + 1):
        changed = False
        for g in c.gates:
            if g.is_ff:
                v = valid.get(g.inputs[0], 0) + 1
            else:
                v = max((valid.get(w, 0) for w in g.inputs), default=0)
            if v > valid[g.output]:
                valid[g.output] = v
                changed = True
        if not changed:
            return valid
    raise CompileError("register feedback loop in emitted netlist")


def _ff_layering(netlist: CompiledNetlist) -> dict:
    """Structural proof obligations of the FF style, per gadget site.

    Every secAND2 core must receive ``y1`` from a DFF output whose
    valid cycle is strictly after all other operands' — then within
    every cycle ``y1`` is the stable, glitch-free, last-settled value
    (the secAND2-FF condition the ``secand2_ff`` verify preset
    certifies at gadget level).
    """
    c = netlist.circuit
    valid = _valid_cycles(c)
    bad: List[str] = []
    for g in c.annotations.get("secand2", []):
        drv = c.driver_of(g["y1"])
        registered = drv is not None and drv.is_ff
        others = max(valid[g[p]] for p in ("x0", "x1", "y0"))
        if not registered or valid[g["y1"]] != others + 1:
            bad.append(g["tag"])
    n = len(c.annotations.get("secand2", []))
    return {
        "checked": True,
        "ok": not bad,
        "n_sites": n,
        "n_bad": len(bad),
        "bad_tags": bad[:8],
    }


# ----------------------------------------------------------------------
# certificate
# ----------------------------------------------------------------------
@dataclass
class Certificate:
    """The full certification verdict of one compiled netlist."""

    name: str
    style: str
    margin_ps: int
    functional: dict
    static: Optional[dict]
    layering: Optional[dict]
    exact_mode: str
    sites: List[SiteClass] = field(default_factory=list)
    #: FF style: gadget-level exact evidence — the canonical
    #: ``secand2_ff`` preset (registered ``y1``, 2 cycles) verified by
    #: the exact verifier; the layering DP extends it to every site.
    gadget_ff: Optional[dict] = None
    whole: Optional[dict] = None
    uniformity: Optional[dict] = None
    tvla: Optional[dict] = None
    cost: Optional[CostReport] = None
    #: First exact counterexample found, if any — VCD-exportable via
    #: :func:`repro.verify.report.counterexample_vcd` with
    #: :attr:`counterexample_spec`.
    counterexample: Optional[LeakingProbe] = None
    counterexample_spec: Optional[GadgetSpec] = None

    @property
    def exact_ok(self) -> bool:
        if self.exact_mode == "none":
            return True
        if self.exact_mode == "whole":
            return bool(self.whole and self.whole["secure"])
        if self.style == "ff":
            return bool(
                self.gadget_ff
                and self.gadget_ff["secure"]
                and self.layering is not None
                and self.layering["ok"]
            )
        return all(s.secure for s in self.sites)

    @property
    def ok(self) -> bool:
        checks = [self.functional["ok"], self.exact_ok]
        if self.static is not None:
            checks.append(self.static["ok"])
        if self.layering is not None:
            checks.append(self.layering["ok"])
        if self.uniformity is not None:
            checks.append(self.uniformity["ok"])
        if self.tvla is not None:
            checks.append(not self.tvla["detected"])
        return all(checks)

    def to_json_dict(self) -> dict:
        return {
            "schema": "compile_certificate/v1",
            "name": self.name,
            "style": self.style,
            "ok": self.ok,
            "requested_margin_ps": self.margin_ps,
            "functional": self.functional,
            "static": self.static,
            "layering": self.layering,
            "exact": {
                "mode": self.exact_mode,
                "ok": self.exact_ok,
                "site_classes": [s.to_json_dict() for s in self.sites],
                "gadget_ff": self.gadget_ff,
                "whole": self.whole,
            },
            "uniformity": self.uniformity,
            "tvla": self.tvla,
            "cost": None if self.cost is None else self.cost.to_json_dict(),
            "counterexample": (
                None
                if self.counterexample is None
                else self.counterexample.to_json_dict()
            ),
        }

    def render(self) -> str:
        mark = lambda ok: "PASS" if ok else "FAIL"  # noqa: E731
        lines = [
            f"{self.name} [{self.style}]: "
            f"{'CERTIFIED' if self.ok else 'REJECTED'}",
            f"  functional   {mark(self.functional['ok'])} "
            f"({self.functional['n_inputs']} inputs x "
            f"{self.functional['n_sharings']} sharings, "
            f"shares {'==' if self.functional['shares_match_model'] else '!='} model)",
        ]
        if self.static is not None:
            lines.append(
                f"  static order {mark(self.static['ok'])} "
                f"({self.static['n_sites']} sites, worst y1 margin "
                f"{self.static['min_y1_margin_ps']:g} ps >= "
                f"{self.static['required_margin_ps']} ps)"
            )
        if self.layering is not None:
            lines.append(
                f"  ff layering  {mark(self.layering['ok'])} "
                f"({self.layering['n_sites']} sites, "
                f"{self.layering['n_bad']} bad)"
            )
        if self.exact_mode == "sites":
            if self.style == "ff":
                lines.append(
                    f"  exact gadget {mark(self.exact_ok)} "
                    "(canonical secand2_ff + layering DP)"
                )
            else:
                n_sites = sum(s.n_sites for s in self.sites)
                lines.append(
                    f"  exact sites  {mark(self.exact_ok)} "
                    f"({n_sites} cores / {len(self.sites)} arrival classes)"
                )
        elif self.exact_mode == "whole":
            lines.append(
                f"  exact whole  {mark(self.exact_ok)} "
                f"({self.whole['n_probes']} probes, "
                f"{self.whole['n_leaking']} leaking)"
            )
        if self.uniformity is not None:
            lines.append(
                f"  uniformity   {mark(self.uniformity['ok'])} "
                f"(defect {self.uniformity['defect']:.4f} <= "
                f"{self.uniformity['threshold']:.4f})"
            )
        if self.tvla is not None:
            lines.append(
                f"  tvla         {mark(not self.tvla['detected'])} "
                f"(max|t1| {self.tvla['max_abs_t1']:.2f} over "
                f"{self.tvla['n_traces']} traces)"
            )
        if self.cost is not None:
            lines.append(f"  cost         {self.cost.row()}")
        if self.counterexample is not None:
            lines.append(f"  counterexample: {self.counterexample.describe()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------
def _check_functional(
    netlist: CompiledNetlist, n_sharings: int, seed: int
) -> dict:
    plan = netlist.plan
    spec = plan.spec
    size = 1 << spec.n_inputs
    n = size * n_sharings
    rng = np.random.default_rng(seed)
    idx = np.tile(np.arange(size, dtype=np.int64), n_sharings)
    bits = np.stack(
        [
            ((idx >> (spec.n_inputs - 1 - i)) & 1).astype(bool)
            for i in range(spec.n_inputs)
        ]
    )
    s1 = rng.integers(0, 2, bits.shape).astype(bool)
    s0 = bits ^ s1
    rand = rng.integers(0, 2, (max(1, netlist.fresh_bits), n)).astype(bool)
    o0, o1 = netlist.run_shares(s0, s1, rand[: max(1, netlist.fresh_bits)])

    got = np.zeros(n, dtype=np.int64)
    for b in range(spec.n_outputs):
        got |= (o0[b] ^ o1[b]).astype(np.int64) << (spec.n_outputs - 1 - b)
    table_ok = bool(np.array_equal(got, np.asarray(spec.table)[idx]))

    # golden-share comparison: spread the netlist's kept random bits
    # into the model's full position-indexed array.
    model = PlanModel(plan)
    model_rand = np.zeros((max(1, model.n_rand), n), dtype=bool)
    kept = [i for i, m in enumerate(netlist.refresh.mask) if m]
    for k, pos_idx in enumerate(kept):
        model_rand[pos_idx] = rand[k]
    m0, m1 = model(s0, s1, model_rand, refresh_mask=netlist.refresh.mask)
    shares_ok = bool(np.array_equal(o0, m0) and np.array_equal(o1, m1))

    return {
        "ok": table_ok and shares_ok,
        "n_inputs": size,
        "n_sharings": n_sharings,
        "recombines": table_ok,
        "shares_match_model": shares_ok,
    }


def _check_static(netlist: CompiledNetlist, margin_ps: int) -> dict:
    margins = ordering_margins(netlist.circuit)
    violations = check_secand2_ordering(
        netlist.circuit, min_margin_ps=margin_ps
    )
    return {
        "checked": True,
        "ok": not violations,
        "n_sites": len(margins),
        "n_violations": len(violations),
        "min_y1_margin_ps": min((m.y1_margin_ps for m in margins), default=0.0),
        "min_y0_margin_ps": min((m.y0_margin_ps for m in margins), default=0.0),
        "required_margin_ps": max(1, int(margin_ps)),
        "violations": [str(v) for v in violations[:8]],
    }


def _check_uniformity(
    netlist: CompiledNetlist, n_per_input: int, seed: int
) -> dict:
    model = PlanModel(netlist.plan)
    defect = uniformity_defect(
        model, netlist.refresh.mask, n_per_input=n_per_input, seed=seed
    )
    floor = uniformity_defect(
        model, (True,) * model.n_rand, n_per_input=n_per_input, seed=seed
    )
    threshold = 2.0 * floor + 1e-4
    return {
        "checked": True,
        "ok": defect <= threshold,
        "defect": defect,
        "floor": floor,
        "threshold": threshold,
        "n_per_input": n_per_input,
    }


def _check_tvla(netlist: CompiledNetlist, n_traces: int, seed: int) -> dict:
    from ..leakage.acquisition import CampaignConfig, detect_leakage_traces
    from ..leakage.tvla import THRESHOLD
    from ..verify.crossval import SpecTraceSource

    source = SpecTraceSource(netlist.gadget_spec())
    config = CampaignConfig(
        n_traces=n_traces,
        batch_size=min(2048, n_traces),
        noise_sigma=0.0,
        seed=seed,
        label=f"compile_{netlist.plan.spec.name}",
        n_workers=1,
    )
    detected_at, result = detect_leakage_traces(source, config, order=1)
    return {
        "checked": True,
        "detected": detected_at is not None,
        "detected_at": detected_at,
        "n_traces": result.n_traces,
        "max_abs_t1": result.max_abs(1),
        "threshold": THRESHOLD,
    }


def certify_netlist(
    netlist: CompiledNetlist,
    margin_ps: int = 50,
    exact: str = "sites",
    n_sharings: int = 2,
    uniformity_n: int = 0,
    tvla_traces: int = 0,
    seed: int = 0,
) -> Certificate:
    """Run the full certification pipeline on a compiled netlist.

    Args:
        margin_ps: Required static ``y1`` ordering margin (PD style).
        exact: ``"sites"`` (default, the compositional per-arrival-class
            argument), ``"whole"`` (entire netlist through the exact
            verifier — expected to fail for multi-gadget compositions,
            see the module docstring), or ``"none"``.
        n_sharings: Random sharings per input in the functional check.
        uniformity_n: Samples per input for the uniformity audit
            (0 = skip; pointless for ``refresh="full"`` netlists).
        tvla_traces: Trace budget for the optional TVLA spot-check
            (0 = skip).
    """
    if exact not in EXACT_MODES:
        raise CompileError(f"exact mode must be one of {EXACT_MODES}, got {exact!r}")

    with trace("certify.functional", spec=netlist.plan.spec.name):
        functional = _check_functional(netlist, n_sharings, seed)
    with trace("certify.static"):
        static = (
            _check_static(netlist, margin_ps)
            if netlist.style == "pd"
            else None
        )
        layering = _ff_layering(netlist) if netlist.style == "ff" else None
    cert = Certificate(
        name=netlist.plan.spec.name,
        style=netlist.style,
        margin_ps=margin_ps,
        functional=functional,
        static=static,
        layering=layering,
        exact_mode=exact,
        cost=CostReport.from_netlist(netlist),
    )

    with trace("certify.exact", mode=exact):
        if exact == "sites" and netlist.style == "ff":
            # one cycle-accurate gadget proof covers every site: the
            # layering DP shows each in-netlist y1 is a registered value
            # landing strictly after the other operands, which is exactly
            # the configuration the canonical preset verifies.
            from ..verify.presets import preset_spec

            result = verify(preset_spec("secand2_ff"))
            cert.gadget_ff = {
                "secure": result.secure,
                "n_probes": result.n_probes,
                "elapsed_s": result.elapsed_s,
            }
        elif exact == "sites":
            cert.sites = site_classes(netlist)
            for site in cert.sites:
                spec = site_spec_for_arrivals(
                    site.arrivals,
                    name=f"{cert.name}_{cert.style}_site_{site.tags[0]}",
                )
                site.result = verify(spec)
                if not site.result.secure and cert.counterexample is None:
                    cert.counterexample = site.result.leaks[0]
                    cert.counterexample_spec = spec
        elif exact == "whole":
            spec = netlist.gadget_spec()
            if spec.n_input_bits > MAX_INPUT_BITS:
                raise CompileError(
                    f"{cert.name}: {spec.n_input_bits} input bits exceed the "
                    f"exact verifier's {MAX_INPUT_BITS}-bit budget; use "
                    'exact="sites"'
                )
            result = verify(spec)
            cert.whole = {
                "secure": result.secure,
                "n_probes": result.n_probes,
                "n_leaking": result.n_leaking,
                "n_assignments": result.n_assignments,
                "elapsed_s": result.elapsed_s,
            }
            if not result.secure:
                cert.counterexample = result.leaks[0]
                cert.counterexample_spec = spec

    if uniformity_n > 0:
        with trace("certify.uniformity", n=uniformity_n):
            cert.uniformity = _check_uniformity(netlist, uniformity_n, seed)
    if tvla_traces > 0:
        with trace("certify.tvla", n_traces=tvla_traces):
            cert.tvla = _check_tvla(netlist, tvla_traces, seed)
    return cert
