"""Unmasked function specifications — the compiler's input format.

A :class:`FunctionSpec` is a plain truth table over ``n_inputs`` boolean
variables with ``n_outputs`` boolean outputs, plus the naming/bit
conventions the rest of the pipeline relies on:

* input variable ``i`` is bit ``n_inputs - 1 - i`` of the truth-table
  index (variable 0 is the MSB — the convention of
  :mod:`repro.des.sbox_anf`, where the row tables are indexed by
  ``x1 x2 x3 x4``);
* output bit ``b`` is bit ``n_outputs - 1 - b`` of each table entry
  (output 0 is the MSB, matching the hand-built engines' ``y0..y3``).

Specs can be built from a raw table (:meth:`FunctionSpec.from_truth_table`),
from an ANF monomial list (:meth:`FunctionSpec.from_anf`), or extracted
from an existing *unmasked* combinational :class:`~repro.netlist.circuit.Circuit`
(:meth:`FunctionSpec.from_circuit`).  The cipher S-boxes the paper's
engines implement are available as ready-made presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "MAX_SPEC_INPUTS",
    "FunctionSpec",
    "mobius_transform",
    "anf_to_table",
    "des_sbox_spec",
    "present_sbox_spec",
    "aes_sbox_spec",
]

#: Truth tables are dense (2^n entries) and the certifier enumerates
#: all unshared inputs, so cap the spec width well before that becomes
#: unreasonable.  The AES S-box (n=8) is the largest paper target.
MAX_SPEC_INPUTS = 12


def mobius_transform(table: Sequence[int], n: int) -> Tuple[int, ...]:
    """ANF coefficients of a single-output truth table (any ``n``).

    ``table[idx]`` is the function value at input index ``idx`` (bit
    conventions as in the module docstring); the result ``coef[mask]``
    is 1 iff the monomial whose variable set is ``mask`` (same bit
    convention) appears in the ANF.  Generalises the 4-variable
    transform in :mod:`repro.des.sbox_anf` to arbitrary width.
    """
    size = 1 << n
    if len(table) != size:
        raise ValueError(f"table must have {size} entries, got {len(table)}")
    coef = [v & 1 for v in table]
    for i in range(n):
        step = 1 << i
        for idx in range(size):
            if idx & step:
                coef[idx] ^= coef[idx ^ step]
    return tuple(coef)


def anf_to_table(
    monomials: Sequence[int], n: int, constant: int = 0
) -> Tuple[int, ...]:
    """Evaluate an ANF (set of monomial masks + constant) to a table."""
    out = []
    for idx in range(1 << n):
        v = constant & 1
        for mask in monomials:
            if (idx & mask) == mask:
                v ^= 1
        out.append(v)
    return tuple(out)


@dataclass(frozen=True)
class FunctionSpec:
    """An unmasked boolean function ``{0,1}^n -> {0,1}^m``.

    Attributes:
        name: Label used in netlist/report names.
        n_inputs: Number of input variables.
        n_outputs: Number of output bits.
        table: ``2**n_inputs`` entries, each an ``m``-bit integer.
        preferred_select_vars: Variables the lowering pass should use as
            MUX selects when the function is wider than the 4-variable
            inner core (DES uses the outer bits ``x0``/``x5``).
    """

    name: str
    n_inputs: int
    n_outputs: int
    table: Tuple[int, ...]
    preferred_select_vars: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not 1 <= self.n_inputs <= MAX_SPEC_INPUTS:
            raise ValueError(
                f"n_inputs must be in 1..{MAX_SPEC_INPUTS}, got {self.n_inputs}"
            )
        if self.n_outputs < 1:
            raise ValueError("n_outputs must be >= 1")
        if len(self.table) != 1 << self.n_inputs:
            raise ValueError(
                f"table must have {1 << self.n_inputs} entries, "
                f"got {len(self.table)}"
            )
        limit = 1 << self.n_outputs
        for idx, v in enumerate(self.table):
            if not 0 <= v < limit:
                raise ValueError(
                    f"table[{idx}] = {v} out of range for "
                    f"{self.n_outputs} output bits"
                )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_truth_table(
        cls,
        table: Sequence[int],
        n_outputs: Optional[int] = None,
        name: str = "func",
        preferred_select_vars: Optional[Sequence[int]] = None,
    ) -> "FunctionSpec":
        """Spec from a dense truth table (``n`` inferred from length)."""
        size = len(table)
        n = size.bit_length() - 1
        if size != 1 << n or size < 2:
            raise ValueError(f"table length {size} is not a power of two >= 2")
        if n_outputs is None:
            n_outputs = max(1, max(int(v) for v in table).bit_length())
        return cls(
            name=name,
            n_inputs=n,
            n_outputs=n_outputs,
            table=tuple(int(v) for v in table),
            preferred_select_vars=(
                None
                if preferred_select_vars is None
                else tuple(preferred_select_vars)
            ),
        )

    @classmethod
    def from_anf(
        cls,
        outputs: Sequence[Sequence[int]],
        n_inputs: int,
        constants: Optional[Sequence[int]] = None,
        name: str = "anf",
        preferred_select_vars: Optional[Sequence[int]] = None,
    ) -> "FunctionSpec":
        """Spec from per-output monomial masks (+ optional constants).

        ``outputs[b]`` lists the monomial masks of output bit ``b``
        (bit conventions as in the module docstring).
        """
        m = len(outputs)
        if m < 1:
            raise ValueError("need at least one output")
        if constants is None:
            constants = [0] * m
        tables = [
            anf_to_table(mons, n_inputs, constant=c)
            for mons, c in zip(outputs, constants)
        ]
        table = tuple(
            int(
                sum(
                    tables[b][idx] << (m - 1 - b)
                    for b in range(m)
                )
            )
            for idx in range(1 << n_inputs)
        )
        return cls(
            name=name,
            n_inputs=n_inputs,
            n_outputs=m,
            table=table,
            preferred_select_vars=(
                None
                if preferred_select_vars is None
                else tuple(preferred_select_vars)
            ),
        )

    @classmethod
    def from_circuit(cls, circuit, name: Optional[str] = None) -> "FunctionSpec":
        """Extract the truth table of an unmasked combinational circuit.

        Input variable order is the circuit's primary-input order and
        output bit order the circuit's output order.  Circuits with
        flip-flops are rejected — the compiler masks combinational
        functions; sequential control belongs outside the S-box.
        """
        from ..sim.vectorsim import VectorSimulator

        if circuit.ff_gates():
            raise ValueError(
                f"'{circuit.name}' contains flip-flops; "
                "from_circuit only accepts combinational functions"
            )
        n = len(circuit.inputs)
        if not 1 <= n <= MAX_SPEC_INPUTS:
            raise ValueError(
                f"circuit has {n} inputs; supported range is "
                f"1..{MAX_SPEC_INPUTS}"
            )
        out_names = list(circuit.outputs)
        m = len(out_names)
        if m < 1:
            raise ValueError(f"'{circuit.name}' has no outputs")
        size = 1 << n
        idx = np.arange(size, dtype=np.int64)
        sim = VectorSimulator(circuit, n_traces=size)
        sim.evaluate_combinational(
            {
                wire: ((idx >> (n - 1 - i)) & 1).astype(bool)
                for i, wire in enumerate(circuit.inputs)
            }
        )
        values = sim.output_values()
        table = np.zeros(size, dtype=np.int64)
        for b, out in enumerate(out_names):
            table |= values[out].astype(np.int64) << (m - 1 - b)
        return cls(
            name=name if name is not None else circuit.name,
            n_inputs=n,
            n_outputs=m,
            table=tuple(int(v) for v in table),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def output_bit_table(self, b: int) -> Tuple[int, ...]:
        """Single-output truth table of output bit ``b``."""
        shift = self.n_outputs - 1 - b
        return tuple((v >> shift) & 1 for v in self.table)

    def anf(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-output ANF coefficient vectors (index = monomial mask)."""
        return tuple(
            mobius_transform(self.output_bit_table(b), self.n_inputs)
            for b in range(self.n_outputs)
        )

    def degree(self) -> int:
        """Algebraic degree over all outputs."""
        deg = 0
        for coef in self.anf():
            for mask, c in enumerate(coef):
                if c and mask:
                    deg = max(deg, bin(mask).count("1"))
        return deg

    def evaluate(self, idx: int) -> int:
        return self.table[idx]


# ----------------------------------------------------------------------
# paper targets
# ----------------------------------------------------------------------
def des_sbox_spec(index: int) -> FunctionSpec:
    """DES S-box ``index`` (0..7) as a 6-in/4-out spec.

    Variable order matches the engines: ``x0 x1 x2 x3 x4 x5`` with the
    classic DES row bits ``(x0, x5)`` flagged as the preferred MUX
    selects, so the lowering pass reproduces the hand-built
    4-mini-S-box + MUX decomposition.
    """
    from ..des.reference import sbox_lookup

    if not 0 <= index < 8:
        raise ValueError(f"DES S-box index must be 0..7, got {index}")
    return FunctionSpec(
        name=f"des_sbox{index}",
        n_inputs=6,
        n_outputs=4,
        table=tuple(sbox_lookup(index, v) for v in range(64)),
        preferred_select_vars=(0, 5),
    )


def present_sbox_spec() -> FunctionSpec:
    """The PRESENT 4-bit S-box (degree 3, fits the inner core alone)."""
    from ..present.reference import SBOX

    return FunctionSpec(
        name="present_sbox", n_inputs=4, n_outputs=4, table=tuple(SBOX)
    )


def aes_sbox_spec() -> FunctionSpec:
    """The AES S-box as an 8-in/8-out spec (4 select vars, 16 rows)."""
    from ..aes.reference import SBOX

    return FunctionSpec(
        name="aes_sbox", n_inputs=8, n_outputs=8, table=tuple(SBOX)
    )
