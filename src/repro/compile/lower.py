"""Pass 1: ANF extraction + product-tree lowering.

Lowers a :class:`~repro.compile.spec.FunctionSpec` into the paper's
S-box shape (Sec. III): an *inner core* of at most four variables whose
per-row ANFs are computed as secAND2 product chains, and an optional
*MUX stage* over the remaining ``k`` select variables — ``2**k``
cofactor rows combined through select-minterm secAND2 products exactly
like the DES engines' 4-row MUX.

Conventions (shared with :mod:`repro.compile.spec`):

* inner position ``p`` (0-based) is bit ``n_inner - 1 - p`` of a local
  monomial mask, so for the 4-variable core the masks coincide with
  :data:`repro.des.sbox_anf.ALL_MONOMIALS`;
* select position ``p`` is bit ``k - 1 - p`` of the row index, so DES's
  ``select_vars=(0, 5)`` gives ``row = 2*x0 + x5`` — the classic DES
  row convention.

Product chains follow the hand-built engines' factorisation: a
degree-``d`` monomial is ``prefix AND extra`` where ``extra`` is the
*highest* inner position in the mask and ``prefix`` the remaining
``d-1`` positions — computed as its own (possibly chain-internal)
monomial.  With ``all_products=True`` (the paper's DES choice) the AND
stage computes every monomial up to the used degree whether or not a
row consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.trace import trace
from .spec import FunctionSpec, mobius_transform

__all__ = ["CompileError", "RowPlan", "LoweredPlan", "lower"]

#: The paper's product chains stay glitch-safe because each chain link
#: adds one staggered operand; the inner core is capped at 4 variables
#: like the DES/PRESENT mini S-boxes (wider functions go through the
#: MUX stage).
MAX_INNER_VARS = 4


class CompileError(RuntimeError):
    """A specification the pipeline cannot lower or schedule."""


def _popcount(mask: int) -> int:
    return bin(mask).count("1")


@dataclass(frozen=True)
class RowPlan:
    """ANF of one cofactor row over the inner variables.

    ``constants[b]`` / ``linear[b]`` / ``products[b]`` describe output
    bit ``b``: the constant term, the linear inner *positions*, and the
    degree->=2 local monomial masks.
    """

    row: int
    constants: Tuple[int, ...]
    linear: Tuple[Tuple[int, ...], ...]
    products: Tuple[Tuple[int, ...], ...]

    def bit_is_constant(self, b: int) -> bool:
        return not self.linear[b] and not self.products[b]


@dataclass(frozen=True)
class LoweredPlan:
    """The lowered shape of one function: rows + shared monomials."""

    spec: FunctionSpec
    select_vars: Tuple[int, ...]
    inner_vars: Tuple[int, ...]
    monomials: Tuple[int, ...]
    rows: Tuple[RowPlan, ...]
    all_products: bool

    @property
    def n_inner(self) -> int:
        return len(self.inner_vars)

    @property
    def n_select(self) -> int:
        return len(self.select_vars)

    @property
    def n_rows(self) -> int:
        return 1 << self.n_select

    def position_mask(self, p: int) -> int:
        """Local monomial mask of inner position ``p`` alone."""
        return 1 << (self.n_inner - 1 - p)

    def mask_positions(self, mask: int) -> Tuple[int, ...]:
        """Inner positions of a local monomial mask, ascending."""
        return tuple(
            p for p in range(self.n_inner) if mask & self.position_mask(p)
        )

    def factor(self, mask: int) -> Tuple[int, int]:
        """``mask = prefix AND position`` chain factorisation.

        Returns ``(prefix_mask, extra_position)`` with ``extra`` the
        highest inner position of the monomial; ``prefix`` has degree
        ``>= 1`` (a bare variable for degree-2 monomials, an earlier
        chain product otherwise).
        """
        positions = self.mask_positions(mask)
        if len(positions) < 2:
            raise ValueError(f"monomial {mask:#x} has degree < 2")
        extra = positions[-1]
        return mask & ~self.position_mask(extra), extra

    def chain_length(self, mask: int) -> int:
        """secAND2 gadgets on the chain computing ``mask``."""
        return _popcount(mask) - 1

    def n_secand2(self) -> int:
        """Total secAND2 gadgets the emitted netlist will contain."""
        count = len(self.monomials)
        if self.n_select:
            # select-minterm tree: one gadget per internal node of each
            # literal chain, with shared prefixes deduplicated.
            count += sum(1 << level for level in range(2, self.n_select + 1))
            # stage 2: one gadget per non-constant row bit.
            count += sum(
                1
                for row in self.rows
                for b in range(self.spec.n_outputs)
                if not row.bit_is_constant(b)
            )
        return count

    def render(self) -> str:
        lines = [
            f"{self.spec.name}: {self.spec.n_inputs} inputs -> "
            f"{self.spec.n_outputs} outputs",
            f"  inner vars   {self.inner_vars}  select vars "
            f"{self.select_vars} ({self.n_rows} rows)",
            f"  monomials    {len(self.monomials)} "
            f"({[f'{m:#x}' for m in self.monomials]})",
            f"  secAND2 count {self.n_secand2()}",
        ]
        return "\n".join(lines)


def _cofactor_table(
    spec: FunctionSpec,
    select_vars: Sequence[int],
    inner_vars: Sequence[int],
    row: int,
) -> List[int]:
    n, k = spec.n_inputs, len(select_vars)
    n_inner = len(inner_vars)
    base = 0
    for p, v in enumerate(select_vars):
        if (row >> (k - 1 - p)) & 1:
            base |= 1 << (n - 1 - v)
    table = []
    for j in range(1 << n_inner):
        idx = base
        for q, v in enumerate(inner_vars):
            if (j >> (n_inner - 1 - q)) & 1:
                idx |= 1 << (n - 1 - v)
        table.append(spec.table[idx])
    return table


def _row_plan(spec: FunctionSpec, n_inner: int, row: int, table: Sequence[int]) -> RowPlan:
    constants: List[int] = []
    linear: List[Tuple[int, ...]] = []
    products: List[Tuple[int, ...]] = []
    for b in range(spec.n_outputs):
        shift = spec.n_outputs - 1 - b
        coef = mobius_transform([(v >> shift) & 1 for v in table], n_inner)
        constants.append(coef[0])
        linear.append(
            tuple(
                p
                for p in range(n_inner)
                if coef[1 << (n_inner - 1 - p)]
            )
        )
        products.append(
            tuple(
                sorted(
                    mask
                    for mask in range(1, 1 << n_inner)
                    if coef[mask] and _popcount(mask) >= 2
                )
            )
        )
    return RowPlan(
        row=row,
        constants=tuple(constants),
        linear=tuple(linear),
        products=tuple(products),
    )


def lower(
    spec: FunctionSpec,
    select_vars: Optional[Sequence[int]] = None,
    all_products: Optional[bool] = None,
) -> LoweredPlan:
    """Lower a spec into inner-core rows + MUX select products.

    Args:
        select_vars: Which spec variables drive the MUX (position order
            = row-index bit order).  Defaults to the spec's
            ``preferred_select_vars``, else the first ``n - 4``
            variables; must leave 1..4 inner variables.
        all_products: Compute every inner monomial up to the used
            degree (the paper's DES choice — keeps the AND stage
            data-independent across rows).  Defaults to True when the
            spec declares preferred selects (the DES path), else False.
    """
    n = spec.n_inputs
    if select_vars is None:
        if spec.preferred_select_vars is not None:
            select_vars = spec.preferred_select_vars
        elif n > MAX_INNER_VARS:
            select_vars = tuple(range(n - MAX_INNER_VARS))
        else:
            select_vars = ()
    select_vars = tuple(int(v) for v in select_vars)
    if all_products is None:
        all_products = spec.preferred_select_vars is not None
    if len(set(select_vars)) != len(select_vars):
        raise CompileError(f"duplicate select variables {select_vars}")
    for v in select_vars:
        if not 0 <= v < n:
            raise CompileError(f"select variable {v} out of range 0..{n - 1}")
    inner_vars = tuple(v for v in range(n) if v not in select_vars)
    n_inner = len(inner_vars)
    if not 1 <= n_inner <= MAX_INNER_VARS:
        raise CompileError(
            f"{spec.name}: {n_inner} inner variables after removing "
            f"selects {select_vars}; need 1..{MAX_INNER_VARS} "
            "(choose more/fewer select_vars)"
        )
    k = len(select_vars)

    with trace("compile.anf", spec=spec.name, n_rows=1 << k):
        rows = tuple(
            _row_plan(
                spec,
                n_inner,
                r,
                _cofactor_table(spec, select_vars, inner_vars, r),
            )
            for r in range(1 << k)
        )

    # every output bit must have at least one contributing term in some
    # row — a constant output has no masked representation here.
    for b in range(spec.n_outputs):
        if all(
            row.bit_is_constant(b) and row.constants[b] == 0 for row in rows
        ):
            raise CompileError(
                f"{spec.name}: output bit {b} is constant 0 — constant "
                "outputs cannot be masked; drop the bit from the spec"
            )
        if k == 0 and rows[0].bit_is_constant(b):
            raise CompileError(
                f"{spec.name}: output bit {b} is constant — constant "
                "outputs cannot be masked; drop the bit from the spec"
            )

    # shared monomial set: everything some row uses, closed under chain
    # prefixes so every factorisation lands on a computed product.
    used = set()
    for row in rows:
        for masks in row.products:
            used.update(masks)
    max_degree = max((_popcount(m) for m in used), default=2)
    if all_products:
        used = {
            sum(1 << b for b in bits)
            for d in range(2, max(2, max_degree) + 1)
            for bits in combinations(range(n_inner), d)
        }
    pending = list(used)
    while pending:
        mask = pending.pop()
        if _popcount(mask) < 3:
            continue
        positions = [
            p
            for p in range(n_inner)
            if mask & (1 << (n_inner - 1 - p))
        ]
        prefix = mask & ~(1 << (n_inner - 1 - positions[-1]))
        if prefix not in used:
            used.add(prefix)
            pending.append(prefix)
    monomials = tuple(sorted(used, key=lambda m: (_popcount(m), m)))

    return LoweredPlan(
        spec=spec,
        select_vars=select_vars,
        inner_vars=inner_vars,
        monomials=monomials,
        rows=rows,
        all_products=bool(all_products),
    )
