"""Pass 3: arrival-order scheduling.

Every secAND2 site must see its ``y1`` operand settle strictly last
(Table I).  The two emission styles enforce this differently:

* **FF style** — pipeline layering.  Each share is valid from a known
  clock cycle; every gadget's ``y1`` runs through a DFF chain sized so
  it lands exactly one cycle after the latest other operand.  The
  layering is computed here (:func:`ff_layers`) and checked
  structurally by the certifier (FF-depth dynamic programming over the
  emitted netlist).
* **PD style** — DelayUnit staggering.  Inner/select variable shares
  are staggered ``(g-1-p, g-1+p)`` DelayUnits for position ``p`` in a
  group of ``g`` (reproducing the hand-built DES schedules
  ``PD_MINI_SCHEDULE``/``PD_SELECT_SCHEDULE``), the stage-2 operands
  use the paper's ``(1,1)``/``(0,2)`` stagger, and the one free
  parameter — LUTs per DelayUnit — is solved from the
  :func:`repro.netlist.timing.arrival_times` constraints: emit at two
  trial sizes, fit each site's ordering margin as an affine function of
  ``n_luts`` (every path delay is), and take the smallest size whose
  worst margin clears the user-requested figure
  (:func:`solve_pd_n_luts`).  A pinned, too-small size is rejected with
  a :class:`ScheduleError` carrying the violating sites — and, via the
  certifier, an exact-verifier counterexample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netlist.safety import OrderingViolation, ordering_margins
from .lower import CompileError, LoweredPlan

__all__ = [
    "ScheduleError",
    "stagger_units",
    "PDSchedule",
    "FFSchedule",
    "ff_layers",
    "solve_pd_n_luts",
    "MAX_N_LUTS",
]

#: Largest DelayUnit size the solver will try (the paper sweeps 1..10;
#: headroom above that covers large requested margins).
MAX_N_LUTS = 24

#: Stage-2 stagger, DelayUnits: select (x operand) and row (y operand).
STAGE2_SEL_UNITS = (1, 1)
STAGE2_ROW_UNITS = (0, 2)


class ScheduleError(CompileError):
    """The requested DelayUnit budget cannot order the netlist.

    Carries the static violations, the solver's required size when it
    is known, and — when the certifier confirmed a violating site —
    an exact-verifier counterexample (:attr:`counterexample` /
    :attr:`site_spec`) suitable for VCD export.
    """

    def __init__(
        self,
        message: str,
        violations: Tuple[OrderingViolation, ...] = (),
        required_n_luts: Optional[int] = None,
        counterexample=None,
        site_spec=None,
    ):
        super().__init__(message)
        self.violations = tuple(violations)
        self.required_n_luts = required_n_luts
        self.counterexample = counterexample
        self.site_spec = site_spec


def stagger_units(group_size: int) -> Tuple[Tuple[int, int], ...]:
    """Per-position ``(share0, share1)`` DelayUnits for a variable group.

    Position ``p`` of ``g`` gets ``(g-1-p, g-1+p)``: share-0 arrivals
    descend (so ``y0`` of the outermost chain operand comes first) and
    share-1 arrivals ascend (so each chain link's ``y1`` outranks the
    whole prefix).  For ``g=4`` this is exactly the hand-built DES
    mini-S-box schedule ``{0:(3,3), 1:(2,4), 2:(1,5), 3:(0,6)}``; for
    ``g=2`` the select schedule ``{x0:(1,1), x5:(0,2)}``.
    """
    return tuple((group_size - 1 - p, group_size - 1 + p) for p in range(group_size))


@dataclass(frozen=True)
class PDSchedule:
    """Resolved PD delay assignment."""

    n_luts: int
    margin_ps: int
    inner_units: Tuple[Tuple[int, int], ...]
    select_units: Tuple[Tuple[int, int], ...]
    stage2_sel_units: Tuple[int, int] = STAGE2_SEL_UNITS
    stage2_row_units: Tuple[int, int] = STAGE2_ROW_UNITS

    def to_json_dict(self) -> dict:
        return {
            "style": "pd",
            "n_luts": self.n_luts,
            "requested_margin_ps": self.margin_ps,
            "inner_units": [list(u) for u in self.inner_units],
            "select_units": [list(u) for u in self.select_units],
        }


@dataclass(frozen=True)
class FFSchedule:
    """Resolved FF pipeline layering (valid cycle per value)."""

    product_valid: Dict[int, int]
    row_valid: Tuple[Tuple[int, ...], ...]
    select_valid: int
    stage2_valid: int
    output_valid: int
    n_cycles: int

    def to_json_dict(self) -> dict:
        return {
            "style": "ff",
            "n_cycles": self.n_cycles,
            "output_valid_cycle": self.output_valid,
        }


def pd_schedule(plan: LoweredPlan, n_luts: int, margin_ps: int) -> PDSchedule:
    return PDSchedule(
        n_luts=n_luts,
        margin_ps=margin_ps,
        inner_units=stagger_units(plan.n_inner),
        select_units=stagger_units(plan.n_select),
    )


def ff_layers(plan: LoweredPlan) -> FFSchedule:
    """Valid-from cycle of every value in the FF pipeline.

    Input registers are valid in cycle 1; a product chain of length
    ``d`` is valid in cycle ``d+1``; the select minterm register in
    cycle ``k+1``; each stage-2 product one cycle after its operands;
    the output register one cycle after the final XOR plane.
    """
    product_valid: Dict[int, int] = {}
    for mask in plan.monomials:
        prefix, _ = plan.factor(mask)
        lx = product_valid.get(prefix, 1)
        product_valid[mask] = max(lx, 1) + 1

    row_valid: List[Tuple[int, ...]] = []
    for row in plan.rows:
        vals = []
        for b in range(plan.spec.n_outputs):
            if row.bit_is_constant(b):
                vals.append(0)
                continue
            v = 1 if row.linear[b] else 0
            for mask in row.products[b]:
                v = max(v, product_valid[mask])
            vals.append(v)
        row_valid.append(tuple(vals))

    if plan.n_select == 0:
        out_valid = max(row_valid[0])
        return FFSchedule(
            product_valid=product_valid,
            row_valid=tuple(row_valid),
            select_valid=0,
            stage2_valid=0,
            output_valid=out_valid + 1,
            n_cycles=out_valid + 2,
        )

    select_valid = plan.n_select + 1  # registered refreshed minterm
    stage2_valid = 0
    for r, row in enumerate(plan.rows):
        for b in range(plan.spec.n_outputs):
            if row.bit_is_constant(b):
                if row.constants[b]:
                    stage2_valid = max(stage2_valid, select_valid)
                continue
            stage2_valid = max(
                stage2_valid, max(select_valid, row_valid[r][b]) + 1
            )
    return FFSchedule(
        product_valid=product_valid,
        row_valid=tuple(row_valid),
        select_valid=select_valid,
        stage2_valid=stage2_valid,
        output_valid=stage2_valid + 1,
        n_cycles=stage2_valid + 2,
    )


def solve_pd_n_luts(
    plan: LoweredPlan,
    refresh_choice,
    margin_ps: int,
    secand2_style: str = "lut",
    max_n_luts: int = MAX_N_LUTS,
) -> Tuple[int, Tuple]:
    """Smallest DelayUnit size meeting the requested ordering margin.

    Emits the netlist at two trial sizes, fits every site's ``y1``
    margin and ``y0`` slack as affine functions of ``n_luts``, and
    returns the smallest integer size making all of them non-negative
    with ``y1`` margins at least ``max(1, margin_ps)``.  Also returns
    the probe data so callers can report per-site slack.
    """
    from .emit import emit_pd

    def margins_at(n: int):
        netlist = emit_pd(plan, refresh_choice, pd_schedule(plan, n, margin_ps))
        return ordering_margins(netlist.circuit)

    m1 = margins_at(1)
    m2 = margins_at(2)
    if len(m1) != len(m2):
        raise ScheduleError(
            "internal: PD emission is not structurally stable across "
            f"DelayUnit sizes ({len(m1)} vs {len(m2)} sites)"
        )
    target = max(1, int(margin_ps))
    best = 1
    for a, b in zip(m1, m2):
        # affine in n_luts: value(n) = v1 + (v2 - v1) * (n - 1)
        for v1, v2, floor in (
            (a.y1_margin_ps, b.y1_margin_ps, target),
            (a.y0_margin_ps, b.y0_margin_ps, 0.0),
        ):
            slope = v2 - v1
            if v1 >= floor:
                # satisfied at the smallest size; the final whole-netlist
                # check guards the (theoretical) negative-slope case.
                continue
            if slope <= 0:
                raise ScheduleError(
                    f"site {a.gadget}: ordering margin does not improve "
                    f"with DelayUnit size (slope {slope:.0f} ps/LUT) — "
                    "the plan cannot be scheduled",
                )
            best = max(best, 1 + math.ceil((floor - v1) / slope))
    if best > max_n_luts:
        raise ScheduleError(
            f"requested margin {margin_ps} ps needs DelayUnits of "
            f"{best} LUTs (> max {max_n_luts})",
            required_n_luts=best,
        )
    return best, (m1, m2)
