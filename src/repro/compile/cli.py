"""Command line for the masking compiler: ``python -m repro compile``.

Examples::

    python -m repro compile --des-sbox 0
    python -m repro compile --des-sbox all --style ff --json COMPILE.json
    python -m repro compile --present-sbox --style pd --margin 100
    python -m repro compile --table 0,1,1,0,1,0,0,1 --refresh selective
    python -m repro compile --suite paper --json COMPILE_matrix.json
    python -m repro compile --des-sbox 0 --n-luts 1 --margin 400 --vcd leak.vcd

Exit status is 0 when every target compiles *and* certifies, 1 when a
target is rejected (schedule failure or certification failure), 2 on
usage errors.  With ``--json`` a ``compile_cli/v1`` report is written
containing every target's compile metadata and full certificate; with
``--vcd`` the first exact counterexample's waveform is dumped.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Tuple

from . import CompileResult, compile_spec
from .certify import Certificate
from .lower import CompileError
from .refresh import REFRESH_MODES
from .schedule import ScheduleError
from .spec import (
    FunctionSpec,
    aes_sbox_spec,
    des_sbox_spec,
    present_sbox_spec,
)

__all__ = ["build_parser", "main"]

_RULE = "-" * 64

#: The paper's target matrix: all eight DES S-boxes (Sec. III), the
#: PRESENT S-box and the AES S-box (Sec. VI cost comparison points).
SUITE_PAPER = (
    [f"des{i}" for i in range(8)] + ["present", "aes"]
)


def _parse_table(text: str) -> List[int]:
    try:
        return [int(v, 0) for v in text.split(",") if v.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--table wants a comma-separated list of entries, got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro compile",
        description="Glitch-safe masking compiler with certification",
    )
    tgt = parser.add_argument_group("targets")
    tgt.add_argument(
        "--des-sbox",
        metavar="N|all",
        help="compile DES S-box N (0..7), or all eight",
    )
    tgt.add_argument(
        "--present-sbox", action="store_true", help="compile the PRESENT S-box"
    )
    tgt.add_argument(
        "--aes-sbox", action="store_true", help="compile the AES S-box"
    )
    tgt.add_argument(
        "--table",
        type=_parse_table,
        metavar="CSV",
        help="compile a raw truth table (comma-separated entries)",
    )
    tgt.add_argument(
        "--suite",
        choices=["paper"],
        help="compile the paper target matrix (8x DES + PRESENT + AES)",
    )
    parser.add_argument(
        "--style",
        choices=["pd", "ff"],
        default="pd",
        help="emission style (default pd)",
    )
    parser.add_argument(
        "--margin",
        type=int,
        default=50,
        metavar="PS",
        help="required y1 ordering margin in ps (default 50)",
    )
    parser.add_argument(
        "--n-luts",
        type=int,
        default=None,
        metavar="N",
        help="pin the DelayUnit size instead of solving for it",
    )
    parser.add_argument(
        "--refresh",
        choices=list(REFRESH_MODES),
        default="auto",
        help="refresh insertion mode (default auto)",
    )
    parser.add_argument(
        "--exact",
        choices=["sites", "whole", "none"],
        default="sites",
        help="exact verification mode (default sites)",
    )
    parser.add_argument(
        "--uniformity",
        type=int,
        default=0,
        metavar="N",
        help="uniformity-audit samples per input (0 = skip)",
    )
    parser.add_argument(
        "--tvla",
        type=int,
        default=0,
        metavar="N",
        help="TVLA spot-check trace budget (0 = skip)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke budget: suite shrinks to DES S-box 0 + PRESENT",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write a machine-readable report"
    )
    parser.add_argument(
        "--vcd",
        metavar="PATH",
        help="dump the first exact counterexample's waveform",
    )
    return parser


def _target_spec(name: str) -> FunctionSpec:
    if name.startswith("des"):
        return des_sbox_spec(int(name[3:]))
    if name == "present":
        return present_sbox_spec()
    if name == "aes":
        return aes_sbox_spec()
    raise ValueError(name)


def _collect_targets(args, parser) -> List[Tuple[str, FunctionSpec]]:
    targets: List[Tuple[str, FunctionSpec]] = []
    if args.suite == "paper":
        names = ["des0", "present"] if args.quick else SUITE_PAPER
        targets.extend((n, _target_spec(n)) for n in names)
    if args.des_sbox is not None:
        if args.des_sbox == "all":
            targets.extend(
                (f"des{i}", des_sbox_spec(i)) for i in range(8)
            )
        else:
            try:
                i = int(args.des_sbox)
            except ValueError:
                parser.error(f"--des-sbox wants 0..7 or 'all', got {args.des_sbox!r}")
            if not 0 <= i <= 7:
                parser.error(f"--des-sbox wants 0..7 or 'all', got {i}")
            targets.append((f"des{i}", des_sbox_spec(i)))
    if args.present_sbox:
        targets.append(("present", present_sbox_spec()))
    if args.aes_sbox:
        targets.append(("aes", aes_sbox_spec()))
    if args.table is not None:
        targets.append(
            ("table", FunctionSpec.from_truth_table(args.table, name="table"))
        )
    return targets


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    targets = _collect_targets(args, parser)
    if not targets:
        parser.print_usage(sys.stderr)
        print(
            "error: pick a target (--des-sbox, --present-sbox, --aes-sbox, "
            "--table or --suite paper)",
            file=sys.stderr,
        )
        return 2

    report: dict = {
        "schema": "compile_cli/v1",
        "style": args.style,
        "results": [],
    }
    status = 0
    vcd_written = False
    t0 = time.time()
    for name, spec in targets:
        print(_RULE)
        entry: dict = {"target": name, "style": args.style}
        try:
            result: CompileResult = compile_spec(
                spec,
                style=args.style,
                margin_ps=args.margin,
                n_luts=args.n_luts,
                refresh=args.refresh,
            )
        except ScheduleError as err:
            print(f"{name}: REJECTED (schedule): {err}")
            for v in err.violations[:6]:
                print(f"  violation: {v}")
            entry.update(
                ok=False,
                error="schedule",
                message=str(err),
                n_violations=len(err.violations),
                required_n_luts=err.required_n_luts,
            )
            if (
                args.vcd
                and not vcd_written
                and err.counterexample is not None
                and err.site_spec is not None
            ):
                from ..verify.report import counterexample_vcd

                with open(args.vcd, "w") as fh:
                    fh.write(
                        counterexample_vcd(err.site_spec, err.counterexample)
                    )
                print(f"  counterexample VCD -> {args.vcd}")
                vcd_written = True
            report["results"].append(entry)
            status = 1
            continue
        except CompileError as err:
            print(f"{name}: REJECTED (lowering): {err}")
            entry.update(ok=False, error="lowering", message=str(err))
            report["results"].append(entry)
            status = 1
            continue

        cert: Certificate = result.certify(
            exact=args.exact,
            uniformity_n=args.uniformity,
            tvla_traces=args.tvla,
        )
        print(cert.render())
        entry.update(
            ok=cert.ok,
            compile=result.to_json_dict(),
            certificate=cert.to_json_dict(),
        )
        report["results"].append(entry)
        if not cert.ok:
            status = 1
            if (
                args.vcd
                and not vcd_written
                and cert.counterexample is not None
                and cert.counterexample_spec is not None
            ):
                from ..verify.report import counterexample_vcd

                with open(args.vcd, "w") as fh:
                    fh.write(
                        counterexample_vcd(
                            cert.counterexample_spec, cert.counterexample
                        )
                    )
                print(f"  counterexample VCD -> {args.vcd}")
                vcd_written = True

    print(_RULE)
    n_ok = sum(1 for r in report["results"] if r.get("ok"))
    report["ok"] = status == 0
    report["n_targets"] = len(targets)
    report["n_certified"] = n_ok
    report["elapsed_s"] = round(time.time() - t0, 2)
    print(
        f"{n_ok}/{len(targets)} targets certified "
        f"[{report['elapsed_s']:.1f}s]"
    )
    if args.vcd and not vcd_written:
        print(f"no exact counterexample found; {args.vcd} not written")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"report -> {args.json}")
    return status


if __name__ == "__main__":
    sys.exit(main())
