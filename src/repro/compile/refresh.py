"""Pass 2: dependency-tracking refresh insertion.

secAND2 consumes no fresh randomness, so its output share pair is *not*
a uniform sharing of the product — XOR-ing dependent terms leaks.  The
paper's engines refresh every product and every MUX select before the
XOR plane (Sec. III-C).  This pass does better, in two tiers:

* a **static dependency rule** that keeps a product's refresh only when
  the XOR plane actually needs it — the product feeds more than one
  plane, shares a plane with another nonlinear term, or has no
  independent linear share in its plane to mask it (a disjoint linear
  term's random share re-randomises the sum for free);
* an optional **empirical uniformity search** — the exact greedy loop
  of :mod:`repro.des.selective_refresh`, run through
  :func:`repro.core.refresh_search.greedy_minimize` against the
  compiler's own :class:`~repro.compile.model.PlanModel` — that prunes
  further while the measured share distribution stays uniform.

MUX select products are always refreshed: they feed the ``x`` operand
of every stage-2 gadget and are reused across all output bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..core.refresh_search import GreedySearchResult, greedy_minimize
from .lower import CompileError, LoweredPlan

__all__ = [
    "RefreshPosition",
    "RefreshChoice",
    "refresh_positions",
    "static_required",
    "plan_refresh",
]

REFRESH_MODES = ("full", "static", "selective", "auto")


@dataclass(frozen=True)
class RefreshPosition:
    """One potential fresh-randomness consumer.

    ``key`` is ``("prod", mask)`` for an inner product or
    ``("sel", row)`` for a MUX select minterm; positions are ordered
    products-then-selects, matching the hand-built engines' random-bit
    layout (``r0..r9`` products, ``r10..r13`` selects for DES).
    """

    kind: str
    key: Tuple[str, int]
    label: str


def refresh_positions(plan: LoweredPlan) -> Tuple[RefreshPosition, ...]:
    """All refreshable positions of a plan, in random-bit order."""
    positions = [
        RefreshPosition("prod", ("prod", mask), f"prod_{mask:#x}")
        for mask in plan.monomials
    ]
    positions.extend(
        RefreshPosition("sel", ("sel", r), f"sel_{r}")
        for r in range(plan.n_rows if plan.n_select else 0)
    )
    return tuple(positions)


def static_required(plan: LoweredPlan) -> Tuple[bool, ...]:
    """The static dependency rule, per refresh position.

    A product keeps its refresh unless *every* plane that consumes it
    contains no other nonlinear term and at least one linear term over
    a variable outside the product's support (whose uniform random
    share masks the sum), and it is consumed by exactly one plane.
    Chain-only prefixes (never XOR-ed) need no refresh.  Selects are
    always kept.
    """
    required = []
    for pos in refresh_positions(plan):
        if pos.kind == "sel":
            required.append(True)
            continue
        mask = pos.key[1]
        support = set(plan.mask_positions(mask))
        planes = [
            (row, b)
            for row in plan.rows
            for b in range(plan.spec.n_outputs)
            if mask in row.products[b]
        ]
        if not planes:
            required.append(False)  # chain prefix / unused all_products
            continue
        if len(planes) >= 2:
            required.append(True)
            continue
        row, b = planes[0]
        other_products = [m for m in row.products[b] if m != mask]
        disjoint_linear = any(p not in support for p in row.linear[b])
        required.append(bool(other_products) or not disjoint_linear)
    return tuple(required)


@dataclass(frozen=True)
class RefreshChoice:
    """Resolved refresh plan: which positions consume a random bit."""

    mode: str
    positions: Tuple[RefreshPosition, ...]
    mask: Tuple[bool, ...]
    search: Optional[GreedySearchResult] = None

    @property
    def bits_full(self) -> int:
        return len(self.positions)

    @property
    def bits_used(self) -> int:
        return sum(self.mask)

    @property
    def bits_saved(self) -> int:
        return self.bits_full - self.bits_used

    def kept_labels(self) -> Tuple[str, ...]:
        return tuple(
            p.label for p, m in zip(self.positions, self.mask) if m
        )

    def to_json_dict(self) -> dict:
        return {
            "mode": self.mode,
            "bits_full": self.bits_full,
            "bits_used": self.bits_used,
            "kept": list(self.kept_labels()),
            "defect": None if self.search is None else self.search.defect,
            "floor": None if self.search is None else self.search.floor,
        }


def plan_refresh(
    plan: LoweredPlan,
    mode: str = "auto",
    n_per_input: int = 800,
    tolerance_factor: float = 2.0,
    seed: int = 0,
) -> RefreshChoice:
    """Choose refresh positions for a lowered plan.

    Modes: ``"full"`` refreshes everything (the paper's baseline),
    ``"static"`` applies the dependency rule, ``"selective"`` runs the
    greedy uniformity search on top of the model, and ``"auto"`` picks
    ``selective`` for functions narrow enough to sample exhaustively
    (``n_inputs <= 6``) and ``static`` beyond.
    """
    if mode not in REFRESH_MODES:
        raise CompileError(
            f"refresh mode must be one of {REFRESH_MODES}, got {mode!r}"
        )
    positions = refresh_positions(plan)
    if mode == "auto":
        mode = "selective" if plan.spec.n_inputs <= 6 else "static"
    if mode == "full":
        return RefreshChoice(
            mode="full", positions=positions, mask=(True,) * len(positions)
        )
    if mode == "static":
        return RefreshChoice(
            mode="static", positions=positions, mask=static_required(plan)
        )

    # selective: empirical greedy prune, same loop as DES.
    from .model import PlanModel, uniformity_defect

    model = PlanModel(plan)
    static_mask = static_required(plan)
    # visit statically-unneeded positions first (their drop is free and
    # keeps the sample budget for the contested ones), then the rest —
    # both groups highest-index first like the historical DES order.
    order = [
        i for i in range(len(positions) - 1, -1, -1) if not static_mask[i]
    ] + [i for i in range(len(positions) - 1, -1, -1) if static_mask[i]]
    result = greedy_minimize(
        lambda mask, salt: uniformity_defect(
            model, mask, n_per_input=n_per_input, seed=seed + salt
        ),
        n_positions=len(positions),
        tolerance_factor=tolerance_factor,
        order=order,
    )
    return RefreshChoice(
        mode="selective",
        positions=positions,
        mask=result.mask,
        search=result,
    )
