"""Share-level golden model of a lowered plan.

:class:`PlanModel` evaluates the exact dataflow the emitter builds —
same chain factorisation, same refresh positions, same select-minterm
trees, same stage-2 products — using :func:`repro.core.gadgets.secand2_func`
as the algebraic gadget model (the role
:class:`repro.des.masked_core.MaskedSboxModel` plays for the hand-built
DES engines).  It serves two jobs:

* the *functional oracle* the certifier compares emitted netlists
  against, share-for-share;
* the sampling backend of the refresh pass's uniformity search
  (:func:`uniformity_defect`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.gadgets import secand2_func
from .lower import LoweredPlan

__all__ = ["PlanModel", "uniformity_defect"]

Share = Tuple[np.ndarray, np.ndarray]


class PlanModel:
    """Evaluate a lowered plan on share arrays.

    ``refresh_mask`` selects which refresh *positions* (see
    :func:`repro.compile.refresh.refresh_positions`) actually consume
    their random bit; unrefreshed positions pass their shares through
    raw, exactly like the emitted netlist.
    """

    def __init__(self, plan: LoweredPlan):
        self.plan = plan
        from .refresh import refresh_positions

        self.positions = refresh_positions(plan)
        self.n_rand = len(self.positions)
        self._pos_index = {p.key: i for i, p in enumerate(self.positions)}

    # ------------------------------------------------------------------
    def __call__(
        self,
        s0: np.ndarray,
        s1: np.ndarray,
        rand: np.ndarray,
        refresh_mask: Optional[Sequence[bool]] = None,
        expose_intermediates: bool = False,
    ):
        """Evaluate on ``(n_inputs, N)`` share arrays.

        ``rand`` has one ``(N,)`` row per refresh position (rows of
        dropped positions are ignored).  Returns ``(o0, o1)`` arrays of
        shape ``(n_outputs, N)``; with ``expose_intermediates`` also the
        per-row share-0 bit arrays and the select share-0 bits — the
        intermediate distributions the uniformity search audits.
        """
        plan = self.plan
        spec = plan.spec
        if refresh_mask is None:
            refresh_mask = [True] * self.n_rand

        def refreshed(kind: str, key, pair: Share) -> Share:
            idx = self._pos_index[(kind, key)]
            if not refresh_mask[idx]:
                return pair
            m = rand[idx]
            return (pair[0] ^ m, pair[1] ^ m)

        mid = [
            (s0[plan.inner_vars[p]], s1[plan.inner_vars[p]])
            for p in range(plan.n_inner)
        ]

        # product chains in monomial order; like the emitter, chain
        # links consume the *refreshed* prefix product.
        term: Dict[int, Share] = {}
        for mask in plan.monomials:
            prefix, extra = plan.factor(mask)
            if prefix in term:
                x = term[prefix]
            else:
                x = mid[plan.mask_positions(prefix)[0]]
            raw = secand2_func(*x, *mid[extra])
            term[mask] = refreshed("prod", mask, raw)

        # per-row XOR planes
        rows_out: List[List[Share]] = []
        for row in plan.rows:
            bits: List[Share] = []
            for b in range(spec.n_outputs):
                if row.bit_is_constant(b):
                    bits.append(None)  # handled by the MUX stage
                    continue
                acc0 = np.zeros_like(s0[0])
                acc1 = np.zeros_like(s0[0])
                for p in row.linear[b]:
                    acc0 = acc0 ^ mid[p][0]
                    acc1 = acc1 ^ mid[p][1]
                for mask in row.products[b]:
                    acc0 = acc0 ^ term[mask][0]
                    acc1 = acc1 ^ term[mask][1]
                if row.constants[b]:
                    acc0 = ~acc0
                bits.append((acc0, acc1))
            rows_out.append(bits)

        if plan.n_select == 0:
            out = rows_out[0]
            o0 = np.stack([p[0] for p in out])
            o1 = np.stack([p[1] for p in out])
            if expose_intermediates:
                return o0, o1, rows_out, None
            return o0, o1

        # select minterm chains over the outer literals
        outer = [
            (s0[plan.select_vars[p]], s1[plan.select_vars[p]])
            for p in range(plan.n_select)
        ]

        def literal(p: int, v: int) -> Share:
            a0, a1 = outer[p]
            return (a0 if v else ~a0, a1)

        nodes: Dict[Tuple[int, int], Share] = {}

        def node(level: int, v: int) -> Share:
            if level == 1:
                return literal(0, v)
            if (level, v) not in nodes:
                x = node(level - 1, v >> 1)
                y = literal(level - 1, v & 1)
                nodes[(level, v)] = secand2_func(*x, *y)
            return nodes[(level, v)]

        sels: List[Share] = []
        for r in range(plan.n_rows):
            sel = node(plan.n_select, r)
            sels.append(refreshed("sel", r, sel))

        # stage 2: sel AND row-bit, XOR across rows
        o0 = np.zeros((spec.n_outputs, s0.shape[1]), dtype=bool)
        o1 = np.zeros_like(o0)
        for r, row in enumerate(plan.rows):
            for b in range(spec.n_outputs):
                if row.bit_is_constant(b):
                    if row.constants[b]:
                        t = sels[r]
                    else:
                        continue
                else:
                    t = secand2_func(*sels[r], *rows_out[r][b])
                o0[b] ^= t[0]
                o1[b] ^= t[1]

        if expose_intermediates:
            return o0, o1, rows_out, sels
        return o0, o1

    # ------------------------------------------------------------------
    def check_functional(self, n: Optional[int] = None, seed: int = 0) -> bool:
        """Model recombines to the spec table on every input (sanity)."""
        spec = self.plan.spec
        size = 1 << spec.n_inputs
        rng = np.random.default_rng(seed)
        idx = np.arange(size, dtype=np.int64)
        bits = np.stack(
            [
                ((idx >> (spec.n_inputs - 1 - i)) & 1).astype(bool)
                for i in range(spec.n_inputs)
            ]
        )
        s1 = rng.integers(0, 2, bits.shape).astype(bool)
        rand = rng.integers(0, 2, (max(1, self.n_rand), size)).astype(bool)
        o0, o1 = self(bits ^ s1, s1, rand)
        got = np.zeros(size, dtype=np.int64)
        for b in range(spec.n_outputs):
            got |= (o0[b] ^ o1[b]).astype(np.int64) << (
                spec.n_outputs - 1 - b
            )
        return bool(np.array_equal(got, np.asarray(spec.table)))


def uniformity_defect(
    model: PlanModel,
    refresh_mask: Sequence[bool],
    n_per_input: int = 2000,
    seed: int = 0,
) -> float:
    """Worst deviation of the share-0 output distribution from uniform.

    The generic analogue of
    :func:`repro.des.selective_refresh.uniformity_defect`: for every
    unshared input, the joint distribution of the share-0 output bits —
    and of every row's share-0 bits, which feed the MUX stage — must be
    uniform.  Returns the maximum absolute deviation from the uniform
    probability across all of them.
    """
    plan = model.plan
    spec = plan.spec
    rng = np.random.default_rng(seed)
    worst = 0.0

    def group_defect(bit_arrays: Sequence[np.ndarray]) -> float:
        width = len(bit_arrays)
        word = np.zeros(bit_arrays[0].shape[0], dtype=np.int64)
        for a in bit_arrays:
            word = (word << 1) | a.astype(np.int64)
        counts = np.bincount(word, minlength=1 << width) / word.shape[0]
        return float(np.max(np.abs(counts - 1.0 / (1 << width))))

    for value in range(1 << spec.n_inputs):
        bits = np.stack(
            [
                np.full(
                    n_per_input,
                    bool((value >> (spec.n_inputs - 1 - i)) & 1),
                )
                for i in range(spec.n_inputs)
            ]
        )
        s1 = rng.integers(0, 2, bits.shape).astype(bool)
        rand = rng.integers(
            0, 2, (max(1, model.n_rand), n_per_input)
        ).astype(bool)
        o0, _, rows_out, _ = model(
            bits ^ s1,
            s1,
            rand,
            refresh_mask=refresh_mask,
            expose_intermediates=True,
        )
        worst = max(
            worst, group_defect([o0[b] for b in range(spec.n_outputs)])
        )
        for bits_r in rows_out:
            present = [p[0] for p in bits_r if p is not None]
            if present:
                worst = max(worst, group_defect(present))
    return worst
