"""Netlist emission: lowered plan + refresh choice + schedule -> Circuit.

Both emitters share the dataflow of the hand-built DES engines
(:mod:`repro.des.masked_netlist`): an input register layer, the inner
product chains, the refresh layer, per-row XOR planes, a select-minterm
tree with refreshed+registered minterms, the stage-2 AND, and a final
XOR plane.  They differ only in how the secAND2 ordering constraint is
met:

* :func:`emit_ff` — every gadget's ``y1`` runs through a depth-matched
  DFF chain (plain DFFs, no enables, so the whole pipeline can be
  driven as one :class:`~repro.verify.probes.GadgetSpec` and exercised
  by the exact verifier).  Chains from the same source wire are
  deduplicated, mirroring the hand-built engines' shared ``y1`` FFs.
* :func:`emit_pd` — variable shares are staggered through DelayUnit
  lines per the :class:`~repro.compile.schedule.PDSchedule`, with a
  mid-register layer between the inner stage and the MUX stage exactly
  like the hand-built PD engine.

One deliberate difference from the hand-built engines: chain links
consume the *refreshed* prefix product when its refresh position is
kept.  Recombination is unchanged (both shares are XOR-ed with the same
mask bit) but the chain-internal share pair is re-uniformised, which
removes the raw-chain transient bias the ``pchain3_pd`` verify preset
documents.

Wire naming: inputs ``x{i}s0``/``x{i}s1`` per spec variable, fresh
randomness ``r{k}`` per *kept* refresh position, outputs
``y{b}s0``/``y{b}s1`` — the :func:`repro.des.masked_netlist.build_standalone_sbox`
convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.gadgets import SharePair, masked_not, refresh as refresh_gadget, secand2
from ..netlist.circuit import Circuit
from .lower import LoweredPlan
from .refresh import RefreshChoice
from .schedule import FFSchedule, PDSchedule, ff_layers

__all__ = ["CompiledNetlist", "emit_pd", "emit_ff"]


@dataclass
class CompiledNetlist:
    """An emitted masked netlist plus its driving metadata."""

    plan: LoweredPlan
    refresh: RefreshChoice
    style: str
    circuit: Circuit
    n_cycles: int
    schedule: "PDSchedule | FFSchedule"
    input_shares: Tuple[Tuple[str, str], ...]
    rand_names: Tuple[str, ...]
    output_shares: Tuple[Tuple[str, str], ...]

    @property
    def n_secand2(self) -> int:
        return len(self.circuit.annotations.get("secand2", ()))

    @property
    def fresh_bits(self) -> int:
        return len(self.rand_names)

    def gadget_spec(self, name: Optional[str] = None, period_ps: Optional[int] = None):
        """The whole netlist as an exact-verifier :class:`GadgetSpec`.

        Every spec variable is one secret with its two share inputs;
        all inputs arrive at t=0 of cycle 0 (the input register layer
        does the staggering).
        """
        from ..verify.probes import GadgetSpec

        spec = GadgetSpec(
            name=name if name is not None else f"{self.plan.spec.name}_{self.style}",
            circuit=self.circuit,
            secrets=tuple(
                (f"x{i}", (s0, s1))
                for i, (s0, s1) in enumerate(self.input_shares)
            ),
            randoms=self.rand_names,
            schedule=(),
            n_cycles=self.n_cycles,
            period_ps=period_ps,
        )
        spec.validate()
        return spec

    def run_shares(
        self, s0: np.ndarray, s1: np.ndarray, rand: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Drive the netlist on share arrays; returns output shares.

        ``s0``/``s1`` are ``(n_inputs, N)`` boolean arrays, ``rand`` is
        ``(fresh_bits, N)``.  Inputs are applied at cycle 0 from the
        all-zero reset state — the same protocol the exact verifier
        uses — and outputs are read after ``n_cycles`` cycles.
        """
        from ..sim.clocking import ClockedHarness

        c = self.circuit
        n = s0.shape[1]
        period = self.gadget_spec().resolved_period_ps
        harness = ClockedHarness(
            c, n, period_ps=period, check_timing=False, compile_schedules=False
        )
        harness.preload({}, {w: False for w in c.inputs})
        events = []
        for i, (n0, n1) in enumerate(self.input_shares):
            events.append((0, c.wire(n0), s0[i]))
            events.append((0, c.wire(n1), s1[i]))
        for k, name in enumerate(self.rand_names):
            events.append((0, c.wire(name), rand[k]))
        harness.step(events)
        for _ in range(self.n_cycles - 1):
            harness.step()
        out = harness.output_values()
        o0 = np.stack([out[a] for a, _ in self.output_shares])
        o1 = np.stack([out[b] for _, b in self.output_shares])
        return o0, o1

    def recombine(self, s0: np.ndarray, s1: np.ndarray, rand: np.ndarray) -> np.ndarray:
        """Unshared outputs as table-entry integers."""
        o0, o1 = self.run_shares(s0, s1, rand)
        m = self.plan.spec.n_outputs
        out = np.zeros(s0.shape[1], dtype=np.int64)
        for b in range(m):
            out |= (o0[b] ^ o1[b]).astype(np.int64) << (m - 1 - b)
        return out


class _Emitter:
    """Shared construction state of both emitters."""

    def __init__(
        self,
        plan: LoweredPlan,
        refresh_choice: RefreshChoice,
        style: str,
        secand2_style: str,
    ):
        self.plan = plan
        self.refresh_choice = refresh_choice
        self.secand2_style = secand2_style
        self.c = Circuit(f"compiled_{plan.spec.name}_{style}")
        self.rand_names: List[str] = []
        self._rand_wire: Dict[Tuple[str, int], int] = {}
        kept = {
            pos.key
            for pos, keep in zip(refresh_choice.positions, refresh_choice.mask)
            if keep
        }
        for pos in refresh_choice.positions:
            if pos.key not in kept:
                continue
            name = f"r{len(self.rand_names)}"
            self.rand_names.append(name)
            self._rand_wire[pos.key] = self.c.add_input(name)
        self.kept = kept

    def inputs(self) -> List[SharePair]:
        ins = []
        for i in range(self.plan.spec.n_inputs):
            ins.append(
                SharePair(
                    self.c.add_input(f"x{i}s0"), self.c.add_input(f"x{i}s1")
                )
            )
        return ins

    def refreshed(self, kind: str, key: int, pair: SharePair, tag: str) -> SharePair:
        if (kind, key) not in self.kept:
            return pair
        return refresh_gadget(self.c, pair, self._rand_wire[(kind, key)], tag=tag)

    def mark_outputs(self, outputs: List[SharePair]) -> Tuple[Tuple[str, str], ...]:
        names = []
        for b, pair in enumerate(outputs):
            n0, n1 = f"y{b}s0", f"y{b}s1"
            self.c.mark_output(n0, pair.s0)
            self.c.mark_output(n1, pair.s1)
            names.append((n0, n1))
        return tuple(names)

    def xor_plane(
        self,
        row,
        b: int,
        mid: List[SharePair],
        term: Dict[int, SharePair],
        tag: str,
    ) -> SharePair:
        wires0 = [mid[p].s0 for p in row.linear[b]]
        wires1 = [mid[p].s1 for p in row.linear[b]]
        wires0 += [term[mask].s0 for mask in row.products[b]]
        wires1 += [term[mask].s1 for mask in row.products[b]]
        pair = SharePair(
            self.c.xor_tree(wires0, name=f"{tag}_s0"),
            self.c.xor_tree(wires1, name=f"{tag}_s1"),
        )
        if row.constants[b]:
            pair = masked_not(self.c, pair, tag=f"{tag}_const")
        return pair


# ----------------------------------------------------------------------
# PD style
# ----------------------------------------------------------------------
def emit_pd(
    plan: LoweredPlan,
    refresh_choice: RefreshChoice,
    schedule: PDSchedule,
    secand2_style: str = "lut",
) -> CompiledNetlist:
    """Path-delay emission (single stage-A cycle + optional MUX cycle)."""
    em = _Emitter(plan, refresh_choice, "pd", secand2_style)
    c = em.c
    ins = em.inputs()
    n_luts = schedule.n_luts

    def delayed(pair: SharePair, units: Tuple[int, int], tag: str) -> SharePair:
        return SharePair(
            c.delay_line(pair.s0, units[0], n_luts, name=f"{tag}_dl0"),
            c.delay_line(pair.s1, units[1], n_luts, name=f"{tag}_dl1"),
        )

    # input register layer
    reg = [
        SharePair(
            c.dff(p.s0, name=f"in{i}_ff0"), c.dff(p.s1, name=f"in{i}_ff1")
        )
        for i, p in enumerate(ins)
    ]

    # stage A: staggered inner shares, product chains, refresh, rows
    mid = [
        delayed(reg[v], schedule.inner_units[p], f"mid{p}")
        for p, v in enumerate(plan.inner_vars)
    ]
    term: Dict[int, SharePair] = {}
    for mask in plan.monomials:
        prefix, extra = plan.factor(mask)
        x = term[prefix] if prefix in term else mid[plan.mask_positions(prefix)[0]]
        raw = secand2(
            c, x, mid[extra], tag=f"p{mask:x}", style=secand2_style
        )
        term[mask] = em.refreshed("prod", mask, raw, f"ref_p{mask:x}")

    rows_out: List[List[Optional[SharePair]]] = []
    for row in plan.rows:
        bits: List[Optional[SharePair]] = []
        for b in range(plan.spec.n_outputs):
            if row.bit_is_constant(b):
                bits.append(None)
                continue
            bits.append(
                em.xor_plane(row, b, mid, term, f"row{row.row}b{b}")
            )
        rows_out.append(bits)

    if plan.n_select == 0:
        outputs = [p for p in rows_out[0]]
        names = em.mark_outputs(outputs)
        netlist = CompiledNetlist(
            plan=plan,
            refresh=refresh_choice,
            style="pd",
            circuit=c,
            n_cycles=2,
            schedule=schedule,
            input_shares=tuple(
                (f"x{i}s0", f"x{i}s1") for i in range(plan.spec.n_inputs)
            ),
            rand_names=tuple(em.rand_names),
            output_shares=names,
        )
        c.check()
        return netlist

    # select minterm tree over staggered outer literals
    outer = [
        delayed(reg[v], schedule.select_units[p], f"sel{p}")
        for p, v in enumerate(plan.select_vars)
    ]
    inv_cache: Dict[int, int] = {}

    def literal(p: int, v: int) -> SharePair:
        if v:
            return outer[p]
        if p not in inv_cache:
            inv_cache[p] = c.inv(outer[p].s0, name=f"sel{p}_inv0")
        return SharePair(inv_cache[p], outer[p].s1)

    nodes: Dict[Tuple[int, int], SharePair] = {}

    def node(level: int, v: int) -> SharePair:
        if level == 1:
            return literal(0, v)
        if (level, v) not in nodes:
            x = node(level - 1, v >> 1)
            y = literal(level - 1, v & 1)
            nodes[(level, v)] = secand2(
                c, x, y, tag=f"sel{level}_{v:x}", style=secand2_style
            )
        return nodes[(level, v)]

    sel_mid: List[SharePair] = []
    for r in range(plan.n_rows):
        sel = em.refreshed("sel", r, node(plan.n_select, r), f"ref_sel{r}")
        sel_mid.append(
            SharePair(
                c.dff(sel.s0, name=f"selreg{r}_0"),
                c.dff(sel.s1, name=f"selreg{r}_1"),
            )
        )

    # mid registers for the row planes feeding stage B
    row_mid: List[List[Optional[SharePair]]] = []
    for r, bits in enumerate(rows_out):
        regs: List[Optional[SharePair]] = []
        for b, pair in enumerate(bits):
            if pair is None:
                regs.append(None)
                continue
            regs.append(
                SharePair(
                    c.dff(pair.s0, name=f"rowreg{r}b{b}_0"),
                    c.dff(pair.s1, name=f"rowreg{r}b{b}_1"),
                )
            )
        row_mid.append(regs)

    # stage B: sel AND row-bit with the paper's (1,1)/(0,2) stagger
    out_terms: List[List[SharePair]] = [[] for _ in range(plan.spec.n_outputs)]
    for r, row in enumerate(plan.rows):
        seld = delayed(sel_mid[r], schedule.stage2_sel_units, f"seld{r}")
        for b in range(plan.spec.n_outputs):
            if row.bit_is_constant(b):
                if row.constants[b]:
                    out_terms[b].append(seld)
                continue
            rowd = delayed(
                row_mid[r][b], schedule.stage2_row_units, f"rowd{r}b{b}"
            )
            out_terms[b].append(
                secand2(
                    c, seld, rowd, tag=f"m2_{r}b{b}", style=secand2_style
                )
            )

    outputs = []
    for b, terms in enumerate(out_terms):
        outputs.append(
            SharePair(
                c.xor_tree([t.s0 for t in terms], name=f"out{b}_s0"),
                c.xor_tree([t.s1 for t in terms], name=f"out{b}_s1"),
            )
        )
    names = em.mark_outputs(outputs)
    c.check()
    return CompiledNetlist(
        plan=plan,
        refresh=refresh_choice,
        style="pd",
        circuit=c,
        n_cycles=3,
        schedule=schedule,
        input_shares=tuple(
            (f"x{i}s0", f"x{i}s1") for i in range(plan.spec.n_inputs)
        ),
        rand_names=tuple(em.rand_names),
        output_shares=names,
    )


# ----------------------------------------------------------------------
# FF style
# ----------------------------------------------------------------------
def emit_ff(
    plan: LoweredPlan,
    refresh_choice: RefreshChoice,
    schedule: Optional[FFSchedule] = None,
    secand2_style: str = "lut",
) -> CompiledNetlist:
    """FF emission: plain-DFF pipeline with depth-matched ``y1`` chains."""
    if schedule is None:
        schedule = ff_layers(plan)
    em = _Emitter(plan, refresh_choice, "ff", secand2_style)
    c = em.c
    ins = em.inputs()

    reg = [
        SharePair(
            c.dff(p.s0, name=f"in{i}_ff0"), c.dff(p.s1, name=f"in{i}_ff1")
        )
        for i, p in enumerate(ins)
    ]

    # deduplicated DFF chains: chain(wire, depth) shared across gadgets
    chains: Dict[Tuple[int, int], int] = {}

    def chain(wire: int, depth: int) -> int:
        if depth == 0:
            return wire
        key = (wire, depth)
        if key not in chains:
            prev = chain(wire, depth - 1)
            chains[key] = c.dff(prev, name=f"y1ch_w{wire}_q{depth}")
        return chains[key]

    def gadget(
        x: SharePair,
        y: SharePair,
        x_valid: int,
        y_valid: int,
        tag: str,
    ) -> Tuple[SharePair, int]:
        """secAND2 with ``y1`` delayed to land strictly after x/y0."""
        from ..core.gadgets import secand2_core_on_wires

        last = max(x_valid, y_valid)
        y1 = chain(y.s1, last + 1 - y_valid)
        z = secand2_core_on_wires(
            c, x.s0, x.s1, y.s0, y1, tag, em.secand2_style
        )
        return z, last + 1

    mid = [reg[v] for v in plan.inner_vars]
    term: Dict[int, SharePair] = {}
    valid: Dict[int, int] = {}
    for mask in plan.monomials:
        prefix, extra = plan.factor(mask)
        if prefix in term:
            x, xv = term[prefix], valid[prefix]
        else:
            x, xv = mid[plan.mask_positions(prefix)[0]], 1
        raw, v = gadget(x, mid[extra], xv, 1, f"p{mask:x}")
        term[mask] = em.refreshed("prod", mask, raw, f"ref_p{mask:x}")
        valid[mask] = v
        assert v == schedule.product_valid[mask]

    rows_out: List[List[Optional[SharePair]]] = []
    for row in plan.rows:
        bits: List[Optional[SharePair]] = []
        for b in range(plan.spec.n_outputs):
            if row.bit_is_constant(b):
                bits.append(None)
                continue
            bits.append(em.xor_plane(row, b, mid, term, f"row{row.row}b{b}"))
        rows_out.append(bits)

    if plan.n_select == 0:
        out_pairs = []
        for b, pair in enumerate(rows_out[0]):
            out_pairs.append(
                SharePair(
                    c.dff(pair.s0, name=f"outreg{b}_0"),
                    c.dff(pair.s1, name=f"outreg{b}_1"),
                )
            )
        names = em.mark_outputs(out_pairs)
        c.check()
        return CompiledNetlist(
            plan=plan,
            refresh=refresh_choice,
            style="ff",
            circuit=c,
            n_cycles=schedule.n_cycles,
            schedule=schedule,
            input_shares=tuple(
                (f"x{i}s0", f"x{i}s1") for i in range(plan.spec.n_inputs)
            ),
            rand_names=tuple(em.rand_names),
            output_shares=names,
        )

    # select tree (literal chains share the outer registers' s1 chains)
    outer = [reg[v] for v in plan.select_vars]
    inv_cache: Dict[int, int] = {}

    def literal(p: int, v: int) -> SharePair:
        if v:
            return outer[p]
        if p not in inv_cache:
            inv_cache[p] = c.inv(outer[p].s0, name=f"sel{p}_inv0")
        return SharePair(inv_cache[p], outer[p].s1)

    nodes: Dict[Tuple[int, int], Tuple[SharePair, int]] = {}

    def node(level: int, v: int) -> Tuple[SharePair, int]:
        if level == 1:
            return literal(0, v), 1
        if (level, v) not in nodes:
            x, xv = node(level - 1, v >> 1)
            y = literal(level - 1, v & 1)
            nodes[(level, v)] = gadget(x, y, xv, 1, f"sel{level}_{v:x}")
        return nodes[(level, v)]

    sel_reg: List[SharePair] = []
    for r in range(plan.n_rows):
        sel, sv = node(plan.n_select, r)
        assert sv == plan.n_select
        sel = em.refreshed("sel", r, sel, f"ref_sel{r}")
        sel_reg.append(
            SharePair(
                c.dff(sel.s0, name=f"selreg{r}_0"),
                c.dff(sel.s1, name=f"selreg{r}_1"),
            )
        )
    sel_valid = schedule.select_valid

    out_terms: List[List[Tuple[SharePair, int]]] = [
        [] for _ in range(plan.spec.n_outputs)
    ]
    for r, row in enumerate(plan.rows):
        for b in range(plan.spec.n_outputs):
            if row.bit_is_constant(b):
                if row.constants[b]:
                    out_terms[b].append((sel_reg[r], sel_valid))
                continue
            rv = schedule.row_valid[r][b]
            z, zv = gadget(
                sel_reg[r], rows_out[r][b], sel_valid, rv, f"m2_{r}b{b}"
            )
            out_terms[b].append((z, zv))

    out_pairs = []
    for b, terms in enumerate(out_terms):
        pair = SharePair(
            c.xor_tree([t.s0 for t, _ in terms], name=f"out{b}_s0"),
            c.xor_tree([t.s1 for t, _ in terms], name=f"out{b}_s1"),
        )
        out_pairs.append(
            SharePair(
                c.dff(pair.s0, name=f"outreg{b}_0"),
                c.dff(pair.s1, name=f"outreg{b}_1"),
            )
        )
    names = em.mark_outputs(out_pairs)
    c.check()
    return CompiledNetlist(
        plan=plan,
        refresh=refresh_choice,
        style="ff",
        circuit=c,
        n_cycles=schedule.n_cycles,
        schedule=schedule,
        input_shares=tuple(
            (f"x{i}s0", f"x{i}s1") for i in range(plan.spec.n_inputs)
        ),
        rand_names=tuple(em.rand_names),
        output_shares=names,
    )
