"""Margin-erosion sweep: delay variation vs. static safety vs. TVLA.

The question answered here is the one the paper's Sec. VII-B sweep asks
empirically with DelayUnit sizes: *at which timing perturbation does
the secAND2-PD protection collapse?*  For each delay-variation sigma
the sweep

1. perturbs the netlist with :func:`repro.faults.models.delay_variation`
   (common random numbers — margins erode linearly in sigma),
2. re-runs the static arrival-order checker and records the smallest
   remaining ordering margin,
3. runs a fixed-vs-random TVLA campaign on the perturbed build,

and reports the sigma-vs-``max|t|`` curve together with the *first
violated ordering constraint* — the secAND2 instance whose margin
collapsed first, tying the observed leakage onset to a specific site.

The bank under test mirrors the Sec. II-B setup: parallel secAND2-PD
instances with shared inputs (replication boosts SNR), driven from the
reset state with all four shares applied at t=0 so the DelayUnits alone
stagger the arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.gadgets import SharePair, secand2_pd
from ..core.shares import share
from ..leakage.acquisition import CampaignConfig, run_campaign
from ..leakage.tvla import THRESHOLD, TvlaResult
from ..netlist.circuit import Circuit
from ..netlist.safety import (
    OrderingMargin,
    OrderingViolation,
    check_secand2_ordering,
    count_violations,
    min_ordering_margin,
    ordering_margins,
)
from ..netlist.timing import arrival_times
from ..sim.power import PowerRecorder
from ..sim.vectorsim import VectorSimulator
from .models import delay_variation, perturbed_engine

__all__ = [
    "build_pd_bank",
    "PDBankSource",
    "FaultSweepPoint",
    "FaultSweepResult",
    "margin_erosion_sweep",
    "des_margin_erosion",
]

_INPUT_NAMES = ("x0", "x1", "y0", "y1")


def build_pd_bank(n_instances: int = 8, n_luts: int = 2) -> Circuit:
    """Bank of parallel secAND2-PD instances with shared inputs.

    Every instance gets its own DelayUnits (as on fabric, where each
    placed instance has its own routes), so per-gate delay variation
    erodes each instance's margin independently — the sweep reports the
    weakest one.
    """
    c = Circuit(f"secAND2-PD-bank{n_instances}x{n_luts}")
    x0, x1, y0, y1 = c.add_inputs(*_INPUT_NAMES)
    x, y = SharePair(x0, x1), SharePair(y0, y1)
    for i in range(n_instances):
        z = secand2_pd(c, x, y, n_luts=n_luts, tag=f"i{i}")
        c.mark_output(f"z0_{i}", z.s0)
        c.mark_output(f"z1_{i}", z.s1)
    c.check()
    return c


class PDBankSource:
    """Trace source over a (possibly fault-perturbed) PD gadget bank.

    Each trace: all wires reset to the all-zero settled state, then the
    four input shares are applied *simultaneously* at t=0 — the
    DelayUnits alone stagger the arrivals at the cores, so the source
    measures exactly the protection the ordering margins provide.
    Fixed class: fixed unshared ``(x, y)`` with fresh uniform sharing
    per trace; random class: uniform ``x, y``.
    """

    def __init__(
        self,
        circuit: Circuit,
        fixed_xy: Tuple[int, int] = (1, 1),
        bin_ps: int = 250,
        settle_margin_ps: int = 1000,
    ):
        self.circuit = circuit
        self.fixed_xy = fixed_xy
        self.bin_ps = bin_ps
        latest = max(arrival_times(circuit).values(), default=0)
        self.total_time_ps = int(latest) + settle_margin_ps
        self.n_samples = -(-self.total_time_ps // bin_ps)

    def acquire(self, fixed_mask: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = fixed_mask.shape[0]
        x = rng.integers(0, 2, size=n).astype(bool)
        y = rng.integers(0, 2, size=n).astype(bool)
        x[fixed_mask] = bool(self.fixed_xy[0])
        y[fixed_mask] = bool(self.fixed_xy[1])
        x0, x1 = share(x, rng)
        y0, y1 = share(y, rng)
        values = {"x0": x0, "x1": x1, "y0": y0, "y1": y1}

        sim = VectorSimulator(self.circuit, n)
        sim.evaluate_combinational(
            {self.circuit.wire(name): False for name in _INPUT_NAMES}
        )
        rec = PowerRecorder(
            n, self.total_time_ps, bin_ps=self.bin_ps, weights=sim.weights
        )
        events = [
            (0, self.circuit.wire(name), values[name]) for name in _INPUT_NAMES
        ]
        sim.settle(events, recorder=rec)
        return rec.power


def _first_violation(
    violations: Sequence[OrderingViolation],
) -> Optional[OrderingViolation]:
    """The constraint whose margin collapsed hardest.

    ``y1-not-last`` violations are preferred — a late x share is the
    Table I leak condition, the one TVLA sees in a from-reset
    evaluation — falling back to the worst violation of any kind.
    """
    if not violations:
        return None
    y1 = [v for v in violations if v.kind == "y1-not-last"]
    pool = y1 or list(violations)
    return min(pool, key=lambda v: v.margin_ps)


@dataclass
class FaultSweepPoint:
    """One sigma of the erosion sweep."""

    sigma_ps: float
    min_margin: Optional[OrderingMargin]
    violations: Dict[str, int]
    first_violation: Optional[OrderingViolation]
    tvla: Optional[TvlaResult]

    @property
    def statically_safe(self) -> bool:
        return not any(self.violations.values())

    @property
    def leaks(self) -> bool:
        return self.tvla is not None and self.tvla.leaks(1)


@dataclass
class FaultSweepResult:
    """Sigma-vs-margin-vs-|t| curve plus the first-violated report."""

    circuit_name: str
    points: List[FaultSweepPoint]
    nominal_margin_ps: float = 0.0
    threshold: float = THRESHOLD

    @property
    def clean_at_zero(self) -> bool:
        p = self.points[0]
        return (
            p.sigma_ps == 0
            and p.statically_safe
            and (p.tvla is None or not p.leaks)
        )

    @property
    def onset_sigma_ps(self) -> Optional[float]:
        """Smallest swept sigma with a static ordering violation."""
        for p in self.points:
            if not p.statically_safe:
                return p.sigma_ps
        return None

    @property
    def first_violation(self) -> Optional[OrderingViolation]:
        """The violated constraint at the onset sigma."""
        for p in self.points:
            if p.first_violation is not None:
                return p.first_violation
        return None

    @property
    def monotone_erosion(self) -> bool:
        """Smallest margin never recovers as sigma grows.

        With common random numbers every *gadget's* margin is linear in
        sigma, so their minimum is concave: exactly linear (hence
        monotone) when all nominal margins coincide, as in the uniform
        bank; on a heterogeneous core (DES) it may rise slightly before
        the steepest-eroding site takes over — after which it only
        falls."""
        worst = [
            p.min_margin.worst_ps for p in self.points if p.min_margin is not None
        ]
        return all(b <= a + 1e-9 for a, b in zip(worst, worst[1:]))

    def render(self) -> str:
        lines = [
            f"Margin-erosion sweep — {self.circuit_name} "
            f"(nominal margin {self.nominal_margin_ps:.0f} ps)",
            f"{'sigma[ps]':>10} {'min margin':>11} {'y1-viol':>8} "
            f"{'y0-viol':>8} {'max|t1|':>8} {'verdict':>8}",
        ]
        for p in self.points:
            margin = (
                f"{p.min_margin.worst_ps:10.0f}" if p.min_margin else "         -"
            )
            t1 = f"{p.tvla.max_abs(1):8.2f}" if p.tvla is not None else "       -"
            verdict = "LEAKS" if p.leaks else ("viol." if not p.statically_safe else "clean")
            lines.append(
                f"{p.sigma_ps:10.0f} {margin} "
                f"{p.violations.get('y1-not-last', 0):8d} "
                f"{p.violations.get('y0-not-first', 0):8d} {t1} {verdict:>8}"
            )
        v = self.first_violation
        if v is not None:
            lines.append(
                f"first violated constraint (sigma {self.onset_sigma_ps:.0f} ps): "
                f"{v}"
            )
        else:
            lines.append("no ordering constraint violated across the sweep")
        lines.append(
            f"monotone erosion: {self.monotone_erosion}   "
            f"clean at sigma 0: {self.clean_at_zero}"
        )
        return "\n".join(lines)


def _static_point(
    circuit: Circuit, sigma_ps: float, tvla: Optional[TvlaResult]
) -> FaultSweepPoint:
    violations = check_secand2_ordering(circuit)
    return FaultSweepPoint(
        sigma_ps=float(sigma_ps),
        min_margin=min_ordering_margin(circuit),
        violations=count_violations(circuit),
        first_violation=_first_violation(violations),
        tvla=tvla,
    )


def margin_erosion_sweep(
    sigmas: Sequence[float],
    n_instances: int = 8,
    n_luts: int = 2,
    fault_seed: int = 1,
    distribution: str = "gaussian",
    n_traces: int = 6000,
    batch_size: int = 2000,
    noise_sigma: float = 1.0,
    seed: int = 0,
    n_workers: int = 1,
) -> FaultSweepResult:
    """Run the erosion sweep over the secAND2-PD gadget bank.

    Args:
        sigmas: Delay-variation sigmas (ps) to sweep, ascending.
        n_instances / n_luts: Bank geometry; ``n_luts`` sets the nominal
            ordering margin (``n_luts * LUT_DELAY_PS`` per DelayUnit).
        fault_seed: Seed of the perturbation *direction* (shared across
            all sigmas — common random numbers).
        distribution: Forwarded to ``delay_variation``.
        n_traces / batch_size / noise_sigma / seed: TVLA campaign
            parameters per sigma; ``n_traces=0`` skips TVLA (static
            margins only).
        n_workers: Parallel batch workers per campaign.
    """
    bank = build_pd_bank(n_instances=n_instances, n_luts=n_luts)
    nominal = min_ordering_margin(bank)
    points: List[FaultSweepPoint] = []
    for sigma in sigmas:
        perturbed = delay_variation(
            bank, sigma, seed=fault_seed, distribution=distribution
        )
        tvla = None
        if n_traces > 0:
            source = PDBankSource(perturbed)
            cfg = CampaignConfig(
                n_traces=n_traces,
                batch_size=min(batch_size, n_traces),
                noise_sigma=noise_sigma,
                seed=seed,
                label=f"{bank.name} sigma={sigma:g}ps",
            )
            tvla = run_campaign(source, cfg, n_workers=n_workers)
        points.append(_static_point(perturbed, sigma, tvla))
    return FaultSweepResult(
        circuit_name=bank.name,
        points=points,
        nominal_margin_ps=nominal.worst_ps if nominal else 0.0,
    )


def des_margin_erosion(
    sigmas: Sequence[float],
    variant: str = "pd",
    n_luts: int = 10,
    fault_seed: int = 1,
    distribution: str = "gaussian",
    n_traces: int = 0,
    batch_size: int = 500,
    noise_sigma: float = 2.0,
    seed: int = 0,
    fixed_plaintext: int = 0x0123456789ABCDEF,
    key: int = 0x133457799BBCDFF1,
    n_workers: int = 1,
) -> FaultSweepResult:
    """Erosion sweep over the full masked DES core.

    By default static-only (``n_traces=0``): the core has hundreds of
    secAND2 sites and the static checker pinpoints which S-box instance
    collapses first.  ``n_luts`` defaults to the paper's optimum of 10
    — the smallest DelayUnit at which the core is statically safe at
    sigma 0 (smaller units start the sweep from an already-violated
    baseline).  With ``n_traces > 0`` each sigma additionally runs
    a (short) TVLA campaign on the perturbed core via
    :func:`repro.faults.models.perturbed_engine`.
    """
    from ..des.engines import DESTraceSource, MaskedDESNetlistEngine

    engine = MaskedDESNetlistEngine(variant, n_luts=n_luts)
    nominal = min_ordering_margin(engine.circuit)
    points: List[FaultSweepPoint] = []
    for sigma in sigmas:
        eng = perturbed_engine(
            engine, sigma, seed=fault_seed, distribution=distribution
        )
        tvla = None
        if n_traces > 0:
            source = DESTraceSource(eng, fixed_plaintext, key)
            cfg = CampaignConfig(
                n_traces=n_traces,
                batch_size=min(batch_size, n_traces),
                noise_sigma=noise_sigma,
                seed=seed,
                label=f"{engine.circuit.name} sigma={sigma:g}ps",
            )
            tvla = run_campaign(source, cfg, n_workers=n_workers)
        points.append(_static_point(eng.circuit, sigma, tvla))
    return FaultSweepResult(
        circuit_name=engine.circuit.name,
        points=points,
        nominal_margin_ps=nominal.worst_ps if nominal else 0.0,
    )
